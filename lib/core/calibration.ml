(* Observation-by-observation calibration. Figure numbers refer to the
   paper (journal version).

   Fig. 2a: no-buffer control load grows ~linearly with sending rate
   and approaches link speed at 100 Mbps; a 1000 B frame becomes a
   1018 B PACKET_IN (+66 B framing), so load ~ 1.08 x sending rate.
   This needs no tuning: it follows from real message sizes.

   Fig. 2a: buffer-256 mean load ~10.9 Mbps over the sweep; a buffered
   PACKET_IN carries 128 B of data (146 B message), giving
   0.21 x sending rate, whose sweep mean (rates 5..100) is ~11 Mbps.

   Fig. 6: unloaded controller delay ~0.7-0.8 ms (buffer-256).
   Dominated by twice the control-channel latency plus ~66 us of
   controller work, hence control_link_latency = 350 us (kernel TCP
   stack + socket scheduling on commodity PCs).

   Fig. 7: no-buffer switch delay blows up past ~70 Mbps. With the
   ASIC<->CPU bus at 150 Mbps half-duplex, no-buffer misses push
   (1018 + 1024 + descriptors) bytes per packet across it; the bus
   saturates at ~9100 packets/s = ~73 Mbps of sending rate. Buffered
   misses push only ~220 bytes and never saturate it.

   Fig. 8: buffer-16 exhausts between 30 and 35 Mbps. A unit's
   residence is controller delay (~0.8 ms) + PACKET_OUT handling +
   deferred reclamation; with reclaim_lag = 3.2 ms total residence is
   ~4.3 ms, and occupancy = packet rate x residence crosses 16 at
   ~30 Mbps (3750 pkt/s).

   Fig. 6 (no-buffer rise past ~60 Mbps): sustained byte pressure in
   the controller's receive window triggers periodic stop-the-world
   GC pauses (gc_threshold_bytes corresponds to ~70 Mbps of no-buffer
   PACKET_INs; buffered messages never reach it), lifting the
   no-buffer controller delay mean and spread without destabilizing
   the buffered configurations.

   Figs. 9/13 (Exp-B): rules take flow_mod_apply_latency = 0.2 ms to
   reach the datapath after FLOW_MOD processing. Packets of a flow
   arriving within [0, controller delay + apply latency) still miss:
   under packet granularity each triggers its own request (count
   growing with the sending rate); under flow granularity they chain
   onto the existing buffer unit and the single request per flow
   stands (the paper's flat Fig. 9a curve).

   Figs. 3/4: switch usage rises fast then flattens (upcall batch
   amortization); controller usage stays moderate when buffered and
   grows super-linearly without buffers at high rate (large-message
   parse cost + congestion penalty once the backlog passes the
   threshold). *)

let data_link_bandwidth_bps = 100e6
let data_link_latency = 30e-6
let control_link_bandwidth_bps = 100e6
let control_link_latency = 350e-6
let encap_overhead_bytes = 66

let switch_costs = Sdn_switch.Costs.default

let controller_costs = Sdn_controller.Costs.default

(* Each sanity condition is an independent pure thunk over the cost
   models, so the set evaluates through the same Task_pool funnel as
   the sweeps ([jobs] never changes the verdicts or their order). *)
let sanity_checks () =
  let c = switch_costs in
  let k = controller_costs in
  let frame = 1000 in
  let pkt_in_no_buffer = 8 + 10 + frame in
  let pkt_in_buffered = 8 + 10 + 128 in
  let pkt_out_no_buffer = 8 + 8 + 8 + frame in
  let pkt_out_buffered = 8 + 8 + 8 in
  let bus_bytes_no_buffer =
    pkt_in_no_buffer + pkt_out_no_buffer + (2 * c.Sdn_switch.Costs.bus_descriptor_bytes)
  in
  let bus_saturation_pps =
    c.Sdn_switch.Costs.bus_bandwidth_bps /. (float_of_int bus_bytes_no_buffer *. 8.0)
  in
  let bus_saturation_mbps = bus_saturation_pps *. float_of_int frame *. 8.0 /. 1e6 in
  let controller_work_buffered =
    k.Sdn_controller.Costs.parse_base_cost
    +. (k.Sdn_controller.Costs.parse_per_byte *. float_of_int pkt_in_buffered)
    +. k.Sdn_controller.Costs.decision_cost
    +. (2.0 *. k.Sdn_controller.Costs.encode_base_cost)
  in
  let unloaded_controller_delay =
    (2.0 *. control_link_latency) +. controller_work_buffered
  in
  [|
    ( "buffered PACKET_IN is >5x smaller than the no-buffer one",
      fun () -> pkt_in_no_buffer > 5 * pkt_in_buffered );
    ( "buffered PACKET_OUT is >10x smaller than the no-buffer one",
      fun () -> pkt_out_no_buffer > 10 * pkt_out_buffered );
    ( "bus saturates for no-buffer misses between 60 and 85 Mbps",
      fun () -> bus_saturation_mbps > 60.0 && bus_saturation_mbps < 85.0 );
    ( "unloaded controller delay is 0.4-1.0 ms",
      fun () ->
        unloaded_controller_delay > 0.4e-3 && unloaded_controller_delay < 1.0e-3
    );
    ( "buffer-16 residence pushes exhaustion into the 25-45 Mbps band",
      fun () ->
        let residence =
          unloaded_controller_delay +. 3.2e-3
          +. k.Sdn_controller.Costs.encode_base_cost
        in
        let exhaust_pps = 16.0 /. residence in
        let exhaust_mbps = exhaust_pps *. float_of_int frame *. 8.0 /. 1e6 in
        exhaust_mbps > 25.0 && exhaust_mbps < 45.0 );
  |]

let sanity ?(jobs = 1) () =
  let checks = sanity_checks () in
  let verdicts =
    Sdn_sim.Task_pool.run ~jobs ~tasks:(Array.length checks) (fun i ->
        (snd checks.(i)) ())
  in
  Array.to_list (Array.mapi (fun i ok -> (fst checks.(i), ok)) verdicts)
