type t = int32

let of_int32 x = x
let to_int32 t = t

let make a b c d =
  let check o =
    if o < 0 || o > 255 then invalid_arg "Ip.make: component out of range"
  in
  check a; check b; check c; check d;
  let ( << ) x n = Int32.shift_left (Int32.of_int x) n in
  List.fold_left Int32.logor 0l [ a << 24; b << 16; c << 8; d << 0 ]

let component t i =
  Int32.to_int (Int32.logand (Int32.shift_right_logical t (8 * (3 - i))) 0xFFl)

let to_string t =
  Printf.sprintf "%d.%d.%d.%d" (component t 0) (component t 1) (component t 2)
    (component t 3)

let of_string s =
  let component part =
    match int_of_string_opt part with
    | Some o when o >= 0 && o <= 255 -> Ok o
    | Some _ ->
        Error (Printf.sprintf "Ip.of_string: component out of range in %S" s)
    | None -> Error (Printf.sprintf "Ip.of_string: bad component in %S" s)
  in
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      match (component a, component b, component c, component d) with
      | Ok a, Ok b, Ok c, Ok d -> Ok (make a b c d)
      | Error e, _, _, _
      | _, Error e, _, _
      | _, _, Error e, _
      | _, _, _, Error e ->
          Error e)
  | _ -> Error (Printf.sprintf "Ip.of_string: expected dotted quad in %S" s)

let of_string_exn s =
  match of_string s with Ok t -> t | Error msg -> invalid_arg msg

let any = 0l
let broadcast = 0xFFFF_FFFFl

(* Unsigned 32-bit comparison. *)
let compare a b =
  Int32.unsigned_compare a b

let equal = Int32.equal
let hash t = Int32.to_int t land max_int
let pp fmt t = Format.pp_print_string fmt (to_string t)

let write t buf off = Bytes.set_int32_be buf off t
let read buf off = Bytes.get_int32_be buf off

let matches_prefix ~prefix ~bits addr =
  if bits < 0 || bits > 32 then invalid_arg "Ip.matches_prefix: bits";
  if bits = 0 then true
  else begin
    let shift = 32 - bits in
    Int32.equal
      (Int32.shift_right_logical prefix shift)
      (Int32.shift_right_logical addr shift)
  end
