(* Failure-injection tests: port failures, PORT_STATUS notifications,
   rule flushing, and the reactive recovery path. *)

open Sdn_sim
open Sdn_net
open Sdn_openflow
open Sdn_switch

let mac1 = Mac.of_octets 0x02 0 0 0 0 1
let mac2 = Mac.of_octets 0x02 0 0 0 0 2

let frame ?(src_port = 1000) () =
  Packet.encode
    (Packet.udp_frame_of_size ~src_mac:mac1 ~dst_mac:mac2
       ~src_ip:(Ip.make 10 0 0 1) ~dst_ip:(Ip.make 10 0 0 2) ~src_port
       ~dst_port:9 ~frame_size:300 ~payload_fill:(fun _ -> ()))

let quiet_costs =
  { Costs.default with Costs.service_noise_sigma = 0.0; flow_mod_apply_latency = 1e-6 }

type harness = {
  engine : Engine.t;
  switch : Switch.t;
  egress2 : int ref;
  to_controller : (int32 * Of_codec.msg) list ref;
}

let make_harness () =
  let engine = Engine.create () in
  let switch =
    Switch.create engine ~config:Switch.default_config ~costs:quiet_costs
      ~rng:(Rng.of_int 1) ()
  in
  let egress2 = ref 0 and to_controller = ref [] in
  let out =
    Link.create engine ~name:"out" ~bandwidth_bps:1e9 ~propagation_s:0.0
      ~receiver:(fun (_ : Bytes.t) -> incr egress2)
      ()
  in
  let ctrl =
    Link.create engine ~name:"ctrl" ~bandwidth_bps:1e9 ~propagation_s:0.0
      ~receiver:(fun buf ->
        match Of_codec.decode buf with
        | Ok decoded -> to_controller := decoded :: !to_controller
        | Error e -> Alcotest.fail e)
      ()
  in
  Switch.set_port switch ~port:2 out;
  Switch.set_controller_link switch ctrl;
  { engine; switch; egress2; to_controller }

let install h ~src_port ~out_port =
  let key = Option.get (Packet.peek_flow_key (frame ~src_port ())) in
  Switch.handle_of_message h.switch
    (Of_codec.encode ~xid:1l
       (Of_codec.Flow_mod
          (Of_flow_mod.add
             ~match_:(Of_match.of_flow_key key)
             ~actions:[ Of_action.output out_port ]
             ())));
  Engine.run ~until:(Engine.now h.engine +. 0.001) h.engine

let test_port_status_roundtrip () =
  let msg =
    Of_codec.Port_status
      {
        Of_port_status.reason = Of_port_status.Modify;
        port = { Of_features.port_no = 2; hw_addr = mac2; name = "eth2" };
        link_down = true;
      }
  in
  match Of_codec.decode (Of_codec.encode ~xid:3l msg) with
  | Ok (3l, msg') -> Alcotest.(check bool) "equal" true (Of_codec.equal msg msg')
  | Ok _ -> Alcotest.fail "xid mangled"
  | Error e -> Alcotest.fail e

let test_down_port_drops_frames () =
  let h = make_harness () in
  install h ~src_port:1 ~out_port:2;
  Switch.set_port_state h.switch ~port:2 ~up:false;
  Alcotest.(check bool) "reported down" false (Switch.port_is_up h.switch ~port:2);
  Switch.handle_frame h.switch ~in_port:1 (frame ~src_port:1 ());
  Engine.run ~until:0.05 h.engine;
  Alcotest.(check int) "nothing egressed" 0 !(h.egress2);
  Alcotest.(check bool) "drop counted" true
    ((Switch.counters h.switch).Switch.frames_dropped > 0)

let test_port_recovery () =
  let h = make_harness () in
  install h ~src_port:1 ~out_port:2;
  Switch.set_port_state h.switch ~port:2 ~up:false;
  Switch.set_port_state h.switch ~port:2 ~up:true;
  Switch.handle_frame h.switch ~in_port:1 (frame ~src_port:1 ());
  Engine.run ~until:0.05 h.engine;
  Alcotest.(check int) "forwarding restored" 1 !(h.egress2)

let test_notification_on_transition_only () =
  let h = make_harness () in
  Switch.set_port_state h.switch ~port:2 ~up:false;
  Switch.set_port_state h.switch ~port:2 ~up:false (* no-op *);
  Switch.set_port_state h.switch ~port:2 ~up:true;
  Engine.run ~until:0.01 h.engine;
  let notifications =
    List.filter_map
      (function _, Of_codec.Port_status ps -> Some ps | _ -> None)
      (List.rev !(h.to_controller))
  in
  match notifications with
  | [ down; up ] ->
      Alcotest.(check bool) "first reports down" true down.Of_port_status.link_down;
      Alcotest.(check bool) "second reports up" false up.Of_port_status.link_down;
      Alcotest.(check int) "names the port" 2 down.Of_port_status.port.Of_features.port_no
  | l -> Alcotest.fail (Printf.sprintf "expected 2 notifications, got %d" (List.length l))

let test_delete_with_out_port_filter () =
  let h = make_harness () in
  install h ~src_port:1 ~out_port:2;
  install h ~src_port:2 ~out_port:3;
  Alcotest.(check int) "two rules" 2 (Flow_table.length (Switch.flow_table h.switch));
  (* Delete only the rules forwarding into port 2 (what the controller
     sends after a failure). *)
  Switch.handle_of_message h.switch
    (Of_codec.encode ~xid:9l
       (Of_codec.Flow_mod
          {
            (Of_flow_mod.add ~match_:Of_match.wildcard_all ~actions:[] ()) with
            Of_flow_mod.command = Of_flow_mod.Delete;
            out_port = 2;
          }));
  Engine.run ~until:0.05 h.engine;
  let remaining = Flow_table.entries (Switch.flow_table h.switch) in
  match remaining with
  | [ e ] -> (
      match e.Flow_entry.actions with
      | [ Of_action.Output { port = 3; _ } ] -> ()
      | _ -> Alcotest.fail "wrong survivor")
  | l -> Alcotest.fail (Printf.sprintf "expected 1 survivor, got %d" (List.length l))

(* End-to-end: the scenario's controller flushes rules on a failure and
   the flow recovers through the reactive path once the port returns. *)
let test_scenario_failure_and_recovery () =
  let open Sdn_core in
  let config =
    {
      Config.default with
      Config.workload = Config.Exp_a { n_flows = 1 };
      rate_mbps = 10.0;
      seed = 6;
    }
  in
  let scenario = Scenario.build config in
  let engine = scenario.Scenario.engine in
  let rng = scenario.Scenario.traffic_rng in
  (* One flow of steady packets across the failure window. *)
  let injections =
    Sdn_traffic.Patterns.udp_burst ~rng ~start:0.05 ~n_packets:60
      ~rate_mbps:2.0 ~frame_size:500 ()
  in
  Sdn_traffic.Pktgen.schedule engine
    ~inject:(fun ~in_port frame -> Scenario.inject scenario ~in_port frame)
    injections;
  (* Fail port 2 mid-run, restore it later. *)
  ignore
    (Engine.schedule_at engine 0.08 (fun () ->
         Sdn_switch.Switch.set_port_state scenario.Scenario.switch ~port:2
           ~up:false));
  ignore
    (Engine.schedule_at engine 0.1 (fun () ->
         Sdn_switch.Switch.set_port_state scenario.Scenario.switch ~port:2
           ~up:true));
  Scenario.run_until_quiet ~min_time:0.25 scenario;
  let controller_counters =
    Sdn_controller.Controller.counters scenario.Scenario.controller
  in
  Alcotest.(check int) "controller saw both transitions" 2
    controller_counters.Sdn_controller.Controller.port_changes;
  (* The flush makes post-failure packets miss again: more than the
     flow's single initial request must have been sent. *)
  let counters = Sdn_switch.Switch.counters scenario.Scenario.switch in
  Alcotest.(check bool)
    (Printf.sprintf "reactive recovery re-requested (%d requests)"
       counters.Sdn_switch.Switch.pkt_ins_sent)
    true
    (counters.Sdn_switch.Switch.pkt_ins_sent > 1);
  (* Most packets still arrive; only those inside the outage window are
     lost. *)
  Alcotest.(check bool)
    (Printf.sprintf "most packets delivered (%d/60)" scenario.Scenario.host2_received)
    true
    (scenario.Scenario.host2_received >= 45)

(* {2 Control-channel loss and the re-request recovery path} *)

let lossy_config ~mechanism ~loss_rate ~max_resends =
  let open Sdn_core in
  {
    Config.default with
    Config.mechanism;
    buffer_capacity = (if mechanism = Config.No_buffer then 0 else 256);
    workload = Config.Exp_b { n_flows = 20; packets_per_flow = 10; concurrent = 4 };
    rate_mbps = 15.0;
    seed = 21;
    faults = { Sdn_sim.Faults.none with Sdn_sim.Faults.loss_rate };
    max_resends;
  }

(* Under 20% control loss, flow granularity with a sufficient resend
   budget recovers every flow: the exponential-backoff re-request keeps
   asking until the release finally gets through. Deterministic seed —
   no retries, no flakiness. *)
let test_flow_granularity_survives_loss () =
  let open Sdn_core in
  let result =
    Experiment.run
      (lossy_config ~mechanism:Config.Flow_granularity ~loss_rate:0.2
         ~max_resends:12)
  in
  Alcotest.(check int)
    (Printf.sprintf "all %d flows complete" result.Experiment.flows_started)
    result.Experiment.flows_started result.Experiment.flows_completed;
  Alcotest.(check int) "every packet delivered" result.Experiment.packets_in
    result.Experiment.packets_out;
  Alcotest.(check int) "no flow abandoned" 0 result.Experiment.flows_abandoned;
  Alcotest.(check bool)
    (Printf.sprintf "loss actually hit the channel (%d lost, %d recovered)"
       result.Experiment.ctrl_msgs_lost result.Experiment.flows_recovered)
    true
    (result.Experiment.ctrl_msgs_lost > 0
    && result.Experiment.flows_recovered > 0);
  Alcotest.(check bool) "recovery delays recorded" true
    (result.Experiment.recovery_delay.Experiment.count
    = result.Experiment.flows_recovered)

(* With the resend budget exhausted the chain is dropped and the
   abandonment counter says so. max_resends = 0 means one request and
   no second chance — under heavy loss some flows must die. *)
let test_flow_granularity_abandons_when_exhausted () =
  let open Sdn_core in
  let result =
    Experiment.run
      (lossy_config ~mechanism:Config.Flow_granularity ~loss_rate:0.4
         ~max_resends:0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "flows abandoned (%d)" result.Experiment.flows_abandoned)
    true
    (result.Experiment.flows_abandoned > 0);
  Alcotest.(check bool)
    (Printf.sprintf "packets lost (%d/%d)" result.Experiment.packets_out
       result.Experiment.packets_in)
    true
    (result.Experiment.packets_out < result.Experiment.packets_in)

(* The mechanisms without re-request machinery have no recovery story:
   a lost control message means lost packets. *)
let test_other_mechanisms_lose_packets () =
  let open Sdn_core in
  List.iter
    (fun mechanism ->
      let result =
        Experiment.run (lossy_config ~mechanism ~loss_rate:0.2 ~max_resends:12)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s loses packets (%d/%d)" (Config.label result.Experiment.config)
           result.Experiment.packets_out result.Experiment.packets_in)
        true
        (result.Experiment.packets_out < result.Experiment.packets_in);
      Alcotest.(check int)
        (Printf.sprintf "%s has no recovery path" (Config.label result.Experiment.config))
        0 result.Experiment.flows_recovered)
    [ Config.No_buffer; Config.Packet_granularity ]

(* Same seed, same chaos: the fault schedule is a pure function of the
   seed, so the whole result record matches run for run. *)
let test_lossy_run_deterministic () =
  let open Sdn_core in
  let run () =
    let r =
      Experiment.run
        (lossy_config ~mechanism:Config.Flow_granularity ~loss_rate:0.2
           ~max_resends:12)
    in
    ( r.Experiment.flows_completed,
      r.Experiment.packets_out,
      r.Experiment.pkt_in_resends,
      r.Experiment.flows_recovered,
      r.Experiment.ctrl_msgs_lost,
      r.Experiment.recovery_delay )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical outcomes" true (a = b)

let suite =
  [
    Alcotest.test_case "PORT_STATUS roundtrip" `Quick test_port_status_roundtrip;
    Alcotest.test_case "down port drops frames" `Quick test_down_port_drops_frames;
    Alcotest.test_case "port recovery restores forwarding" `Quick
      test_port_recovery;
    Alcotest.test_case "notification only on transitions" `Quick
      test_notification_on_transition_only;
    Alcotest.test_case "delete honours out_port filter" `Quick
      test_delete_with_out_port_filter;
    Alcotest.test_case "end-to-end failure and reactive recovery" `Quick
      test_scenario_failure_and_recovery;
    Alcotest.test_case "flow granularity survives 20% control loss" `Quick
      test_flow_granularity_survives_loss;
    Alcotest.test_case "abandons flows when resends exhausted" `Quick
      test_flow_granularity_abandons_when_exhausted;
    Alcotest.test_case "other mechanisms lose packets under loss" `Quick
      test_other_mechanisms_lose_packets;
    Alcotest.test_case "lossy runs are deterministic" `Quick
      test_lossy_run_deterministic;
  ]
