test/test_chain.ml: Alcotest Chain Config Experiment Printf Sdn_core
