lib/core/scenario.mli: Bytes Capture Config Delay Engine Link Rng Sdn_controller Sdn_measure Sdn_sim Sdn_switch
