lib/sim/timeseries.ml: Array Stats
