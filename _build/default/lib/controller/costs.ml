type t = {
  cores : int;
  parse_base_cost : float;
  parse_per_byte : float;
  decision_cost : float;
  encode_base_cost : float;
  encode_per_byte : float;
  congestion_threshold : int;
  congestion_slope : float;
  congestion_cap : float;
  gc_window : float;
  gc_threshold_bytes : int;
  gc_slope_per_kb : float;
  gc_cap : float;
  gc_pause_duration : float;
  gc_pause_min_gap : float;
  service_noise_sigma : float;
}

let default =
  {
    cores = 2;
    parse_base_cost = 18e-6;
    parse_per_byte = 25e-9;
    decision_cost = 30e-6;
    encode_base_cost = 6e-6;
    encode_per_byte = 25e-9;
    congestion_threshold = 16;
    congestion_slope = 0.01;
    congestion_cap = 1.3;
    gc_window = 5e-3;
    gc_threshold_bytes = 38_000;
    gc_slope_per_kb = 0.015;
    gc_cap = 1.8;
    gc_pause_duration = 2.5e-3;
    gc_pause_min_gap = 25e-3;
    service_noise_sigma = 0.08;
  }

let penalty t ~queue_len =
  let excess = float_of_int (max 0 (queue_len - t.congestion_threshold)) in
  Float.min t.congestion_cap (1.0 +. (t.congestion_slope *. excess))

let gc_factor t ~window_bytes =
  let excess_kb =
    float_of_int (max 0 (window_bytes - t.gc_threshold_bytes)) /. 1000.0
  in
  Float.min t.gc_cap (1.0 +. (t.gc_slope_per_kb *. excess_kb))
