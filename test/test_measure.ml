(* Tests for capture classification, delay pairing, and report
   formatting. *)

open Sdn_sim
open Sdn_net
open Sdn_openflow
open Sdn_measure
open Sdn_traffic

let mac1 = Mac.of_octets 0x02 0 0 0 0 1
let mac2 = Mac.of_octets 0x02 0 0 0 0 2
let ip1 = Ip.make 10 0 0 1
let ip2 = Ip.make 10 0 0 2

let tagged_frame ~flow_id ~seq ~flow_packets =
  Packet.encode
    (Packet.udp_frame_of_size ~src_mac:mac1 ~dst_mac:mac2
       ~src_ip:(Ip.make 10 1 0 flow_id) ~dst_ip:ip2 ~src_port:(1000 + flow_id)
       ~dst_port:9 ~frame_size:200
       ~payload_fill:(fun payload ->
         Tag.write { Tag.flow_id; seq; flow_packets } payload))

let pkt_in_bytes ~xid ~buffer_id frame =
  Of_codec.encode ~xid
    (Of_codec.Packet_in
       (Of_packet_in.make ~buffer_id ~in_port:1 ~reason:Of_packet_in.No_match
          ~frame ~miss_send_len:(Some 128)))

let flow_mod_bytes ~xid =
  Of_codec.encode ~xid
    (Of_codec.Flow_mod
       (Of_flow_mod.add ~match_:Of_match.wildcard_all
          ~actions:[ Of_action.output 2 ] ()))

let pkt_out_bytes ~xid =
  Of_codec.encode ~xid
    (Of_codec.Packet_out (Of_packet_out.release ~buffer_id:1l ~out_port:2))

let test_capture_counts_by_type_and_direction () =
  let cap = Capture.create ~encap_overhead:66 () in
  let pkt_in = pkt_in_bytes ~xid:1l ~buffer_id:1l (tagged_frame ~flow_id:0 ~seq:0 ~flow_packets:1) in
  Capture.observe cap Capture.To_controller ~time:0.0 pkt_in;
  Capture.observe cap Capture.To_switch ~time:0.001 (flow_mod_bytes ~xid:1l);
  Capture.observe cap Capture.To_switch ~time:0.002 (pkt_out_bytes ~xid:1l);
  Alcotest.(check int) "up messages" 1 (Capture.messages cap Capture.To_controller);
  Alcotest.(check int) "down messages" 2 (Capture.messages cap Capture.To_switch);
  Alcotest.(check int) "up payload" (Bytes.length pkt_in)
    (Capture.payload_bytes cap Capture.To_controller);
  Alcotest.(check int) "up wire includes encap" (Bytes.length pkt_in + 66)
    (Capture.bytes cap Capture.To_controller);
  Alcotest.(check int) "pkt_in classified" 1
    (Capture.messages_of_type cap Capture.To_controller Of_wire.Msg_type.Packet_in);
  Alcotest.(check int) "flow_mod classified" 1
    (Capture.messages_of_type cap Capture.To_switch Of_wire.Msg_type.Flow_mod);
  Alcotest.(check (option (float 1e-12))) "first time" (Some 0.001)
    (Capture.first_time cap Capture.To_switch);
  Alcotest.(check (option (float 1e-12))) "last time" (Some 0.002)
    (Capture.last_time cap Capture.To_switch)

let test_capture_load () =
  let cap = Capture.create ~encap_overhead:0 () in
  (* 2 x 62500 bytes in 1 s = 1 Mbps, each frame inside the 16-bit
     wire length limit. *)
  let chunk = Of_codec.encode ~xid:1l (Of_codec.Echo_request (Bytes.make 62492 'x')) in
  Capture.observe cap Capture.To_controller ~time:0.0 chunk;
  Capture.observe cap Capture.To_controller ~time:0.5 chunk;
  Alcotest.(check (float 1e-9)) "1 Mbps" 1.0
    (Capture.load_mbps cap Capture.To_controller ~window:1.0)

let test_delay_setup_and_forwarding () =
  let d = Delay.create () in
  let f0 = tagged_frame ~flow_id:0 ~seq:0 ~flow_packets:2 in
  let f1 = tagged_frame ~flow_id:0 ~seq:1 ~flow_packets:2 in
  Delay.on_switch_ingress d ~time:1.0 f0;
  Delay.on_switch_ingress d ~time:1.1 f1;
  Delay.on_switch_egress d ~time:1.25 f0;
  Alcotest.(check int) "not complete yet" 0 (Delay.flows_completed d);
  Delay.on_switch_egress d ~time:1.4 f1;
  Alcotest.(check int) "complete" 1 (Delay.flows_completed d);
  let setup = Delay.flow_setup_delays d in
  Alcotest.(check int) "one setup sample" 1 (Stats.count setup);
  Alcotest.(check (float 1e-9)) "setup = first out - first in" 0.25
    (Stats.mean setup);
  let fwd = Delay.flow_forwarding_delays d in
  Alcotest.(check (float 1e-9)) "forwarding = last out - first in" 0.4
    (Stats.mean fwd)

let test_single_packet_flow_has_no_forwarding_delay () =
  let d = Delay.create () in
  let f = tagged_frame ~flow_id:3 ~seq:0 ~flow_packets:1 in
  Delay.on_switch_ingress d ~time:0.0 f;
  Delay.on_switch_egress d ~time:0.01 f;
  Alcotest.(check int) "setup recorded" 1 (Stats.count (Delay.flow_setup_delays d));
  Alcotest.(check int) "no forwarding sample" 0
    (Stats.count (Delay.flow_forwarding_delays d))

let test_controller_delay_pairing () =
  let d = Delay.create () in
  let frame = tagged_frame ~flow_id:0 ~seq:0 ~flow_packets:1 in
  Delay.on_switch_ingress d ~time:0.0 frame;
  Delay.on_to_controller d ~time:0.001 (pkt_in_bytes ~xid:10l ~buffer_id:1l frame);
  (* The first response with the same xid closes the pair... *)
  Delay.on_to_switch d ~time:0.0025 (flow_mod_bytes ~xid:10l);
  (* ...and the second does not double count. *)
  Delay.on_to_switch d ~time:0.003 (pkt_out_bytes ~xid:10l);
  let cd = Delay.controller_delays d in
  Alcotest.(check int) "one pair" 1 (Stats.count cd);
  Alcotest.(check (float 1e-9)) "delay" 0.0015 (Stats.mean cd);
  (* Switch delay = setup - controller delay, recorded on completion. *)
  Delay.on_switch_egress d ~time:0.004 frame;
  let sd = Delay.switch_delays d in
  Alcotest.(check (float 1e-9)) "switch delay" (0.004 -. 0.0015) (Stats.mean sd)

let test_unmatched_response_counted () =
  let d = Delay.create () in
  Delay.on_to_switch d ~time:0.0 (flow_mod_bytes ~xid:555l);
  Alcotest.(check int) "unmatched" 1 (Delay.unmatched_responses d)

let test_sampler_gauge () =
  let engine = Engine.create () in
  let v = ref 0.0 in
  let series = Sampler.gauge engine ~dt:0.1 ~until:0.55 (fun () -> !v) in
  ignore (Engine.schedule_at engine 0.25 (fun () -> v := 5.0));
  ignore (Engine.schedule_at engine 1.0 (fun () -> ()));
  Engine.run engine;
  Alcotest.(check int) "five samples" 5 (Timeseries.length series);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Timeseries.max_value series)

let test_sampler_cpu_utilization () =
  let engine = Engine.create () in
  let cpu = Cpu.create engine ~name:"c" ~cores:1 () in
  let series = Sampler.cpu_utilization engine ~dt:0.1 ~until:0.5 [ cpu ] in
  (* Busy 0.05 s in the first 0.1 s window -> 50%. *)
  Cpu.submit cpu ~work_s:0.05 (fun () -> ());
  ignore (Engine.schedule_at engine 0.6 (fun () -> ()));
  Engine.run engine;
  let values = Timeseries.values series in
  Alcotest.(check (float 1e-6)) "first window 50%" 50.0 values.(0);
  Alcotest.(check (float 1e-6)) "second window idle" 0.0 values.(1)

let test_report_table_and_csv () =
  let header = [ "a"; "bbb" ] and rows = [ [ "1"; "2" ]; [ "33"; "4" ] ] in
  let table = Report.table ~header ~rows in
  Alcotest.(check bool) "contains separator" true
    (String.split_on_char '\n' table |> List.length = 4);
  let csv = Report.csv ~header ~rows:[ [ "x,y"; "z" ] ] in
  Alcotest.(check string) "escapes commas" "a,bbb\n\"x,y\",z\n" csv;
  Alcotest.(check string) "ms formatting" "1.500" (Report.fmt_ms 1.5e-3)

(* Regression: the bar length used to truncate to zero for any bucket
   dwarfed by the peak, rendering non-empty buckets as empty bars. *)
let test_histogram_minimum_bar () =
  let stats = Stats.create ~keep_samples:true () in
  for _ = 1 to 1000 do
    Stats.add stats 1.0
  done;
  Stats.add stats 10.0;
  let rendered = Report.histogram ~bins:2 ~width:40 stats in
  let bars =
    String.split_on_char '\n' rendered
    |> List.filter (fun line -> String.contains line '#')
  in
  Alcotest.(check int) "both non-empty buckets show a bar" 2 (List.length bars)

(* Regression: empty and degenerate series must render, not raise —
   saturated runs produce delay series with zero samples. *)
let test_histogram_empty_and_degenerate () =
  let empty = Stats.create ~keep_samples:true () in
  Alcotest.(check string)
    "empty series renders a placeholder" "(no samples)"
    (Report.histogram empty);
  let single = Stats.create ~keep_samples:true () in
  Stats.add single 2.5;
  let rendered = Report.histogram ~bins:8 single in
  Alcotest.(check bool) "single sample collapses to one bucket" true
    (String.split_on_char '\n' rendered
    |> List.filter (fun line -> String.contains line '#')
    |> List.length = 1)

let test_histogram_bucket_edges () =
  let stats = Stats.create ~keep_samples:true () in
  List.iter (Stats.add stats) [ 0.0; 1.0; 2.0; 3.0; 4.0 ];
  let rendered =
    Report.histogram ~bins:4 ~width:8
      ~fmt:(fun v -> string_of_int (int_of_float v))
      stats
  in
  (* The last bucket is closed: a sample equal to the maximum lands in
     it rather than overflowing, so [3, 4] holds both 3.0 and 4.0. *)
  let last_row =
    String.split_on_char '\n' rendered
    |> List.filter (fun line ->
           String.length line >= 6 && String.sub line 0 6 = "[3, 4]")
  in
  match last_row with
  | [ row ] ->
      let trimmed = String.trim row in
      Alcotest.(check bool) "closed last bucket counts the max sample" true
        (String.contains trimmed '#'
        && trimmed.[String.length trimmed - 1] = '2')
  | _ -> Alcotest.fail ("expected one [3, 4] row in:\n" ^ rendered)

(* Regression: the timeline must render injected crash/restart/
   reconciliation events distinctly from session-state transitions —
   marked, merged chronologically, with a legend — while keeping the
   event-free rendering byte-identical to the historical form. *)
let test_timeline_events () =
  let transitions = [ (0.0, "up"); (0.15, "down"); (0.2, "up") ] in
  Alcotest.(check string)
    "no events: historical rendering"
    "up@t0.000s -> down@t0.150s -> up@t0.200s"
    (Report.timeline transitions);
  Alcotest.(check string)
    "explicit empty events change nothing"
    (Report.timeline transitions)
    (Report.timeline ~events:[] transitions);
  let events =
    [
      (0.15, "switch crash (cold)");
      (0.2, "switch restart");
      (0.21, "reconciliation done (sw-0)");
    ]
  in
  Alcotest.(check string)
    "events marked, merged after the state they caused, legend appended"
    ("up@t0.000s -> down@t0.150s -> ![switch crash (cold)]@t0.150s -> "
   ^ "up@t0.200s -> ^[switch restart]@t0.200s -> "
   ^ "~[reconciliation done (sw-0)]@t0.210s"
   ^ " [legend: ![crash] ^[restart] ~[reconciliation]]")
    (Report.timeline ~events transitions);
  Alcotest.(check string)
    "events alone still render"
    ("![controller crash (warm)]@t0.100s"
   ^ " [legend: ![crash] ^[restart] ~[reconciliation]]")
    (Report.timeline ~events:[ (0.1, "controller crash (warm)") ] []);
  Alcotest.(check string) "both empty" "(none)" (Report.timeline [])

let suite =
  [
    Alcotest.test_case "capture counts by type and direction" `Quick
      test_capture_counts_by_type_and_direction;
    Alcotest.test_case "capture load" `Quick test_capture_load;
    Alcotest.test_case "setup and forwarding delays" `Quick
      test_delay_setup_and_forwarding;
    Alcotest.test_case "single-packet flow: no forwarding sample" `Quick
      test_single_packet_flow_has_no_forwarding_delay;
    Alcotest.test_case "controller delay pairing by xid" `Quick
      test_controller_delay_pairing;
    Alcotest.test_case "unmatched responses counted" `Quick
      test_unmatched_response_counted;
    Alcotest.test_case "gauge sampler" `Quick test_sampler_gauge;
    Alcotest.test_case "cpu utilization sampler" `Quick test_sampler_cpu_utilization;
    Alcotest.test_case "report table and csv" `Quick test_report_table_and_csv;
    Alcotest.test_case "histogram renders dominated buckets" `Quick
      test_histogram_minimum_bar;
    Alcotest.test_case "histogram bucket edges" `Quick
      test_histogram_bucket_edges;
    Alcotest.test_case "histogram empty and degenerate series" `Quick
      test_histogram_empty_and_degenerate;
    Alcotest.test_case "timeline renders crash events distinctly" `Quick
      test_timeline_events;
  ]
