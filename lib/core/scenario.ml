open Sdn_sim
open Sdn_net
open Sdn_measure

type t = {
  engine : Engine.t;
  switch : Sdn_switch.Switch.t;
  controller : Sdn_controller.Controller.t;
  check : Sdn_check.Check.t option;
  capture : Capture.t;
  delay : Delay.t;
  host1_link : Bytes.t Link.t;
  host2_link : Bytes.t Link.t;
  to_host1 : Bytes.t Link.t;
  to_host2 : Bytes.t Link.t;
  to_controller : Bytes.t Link.t;
  to_switch : Bytes.t Link.t;
  faults_up : Faults.t;
  faults_down : Faults.t;
  traffic_rng : Rng.t;
  mutable host1_received : int;
  mutable host2_received : int;
  (* Crash schedule interpretation: (time, description) per injected
     crash/restart, oldest first once reversed. *)
  mutable crash_events_rev : (float * string) list;
}

let host1_ip = Ip.make 10 0 0 1
let host2_ip = Ip.make 10 0 0 2

let build (config : Config.t) =
  let engine = Engine.create ~queue:config.Config.event_queue () in
  let root_rng = Rng.of_int config.Config.seed in
  let traffic_rng = Rng.split root_rng in
  let switch_rng = Rng.split root_rng in
  let controller_rng = Rng.split root_rng in
  let capture = Capture.create ~encap_overhead:Calibration.encap_overhead_bytes () in
  let delay = Delay.create () in
  let check =
    if config.Config.check then Some (Sdn_check.Check.create ()) else None
  in
  let addressing = Sdn_traffic.Addressing.default in
  let switch_config =
    {
      Sdn_switch.Switch.default_config with
      Sdn_switch.Switch.mechanism = config.Config.mechanism;
      buffer_capacity = max 1 config.Config.buffer_capacity;
      miss_send_len = config.Config.miss_send_len;
      resend_timeout = config.Config.resend_timeout;
      resend_multiplier = config.Config.resend_multiplier;
      resend_cap = config.Config.resend_cap;
      resend_jitter = config.Config.resend_jitter;
      max_resends = config.Config.max_resends;
      flow_table_capacity = config.Config.flow_table_capacity;
      echo_interval = config.Config.echo_interval;
      echo_misses = config.Config.echo_misses;
      fail_mode = config.Config.fail_mode;
      overload_watermark = config.Config.overload_watermark;
      buf_policy = config.Config.buf_policy;
      (* Headroom for the non-static policies: twice the QoS queues'
         combined capacity, so complete sharing / DT have real slack to
         move between the ingress pool and the egress classes. Static
         ignores it (admission is per-class quota). *)
      shared_headroom =
        (match (config.Config.buf_policy, config.Config.qos) with
        | Some _, Some qos ->
            2
            * List.fold_left
                (fun acc (q : Sdn_switch.Egress_queue.queue_config) ->
                  acc + q.Sdn_switch.Egress_queue.capacity)
                0 qos.Config.queues
        | _, _ -> 0);
    }
  in
  (* buffer_capacity = 0 means the no-buffer configuration. *)
  let switch_config =
    if config.Config.buffer_capacity = 0 then
      { switch_config with Sdn_switch.Switch.mechanism = Sdn_switch.Switch.No_buffer }
    else switch_config
  in
  let switch =
    Sdn_switch.Switch.create engine ?check ~config:switch_config
      ~costs:config.Config.switch_costs ~rng:switch_rng ()
  in
  let hosts =
    [
      (host1_ip, addressing.Sdn_traffic.Addressing.src_mac, 1);
      (host2_ip, addressing.Sdn_traffic.Addressing.dst_mac, 2);
    ]
  in
  let app =
    match config.Config.qos with
    | None ->
        Sdn_controller.Apps.forwarding ~hosts
          ~idle_timeout:config.Config.rule_idle_timeout ()
    | Some qos ->
        Sdn_controller.Apps.qos_forwarding ~hosts
          ~classify:qos.Config.classify
          ~idle_timeout:config.Config.rule_idle_timeout ()
  in
  let controller =
    Sdn_controller.Controller.create engine ~app
      ~costs:config.Config.controller_costs ~rng:controller_rng ?check
      ~release_strategy:config.Config.release_strategy
      ~echo_interval:config.Config.echo_interval
      ~echo_misses:config.Config.echo_misses ()
  in
  (* The legacy [control_loss_rate] knob folds into the fault plan's
     independent-loss field; each direction of the control channel gets
     its own plan (and RNG stream) so the schedules are independent but
     both derived from the run seed. *)
  let fault_spec =
    let spec = config.Config.faults in
    if config.Config.control_loss_rate > 0.0 && spec.Faults.loss_rate = 0.0
    then { spec with Faults.loss_rate = config.Config.control_loss_rate }
    else spec
  in
  let faults_up = Faults.create ~spec:fault_spec ~rng:(Rng.split root_rng) () in
  let faults_down =
    Faults.create ~spec:fault_spec ~rng:(Rng.split root_rng) ()
  in
  let scenario = ref None in
  let get () = Option.get !scenario in
  (* Host ingress links: measurement sees the frame as it reaches the
     switch. *)
  let host1_link =
    Link.create engine ~name:"host1->switch"
      ~bandwidth_bps:Calibration.data_link_bandwidth_bps
      ~propagation_s:Calibration.data_link_latency
      ~receiver:(fun frame ->
        Delay.on_switch_ingress delay ~time:(Engine.now engine) frame;
        Sdn_switch.Switch.handle_frame switch ~in_port:1 frame)
      ()
  in
  let host2_link =
    Link.create engine ~name:"host2->switch"
      ~bandwidth_bps:Calibration.data_link_bandwidth_bps
      ~propagation_s:Calibration.data_link_latency
      ~receiver:(fun frame ->
        Delay.on_switch_ingress delay ~time:(Engine.now engine) frame;
        Sdn_switch.Switch.handle_frame switch ~in_port:2 frame)
      ()
  in
  (* Egress links: the capture hook sees the frame the instant the
     switch puts it on the wire, which is the paper's "packet leaving
     the switch". *)
  let to_host1 =
    Link.create engine ~name:"switch->host1"
      ~bandwidth_bps:Calibration.data_link_bandwidth_bps
      ~propagation_s:Calibration.data_link_latency
      ~capture:(fun ~time ~size:_ frame -> Delay.on_switch_egress delay ~time frame)
      ~receiver:(fun _frame ->
        let s = get () in
        s.host1_received <- s.host1_received + 1)
      ()
  in
  let to_host2 =
    Link.create engine ~name:"switch->host2"
      ~bandwidth_bps:
        (Option.value config.Config.egress_bandwidth_bps
           ~default:Calibration.data_link_bandwidth_bps)
      ~propagation_s:Calibration.data_link_latency
      ~capture:(fun ~time ~size:_ frame -> Delay.on_switch_egress delay ~time frame)
      ~receiver:(fun _frame ->
        let s = get () in
        s.host2_received <- s.host2_received + 1)
      ()
  in
  let to_controller =
    Link.create engine ~name:"switch->controller"
      ~bandwidth_bps:Calibration.control_link_bandwidth_bps
      ~propagation_s:Calibration.control_link_latency ~faults:faults_up
      ~capture:(fun ~time ~size:_ buf ->
        Capture.observe capture Capture.To_controller ~time buf;
        Delay.on_to_controller delay ~time buf)
      ~receiver:(fun buf -> Sdn_controller.Controller.handle_message controller buf)
      ()
  in
  let to_switch =
    Link.create engine ~name:"controller->switch"
      ~bandwidth_bps:Calibration.control_link_bandwidth_bps
      ~propagation_s:Calibration.control_link_latency ~faults:faults_down
      ~capture:(fun ~time ~size:_ buf ->
        Capture.observe capture Capture.To_switch ~time buf)
      ~receiver:(fun buf ->
        Delay.on_to_switch delay ~time:(Engine.now engine) buf;
        Sdn_switch.Switch.handle_of_message switch buf)
      ()
  in
  Sdn_switch.Switch.set_port switch ~port:1 to_host1;
  Sdn_switch.Switch.set_port switch ~port:2 to_host2;
  (match config.Config.qos with
  | Some qos ->
      Sdn_switch.Switch.set_port_scheduler switch ~port:1
        ~policy:qos.Config.policy ~queues:qos.Config.queues;
      Sdn_switch.Switch.set_port_scheduler switch ~port:2
        ~policy:qos.Config.policy ~queues:qos.Config.queues
  | None -> ());
  Sdn_switch.Switch.set_controller_link switch to_controller;
  Sdn_controller.Controller.set_switch_link controller to_switch;
  Sdn_switch.Switch.start switch;
  let enable_flow_buffer =
    match config.Config.mechanism with
    | Config.Flow_granularity ->
        Some
          {
            Sdn_openflow.Of_ext.timeout = config.Config.resend_timeout;
            multiplier = config.Config.resend_multiplier;
            cap = config.Config.resend_cap;
            max_resends = config.Config.max_resends;
          }
    | Config.No_buffer | Config.Packet_granularity -> None
  in
  Sdn_controller.Controller.start controller ?enable_flow_buffer
    ~miss_send_len:config.Config.miss_send_len ();
  (* Crash schedule: the fault plan's crash entries are interpreted
     here, at the topology layer — the only place that knows both
     endpoints. Each crash kills one node (which force-downs its own
     session state) and delivers the TCP reset to the surviving peer;
     the restart re-enters the ordinary reconnect machinery, whose
     first answered probe triggers resync and, because the disconnect
     was a crash, the controller's flow-state reconciliation pass. *)
  let note_crash_event time what =
    let s = get () in
    s.crash_events_rev <- (time, what) :: s.crash_events_rev
  in
  List.iter
    (fun (c : Faults.crash) ->
      let mode_s = Faults.restart_mode_to_string c.Faults.mode in
      ignore
        (Engine.schedule_at engine c.Faults.at_s (fun () ->
             note_crash_event (Engine.now engine)
               (Printf.sprintf "switch crash (%s)" mode_s);
             Sdn_switch.Switch.crash switch ~mode:c.Faults.mode;
             Sdn_controller.Controller.note_switch_disconnect controller
               ~switch:0));
      ignore
        (Engine.schedule_at engine
           (c.Faults.at_s +. c.Faults.down_s)
           (fun () ->
             note_crash_event (Engine.now engine) "switch restart";
             Sdn_switch.Switch.restart switch)))
    (Faults.crashes_for fault_spec Faults.Switch_node);
  List.iter
    (fun (c : Faults.crash) ->
      let mode_s = Faults.restart_mode_to_string c.Faults.mode in
      ignore
        (Engine.schedule_at engine c.Faults.at_s (fun () ->
             note_crash_event (Engine.now engine)
               (Printf.sprintf "controller crash (%s)" mode_s);
             Sdn_controller.Controller.crash controller ~mode:c.Faults.mode;
             Sdn_switch.Session.note_disconnect
               (Sdn_switch.Switch.session switch)));
      ignore
        (Engine.schedule_at engine
           (c.Faults.at_s +. c.Faults.down_s)
           (fun () ->
             note_crash_event (Engine.now engine) "controller restart";
             Sdn_controller.Controller.restart controller ~mode:c.Faults.mode)))
    (Faults.crashes_for fault_spec Faults.Controller_node);
  let s =
    {
      engine;
      switch;
      controller;
      check;
      capture;
      delay;
      host1_link;
      host2_link;
      to_host1;
      to_host2;
      to_controller;
      to_switch;
      faults_up;
      faults_down;
      traffic_rng;
      host1_received = 0;
      host2_received = 0;
      crash_events_rev = [];
    }
  in
  scenario := Some s;
  s

let crash_events t = List.rev t.crash_events_rev

let inject t ~in_port frame =
  let link =
    match in_port with
    | 1 -> t.host1_link
    | 2 -> t.host2_link
    | p -> invalid_arg (Printf.sprintf "Scenario.inject: no host on port %d" p)
  in
  Link.send link ~size:(Bytes.length frame) frame

let run_until_quiet ?(grace = 2.0) ?(min_time = 0.0) t =
  (* Run in grace-sized slices until every injected packet has either
     egressed or been dropped (bounded rounds — the housekeeping sweep
     reschedules forever, so a plain drain would never terminate). *)
  let rec loop rounds limit =
    Engine.run ~until:limit t.engine;
    let counters = Sdn_switch.Switch.counters t.switch in
    let settled =
      Delay.packets_out t.delay + counters.Sdn_switch.Switch.frames_dropped
    in
    if rounds < 10 && settled < Delay.packets_in t.delay then
      loop (rounds + 1) (limit +. grace)
  in
  loop 0 (Float.max min_time (Engine.now t.engine) +. grace)
