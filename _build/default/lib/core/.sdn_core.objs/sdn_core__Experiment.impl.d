lib/core/experiment.ml: Capture Config Cpu Delay Float Format List Option Patterns Pktgen Scenario Sdn_controller Sdn_measure Sdn_sim Sdn_switch Sdn_traffic Stats
