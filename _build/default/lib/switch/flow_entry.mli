(** One installed flow-table rule with its counters and timeouts. *)

open Sdn_openflow

type t = {
  match_ : Of_match.t;
  priority : int;
  actions : Of_action.t list;
  cookie : int64;
  idle_timeout : float;  (** seconds; 0 = no idle expiry *)
  hard_timeout : float;  (** seconds; 0 = no hard expiry *)
  send_flow_rem : bool;  (** notify the controller on removal *)
  installed_at : float;
  mutable last_used : float;
  mutable packets : int64;
  mutable bytes : int64;
}

val of_flow_mod : Of_flow_mod.t -> now:float -> t
(** Build an entry from an [Add]/[Modify] message at installation
    time. *)

val touch : t -> now:float -> bytes:int -> unit
(** Update counters for a matched packet. *)

val is_expired : t -> now:float -> bool
(** True once the idle or hard timeout has elapsed. *)

val expires_at : t -> float
(** Earliest instant the entry can expire, given current [last_used];
    [infinity] if it never expires. *)

val to_stats : t -> now:float -> Of_stats.flow_stats
(** Render as an OpenFlow flow-stats record. *)

val expiry_reason : t -> now:float -> Of_flow_removed.reason option
(** Which timeout (if any) has elapsed; hard timeouts take precedence
    when both have, as in the OpenFlow specification. *)

val to_flow_removed :
  t -> now:float -> reason:Of_flow_removed.reason -> Of_flow_removed.t
(** Render as the FLOW_REMOVED notification body. *)

val pp : Format.formatter -> t -> unit
