(** OpenFlow 1.0 flow match ([ofp_match], 40 bytes) with wildcards.

    Each field is optional: [None] means wildcarded. Network addresses
    carry a prefix length so CIDR wildcarding round-trips through the
    6-bit wildcard sub-fields of the wire format. *)

open Sdn_net

type t = {
  in_port : int option;
  dl_src : Mac.t option;
  dl_dst : Mac.t option;
  dl_vlan : int option;
  dl_vlan_pcp : int option;
  dl_type : int option;
  nw_tos : int option;
  nw_proto : int option;
  nw_src : (Ip.t * int) option;  (** address, prefix bits 1..32 *)
  nw_dst : (Ip.t * int) option;
  tp_src : int option;
  tp_dst : int option;
}

val size : int
(** 40 bytes. *)

val wildcard_all : t
(** Matches every packet. *)

val exact_of_packet : ?in_port:int -> Packet.t -> t
(** The fully-specified match OpenFlow 1.0 derives from a packet: L2
    fields always, L3/L4 fields when present. *)

val of_flow_key : Flow_key.t -> t
(** Match on the transport 5-tuple only (plus [dl_type] = IPv4, which
    OpenFlow requires before IP fields may be matched). *)

val matches : t -> in_port:int -> Packet.t -> bool
(** Does the packet, arriving on [in_port], satisfy the match? *)

val subsumes : general:t -> specific:t -> bool
(** [subsumes ~general ~specific]: every packet matched by [specific]
    is matched by [general] (conservative for prefixes: requires the
    general prefix to contain the specific one). Used by flow-table
    overlap checks. *)

val write : t -> Bytes.t -> int -> unit
val read : Bytes.t -> int -> (t, string) result

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
