(* Command-line front end for the reproduction: single runs, sweeps,
   individual figures, the full evaluation, and calibration checks. *)

open Cmdliner
open Sdn_core

let mechanism_conv =
  let parse = function
    | "no-buffer" | "none" -> Ok Config.No_buffer
    | "packet" | "packet-granularity" -> Ok Config.Packet_granularity
    | "flow" | "flow-granularity" -> Ok Config.Flow_granularity
    | s -> Error (`Msg (Printf.sprintf "unknown mechanism %S" s))
  in
  let print fmt m =
    Format.pp_print_string fmt
      (match m with
      | Config.No_buffer -> "no-buffer"
      | Config.Packet_granularity -> "packet-granularity"
      | Config.Flow_granularity -> "flow-granularity")
  in
  Arg.conv (parse, print)

let mechanism_arg =
  Arg.(
    value
    & opt mechanism_conv Config.Packet_granularity
    & info [ "m"; "mechanism" ] ~docv:"MECH"
        ~doc:"Buffer mechanism: no-buffer, packet-granularity or \
              flow-granularity.")

let buffer_arg =
  Arg.(
    value & opt int 256
    & info [ "b"; "buffer" ] ~docv:"UNITS" ~doc:"Buffer capacity in units.")

let rate_arg =
  Arg.(
    value & opt float 30.0
    & info [ "r"; "rate" ] ~docv:"MBPS" ~doc:"Sending rate in Mbps.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let reps_arg =
  Arg.(
    value & opt int 20
    & info [ "n"; "reps" ] ~docv:"N" ~doc:"Repetitions per rate point.")

let rates_arg =
  Arg.(
    value
    & opt (list float) Sweep.default_rates
    & info [ "rates" ] ~docv:"R1,R2,..." ~doc:"Sending rates to sweep (Mbps).")

let faults_conv =
  let parse s =
    match Sdn_sim.Faults.spec_of_string s with
    | Ok spec -> Ok spec
    | Error msg -> Error (`Msg msg)
  in
  let print fmt spec =
    Format.pp_print_string fmt (Sdn_sim.Faults.spec_to_string spec)
  in
  Arg.conv (parse, print)

let faults_arg =
  Arg.(
    value
    & opt faults_conv Sdn_sim.Faults.none
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Control-channel fault plan: comma-separated $(b,loss=P), \
           $(b,burst=PGB:PBG:LBAD[:LGOOD]), $(b,jitter=S) and \
           $(b,outage=T0-T1[+T0-T1...]). The plan is driven by the run's \
           seed: the same seed and spec reproduce the same fault schedule \
           message for message.")

(* --crash takes the fault-plan crash grammar without the key: the
   value is parsed by prefixing "crash=" and handing it to the spec
   parser, so the two spellings can never drift apart. *)
let crash_conv =
  let parse s =
    match Sdn_sim.Faults.spec_of_string ("crash=" ^ s) with
    | Ok spec -> Ok spec.Sdn_sim.Faults.crashes
    | Error msg -> Error (`Msg msg)
  in
  let print fmt crashes =
    Format.pp_print_string fmt
      (String.concat "+"
         (List.map
            (fun (c : Sdn_sim.Faults.crash) ->
              Printf.sprintf "%s:%g:%g:%s"
                (Sdn_sim.Faults.crash_node_to_string c.Sdn_sim.Faults.node)
                c.Sdn_sim.Faults.at_s c.Sdn_sim.Faults.down_s
                (Sdn_sim.Faults.restart_mode_to_string c.Sdn_sim.Faults.mode))
            crashes))
  in
  Arg.conv (parse, print)

let crash_arg =
  Arg.(
    value
    & opt crash_conv []
    & info [ "crash" ] ~docv:"NODE:AT:DOWN:MODE[+...]"
        ~doc:
          "Schedule node crashes: $(b,NODE) is $(b,switch) or \
           $(b,controller), $(b,AT) the crash instant (seconds), $(b,DOWN) \
           the downtime before the restart, $(b,MODE) $(b,warm) (process \
           state lost, device tables survive) or $(b,cold) (buffered \
           packets wiped, flow table cleared, configuration reset). \
           Equivalent to $(b,crash=...) inside $(b,--faults); the two \
           merge.")

let watermark_arg =
  Arg.(
    value & opt float 1.0
    & info [ "watermark" ] ~docv:"FRACTION"
        ~doc:
          "Overload-guard high watermark: once the buffer pool is this \
           full (fraction of capacity), new miss chains are shed at \
           admission instead of evicting in-flight ones. $(b,1.0) (the \
           default) disables the guard.")

let buf_policy_conv =
  let parse s =
    match Sdn_switch.Buf_policy.kind_of_string s with
    | Ok k -> Ok k
    | Error msg -> Error (`Msg msg)
  in
  let print fmt k =
    Format.pp_print_string fmt (Sdn_switch.Buf_policy.kind_to_string k)
  in
  Arg.conv (parse, print)

let buf_policy_arg =
  Arg.(
    value
    & opt (some buf_policy_conv) None
    & info [ "buf-policy" ] ~docv:"POLICY"
        ~doc:
          "Shared-buffer sharing discipline across the packet pool and QoS \
           queues: $(b,static) (private partitions, the reference), \
           $(b,share) (complete sharing), $(b,dt:ALPHA) (Dynamic Threshold: \
           admit while the class holds less than ALPHA x free), or \
           $(b,tdt[:ALPHA[:TARGET_MS]]) (adaptive threshold tightening \
           under queueing delay). Unset (the default) keeps the legacy \
           private buffers and byte-identical output.")

let fail_mode_conv =
  let parse s =
    match Sdn_switch.Session.fail_mode_of_string s with
    | Ok m -> Ok m
    | Error msg -> Error (`Msg msg)
  in
  let print fmt m =
    Format.pp_print_string fmt (Sdn_switch.Session.fail_mode_to_string m)
  in
  Arg.conv (parse, print)

let fail_mode_arg =
  Arg.(
    value
    & opt fail_mode_conv Config.Fail_secure
    & info [ "fail-mode" ] ~docv:"MODE"
        ~doc:
          "What the switch does with miss-match traffic while its controller \
           session is down: $(b,secure) drops it and freezes buffered chains; \
           $(b,standalone) keeps forwarding through an internal L2 learning \
           path.")

let echo_interval_arg =
  Arg.(
    value & opt float 0.0
    & info [ "echo-interval" ] ~docv:"SECONDS"
        ~doc:
          "Control-session keepalive period on both endpoints. 0 (the \
           default) disables the liveness machinery entirely.")

let echo_misses_arg =
  Arg.(
    value & opt int 3
    & info [ "echo-misses" ] ~docv:"N"
        ~doc:"Unanswered keepalives before a session is declared down.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~env:(Cmd.Env.info "SDN_BUFFER_JOBS")
        ~doc:
          "Worker domains for independent replications (sweep points, \
           repetitions). Purely an execution-width knob: results are merged \
           by task index, so any value produces byte-identical output; \
           $(b,1) (the default) runs the sequential reference path. Combine \
           with $(b,--check) to arm the parallel-equivalence replay, which \
           re-runs a sampled task sequentially and compares the results \
           field for field.")

let event_queue_conv =
  let parse = function
    | "heap" -> Ok `Heap
    | "wheel" -> Ok `Wheel
    | s -> Error (`Msg (Printf.sprintf "unknown event queue %S" s))
  in
  let print fmt q =
    Format.pp_print_string fmt
      (match q with `Heap -> "heap" | `Wheel -> "wheel")
  in
  Arg.conv (parse, print)

let event_queue_arg =
  Arg.(
    value
    & opt event_queue_conv `Heap
    & info [ "event-queue" ] ~docv:"QUEUE"
        ~doc:
          "Pending-event store for the simulation engine: $(b,heap) (the \
           default index-tracked binary heap) or $(b,wheel) (the \
           hierarchical timer wheel built for extreme pending-event \
           counts). Both dispatch in identical order, so this never \
           changes results — only runtime.")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Arm the runtime protocol-invariant checker (buffer conservation, \
           single PACKET_IN per chain, xid uniqueness, session transitions, \
           codec round-trip). A clean run prints byte-identically to an \
           unchecked one; any violation is reported with its event trace and \
           the command exits 1.")

(* Shared --check epilogue: report every dirty run and fail the command. *)
let check_exit results =
  let dirty =
    List.filter_map
      (fun (label, (r : Experiment.result)) ->
        Option.map
          (fun rep -> (label, r.Experiment.check_violations, rep))
          r.Experiment.check_report)
      results
  in
  if dirty <> [] then begin
    List.iter
      (fun (label, n, rep) ->
        Printf.eprintf "invariant violations in %s: %d\n%s\n" label n rep)
      dirty;
    exit 1
  end

let workload_arg =
  let workload_conv =
    let parse = function
      | "exp-a" -> Ok (Config.Exp_a { n_flows = 1000 })
      | "exp-b" ->
          Ok (Config.Exp_b { n_flows = 50; packets_per_flow = 20; concurrent = 5 })
      | "burst" -> Ok (Config.Udp_burst { n_packets = 200 })
      | "poisson" -> Ok (Config.Poisson_flows { n_flows = 1000 })
      | "poisson-mix" ->
          Ok (Config.Poisson_mix { n_packets = 1000; miss_fraction = 0.5 })
      | s -> Error (`Msg (Printf.sprintf "unknown workload %S" s))
    in
    let print fmt w =
      Format.pp_print_string fmt
        (match w with
        | Config.Exp_a _ -> "exp-a"
        | Config.Exp_b _ -> "exp-b"
        | Config.Udp_burst _ -> "burst"
        | Config.Poisson_flows _ -> "poisson"
        | Config.Poisson_mix _ -> "poisson-mix")
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt workload_conv (Config.Exp_a { n_flows = 1000 })
    & info [ "w"; "workload" ] ~docv:"WORKLOAD"
        ~doc:"Workload: exp-a (1000 single-packet flows), exp-b (50x20 \
              cross-sequence), burst, poisson (Poisson single-packet flows) \
              or poisson-mix (Poisson hit/miss mix).")

let run_cmd =
  let run mechanism buffer rate seed workload faults crashes watermark
      buf_policy echo_interval echo_misses fail_mode check jobs event_queue =
    let faults =
      {
        faults with
        Sdn_sim.Faults.crashes = faults.Sdn_sim.Faults.crashes @ crashes;
      }
    in
    let config =
      {
        Config.default with
        Config.mechanism;
        buffer_capacity = (if mechanism = Config.No_buffer then 0 else buffer);
        rate_mbps = rate;
        seed;
        workload;
        faults;
        overload_watermark = watermark;
        buf_policy;
        echo_interval;
        echo_misses;
        fail_mode;
        check;
        jobs;
        event_queue;
      }
    in
    let result = Experiment.run config in
    Format.printf "%a@." Experiment.pp_result result;
    check_exit [ (Config.label config, result) ]
  in
  let term =
    Term.(
      const run $ mechanism_arg $ buffer_arg $ rate_arg $ seed_arg
      $ workload_arg $ faults_arg $ crash_arg $ watermark_arg
      $ buf_policy_arg $ echo_interval_arg $ echo_misses_arg $ fail_mode_arg
      $ check_arg $ jobs_arg $ event_queue_arg)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run one experiment and print its metrics. A single run is always \
          one domain; $(b,--jobs) is recorded in the configuration and only \
          fans out the sweep commands.")
    term

let chaos_cmd =
  let loss_rates_arg =
    Arg.(
      value
      & opt (list float) Chaos.default_loss_rates
      & info [ "loss-rates" ] ~docv:"P1,P2,..."
          ~doc:"Control-channel loss rates to sweep.")
  in
  let outage_arg =
    Arg.(
      value & flag
      & info [ "outage" ]
          ~doc:
            "Run the outage sweep instead of the loss sweep: a scheduled \
             control-channel blackout against every mechanism and fail mode, \
             with the echo keepalive armed.")
  in
  let durations_arg =
    Arg.(
      value
      & opt (list float) Chaos.default_outage_durations
      & info [ "durations" ] ~docv:"S1,S2,..."
          ~doc:"Outage durations to sweep (seconds, with $(b,--outage)).")
  in
  let crash_sweep_arg =
    Arg.(
      value & flag
      & info [ "crash" ]
          ~doc:
            "Run the crash sweep instead of the loss sweep: a scheduled \
             node crash-restart (switch and controller, mid-incast) against \
             every mechanism, with the echo keepalive armed and the \
             post-restart flow-state reconciliation measured.")
  in
  let restart_modes_arg =
    let modes_conv =
      let parse = function
        | "both" -> Ok Chaos.default_crash_modes
        | s -> (
            match Sdn_sim.Faults.restart_mode_of_string s with
            | Ok m -> Ok [ m ]
            | Error msg -> Error (`Msg msg))
      in
      let print fmt = function
        | [ m ] ->
            Format.pp_print_string fmt (Sdn_sim.Faults.restart_mode_to_string m)
        | _ -> Format.pp_print_string fmt "both"
      in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt modes_conv Chaos.default_crash_modes
      & info [ "restart-mode" ] ~docv:"MODE"
          ~doc:
            "Restart mode(s) for the crash sweep: $(b,warm), $(b,cold) or \
             $(b,both) (the default).")
  in
  let downs_arg =
    Arg.(
      value
      & opt (list float) Chaos.default_crash_downs
      & info [ "downs" ] ~docv:"S1,S2,..."
          ~doc:"Crash downtimes to sweep (seconds, with $(b,--crash)).")
  in
  let policy_sweep_arg =
    Arg.(
      value & flag
      & info [ "policy" ]
          ~doc:
            "Run the buffer-policy sweep instead of the loss sweep: every \
             shared-buffer sharing discipline against every pool size under \
             a deterministic incast burst into a slow egress uplink, with \
             three strict-priority classes drawing on the shared pool.")
  in
  let policies_arg =
    Arg.(
      value
      & opt (list buf_policy_conv) Chaos.default_policies
      & info [ "policies" ] ~docv:"P1,P2,..."
          ~doc:
            "Sharing disciplines to sweep (with $(b,--policy)); same grammar \
             as $(b,--buf-policy).")
  in
  let buffers_arg =
    Arg.(
      value
      & opt (list int) Chaos.default_policy_buffers
      & info [ "buffers" ] ~docv:"N1,N2,..."
          ~doc:"Packet-pool capacities to sweep (with $(b,--policy)).")
  in
  let run seed rate loss_rates faults outage durations crash modes downs policy
      policies buffers check jobs =
    if policy then begin
      let base =
        { (Chaos.default_policy_base ~seed) with Config.check; jobs }
      in
      let points = Chaos.run_policy ~policies ~buffers ~base () in
      Chaos.print_policy_report points;
      check_exit
        (List.map
           (fun (p : Chaos.policy_point) ->
             (Printf.sprintf "policy/%s" (Config.label p.Chaos.config),
              p.Chaos.result))
           points)
    end
    else if crash then begin
      let base =
        {
          (Chaos.default_crash_base ~seed) with
          Config.rate_mbps = rate;
          check;
          jobs;
        }
      in
      let points = Chaos.run_crash ~modes ~downs ~base () in
      Chaos.print_crash_report points;
      check_exit
        (List.map
           (fun (p : Chaos.crash_point) ->
             ( Printf.sprintf "%s/%s/%s/%.0fms"
                 (Config.label p.Chaos.config)
                 (Sdn_sim.Faults.crash_node_to_string p.Chaos.node)
                 (Sdn_sim.Faults.restart_mode_to_string p.Chaos.mode)
                 (p.Chaos.down *. 1e3),
               p.Chaos.result ))
           points)
    end
    else if outage then begin
      let base =
        {
          (Chaos.default_outage_base ~seed) with
          Config.rate_mbps = rate;
          check;
          jobs;
        }
      in
      let points = Chaos.run_outage ~durations ~base () in
      Chaos.print_outage_report points;
      check_exit
        (List.map
           (fun (p : Chaos.outage_point) ->
             ( Printf.sprintf "%s/%s/%.0fms"
                 (Config.label p.Chaos.config)
                 (Sdn_switch.Session.fail_mode_to_string p.Chaos.fail_mode)
                 (p.Chaos.duration *. 1e3),
               p.Chaos.result ))
           points)
    end
    else begin
      let base =
        {
          (Chaos.default_base ~seed) with
          Config.rate_mbps = rate;
          faults;
          check;
          jobs;
        }
      in
      let points = Chaos.run ~loss_rates ~base () in
      Chaos.print_report points;
      check_exit
        (List.map
           (fun (p : Chaos.point) ->
             ( Printf.sprintf "%s/loss=%.0f%%"
                 (Config.label p.Chaos.config)
                 (p.Chaos.loss_rate *. 100.0),
               p.Chaos.result ))
           points)
    end
  in
  let term =
    Term.(
      const run $ seed_arg $ rate_arg $ loss_rates_arg $ faults_arg
      $ outage_arg $ durations_arg $ crash_sweep_arg $ restart_modes_arg
      $ downs_arg $ policy_sweep_arg $ policies_arg $ buffers_arg $ check_arg
      $ jobs_arg)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Sweep control-channel faults against every buffer mechanism: \
          independent loss by default, a scheduled blackout with \
          $(b,--outage), a node crash-restart with $(b,--crash), or the \
          shared-buffer policy grid with $(b,--policy). Deterministic: the \
          same seed yields a byte-identical report.")
    term

let figure_cmd =
  let all_ids =
    List.map fst Figures.exp_a_figures @ List.map fst Figures.exp_b_figures
  in
  let id_arg =
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun id -> (id, id)) all_ids))) None
      & info [] ~docv:"FIGURE"
          ~doc:
            (Printf.sprintf "Figure to reproduce: %s."
               (String.concat ", " all_ids)))
  in
  let run id rates reps jobs =
    match List.assoc_opt id Figures.exp_a_figures with
    | Some f -> f (Figures.run_exp_a ~rates ~reps ~jobs ())
    | None -> (
        match List.assoc_opt id Figures.exp_b_figures with
        | Some f -> f (Figures.run_exp_b ~rates ~reps ~jobs ())
        | None -> prerr_endline "unknown figure")
  in
  let term = Term.(const run $ id_arg $ rates_arg $ reps_arg $ jobs_arg) in
  Cmd.v
    (Cmd.info "figure" ~doc:"Reproduce one figure of the paper.")
    term

let all_cmd =
  let run rates reps jobs = Figures.run_all ~rates ~reps ~jobs () in
  let term = Term.(const run $ rates_arg $ reps_arg $ jobs_arg) in
  Cmd.v
    (Cmd.info "all" ~doc:"Reproduce every figure and the headline claims.")
    term

let export_cmd =
  let dir_arg =
    Arg.(
      value & opt string "results"
      & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Directory for the CSV files.")
  in
  let run dir rates reps jobs =
    let a = Figures.run_exp_a ~rates ~reps ~jobs () in
    let b = Figures.run_exp_b ~rates ~reps ~jobs () in
    Figures.export_csv ~dir a b;
    Printf.printf "wrote 16 figure CSVs to %s/\n" dir
  in
  let term = Term.(const run $ dir_arg $ rates_arg $ reps_arg $ jobs_arg) in
  Cmd.v
    (Cmd.info "export" ~doc:"Run both sweeps and export every figure as CSV.")
    term

let validate_cmd =
  let grid_arg =
    let grid_conv =
      let parse = function
        | "full" -> Ok Validate.full_grid
        | "quick" -> Ok Validate.quick_grid
        | "golden" -> Ok Validate.golden_grid
        | s -> Error (`Msg (Printf.sprintf "unknown grid %S" s))
      in
      let print fmt (g : Validate.grid) =
        Format.pp_print_string fmt
          (if g = Validate.full_grid then "full"
           else if g = Validate.quick_grid then "quick"
           else "golden")
      in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt grid_conv Validate.full_grid
      & info [ "g"; "grid" ] ~docv:"GRID"
          ~doc:
            "Validation grid: $(b,full) (5 utilizations x 3 offered loads x \
             3 reps x all controller profiles), $(b,quick) (the CI subset) \
             or $(b,golden) (the byte-stable fixture).")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"PATH"
          ~doc:"Also write the machine-readable agreement report to $(docv).")
  in
  let reconverge_arg =
    Arg.(
      value & flag
      & info [ "reconverge" ]
          ~doc:
            "Run the crash-reconvergence gate instead of a model grid: \
             inject a warm switch crash into the jackson rho=0.3 point and \
             assert the steady-state delay metrics re-enter the crash-free \
             tolerance bands after recovery (plus recovery-time and \
             reconciliation gates).")
  in
  let run grid reconverge csv_path check jobs =
    let report =
      if reconverge then Validate.reconvergence ~check ~jobs ()
      else Validate.run ~check ~jobs grid
    in
    print_string (Validate.summary report);
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Validate.csv report);
        close_out oc;
        Printf.printf "wrote %s\n" path)
      csv_path;
    if check && report.Validate.violations > 0 then exit 1;
    if not report.Validate.ok then exit 2
  in
  let term =
    Term.(const run $ grid_arg $ reconverge_arg $ csv_arg $ check_arg $ jobs_arg)
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Cross-validate the simulator against the analytical queueing \
          models: generate configurations inside each model's operating \
          regime, run them (deterministically, on $(b,--jobs) domains), and \
          assert per-metric agreement within tolerance. Exits 2 on \
          divergence, 1 on an invariant violation under $(b,--check).")
    term

let massive_cmd =
  let flows_arg =
    Arg.(
      value & opt int 1_000_000
      & info [ "flows" ] ~docv:"N"
          ~doc:"Flows injected through the full pipeline phase.")
  and shards_arg =
    Arg.(
      value & opt int 20
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Independent experiment shards the pipeline flows are split \
             into (the parallel grain for $(b,--jobs)).")
  and dp_flows_arg =
    Arg.(
      value & opt int 10_000
      & info [ "datapath-flows" ] ~docv:"N"
          ~doc:"Microflows installed in the datapath phase's fast path.")
  and dp_packets_arg =
    Arg.(
      value & opt int 1_000_000
      & info [ "datapath-packets" ] ~docv:"N"
          ~doc:"Packets pushed through the datapath phase.")
  in
  let run flows shards dp_flows dp_packets seed event_queue check jobs =
    (* Deterministic counters go to stdout (CI byte-compares them
       across --jobs widths and queue backends); wall-clock rates go
       to stderr only. *)
    let now () = Int64.to_float (Monotonic_clock.now ()) in
    let t0 = now () in
    let dp =
      Massive.run_datapath ~flows:dp_flows ~packets:dp_packets ~check ()
    in
    let dp_ns = now () -. t0 in
    Printf.printf
      "massive: datapath flows=%d packets=%d forwarded=%d misses=%d \
       drops=%d pool_slots=%d\n"
      dp.Massive.dp_flows dp.Massive.dp_packets dp.Massive.dp_forwarded
      dp.Massive.dp_misses dp.Massive.dp_drops dp.Massive.dp_pool_slots;
    let t1 = now () in
    let pl =
      Massive.run_pipeline ~flows ~shards ~event_queue ~check ~jobs ~seed ()
    in
    let pl_ns = now () -. t1 in
    Printf.printf
      "massive: pipeline shards=%d flows=%d packets_in=%d packets_out=%d \
       flows_completed=%d sim_events=%d\n"
      pl.Massive.pl_shards pl.Massive.pl_flows pl.Massive.pl_packets_in
      pl.Massive.pl_packets_out pl.Massive.pl_flows_completed
      pl.Massive.pl_sim_events;
    Printf.eprintf "massive: datapath %.2f Mpkt/s (wall %.3f s)\n"
      (float_of_int dp.Massive.dp_packets /. dp_ns *. 1e3)
      (dp_ns /. 1e9);
    Printf.eprintf
      "massive: pipeline %.2f Mevents/s (wall %.3f s, %d jobs, %s queue)\n"
      (float_of_int pl.Massive.pl_sim_events /. pl_ns *. 1e3)
      (pl_ns /. 1e9) jobs
      (match event_queue with `Heap -> "heap" | `Wheel -> "wheel");
    let violations =
      dp.Massive.dp_check_violations + pl.Massive.pl_check_violations
    in
    Option.iter (Printf.eprintf "%s\n") dp.Massive.dp_check_report;
    List.iter (Printf.eprintf "%s\n") pl.Massive.pl_check_reports;
    if violations > 0 then begin
      Printf.eprintf "massive: %d invariant violations\n" violations;
      exit 1
    end
  in
  let term =
    Term.(
      const run $ flows_arg $ shards_arg $ dp_flows_arg $ dp_packets_arg
      $ seed_arg $ event_queue_arg $ check_arg $ jobs_arg)
  in
  Cmd.v
    (Cmd.info "massive"
       ~doc:
         "Extreme-scale throughput scenario: saturate the allocation-free \
          frame-pool datapath, then push an extreme Poisson flow count \
          through the full switch/controller pipeline in independent \
          shards. Counters print deterministically on stdout; wall-clock \
          packet and event rates print on stderr.")
    term

let calibration_cmd =
  let run jobs =
    let checks = Calibration.sanity ~jobs () in
    List.iter
      (fun (what, ok) ->
        Printf.printf "[%s] %s\n" (if ok then "ok" else "FAIL") what)
      checks;
    if List.for_all snd checks then ()
    else exit 1
  in
  Cmd.v
    (Cmd.info "calibration" ~doc:"Check the calibration sanity conditions.")
    Term.(const run $ jobs_arg)

let default_info =
  Cmd.info "sdn_buffer_cli" ~version:"1.0.0"
    ~doc:
      "Reproduction of 'Adopting SDN Switch Buffer: Benefits Analysis and \
       Mechanism Design' (ICDCS 2017) on a simulated testbed."

let () =
  exit
    (Cmd.eval
       (Cmd.group default_info
          [
            run_cmd; chaos_cmd; figure_cmd; all_cmd; export_cmd; validate_cmd;
            massive_cmd; calibration_cmd;
          ]))
