lib/traffic/pktgen.ml: Engine List Patterns Sdn_sim
