(** One experiment run's configuration. *)

type mechanism = Sdn_switch.Switch.mechanism =
  | No_buffer
  | Packet_granularity
  | Flow_granularity

type fail_mode = Sdn_switch.Session.fail_mode =
  | Fail_secure
  | Fail_standalone
      (** what the switch does with miss-match traffic while its
          controller session is Down (OpenFlow 1.0 fail modes) *)

type workload =
  | Exp_a of { n_flows : int }
      (** Section IV: single-packet flows with forged sources. *)
  | Exp_b of { n_flows : int; packets_per_flow : int; concurrent : int }
      (** Section V: multi-packet flows in cross-sequence batches. *)
  | Udp_burst of { n_packets : int }
      (** Section VI.A: one sudden many-packet UDP flow. *)
  | Poisson_flows of { n_flows : int }
      (** Analytical-validation regime: single-packet flows arriving
          as a Poisson process — every packet a miss
          ({!Sdn_traffic.Patterns.poisson_flows}). *)
  | Poisson_mix of { n_packets : int; miss_fraction : float }
      (** Analytical-validation regime: Poisson arrivals split between
          a primed long-lived flow and fresh single-packet flows with
          packet-in probability [miss_fraction]
          ({!Sdn_traffic.Patterns.poisson_mix}). *)

type qos = {
  classify : Sdn_controller.App.context -> int32;
      (** maps each new flow to an egress class *)
  policy : Sdn_switch.Egress_queue.policy;
  queues : Sdn_switch.Egress_queue.queue_config list;
}
(** Egress QoS scheduling (the paper's Section VII future work): when
    set, the controller installs [Enqueue] actions chosen by
    [classify] and both host-facing ports get a scheduler. *)

type t = {
  mechanism : mechanism;
  buffer_capacity : int;
  rate_mbps : float;
  frame_size : int;
  workload : workload;
  seed : int;
  release_strategy : Sdn_controller.Controller.release_strategy;
  control_loss_rate : float;
      (** probability that a control-channel message (either direction)
          is lost; 0 on the paper's wired testbed. Shorthand for a
          [faults] spec with only independent loss; merged into
          [faults] by the scenario builder. *)
  faults : Sdn_sim.Faults.spec;
      (** richer control-channel fault plan (bursts, jitter, outages);
          each direction gets its own deterministic plan instance *)
  miss_send_len : int;
      (** bytes of a buffered packet carried in the PACKET_IN (128 in
          OpenFlow 1.0 and in the paper) *)
  resend_timeout : float;
      (** flow-granularity base re-request delay, seconds *)
  resend_multiplier : float;
      (** re-request delay growth per unanswered request (1 = the
          paper's fixed period) *)
  resend_cap : float;  (** upper bound on the re-request delay, seconds *)
  resend_jitter : float;
      (** uniform multiplicative jitter fraction on each re-request
          delay, in [\[0, 1)] *)
  max_resends : int;
      (** unanswered re-requests before a buffered chain is abandoned *)
  flow_table_capacity : int;
  rule_idle_timeout : int;  (** seconds, for installed rules *)
  echo_interval : float;
      (** control-session keepalive period on both endpoints, seconds;
          [<= 0] (the default) disables the liveness machinery and
          keeps the control channel byte-identical to earlier
          versions *)
  echo_misses : int;
      (** unanswered keepalives before a session is declared Down *)
  fail_mode : fail_mode;
  overload_watermark : float;
      (** switch admission-control high watermark (fraction of buffer
          capacity) past which new miss chains are shed; [1.0] (the
          default) disables the guard *)
  buf_policy : Sdn_switch.Buf_policy.kind option;
      (** shared-buffer sharing discipline across the switch's packet
          pool and QoS queues (the [--buf-policy] CLI flag); [None]
          (the default) keeps the legacy private static partitions and
          byte-identical outputs *)
  qos : qos option;
  egress_bandwidth_bps : float option;
      (** override for the switch-to-host2 link speed (e.g. a slower
          uplink); [None] keeps the calibrated 100 Mbps *)
  check : bool;
      (** arm the runtime protocol-invariant checker ({!Sdn_check})
          across the switch and controller; off by default (the [--check]
          CLI flag, always on in the invariant test suites) *)
  jobs : int;
      (** worker-domain budget for the sweeps built from this
          configuration (the [--jobs] CLI flag / [SDN_BUFFER_JOBS]).
          Purely an execution-width knob: by the {!Sdn_sim.Task_pool}
          contract every [jobs] value produces byte-identical results.
          A single {!Experiment.run} is always one domain; [jobs] only
          fans out independent replications. *)
  event_queue : Sdn_sim.Engine.queue_kind;
      (** pending-event store for the engine (the [--event-queue] CLI
          flag): [`Heap] (the default) is the index-tracked binary
          heap, [`Wheel] the hierarchical timer wheel built for
          extreme pending counts. Both dispatch in identical order, so
          this knob never changes results — only runtime. *)
  switch_costs : Sdn_switch.Costs.t;
  controller_costs : Sdn_controller.Costs.t;
}

val default : t
(** Packet-granularity buffer-256, 30 Mbps, Exp-A with the paper's
    1000 flows of 1000-byte frames, seed 1. *)

val exp_a :
  mechanism:mechanism -> buffer_capacity:int -> rate_mbps:float -> seed:int -> t
(** The Section IV configurations (no-buffer / buffer-16 /
    buffer-256). *)

val exp_b : mechanism:mechanism -> rate_mbps:float -> seed:int -> t
(** The Section V comparison: 50 flows x 20 packets, batches of 5,
    buffer 256 for both mechanisms. *)

val packets_expected : t -> int
(** Total data packets the workload injects. *)

val label : t -> string
(** Short human-readable tag, e.g. ["buffer-256"] or
    ["flow-granularity"]. *)
