(* Fixture: exactly one hashtbl-order finding — the folded list escapes
   without a sort in the same definition. *)

let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
