lib/switch/egress_queue.mli: Bytes Engine Link Sdn_sim Stats
