(* Deeper property tests: the flow table against a reference model,
   whole-platform conservation invariants across random configurations,
   and shape regressions that pin the reproduced curves. *)

open Sdn_net
open Sdn_openflow
open Sdn_core

let mac1 = Mac.of_octets 0x02 0 0 0 0 1
let mac2 = Mac.of_octets 0x02 0 0 0 0 2

let pkt_of_port src_port =
  Packet.udp ~src_mac:mac1 ~dst_mac:mac2 ~src_ip:(Ip.make 10 0 0 1)
    ~dst_ip:(Ip.make 10 0 0 2) ~src_port ~dst_port:9
    ~payload:(Bytes.of_string "p") ()

let entry_of_port ?(out_port = 2) src_port ~now =
  Sdn_switch.Flow_entry.of_flow_mod
    (Of_flow_mod.add
       ~match_:(Of_match.of_flow_key (Option.get (Packet.flow_key (pkt_of_port src_port))))
       ~actions:[ Of_action.output out_port ]
       ())
    ~now

(* Model-based test: a flow table restricted to exact 5-tuple rules
   must behave like a map from source port to output port. *)
type table_op = Insert of int * int | Delete of int | Lookup of int

let arbitrary_ops =
  let gen_op =
    QCheck.Gen.(
      frequency
        [
          (4, map2 (fun p o -> Insert (1 + (p mod 20), 1 + (o mod 5))) nat nat);
          (1, map (fun p -> Delete (1 + (p mod 20))) nat);
          (5, map (fun p -> Lookup (1 + (p mod 20))) nat);
        ])
  in
  QCheck.make QCheck.Gen.(list_size (int_range 1 120) gen_op)

let out_port_of (e : Sdn_switch.Flow_entry.t) =
  match e.Sdn_switch.Flow_entry.actions with
  | [ Of_action.Output { port; _ } ] -> port
  | _ -> -1

let prop_flow_table_matches_model =
  QCheck.Test.make ~name:"flow table behaves like a port map" ~count:150
    arbitrary_ops (fun ops ->
      let table = Sdn_switch.Flow_table.create ~capacity:64 () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun op ->
          match op with
          | Insert (src, out) ->
              ignore
                (Sdn_switch.Flow_table.insert table
                   (entry_of_port ~out_port:out src ~now:0.0));
              Hashtbl.replace model src out;
              true
          | Delete src ->
              let m =
                Of_match.of_flow_key
                  (Option.get (Packet.flow_key (pkt_of_port src)))
              in
              ignore
                (Sdn_switch.Flow_table.delete table ~strict:false ~match_:m
                   ~priority:0 ());
              Hashtbl.remove model src;
              true
          | Lookup src -> (
              let expected = Hashtbl.find_opt model src in
              let actual =
                Option.map out_port_of
                  (Sdn_switch.Flow_table.lookup table ~in_port:1 (pkt_of_port src))
              in
              match (expected, actual) with
              | None, None -> true
              | Some e, Some a -> e = a
              | None, Some _ | Some _, None -> false))
        ops
      && Sdn_switch.Flow_table.length table = Hashtbl.length model)

(* Whole-platform conservation across random configurations. *)
let arbitrary_config =
  let gen =
    QCheck.Gen.(
      map3
        (fun mech_idx rate_idx wl_idx ->
          let mechanism, buffer =
            match mech_idx mod 3 with
            | 0 -> (Config.No_buffer, 0)
            | 1 -> (Config.Packet_granularity, 32)
            | _ -> (Config.Flow_granularity, 32)
          in
          let rate = float_of_int (20 + (rate_idx mod 5) * 20) in
          let workload =
            match wl_idx mod 3 with
            | 0 -> Config.Exp_a { n_flows = 60 }
            | 1 -> Config.Exp_b { n_flows = 10; packets_per_flow = 6; concurrent = 5 }
            | _ -> Config.Udp_burst { n_packets = 60 }
          in
          {
            Config.default with
            Config.mechanism;
            buffer_capacity = buffer;
            rate_mbps = rate;
            workload;
            seed = 1 + (mech_idx + rate_idx + wl_idx) mod 97;
          })
        nat nat nat)
  in
  QCheck.make gen

let prop_conservation =
  QCheck.Test.make ~name:"packet conservation across random configs" ~count:40
    arbitrary_config (fun config ->
      let r = Experiment.run config in
      let expected = Config.packets_expected config in
      (* Everything injected is observed; nothing is created. *)
      r.Experiment.packets_in = expected
      && r.Experiment.packets_out <= r.Experiment.packets_in
      (* With a reliable control channel nothing is lost either. *)
      && r.Experiment.packets_out + r.Experiment.packets_dropped
         >= r.Experiment.packets_in
      && r.Experiment.flows_completed <= r.Experiment.flows_started
      (* At least one request per flow that missed. *)
      && r.Experiment.pkt_ins >= r.Experiment.flows_started)

let prop_requests_bounded_by_packets =
  QCheck.Test.make ~name:"requests never exceed misses" ~count:40
    arbitrary_config (fun config ->
      let r = Experiment.run config in
      (* Every PACKET_IN stems from a miss-match packet (or a timed
         re-request); without resends the count is bounded by the
         number of injected packets. *)
      r.Experiment.pkt_ins - r.Experiment.pkt_in_resends
      <= r.Experiment.packets_in)

(* Shape regressions: pin the reproduced curves so a calibration change
   that breaks a figure's shape fails loudly. *)
let run_a ~mechanism ~buffer ~rate =
  Experiment.run
    {
      (Config.exp_a ~mechanism ~buffer_capacity:buffer ~rate_mbps:rate ~seed:3) with
      Config.workload = Config.Exp_a { n_flows = 400 };
    }

let test_shape_no_buffer_blowup () =
  let low = run_a ~mechanism:Config.No_buffer ~buffer:0 ~rate:30.0 in
  let high = run_a ~mechanism:Config.No_buffer ~buffer:0 ~rate:95.0 in
  Alcotest.(check bool)
    (Printf.sprintf "setup delay blows up past 70 Mbps (%.2f -> %.2f ms)"
       (low.Experiment.setup_delay.Experiment.mean *. 1e3)
       (high.Experiment.setup_delay.Experiment.mean *. 1e3))
    true
    (high.Experiment.setup_delay.Experiment.mean
     > 5.0 *. low.Experiment.setup_delay.Experiment.mean)

let test_shape_buffer256_stability () =
  let low = run_a ~mechanism:Config.Packet_granularity ~buffer:256 ~rate:30.0 in
  let high = run_a ~mechanism:Config.Packet_granularity ~buffer:256 ~rate:95.0 in
  Alcotest.(check bool)
    (Printf.sprintf "buffer-256 stays stable (%.2f -> %.2f ms)"
       (low.Experiment.setup_delay.Experiment.mean *. 1e3)
       (high.Experiment.setup_delay.Experiment.mean *. 1e3))
    true
    (high.Experiment.setup_delay.Experiment.mean
     < 2.0 *. low.Experiment.setup_delay.Experiment.mean)

let test_shape_buffer16_exhaustion_knee () =
  let at20 = run_a ~mechanism:Config.Packet_granularity ~buffer:16 ~rate:20.0 in
  let at60 = run_a ~mechanism:Config.Packet_granularity ~buffer:16 ~rate:60.0 in
  Alcotest.(check int) "no fallbacks below the knee" 0
    at20.Experiment.full_packet_fallbacks;
  Alcotest.(check bool) "fallbacks above the knee" true
    (at60.Experiment.full_packet_fallbacks > 0)

let test_shape_load_ratio () =
  (* Fig 2(a): buffered load ~ 0.21 x rate; no-buffer ~ 1.08 x rate. *)
  let b = run_a ~mechanism:Config.Packet_granularity ~buffer:256 ~rate:50.0 in
  let nb = run_a ~mechanism:Config.No_buffer ~buffer:0 ~rate:50.0 in
  let ratio_b = b.Experiment.ctrl_load_up_mbps /. 50.0 in
  let ratio_nb = nb.Experiment.ctrl_load_up_mbps /. 50.0 in
  Alcotest.(check bool)
    (Printf.sprintf "buffered slope ~0.21 (got %.3f)" ratio_b)
    true
    (ratio_b > 0.15 && ratio_b < 0.3);
  Alcotest.(check bool)
    (Printf.sprintf "no-buffer slope ~1.08 (got %.3f)" ratio_nb)
    true
    (ratio_nb > 0.9 && ratio_nb < 1.25)

let test_shape_exp_b_divergence () =
  let run_b mechanism rate =
    Experiment.run (Config.exp_b ~mechanism ~rate_mbps:rate ~seed:3)
  in
  let p30 = run_b Config.Packet_granularity 30.0 in
  let f30 = run_b Config.Flow_granularity 30.0 in
  let p95 = run_b Config.Packet_granularity 95.0 in
  let f95 = run_b Config.Flow_granularity 95.0 in
  (* Fig 9(a): equal at low rates, diverging past ~40 Mbps. *)
  Alcotest.(check int) "same requests at 30 Mbps" p30.Experiment.pkt_ins
    f30.Experiment.pkt_ins;
  Alcotest.(check bool)
    (Printf.sprintf "packet granularity needs >2x requests at 95 (%d vs %d)"
       p95.Experiment.pkt_ins f95.Experiment.pkt_ins)
    true
    (p95.Experiment.pkt_ins > 2 * f95.Experiment.pkt_ins)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_flow_table_matches_model;
    QCheck_alcotest.to_alcotest prop_conservation;
    QCheck_alcotest.to_alcotest prop_requests_bounded_by_packets;
    Alcotest.test_case "shape: no-buffer delay blow-up" `Quick
      test_shape_no_buffer_blowup;
    Alcotest.test_case "shape: buffer-256 stability" `Quick
      test_shape_buffer256_stability;
    Alcotest.test_case "shape: buffer-16 exhaustion knee" `Quick
      test_shape_buffer16_exhaustion_knee;
    Alcotest.test_case "shape: Fig 2(a) load slopes" `Quick test_shape_load_ratio;
    Alcotest.test_case "shape: Exp-B request divergence" `Quick
      test_shape_exp_b_divergence;
  ]
