lib/openflow/of_match.ml: Arp Bytes Ethernet Flow_key Format Int32 Ip Ipv4 Mac Option Packet Sdn_net Tcp Udp
