lib/measure/capture.ml: Bytes Format Hashtbl Of_codec Of_wire Option Sdn_openflow Sdn_sim Units
