(** Vendor (experimenter) extension carrying the paper's
    flow-granularity buffer protocol.

    The mechanism itself mostly reuses standard messages — the shared
    [buffer_id] rides in ordinary [PACKET_IN] / [PACKET_OUT] — but the
    paper notes the OpenFlow protocol "needs to be extended" for the
    switch-side behaviour. This module defines that extension as a
    proper OF 1.0 [VENDOR] message family:

    - the controller enables or disables flow-granularity buffering on
      a switch and configures the re-request timeout of Algorithm 1
      (line 12);
    - the controller can query buffer-pool statistics, which the
      monitoring example uses to plot buffer utilization live. *)

type stats = {
  units_in_use : int;
  units_total : int;
  flows_buffered : int;  (** flows currently holding a buffer unit *)
  packets_buffered : int;  (** packets across all chained units *)
  resends : int;  (** timeout-triggered repeated PACKET_INs *)
}

type t =
  | Flow_buffer_enable of { timeout : float }
      (** [timeout] in seconds; encoded as whole milliseconds. *)
  | Flow_buffer_disable
  | Flow_buffer_stats_request
  | Flow_buffer_stats_reply of stats

val vendor_id : int32
(** The experimenter id this reproduction registers for itself. *)

val body_size : t -> int
val write_body : t -> Bytes.t -> int -> unit
val read_body : Bytes.t -> int -> len:int -> (t, string) result

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
