(* Shared finding/report layer for sdn_lint and sdn_analyze. See
   report_common.mli for the waiver grammar and the stale-allow
   semantics. No external deps: both tools must build from a bare
   compiler-libs switch. *)

type finding = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

let compare_findings a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match String.compare a.rule b.rule with
          | 0 -> String.compare a.message b.message
          | c -> c)
      | c -> c)
  | c -> c

let pp_finding fmt f =
  Format.fprintf fmt "%s:%d: [%s] %s" f.file f.line f.rule f.message

let stale_rule =
  ( "stale-allow",
    "an allow comment whose rule no longer fires at that site; delete the \
     waiver or restate the hazard" )

(* ---- Waiver-comment parsing ---- *)

let find_sub haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i =
    if i + m > n then None
    else if String.sub haystack i m = needle then Some i
    else go (i + 1)
  in
  if m = 0 then Some 0 else go 0

let is_token_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '_'

(* Tokens directly after "<keyword>: allow": comma/space-separated
   rule ids, terminated by the first token that is not a catalogued
   rule (the free-text reason). Whole-token matching is the point —
   "allow hashtbl-order-custom" must not suppress "hashtbl-order",
   and a reason that merely mentions a rule name must not allow it. *)
let allow_tokens ~keyword ~rules line =
  let marker = keyword ^ ": allow" in
  match find_sub line marker with
  | None -> None
  | Some at ->
      let n = String.length line in
      let catalogued tok =
        tok <> fst stale_rule && List.mem_assoc tok rules
      in
      let rec skip_sep i =
        if i < n && (line.[i] = ' ' || line.[i] = '\t' || line.[i] = ',')
        then skip_sep (i + 1)
        else i
      in
      let rec token_end i = if i < n && is_token_char line.[i] then token_end (i + 1) else i in
      let rec collect acc i =
        let i = skip_sep i in
        let j = token_end i in
        if j = i then List.rev acc
        else
          let tok = String.sub line i (j - i) in
          if catalogued tok then collect (tok :: acc) j else List.rev acc
      in
      Some (collect [] (at + String.length marker))

let allows_rule ~keyword ~rules lines idx rule =
  idx >= 0
  && idx < Array.length lines
  &&
  match allow_tokens ~keyword ~rules lines.(idx) with
  | None -> false
  | Some toks -> List.mem rule toks

(* A finding on 1-based [line] is waived by an allow comment on that
   line (lines.(line-1)) or the line directly above (lines.(line-2)).
   stale-allow findings are never suppressible: the fix is deleting
   the dead comment, not waiving the waiver. *)
let suppressed ~keyword ~rules ~lines ~line ~rule =
  rule <> fst stale_rule
  && (allows_rule ~keyword ~rules lines (line - 1) rule
     || allows_rule ~keyword ~rules lines (line - 2) rule)

let stale_allows ~keyword ~rules ~file ~lines ~raw =
  let fires rule line =
    List.exists (fun f -> f.rule = rule && (f.line = line || f.line = line + 1)) raw
  in
  let out = ref [] in
  Array.iteri
    (fun idx text ->
      let line = idx + 1 in
      match allow_tokens ~keyword ~rules text with
      | None -> ()
      | Some [] ->
          out :=
            {
              file;
              line;
              rule = fst stale_rule;
              message =
                Printf.sprintf
                  "'%s: allow' names no catalogued rule; fix the rule id or \
                   delete the comment"
                  keyword;
            }
            :: !out
      | Some toks ->
          List.iter
            (fun tok ->
              if not (fires tok line) then
                out :=
                  {
                    file;
                    line;
                    rule = fst stale_rule;
                    message =
                      Printf.sprintf
                        "'%s: allow %s' no longer fires here; the waiver has \
                         outlived its hazard — delete it (or move it next to \
                         the site it documents)"
                        keyword tok;
                  }
                  :: !out)
            toks)
    lines;
  List.rev !out

(* ---- Machine-readable encodings ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json findings =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf
           "\n  {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", \
            \"message\": \"%s\"}"
           (json_escape f.file) f.line (json_escape f.rule)
           (json_escape f.message)))
    findings;
  if findings <> [] then Buffer.add_string buf "\n";
  Buffer.add_string buf "]\n";
  Buffer.contents buf

let to_sarif ~tool ~rules findings =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add
    "{\n\
    \  \"$schema\": \
     \"https://json.schemastore.org/sarif-2.1.0.json\",\n\
    \  \"version\": \"2.1.0\",\n\
    \  \"runs\": [\n\
    \    {\n\
    \      \"tool\": {\n\
    \        \"driver\": {\n\
    \          \"name\": \"%s\",\n\
    \          \"rules\": ["
    (json_escape tool);
  List.iteri
    (fun i (id, descr) ->
      if i > 0 then add ",";
      add
        "\n            {\"id\": \"%s\", \"shortDescription\": {\"text\": \
         \"%s\"}}"
        (json_escape id) (json_escape descr))
    rules;
  add "\n          ]\n        }\n      },\n      \"results\": [";
  List.iteri
    (fun i f ->
      if i > 0 then add ",";
      add
        "\n        {\"ruleId\": \"%s\", \"level\": \"error\", \"message\": \
         {\"text\": \"%s\"}, \"locations\": [{\"physicalLocation\": \
         {\"artifactLocation\": {\"uri\": \"%s\"}, \"region\": \
         {\"startLine\": %d}}}]}"
        (json_escape f.rule) (json_escape f.message) (json_escape f.file)
        f.line)
    findings;
  add "\n      ]\n    }\n  ]\n}\n";
  Buffer.contents buf
