type msg =
  | Hello
  | Error_msg of Of_error.t
  | Echo_request of Bytes.t
  | Echo_reply of Bytes.t
  | Vendor of Of_ext.t
  | Features_request
  | Features_reply of Of_features.t
  | Get_config_request
  | Get_config_reply of Of_config.t
  | Set_config of Of_config.t
  | Packet_in of Of_packet_in.t
  | Flow_removed of Of_flow_removed.t
  | Port_status of Of_port_status.t
  | Packet_out of Of_packet_out.t
  | Flow_mod of Of_flow_mod.t
  | Stats_request of Of_stats.request
  | Stats_reply of Of_stats.reply
  | Barrier_request
  | Barrier_reply

let msg_type = function
  | Hello -> Of_wire.Msg_type.Hello
  | Error_msg _ -> Of_wire.Msg_type.Error
  | Echo_request _ -> Of_wire.Msg_type.Echo_request
  | Echo_reply _ -> Of_wire.Msg_type.Echo_reply
  | Vendor _ -> Of_wire.Msg_type.Vendor
  | Features_request -> Of_wire.Msg_type.Features_request
  | Features_reply _ -> Of_wire.Msg_type.Features_reply
  | Get_config_request -> Of_wire.Msg_type.Get_config_request
  | Get_config_reply _ -> Of_wire.Msg_type.Get_config_reply
  | Set_config _ -> Of_wire.Msg_type.Set_config
  | Packet_in _ -> Of_wire.Msg_type.Packet_in
  | Flow_removed _ -> Of_wire.Msg_type.Flow_removed
  | Port_status _ -> Of_wire.Msg_type.Port_status
  | Packet_out _ -> Of_wire.Msg_type.Packet_out
  | Flow_mod _ -> Of_wire.Msg_type.Flow_mod
  | Stats_request _ -> Of_wire.Msg_type.Stats_request
  | Stats_reply _ -> Of_wire.Msg_type.Stats_reply
  | Barrier_request -> Of_wire.Msg_type.Barrier_request
  | Barrier_reply -> Of_wire.Msg_type.Barrier_reply

let body_size = function
  | Hello | Features_request | Get_config_request | Barrier_request
  | Barrier_reply ->
      0
  | Get_config_reply _ | Set_config _ -> Of_config.body_size
  | Flow_removed _ -> Of_flow_removed.body_size
  | Port_status _ -> Of_port_status.body_size
  | Error_msg e -> Of_error.body_size e
  | Echo_request payload | Echo_reply payload -> Bytes.length payload
  | Vendor v -> Of_ext.body_size v
  | Features_reply f -> Of_features.body_size f
  | Packet_in p -> Of_packet_in.body_size p
  | Packet_out p -> Of_packet_out.body_size p
  | Flow_mod f -> Of_flow_mod.body_size f
  | Stats_request r -> Of_stats.request_body_size r
  | Stats_reply r -> Of_stats.reply_body_size r

let size msg = Of_wire.header_size + body_size msg

(* [length] must be [size msg]; the public entry points compute it
   once and share it between sizing the buffer and writing, keeping
   the body-size walk off the hot path twice. *)
let encode_sized ~xid msg buf ~pos ~length =
  if pos < 0 || pos + length > Bytes.length buf then
    invalid_arg "Of_codec.encode_into: buffer too small";
  (* Body writers may skip pad bytes; zero the window first so the
     result is byte-identical to a fresh-buffer [encode]. *)
  Bytes.fill buf pos length '\000';
  (* Field form, not the header record: this is the scratch path's
     hot spot and must not allocate. *)
  Of_wire.write_header_fields ~msg_type:(msg_type msg) ~length ~xid buf ~pos;
  let off = pos + Of_wire.header_size in
  (match msg with
  | Hello | Features_request | Get_config_request | Barrier_request
  | Barrier_reply ->
      ()
  | Get_config_reply c | Set_config c -> Of_config.write_body c buf off
  | Flow_removed fr -> Of_flow_removed.write_body fr buf off
  | Port_status ps -> Of_port_status.write_body ps buf off
  | Error_msg e -> Of_error.write_body e buf off
  | Echo_request payload | Echo_reply payload ->
      Bytes.blit payload 0 buf off (Bytes.length payload)
  | Vendor v -> Of_ext.write_body v buf off
  | Features_reply f -> Of_features.write_body f buf off
  | Packet_in p -> Of_packet_in.write_body p buf off
  | Packet_out p -> Of_packet_out.write_body p buf off
  | Flow_mod f -> Of_flow_mod.write_body f buf off
  | Stats_request r -> Of_stats.write_request_body r buf off
  | Stats_reply r -> Of_stats.write_reply_body r buf off);
  length

let encode_into ~xid msg buf ~pos =
  encode_sized ~xid msg buf ~pos ~length:(size msg)

let encode ~xid msg =
  let length = size msg in
  let buf = Bytes.create length in
  ignore (encode_sized ~xid msg buf ~pos:0 ~length);
  buf

let encode_scratch scratch ~xid msg =
  let length = size msg in
  let buf = Of_wire.Scratch.ensure scratch length in
  encode_sized ~xid msg buf ~pos:0 ~length

let decode_sub buf ~pos ~len:window =
  match Of_wire.read_header_sub buf ~pos ~len:window with
  | Error _ as e -> e
  | Ok header -> (
      let off = pos + Of_wire.header_size in
      let len = header.Of_wire.length - Of_wire.header_size in
      let body =
        match header.Of_wire.msg_type with
        | Of_wire.Msg_type.Hello -> Ok Hello
        | Of_wire.Msg_type.Error ->
            Result.map (fun e -> Error_msg e) (Of_error.read_body buf off ~len)
        | Of_wire.Msg_type.Echo_request ->
            Ok (Echo_request (Bytes.sub buf off len))
        | Of_wire.Msg_type.Echo_reply -> Ok (Echo_reply (Bytes.sub buf off len))
        | Of_wire.Msg_type.Vendor ->
            Result.map (fun v -> Vendor v) (Of_ext.read_body buf off ~len)
        | Of_wire.Msg_type.Features_request -> Ok Features_request
        | Of_wire.Msg_type.Features_reply ->
            Result.map
              (fun f -> Features_reply f)
              (Of_features.read_body buf off ~len)
        | Of_wire.Msg_type.Get_config_request -> Ok Get_config_request
        | Of_wire.Msg_type.Get_config_reply ->
            Result.map (fun c -> Get_config_reply c) (Of_config.read_body buf off ~len)
        | Of_wire.Msg_type.Set_config ->
            Result.map (fun c -> Set_config c) (Of_config.read_body buf off ~len)
        | Of_wire.Msg_type.Flow_removed ->
            Result.map
              (fun fr -> Flow_removed fr)
              (Of_flow_removed.read_body buf off ~len)
        | Of_wire.Msg_type.Port_status ->
            Result.map
              (fun ps -> Port_status ps)
              (Of_port_status.read_body buf off ~len)
        | Of_wire.Msg_type.Packet_in ->
            Result.map (fun p -> Packet_in p) (Of_packet_in.read_body buf off ~len)
        | Of_wire.Msg_type.Packet_out ->
            Result.map
              (fun p -> Packet_out p)
              (Of_packet_out.read_body buf off ~len)
        | Of_wire.Msg_type.Flow_mod ->
            Result.map (fun f -> Flow_mod f) (Of_flow_mod.read_body buf off ~len)
        | Of_wire.Msg_type.Stats_request ->
            Result.map
              (fun r -> Stats_request r)
              (Of_stats.read_request_body buf off ~len)
        | Of_wire.Msg_type.Stats_reply ->
            Result.map
              (fun r -> Stats_reply r)
              (Of_stats.read_reply_body buf off ~len)
        | Of_wire.Msg_type.Barrier_request -> Ok Barrier_request
        | Of_wire.Msg_type.Barrier_reply -> Ok Barrier_reply
        | Of_wire.Msg_type.Port_mod ->
            Error
              (Printf.sprintf "Of_codec.decode: %s not implemented"
                 (Of_wire.Msg_type.to_string header.Of_wire.msg_type))
      in
      match body with
      | Ok msg -> Ok (header.Of_wire.xid, msg)
      | Error _ as e -> e)

let decode buf = decode_sub buf ~pos:0 ~len:(Bytes.length buf)

type error_kind =
  | Truncated
  | Bad_version of int
  | Bad_type of int
  | Bad_body

let error_kind buf =
  if Bytes.length buf < Of_wire.header_size then Truncated
  else begin
    let v = Bytes.get_uint8 buf 0 in
    if v <> Of_wire.version then Bad_version v
    else begin
      match Of_wire.Msg_type.of_int (Bytes.get_uint8 buf 1) with
      | Error _ -> Bad_type (Bytes.get_uint8 buf 1)
      | Ok Of_wire.Msg_type.Port_mod -> Bad_type (Bytes.get_uint8 buf 1)
      | Ok _ ->
          let length = Bytes.get_uint16_be buf 2 in
          if length < Of_wire.header_size || length > Bytes.length buf then
            Truncated
          else Bad_body
    end
  end

let error_kind_to_string = function
  | Truncated -> "truncated"
  | Bad_version v -> Printf.sprintf "bad-version(0x%02x)" v
  | Bad_type n -> Printf.sprintf "bad-type(%d)" n
  | Bad_body -> "bad-body"

let peek_xid buf =
  if Bytes.length buf >= Of_wire.header_size then Bytes.get_int32_be buf 4
  else 0l

let peek_type buf =
  match Of_wire.read_header buf with
  | Ok h -> Ok h.Of_wire.msg_type
  | Error _ as e -> e

let equal a b =
  match (a, b) with
  | Hello, Hello
  | Features_request, Features_request
  | Get_config_request, Get_config_request
  | Barrier_request, Barrier_request
  | Barrier_reply, Barrier_reply ->
      true
  | Get_config_reply x, Get_config_reply y | Set_config x, Set_config y ->
      Of_config.equal x y
  | Flow_removed x, Flow_removed y -> Of_flow_removed.equal x y
  | Port_status x, Port_status y -> Of_port_status.equal x y
  | Error_msg x, Error_msg y -> Of_error.equal x y
  | Echo_request x, Echo_request y | Echo_reply x, Echo_reply y -> Bytes.equal x y
  | Vendor x, Vendor y -> Of_ext.equal x y
  | Features_reply x, Features_reply y -> Of_features.equal x y
  | Packet_in x, Packet_in y -> Of_packet_in.equal x y
  | Packet_out x, Packet_out y -> Of_packet_out.equal x y
  | Flow_mod x, Flow_mod y -> Of_flow_mod.equal x y
  | Stats_request x, Stats_request y -> Of_stats.equal_request x y
  | Stats_reply x, Stats_reply y -> Of_stats.equal_reply x y
  | ( ( Hello | Error_msg _ | Echo_request _ | Echo_reply _ | Vendor _
      | Features_request | Features_reply _ | Get_config_request
      | Get_config_reply _ | Set_config _ | Packet_in _ | Flow_removed _
      | Port_status _ | Packet_out _ | Flow_mod _ | Stats_request _
      | Stats_reply _ | Barrier_request | Barrier_reply ),
      _ ) ->
      false

let pp fmt = function
  | Hello -> Format.pp_print_string fmt "hello"
  | Error_msg e -> Of_error.pp fmt e
  | Echo_request p -> Format.fprintf fmt "echo_request{%dB}" (Bytes.length p)
  | Echo_reply p -> Format.fprintf fmt "echo_reply{%dB}" (Bytes.length p)
  | Vendor v -> Of_ext.pp fmt v
  | Features_request -> Format.pp_print_string fmt "features_request"
  | Features_reply f -> Of_features.pp fmt f
  | Get_config_request -> Format.pp_print_string fmt "get_config_request"
  | Get_config_reply c -> Of_config.pp fmt c
  | Set_config c -> Format.fprintf fmt "set_%a" Of_config.pp c
  | Flow_removed fr -> Of_flow_removed.pp fmt fr
  | Port_status ps -> Of_port_status.pp fmt ps
  | Packet_in p -> Of_packet_in.pp fmt p
  | Packet_out p -> Of_packet_out.pp fmt p
  | Flow_mod f -> Of_flow_mod.pp fmt f
  | Stats_request r -> Of_stats.pp_request fmt r
  | Stats_reply r -> Of_stats.pp_reply fmt r
  | Barrier_request -> Format.pp_print_string fmt "barrier_request"
  | Barrier_reply -> Format.pp_print_string fmt "barrier_reply"
