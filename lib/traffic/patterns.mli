(** Workload patterns.

    Each pattern produces a deterministic list of timed frame
    injections; {!Pktgen} schedules them into the engine. Rates follow
    the paper's convention: frames of [frame_size] bytes sent
    back-to-back at the given application rate, with a small seeded
    jitter so repetitions differ. *)

open Sdn_sim

type injection = {
  time : float;
  in_port : int;  (** switch port the frame enters *)
  flow_id : int;
  seq : int;
  frame : Bytes.t;
}

val spacing : rate_mbps:float -> frame_size:int -> float
(** Inter-frame gap achieving the sending rate. *)

val exp_a :
  rng:Rng.t ->
  ?addressing:Addressing.t ->
  ?start:float ->
  ?jitter:float ->
  n_flows:int ->
  rate_mbps:float ->
  frame_size:int ->
  unit ->
  injection list
(** Section IV workload: [n_flows] single-packet UDP flows (forged
    source addresses), evenly spaced at the sending rate. The paper
    uses 1000 flows of 1000-byte frames. [jitter] is the uniform
    fraction of the spacing applied to each gap (default 0.02). *)

val exp_b :
  rng:Rng.t ->
  ?addressing:Addressing.t ->
  ?start:float ->
  ?jitter:float ->
  n_flows:int ->
  packets_per_flow:int ->
  concurrent:int ->
  rate_mbps:float ->
  frame_size:int ->
  unit ->
  injection list
(** Section V workload: [n_flows] flows of [packets_per_flow] packets,
    sent in batches of [concurrent] flows whose packets interleave in
    cross sequence (f1 p1, f2 p1, ..., f5 p1, f1 p2, ...); the next
    batch starts when the previous one has been fully sent. The paper
    uses 50 flows x 20 packets in batches of 5. *)

val udp_burst :
  rng:Rng.t ->
  ?addressing:Addressing.t ->
  ?start:float ->
  n_packets:int ->
  rate_mbps:float ->
  frame_size:int ->
  unit ->
  injection list
(** Section VI.A motivation: one UDP flow suddenly emitting
    [n_packets] back-to-back — every packet a miss until the rule
    lands. *)

val poisson_flows :
  rng:Rng.t ->
  ?addressing:Addressing.t ->
  ?start:float ->
  n_flows:int ->
  rate_mbps:float ->
  frame_size:int ->
  unit ->
  injection list
(** [n_flows] single-packet flows whose inter-arrival gaps are i.i.d.
    exponential with mean [spacing ~rate_mbps ~frame_size] — a Poisson
    arrival process at the given mean rate, every packet a table miss.
    The arrival regime the analytical oracle's Jackson network
    assumes. *)

val poisson_mix :
  rng:Rng.t ->
  ?addressing:Addressing.t ->
  ?start:float ->
  ?prime_lead:float ->
  n_packets:int ->
  miss_fraction:float ->
  rate_mbps:float ->
  frame_size:int ->
  unit ->
  injection list
(** Poisson arrivals at the mean rate where each packet independently
    belongs to a fresh single-packet flow with probability
    [miss_fraction] (a table miss) and otherwise to the long-lived
    flow 0 (a hit). A single primer packet of flow 0 is injected
    [prime_lead] seconds (default 0.05) before the main phase so its
    rule is installed by the time the mix starts — the split-traffic
    regime of Mahmood et al.'s feedback model with packet-in
    probability [miss_fraction]. Produces [n_packets + 1]
    injections. *)

(** TCP scenarios for the Section VI.B discussion. *)

val tcp_handshake_then_data :
  rng:Rng.t ->
  ?addressing:Addressing.t ->
  ?start:float ->
  flow_id:int ->
  data_packets:int ->
  rate_mbps:float ->
  frame_size:int ->
  unit ->
  injection list
(** SYN / SYN-ACK / ACK (small frames, the reverse direction entering
    on port 2), then [data_packets] full-size data segments from the
    initiator. *)

val tcp_idle_resume :
  rng:Rng.t ->
  ?addressing:Addressing.t ->
  ?start:float ->
  flow_id:int ->
  first_burst:int ->
  idle_gap:float ->
  second_burst:int ->
  rate_mbps:float ->
  frame_size:int ->
  unit ->
  injection list
(** The rule-eviction scenario: a burst of data, an idle period longer
    than the rule's idle timeout (during which the rule is kicked out
    of the table), then a resumed burst on the {e same} established
    connection — whose packets are misses again. *)

val total_bytes : injection list -> int
val duration : injection list -> float
(** Time between the first and last injection. *)
