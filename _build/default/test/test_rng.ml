(* Tests for the deterministic SplitMix64 generator. *)

open Sdn_sim

let test_determinism () =
  let a = Rng.of_int 42 and b = Rng.of_int 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_distinct_seeds () =
  let a = Rng.of_int 1 and b = Rng.of_int 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.next_int64 a) (Rng.next_int64 b) then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_copy_is_independent () =
  let a = Rng.of_int 7 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  let xa = Rng.next_int64 a in
  let xb = Rng.next_int64 b in
  Alcotest.(check int64) "copy continues identically" xa xb;
  ignore (Rng.next_int64 a);
  (* advancing a does not advance b *)
  let xa2 = Rng.next_int64 a and xb2 = Rng.next_int64 b in
  Alcotest.(check bool) "then diverges by position" false (Int64.equal xa2 xb2)

let test_split_independence () =
  let a = Rng.of_int 5 in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.next_int64 a) (Rng.next_int64 b) then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 4)

let test_int_bounds () =
  let rng = Rng.of_int 11 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_bad_bound () =
  let rng = Rng.of_int 1 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_int_in () =
  let rng = Rng.of_int 3 in
  for _ = 1 to 500 do
    let v = Rng.int_in rng ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_float_bounds () =
  let rng = Rng.of_int 13 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_uniform_mean () =
  let rng = Rng.of_int 17 in
  let s = Stats.create ~keep_samples:false () in
  for _ = 1 to 20_000 do
    Stats.add s (Rng.uniform rng ~lo:2.0 ~hi:4.0)
  done;
  Alcotest.(check bool) "mean near 3" true (abs_float (Stats.mean s -. 3.0) < 0.05)

let test_exponential_mean () =
  let rng = Rng.of_int 19 in
  let s = Stats.create ~keep_samples:false () in
  for _ = 1 to 20_000 do
    Stats.add s (Rng.exponential rng ~mean:0.5)
  done;
  Alcotest.(check bool) "mean near 0.5" true
    (abs_float (Stats.mean s -. 0.5) < 0.03)

let test_gaussian_moments () =
  let rng = Rng.of_int 23 in
  let s = Stats.create ~keep_samples:false () in
  for _ = 1 to 20_000 do
    Stats.add s (Rng.gaussian rng ~mu:1.0 ~sigma:2.0)
  done;
  Alcotest.(check bool) "mean near 1" true (abs_float (Stats.mean s -. 1.0) < 0.1);
  Alcotest.(check bool) "sd near 2" true (abs_float (Stats.stddev s -. 2.0) < 0.1)

let test_lognormal_median () =
  let rng = Rng.of_int 29 in
  let values =
    Array.init 10_001 (fun _ -> Rng.lognormal_factor rng ~sigma:0.3)
  in
  Array.sort compare values;
  let median = values.(5000) in
  Alcotest.(check bool) "median near 1" true (abs_float (median -. 1.0) < 0.05);
  Array.iter
    (fun v -> Alcotest.(check bool) "positive" true (v > 0.0))
    values

let test_shuffle_permutation () =
  let rng = Rng.of_int 31 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation"
    (Array.init 50 (fun i -> i))
    sorted

let suite =
  [
    Alcotest.test_case "same seed, same stream" `Quick test_determinism;
    Alcotest.test_case "distinct seeds differ" `Quick test_distinct_seeds;
    Alcotest.test_case "copy independence" `Quick test_copy_is_independent;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int rejects bad bound" `Quick test_int_bad_bound;
    Alcotest.test_case "int_in inclusive range" `Quick test_int_in;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "uniform mean" `Quick test_uniform_mean;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "lognormal median and positivity" `Quick
      test_lognormal_median;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
  ]
