type handle = {
  time : float;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type t = {
  mutable clock : float;
  mutable seq : int;
  mutable processed : int;
  queue : handle Heap.t;
}

let compare_events a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?(now = 0.0) () =
  {
    clock = now;
    seq = 0;
    processed = 0;
    queue = Heap.create ~capacity:1024 ~cmp:compare_events ();
  }

let now t = t.clock

let schedule_at t time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time
         t.clock);
  let ev = { time; seq = t.seq; action; cancelled = false } in
  t.seq <- t.seq + 1;
  Heap.push t.queue ev;
  ev

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t (t.clock +. delay) action

let cancel handle = handle.cancelled <- true

let is_cancelled handle = handle.cancelled

let rec step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
      if ev.cancelled then step t
      else begin
        t.clock <- ev.time;
        t.processed <- t.processed + 1;
        ev.action ();
        true
      end

let rec run ?until t =
  match until with
  | None -> if step t then run ?until t
  | Some limit -> (
      match Heap.peek t.queue with
      | None -> if t.clock < limit then t.clock <- limit
      | Some ev when ev.time > limit -> t.clock <- limit
      | Some _ ->
          let _ran = step t in
          run ~until:limit t)

let pending t = Heap.length t.queue

let processed t = t.processed
