(* Section VI.B discussion: why the buffer also helps TCP.

   A TCP connection is established (3-way handshake), transfers a burst
   of data, then goes quiet for longer than the rule's idle timeout.
   The switch kicks the rule out of its size-limited flow table — but
   the connection is NOT terminated. When the transfer resumes, its
   full-size data segments are miss-match packets again, exactly like a
   sudden UDP burst.

   Run with:  dune exec examples/tcp_rule_eviction.exe

   This example drives the scenario through the public API directly
   (building the platform, scheduling a custom injection plan, reading
   the trackers), rather than through the canned [Experiment] runner. *)

open Sdn_core
open Sdn_measure
open Sdn_traffic
module Flow_table = Sdn_switch.Flow_table

let idle_timeout = 2 (* seconds: installed rules expire after this *)

let run mechanism buffer_capacity =
  let config =
    {
      Config.default with
      Config.mechanism;
      buffer_capacity;
      rule_idle_timeout = idle_timeout;
      seed = 3;
    }
  in
  let scenario = Scenario.build config in
  let engine = scenario.Scenario.engine in
  (* Handshake, 30 data segments, 4 s of silence (> idle timeout),
     then 30 more segments on the same established connection. *)
  let injections =
    Patterns.tcp_idle_resume ~rng:scenario.Scenario.traffic_rng ~start:0.05
      ~flow_id:1 ~first_burst:30 ~idle_gap:4.0 ~second_burst:30
      ~rate_mbps:60.0 ~frame_size:1000 ()
  in
  Pktgen.schedule engine
    ~inject:(fun ~in_port frame -> Scenario.inject scenario ~in_port frame)
    injections;
  let plan_end =
    List.fold_left (fun acc i -> Float.max acc i.Patterns.time) 0.0 injections
  in
  Scenario.run_until_quiet ~min_time:plan_end scenario;
  let cap = scenario.Scenario.capture in
  let counters = Sdn_switch.Switch.counters scenario.Scenario.switch in
  let table = Sdn_switch.Switch.flow_table scenario.Scenario.switch in
  ( Config.label config,
    counters.Sdn_switch.Switch.pkt_ins_sent,
    Capture.bytes cap Capture.To_controller,
    Capture.bytes cap Capture.To_switch,
    Flow_table.(expirations table),
    scenario.Scenario.host2_received + scenario.Scenario.host1_received )

let () =
  Printf.printf
    "TCP flow: handshake, 30 segments, %d s idle (rule idle timeout %d s),\n\
     then 30 more segments on the SAME established connection.\n\n"
    4 idle_timeout;
  let rows =
    List.map
      (fun (label, pkt_ins, up_bytes, down_bytes, expired, delivered) ->
        [
          label;
          string_of_int pkt_ins;
          string_of_int up_bytes;
          string_of_int down_bytes;
          string_of_int expired;
          string_of_int delivered;
        ])
      [
        run Config.No_buffer 0;
        run Config.Packet_granularity 256;
        run Config.Flow_granularity 256;
      ]
  in
  Report.print_table
    ~header:
      [
        "mechanism"; "requests"; "bytes to ctrl"; "bytes to switch";
        "rules expired"; "frames delivered";
      ]
    ~rows;
  Printf.printf
    "\nThe idle period expires the rule, so the resumed burst misses again:\n\
     with no buffer, every resumed full-size segment travels to the\n\
     controller and back in whole; with the switch buffer only headers\n\
     travel. The connection never noticed — this is the paper's argument\n\
     that buffering benefits TCP too, not just UDP.\n"
