examples/qos_scheduling.ml: Addressing Config List Option Patterns Pktgen Printf Report Scenario Sdn_controller Sdn_core Sdn_measure Sdn_net Sdn_sim Sdn_switch Sdn_traffic Stats
