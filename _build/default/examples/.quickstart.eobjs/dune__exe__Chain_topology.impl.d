examples/chain_topology.ml: Chain Config Experiment List Printf Report Sdn_core Sdn_measure
