(* Benchmark regression gate.

   Compares a candidate benchmark snapshot (BENCH_pr4.json written by
   [bench/main.exe json]) against a committed baseline and fails when a
   metric regresses by more than the threshold.

   Conventions:

   - Metric names containing "speedup" are higher-is-better: the gate
     fails when [candidate < baseline * (1 - threshold) - slack].
   - Every other metric is lower-is-better (ns/run, minor-words/run):
     the gate fails when [candidate > baseline * (1 + threshold) + slack].
   - [--portable] restricts the comparison to metrics that are stable
     across machines: allocation counts (".../minor-words") and derived
     speedup ratios.  Absolute nanosecond timings vary with the host
     CPU, so CI gates only the portable subset; the full set is for
     like-for-like comparisons on one machine.

   The small absolute [slack] keeps near-zero metrics from tripping the
   relative threshold on noise (a 0.2-word jitter on a 1-word metric is
   not a regression).

   Beyond the relative baseline comparison, [--min NAME=V] and
   [--max NAME=V] (repeatable) pin absolute floors and ceilings on
   candidate metrics: a floor enforces a claimed win outright (e.g.
   [--min derived/wheel_speedup_1m=2.0] keeps the timer wheel >= 2x the
   heap at 1M pending regardless of what the baseline drifted to), and
   a ceiling pins a structural invariant (e.g.
   [--max massive/datapath/minor-words-per-packet=0.5] is the
   zero-allocation fast-path guarantee with room for measurement
   jitter, not for a real allocation). A named metric absent from the
   candidate is an error.

   Usage:
     bench_gate BASELINE.json CANDIDATE.json [--portable]
                [--threshold PCT] [--slack N]
                [--min NAME=V]... [--max NAME=V]...

   Exits 0 when no gated metric regresses, 1 otherwise (listing every
   regression), 2 on usage or parse errors. *)

let threshold = ref 0.15
let slack = ref 2.0
let portable = ref false
let floors = ref [] (* --min NAME=V: candidate must reach V *)
let ceilings = ref [] (* --max NAME=V: candidate must stay under V *)

let parse_bound flag spec =
  match String.index_opt spec '=' with
  | Some eq -> (
      let name = String.sub spec 0 eq in
      let v = String.sub spec (eq + 1) (String.length spec - eq - 1) in
      match float_of_string_opt v with
      | Some f when name <> "" -> (name, f)
      | _ ->
          Printf.eprintf "bench_gate: bad %s bound %S\n" flag spec;
          exit 2)
  | None ->
      Printf.eprintf "bench_gate: %s expects NAME=VALUE, got %S\n" flag spec;
      exit 2

(* ---- Minimal JSON scanner ----

   The snapshot format is flat: string keys mapped to numbers inside
   the "metrics" object.  A full JSON parser is not needed (and not
   available without new dependencies); scan for "key": number pairs. *)

let parse_metrics path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let metrics = ref [] in
  let n = String.length content in
  let i = ref 0 in
  while !i < n do
    (match String.index_from_opt content !i '"' with
    | None -> i := n
    | Some q0 -> (
        match String.index_from_opt content (q0 + 1) '"' with
        | None -> i := n
        | Some q1 ->
            let key = String.sub content (q0 + 1) (q1 - q0 - 1) in
            (* Skip whitespace, then require ':' followed by a number
               for this to count as a metric. *)
            let j = ref (q1 + 1) in
            while
              !j < n && (content.[!j] = ' ' || content.[!j] = '\t')
            do
              incr j
            done;
            if !j < n && content.[!j] = ':' then begin
              incr j;
              while
                !j < n && (content.[!j] = ' ' || content.[!j] = '\t')
              do
                incr j
              done;
              let v0 = !j in
              while
                !j < n
                &&
                match content.[!j] with
                | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
                | _ -> false
              do
                incr j
              done;
              (if !j > v0 then
                 match
                   float_of_string_opt (String.sub content v0 (!j - v0))
                 with
                 | Some v -> metrics := (key, v) :: !metrics
                 | None -> ());
              (* Restart just past the value (a string value restarts at
                 its own opening quote and is consumed as a phantom
                 key that the colon test then rejects). *)
              i := !j
            end
            else
              (* Not a key-value pair: [q1] may itself be the opening
                 quote of the next real key, so resume the scan on it. *)
              i := q1))
  done;
  List.rev !metrics

let contains_substring s sub =
  let ls = String.length sub and ln = String.length s in
  let rec go i = i + ls <= ln && (String.sub s i ls = sub || go (i + 1)) in
  ls = 0 || go 0

let higher_is_better name = contains_substring name "speedup"

let gated name =
  (not !portable)
  || higher_is_better name
  || contains_substring name "/minor-words"

let () =
  let files = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--portable" :: rest ->
        portable := true;
        parse_args rest
    | "--threshold" :: pct :: rest ->
        threshold := float_of_string pct /. 100.0;
        parse_args rest
    | "--slack" :: s :: rest ->
        slack := float_of_string s;
        parse_args rest
    | "--min" :: spec :: rest ->
        floors := parse_bound "--min" spec :: !floors;
        parse_args rest
    | "--max" :: spec :: rest ->
        ceilings := parse_bound "--max" spec :: !ceilings;
        parse_args rest
    | arg :: rest ->
        files := arg :: !files;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ baseline_path; candidate_path ] ->
      let baseline = parse_metrics baseline_path in
      let candidate = parse_metrics candidate_path in
      if baseline = [] then begin
        Printf.eprintf "bench_gate: no metrics in baseline %s\n" baseline_path;
        exit 2
      end;
      if candidate = [] then begin
        Printf.eprintf "bench_gate: no metrics in candidate %s\n" candidate_path;
        exit 2
      end;
      let checked = ref 0 and regressions = ref [] and missing = ref [] in
      List.iter
        (fun (name, base) ->
          if name <> "schema" && gated name then
            match List.assoc_opt name candidate with
            | None -> missing := name :: !missing
            | Some cand ->
                incr checked;
                let bad =
                  if higher_is_better name then
                    cand < (base *. (1.0 -. !threshold)) -. !slack
                  else cand > (base *. (1.0 +. !threshold)) +. !slack
                in
                if bad then regressions := (name, base, cand) :: !regressions)
        baseline;
      (* Absolute bounds run against the candidate alone: a floor or
         ceiling is a claim about this snapshot, not about drift. *)
      let bounds = ref [] in
      let check_bound kind (name, bound) =
        match List.assoc_opt name candidate with
        | None -> missing := name :: !missing
        | Some cand ->
            incr checked;
            let bad =
              match kind with
              | `Floor -> cand < bound
              | `Ceiling -> cand > bound
            in
            if bad then bounds := (kind, name, bound, cand) :: !bounds
      in
      List.iter (check_bound `Floor) (List.rev !floors);
      List.iter (check_bound `Ceiling) (List.rev !ceilings);
      List.iter
        (fun (name, base, cand) ->
          Printf.printf "REGRESSION %-55s baseline %12.4g  candidate %12.4g (%s)\n"
            name base cand
            (if higher_is_better name then "higher is better"
             else "lower is better"))
        (List.rev !regressions);
      List.iter
        (fun (kind, name, bound, cand) ->
          Printf.printf "BOUND      %-55s %s %12.4g  candidate %12.4g\n" name
            (match kind with `Floor -> "floor  " | `Ceiling -> "ceiling")
            bound cand)
        (List.rev !bounds);
      List.iter
        (fun name -> Printf.printf "MISSING    %s (required, not in candidate)\n" name)
        (List.rev !missing);
      Printf.printf
        "bench_gate: %d metric(s) checked, %d regression(s), %d bound \
         violation(s), %d missing\n"
        !checked
        (List.length !regressions)
        (List.length !bounds)
        (List.length !missing);
      if !regressions <> [] || !bounds <> [] || !missing <> [] then exit 1
  | _ ->
      prerr_endline
        "usage: bench_gate BASELINE.json CANDIDATE.json [--portable] \
         [--threshold PCT] [--slack N] [--min NAME=V]... [--max NAME=V]...";
      exit 2
