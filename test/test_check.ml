(* The runtime protocol-invariant checker: every invariant is exercised
   both ways — a clean harness that must record zero violations and a
   deliberately-broken harness that must be caught, with the violation
   carrying an event-trace tail. Finally, whole-platform runs under
   [check = true] must come back clean. *)

open Sdn_core
module Check = Sdn_check.Check

let fresh () = Check.create ()

let invariants c = List.map (fun v -> v.Check.invariant) (Check.violations c)

let check_caught ?(n = 1) c invariant =
  Alcotest.(check (list string))
    "violations"
    (List.init n (fun _ -> invariant))
    (invariants c);
  List.iter
    (fun v ->
      Alcotest.(check bool) "trace tail attached" true (v.Check.trace <> []);
      Alcotest.(check bool) "detail set" true (String.length v.Check.detail > 0))
    (Check.violations c);
  Alcotest.(check bool) "report non-empty" true
    (String.length (Check.report c) > 0)

let check_clean c =
  Alcotest.(check int) "no violations" 0 (Check.violation_count c);
  Alcotest.(check string) "empty report" "" (Check.report c)

(* ---- buffer-conservation ---- *)

let test_buffer_clean_lifecycle () =
  let c = fresh () in
  Check.note_buffer_alloc c ~time:0.0 ~pool:"p" ~id:7l;
  Check.note_buffer_append c ~time:0.1 ~pool:"p" ~id:7l;
  Check.note_buffer_release c ~time:0.2 ~pool:"p" ~id:7l ~packets:2;
  (* Slot recycled under a new generation: a fresh id is fine. *)
  Check.note_buffer_alloc c ~time:0.3 ~pool:"p" ~id:0x10007l;
  Check.note_buffer_expire c ~time:0.4 ~pool:"p" ~id:0x10007l;
  check_clean c;
  Alcotest.(check bool) "events counted" true (Check.events_seen c >= 5)

let test_double_release () =
  let c = fresh () in
  Check.note_buffer_alloc c ~time:0.0 ~pool:"p" ~id:7l;
  Check.note_buffer_release c ~time:0.1 ~pool:"p" ~id:7l ~packets:1;
  Check.note_buffer_release c ~time:0.2 ~pool:"p" ~id:7l ~packets:1;
  check_caught c "buffer-conservation"

let test_realloc_while_live () =
  let c = fresh () in
  Check.note_buffer_alloc c ~time:0.0 ~pool:"p" ~id:7l;
  Check.note_buffer_alloc c ~time:0.1 ~pool:"p" ~id:7l;
  check_caught c "buffer-conservation"

let test_append_after_close () =
  let c = fresh () in
  Check.note_buffer_alloc c ~time:0.0 ~pool:"p" ~id:7l;
  Check.note_buffer_expire c ~time:0.1 ~pool:"p" ~id:7l;
  Check.note_buffer_append c ~time:0.2 ~pool:"p" ~id:7l;
  check_caught c "buffer-conservation"

let test_release_count_mismatch () =
  let c = fresh () in
  Check.note_buffer_alloc c ~time:0.0 ~pool:"p" ~id:7l;
  Check.note_buffer_append c ~time:0.1 ~pool:"p" ~id:7l;
  Check.note_buffer_release c ~time:0.2 ~pool:"p" ~id:7l ~packets:1;
  check_caught c "buffer-conservation"

let test_pools_are_independent () =
  let c = fresh () in
  (* The same numeric id may be live in two distinct pools at once. *)
  Check.note_buffer_alloc c ~time:0.0 ~pool:"sw-1/pkt_pool" ~id:7l;
  Check.note_buffer_alloc c ~time:0.1 ~pool:"sw-2/pkt_pool" ~id:7l;
  Check.note_buffer_release c ~time:0.2 ~pool:"sw-1/pkt_pool" ~id:7l ~packets:1;
  Check.note_buffer_release c ~time:0.3 ~pool:"sw-2/pkt_pool" ~id:7l ~packets:1;
  check_clean c

(* ---- single-packet-in ---- *)

let test_single_packet_in_clean () =
  let c = fresh () in
  Check.note_buffer_alloc c ~time:0.0 ~pool:"p" ~id:7l;
  Check.note_packet_in c ~time:0.0 ~pool:"p" ~id:7l ~resend:false;
  Check.note_buffer_append c ~time:0.1 ~pool:"p" ~id:7l;
  (* Timeout machinery re-requesting is legal, any number of times. *)
  Check.note_packet_in c ~time:0.5 ~pool:"p" ~id:7l ~resend:true;
  Check.note_packet_in c ~time:1.0 ~pool:"p" ~id:7l ~resend:true;
  check_clean c

let test_double_original_packet_in () =
  let c = fresh () in
  Check.note_buffer_alloc c ~time:0.0 ~pool:"p" ~id:7l;
  Check.note_packet_in c ~time:0.0 ~pool:"p" ~id:7l ~resend:false;
  Check.note_packet_in c ~time:0.1 ~pool:"p" ~id:7l ~resend:false;
  check_caught c "single-packet-in"

let test_packet_in_for_dead_unit () =
  let c = fresh () in
  Check.note_packet_in c ~time:0.0 ~pool:"p" ~id:7l ~resend:false;
  check_caught c "single-packet-in"

(* ---- session-transitions ---- *)

let test_legal_session_lifecycle () =
  let c = fresh () in
  let step from_ to_ =
    Check.note_session_transition c ~time:0.0 ~session:"sw-1" ~from_ ~to_
  in
  step "handshaking" "up";
  step "up" "probing";
  step "probing" "up";
  step "up" "down";
  step "down" "reconnecting";
  step "reconnecting" "up";
  check_clean c

let test_illegal_session_transition () =
  let c = fresh () in
  Check.note_session_transition c ~time:0.0 ~session:"sw-1"
    ~from_:"handshaking" ~to_:"reconnecting";
  check_caught c "session-transitions"

(* ---- microflow-agreement ---- *)

let test_microflow_agreement_clean () =
  let c = fresh () in
  for _ = 1 to 100 do
    Check.note_microflow c ~time:1.0 ~table:"sw-1/table" ~agree:true ~detail:""
  done;
  check_clean c

let test_microflow_disagreement_caught () =
  let c = fresh () in
  Check.note_microflow c ~time:2.0 ~table:"sw-1/table" ~agree:false
    ~detail:"cache=miss table=nw dst 10.0.0.2 prio=1";
  check_caught c "microflow-agreement"

(* ---- xid-uniqueness + codec-roundtrip ---- *)

open Sdn_openflow

let emit ?(session = "s") ?(fresh = true) ?encoded c ~xid msg =
  let encoded =
    match encoded with Some b -> b | None -> Of_codec.encode ~xid msg
  in
  Check.note_emit c ~time:0.0 ~session ~fresh ~xid ~msg ~encoded

let test_xid_unique_clean () =
  let c = fresh () in
  emit c ~xid:1l Of_codec.Hello;
  emit c ~xid:2l Of_codec.Features_request;
  (* Replies echo the request's xid: not fresh, never a violation. *)
  emit c ~fresh:false ~xid:2l Of_codec.Barrier_reply;
  emit c ~fresh:false ~xid:2l Of_codec.Barrier_reply;
  (* Distinct sessions have independent xid spaces. *)
  emit c ~session:"other" ~xid:1l Of_codec.Hello;
  check_clean c

let test_fresh_xid_reuse () =
  let c = fresh () in
  emit c ~xid:5l Of_codec.Hello;
  emit c ~xid:5l Of_codec.Features_request;
  check_caught c "xid-uniqueness"

let test_codec_roundtrip_clean () =
  let c = fresh () in
  emit c ~xid:9l
    (Of_codec.Echo_request (Bytes.of_string "ping"));
  check_clean c

let test_codec_tampered_bytes () =
  let c = fresh () in
  let msg = Of_codec.Echo_request (Bytes.of_string "ping") in
  let encoded = Of_codec.encode ~xid:9l msg in
  (* Flip a payload byte: decode succeeds but gives a different message. *)
  Bytes.set encoded (Bytes.length encoded - 1) '!';
  emit c ~xid:9l ~encoded msg;
  check_caught c "codec-roundtrip"

let test_codec_wrong_xid () =
  let c = fresh () in
  let msg = Of_codec.Hello in
  emit c ~xid:3l ~encoded:(Of_codec.encode ~xid:4l msg) msg;
  check_caught c "codec-roundtrip"

let test_codec_undecodable () =
  let c = fresh () in
  emit c ~xid:1l ~encoded:(Bytes.make 3 '\000') Of_codec.Hello;
  check_caught c "codec-roundtrip"

(* ---- violation plumbing ---- *)

let test_raise_on_violation () =
  let c = Check.create ~raise_on_violation:true () in
  Check.note_buffer_alloc c ~time:0.0 ~pool:"p" ~id:7l;
  match Check.note_buffer_alloc c ~time:0.1 ~pool:"p" ~id:7l with
  | () -> Alcotest.fail "expected Check.Violation"
  | exception Check.Violation v ->
      Alcotest.(check string) "invariant" "buffer-conservation"
        v.Check.invariant

let test_trace_depth_bounds_tail () =
  let c = Check.create ~trace_depth:4 () in
  for i = 1 to 100 do
    Check.record c ~time:(float_of_int i) (Printf.sprintf "event %d" i)
  done;
  Check.note_buffer_release c ~time:101.0 ~pool:"p" ~id:7l ~packets:0;
  match Check.violations c with
  | [ v ] ->
      Alcotest.(check bool) "tail bounded" true (List.length v.Check.trace <= 4);
      (* The violation event itself is the last trace entry. *)
      let _, last = List.nth v.Check.trace (List.length v.Check.trace - 1) in
      Alcotest.(check bool) "tail ends at the violation" true
        (String.length last > 9 && String.sub last 0 9 = "VIOLATION")
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

(* ---- whole-platform runs under --check ---- *)

let run_checked ?(faults = Sdn_sim.Faults.none) ~mechanism () =
  Experiment.run
    {
      Config.default with
      Config.mechanism;
      buffer_capacity = 256;
      rate_mbps = 40.0;
      workload = Config.Exp_b { n_flows = 60; packets_per_flow = 4; concurrent = 6 };
      seed = 11;
      faults;
      check = true;
    }

let test_experiment_clean_under_check () =
  List.iter
    (fun mechanism ->
      let r = run_checked ~mechanism () in
      Alcotest.(check int) "no violations" 0 r.Experiment.check_violations;
      Alcotest.(check bool) "no report" true (r.Experiment.check_report = None))
    [ Config.No_buffer; Config.Packet_granularity; Config.Flow_granularity ]

let test_lossy_run_clean_under_check () =
  let faults = { Sdn_sim.Faults.none with Sdn_sim.Faults.loss_rate = 0.2 } in
  let r = run_checked ~faults ~mechanism:Config.Flow_granularity () in
  Alcotest.(check int) "no violations under loss" 0
    r.Experiment.check_violations

let suite =
  [
    Alcotest.test_case "clean buffer lifecycle" `Quick
      test_buffer_clean_lifecycle;
    Alcotest.test_case "double release caught" `Quick test_double_release;
    Alcotest.test_case "re-alloc of live id caught" `Quick
      test_realloc_while_live;
    Alcotest.test_case "append after close caught" `Quick
      test_append_after_close;
    Alcotest.test_case "release packet-count mismatch caught" `Quick
      test_release_count_mismatch;
    Alcotest.test_case "pools are independent ledgers" `Quick
      test_pools_are_independent;
    Alcotest.test_case "original + resends is legal" `Quick
      test_single_packet_in_clean;
    Alcotest.test_case "second original PACKET_IN caught" `Quick
      test_double_original_packet_in;
    Alcotest.test_case "PACKET_IN for dead unit caught" `Quick
      test_packet_in_for_dead_unit;
    Alcotest.test_case "legal session lifecycle" `Quick
      test_legal_session_lifecycle;
    Alcotest.test_case "illegal session edge caught" `Quick
      test_illegal_session_transition;
    Alcotest.test_case "microflow agreement clean" `Quick
      test_microflow_agreement_clean;
    Alcotest.test_case "microflow disagreement caught" `Quick
      test_microflow_disagreement_caught;
    Alcotest.test_case "fresh xids unique, echoes exempt" `Quick
      test_xid_unique_clean;
    Alcotest.test_case "fresh xid reuse caught" `Quick test_fresh_xid_reuse;
    Alcotest.test_case "codec round-trip clean" `Quick
      test_codec_roundtrip_clean;
    Alcotest.test_case "tampered bytes caught" `Quick test_codec_tampered_bytes;
    Alcotest.test_case "xid mismatch on the wire caught" `Quick
      test_codec_wrong_xid;
    Alcotest.test_case "undecodable emission caught" `Quick
      test_codec_undecodable;
    Alcotest.test_case "raise_on_violation raises" `Quick
      test_raise_on_violation;
    Alcotest.test_case "trace tail bounded and ends at violation" `Quick
      test_trace_depth_bounds_tail;
    Alcotest.test_case "experiments clean under --check" `Quick
      test_experiment_clean_under_check;
    Alcotest.test_case "lossy run clean under --check" `Quick
      test_lossy_run_clean_under_check;
  ]
