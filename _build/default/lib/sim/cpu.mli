(** Multi-core FIFO service-queue CPU model.

    A [Cpu.t] models one process's compute resource (the Open vSwitch
    daemon, the Floodlight controller) as [cores] identical servers fed
    by a single FIFO queue. Submitting a job specifies its nominal
    service time; the effective service time is

    [work * service_scale ~queue_len * noise ()]

    where [service_scale] lets callers model load-dependent behaviour:

    - batching amortization (factor < 1 as the queue grows) for the
      switch slow path — Open vSwitch processes upcalls in batches, so
      per-packet cost falls under load, which is what makes the
      switch-usage curve of the paper's Fig. 4 rise quickly and then
      flatten;
    - congestion penalty (factor > 1 as the queue grows) for the
      controller handling many concurrent large [packet_in]s — GC and
      scheduling pressure, producing the super-linear controller-usage
      growth of Fig. 3 without buffers.

    Busy time is accounted as a time integral of the number of busy
    cores, so utilization over a window can exceed 100% exactly as the
    paper's multi-core [top] measurements do. *)

type t

val create :
  Engine.t ->
  name:string ->
  cores:int ->
  ?service_scale:(queue_len:int -> float) ->
  ?noise:(unit -> float) ->
  unit ->
  t
(** [create engine ~name ~cores ()] is an idle CPU. [service_scale]
    defaults to [fun ~queue_len:_ -> 1.0]; [noise] defaults to
    [fun () -> 1.0]. *)

val submit : t -> work_s:float -> (unit -> unit) -> unit
(** [submit t ~work_s k] enqueues a job whose nominal service time is
    [work_s] seconds; [k] runs when the job completes. Jobs start in
    FIFO order as cores free up. *)

val name : t -> string
val cores : t -> int

val queue_length : t -> int
(** Jobs waiting (not counting those in service). *)

val in_service : t -> int
(** Cores currently busy. *)

val jobs_completed : t -> int

val busy_core_seconds : t -> float
(** Integral, up to the current engine time, of the number of busy
    cores. Utilization percent over a window [\[a, b\]] is
    [(I(b) - I(a)) / (b - a) * 100] where [I] is this integral
    snapshot taken at the corresponding instants. *)

val utilization_percent : t -> integral_at_start:float -> start:float -> float
(** Convenience: utilization (in percent of one core) from [start] —
    where the busy integral was [integral_at_start] — until now. *)

val max_queue_length : t -> int
(** High-watermark of the waiting queue. *)

val reset_counters : t -> unit
(** Zeroes the busy integral, job counter and queue high-watermark
    (does not affect jobs in flight). *)
