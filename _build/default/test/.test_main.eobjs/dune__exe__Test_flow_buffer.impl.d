test/test_flow_buffer.ml: Alcotest Bytes Engine Flow_buffer Flow_key Int32 Ip List Printf QCheck QCheck_alcotest Sdn_net Sdn_sim Sdn_switch
