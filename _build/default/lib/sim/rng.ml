type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let of_int seed = create (Int64.of_int seed)

let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  create (mix seed)

let bits30 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound <= 1 lsl 30 then bits30 t mod bound
  else
    let v = Int64.shift_right_logical (next_int64 t) 1 in
    Int64.to_int (Int64.rem v (Int64.of_int bound))

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform bits mapped to [0, 1), then scaled. *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0) *. bound

let uniform t ~lo ~hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u < 1e-300 then 1e-300 else u in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 < 1e-300 then draw () else u1
  in
  let u1 = draw () in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let lognormal_factor t ~sigma = exp (gaussian t ~mu:0.0 ~sigma)

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
