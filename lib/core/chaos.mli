(** The chaos scenario: control-channel loss rate swept against buffer
    mechanism. Each point runs one full {!Experiment} with the
    control-channel fault plan's independent loss set to the point's
    rate, and the report compares flow-completion ratio, packet
    delivery, re-request effort and time-to-recovery across
    mechanisms. All randomness comes from the seed in the base
    configuration, so two runs with the same seed produce
    byte-identical reports. *)

type point = {
  config : Config.t;  (** the exact configuration the point ran *)
  loss_rate : float;  (** independent loss applied to both control legs *)
  result : Experiment.result;
}

val default_loss_rates : float list
(** [0; 0.05; 0.1; 0.2] *)

val default_mechanisms : Config.mechanism list
(** no-buffer, packet-granularity, flow-granularity. *)

val default_base : seed:int -> Config.t
(** Exp-B (50 flows x 20 packets) at 20 Mbps: multi-packet flows whose
    buffered tails make control-channel loss visible. *)

val point_config :
  base:Config.t -> mechanism:Config.mechanism -> loss_rate:float -> Config.t
(** The configuration a sweep point runs: [base] with the mechanism
    substituted and the fault plan's independent loss set to
    [loss_rate] (any burst/jitter/outage in [base.faults] is kept). *)

val run :
  ?mechanisms:Config.mechanism list ->
  ?loss_rates:float list ->
  ?jobs:int ->
  base:Config.t ->
  unit ->
  point list
(** Run the sweep: one experiment per mechanism x loss rate, in
    deterministic order (mechanisms outer, loss rates inner). [jobs]
    (default [base.jobs]) fans the independent points out over worker
    domains via {!Exec.run_experiments}; results are merged by point
    index, so every [jobs] value yields an identical point list. *)

val report : point list -> string
(** Deterministic plain-text report: one table row per point plus a
    time-to-recovery histogram aggregated over every point that
    recovered at least one flow. *)

val print_report : point list -> unit

(** {2 Outage sweep}

    A scheduled control-channel blackout swept against buffer mechanism
    and fail mode. Each point runs with the echo keepalive on, a single
    outage window opening at {!outage_start}, and the report compares
    detection latency, downtime, degraded-mode behaviour and recovery
    across points. Deterministic like the loss sweep. *)

type outage_point = {
  config : Config.t;  (** the exact configuration the point ran *)
  fail_mode : Config.fail_mode;
  duration : float;  (** outage length, seconds *)
  result : Experiment.result;
}

val default_outage_durations : float list
(** [0.05; 0.1] seconds. *)

val default_fail_modes : Config.fail_mode list
(** fail-secure then fail-standalone. *)

val outage_start : float
(** When every sweep point's blackout opens (0.15 s — mid-run for the
    default Exp-B workload). *)

val default_outage_base : seed:int -> Config.t
(** {!default_base} with the keepalive armed: [echo_interval = 10 ms],
    [echo_misses = 2], so a blackout is declared Down within ~30 ms. *)

val outage_point_config :
  base:Config.t ->
  mechanism:Config.mechanism ->
  fail_mode:Config.fail_mode ->
  duration:float ->
  Config.t
(** The configuration an outage point runs: [base] with the mechanism
    and fail mode substituted and the fault plan's outage list replaced
    by a single [\[outage_start, outage_start + duration)] window. *)

val run_outage :
  ?mechanisms:Config.mechanism list ->
  ?fail_modes:Config.fail_mode list ->
  ?durations:float list ->
  ?jobs:int ->
  base:Config.t ->
  unit ->
  outage_point list
(** Run the sweep: one experiment per mechanism x fail mode x duration,
    in deterministic order (mechanisms outer, durations inner). [jobs]
    (default [base.jobs]) parallelizes exactly as in {!run}. *)

val outage_report : outage_point list -> string
(** Deterministic plain-text report: one table row per point (downs,
    detection latency, downtime, completion, standalone frames,
    fail-secure drops, frozen/resumed/expired chains, resyncs, false
    positives) plus each point's session-state timeline. *)

val print_outage_report : outage_point list -> unit

(** {2 Crash sweep}

    A scheduled node crash–restart swept against buffer mechanism,
    crashed node and restart mode. Each point runs with the echo
    keepalive armed and a single crash landing at {!crash_start}
    mid-incast; the report compares packets lost to the crash,
    recovery time to steady state, reconciliation effort and
    admission-guard sheds. Deterministic like the other sweeps. *)

type crash_point = {
  config : Config.t;  (** the exact configuration the point ran *)
  node : Sdn_sim.Faults.crash_node;
  mode : Sdn_sim.Faults.restart_mode;
  down : float;  (** downtime before the restart, seconds *)
  result : Experiment.result;
}

val default_crash_nodes : Sdn_sim.Faults.crash_node list
(** switch then controller. *)

val default_crash_modes : Sdn_sim.Faults.restart_mode list
(** warm then cold. *)

val default_crash_downs : float list
(** [0.05] seconds. *)

val crash_start : float
(** When every sweep point's crash lands ({!outage_start} — mid-run for
    the default Exp-B workload, so misses are in flight). *)

val default_crash_base : seed:int -> Config.t
(** {!default_outage_base}: the keepalive is what notices a dead peer
    and drives the reconnect machinery on both sides. *)

val crash_point_config :
  base:Config.t ->
  mechanism:Config.mechanism ->
  node:Sdn_sim.Faults.crash_node ->
  mode:Sdn_sim.Faults.restart_mode ->
  down:float ->
  Config.t
(** The configuration a crash point runs: [base] with the mechanism
    substituted and the fault plan's crash list replaced by a single
    crash of [node] at {!crash_start}, down for [down] seconds,
    restarting in [mode]. *)

val run_crash :
  ?mechanisms:Config.mechanism list ->
  ?nodes:Sdn_sim.Faults.crash_node list ->
  ?modes:Sdn_sim.Faults.restart_mode list ->
  ?downs:float list ->
  ?jobs:int ->
  base:Config.t ->
  unit ->
  crash_point list
(** Run the sweep: one experiment per mechanism x node x mode x
    downtime, in deterministic order (mechanisms outer, downtimes
    inner). [jobs] (default [base.jobs]) parallelizes exactly as in
    {!run}. *)

val crash_report : crash_point list -> string
(** Deterministic plain-text report: one table row per point (packets
    and messages lost to the crash, recovery time, reconciliation
    audit/re-install counts, admission-guard sheds, completion,
    frozen/resumed/expired chains) plus each point's session timeline
    with crash/restart/reconciliation events marked. *)

val print_crash_report : crash_point list -> unit

(** {2 Buffer-policy sweep}

    The shared-buffer sharing disciplines of {!Sdn_switch.Buf_policy}
    swept against pool size under an incast burst. Each point runs the
    same deterministic 80 Mbps burst into a 20 Mbps egress uplink with
    three strict-priority classes, so both the ingress packet pool and
    the egress backlog draw on the shared pool; the report compares
    delivery, drops and per-class occupancy / threshold behaviour.
    Deterministic like the other sweeps. *)

type policy_point = {
  config : Config.t;  (** the exact configuration the point ran *)
  policy : Sdn_switch.Buf_policy.kind;
  buffer : int;  (** packet-pool capacity (the pool-size axis) *)
  result : Experiment.result;
}

val default_policies : Sdn_switch.Buf_policy.kind list
(** static, complete sharing, DT (alpha 2), adaptive TDT. *)

val default_policy_buffers : int list
(** [16; 64; 256] packet-pool slots. *)

val default_policy_base : seed:int -> Config.t
(** Packet-granularity, 400-packet UDP burst at 80 Mbps into a 20 Mbps
    egress uplink, three strict-priority classes (capacities 32/32/16)
    filled deterministically by source port. *)

val policy_point_config :
  base:Config.t -> policy:Sdn_switch.Buf_policy.kind -> buffer:int -> Config.t
(** The configuration a sweep point runs: [base] with the sharing
    policy armed and the packet-pool capacity substituted. *)

val run_policy :
  ?policies:Sdn_switch.Buf_policy.kind list ->
  ?buffers:int list ->
  ?jobs:int ->
  base:Config.t ->
  unit ->
  policy_point list
(** Run the sweep: one experiment per policy x pool size, in
    deterministic order (policies outer, sizes inner). [jobs] (default
    [base.jobs]) parallelizes exactly as in {!run}. *)

val policy_report : policy_point list -> string
(** Deterministic plain-text report: one table row per point (delivery,
    drops, buffered-packet fallbacks, pool high-water mark, pool
    rejections, misroutes, forwarding delay) plus each point's
    per-class occupancy / threshold / admission lines. *)

val print_policy_report : policy_point list -> unit
