(** Packet-granularity buffer pool — OpenFlow's default buffering, as
    implemented by Open vSwitch.

    Each miss-match packet occupies one buffer unit and gets its own
    [buffer_id]; the corresponding [PACKET_OUT] (or [FLOW_MOD] with
    buffer id) releases exactly that packet. Two behaviours calibrated
    from the paper are modelled explicitly:

    - {b expiry}: a buffered packet nobody releases is dropped after
      [expiry] seconds, freeing the unit (OVS ages its buffers);
    - {b deferred reclamation}: after a release the unit stays
      accounted as in-use for [reclaim_lag] seconds before returning to
      the free list. This reproduces the occupancy levels of the
      paper's Fig. 8 (buffer-16 exhausting near 30-35 Mbps, buffer-256
      peaking near 80 units at full rate), which are much higher than
      request round-trip times alone would give. *)

open Sdn_sim

type t

type take_result =
  | Taken of Bytes.t  (** the stored frame *)
  | Unknown_id  (** stale or never-allocated buffer id *)

val create :
  Engine.t ->
  ?check:Sdn_check.Check.t ->
  ?policy:Buf_policy.cls ->
  ?pool_name:string ->
  capacity:int ->
  expiry:float ->
  reclaim_lag:float ->
  unit ->
  t
(** With [check] armed, every allocation, release and expiry is
    reported to the invariant checker under [pool_name] (default
    ["pkt_pool"]) for buffer-conservation verification. With [policy]
    set, the pool draws on a shared {!Buf_policy} pool: every [alloc]
    must first be admitted by the class, every reclaim returns the
    unit, and each successful {!take} feeds the buffering delay into
    the class's EWMA. *)

val alloc : t -> frame:Bytes.t -> int32 option
(** Store a frame; [None] when every unit is in use or the sharing
    policy refuses the claim (the switch then falls back to sending
    the full packet to the controller). *)

val take : t -> int32 -> take_result
(** Release by id. The frame is returned for forwarding; the unit
    frees after the reclaim lag. *)

val wipe : t -> int
(** Cold-restart state loss: expire every held packet (reported to the
    checker, counted into {!expired}) and reclaim in-flight releases
    immediately, cancelling their deferred-reclaim timers so no stale
    callback can touch a post-wipe re-allocation of the slot. Returns
    how many buffered packets were lost. Walks slots in index order so
    wiped runs stay byte-reproducible. *)

val capacity : t -> int

val in_use : t -> int
(** Units currently held or awaiting reclamation. *)

val mean_in_use : t -> until:float -> float
(** Time-weighted average occupancy since creation. *)

val max_in_use : t -> int

val allocations : t -> int
val alloc_failures : t -> int
val expired : t -> int
val stale_takes : t -> int
