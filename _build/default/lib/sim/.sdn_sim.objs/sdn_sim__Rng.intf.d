lib/sim/rng.mli:
