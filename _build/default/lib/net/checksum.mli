(** RFC 1071 Internet checksum (one's-complement sum of 16-bit words). *)

val sum : Bytes.t -> int -> int -> int
(** [sum buf off len] is the one's-complement running sum (not yet
    complemented) of the region, as an int in [\[0, 0xFFFF\]]. An odd
    trailing byte is padded with zero, per the RFC. *)

val add : int -> int -> int
(** Combine two running sums with end-around carry. *)

val finish : int -> int
(** One's-complement the running sum into a wire checksum. An all-zero
    result is returned as is (UDP maps it to 0xFFFF itself). *)

val over : Bytes.t -> int -> int -> int
(** [over buf off len] is [finish (sum buf off len)]. *)

val verify : Bytes.t -> int -> int -> bool
(** A region that embeds its own checksum sums to 0xFFFF; [verify]
    checks that. *)
