open Sdn_sim

type point = { rate_mbps : float; results : Experiment.result list }

type series = { label : string; points : point list }

let default_rates = List.init 20 (fun i -> float_of_int ((i + 1) * 5))

(* The release-stable seed grid: every (rate, repetition) cell gets its
   own seed, distinct across the whole grid for the paper's rates
   (multiples of 0.1 Mbps) and up to 1000 repetitions. Golden-tested;
   changing this mapping invalidates every recorded figure. *)
let seed_for ~rate_mbps ~rep = (int_of_float (rate_mbps *. 10.0) * 1000) + rep + 1

let run ~label ?(rates = default_rates) ?(reps = 20) ?(jobs = 1) make_config =
  (* Configurations are built sequentially in the calling domain, rates
     outer and repetitions inner — [make_config] is caller code and may
     observe call order. Only the pure [Experiment.run] calls fan out. *)
  let configs_by_rate =
    List.map
      (fun rate_mbps ->
        ( rate_mbps,
          List.init reps (fun rep ->
              make_config ~rate_mbps ~seed:(seed_for ~rate_mbps ~rep)) ))
      rates
  in
  let configs =
    Array.of_list (List.concat_map snd configs_by_rate)
  in
  let results =
    Exec.run_experiments ~jobs
      ~label:(fun i ->
        Printf.sprintf "%s/rate=%g/rep=%d" label
          (fst (List.nth configs_by_rate (i / reps)))
          (i mod reps))
      configs
  in
  let points =
    List.mapi
      (fun rate_idx (rate_mbps, _) ->
        {
          rate_mbps;
          results = List.init reps (fun rep -> results.((rate_idx * reps) + rep));
        })
      configs_by_rate
  in
  { label; points }

let stats_of_point point f =
  let s = Stats.create () in
  List.iter (fun r -> Stats.add s (f r)) point.results;
  s

let point_mean point f = Stats.mean (stats_of_point point f)

(* A single repetition has no sample standard deviation; report 0
   rather than a divide-by-zero artefact so reps=1 smoke sweeps plot
   cleanly. *)
let sd_of_stats s = if Stats.count s <= 1 then 0.0 else Stats.stddev s

let point_sd point f = sd_of_stats (stats_of_point point f)

let point_max point f =
  let s = stats_of_point point f in
  if Stats.count s = 0 then 0.0 else Stats.max s

let stats_of_series series f =
  let s = Stats.create () in
  List.iter
    (fun point -> List.iter (fun r -> Stats.add s (f r)) point.results)
    series.points;
  s

let series_mean series f = Stats.mean (stats_of_series series f)
let series_sd series f = sd_of_stats (stats_of_series series f)

let series_max series f =
  let s = stats_of_series series f in
  if Stats.count s = 0 then 0.0 else Stats.max s

let reduction_pct ~baseline ~improved =
  if baseline = 0.0 then 0.0 else (baseline -. improved) /. baseline *. 100.0
