lib/openflow/of_wire.mli: Bytes Format
