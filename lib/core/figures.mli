(** Per-figure reproduction drivers.

    Two sweeps feed every figure: the Section IV sweep (Exp-A, three
    buffer configurations) feeds Figs. 2-8; the Section V sweep (Exp-B,
    packet- vs flow-granularity) feeds Figs. 9-13. [run_all] executes
    both once and prints every figure as a rate-indexed table plus the
    paper's headline aggregate claims. *)

type exp_a_data = {
  no_buffer : Sweep.series;
  buffer_16 : Sweep.series;
  buffer_256 : Sweep.series;
}

type exp_b_data = { packet_gran : Sweep.series; flow_gran : Sweep.series }

val run_exp_a :
  ?rates:float list -> ?reps:int -> ?jobs:int -> unit -> exp_a_data
(** [jobs] (default 1) is handed to each {!Sweep.run}; by the
    {!Exec.run_experiments} contract it never changes the data. *)

val run_exp_b :
  ?rates:float list -> ?reps:int -> ?jobs:int -> unit -> exp_b_data

(** Each figure function prints its table from pre-computed sweep
    data. *)

val fig2a : exp_a_data -> unit
val fig2b : exp_a_data -> unit
val fig3 : exp_a_data -> unit
val fig4 : exp_a_data -> unit
val fig5 : exp_a_data -> unit
val fig6 : exp_a_data -> unit
val fig7 : exp_a_data -> unit
val fig8 : exp_a_data -> unit
val fig9a : exp_b_data -> unit
val fig9b : exp_b_data -> unit
val fig10 : exp_b_data -> unit
val fig11 : exp_b_data -> unit
val fig12a : exp_b_data -> unit
val fig12b : exp_b_data -> unit
val fig13a : exp_b_data -> unit
val fig13b : exp_b_data -> unit

val summary_exp_a : exp_a_data -> unit
(** The Section IV headline numbers: average reductions in control
    load (both directions), controller overhead, delays; average switch
    overhead increase. Printed next to the paper's reported values. *)

val summary_exp_b : exp_b_data -> unit

val exp_a_figures : (string * (exp_a_data -> unit)) list
val exp_b_figures : (string * (exp_b_data -> unit)) list

val run_all : ?rates:float list -> ?reps:int -> ?jobs:int -> unit -> unit

val export_csv : dir:string -> exp_a_data -> exp_b_data -> unit
(** Write one CSV per figure (rate, then mean and sd per series) into
    [dir], which is created if missing. File names are [fig2a.csv] ..
    [fig13b.csv]. *)
