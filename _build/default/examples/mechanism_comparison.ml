(* Side-by-side comparison of the three miss-handling mechanisms on the
   paper's Exp-B workload (50 flows x 20 packets, cross-sequence
   batches of 5), across three representative rates.

   Run with:  dune exec examples/mechanism_comparison.exe

   Also demonstrates the release-strategy ablation: the paper's
   controller answers each request with a FLOW_MOD + PACKET_OUT pair;
   OpenFlow also allows releasing the buffered packet inside the
   FLOW_MOD itself, saving one message. *)

open Sdn_core
open Sdn_measure

let run ?(release = `Pair) mechanism buffer rate =
  Experiment.run
    {
      Config.default with
      Config.mechanism;
      buffer_capacity = buffer;
      rate_mbps = rate;
      workload = Config.Exp_b { n_flows = 50; packets_per_flow = 20; concurrent = 5 };
      release_strategy = release;
      seed = 11;
    }

let row label (r : Experiment.result) =
  [
    label;
    Printf.sprintf "%.0f" r.Experiment.config.Config.rate_mbps;
    string_of_int r.Experiment.pkt_ins;
    string_of_int (r.Experiment.ctrl_msgs_up + r.Experiment.ctrl_msgs_down);
    Report.fmt_mbps (r.Experiment.ctrl_load_up_mbps +. r.Experiment.ctrl_load_down_mbps);
    Report.fmt_ms r.Experiment.setup_delay.Experiment.mean;
    Report.fmt_ms r.Experiment.forwarding_delay.Experiment.mean;
    Printf.sprintf "%.1f" r.Experiment.buffer_mean_in_use;
  ]

let () =
  Printf.printf
    "Exp-B workload: 50 flows x 20 packets, cross-sequence batches of 5.\n\n";
  let rows =
    List.concat_map
      (fun rate ->
        [
          row "no-buffer" (run Config.No_buffer 0 rate);
          row "packet-granularity" (run Config.Packet_granularity 256 rate);
          row "flow-granularity" (run Config.Flow_granularity 256 rate);
        ])
      [ 20.0; 60.0; 95.0 ]
  in
  Report.print_table
    ~header:
      [
        "mechanism"; "rate"; "requests"; "ctrl msgs"; "ctrl load (Mbps)";
        "setup (ms)"; "fwd delay (ms)"; "buffer units";
      ]
    ~rows;
  Printf.printf "\nAblation: releasing the buffered packet inside the FLOW_MOD\n";
  Printf.printf "(instead of the paper's FLOW_MOD + PACKET_OUT pair), at 95 Mbps:\n\n";
  let pair = run ~release:`Pair Config.Packet_granularity 256 95.0 in
  let fmr = run ~release:`Flow_mod_release Config.Packet_granularity 256 95.0 in
  Report.print_table
    ~header:[ "release strategy"; "msgs to switch"; "load down (Mbps)" ]
    ~rows:
      [
        [ "flow_mod + packet_out (paper)";
          string_of_int pair.Experiment.ctrl_msgs_down;
          Report.fmt_mbps pair.Experiment.ctrl_load_down_mbps ];
        [ "flow_mod carrying buffer_id";
          string_of_int fmr.Experiment.ctrl_msgs_down;
          Report.fmt_mbps fmr.Experiment.ctrl_load_down_mbps ];
      ]
