type mechanism = Sdn_switch.Switch.mechanism =
  | No_buffer
  | Packet_granularity
  | Flow_granularity

type fail_mode = Sdn_switch.Session.fail_mode =
  | Fail_secure
  | Fail_standalone

type workload =
  | Exp_a of { n_flows : int }
  | Exp_b of { n_flows : int; packets_per_flow : int; concurrent : int }
  | Udp_burst of { n_packets : int }
  | Poisson_flows of { n_flows : int }
  | Poisson_mix of { n_packets : int; miss_fraction : float }

type qos = {
  classify : Sdn_controller.App.context -> int32;
  policy : Sdn_switch.Egress_queue.policy;
  queues : Sdn_switch.Egress_queue.queue_config list;
}

type t = {
  mechanism : mechanism;
  buffer_capacity : int;
  rate_mbps : float;
  frame_size : int;
  workload : workload;
  seed : int;
  release_strategy : Sdn_controller.Controller.release_strategy;
  control_loss_rate : float;
  faults : Sdn_sim.Faults.spec;
  miss_send_len : int;
  resend_timeout : float;
  resend_multiplier : float;
  resend_cap : float;
  resend_jitter : float;
  max_resends : int;
  flow_table_capacity : int;
  rule_idle_timeout : int;
  echo_interval : float;
  echo_misses : int;
  fail_mode : fail_mode;
  overload_watermark : float;
  buf_policy : Sdn_switch.Buf_policy.kind option;
  qos : qos option;
  egress_bandwidth_bps : float option;
  check : bool;
  jobs : int;
  event_queue : Sdn_sim.Engine.queue_kind;
  switch_costs : Sdn_switch.Costs.t;
  controller_costs : Sdn_controller.Costs.t;
}

let default =
  {
    mechanism = Packet_granularity;
    buffer_capacity = 256;
    rate_mbps = 30.0;
    frame_size = 1000;
    workload = Exp_a { n_flows = 1000 };
    seed = 1;
    release_strategy = `Pair;
    control_loss_rate = 0.0;
    faults = Sdn_sim.Faults.none;
    miss_send_len = 128;
    resend_timeout = 50e-3;
    resend_multiplier = 2.0;
    resend_cap = 400e-3;
    resend_jitter = 0.1;
    max_resends = 3;
    flow_table_capacity = 2048;
    rule_idle_timeout = 5;
    echo_interval = 0.0;
    echo_misses = 3;
    fail_mode = Fail_secure;
    overload_watermark = 1.0;
    buf_policy = None;
    qos = None;
    egress_bandwidth_bps = None;
    check = false;
    jobs = 1;
    event_queue = `Heap;
    switch_costs = Calibration.switch_costs;
    controller_costs = Calibration.controller_costs;
  }

let exp_a ~mechanism ~buffer_capacity ~rate_mbps ~seed =
  { default with mechanism; buffer_capacity; rate_mbps; seed }

let exp_b ~mechanism ~rate_mbps ~seed =
  {
    default with
    mechanism;
    buffer_capacity = 256;
    rate_mbps;
    seed;
    workload = Exp_b { n_flows = 50; packets_per_flow = 20; concurrent = 5 };
  }

let packets_expected t =
  match t.workload with
  | Exp_a { n_flows } -> n_flows
  | Exp_b { n_flows; packets_per_flow; _ } -> n_flows * packets_per_flow
  | Udp_burst { n_packets } -> n_packets
  | Poisson_flows { n_flows } -> n_flows
  (* plus the flow-0 primer *)
  | Poisson_mix { n_packets; _ } -> n_packets + 1

let label t =
  let base =
    match t.mechanism with
    | No_buffer -> "no-buffer"
    | Packet_granularity -> Printf.sprintf "buffer-%d" t.buffer_capacity
    | Flow_granularity -> "flow-granularity"
  in
  match t.buf_policy with
  | None -> base
  | Some kind ->
      Printf.sprintf "%s/%s" base (Sdn_switch.Buf_policy.kind_to_string kind)
