(* Tests for frame construction, encoding, decoding and peeking. *)

open Sdn_net

let mac1 = Mac.of_octets 0x02 0 0 0 0 1
let mac2 = Mac.of_octets 0x02 0 0 0 0 2
let ip1 = Ip.make 10 0 0 1
let ip2 = Ip.make 10 0 0 2

let sample_udp ?(payload = Bytes.of_string "hello world") () =
  Packet.udp ~src_mac:mac1 ~dst_mac:mac2 ~src_ip:ip1 ~dst_ip:ip2 ~src_port:1234
    ~dst_port:9 ~payload ()

let test_udp_roundtrip () =
  let pkt = sample_udp () in
  let encoded = Packet.encode pkt in
  Alcotest.(check int) "size matches" (Packet.size pkt) (Bytes.length encoded);
  match Packet.decode encoded with
  | Ok decoded -> Alcotest.(check bool) "equal" true (Packet.equal pkt decoded)
  | Error msg -> Alcotest.fail msg

let test_udp_frame_exact_size () =
  let pkt =
    Packet.udp_frame_of_size ~src_mac:mac1 ~dst_mac:mac2 ~src_ip:ip1 ~dst_ip:ip2
      ~src_port:5 ~dst_port:6 ~frame_size:1000
      ~payload_fill:(fun payload -> Bytes.set payload 0 'x')
  in
  Alcotest.(check int) "exactly 1000 bytes" 1000
    (Bytes.length (Packet.encode pkt))

let test_udp_frame_too_small () =
  Alcotest.(check bool) "rejects sub-header size" true
    (try
       ignore
         (Packet.udp_frame_of_size ~src_mac:mac1 ~dst_mac:mac2 ~src_ip:ip1
            ~dst_ip:ip2 ~src_port:1 ~dst_port:2 ~frame_size:41
            ~payload_fill:(fun _ -> ()));
       false
     with Invalid_argument _ -> true)

let test_tcp_roundtrip () =
  let pkt =
    Packet.tcp ~src_mac:mac1 ~dst_mac:mac2 ~src_ip:ip1 ~dst_ip:ip2
      ~src_port:4321 ~dst_port:80 ~seq:100l ~ack_seq:55l ~flags:Tcp.flags_syn_ack
      ~payload:(Bytes.of_string "data") ()
  in
  match Packet.decode (Packet.encode pkt) with
  | Ok decoded -> Alcotest.(check bool) "equal" true (Packet.equal pkt decoded)
  | Error msg -> Alcotest.fail msg

let test_arp_roundtrip () =
  let req = Arp.request ~sender_mac:mac1 ~sender_ip:ip1 ~target_ip:ip2 in
  let pkt = Packet.arp ~src_mac:mac1 ~dst_mac:Mac.broadcast req in
  match Packet.decode (Packet.encode pkt) with
  | Ok decoded -> Alcotest.(check bool) "equal" true (Packet.equal pkt decoded)
  | Error msg -> Alcotest.fail msg

let test_arp_reply_construction () =
  let req = Arp.request ~sender_mac:mac1 ~sender_ip:ip1 ~target_ip:ip2 in
  let reply = Arp.reply req ~responder_mac:mac2 in
  Alcotest.(check bool) "reply oper" true (reply.Arp.oper = Arp.Reply);
  Alcotest.(check bool) "sender is responder" true
    (Mac.equal reply.Arp.sender_mac mac2);
  Alcotest.(check bool) "addressed to requester" true
    (Mac.equal reply.Arp.target_mac mac1 && Ip.equal reply.Arp.target_ip ip1);
  Alcotest.(check bool) "announces requested ip" true
    (Ip.equal reply.Arp.sender_ip ip2)

let test_flow_key_extraction () =
  let pkt = sample_udp () in
  match Packet.flow_key pkt with
  | Some key ->
      Alcotest.(check int) "proto" Ipv4.proto_udp key.Flow_key.proto;
      Alcotest.(check int) "src port" 1234 key.Flow_key.src_port;
      Alcotest.(check int) "dst port" 9 key.Flow_key.dst_port;
      Alcotest.(check bool) "ips" true
        (Ip.equal key.Flow_key.src_ip ip1 && Ip.equal key.Flow_key.dst_ip ip2)
  | None -> Alcotest.fail "expected a flow key"

let test_arp_has_no_flow_key () =
  let req = Arp.request ~sender_mac:mac1 ~sender_ip:ip1 ~target_ip:ip2 in
  let pkt = Packet.arp ~src_mac:mac1 ~dst_mac:Mac.broadcast req in
  Alcotest.(check bool) "no key" true (Packet.flow_key pkt = None)

let test_corruption_detected () =
  let encoded = Packet.encode (sample_udp ()) in
  (* Flip a bit in the UDP payload: the UDP checksum must catch it. *)
  let off = Bytes.length encoded - 1 in
  Bytes.set_uint8 encoded off (Bytes.get_uint8 encoded off lxor 1);
  Alcotest.(check bool) "decode fails" true
    (Result.is_error (Packet.decode encoded))

let test_ip_header_corruption_detected () =
  let encoded = Packet.encode (sample_udp ()) in
  (* Corrupt the TTL (inside the IP header checksum). *)
  Bytes.set_uint8 encoded 22 7;
  Alcotest.(check bool) "decode fails" true
    (Result.is_error (Packet.decode encoded))

let test_truncated_rejected () =
  let encoded = Packet.encode (sample_udp ()) in
  let truncated = Bytes.sub encoded 0 30 in
  Alcotest.(check bool) "decode fails" true
    (Result.is_error (Packet.decode truncated))

let test_peek_headers_on_truncated () =
  (* A 1000 B frame truncated to 128 B, as in a buffered PACKET_IN. *)
  let pkt =
    Packet.udp_frame_of_size ~src_mac:mac1 ~dst_mac:mac2 ~src_ip:ip1 ~dst_ip:ip2
      ~src_port:777 ~dst_port:9 ~frame_size:1000 ~payload_fill:(fun _ -> ())
  in
  let truncated = Bytes.sub (Packet.encode pkt) 0 128 in
  (* Full decode must fail (payload checksum not verifiable)... *)
  Alcotest.(check bool) "decode fails" true
    (Result.is_error (Packet.decode truncated));
  (* ...but header peeking succeeds. *)
  match Packet.peek_headers truncated with
  | Error msg -> Alcotest.fail msg
  | Ok headers -> (
      Alcotest.(check bool) "eth src" true
        (Mac.equal headers.Packet.h_eth.Ethernet.src mac1);
      (match headers.Packet.h_ipv4 with
      | Some ip -> Alcotest.(check bool) "dst ip" true (Ip.equal ip.Ipv4.dst ip2)
      | None -> Alcotest.fail "expected ipv4 header");
      match headers.Packet.h_l4_ports with
      | Some (src, dst) ->
          Alcotest.(check int) "src port" 777 src;
          Alcotest.(check int) "dst port" 9 dst
      | None -> Alcotest.fail "expected ports")

let test_peek_flow_key_matches_full () =
  let pkt = sample_udp () in
  let encoded = Packet.encode pkt in
  let full = Option.get (Packet.flow_key pkt) in
  let peeked = Option.get (Packet.peek_flow_key (Bytes.sub encoded 0 48)) in
  Alcotest.(check bool) "same key" true (Flow_key.equal full peeked)

let test_udp_zero_checksum_accepted () =
  (* RFC 768 allows checksum 0 = not computed. *)
  let encoded = Packet.encode (sample_udp ()) in
  Bytes.set_uint16_be encoded (14 + 20 + 6) 0;
  Alcotest.(check bool) "accepted" true (Result.is_ok (Packet.decode encoded))

let arbitrary_udp =
  let gen =
    QCheck.Gen.(
      map2
        (fun (a, b, c, d) payload_len ->
          let payload = Bytes.make payload_len 'p' in
          Packet.udp
            ~src_mac:(Mac.of_octets 2 0 0 0 0 (a land 0xff))
            ~dst_mac:mac2
            ~src_ip:(Ip.make 10 (b land 0xff) (c land 0xff) 1)
            ~dst_ip:ip2
            ~src_port:(1 + (d land 0xffff) mod 65535)
            ~dst_port:9 ~payload ())
        (quad nat nat nat nat) (int_range 0 1200))
  in
  QCheck.make gen

let prop_udp_roundtrip =
  QCheck.Test.make ~name:"udp encode/decode roundtrip" ~count:200 arbitrary_udp
    (fun pkt ->
      match Packet.decode (Packet.encode pkt) with
      | Ok decoded -> Packet.equal pkt decoded
      | Error _ -> false)

let prop_size_equals_encoding =
  QCheck.Test.make ~name:"size equals encoded length" ~count:200 arbitrary_udp
    (fun pkt -> Packet.size pkt = Bytes.length (Packet.encode pkt))

let suite =
  [
    Alcotest.test_case "udp roundtrip" `Quick test_udp_roundtrip;
    Alcotest.test_case "exact frame size" `Quick test_udp_frame_exact_size;
    Alcotest.test_case "frame size validation" `Quick test_udp_frame_too_small;
    Alcotest.test_case "tcp roundtrip" `Quick test_tcp_roundtrip;
    Alcotest.test_case "arp roundtrip" `Quick test_arp_roundtrip;
    Alcotest.test_case "arp reply construction" `Quick test_arp_reply_construction;
    Alcotest.test_case "flow key extraction" `Quick test_flow_key_extraction;
    Alcotest.test_case "arp has no flow key" `Quick test_arp_has_no_flow_key;
    Alcotest.test_case "payload corruption detected" `Quick test_corruption_detected;
    Alcotest.test_case "ip header corruption detected" `Quick
      test_ip_header_corruption_detected;
    Alcotest.test_case "truncated frame rejected" `Quick test_truncated_rejected;
    Alcotest.test_case "peek headers on truncated frame" `Quick
      test_peek_headers_on_truncated;
    Alcotest.test_case "peeked flow key matches full" `Quick
      test_peek_flow_key_matches_full;
    Alcotest.test_case "udp zero checksum accepted" `Quick
      test_udp_zero_checksum_accepted;
    QCheck_alcotest.to_alcotest prop_udp_roundtrip;
    QCheck_alcotest.to_alcotest prop_size_equals_encoding;
  ]
