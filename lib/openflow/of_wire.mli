(** OpenFlow 1.0 wire-level basics: protocol constants, the common
    8-byte message header, and reserved port numbers.

    All multi-byte fields are big-endian, as on the wire. *)

val version : int
(** OpenFlow 1.0 = 0x01. *)

val header_size : int
(** 8 bytes. *)

val no_buffer : int32
(** [0xffffffff] — the [buffer_id] value meaning "packet not buffered;
    full frame travels inside the message". *)

val max_xid : int32

(** Reserved/virtual port numbers (OF 1.0, 16-bit port space). *)
module Port : sig
  val max_physical : int
  (** 0xff00 — largest physical port number. *)

  val in_port : int
  val table : int
  val normal : int
  val flood : int
  val all : int
  val controller : int
  val local : int
  val none : int

  val pp : Format.formatter -> int -> unit
  (** Prints reserved ports symbolically. *)
end

(** The message-type byte of the common header. *)
module Msg_type : sig
  type t =
    | Hello
    | Error
    | Echo_request
    | Echo_reply
    | Vendor
    | Features_request
    | Features_reply
    | Get_config_request
    | Get_config_reply
    | Set_config
    | Packet_in
    | Flow_removed
    | Port_status
    | Packet_out
    | Flow_mod
    | Port_mod
    | Stats_request
    | Stats_reply
    | Barrier_request
    | Barrier_reply

  val to_int : t -> int
  val of_int : int -> (t, string) result
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end

type header = { msg_type : Msg_type.t; length : int; xid : int32 }
(** The common header with the version byte implied ({!version}). *)

val write_header : header -> Bytes.t -> unit
(** Serialize at offset 0 of a buffer that is at least
    {!header_size} long. Raises [Invalid_argument] when [length]
    exceeds the 16-bit wire field (65535): the value would otherwise
    wrap silently and frame garbage. *)

val write_header_at : header -> Bytes.t -> pos:int -> unit
(** Serialize at offset [pos]; the caller guarantees room. Same
    16-bit length guard as {!write_header}. *)

val write_header_fields :
  msg_type:Msg_type.t -> length:int -> xid:int32 -> Bytes.t -> pos:int -> unit
(** {!write_header_at} without building the intermediate [header]
    record — the form the scratch encoder's zero-allocation hot path
    uses. Same 16-bit length guard. *)

val read_header : Bytes.t -> (header, string) result
(** Parse the header at offset 0; checks version, type and that
    [length] does not exceed the buffer. *)

val read_header_sub : Bytes.t -> pos:int -> len:int -> (header, string) result
(** Parse the header at offset [pos] of a [len]-byte window — the
    zero-copy variant the stream reassembler uses to decode in place.
    Checks version, type and that [length] does not exceed [len]. *)

(** A reusable, growable byte buffer for allocation-free encoding on
    the per-packet hot path. A component owns one scratch and encodes
    into it instead of allocating a fresh buffer per message. *)
module Scratch : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Initial [capacity] defaults to 2048 bytes (every fixed-size
      OpenFlow 1.0 message and any packet_in carrying a standard-MTU
      frame fits without growth). Raises [Invalid_argument] when
      [capacity <= 0]. *)

  val ensure : t -> int -> Bytes.t
  (** [ensure t n] returns the backing buffer, regrown (by doubling)
      to hold at least [n] bytes. Growth discards previous contents. *)

  val buffer : t -> Bytes.t
  val capacity : t -> int
end
