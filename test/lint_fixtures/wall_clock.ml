(* Fixture: exactly one wall-clock finding. *)

let now () = Unix.gettimeofday ()
