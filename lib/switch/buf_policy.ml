open Sdn_sim

type kind =
  | Static
  | Sharing
  | Dt of { alpha : float }
  | Tdt of { alpha0 : float; target_delay : float }

let default_alpha = 2.0
let default_target_delay = 2e-3

(* EWMA smoothing for observed queueing delay (beta = 1/8, the classic
   RTT-estimator gain). *)
let ewma_beta = 0.125

(* TDT alpha is clamped to [1/64, 64]: a class is never starved below
   1/64 of the free pool nor allowed to dominate past 64x of it. *)
let alpha_min = 1.0 /. 64.0
let alpha_max = 64.0

let kind_of_string s =
  match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
  | [ "static" ] -> Ok Static
  | [ "share" ] -> Ok Sharing
  | [ "dt" ] -> Ok (Dt { alpha = default_alpha })
  | [ "dt"; a ] -> (
      match float_of_string_opt a with
      | Some alpha when alpha > 0.0 -> Ok (Dt { alpha })
      | _ -> Error (Printf.sprintf "bad DT alpha %S (want a positive float)" a))
  | [ "tdt" ] ->
      Ok (Tdt { alpha0 = default_alpha; target_delay = default_target_delay })
  | [ "tdt"; a ] -> (
      match float_of_string_opt a with
      | Some alpha0 when alpha0 > 0.0 ->
          Ok (Tdt { alpha0; target_delay = default_target_delay })
      | _ ->
          Error (Printf.sprintf "bad TDT alpha0 %S (want a positive float)" a))
  | [ "tdt"; a; d ] -> (
      match (float_of_string_opt a, float_of_string_opt d) with
      | Some alpha0, Some ms when alpha0 > 0.0 && ms > 0.0 ->
          Ok (Tdt { alpha0; target_delay = ms /. 1000.0 })
      | _ ->
          Error
            (Printf.sprintf
               "bad TDT spec %S (want tdt:ALPHA0:TARGET_MS, both positive)" s))
  | _ ->
      Error
        (Printf.sprintf
           "unknown buffer policy %S (want static|share|dt:ALPHA|tdt)" s)

let kind_to_string = function
  | Static -> "static"
  | Sharing -> "share"
  | Dt { alpha } -> Printf.sprintf "dt:%g" alpha
  | Tdt { alpha0; target_delay } ->
      Printf.sprintf "tdt:%g:%g" alpha0 (target_delay *. 1000.0)

type t = {
  kind : kind;
  engine : Engine.t;
  check : Sdn_check.Check.t option;
  pool_name : string;
  mutable capacity : int;
  mutable used : int;
  mutable classes : cls list;  (** registration order *)
}

and cls = {
  pool : t;
  name : string;
  quota : int;
  priority : int;
  mutable len : int;
  mutable len_max : int;
  mutable admitted : int;
  mutable rejected : int;
  mutable alpha_v : float;
  mutable delay_ewma : float;
  mutable delay_samples : int;
  occupancy : Timeseries.Weighted.w;
}

let create ?check ?(headroom = 0) ~kind ~name engine =
  if headroom < 0 then invalid_arg "Buf_policy.create: negative headroom";
  (match check with
  | Some check ->
      Sdn_check.Check.note_pool_create check ~time:(Engine.now engine)
        ~pool:name ~headroom
  | None -> ());
  {
    kind;
    engine;
    check;
    pool_name = name;
    capacity = headroom;
    used = 0;
    classes = [];
  }

let kind_of t = t.kind
let capacity t = t.capacity
let used t = t.used
let free t = t.capacity - t.used

let initial_alpha kind ~priority =
  match kind with
  | Static -> 0.0
  | Sharing -> Float.infinity
  | Dt { alpha } -> alpha
  | Tdt { alpha0; _ } ->
      Float.min alpha_max
        (Float.max alpha_min (alpha0 *. (1.0 +. (float_of_int priority /. 8.0))))

let register t ~name ~quota ~priority =
  if quota < 0 then invalid_arg "Buf_policy.register: negative quota";
  if List.exists (fun c -> String.equal c.name name) t.classes then
    invalid_arg
      (Printf.sprintf "Buf_policy.register: duplicate class %s in pool %s" name
         t.pool_name);
  let now = Engine.now t.engine in
  let c =
    {
      pool = t;
      name;
      quota;
      priority;
      len = 0;
      len_max = 0;
      admitted = 0;
      rejected = 0;
      alpha_v = initial_alpha t.kind ~priority;
      delay_ewma = 0.0;
      delay_samples = 0;
      occupancy = Timeseries.Weighted.create ~start:now ();
    }
  in
  t.capacity <- t.capacity + quota;
  t.classes <- t.classes @ [ c ];
  (match t.check with
  | Some check ->
      Sdn_check.Check.note_pool_register check ~time:now ~pool:t.pool_name
        ~class_:name ~quota
  | None -> ());
  c

(* The admission predicate is the whole policy: a pure function of the
   class length and the pool's free count at decision time. *)
let admits c =
  let p = c.pool in
  let free = p.capacity - p.used in
  match p.kind with
  | Static -> c.len < c.quota
  | Sharing -> free > 0
  | Dt _ | Tdt _ ->
      free > 0 && float_of_int c.len < c.alpha_v *. float_of_int free

let admit c =
  let p = c.pool in
  if admits c then begin
    c.len <- c.len + 1;
    if c.len > c.len_max then c.len_max <- c.len;
    c.admitted <- c.admitted + 1;
    p.used <- p.used + 1;
    let now = Engine.now p.engine in
    Timeseries.Weighted.update c.occupancy ~time:now
      ~value:(float_of_int c.len);
    (match p.check with
    | Some check ->
        Sdn_check.Check.note_pool_claim check ~time:now ~pool:p.pool_name
          ~class_:c.name ~free:(p.capacity - p.used)
    | None -> ());
    true
  end
  else begin
    c.rejected <- c.rejected + 1;
    false
  end

let release c =
  let p = c.pool in
  if c.len <= 0 then
    invalid_arg
      (Printf.sprintf "Buf_policy.release: class %s holds nothing" c.name);
  c.len <- c.len - 1;
  p.used <- p.used - 1;
  let now = Engine.now p.engine in
  Timeseries.Weighted.update c.occupancy ~time:now ~value:(float_of_int c.len);
  match p.check with
  | Some check ->
      Sdn_check.Check.note_pool_release check ~time:now ~pool:p.pool_name
        ~class_:c.name ~free:(p.capacity - p.used)
  | None -> ()

let note_delay c d =
  let d = Float.max 0.0 d in
  if c.delay_samples = 0 then c.delay_ewma <- d
  else c.delay_ewma <- c.delay_ewma +. (ewma_beta *. (d -. c.delay_ewma));
  c.delay_samples <- c.delay_samples + 1;
  match c.pool.kind with
  | Tdt { alpha0; target_delay } ->
      (* Classes meeting their delay target keep a generous alpha
         (scaled up with priority); classes whose observed delay
         inflates past the target see alpha tightened toward the
         floor, releasing shared slack to the others. *)
      let boost = 1.0 +. (float_of_int c.priority /. 8.0) in
      let pressure = target_delay /. (target_delay +. c.delay_ewma) in
      c.alpha_v <-
        Float.min alpha_max (Float.max alpha_min (alpha0 *. boost *. pressure))
  | Static | Sharing | Dt _ -> ()

let len c = c.len

let threshold c =
  let p = c.pool in
  match p.kind with
  | Static -> c.quota
  | Sharing -> p.capacity
  | Dt _ | Tdt _ ->
      let free = float_of_int (p.capacity - p.used) in
      Int.min p.capacity (int_of_float (c.alpha_v *. free))

let alpha c = c.alpha_v

type class_stat = {
  class_name : string;
  quota : int;
  priority : int;
  occupancy_mean : float;
  occupancy_max : int;
  threshold : int;
  alpha : float;
  admitted : int;
  rejected : int;
}

let stats t ~until =
  List.map
    (fun c ->
      {
        class_name = c.name;
        quota = c.quota;
        priority = c.priority;
        occupancy_mean = Timeseries.Weighted.mean c.occupancy ~until;
        occupancy_max = c.len_max;
        threshold = threshold c;
        alpha = c.alpha_v;
        admitted = c.admitted;
        rejected = c.rejected;
      })
    t.classes

let pp_class_stat ppf s =
  Format.fprintf ppf
    "%-14s quota=%-4d prio=%d occ-mean=%6.2f occ-max=%-4d thr=%-4d \
     alpha=%6.3f admitted=%-6d rejected=%d"
    s.class_name s.quota s.priority s.occupancy_mean s.occupancy_max
    s.threshold s.alpha s.admitted s.rejected
