type flags = {
  fin : bool;
  syn : bool;
  rst : bool;
  psh : bool;
  ack : bool;
  urg : bool;
}

let no_flags =
  { fin = false; syn = false; rst = false; psh = false; ack = false; urg = false }

let flags_syn = { no_flags with syn = true }
let flags_syn_ack = { no_flags with syn = true; ack = true }
let flags_ack = { no_flags with ack = true }
let flags_fin_ack = { no_flags with fin = true; ack = true }
let flags_psh_ack = { no_flags with psh = true; ack = true }

type t = {
  src_port : int;
  dst_port : int;
  seq : int32;
  ack_seq : int32;
  flags : flags;
  window : int;
}

let size = 20

let flags_to_int f =
  (if f.fin then 0x01 else 0)
  lor (if f.syn then 0x02 else 0)
  lor (if f.rst then 0x04 else 0)
  lor (if f.psh then 0x08 else 0)
  lor (if f.ack then 0x10 else 0)
  lor if f.urg then 0x20 else 0

let flags_of_int i =
  {
    fin = i land 0x01 <> 0;
    syn = i land 0x02 <> 0;
    rst = i land 0x04 <> 0;
    psh = i land 0x08 <> 0;
    ack = i land 0x10 <> 0;
    urg = i land 0x20 <> 0;
  }

let write t ~src_ip ~dst_ip ~payload buf off =
  let len = size + Bytes.length payload in
  Bytes.set_uint16_be buf off t.src_port;
  Bytes.set_uint16_be buf (off + 2) t.dst_port;
  Bytes.set_int32_be buf (off + 4) t.seq;
  Bytes.set_int32_be buf (off + 8) t.ack_seq;
  Bytes.set_uint8 buf (off + 12) (5 lsl 4) (* data offset 5, no options *);
  Bytes.set_uint8 buf (off + 13) (flags_to_int t.flags);
  Bytes.set_uint16_be buf (off + 14) t.window;
  Bytes.set_uint16_be buf (off + 16) 0 (* checksum placeholder *);
  Bytes.set_uint16_be buf (off + 18) 0 (* urgent pointer *);
  let pseudo =
    Udp.pseudo_header_sum ~src_ip ~dst_ip ~proto:Ipv4.proto_tcp ~l4_len:len
  in
  let body = Checksum.sum buf off len in
  Bytes.set_uint16_be buf (off + 16) (Checksum.finish (Checksum.add pseudo body))

let read buf off ~len ~src_ip ~dst_ip =
  if len < size || off + len > Bytes.length buf then
    Error "Tcp.read: truncated segment"
  else begin
    let data_offset = Bytes.get_uint8 buf (off + 12) lsr 4 in
    if data_offset <> 5 then Error "Tcp.read: options unsupported"
    else begin
      let pseudo =
        Udp.pseudo_header_sum ~src_ip ~dst_ip ~proto:Ipv4.proto_tcp ~l4_len:len
      in
      let body = Checksum.sum buf off len in
      if Checksum.add pseudo body <> 0xFFFF then Error "Tcp.read: bad checksum"
      else
        Ok
          ( {
              src_port = Bytes.get_uint16_be buf off;
              dst_port = Bytes.get_uint16_be buf (off + 2);
              seq = Bytes.get_int32_be buf (off + 4);
              ack_seq = Bytes.get_int32_be buf (off + 8);
              flags = flags_of_int (Bytes.get_uint8 buf (off + 13));
              window = Bytes.get_uint16_be buf (off + 14);
            },
            len - size )
    end
  end

let equal a b =
  a.src_port = b.src_port && a.dst_port = b.dst_port
  && Int32.equal a.seq b.seq
  && Int32.equal a.ack_seq b.ack_seq
  && a.flags = b.flags && a.window = b.window

let pp_flags fmt f =
  let names =
    List.filter_map
      (fun (b, n) -> if b then Some n else None)
      [
        (f.syn, "SYN"); (f.ack, "ACK"); (f.fin, "FIN"); (f.rst, "RST");
        (f.psh, "PSH"); (f.urg, "URG");
      ]
  in
  Format.pp_print_string fmt (String.concat "," names)

let pp fmt t =
  Format.fprintf fmt "tcp{%d -> %d, seq=%ld, ack=%ld, [%a]}" t.src_port
    t.dst_port t.seq t.ack_seq pp_flags t.flags
