lib/traffic/addressing.ml: Flow_key Int32 Ip Ipv4 Mac Sdn_net
