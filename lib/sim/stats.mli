(** Streaming descriptive statistics.

    {!t} accumulates count/mean/variance online (Welford's algorithm)
    together with min/max and, optionally, the raw samples so that
    percentiles can be computed. The experiment harness records every
    delay sample of a run into one of these and reports
    mean / stddev / max exactly as the paper's tables do. *)

type t
(** A mutable accumulator of [float] samples. *)

val create : ?keep_samples:bool -> unit -> t
(** [create ()] is an empty accumulator. When [keep_samples] is [true]
    (the default) the raw samples are retained so {!percentile} works;
    pass [false] for long-running high-volume streams. *)

val add : t -> float -> unit
(** Record one sample. *)

val count : t -> int
(** Number of samples recorded. *)

val sum : t -> float
(** Sum of all samples. *)

val mean : t -> float
(** Arithmetic mean; [0.] if no samples. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two samples. *)

val stddev : t -> float
(** Square root of {!variance}. *)

val min : t -> float
(** Smallest sample; [nan] if empty. *)

val max : t -> float
(** Largest sample; [nan] if empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]], by linear interpolation on
    the sorted samples; [nan] if the accumulator is empty (consistent
    with {!min}/{!max}). Raises [Invalid_argument] if samples were not
    kept or [p] is out of range. *)

val median : t -> float
(** [percentile t 50.]; [nan] if empty. *)

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator equivalent to having seen both
    sample streams (parallel-variance combination). *)

val samples : t -> float array
(** Copy of the retained samples in insertion order ([||] if not kept). *)

val clear : t -> unit
(** Reset to the empty state. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line summary: count/mean/stddev/min/max. *)
