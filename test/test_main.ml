(* Test entry point: one Alcotest run over every module's suite. *)

let () =
  Alcotest.run "sdn-buffer"
    [
      ("sim.heap", Test_heap.suite);
      ("sim.rng", Test_rng.suite);
      ("sim.stats", Test_stats.suite);
      ("sim.engine", Test_engine.suite);
      ("sim.timer_wheel", Test_timer_wheel.suite);
      ("sim.link", Test_link.suite);
      ("sim.faults", Test_faults.suite);
      ("sim.cpu", Test_cpu.suite);
      ("net.addresses", Test_addr.suite);
      ("net.checksum", Test_checksum.suite);
      ("net.packet", Test_packet.suite);
      ("net.frame_pool", Test_frame_pool.suite);
      ("openflow.match", Test_of_match.suite);
      ("openflow.codec", Test_of_codec.suite);
      ("openflow.codec-fuzz", Test_of_codec_fuzz.suite);
      ("openflow.stream", Test_of_stream.suite);
      ("switch.flow_table", Test_flow_table.suite);
      ("switch.packet_buffer", Test_packet_buffer.suite);
      ("switch.flow_buffer", Test_flow_buffer.suite);
      ("switch.session", Test_session.suite);
      ("switch.behaviour", Test_switch.suite);
      ("controller", Test_controller.suite);
      ("traffic", Test_traffic.suite);
      ("measure", Test_measure.suite);
      ("integration", Test_experiment.suite);
      ("extensions", Test_extensions.suite);
      ("switch.egress_queue", Test_egress_queue.suite);
      ("switch.buf_policy", Test_buf_policy.suite);
      ("chain", Test_chain.suite);
      ("harness", Test_harness.suite);
      ("properties", Test_properties.suite);
      ("failures", Test_failures.suite);
      ("lifecycle", Test_lifecycle.suite);
      ("check", Test_check.suite);
      ("parallel", Test_parallel.suite);
      ("crash", Test_crash.suite);
      ("lint", Test_lint.suite);
      ("analyze", Test_analyze.suite);
      ("model", Test_model.suite);
      ("validate", Test_validate.suite);
    ]
