(** Flow-granularity buffer — the paper's proposed mechanism
    (Section V, Algorithms 1 and 2).

    One buffer unit holds {e all} miss-match packets of one flow and
    carries a single [buffer_id], derived from the flow's 5-tuple. The
    first packet of a flow allocates the unit and triggers exactly one
    [PACKET_IN]; subsequent miss-match packets of the same flow are
    chained onto the unit silently. When the [PACKET_OUT] arrives, the
    whole chain is released at once, so units recycle far faster than
    in the packet-granularity scheme — the paper's 71.6% improvement in
    buffer-utilization efficiency (Fig. 13).

    If the controller has not answered within [resend_timeout], the
    switch re-sends the request ("After a timeout period, if the switch
    doesn't receive the control operation messages, it will send
    another request message", Section V.A; Algorithm 1 lines 12-13).
    Successive re-requests back off exponentially: the n-th waits
    [timeout * multiplier^n], capped at [resend_cap], with optional
    multiplicative jitter so simultaneous timeouts desynchronise. After
    [max_resends] unanswered requests the chain is abandoned. The pool
    keeps recovery accounting — flows recovered after at least one
    resend, flows abandoned, and a time-to-recovery distribution — for
    the chaos scenario's reliability report. *)

open Sdn_sim
open Sdn_net

type t

type add_result =
  | First of int32
      (** unit allocated; the caller must send the (single) PACKET_IN *)
  | Appended of int32  (** chained silently; no PACKET_IN *)
  | No_space  (** every unit in use; caller falls back to no-buffer *)

type take_result =
  | Taken of Bytes.t list  (** all chained frames, in arrival order *)
  | Unknown_id

val create :
  Engine.t ->
  ?check:Sdn_check.Check.t ->
  ?pool_name:string ->
  capacity:int ->
  reclaim_lag:float ->
  resend_timeout:float ->
  ?resend_multiplier:float ->
  ?resend_cap:float ->
  ?resend_jitter:float ->
  ?rng:Sdn_sim.Rng.t ->
  max_resends:int ->
  on_resend:(buffer_id:int32 -> key:Flow_key.t -> first_frame:Bytes.t -> unit) ->
  unit ->
  t
(** [on_resend] is invoked by the timeout machinery; the switch wires
    it to PACKET_IN regeneration.

    With [check] armed, every chain allocation, append, release and
    expiry is reported to the invariant checker under [pool_name]
    (default ["flow_pool"]) for buffer-conservation verification.

    [resend_multiplier] (default 1: the paper's fixed period) grows the
    delay before each successive re-request; [resend_cap] (default
    unbounded) caps it; [resend_jitter] (default 0, must be in
    [\[0, 1)]) perturbs each delay by a uniform factor in
    [\[1 - j, 1 + j\]], drawn from [rng] — required when jitter is
    non-zero so the schedule stays seed-deterministic. *)

val set_backoff :
  t ->
  resend_timeout:float ->
  resend_multiplier:float ->
  resend_cap:float ->
  max_resends:int ->
  unit
(** Reconfigure the re-request policy (the vendor
    [Flow_buffer_enable] handler). Already-armed timers keep their old
    delay; the new policy applies from each unit's next arming. A
    multiplier below 1 is ignored. *)

val add : t -> key:Flow_key.t -> frame:Bytes.t -> add_result
(** Algorithm 1, lines 5-11. While frozen, a [First] allocation does
    {e not} arm the re-request timer — the caller also refrains from
    sending the PACKET_IN, so the chain just accumulates until
    {!resume}. *)

val freeze : t -> unit
(** Controller session lost (fail-secure mode): cancel every armed
    re-request timer so backoff budgets aren't burned into a dead link,
    and stop arming timers for new chains. Idempotent. *)

val resume : t -> unit
(** Controller session restored: chains that had already exhausted
    [max_resends] before the outage are expired (counted in
    {!expired_on_resume} as well as {!abandoned_flows}); every other
    held chain re-enters the backoff machinery at its next attempt
    number, in slot order, so the first re-request goes out one backoff
    delay after reconnect. Idempotent. *)

val wipe : t -> int * int
(** Cold-restart state loss: expire every held chain (reported to the
    checker, counted into {!drops}), reclaim in-flight releases
    immediately, unfreeze. Returns [(chains, packets)] wiped — the
    caller attributes them to the crash. Walks slots in index order so
    wiped runs stay byte-reproducible. *)

val has_chain : t -> key:Flow_key.t -> bool
(** Whether a chain for [key] is currently held — the overload guard
    uses this to let in-flight flows keep appending while shedding new
    chains. *)

val is_frozen : t -> bool

val freezes : t -> int
(** Number of freeze transitions (outages survived by the pool). *)

val chains_frozen : t -> int
(** Cumulative chains whose timers were cancelled by {!freeze}. *)

val chains_resumed : t -> int
(** Cumulative chains re-armed by {!resume}. *)

val expired_on_resume : t -> int
(** Chains expired at {!resume} because their resend budget was already
    spent before the outage. *)

val take_all : t -> int32 -> take_result
(** Algorithm 2, lines 2-10: release every chained packet and free the
    unit (after the reclaim lag). *)

val capacity : t -> int

val units_in_use : t -> int
val packets_buffered : t -> int
val flows_buffered : t -> int
val mean_units_in_use : t -> until:float -> float
val max_units_in_use : t -> int

val allocations : t -> int
val alloc_failures : t -> int
val resends : t -> int
val drops : t -> int
(** Chains abandoned after [max_resends] unanswered requests
    (packets). *)

val abandoned_flows : t -> int
(** Chains abandoned after [max_resends] unanswered requests (flows). *)

val recovered_flows : t -> int
(** Flows released after at least one timed-out re-request — the
    recovery path actually saved them. *)

val recovery_delays : t -> Sdn_sim.Stats.t
(** Time from a recovered flow's first miss to its release; feeds the
    chaos report's time-to-recovery histogram. *)

val stale_takes : t -> int
