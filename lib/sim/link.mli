(** Point-to-point unidirectional link with serialization and
    propagation delay.

    A link is a FIFO: a message of [size] bytes occupies the wire for
    [size * 8 / bandwidth] seconds once the wire is free, then arrives
    at the receiver [propagation] seconds later. The payload type is
    generic: data-plane links carry tagged packets, the control channel
    carries encoded OpenFlow messages, and the switch-internal
    ASIC-to-CPU bus carries transfer descriptors.

    Links keep byte and message counters; the control-path-load metric
    (paper Figs. 2 and 9) is computed from these, and an optional
    capture hook plays the role of [tcpdump] on the interface. *)

type 'a t
(** A unidirectional link delivering values of type ['a]. *)

val create :
  Engine.t ->
  name:string ->
  bandwidth_bps:float ->
  propagation_s:float ->
  ?capture:(time:float -> size:int -> 'a -> unit) ->
  ?loss:float * Rng.t ->
  ?faults:Faults.t ->
  receiver:('a -> unit) ->
  unit ->
  'a t
(** [create engine ~name ~bandwidth_bps ~propagation_s ~receiver ()] is
    an idle link. [capture], if given, observes every message at the
    instant its transmission begins (what a sniffer on the sending
    interface sees). [receiver] is invoked at delivery time.

    [loss], if given, drops each message independently with the given
    probability (drawn from the given generator) — the message still
    occupies the wire, it just never arrives. Used to model an
    unreliable control channel, the failure case the flow-granularity
    mechanism's re-request timeout exists for.

    [faults], if given, is a richer fault plan ({!Faults}) judged once
    per message at the instant {!send} is called: it can drop the
    message (independent loss, a Gilbert–Elliott burst, or a scheduled
    outage window) or delay its delivery by a bounded jitter, which
    reorders messages in flight. Dropped messages still occupy the
    wire. [faults] composes with [loss]: a message survives only if
    both models deliver it. *)

val send : 'a t -> size:int -> 'a -> unit
(** Enqueue a message of [size] bytes for transmission. Returns
    immediately; delivery happens via the engine. *)

val name : _ t -> string

val bandwidth_bps : _ t -> float

val bytes_sent : _ t -> int
(** Total bytes accepted for transmission since the last
    {!reset_counters}. *)

val messages_sent : _ t -> int

val busy_until : _ t -> float
(** Virtual time at which the wire becomes free; [<= now] means idle. *)

val backlog_bytes : _ t -> int
(** Bytes accepted but whose transmission has not yet finished. *)

val utilization : _ t -> since:float -> until_:float -> float
(** Fraction of [\[since, until_\]] the wire was busy, in [\[0, 1\]]
    (estimated from bytes sent; exact for a continuously-backlogged
    link). *)

val messages_lost : _ t -> int
(** Messages dropped by the loss model since creation. *)

val reset_counters : _ t -> unit
