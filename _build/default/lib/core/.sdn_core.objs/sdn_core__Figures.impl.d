lib/core/figures.ml: Config Experiment Filename List Printf Sdn_measure Sweep Sys
