lib/openflow/of_config.ml: Bytes Format Of_packet_in
