test/test_engine.ml: Alcotest Engine List Sdn_sim
