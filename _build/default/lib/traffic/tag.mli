(** Pktgen-style payload tag.

    The generator stamps the first bytes of each UDP payload with a
    magic word, the flow id, the packet's sequence number within the
    flow and the flow's total packet count. The measurement layer reads
    the tag back at the switch's ingress and egress taps to attribute
    delays per flow — exactly the role pktgen sequence numbers play in
    the paper's testbed. *)

type t = { flow_id : int; seq : int; flow_packets : int }

val size : int
(** 16 bytes. *)

val write : t -> Bytes.t -> unit
(** Stamp at offset 0 of a payload buffer (needs {!size} bytes). *)

val read_payload : Bytes.t -> t option
(** Parse from a payload buffer. *)

val read_frame : Bytes.t -> t option
(** Parse from a full encoded UDP frame (payload at offset 42). *)

val pp : Format.formatter -> t -> unit
