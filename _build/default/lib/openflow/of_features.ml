open Sdn_net

type phy_port = { port_no : int; hw_addr : Mac.t; name : string }

type t = {
  datapath_id : int64;
  n_buffers : int32;
  n_tables : int;
  capabilities : int32;
  actions : int32;
  ports : phy_port list;
}

(* OFPC_FLOW_STATS | OFPC_TABLE_STATS | OFPC_PORT_STATS *)
let default_capabilities = 0x7l

(* Output action bit. *)
let default_actions = 0x1l

let make ~datapath_id ~n_buffers ~n_tables ~ports =
  {
    datapath_id;
    n_buffers = Int32.of_int n_buffers;
    n_tables;
    capabilities = default_capabilities;
    actions = default_actions;
    ports;
  }

let phy_port_size = 48

let fixed_body = 8 + 4 + 1 + 3 + 4 + 4

let body_size t = fixed_body + (phy_port_size * List.length t.ports)

let write_port p buf off =
  Bytes.fill buf off phy_port_size '\000';
  Bytes.set_uint16_be buf off p.port_no;
  Mac.write p.hw_addr buf (off + 2);
  let name_len = min (String.length p.name) 15 in
  Bytes.blit_string p.name 0 buf (off + 8) name_len
  (* config/state/curr/advertised/supported/peer stay zero *)

let read_port buf off =
  let raw_name = Bytes.sub_string buf (off + 8) 16 in
  let name =
    match String.index_opt raw_name '\000' with
    | Some i -> String.sub raw_name 0 i
    | None -> raw_name
  in
  { port_no = Bytes.get_uint16_be buf off; hw_addr = Mac.read buf (off + 2); name }

let write_body t buf off =
  Bytes.set_int64_be buf off t.datapath_id;
  Bytes.set_int32_be buf (off + 8) t.n_buffers;
  Bytes.set_uint8 buf (off + 12) t.n_tables;
  Bytes.set_uint8 buf (off + 13) 0;
  Bytes.set_uint16_be buf (off + 14) 0;
  Bytes.set_int32_be buf (off + 16) t.capabilities;
  Bytes.set_int32_be buf (off + 20) t.actions;
  List.iteri
    (fun i p -> write_port p buf (off + fixed_body + (i * phy_port_size)))
    t.ports

let read_body buf off ~len =
  if len < fixed_body then Error "Of_features.read_body: truncated"
  else if (len - fixed_body) mod phy_port_size <> 0 then
    Error "Of_features.read_body: ragged port list"
  else begin
    let n_ports = (len - fixed_body) / phy_port_size in
    let ports =
      List.init n_ports (fun i ->
          read_port buf (off + fixed_body + (i * phy_port_size)))
    in
    Ok
      {
        datapath_id = Bytes.get_int64_be buf off;
        n_buffers = Bytes.get_int32_be buf (off + 8);
        n_tables = Bytes.get_uint8 buf (off + 12);
        capabilities = Bytes.get_int32_be buf (off + 16);
        actions = Bytes.get_int32_be buf (off + 20);
        ports;
      }
  end

let equal_port a b =
  a.port_no = b.port_no && Mac.equal a.hw_addr b.hw_addr && a.name = b.name

let equal a b =
  Int64.equal a.datapath_id b.datapath_id
  && Int32.equal a.n_buffers b.n_buffers
  && a.n_tables = b.n_tables
  && Int32.equal a.capabilities b.capabilities
  && Int32.equal a.actions b.actions
  && List.length a.ports = List.length b.ports
  && List.for_all2 equal_port a.ports b.ports

let pp fmt t =
  Format.fprintf fmt "features{dpid=%Ld buffers=%ld tables=%d ports=%d}"
    t.datapath_id t.n_buffers t.n_tables (List.length t.ports)
