(* Tests for OpenFlow message framing over a byte stream. *)

open Sdn_net
open Sdn_openflow

let mac1 = Mac.of_octets 0x02 0 0 0 0 1
let mac2 = Mac.of_octets 0x02 0 0 0 0 2

let sample_messages =
  let frame =
    Packet.encode
      (Packet.udp_frame_of_size ~src_mac:mac1 ~dst_mac:mac2
         ~src_ip:(Ip.make 10 0 0 1) ~dst_ip:(Ip.make 10 0 0 2) ~src_port:1
         ~dst_port:9 ~frame_size:300 ~payload_fill:(fun _ -> ()))
  in
  [
    (1l, Of_codec.Hello);
    ( 2l,
      Of_codec.Packet_in
        (Of_packet_in.make ~buffer_id:9l ~in_port:1
           ~reason:Of_packet_in.No_match ~frame ~miss_send_len:(Some 128)) );
    ( 3l,
      Of_codec.Flow_mod
        (Of_flow_mod.add ~match_:Of_match.wildcard_all
           ~actions:[ Of_action.output 2 ] ()) );
    (4l, Of_codec.Packet_out (Of_packet_out.release ~buffer_id:9l ~out_port:2));
    (5l, Of_codec.Echo_request (Bytes.of_string "ping"));
    (6l, Of_codec.Barrier_reply);
  ]

let check_messages what expected actual =
  Alcotest.(check int) (what ^ ": count") (List.length expected) (List.length actual);
  List.iter2
    (fun (xid, msg) (xid', msg') ->
      Alcotest.(check int32) (what ^ ": xid") xid xid';
      Alcotest.(check bool) (what ^ ": payload") true (Of_codec.equal msg msg'))
    expected actual

let test_whole_messages () =
  let stream = Of_stream.create () in
  List.iter
    (fun (xid, msg) -> Of_stream.input stream (Of_codec.encode ~xid msg))
    sample_messages;
  match Of_stream.drain stream with
  | Ok messages -> check_messages "whole" sample_messages messages
  | Error e -> Alcotest.fail e

let test_coalesced_single_chunk () =
  let stream = Of_stream.create () in
  Of_stream.input stream (Of_stream.encode_batch sample_messages);
  match Of_stream.drain stream with
  | Ok messages ->
      check_messages "coalesced" sample_messages messages;
      Alcotest.(check int) "nothing left" 0 (Of_stream.buffered_bytes stream)
  | Error e -> Alcotest.fail e

let test_byte_at_a_time () =
  let stream = Of_stream.create () in
  let wire = Of_stream.encode_batch sample_messages in
  let got = ref [] in
  Bytes.iter
    (fun c ->
      Of_stream.input stream (Bytes.make 1 c);
      match Of_stream.next stream with
      | Of_stream.Message (xid, msg) -> got := (xid, msg) :: !got
      | Of_stream.Awaiting -> ()
      | Of_stream.Corrupt e -> Alcotest.fail e)
    wire;
  check_messages "dribbled" sample_messages (List.rev !got)

let test_awaiting_mid_header_and_mid_body () =
  let stream = Of_stream.create () in
  let one = Of_codec.encode ~xid:9l (Of_codec.Echo_request (Bytes.of_string "abcdef")) in
  Of_stream.input_sub stream one ~pos:0 ~len:3;
  Alcotest.(check bool) "mid-header" true (Of_stream.next stream = Of_stream.Awaiting);
  Of_stream.input_sub stream one ~pos:3 ~len:7;
  Alcotest.(check bool) "mid-body" true (Of_stream.next stream = Of_stream.Awaiting);
  Of_stream.input_sub stream one ~pos:10 ~len:(Bytes.length one - 10);
  match Of_stream.next stream with
  | Of_stream.Message (9l, Of_codec.Echo_request p) ->
      Alcotest.(check bytes) "payload" (Bytes.of_string "abcdef") p
  | _ -> Alcotest.fail "expected the echo request"

let test_corruption_detected_and_sticky () =
  let stream = Of_stream.create () in
  let bad = Of_codec.encode ~xid:1l Of_codec.Hello in
  Bytes.set_uint8 bad 0 0x09 (* wrong version *);
  Of_stream.input stream bad;
  (match Of_stream.next stream with
  | Of_stream.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected corruption");
  (* The stream stays dead even if valid bytes follow. *)
  Of_stream.input stream (Of_codec.encode ~xid:2l Of_codec.Hello);
  match Of_stream.next stream with
  | Of_stream.Corrupt _ -> ()
  | _ -> Alcotest.fail "corruption must be sticky"

let test_bad_length_field () =
  let stream = Of_stream.create () in
  let bad = Of_codec.encode ~xid:1l Of_codec.Hello in
  Bytes.set_uint16_be bad 2 4 (* below header size *);
  Of_stream.input stream bad;
  match Of_stream.next stream with
  | Of_stream.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected corruption on bad length"

let prop_reassembly_at_random_boundaries =
  QCheck.Test.make ~name:"reassembly across random chunk boundaries" ~count:150
    (QCheck.make
       QCheck.Gen.(pair (int_range 0 1000000) (list_size (int_range 1 12) (int_range 1 64))))
    (fun (seed, sizes) ->
      (* Build a message list from the sizes (echo payloads of varied
         length), chop the wire at pseudo-random boundaries derived
         from [seed], and reassemble. *)
      let messages =
        List.mapi
          (fun i n -> (Int32.of_int (i + 1), Of_codec.Echo_request (Bytes.make n 'x')))
          sizes
      in
      let wire = Of_stream.encode_batch messages in
      let rng = Sdn_sim.Rng.of_int seed in
      let stream = Of_stream.create () in
      let got = ref [] in
      let pos = ref 0 in
      while !pos < Bytes.length wire do
        let chunk = min (1 + Sdn_sim.Rng.int rng 40) (Bytes.length wire - !pos) in
        Of_stream.input_sub stream wire ~pos:!pos ~len:chunk;
        pos := !pos + chunk;
        let rec pull () =
          match Of_stream.next stream with
          | Of_stream.Message (xid, msg) ->
              got := (xid, msg) :: !got;
              pull ()
          | Of_stream.Awaiting -> ()
          | Of_stream.Corrupt _ -> ()
        in
        pull ()
      done;
      let got = List.rev !got in
      List.length got = List.length messages
      && List.for_all2
           (fun (x, m) (x', m') -> Int32.equal x x' && Of_codec.equal m m')
           messages got
      && Of_stream.buffered_bytes stream = 0)

let suite =
  [
    Alcotest.test_case "whole messages" `Quick test_whole_messages;
    Alcotest.test_case "coalesced chunk" `Quick test_coalesced_single_chunk;
    Alcotest.test_case "byte at a time" `Quick test_byte_at_a_time;
    Alcotest.test_case "awaiting mid header/body" `Quick
      test_awaiting_mid_header_and_mid_body;
    Alcotest.test_case "corruption detected and sticky" `Quick
      test_corruption_detected_and_sticky;
    Alcotest.test_case "bad length field" `Quick test_bad_length_field;
    QCheck_alcotest.to_alcotest prop_reassembly_at_random_boundaries;
  ]
