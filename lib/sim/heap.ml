type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a option array;
  mutable size : int;
}

let create ?(capacity = 64) ~cmp () =
  let capacity = max capacity 1 in
  { cmp; data = Array.make capacity None; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let get t i =
  match t.data.(i) with
  | Some x -> x
  | None ->
      (* Unreachable: callers only index below [size], and every cell
         below [size] is [Some] — push fills the next cell before
         incrementing, pop clears only the last cell after shrinking. *)
      assert false (* lint: allow partial-exit *)

let grow t =
  let data = Array.make (2 * Array.length t.data) None in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp (get t i) (get t parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp (get t l) (get t !smallest) < 0 then smallest := l;
  if r < t.size && t.cmp (get t r) (get t !smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t x =
  if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- Some x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    t.data.(0) <- t.data.(t.size);
    t.data.(t.size) <- None;
    if t.size > 0 then sift_down t 0;
    top
  end

let pop_exn t =
  match pop t with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear t =
  Array.fill t.data 0 t.size None;
  t.size <- 0

let iter f t =
  for i = 0 to t.size - 1 do
    f (get t i)
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  !acc
