test/test_experiment.ml: Alcotest Calibration Config Experiment List Printf Sdn_core
