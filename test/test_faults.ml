(* Fault-plan tests: Gilbert–Elliott burst statistics, outage windows,
   seed-determinism of the schedule, and the exponential backoff of the
   flow-granularity re-request timer. *)

open Sdn_sim

let judge_n plan ~n ~dt =
  List.init n (fun i -> Faults.judge plan ~now:(float_of_int i *. dt))

(* The Gilbert–Elliott chain's long-run drop fraction must match the
   stationary distribution of the two-state Markov chain:
   P(bad) = pgb / (pgb + pbg), and with loss_bad = 1, loss_good = 0 the
   drop rate equals P(bad). *)
let test_burst_stationary () =
  let burst =
    {
      Faults.p_good_to_bad = 0.1;
      p_bad_to_good = 0.3;
      loss_good = 0.0;
      loss_bad = 1.0;
    }
  in
  let spec = { Faults.none with Faults.burst = Some burst } in
  let plan = Faults.create ~spec ~rng:(Rng.of_int 11) () in
  let n = 50_000 in
  ignore (judge_n plan ~n ~dt:1e-4);
  let expected = 0.1 /. (0.1 +. 0.3) in
  let observed =
    float_of_int (Faults.dropped_by plan Faults.Burst_loss) /. float_of_int n
  in
  Alcotest.(check int) "every drop is a burst drop" (Faults.dropped plan)
    (Faults.dropped_by plan Faults.Burst_loss);
  Alcotest.(check bool)
    (Printf.sprintf "drop rate %.3f within 0.02 of stationary %.3f" observed
       expected)
    true
    (Float.abs (observed -. expected) < 0.02)

(* With per-state loss probabilities below 1 the drop rate is the
   mixture P(bad)*loss_bad + P(good)*loss_good. *)
let test_burst_mixture () =
  let burst =
    {
      Faults.p_good_to_bad = 0.05;
      p_bad_to_good = 0.2;
      loss_good = 0.01;
      loss_bad = 0.5;
    }
  in
  let spec = { Faults.none with Faults.burst = Some burst } in
  let plan = Faults.create ~spec ~rng:(Rng.of_int 12) () in
  let n = 50_000 in
  ignore (judge_n plan ~n ~dt:1e-4);
  let p_bad = 0.05 /. (0.05 +. 0.2) in
  let expected = (p_bad *. 0.5) +. ((1.0 -. p_bad) *. 0.01) in
  let observed = float_of_int (Faults.dropped plan) /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mixture drop rate %.3f within 0.02 of %.3f" observed
       expected)
    true
    (Float.abs (observed -. expected) < 0.02)

(* Outage windows are surgical: every message judged inside [t0, t1) is
   dropped with reason Outage, every message outside is untouched. *)
let test_outage_window_exact () =
  let spec =
    {
      Faults.none with
      Faults.outages =
        [
          { Faults.start_s = 1.0; stop_s = 2.0 };
          { Faults.start_s = 5.0; stop_s = 5.5 };
        ];
    }
  in
  let plan = Faults.create ~spec ~rng:(Rng.of_int 1) () in
  let in_window now =
    (now >= 1.0 && now < 2.0) || (now >= 5.0 && now < 5.5)
  in
  let n = 700 in
  let expected_drops = ref 0 in
  for i = 0 to n - 1 do
    let now = float_of_int i *. 0.01 in
    if in_window now then incr expected_drops;
    match (Faults.judge plan ~now, in_window now) with
    | Faults.Drop Faults.Outage, true -> ()
    | Faults.Deliver { jitter_s = 0.0 }, false -> ()
    | verdict, inside ->
        Alcotest.fail
          (Printf.sprintf "t=%.2f inside=%b got %s" now inside
             (match verdict with
             | Faults.Drop r -> "drop:" ^ Faults.reason_to_string r
             | Faults.Deliver _ -> "deliver"))
  done;
  Alcotest.(check int) "outage drop count" !expected_drops
    (Faults.dropped_by plan Faults.Outage);
  Alcotest.(check bool) "boundary start in" true
    (match Faults.judge plan ~now:1.0 with
    | Faults.Drop Faults.Outage -> true
    | _ -> false);
  Alcotest.(check bool) "boundary stop out" true
    (match Faults.judge plan ~now:2.0 with
    | Faults.Deliver _ -> true
    | _ -> false)

(* Two plans with identical seed and spec produce the identical verdict
   sequence — the reproducibility guarantee behind the chaos report. *)
let test_same_seed_same_schedule () =
  let spec =
    {
      Faults.loss_rate = 0.15;
      burst =
        Some
          {
            Faults.p_good_to_bad = 0.05;
            p_bad_to_good = 0.25;
            loss_good = 0.02;
            loss_bad = 0.7;
          };
      jitter_s = 0.003;
      outages = [ { Faults.start_s = 0.02; stop_s = 0.03 } ];
      crashes = [];
    }
  in
  let schedule seed =
    let plan = Faults.create ~spec ~rng:(Rng.of_int seed) () in
    judge_n plan ~n:2000 ~dt:5e-5
  in
  let a = schedule 42 and b = schedule 42 in
  Alcotest.(check bool) "same seed, same verdicts" true (a = b);
  let c = schedule 43 in
  Alcotest.(check bool) "different seed, different verdicts" true (a <> c)

(* A plan with no faults never draws from its generator and never
   perturbs delivery. *)
let test_none_is_transparent () =
  let plan = Faults.create ~rng:(Rng.of_int 5) () in
  List.iter
    (fun v ->
      match v with
      | Faults.Deliver { jitter_s = 0.0 } -> ()
      | _ -> Alcotest.fail "none spec must deliver with zero jitter")
    (judge_n plan ~n:100 ~dt:0.01);
  Alcotest.(check int) "no drops" 0 (Faults.dropped plan);
  Alcotest.(check int) "no delays" 0 (Faults.delayed plan)

(* The --faults grammar parses, validates, and roundtrips through the
   canonical printer. *)
let test_spec_grammar () =
  (match Faults.spec_of_string "loss=0.1,burst=0.02:0.3:0.8,jitter=0.002,outage=0.2-0.3+1-1.5" with
  | Error e -> Alcotest.fail e
  | Ok spec ->
      Alcotest.(check (float 1e-9)) "loss" 0.1 spec.Faults.loss_rate;
      Alcotest.(check (float 1e-9)) "jitter" 0.002 spec.Faults.jitter_s;
      (match spec.Faults.burst with
      | Some b ->
          Alcotest.(check (float 1e-9)) "pgb" 0.02 b.Faults.p_good_to_bad;
          Alcotest.(check (float 1e-9)) "pbg" 0.3 b.Faults.p_bad_to_good;
          Alcotest.(check (float 1e-9)) "loss_bad" 0.8 b.Faults.loss_bad;
          Alcotest.(check (float 1e-9)) "loss_good" 0.0 b.Faults.loss_good
      | None -> Alcotest.fail "burst missing");
      Alcotest.(check int) "outages" 2 (List.length spec.Faults.outages);
      (* Roundtrip through the canonical form. *)
      (match Faults.spec_of_string (Faults.spec_to_string spec) with
      | Ok spec' -> Alcotest.(check bool) "roundtrip" true (spec = spec')
      | Error e -> Alcotest.fail e));
  (match Faults.spec_of_string "none" with
  | Ok spec -> Alcotest.(check bool) "none" true (Faults.is_none spec)
  | Error e -> Alcotest.fail e);
  (match Faults.spec_of_string "loss=1.5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loss > 1 must be rejected");
  match Faults.spec_of_string "bogus=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown field must be rejected"

(* The crash grammar: NODE:AT:DOWN:MODE, '+'-separated; crashes are
   schedule-only, so a crash-only spec still judges like [none]. *)
let test_crash_grammar () =
  (match
     Faults.spec_of_string "crash=sw:0.15:0.05:cold+ctl:0.3:0.1:warm"
   with
  | Error e -> Alcotest.fail e
  | Ok spec ->
      Alcotest.(check int) "two crashes" 2 (List.length spec.Faults.crashes);
      (match spec.Faults.crashes with
      | [ a; b ] ->
          Alcotest.(check bool) "switch first" true
            (a.Faults.node = Faults.Switch_node);
          Alcotest.(check (float 1e-9)) "at" 0.15 a.Faults.at_s;
          Alcotest.(check (float 1e-9)) "down" 0.05 a.Faults.down_s;
          Alcotest.(check bool) "cold" true (a.Faults.mode = Faults.Cold);
          Alcotest.(check bool) "controller second" true
            (b.Faults.node = Faults.Controller_node);
          Alcotest.(check bool) "warm" true (b.Faults.mode = Faults.Warm)
      | _ -> Alcotest.fail "expected two crashes");
      (* Roundtrip through the canonical form. *)
      (match Faults.spec_of_string (Faults.spec_to_string spec) with
      | Ok spec' -> Alcotest.(check bool) "roundtrip" true (spec = spec')
      | Error e -> Alcotest.fail e);
      (* Per-node extraction, sorted by crash time. *)
      (match
         Faults.crashes_for
           { spec with Faults.crashes = List.rev spec.Faults.crashes }
           Faults.Switch_node
       with
      | [ c ] ->
          Alcotest.(check bool) "switch crash extracted" true
            (c.Faults.node = Faults.Switch_node)
      | _ -> Alcotest.fail "expected exactly the switch crash"));
  (match Faults.spec_of_string "crash=switch:0.1:0.05:cold" with
  | Ok spec ->
      (* A crash-only plan draws nothing: every message is delivered
         exactly as under [none]. *)
      let plan =
        Faults.create ~spec ~rng:(Sdn_sim.Rng.create 42L) ()
      in
      for _ = 1 to 100 do
        match Faults.judge plan ~now:0.12 with
        | Faults.Deliver { jitter_s } ->
            Alcotest.(check (float 0.0)) "no jitter" 0.0 jitter_s
        | Faults.Drop _ -> Alcotest.fail "crash-only spec must not drop"
      done
  | Error e -> Alcotest.fail e);
  (match Faults.spec_of_string "crash=disk:0.1:0.05:cold" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown node must be rejected");
  (match Faults.spec_of_string "crash=switch:0.1:0.05:tepid" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown mode must be rejected");
  match Faults.spec_of_string "crash=switch:-0.1:0.05:cold" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative crash time must be rejected"

(* Re-request backoff: with jitter off, resend number n fires after
   min(cap, timeout * multiplier^n). timeout=10ms, x2, cap=40ms,
   max_resends=4 gives resends at 10, 30, 70, 110 ms and abandonment at
   150 ms. *)
let test_backoff_schedule () =
  let open Sdn_switch in
  let engine = Engine.create () in
  let resend_times = ref [] in
  let pool =
    Flow_buffer.create engine ~capacity:4 ~reclaim_lag:0.0
      ~resend_timeout:0.01 ~resend_multiplier:2.0 ~resend_cap:0.04
      ~max_resends:4
      ~on_resend:(fun ~buffer_id:_ ~key:_ ~first_frame:_ ->
        resend_times := Engine.now engine :: !resend_times)
      ()
  in
  let frame =
    Sdn_net.Packet.encode
      (Sdn_net.Packet.udp_frame_of_size
         ~src_mac:(Sdn_net.Mac.of_octets 0x02 0 0 0 0 1)
         ~dst_mac:(Sdn_net.Mac.of_octets 0x02 0 0 0 0 2)
         ~src_ip:(Sdn_net.Ip.make 10 0 0 1) ~dst_ip:(Sdn_net.Ip.make 10 0 0 2)
         ~src_port:1234 ~dst_port:9 ~frame_size:200
         ~payload_fill:(fun _ -> ()))
  in
  let key = Option.get (Sdn_net.Packet.peek_flow_key frame) in
  (match Flow_buffer.add pool ~key ~frame with
  | Flow_buffer.First _ -> ()
  | _ -> Alcotest.fail "expected First");
  Engine.run ~until:1.0 engine;
  let times = List.rev !resend_times in
  Alcotest.(check int) "four re-requests" 4 (List.length times);
  List.iter2
    (fun expected got ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "resend at %.3fs" expected)
        expected got)
    [ 0.01; 0.03; 0.07; 0.11 ] times;
  Alcotest.(check int) "abandoned after exhaustion" 1
    (Flow_buffer.abandoned_flows pool);
  Alcotest.(check int) "resend counter" 4 (Flow_buffer.resends pool)

(* Jittered backoff stays within the [1-j, 1+j] envelope of the
   deterministic schedule and is reproducible for a fixed seed. *)
let test_backoff_jitter_envelope () =
  let open Sdn_switch in
  let run seed =
    let engine = Engine.create () in
    let resend_times = ref [] in
    let pool =
      Flow_buffer.create engine ~capacity:4 ~reclaim_lag:0.0
        ~resend_timeout:0.01 ~resend_multiplier:2.0 ~resend_cap:0.04
        ~resend_jitter:0.2 ~rng:(Rng.of_int seed) ~max_resends:4
        ~on_resend:(fun ~buffer_id:_ ~key:_ ~first_frame:_ ->
          resend_times := Engine.now engine :: !resend_times)
        ()
    in
    let frame =
      Sdn_net.Packet.encode
        (Sdn_net.Packet.udp_frame_of_size
           ~src_mac:(Sdn_net.Mac.of_octets 0x02 0 0 0 0 1)
           ~dst_mac:(Sdn_net.Mac.of_octets 0x02 0 0 0 0 2)
           ~src_ip:(Sdn_net.Ip.make 10 0 0 1)
           ~dst_ip:(Sdn_net.Ip.make 10 0 0 2) ~src_port:1234 ~dst_port:9
           ~frame_size:200
           ~payload_fill:(fun _ -> ()))
    in
    let key = Option.get (Sdn_net.Packet.peek_flow_key frame) in
    ignore (Flow_buffer.add pool ~key ~frame);
    Engine.run ~until:1.0 engine;
    List.rev !resend_times
  in
  let times = run 9 in
  Alcotest.(check int) "four re-requests" 4 (List.length times);
  (* Gaps between consecutive firings bracket the un-jittered delays
     10, 20, 40, 40 ms by at most 20%. *)
  let gaps =
    List.mapi
      (fun i t -> t -. (if i = 0 then 0.0 else List.nth times (i - 1)))
      times
  in
  List.iter2
    (fun nominal gap ->
      Alcotest.(check bool)
        (Printf.sprintf "gap %.4fs within 20%% of %.3fs" gap nominal)
        true
        (gap >= (nominal *. 0.8) -. 1e-9 && gap <= (nominal *. 1.2) +. 1e-9))
    [ 0.01; 0.02; 0.04; 0.04 ] gaps;
  Alcotest.(check bool) "same seed reproduces the jittered schedule" true
    (run 9 = times)

let suite =
  [
    Alcotest.test_case "burst stationary drop rate" `Quick test_burst_stationary;
    Alcotest.test_case "burst mixture drop rate" `Quick test_burst_mixture;
    Alcotest.test_case "outage drops exactly in-window" `Quick
      test_outage_window_exact;
    Alcotest.test_case "same seed, same schedule" `Quick
      test_same_seed_same_schedule;
    Alcotest.test_case "none spec is transparent" `Quick test_none_is_transparent;
    Alcotest.test_case "--faults grammar" `Quick test_spec_grammar;
    Alcotest.test_case "crash grammar and schedule-only contract" `Quick
      test_crash_grammar;
    Alcotest.test_case "backoff follows multiplier and cap" `Quick
      test_backoff_schedule;
    Alcotest.test_case "jittered backoff envelope" `Quick
      test_backoff_jitter_envelope;
  ]
