lib/controller/costs.ml: Float
