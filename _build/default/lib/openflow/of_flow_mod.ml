type command = Add | Modify | Modify_strict | Delete | Delete_strict

type t = {
  match_ : Of_match.t;
  cookie : int64;
  command : command;
  idle_timeout : int;
  hard_timeout : int;
  priority : int;
  buffer_id : int32;
  out_port : int;
  send_flow_rem : bool;
  check_overlap : bool;
  actions : Of_action.t list;
}

let add ?(cookie = 0L) ?(idle_timeout = 5) ?(hard_timeout = 0) ?(priority = 1)
    ?(buffer_id = Of_wire.no_buffer) ~match_ ~actions () =
  {
    match_;
    cookie;
    command = Add;
    idle_timeout;
    hard_timeout;
    priority;
    buffer_id;
    out_port = Of_wire.Port.none;
    send_flow_rem = false;
    check_overlap = false;
    actions;
  }

let command_to_int = function
  | Add -> 0
  | Modify -> 1
  | Modify_strict -> 2
  | Delete -> 3
  | Delete_strict -> 4

let command_of_int = function
  | 0 -> Ok Add
  | 1 -> Ok Modify
  | 2 -> Ok Modify_strict
  | 3 -> Ok Delete
  | 4 -> Ok Delete_strict
  | n -> Error (Printf.sprintf "Of_flow_mod: unknown command %d" n)

let fixed_body = Of_match.size + 8 + 2 + 2 + 2 + 2 + 4 + 2 + 2 (* = 64 *)

let body_size t = fixed_body + Of_action.list_size t.actions

let write_body t buf off =
  Of_match.write t.match_ buf off;
  let o = off + Of_match.size in
  Bytes.set_int64_be buf o t.cookie;
  Bytes.set_uint16_be buf (o + 8) (command_to_int t.command);
  Bytes.set_uint16_be buf (o + 10) t.idle_timeout;
  Bytes.set_uint16_be buf (o + 12) t.hard_timeout;
  Bytes.set_uint16_be buf (o + 14) t.priority;
  Bytes.set_int32_be buf (o + 16) t.buffer_id;
  Bytes.set_uint16_be buf (o + 20) t.out_port;
  let flags =
    (if t.send_flow_rem then 1 else 0) lor if t.check_overlap then 2 else 0
  in
  Bytes.set_uint16_be buf (o + 22) flags;
  ignore (Of_action.write_list t.actions buf (o + 24))

let read_body buf off ~len =
  if len < fixed_body then Error "Of_flow_mod.read_body: truncated"
  else begin
    match Of_match.read buf off with
    | Error _ as e -> e
    | Ok match_ -> (
        let o = off + Of_match.size in
        match command_of_int (Bytes.get_uint16_be buf (o + 8)) with
        | Error _ as e -> e
        | Ok command -> (
            let flags = Bytes.get_uint16_be buf (o + 22) in
            match
              Of_action.read_list buf (o + 24) ~len:(len - fixed_body)
            with
            | Error _ as e -> e
            | Ok actions ->
                Ok
                  {
                    match_;
                    cookie = Bytes.get_int64_be buf o;
                    command;
                    idle_timeout = Bytes.get_uint16_be buf (o + 10);
                    hard_timeout = Bytes.get_uint16_be buf (o + 12);
                    priority = Bytes.get_uint16_be buf (o + 14);
                    buffer_id = Bytes.get_int32_be buf (o + 16);
                    out_port = Bytes.get_uint16_be buf (o + 20);
                    send_flow_rem = flags land 1 <> 0;
                    check_overlap = flags land 2 <> 0;
                    actions;
                  }))
  end

let equal a b =
  Of_match.equal a.match_ b.match_
  && Int64.equal a.cookie b.cookie
  && a.command = b.command && a.idle_timeout = b.idle_timeout
  && a.hard_timeout = b.hard_timeout && a.priority = b.priority
  && Int32.equal a.buffer_id b.buffer_id
  && a.out_port = b.out_port && a.send_flow_rem = b.send_flow_rem
  && a.check_overlap = b.check_overlap
  && List.length a.actions = List.length b.actions
  && List.for_all2 Of_action.equal a.actions b.actions

let pp_command fmt c =
  Format.pp_print_string fmt
    (match c with
    | Add -> "ADD"
    | Modify -> "MODIFY"
    | Modify_strict -> "MODIFY_STRICT"
    | Delete -> "DELETE"
    | Delete_strict -> "DELETE_STRICT")

let pp fmt t =
  Format.fprintf fmt
    "flow_mod{%a %a prio=%d idle=%d hard=%d buffer=%ld actions=[%a]}" pp_command
    t.command Of_match.pp t.match_ t.priority t.idle_timeout t.hard_timeout
    t.buffer_id Of_action.pp_list t.actions
