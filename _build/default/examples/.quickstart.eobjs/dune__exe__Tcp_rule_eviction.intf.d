examples/tcp_rule_eviction.mli:
