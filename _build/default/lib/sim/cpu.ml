type job = { work : float; finish : unit -> unit }

type t = {
  engine : Engine.t;
  name : string;
  cores : int;
  service_scale : queue_len:int -> float;
  noise : unit -> float;
  waiting : job Queue.t;
  mutable busy : int;
  mutable integral : float;
  mutable last_change : float;
  mutable jobs_done : int;
  mutable max_queue : int;
}

let create engine ~name ~cores ?(service_scale = fun ~queue_len:_ -> 1.0)
    ?(noise = fun () -> 1.0) () =
  if cores <= 0 then invalid_arg "Cpu.create: cores must be positive";
  {
    engine;
    name;
    cores;
    service_scale;
    noise;
    waiting = Queue.create ();
    busy = 0;
    integral = 0.0;
    last_change = Engine.now engine;
    jobs_done = 0;
    max_queue = 0;
  }

let account t =
  let now = Engine.now t.engine in
  t.integral <- t.integral +. (float_of_int t.busy *. (now -. t.last_change));
  t.last_change <- now

let rec start_job t job =
  account t;
  t.busy <- t.busy + 1;
  let scale = t.service_scale ~queue_len:(Queue.length t.waiting) in
  let effective = job.work *. scale *. t.noise () in
  let effective = Float.max 0.0 effective in
  ignore
    (Engine.schedule t.engine ~delay:effective (fun () -> complete t job))

and complete t job =
  account t;
  t.busy <- t.busy - 1;
  t.jobs_done <- t.jobs_done + 1;
  job.finish ();
  (* The finish continuation may itself have submitted work; only pull
     from the queue if a core is still free. *)
  if t.busy < t.cores && not (Queue.is_empty t.waiting) then
    start_job t (Queue.pop t.waiting)

let submit t ~work_s finish =
  if work_s < 0.0 then invalid_arg "Cpu.submit: negative work";
  let job = { work = work_s; finish } in
  if t.busy < t.cores then start_job t job
  else begin
    Queue.push job t.waiting;
    if Queue.length t.waiting > t.max_queue then
      t.max_queue <- Queue.length t.waiting
  end

let name t = t.name
let cores t = t.cores
let queue_length t = Queue.length t.waiting
let in_service t = t.busy
let jobs_completed t = t.jobs_done

let busy_core_seconds t =
  let now = Engine.now t.engine in
  t.integral +. (float_of_int t.busy *. (now -. t.last_change))

let utilization_percent t ~integral_at_start ~start =
  let now = Engine.now t.engine in
  let span = now -. start in
  if span <= 0.0 then 0.0
  else (busy_core_seconds t -. integral_at_start) /. span *. 100.0

let max_queue_length t = t.max_queue

let reset_counters t =
  account t;
  t.integral <- 0.0;
  t.jobs_done <- 0;
  t.max_queue <- 0
