lib/openflow/of_flow_removed.mli: Bytes Format Of_match
