lib/switch/packet_buffer.mli: Bytes Engine Sdn_sim
