(** OpenFlow 1.0 actions. *)

open Sdn_net

type t =
  | Output of { port : int; max_len : int }
      (** Forward out a port; [max_len] bounds the bytes sent to the
          controller when [port = CONTROLLER]. *)
  | Set_vlan_vid of int
  | Set_vlan_pcp of int
  | Strip_vlan
  | Set_dl_src of Mac.t
  | Set_dl_dst of Mac.t
  | Set_nw_src of Ip.t
  | Set_nw_dst of Ip.t
  | Set_nw_tos of int
  | Set_tp_src of int
  | Set_tp_dst of int
  | Enqueue of { port : int; queue_id : int32 }

val output : ?max_len:int -> int -> t
(** [output port] with [max_len] defaulting to 0xFFFF. *)

val size : t -> int
(** Encoded size (8 or 16 bytes; always a multiple of 8). *)

val list_size : t list -> int

val write_list : t list -> Bytes.t -> int -> int
(** Serialize consecutively; returns the offset past the last action. *)

val read_list : Bytes.t -> int -> len:int -> (t list, string) result
(** Parse exactly [len] bytes of actions starting at the offset. *)

type output_spec = { out_port : int; queue_id : int32 option }
(** One forwarding decision: a port, and the egress queue when the
    action was [Enqueue]. *)

val apply : t list -> Packet.t -> Packet.t * int list
(** Apply header rewrites in order and collect output ports. The port
    list preserves action order. *)

val apply_full : t list -> Packet.t -> Packet.t * output_spec list
(** Like {!apply} but keeps the queue assignment of [Enqueue] actions,
    for switches with QoS egress scheduling. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit
