(** OpenFlow 1.0 [PORT_STATUS] message body — the switch's asynchronous
    notification that a port was added, removed, or changed state.
    The failure-injection tests use it: a downed egress port strands
    installed rules, the controller flushes them, and subsequent
    packets become miss-match packets again (with all the buffer
    dynamics the paper studies). *)

type reason = Add | Delete | Modify

type t = {
  reason : reason;
  port : Of_features.phy_port;
  link_down : bool;  (** OFPPS_LINK_DOWN state bit *)
}

val body_size : int
(** 8 + 48 bytes. *)

val write_body : t -> Bytes.t -> int -> unit
val read_body : Bytes.t -> int -> len:int -> (t, string) result

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
