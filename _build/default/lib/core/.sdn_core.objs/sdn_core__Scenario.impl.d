lib/core/scenario.ml: Bytes Calibration Capture Config Delay Engine Float Ip Link Option Printf Rng Sdn_controller Sdn_measure Sdn_net Sdn_sim Sdn_switch Sdn_traffic
