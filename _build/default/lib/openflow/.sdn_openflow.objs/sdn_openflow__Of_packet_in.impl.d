lib/openflow/of_packet_in.ml: Bytes Format Int32 Printf
