(** Deterministic pseudo-random number generator (SplitMix64).

    Every experiment run is seeded explicitly so that sweeps with 20
    repetitions per point are exactly reproducible. SplitMix64 is fast,
    has a 64-bit state, passes BigCrush, and supports cheap stream
    splitting, which we use to give each traffic source its own
    independent stream. *)

type t
(** A mutable generator state. *)

val create : int64 -> t
(** [create seed] is a fresh generator. Distinct seeds give independent
    streams. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val split : t -> t
(** [split t] derives a new generator whose stream is statistically
    independent of the remainder of [t]'s stream; [t] is advanced. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniform random bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform integer in the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform float in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normally distributed value (Box-Muller). *)

val lognormal_factor : t -> sigma:float -> float
(** [lognormal_factor t ~sigma] is [exp (sigma * N(0,1))]: a
    multiplicative noise factor with median 1. Used to jitter service
    times so repeated runs exhibit realistic variance. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)
