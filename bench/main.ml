(* Benchmark harness.

   Two halves:

   1. Bechamel micro-benchmarks of the building blocks (codec, flow
      table, buffer pools, event engine) — the cost of the mechanisms
      themselves, independent of any scenario.

   2. The figure harness: regenerates every table/figure of the paper's
      evaluation (Figs. 2-13) by running the Section IV and Section V
      sweeps and printing the series, followed by the headline
      aggregate claims next to the paper's reported numbers.

   Usage:
     dune exec bench/main.exe                 # micro + all figures
     dune exec bench/main.exe -- micro        # micro-benchmarks only
     dune exec bench/main.exe -- figures      # all figures only
     dune exec bench/main.exe -- fig5         # one figure
     dune exec bench/main.exe -- figures 5    # all figures, 5 reps/point
     dune exec bench/main.exe -- ablations    # the ablation studies
*)

open Bechamel
open Toolkit

(* ---- Micro-benchmark subjects ---- *)

let mac1 = Sdn_net.Mac.of_octets 0x02 0 0 0 0 1
let mac2 = Sdn_net.Mac.of_octets 0x02 0 0 0 0 2
let ip1 = Sdn_net.Ip.make 10 0 0 1
let ip2 = Sdn_net.Ip.make 10 0 0 2

let sample_packet =
  Sdn_net.Packet.udp_frame_of_size ~src_mac:mac1 ~dst_mac:mac2 ~src_ip:ip1
    ~dst_ip:ip2 ~src_port:1000 ~dst_port:9 ~frame_size:1000
    ~payload_fill:(fun _ -> ())

let sample_frame = Sdn_net.Packet.encode sample_packet

let sample_pkt_in_full =
  Sdn_openflow.Of_codec.encode ~xid:1l
    (Sdn_openflow.Of_codec.Packet_in
       (Sdn_openflow.Of_packet_in.make ~buffer_id:Sdn_openflow.Of_wire.no_buffer
          ~in_port:1 ~reason:Sdn_openflow.Of_packet_in.No_match
          ~frame:sample_frame ~miss_send_len:None))

let sample_pkt_in_buffered =
  Sdn_openflow.Of_codec.encode ~xid:1l
    (Sdn_openflow.Of_codec.Packet_in
       (Sdn_openflow.Of_packet_in.make ~buffer_id:7l ~in_port:1
          ~reason:Sdn_openflow.Of_packet_in.No_match ~frame:sample_frame
          ~miss_send_len:(Some 128)))

let sample_flow_mod =
  Sdn_openflow.Of_flow_mod.add
    ~match_:
      (Sdn_openflow.Of_match.of_flow_key
         (Option.get (Sdn_net.Packet.flow_key sample_packet)))
    ~actions:[ Sdn_openflow.Of_action.output 2 ]
    ()

(* A populated flow table for lookup benchmarks. *)
let populated_table n =
  let table = Sdn_switch.Flow_table.create ~capacity:(2 * n) () in
  for i = 0 to n - 1 do
    let key =
      Sdn_net.Flow_key.make ~proto:17
        ~src_ip:(Sdn_net.Ip.of_int32 (Int32.of_int (0x0A010000 + i)))
        ~dst_ip:ip2 ~src_port:(1000 + (i mod 16384)) ~dst_port:9
    in
    let fm =
      Sdn_openflow.Of_flow_mod.add
        ~match_:(Sdn_openflow.Of_match.of_flow_key key)
        ~actions:[ Sdn_openflow.Of_action.output 2 ]
        ()
    in
    ignore
      (Sdn_switch.Flow_table.insert table
         (Sdn_switch.Flow_entry.of_flow_mod fm ~now:0.0))
  done;
  table

let micro_tests () =
  let open Sdn_net in
  let open Sdn_openflow in
  let table1000 = populated_table 1000 in
  [
    Test.make ~name:"packet/encode-1000B"
      (Staged.stage (fun () -> ignore (Packet.encode sample_packet)));
    Test.make ~name:"packet/decode-1000B"
      (Staged.stage (fun () -> ignore (Packet.decode sample_frame)));
    Test.make ~name:"packet/peek-headers"
      (Staged.stage (fun () -> ignore (Packet.peek_headers sample_frame)));
    Test.make ~name:"openflow/encode-pkt_in-no-buffer"
      (Staged.stage (fun () ->
           ignore
             (Of_codec.encode ~xid:1l
                (Of_codec.Packet_in
                   (Of_packet_in.make ~buffer_id:Of_wire.no_buffer ~in_port:1
                      ~reason:Of_packet_in.No_match ~frame:sample_frame
                      ~miss_send_len:None)))));
    Test.make ~name:"openflow/encode-pkt_in-buffered"
      (Staged.stage (fun () ->
           ignore
             (Of_codec.encode ~xid:1l
                (Of_codec.Packet_in
                   (Of_packet_in.make ~buffer_id:7l ~in_port:1
                      ~reason:Of_packet_in.No_match ~frame:sample_frame
                      ~miss_send_len:(Some 128))))));
    Test.make ~name:"openflow/decode-pkt_in-no-buffer"
      (Staged.stage (fun () -> ignore (Of_codec.decode sample_pkt_in_full)));
    Test.make ~name:"openflow/decode-pkt_in-buffered"
      (Staged.stage (fun () -> ignore (Of_codec.decode sample_pkt_in_buffered)));
    Test.make ~name:"openflow/encode-flow_mod"
      (Staged.stage (fun () ->
           ignore (Of_codec.encode ~xid:1l (Of_codec.Flow_mod sample_flow_mod))));
    Test.make ~name:"flow-table/lookup-hit-1000-rules"
      (Staged.stage (fun () ->
           ignore
             (Sdn_switch.Flow_table.lookup table1000 ~in_port:1 sample_packet)));
    Test.make ~name:"flow-table/lookup-miss-1000-rules"
      (Staged.stage
         (let miss_packet =
            Packet.udp ~src_mac:mac1 ~dst_mac:mac2 ~src_ip:(Ip.make 192 168 0 1)
              ~dst_ip:ip2 ~src_port:1 ~dst_port:2 ~payload:Bytes.empty ()
          in
          fun () ->
            ignore (Sdn_switch.Flow_table.lookup table1000 ~in_port:1 miss_packet)));
    Test.make ~name:"buffer/packet-granularity-alloc-take"
      (Staged.stage
         (let engine = Sdn_sim.Engine.create () in
          let pool =
            Sdn_switch.Packet_buffer.create engine ~capacity:256 ~expiry:1e9
              ~reclaim_lag:0.0 ()
          in
          fun () ->
            match Sdn_switch.Packet_buffer.alloc pool ~frame:sample_frame with
            | Some id ->
                ignore (Sdn_switch.Packet_buffer.take pool id);
                (* Drain the engine so reclaim events do not pile up. *)
                Sdn_sim.Engine.run engine
            | None -> ()));
    Test.make ~name:"buffer/flow-granularity-add-take_all"
      (Staged.stage
         (let engine = Sdn_sim.Engine.create () in
          let pool =
            Sdn_switch.Flow_buffer.create engine ~capacity:256 ~reclaim_lag:0.0
              ~resend_timeout:1e9 ~max_resends:0
              ~on_resend:(fun ~buffer_id:_ ~key:_ ~first_frame:_ -> ())
              ()
          in
          let key = Option.get (Sdn_net.Packet.flow_key sample_packet) in
          fun () ->
            match Sdn_switch.Flow_buffer.add pool ~key ~frame:sample_frame with
            | Sdn_switch.Flow_buffer.First id ->
                ignore (Sdn_switch.Flow_buffer.add pool ~key ~frame:sample_frame);
                ignore (Sdn_switch.Flow_buffer.take_all pool id);
                Sdn_sim.Engine.run engine
            | Sdn_switch.Flow_buffer.Appended _ | Sdn_switch.Flow_buffer.No_space
              ->
                ()));
    Test.make ~name:"engine/schedule-run-event"
      (Staged.stage
         (let engine = Sdn_sim.Engine.create () in
          fun () ->
            ignore (Sdn_sim.Engine.schedule engine ~delay:1e-9 (fun () -> ()));
            ignore (Sdn_sim.Engine.step engine)));
  ]

let run_micro () =
  print_endline "== Micro-benchmarks (Bechamel, ns/run) ==";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let tests = Test.make_grouped ~name:"micro" (micro_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> Printf.sprintf "%12.1f" e
        | Some [] | None -> "n/a"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "n/a"
      in
      rows := (name, estimate, r2) :: !rows)
    results;
  let rows =
    List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) !rows
  in
  Printf.printf "%-50s %14s %8s\n" "benchmark" "ns/run" "r^2";
  List.iter
    (fun (name, est, r2) -> Printf.printf "%-50s %14s %8s\n" name est r2)
    rows;
  print_newline ()

(* ---- Figure harness ---- *)

let run_figures ?reps () = Sdn_core.Figures.run_all ?reps ()

let run_one_figure id ?reps () =
  match List.assoc_opt id Sdn_core.Figures.exp_a_figures with
  | Some f -> f (Sdn_core.Figures.run_exp_a ?reps ())
  | None -> (
      match List.assoc_opt id Sdn_core.Figures.exp_b_figures with
      | Some f -> f (Sdn_core.Figures.run_exp_b ?reps ())
      | None -> Printf.eprintf "unknown figure %S\n" id)

let () =
  let args = Array.to_list Sys.argv in
  match args with
  | [ _ ] | [ _; "all" ] ->
      run_micro ();
      run_figures ();
      Sdn_core.Ablations.run_all ()
  | [ _; "micro" ] -> run_micro ()
  | [ _; "ablations" ] -> Sdn_core.Ablations.run_all ()
  | [ _; "figures" ] -> run_figures ()
  | [ _; "figures"; reps ] -> run_figures ~reps:(int_of_string reps) ()
  | [ _; id ] -> run_one_figure id ()
  | [ _; id; reps ] -> run_one_figure id ~reps:(int_of_string reps) ()
  | _ ->
      prerr_endline "usage: main.exe [all|micro|figures [reps]|figN [reps]]";
      exit 2
