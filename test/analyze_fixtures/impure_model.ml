(* Dirty model fixture (held to the purity contract via --model-unit):
   every arm of the oracle contract violated once or twice —
   model-mutation (top-level table + the write to it), model-io,
   model-nondet, model-exception (failwith and an undeclared raise). *)

let memo : (int, float) Hashtbl.t = Hashtbl.create 8

let lookup x v =
  Hashtbl.replace memo x v;
  v

let debug msg = print_endline msg
let jitter () = Random.float 1.0
let bad_error () = failwith "boom"
let bad_raise () = raise Not_found
