type stats = {
  units_in_use : int;
  units_total : int;
  flows_buffered : int;
  packets_buffered : int;
  resends : int;
}

type backoff = {
  timeout : float;
  multiplier : float;
  cap : float;
  max_resends : int;
}

let default_backoff ~timeout =
  { timeout; multiplier = 1.0; cap = timeout; max_resends = 3 }

type t =
  | Flow_buffer_enable of backoff
  | Flow_buffer_disable
  | Flow_buffer_stats_request
  | Flow_buffer_stats_reply of stats

let vendor_id = 0x00FB_BF01l

let subtype_enable = 0
let subtype_disable = 1
let subtype_stats_request = 2
let subtype_stats_reply = 3

(* vendor id + subtype *)
let preamble = 8

let body_size = function
  | Flow_buffer_enable _ -> preamble + 16
  | Flow_buffer_disable | Flow_buffer_stats_request -> preamble
  | Flow_buffer_stats_reply _ -> preamble + 20

(* Durations ride as milliseconds and the multiplier as thousandths,
   all in 32-bit fields: enough range and precision for any plausible
   re-request policy without floats on the wire. *)
let to_milli x = Int32.of_int (int_of_float (Float.round (x *. 1000.0)))
let of_milli v = float_of_int (Int32.to_int v) /. 1000.0

let write_body t buf off =
  Bytes.set_int32_be buf off vendor_id;
  let subtype =
    match t with
    | Flow_buffer_enable _ -> subtype_enable
    | Flow_buffer_disable -> subtype_disable
    | Flow_buffer_stats_request -> subtype_stats_request
    | Flow_buffer_stats_reply _ -> subtype_stats_reply
  in
  Bytes.set_int32_be buf (off + 4) (Int32.of_int subtype);
  match t with
  | Flow_buffer_enable b ->
      Bytes.set_int32_be buf (off + preamble) (to_milli b.timeout);
      Bytes.set_int32_be buf (off + preamble + 4) (to_milli b.multiplier);
      Bytes.set_int32_be buf (off + preamble + 8) (to_milli b.cap);
      Bytes.set_int32_be buf (off + preamble + 12) (Int32.of_int b.max_resends)
  | Flow_buffer_disable | Flow_buffer_stats_request -> ()
  | Flow_buffer_stats_reply s ->
      let set i v = Bytes.set_int32_be buf (off + preamble + (i * 4)) (Int32.of_int v) in
      set 0 s.units_in_use;
      set 1 s.units_total;
      set 2 s.flows_buffered;
      set 3 s.packets_buffered;
      set 4 s.resends

let read_body buf off ~len =
  if len < preamble then Error "Of_ext.read_body: truncated"
  else begin
    let vendor = Bytes.get_int32_be buf off in
    if not (Int32.equal vendor vendor_id) then
      Error (Printf.sprintf "Of_ext.read_body: unknown vendor 0x%08lx" vendor)
    else begin
      let subtype = Int32.to_int (Bytes.get_int32_be buf (off + 4)) in
      if subtype = subtype_enable then begin
        if len < preamble + 16 then Error "Of_ext.read_body: truncated enable"
        else begin
          let field i = Bytes.get_int32_be buf (off + preamble + (i * 4)) in
          Ok
            (Flow_buffer_enable
               {
                 timeout = of_milli (field 0);
                 multiplier = of_milli (field 1);
                 cap = of_milli (field 2);
                 max_resends = Int32.to_int (field 3);
               })
        end
      end
      else if subtype = subtype_disable then Ok Flow_buffer_disable
      else if subtype = subtype_stats_request then Ok Flow_buffer_stats_request
      else if subtype = subtype_stats_reply then begin
        if len < preamble + 20 then Error "Of_ext.read_body: truncated stats"
        else begin
          let get i = Int32.to_int (Bytes.get_int32_be buf (off + preamble + (i * 4))) in
          Ok
            (Flow_buffer_stats_reply
               {
                 units_in_use = get 0;
                 units_total = get 1;
                 flows_buffered = get 2;
                 packets_buffered = get 3;
                 resends = get 4;
               })
        end
      end
      else Error (Printf.sprintf "Of_ext.read_body: unknown subtype %d" subtype)
    end
  end

let equal a b =
  let close x y = Float.abs (x -. y) < 0.001 in
  match (a, b) with
  | Flow_buffer_enable x, Flow_buffer_enable y ->
      close x.timeout y.timeout
      && close x.multiplier y.multiplier
      && close x.cap y.cap
      && x.max_resends = y.max_resends
  | Flow_buffer_disable, Flow_buffer_disable -> true
  | Flow_buffer_stats_request, Flow_buffer_stats_request -> true
  | Flow_buffer_stats_reply x, Flow_buffer_stats_reply y -> x = y
  | ( ( Flow_buffer_enable _ | Flow_buffer_disable | Flow_buffer_stats_request
      | Flow_buffer_stats_reply _ ),
      _ ) ->
      false

let pp fmt = function
  | Flow_buffer_enable b ->
      Format.fprintf fmt
        "flow_buffer_enable{timeout=%.3fs x%.2f cap=%.3fs max_resends=%d}"
        b.timeout b.multiplier b.cap b.max_resends
  | Flow_buffer_disable -> Format.pp_print_string fmt "flow_buffer_disable"
  | Flow_buffer_stats_request ->
      Format.pp_print_string fmt "flow_buffer_stats_request"
  | Flow_buffer_stats_reply s ->
      Format.fprintf fmt
        "flow_buffer_stats{in_use=%d/%d flows=%d packets=%d resends=%d}"
        s.units_in_use s.units_total s.flows_buffered s.packets_buffered
        s.resends
