(* Fixed-slab frame pool over one off-heap Bigarray. Slot ids are
   plain ints; every hot-path accessor reads or writes untagged ints,
   so per-packet forwarding work allocates nothing on the minor heap.
   Layout bookkeeping (free stack, liveness, stored lengths) lives in
   flat arrays indexed by slot id. *)

type slab =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  slab : slab;
  n_slots : int;
  slot_size : int;
  (* LIFO free stack of slot ids; [free_top] is the live stack size.
     LIFO keeps the working set of slots hot in cache. *)
  free : int array;
  mutable free_top : int;
  (* '\001' while claimed — rejects double release in O(1). *)
  state : Bytes.t;
  lens : int array;
}

let create ~slots ~slot_size () =
  if slots <= 0 then invalid_arg "Frame_pool.create: slots must be positive";
  if slot_size <= 0 then
    invalid_arg "Frame_pool.create: slot_size must be positive";
  let slab =
    Bigarray.Array1.create Bigarray.char Bigarray.c_layout (slots * slot_size)
  in
  Bigarray.Array1.fill slab '\000';
  let free = Array.init slots (fun i -> slots - 1 - i) in
  {
    slab;
    n_slots = slots;
    slot_size;
    free;
    free_top = slots;
    state = Bytes.make slots '\000';
    lens = Array.make slots 0;
  }

let slots t = t.n_slots
let slot_size t = t.slot_size
let free_count t = t.free_top
let live_count t = t.n_slots - t.free_top

let alloc t =
  if t.free_top = 0 then -1
  else begin
    t.free_top <- t.free_top - 1;
    let slot = Array.unsafe_get t.free t.free_top in
    Bytes.unsafe_set t.state slot '\001';
    Array.unsafe_set t.lens slot 0;
    slot
  end

let release t slot =
  if slot < 0 || slot >= t.n_slots then false
  else if Char.equal (Bytes.unsafe_get t.state slot) '\000' then false
  else begin
    Bytes.unsafe_set t.state slot '\000';
    Array.unsafe_set t.free t.free_top slot;
    t.free_top <- t.free_top + 1;
    true
  end

let wipe t =
  Bigarray.Array1.fill t.slab '\000';
  Bytes.fill t.state 0 t.n_slots '\000';
  Array.fill t.lens 0 t.n_slots 0;
  for i = 0 to t.n_slots - 1 do
    t.free.(i) <- t.n_slots - 1 - i
  done;
  t.free_top <- t.n_slots

let claimed t slot ~what =
  if slot < 0 || slot >= t.n_slots then
    invalid_arg (Printf.sprintf "Frame_pool.%s: slot %d out of range" what slot);
  if Char.equal (Bytes.get t.state slot) '\000' then
    invalid_arg (Printf.sprintf "Frame_pool.%s: slot %d is free" what slot)

let load t slot frame =
  claimed t slot ~what:"load";
  let len = Bytes.length frame in
  if len > t.slot_size then
    invalid_arg
      (Printf.sprintf "Frame_pool.load: frame of %d bytes exceeds slot size %d"
         len t.slot_size);
  let base = slot * t.slot_size in
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set t.slab (base + i) (Bytes.unsafe_get frame i)
  done;
  t.lens.(slot) <- len

let length t slot =
  claimed t slot ~what:"length";
  t.lens.(slot)

let set_length t slot len =
  claimed t slot ~what:"set_length";
  if len < 0 || len > t.slot_size then
    invalid_arg (Printf.sprintf "Frame_pool.set_length: bad length %d" len);
  t.lens.(slot) <- len

let copy_out t slot =
  claimed t slot ~what:"copy_out";
  let len = t.lens.(slot) in
  let base = slot * t.slot_size in
  let out = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set out i (Bigarray.Array1.unsafe_get t.slab (base + i))
  done;
  out

(* ---- hot-path accessors: untagged ints only ---- *)

let get_u8 t slot off =
  Char.code (Bigarray.Array1.unsafe_get t.slab ((slot * t.slot_size) + off))

let set_u8 t slot off v =
  Bigarray.Array1.unsafe_set t.slab
    ((slot * t.slot_size) + off)
    (Char.unsafe_chr (v land 0xFF))

let get_u16 t slot off =
  let base = (slot * t.slot_size) + off in
  (Char.code (Bigarray.Array1.unsafe_get t.slab base) lsl 8)
  lor Char.code (Bigarray.Array1.unsafe_get t.slab (base + 1))

let set_u16 t slot off v =
  let base = (slot * t.slot_size) + off in
  Bigarray.Array1.unsafe_set t.slab base (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bigarray.Array1.unsafe_set t.slab (base + 1) (Char.unsafe_chr (v land 0xFF))

let get_u32 t slot off =
  let base = (slot * t.slot_size) + off in
  (Char.code (Bigarray.Array1.unsafe_get t.slab base) lsl 24)
  lor (Char.code (Bigarray.Array1.unsafe_get t.slab (base + 1)) lsl 16)
  lor (Char.code (Bigarray.Array1.unsafe_get t.slab (base + 2)) lsl 8)
  lor Char.code (Bigarray.Array1.unsafe_get t.slab (base + 3))

let set_u32 t slot off v =
  let base = (slot * t.slot_size) + off in
  Bigarray.Array1.unsafe_set t.slab base
    (Char.unsafe_chr ((v lsr 24) land 0xFF));
  Bigarray.Array1.unsafe_set t.slab (base + 1)
    (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Bigarray.Array1.unsafe_set t.slab (base + 2)
    (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bigarray.Array1.unsafe_set t.slab (base + 3) (Char.unsafe_chr (v land 0xFF))

(* Wire layout shared with {!Packet.encode}: Ethernet 0..13, IPv4
   14..33, L4 from 34. *)
let off_ttl = 22
let off_proto = 23
let off_ip_checksum = 24
let off_src_ip = 26
let off_dst_ip = 30
let off_src_port = 34
let off_dst_port = 36

(* RFC 1624 incremental checksum update for the TTL/proto 16-bit
   word: HC' = ~(~HC + ~m + m'), all ones'-complement. *)
let dec_ttl t slot =
  let ttl = get_u8 t slot off_ttl in
  if ttl = 0 then 0
  else begin
    let ttl' = ttl - 1 in
    let proto = get_u8 t slot off_proto in
    let m = (ttl lsl 8) lor proto in
    let m' = (ttl' lsl 8) lor proto in
    set_u8 t slot off_ttl ttl';
    let hc = get_u16 t slot off_ip_checksum in
    let sum = (lnot hc land 0xFFFF) + (lnot m land 0xFFFF) + m' in
    let sum = (sum land 0xFFFF) + (sum lsr 16) in
    let sum = (sum land 0xFFFF) + (sum lsr 16) in
    set_u16 t slot off_ip_checksum (lnot sum land 0xFFFF);
    ttl'
  end
