lib/openflow/of_action.mli: Bytes Format Ip Mac Packet Sdn_net
