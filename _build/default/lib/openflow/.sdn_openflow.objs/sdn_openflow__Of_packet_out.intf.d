lib/openflow/of_packet_out.mli: Bytes Format Of_action
