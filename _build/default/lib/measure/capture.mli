(** Control-channel sniffer (the tcpdump of the reproduction).

    Observes every OpenFlow message on the control path, in both
    directions, counting messages and bytes per message type. The
    control-path-load metric of the paper's Figs. 2 and 9 is
    [bytes * 8 / observation window] per direction.

    Byte counts can include a fixed per-message encapsulation overhead
    (Ethernet + IP + TCP framing of the OpenFlow session), as a sniffer
    on the wire would see. *)

open Sdn_openflow

type direction = To_controller | To_switch

type t

val create : ?encap_overhead:int -> unit -> t
(** [encap_overhead] defaults to 66 bytes (Ethernet 14 + IPv4 20 +
    TCP 32 with timestamps) per message. *)

val observe : t -> direction -> time:float -> Bytes.t -> unit
(** Record one message (classified by peeking its header). *)

val messages : t -> direction -> int
val bytes : t -> direction -> int
(** Wire bytes including encapsulation. *)

val payload_bytes : t -> direction -> int
(** OpenFlow bytes only. *)

val messages_of_type : t -> direction -> Of_wire.Msg_type.t -> int
val bytes_of_type : t -> direction -> Of_wire.Msg_type.t -> int

val first_time : t -> direction -> float option
val last_time : t -> direction -> float option

val load_mbps : t -> direction -> window:float -> float
(** Average control load over an observation window (seconds). *)

val pp_summary : Format.formatter -> t -> unit
