type t = {
  mutable times : float array;
  mutable vals : float array;
  mutable n : int;
}

let create () = { times = Array.make 16 0.0; vals = Array.make 16 0.0; n = 0 }

let add t ~time ~value =
  if t.n = Array.length t.times then begin
    let grow a =
      let b = Array.make (2 * Array.length a) 0.0 in
      Array.blit a 0 b 0 t.n;
      b
    in
    t.times <- grow t.times;
    t.vals <- grow t.vals
  end;
  t.times.(t.n) <- time;
  t.vals.(t.n) <- value;
  t.n <- t.n + 1

let length t = t.n

let points t = Array.init t.n (fun i -> (t.times.(i), t.vals.(i)))

let values t = Array.sub t.vals 0 t.n

let mean t =
  if t.n = 0 then 0.0
  else begin
    let s = ref 0.0 in
    for i = 0 to t.n - 1 do
      s := !s +. t.vals.(i)
    done;
    !s /. float_of_int t.n
  end

let max_value t =
  if t.n = 0 then 0.0
  else begin
    let m = ref t.vals.(0) in
    for i = 1 to t.n - 1 do
      if t.vals.(i) > !m then m := t.vals.(i)
    done;
    !m
  end

let stats t =
  let s = Stats.create () in
  for i = 0 to t.n - 1 do
    Stats.add s t.vals.(i)
  done;
  s

module Weighted = struct
  type w = {
    start : float;
    mutable last_time : float;
    mutable last_value : float;
    mutable integral : float;
    mutable max_v : float;
  }

  let create ?(start = 0.0) ?(initial = 0.0) () =
    { start; last_time = start; last_value = initial; integral = 0.0; max_v = initial }

  let update w ~time ~value =
    if time < w.last_time then
      invalid_arg "Timeseries.Weighted.update: time went backwards";
    w.integral <- w.integral +. (w.last_value *. (time -. w.last_time));
    w.last_time <- time;
    w.last_value <- value;
    if value > w.max_v then w.max_v <- value

  let mean w ~until =
    (* The integral already extends to [last_time]; a caller-supplied
       [until] earlier than that would divide it by too short a span,
       so the observation window can only ever end at or after the
       last recorded update. *)
    let until = Float.max until w.last_time in
    let span = until -. w.start in
    if span <= 0.0 then w.last_value
    else begin
      let tail =
        if until > w.last_time then w.last_value *. (until -. w.last_time)
        else 0.0
      in
      (w.integral +. tail) /. span
    end

  let max_value w = w.max_v
  let current w = w.last_value
end
