(** OpenFlow 1.0 [FLOW_MOD] message body.

    Note the [buffer_id] field: a [FLOW_MOD] carrying a valid buffer id
    both installs the rule and applies it to the buffered packet — one
    of the two ways the controller releases a buffered miss-match
    packet (the other being [PACKET_OUT]). *)

type command = Add | Modify | Modify_strict | Delete | Delete_strict

type t = {
  match_ : Of_match.t;
  cookie : int64;
  command : command;
  idle_timeout : int;  (** seconds; 0 = never expire on idleness *)
  hard_timeout : int;  (** seconds; 0 = never expire *)
  priority : int;
  buffer_id : int32;  (** {!Of_wire.no_buffer} when none *)
  out_port : int;  (** filter for [Delete]; {!Of_wire.Port.none} otherwise *)
  send_flow_rem : bool;
  check_overlap : bool;
  actions : Of_action.t list;
}

val add :
  ?cookie:int64 ->
  ?idle_timeout:int ->
  ?hard_timeout:int ->
  ?priority:int ->
  ?buffer_id:int32 ->
  match_:Of_match.t ->
  actions:Of_action.t list ->
  unit ->
  t
(** An [Add] with Floodlight-like defaults (priority 1, idle timeout
    5 s, no hard timeout). *)

val body_size : t -> int
(** Bytes after the common header (64 + actions). *)

val write_body : t -> Bytes.t -> int -> unit
val read_body : Bytes.t -> int -> len:int -> (t, string) result

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
