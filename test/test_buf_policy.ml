(* Tests for the shared-buffer policy layer: parsing, per-policy
   admission semantics, TDT adaptation, the conservation invariant
   under the runtime checker, and experiment-level policy curves. *)

open Sdn_sim
open Sdn_switch
open Sdn_core

let feq ?(eps = 1e-9) what expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %g, got %g" what expected actual)
    true
    (abs_float (expected -. actual) <= eps)

let kind = Alcotest.testable
    (fun ppf k -> Format.pp_print_string ppf (Buf_policy.kind_to_string k))
    (fun a b -> String.equal (Buf_policy.kind_to_string a) (Buf_policy.kind_to_string b))

let parse_ok s =
  match Buf_policy.kind_of_string s with
  | Ok k -> k
  | Error msg -> Alcotest.failf "%S did not parse: %s" s msg

let test_kind_parsing () =
  Alcotest.check kind "static" Buf_policy.Static (parse_ok "static");
  Alcotest.check kind "share" Buf_policy.Sharing (parse_ok "share");
  Alcotest.check kind "dt default"
    (Buf_policy.Dt { alpha = 2.0 }) (parse_ok "dt");
  Alcotest.check kind "dt:0.5"
    (Buf_policy.Dt { alpha = 0.5 }) (parse_ok "dt:0.5");
  Alcotest.check kind "tdt:4:1"
    (Buf_policy.Tdt { alpha0 = 4.0; target_delay = 1e-3 })
    (parse_ok "tdt:4:1");
  Alcotest.check kind "case and space" Buf_policy.Static (parse_ok " Static ");
  List.iter
    (fun s ->
      match Buf_policy.kind_of_string s with
      | Ok _ -> Alcotest.failf "%S must not parse" s
      | Error _ -> ())
    [ "bogus"; "dt:-1"; "dt:x"; "tdt:0"; "tdt:2:-3"; "" ];
  (* Round-trip through the printed form. *)
  List.iter
    (fun s ->
      let k = parse_ok s in
      Alcotest.check kind
        (Printf.sprintf "round-trip %s" s)
        k
        (parse_ok (Buf_policy.kind_to_string k)))
    [ "static"; "share"; "dt:1.5"; "tdt:3:5" ]

let make ?check ?(headroom = 0) kind engine =
  Buf_policy.create ?check ~headroom ~kind ~name:"pool" engine

(* Admit [n] units into [c], stopping at the first rejection; returns
   how many were admitted. *)
let fill c n =
  let admitted = ref 0 in
  (try
     for _ = 1 to n do
       if Buf_policy.admit c then incr admitted else raise Exit
     done
   with Exit -> ());
  !admitted

let test_static_partitions () =
  let engine = Engine.create () in
  let pool = make Buf_policy.Static engine in
  let a = Buf_policy.register pool ~name:"a" ~quota:4 ~priority:0 in
  let b = Buf_policy.register pool ~name:"b" ~quota:2 ~priority:1 in
  Alcotest.(check int) "capacity" 6 (Buf_policy.capacity pool);
  Alcotest.(check int) "a stops at its quota" 4 (fill a 10);
  (* b's partition is private: a's exhaustion cannot spill into it and
     b's free quota cannot rescue a. *)
  Alcotest.(check int) "b unaffected" 2 (fill b 10);
  Alcotest.(check bool) "a still rejected" false (Buf_policy.admit a);
  Buf_policy.release b;
  Alcotest.(check bool) "b slot returns to b" true (Buf_policy.admit b);
  Alcotest.(check int) "free is exact" 0 (Buf_policy.free pool)

let test_complete_sharing () =
  let engine = Engine.create () in
  let pool = make Buf_policy.Sharing engine in
  let a = Buf_policy.register pool ~name:"a" ~quota:4 ~priority:0 in
  let b = Buf_policy.register pool ~name:"b" ~quota:2 ~priority:1 in
  (* One class may monopolise the whole pool... *)
  Alcotest.(check int) "a takes everything" 6 (fill a 10);
  (* ...leaving nothing for the other. *)
  Alcotest.(check bool) "b starved" false (Buf_policy.admit b);
  Alcotest.(check int) "rejection counted" 1
    (List.nth (Buf_policy.stats pool ~until:0.0) 1).Buf_policy.rejected;
  Buf_policy.release a;
  Alcotest.(check bool) "freed slot goes to b" true (Buf_policy.admit b)

let test_dynamic_threshold () =
  let engine = Engine.create () in
  let pool = make Buf_policy.(Dt { alpha = 1.0 }) engine in
  let a = Buf_policy.register pool ~name:"a" ~quota:8 ~priority:0 in
  let _b = Buf_policy.register pool ~name:"b" ~quota:8 ~priority:0 in
  (* alpha = 1: admit while len < free.  Capacity 16, so a stops where
     len = free, i.e. at 8 — half the pool, the classic DT fixed
     point for a single hot class. *)
  Alcotest.(check int) "DT fixed point" 8 (fill a 100);
  Alcotest.(check int) "threshold tracks free" 8 (Buf_policy.threshold a);
  (* Freeing shifts the balance and re-opens admission. *)
  Buf_policy.release a;
  Buf_policy.release a;
  Alcotest.(check bool) "reopened" true (Buf_policy.admit a)

let test_tdt_adapts () =
  let engine = Engine.create () in
  let pool =
    make Buf_policy.(Tdt { alpha0 = 2.0; target_delay = 2e-3 }) engine
  in
  let hot = Buf_policy.register pool ~name:"hot" ~quota:8 ~priority:0 in
  let prio = Buf_policy.register pool ~name:"prio" ~quota:8 ~priority:8 in
  (* Higher-priority classes start with a proportionally larger
     alpha. *)
  feq "base alpha" 2.0 (Buf_policy.alpha hot);
  feq "priority boost" 4.0 (Buf_policy.alpha prio);
  (* Delay at the target keeps alpha at half strength; delay far past
     the target tightens it toward the floor, monotonically. *)
  Buf_policy.note_delay hot 2e-3;
  feq "at target: alpha0 * 1/2" 1.0 (Buf_policy.alpha hot);
  let previous = ref (Buf_policy.alpha hot) in
  for _ = 1 to 20 do
    Buf_policy.note_delay hot 0.1;
    let a = Buf_policy.alpha hot in
    Alcotest.(check bool) "tightens monotonically" true (a <= !previous);
    previous := a
  done;
  Alcotest.(check bool) "clamped above the floor" true
    (Buf_policy.alpha hot >= 1.0 /. 64.0);
  (* A recovering class loosens again. *)
  for _ = 1 to 50 do
    Buf_policy.note_delay hot 0.0
  done;
  Alcotest.(check bool) "recovers" true (Buf_policy.alpha hot > !previous)

let test_conservation_checked () =
  let engine = Engine.create () in
  let check = Sdn_check.Check.create () in
  let pool = make ~check ~headroom:3 Buf_policy.Sharing engine in
  let a = Buf_policy.register pool ~name:"a" ~quota:2 ~priority:0 in
  let b = Buf_policy.register pool ~name:"b" ~quota:2 ~priority:1 in
  (* Exercise claims and releases across both classes; every event
     re-checks holdings + free = capacity (7 = 3 headroom + quotas). *)
  Alcotest.(check int) "capacity includes headroom" 7
    (Buf_policy.capacity pool);
  ignore (fill a 4);
  ignore (fill b 3);
  Buf_policy.release a;
  Buf_policy.release b;
  ignore (fill b 1);
  Alcotest.(check int) "clean ledger" 0
    (List.length (Sdn_check.Check.violations check));
  Alcotest.check_raises "duplicate class refused"
    (Invalid_argument "Buf_policy.register: duplicate class a in pool pool")
    (fun () -> ignore (Buf_policy.register pool ~name:"a" ~quota:1 ~priority:0));
  Alcotest.check_raises "over-release refused"
    (Invalid_argument "Buf_policy.release: class a holds nothing") (fun () ->
      Buf_policy.release a;
      Buf_policy.release a;
      Buf_policy.release a;
      Buf_policy.release a)

(* Experiment-level: the sweep's policies must produce distinct,
   individually deterministic delivery curves on the incast base. *)
let policy_experiment policy =
  let base = Chaos.default_policy_base ~seed:7 in
  let base = { base with Config.workload = Config.Udp_burst { n_packets = 120 } } in
  Experiment.run (Chaos.policy_point_config ~base ~policy ~buffer:16)

let test_distinct_policy_curves () =
  let static = policy_experiment Buf_policy.Static in
  let share = policy_experiment Buf_policy.Sharing in
  let dt = policy_experiment Buf_policy.(Dt { alpha = 2.0 }) in
  Alcotest.(check bool) "sharing delivers more than static" true
    (share.Experiment.packets_out > static.Experiment.packets_out);
  Alcotest.(check bool) "dt between the extremes" true
    (dt.Experiment.packets_out > static.Experiment.packets_out
    && dt.Experiment.packets_out <= share.Experiment.packets_out);
  Alcotest.(check bool) "policy recorded" true
    (match static.Experiment.buf_policy with
    | Some s -> String.equal s "static"
    | None -> false);
  Alcotest.(check bool) "pool classes reported" true
    (List.length static.Experiment.pool_classes > 0);
  (* Determinism: re-running a point reproduces it field for field. *)
  let again = policy_experiment Buf_policy.Static in
  Alcotest.(check (list string)) "byte-identical rerun" []
    (Experiment.diff_result static again)

let suite =
  [
    Alcotest.test_case "kind parsing and round-trip" `Quick test_kind_parsing;
    Alcotest.test_case "static keeps partitions private" `Quick
      test_static_partitions;
    Alcotest.test_case "complete sharing can starve" `Quick
      test_complete_sharing;
    Alcotest.test_case "dynamic threshold fixed point" `Quick
      test_dynamic_threshold;
    Alcotest.test_case "TDT tightens and recovers" `Quick test_tdt_adapts;
    Alcotest.test_case "conservation under the checker" `Quick
      test_conservation_checked;
    Alcotest.test_case "distinct deterministic policy curves" `Slow
      test_distinct_policy_curves;
  ]
