lib/core/calibration.ml: Sdn_controller Sdn_switch
