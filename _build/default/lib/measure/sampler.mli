(** Periodic in-simulation sampling. *)

open Sdn_sim

val every : Engine.t -> dt:float -> until:float -> (time:float -> unit) -> unit
(** Call the function at [dt] intervals, starting one period from now
    and stopping after [until]. *)

val cpu_utilization :
  Engine.t -> dt:float -> until:float -> Cpu.t list -> Timeseries.t
(** Sample the combined utilization (percent of one core, summed over
    the given CPUs) over each interval, as [top] would report for a
    multi-threaded process. *)

val gauge :
  Engine.t -> dt:float -> until:float -> (unit -> float) -> Timeseries.t
(** Sample an arbitrary instantaneous value (e.g. buffer units in
    use). *)
