lib/net/ip.ml: Bytes Format Int32 List Printf String
