test/test_of_stream.ml: Alcotest Bytes Int32 Ip List Mac Of_action Of_codec Of_flow_mod Of_match Of_packet_in Of_packet_out Of_stream Packet QCheck QCheck_alcotest Sdn_net Sdn_openflow Sdn_sim
