(* Unit and property tests for the binary min-heap. *)

open Sdn_sim

let make () = Heap.create ~cmp:compare ()

let test_empty () =
  let h = make () in
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h)

let test_pop_exn_empty () =
  let h = make () in
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_ordering () =
  let h = make () in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 0 ];
  let drained = List.init 7 (fun _ -> Heap.pop_exn h) in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 1; 3; 4; 5; 9 ] drained;
  Alcotest.(check bool) "drained" true (Heap.is_empty h)

let test_peek_does_not_remove () =
  let h = make () in
  Heap.push h 2;
  Heap.push h 1;
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  Alcotest.(check int) "length unchanged" 2 (Heap.length h)

let test_growth_beyond_capacity () =
  let h = Heap.create ~capacity:2 ~cmp:compare () in
  for i = 100 downto 1 do
    Heap.push h i
  done;
  Alcotest.(check int) "length" 100 (Heap.length h);
  Alcotest.(check (option int)) "min" (Some 1) (Heap.peek h)

let test_clear () =
  let h = make () in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.length h);
  Heap.push h 7;
  Alcotest.(check (option int)) "usable after clear" (Some 7) (Heap.pop h)

let test_custom_comparator () =
  let h = Heap.create ~cmp:(fun a b -> compare b a) () in
  List.iter (Heap.push h) [ 1; 3; 2 ];
  Alcotest.(check (option int)) "max-heap" (Some 3) (Heap.pop h)

let test_to_list_contents () =
  let h = make () in
  List.iter (Heap.push h) [ 4; 2; 7 ];
  Alcotest.(check (list int)) "contents" [ 2; 4; 7 ]
    (List.sort compare (Heap.to_list h))

(* ---- Indexed removal ---- *)

type slot = { v : int; mutable idx : int }

let indexed () =
  Heap.create ~capacity:4
    ~set_index:(fun s i -> s.idx <- i)
    ~cmp:(fun a b -> Int.compare a.v b.v)
    ()

let test_remove_by_index () =
  let h = indexed () in
  let slots = Array.init 10 (fun i -> { v = i; idx = -1 }) in
  (* Scrambled insertion so removal exercises both sift directions. *)
  List.iter (fun i -> Heap.push h slots.(i)) [ 7; 2; 9; 0; 5; 3; 8; 1; 6; 4 ];
  let victim = slots.(5) in
  let removed = Heap.remove h victim.idx in
  Alcotest.(check bool) "same element" true (removed == victim);
  Alcotest.(check int) "index reset to -1" (-1) victim.idx;
  Alcotest.(check int) "length shrank" 9 (Heap.length h);
  let drained = List.init 9 (fun _ -> (Heap.pop_exn h).v) in
  Alcotest.(check (list int)) "rest still sorted"
    [ 0; 1; 2; 3; 4; 6; 7; 8; 9 ] drained

let test_indices_live_and_distinct () =
  let h = indexed () in
  let slots = Array.init 16 (fun i -> { v = 16 - i; idx = -1 }) in
  Array.iter (Heap.push h) slots;
  Array.iter
    (fun s -> Alcotest.(check bool) "live index" true (s.idx >= 0))
    slots;
  let seen = Hashtbl.create 16 in
  Array.iter (fun s -> Hashtbl.replace seen s.idx ()) slots;
  Alcotest.(check int) "indices distinct" 16 (Hashtbl.length seen)

let test_remove_bad_index () =
  let h = indexed () in
  Heap.push h { v = 1; idx = -1 };
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Heap.remove: index out of bounds") (fun () ->
      ignore (Heap.remove h 5));
  Alcotest.check_raises "negative"
    (Invalid_argument "Heap.remove: index out of bounds") (fun () ->
      ignore (Heap.remove h (-1)))

(* ---- Adaptive capacity ---- *)

let test_shrink_after_burst () =
  let h = Heap.create ~capacity:8 ~cmp:Int.compare () in
  for i = 1 to 1000 do
    Heap.push h i
  done;
  let high = Heap.capacity h in
  Alcotest.(check bool) "grew past burst" true (high >= 1000);
  for _ = 1 to 990 do
    ignore (Heap.pop h)
  done;
  Alcotest.(check bool) "released high-water memory" true
    (Heap.capacity h < high / 8);
  Alcotest.(check bool) "floor respected" true (Heap.capacity h >= 8);
  for _ = 1 to 10 do
    ignore (Heap.pop h)
  done;
  Alcotest.(check int) "back at creation capacity" 8 (Heap.capacity h)

let test_clear_resets_capacity () =
  let h = Heap.create ~capacity:4 ~cmp:Int.compare () in
  for i = 1 to 100 do
    Heap.push h i
  done;
  Heap.clear h;
  Alcotest.(check int) "capacity reset" 4 (Heap.capacity h);
  Alcotest.(check int) "empty" 0 (Heap.length h)

let remove_one s l =
  let rec go = function
    | [] -> []
    | x :: rest -> if x == s then rest else x :: go rest
  in
  go l

let prop_indexed_remove =
  QCheck.Test.make ~name:"indexed remove keeps heap and model in step"
    ~count:300
    QCheck.(list (pair (int_bound 2) small_int))
    (fun ops ->
      let h = indexed () in
      let live = ref [] in
      let ok = ref true in
      List.iter
        (fun (op, v) ->
          match op with
          | 0 ->
              let s = { v; idx = -1 } in
              Heap.push h s;
              live := s :: !live
          | 1 -> (
              match (Heap.pop h, !live) with
              | None, [] -> ()
              | None, _ :: _ | Some _, [] -> ok := false
              | Some s, l :: ls ->
                  let best =
                    List.fold_left (fun acc x -> if x.v < acc.v then x else acc)
                      l ls
                  in
                  ok := !ok && s.v = best.v && s.idx = -1;
                  live := remove_one s !live)
          | _ -> (
              match !live with
              | [] -> ()
              | s :: _ ->
                  let r = Heap.remove h s.idx in
                  ok := !ok && r == s && s.idx = -1;
                  live := remove_one s !live))
        ops;
      let drained = List.init (Heap.length h) (fun _ -> (Heap.pop_exn h).v) in
      let expect = List.sort Int.compare (List.map (fun s -> s.v) !live) in
      !ok && drained = expect)

let prop_heap_sort =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = make () in
      List.iter (Heap.push h) xs;
      let drained = List.filter_map (fun _ -> Heap.pop h) xs in
      drained = List.sort compare xs)

let prop_interleaved =
  QCheck.Test.make ~name:"interleaved push/pop preserves min property"
    ~count:200
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = make () in
      let model = ref [] in
      List.for_all
        (fun (is_push, v) ->
          if is_push then begin
            Heap.push h v;
            model := List.sort compare (v :: !model);
            true
          end
          else begin
            match (Heap.pop h, !model) with
            | None, [] -> true
            | Some x, m :: rest ->
                model := rest;
                x = m
            | None, _ :: _ | Some _, [] -> false
          end)
        ops)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "pop_exn on empty raises" `Quick test_pop_exn_empty;
    Alcotest.test_case "pops in sorted order" `Quick test_ordering;
    Alcotest.test_case "peek does not remove" `Quick test_peek_does_not_remove;
    Alcotest.test_case "grows beyond capacity" `Quick test_growth_beyond_capacity;
    Alcotest.test_case "clear then reuse" `Quick test_clear;
    Alcotest.test_case "custom comparator" `Quick test_custom_comparator;
    Alcotest.test_case "to_list contents" `Quick test_to_list_contents;
    Alcotest.test_case "remove by tracked index" `Quick test_remove_by_index;
    Alcotest.test_case "indices live and distinct" `Quick
      test_indices_live_and_distinct;
    Alcotest.test_case "remove rejects bad index" `Quick test_remove_bad_index;
    Alcotest.test_case "shrinks after burst" `Quick test_shrink_after_burst;
    Alcotest.test_case "clear resets capacity" `Quick
      test_clear_resets_capacity;
    QCheck_alcotest.to_alcotest prop_indexed_remove;
    QCheck_alcotest.to_alcotest prop_heap_sort;
    QCheck_alcotest.to_alcotest prop_interleaved;
  ]
