(** The switch's flow table: priority matching, capacity with optional
    LRU eviction, idle/hard timeout expiry — fronted by an OVS-style
    exact-match microflow cache ({!Microflow}).

    Exact 5-tuple rules (the kind a reactive controller installs per
    flow) are hash-indexed so lookup stays O(1) even with a thousand
    installed rules; wildcarded rules take a linear scan. The paper's
    root-cause discussion — rules being "kicked out from the size
    limited flow table" — is modelled by [capacity] and eviction.

    Lookup runs in two tiers, mirroring Open vSwitch: the fast path
    answers from the microflow cache when an identical packet (same
    ingress port, MACs, ToS and 5-tuple) was classified since the last
    table mutation; any insert, delete, expiry or eviction flushes the
    cache, so the fast path can never serve a stale entry. With a
    {!Sdn_check.Check} armed, every cache hit is audited against the
    slow path. *)

open Sdn_net
open Sdn_openflow

type t

type insert_result =
  | Installed
  | Replaced  (** an entry with equal match and priority was overwritten *)
  | Evicted of Flow_entry.t  (** installed after evicting this entry *)
  | Table_full  (** rejected: table at capacity and eviction disabled *)

val create :
  ?eviction:bool ->
  ?microflow:bool ->
  ?microflow_capacity:int ->
  ?check:Sdn_check.Check.t ->
  ?name:string ->
  ?clock:(unit -> float) ->
  capacity:int ->
  unit ->
  t
(** [eviction] defaults to [true]: at capacity the least-recently-used
    entry of minimal priority is displaced, as the paper's discussion
    of TCP rule-eviction assumes.

    [microflow] (default [true]) enables the exact-match fast path;
    [microflow_capacity] bounds its entry count (default 8192). With
    [check] armed, every cache hit re-runs the slow path and reports a
    [microflow-agreement] violation on divergence, stamped with
    [clock ()] (default constantly [0.]) under table [name]. *)

val length : t -> int
val capacity : t -> int

val insert : t -> Flow_entry.t -> insert_result

val lookup : t -> in_port:int -> Packet.t -> Flow_entry.t option
(** Highest-priority matching entry, if any — answered from the
    microflow cache when possible. Does not touch flow-entry counters;
    callers decide when a lookup constitutes a forwarding use. *)

val lookup_uncached : t -> in_port:int -> Packet.t -> Flow_entry.t option
(** The pure slow path: a full priority scan that bypasses (and never
    populates) the microflow cache. Used by benchmarks, property tests
    and the checker's audit replay. *)

val delete :
  t -> strict:bool -> ?out_port:int -> match_:Of_match.t -> priority:int -> unit -> int
(** OpenFlow [Delete]/[Delete_strict]: remove matching entries, return
    how many were removed. Non-strict removes every entry subsumed by
    [match_]; strict requires equal match and priority. When
    [out_port] names a physical port, only entries with an output or
    enqueue action to that port qualify (the filter a controller uses
    to flush rules after a port failure). *)

val expire : t -> now:float -> Flow_entry.t list
(** Remove and return entries whose idle or hard timeout has elapsed. *)

val clear : t -> int
(** Remove every entry and flush the microflow cache — the soft-state
    loss of a cold switch restart. Returns how many entries were
    wiped. Lifetime counters (lookups, hits, evictions, expirations)
    survive; they describe the run, not the table contents. *)

val entries : t -> Flow_entry.t list

val to_stats : t -> now:float -> Of_stats.flow_stats list

(** Lifetime counters. *)

val lookups : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int
val expirations : t -> int

(** Microflow fast-path counters (all [0] when the cache is disabled). *)

val microflow_hits : t -> int
val microflow_misses : t -> int
val microflow_flushes : t -> int
val microflow_length : t -> int
