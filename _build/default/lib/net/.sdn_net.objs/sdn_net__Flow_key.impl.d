lib/net/flow_key.ml: Format Hashtbl Ip
