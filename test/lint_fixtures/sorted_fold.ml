(* Fixture: clean — the fold's order sensitivity is discharged by the
   explicit sort in the same definition. *)

let keys tbl =
  List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])
