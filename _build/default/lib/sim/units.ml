let mbps_to_bps x = x *. 1_000_000.0

let bps_to_mbps x = x /. 1_000_000.0

let bytes_to_bits b = float_of_int b *. 8.0

let transmission_time ~bytes ~bandwidth_bps =
  if bandwidth_bps <= 0.0 then invalid_arg "Units.transmission_time: bandwidth";
  bytes_to_bits bytes /. bandwidth_bps

let ms x = x *. 1e-3

let us x = x *. 1e-6

let to_ms x = x *. 1e3

let to_us x = x *. 1e6

let packets_per_second ~rate_mbps ~frame_bytes =
  if frame_bytes <= 0 then invalid_arg "Units.packets_per_second: frame_bytes";
  mbps_to_bps rate_mbps /. bytes_to_bits frame_bytes

let pp_rate fmt bps =
  if bps >= 1e9 then Format.fprintf fmt "%.2f Gbps" (bps /. 1e9)
  else if bps >= 1e6 then Format.fprintf fmt "%.2f Mbps" (bps /. 1e6)
  else if bps >= 1e3 then Format.fprintf fmt "%.2f Kbps" (bps /. 1e3)
  else Format.fprintf fmt "%.0f bps" bps
