lib/net/arp.mli: Bytes Format Ip Mac
