open Sdn_measure

let run_config config = Experiment.run config

(* ---- Buffer sizing (paper Section IV.G) ---- *)

let buffer_sizing ?(rates = [ 25.0; 50.0; 75.0; 100.0 ])
    ?(sizes = [ 8; 16; 24; 32; 48; 64; 80; 128; 256 ]) ?(seed = 1) () =
  Printf.printf
    "\n== Ablation: buffer sizing (Exp-A, packet granularity) ==\n\
     Units in use and full-packet fallbacks per (rate, pool size); the\n\
     paper concludes ~80 units suffice for a 100 Mbps interface.\n\n";
  let rows =
    List.concat_map
      (fun rate ->
        List.map
          (fun size ->
            let r =
              run_config
                (Config.exp_a ~mechanism:Config.Packet_granularity
                   ~buffer_capacity:size ~rate_mbps:rate ~seed)
            in
            [
              Printf.sprintf "%.0f" rate;
              string_of_int size;
              Printf.sprintf "%.1f" r.Experiment.buffer_mean_in_use;
              string_of_int r.Experiment.buffer_max_in_use;
              string_of_int r.Experiment.full_packet_fallbacks;
              (if r.Experiment.full_packet_fallbacks = 0 then "yes" else "no");
            ])
          sizes)
      rates
  in
  Report.print_table
    ~header:
      [ "rate(Mbps)"; "pool size"; "mean in use"; "max in use"; "fallbacks";
        "sufficient" ]
    ~rows;
  (* Minimum sufficient size per rate. *)
  Printf.printf "\nMinimum sufficient pool size per rate:\n";
  List.iter
    (fun rate ->
      let min_sufficient =
        List.find_opt
          (fun size ->
            let r =
              run_config
                (Config.exp_a ~mechanism:Config.Packet_granularity
                   ~buffer_capacity:size ~rate_mbps:rate ~seed)
            in
            r.Experiment.full_packet_fallbacks = 0)
          sizes
      in
      Printf.printf "  %3.0f Mbps: %s units\n" rate
        (match min_sufficient with Some s -> string_of_int s | None -> ">max"))
    rates

(* ---- miss_send_len sweep ---- *)

let miss_send_len_sweep ?(lengths = [ 64; 128; 256; 512; 1000 ]) ?(rate = 60.0)
    ?(seed = 1) () =
  Printf.printf
    "\n== Ablation: PACKET_IN truncation length (Exp-A, buffer-256, %.0f Mbps) ==\n\
     More bytes per request give the controller deeper visibility (e.g.\n\
     for security inspection) at a control-load cost.\n\n"
    rate;
  let rows =
    List.map
      (fun len ->
        let r =
          run_config
            {
              (Config.exp_a ~mechanism:Config.Packet_granularity
                 ~buffer_capacity:256 ~rate_mbps:rate ~seed)
              with
              Config.miss_send_len = len;
            }
        in
        [
          string_of_int len;
          Report.fmt_mbps r.Experiment.ctrl_load_up_mbps;
          Report.fmt_pct r.Experiment.controller_cpu_pct;
          Report.fmt_ms r.Experiment.setup_delay.Experiment.mean;
        ])
      lengths
  in
  Report.print_table
    ~header:
      [ "miss_send_len (B)"; "load up (Mbps)"; "controller CPU (%)"; "setup (ms)" ]
    ~rows

(* ---- Release strategy ---- *)

let release_strategy ?(rate = 60.0) ?(seed = 1) () =
  Printf.printf
    "\n== Ablation: buffered-packet release strategy (Exp-A, buffer-256, %.0f Mbps) ==\n\
     The paper's controller answers with a FLOW_MOD + PACKET_OUT pair;\n\
     OpenFlow also allows the FLOW_MOD itself to name the buffer.\n\n"
    rate;
  let run strategy =
    run_config
      {
        (Config.exp_a ~mechanism:Config.Packet_granularity ~buffer_capacity:256
           ~rate_mbps:rate ~seed)
        with
        Config.release_strategy = strategy;
      }
  in
  let pair = run `Pair and fmr = run `Flow_mod_release in
  let row label (r : Experiment.result) =
    [
      label;
      string_of_int r.Experiment.ctrl_msgs_down;
      Report.fmt_mbps r.Experiment.ctrl_load_down_mbps;
      Report.fmt_ms r.Experiment.setup_delay.Experiment.mean;
      string_of_int r.Experiment.packets_out;
    ]
  in
  Report.print_table
    ~header:
      [ "release strategy"; "msgs to switch"; "load down (Mbps)"; "setup (ms)";
        "delivered" ]
    ~rows:
      [ row "flow_mod + packet_out (paper)" pair;
        row "flow_mod carrying buffer_id" fmr ]

(* ---- Resend timeout under control-channel loss ---- *)

let resend_timeout_under_loss ?(loss_rates = [ 0.0; 0.01; 0.05; 0.10 ])
    ?(timeouts = [ 0.01; 0.05; 0.2 ]) ?(seed = 1) () =
  Printf.printf
    "\n== Ablation: re-request timeout under control-channel loss ==\n\
     Exp-A at 40 Mbps, 500 flows. A lost PACKET_IN or PACKET_OUT leaves\n\
     the buffered packet stranded; the flow-granularity timeout\n\
     (Algorithm 1, lines 12-13) re-requests it. Packet granularity has\n\
     no such recovery: stranded packets age out of the buffer.\n\n";
  let base ~mechanism ~loss =
    {
      (Config.exp_a ~mechanism ~buffer_capacity:256 ~rate_mbps:40.0 ~seed) with
      Config.workload = Config.Exp_a { n_flows = 500 };
      control_loss_rate = loss;
    }
  in
  let rows =
    List.concat_map
      (fun loss ->
        let pkt = run_config (base ~mechanism:Config.Packet_granularity ~loss) in
        let pkt_row =
          [
            Printf.sprintf "%.0f%%" (loss *. 100.0);
            "packet-granularity"; "-";
            string_of_int pkt.Experiment.ctrl_msgs_lost;
            string_of_int pkt.Experiment.pkt_in_resends;
            Printf.sprintf "%.1f%%"
              (float_of_int pkt.Experiment.packets_out
              /. float_of_int pkt.Experiment.packets_in
              *. 100.0);
          ]
        in
        let flow_rows =
          List.map
            (fun timeout ->
              let r =
                run_config
                  {
                    (base ~mechanism:Config.Flow_granularity ~loss) with
                    Config.resend_timeout = timeout;
                  }
              in
              [
                Printf.sprintf "%.0f%%" (loss *. 100.0);
                "flow-granularity";
                Printf.sprintf "%.0f ms" (timeout *. 1000.0);
                string_of_int r.Experiment.ctrl_msgs_lost;
                string_of_int r.Experiment.pkt_in_resends;
                Printf.sprintf "%.1f%%"
                  (float_of_int r.Experiment.packets_out
                  /. float_of_int r.Experiment.packets_in
                  *. 100.0);
              ])
            timeouts
        in
        pkt_row :: flow_rows)
      loss_rates
  in
  Report.print_table
    ~header:
      [ "loss"; "mechanism"; "timeout"; "msgs lost"; "re-requests"; "delivered" ]
    ~rows

(* ---- Rule installation latency ---- *)

let rule_install_latency ?(latencies = [ 0.2e-3; 2e-3; 8e-3 ]) ?(rate = 95.0)
    ?(seed = 1) () =
  Printf.printf
    "\n== Ablation: datapath rule-programming latency (Exp-B, %.0f Mbps) ==\n\
     Slow rule installation keeps packets missing long after the\n\
     controller has answered — the regime in which the paper's Fig. 12(b)\n\
     forwarding-delay gap opens up (EXPERIMENTS.md, deviation D4).\n\n"
    rate;
  let rows =
    List.concat_map
      (fun latency ->
        List.map
          (fun mechanism ->
            let base = Config.exp_b ~mechanism ~rate_mbps:rate ~seed in
            let r =
              run_config
                {
                  base with
                  Config.switch_costs =
                    {
                      base.Config.switch_costs with
                      Sdn_switch.Costs.flow_mod_apply_latency = latency;
                    };
                }
            in
            [
              Printf.sprintf "%.1f ms" (latency *. 1000.0);
              Config.label base;
              string_of_int r.Experiment.pkt_ins;
              Report.fmt_ms r.Experiment.forwarding_delay.Experiment.mean;
              Printf.sprintf "%.1f" r.Experiment.buffer_mean_in_use;
            ])
          [ Config.Packet_granularity; Config.Flow_granularity ])
      latencies
  in
  Report.print_table
    ~header:
      [ "install latency"; "mechanism"; "requests"; "fwd delay (ms)";
        "buffer units (mean)" ]
    ~rows

(* ---- Proactive provisioning baseline ---- *)

let proactive_baseline ?(rate = 60.0) ?(seed = 1) () =
  Printf.printf
    "\n== Baseline: reactive flow setup vs proactive provisioning (%.0f Mbps) ==\n\
     Proactively installing every rule before traffic starts removes the\n\
     request path entirely — but requires knowing all flows up front and\n\
     holding them in the table. The paper's mechanisms cheapen the\n\
     reactive path instead.\n\n"
    rate;
  let n_flows = 400 in
  let reactive mechanism buffer =
    let config =
      {
        (Config.exp_a ~mechanism ~buffer_capacity:buffer ~rate_mbps:rate ~seed) with
        Config.workload = Config.Exp_a { n_flows };
      }
    in
    (Config.label config, Experiment.run config)
  in
  let proactive () =
    let config =
      {
        (Config.exp_a ~mechanism:Config.Packet_granularity ~buffer_capacity:256
           ~rate_mbps:rate ~seed)
        with
        Config.workload = Config.Exp_a { n_flows };
      }
    in
    let scenario = Scenario.build config in
    let engine = scenario.Scenario.engine in
    let addressing = Sdn_traffic.Addressing.default in
    let flow_mods =
      List.init n_flows (fun flow_id ->
          Sdn_openflow.Of_flow_mod.add ~idle_timeout:0
            ~match_:
              (Sdn_openflow.Of_match.of_flow_key
                 (Sdn_traffic.Addressing.flow_key addressing ~flow_id))
            ~actions:[ Sdn_openflow.Of_action.output 2 ]
            ())
    in
    Sdn_controller.Controller.install_proactive scenario.Scenario.controller
      flow_mods;
    (* Let the installations land before traffic starts. *)
    Sdn_sim.Engine.run ~until:0.04 engine;
    let injections =
      Sdn_traffic.Patterns.exp_a ~rng:scenario.Scenario.traffic_rng ~start:0.05
        ~n_flows ~rate_mbps:rate ~frame_size:1000 ()
    in
    let plan = Sdn_traffic.Pktgen.stats_of injections in
    Sdn_traffic.Pktgen.schedule engine
      ~inject:(fun ~in_port frame -> Scenario.inject scenario ~in_port frame)
      injections;
    Scenario.run_until_quiet ~min_time:plan.Sdn_traffic.Pktgen.last scenario;
    let counters = Sdn_switch.Switch.counters scenario.Scenario.switch in
    let window =
      Float.max 1e-9
        (Sdn_measure.Delay.last_egress_time scenario.Scenario.delay
        -. plan.Sdn_traffic.Pktgen.first)
    in
    ( "proactive (pre-installed)",
      counters.Sdn_switch.Switch.pkt_ins_sent,
      Sdn_measure.Capture.load_mbps scenario.Scenario.capture
        Sdn_measure.Capture.To_controller ~window,
      Sdn_sim.Stats.mean
        (Sdn_measure.Delay.flow_setup_delays scenario.Scenario.delay),
      Sdn_switch.Flow_table.length
        (Sdn_switch.Switch.flow_table scenario.Scenario.switch) )
  in
  let reactive_row (label, (r : Experiment.result)) =
    ( label,
      r.Experiment.pkt_ins,
      r.Experiment.ctrl_load_up_mbps,
      r.Experiment.setup_delay.Experiment.mean,
      n_flows )
  in
  let rows =
    [
      reactive_row (reactive Config.No_buffer 0);
      reactive_row (reactive Config.Packet_granularity 256);
      reactive_row (reactive Config.Flow_granularity 256);
      proactive ();
    ]
  in
  Report.print_table
    ~header:
      [ "provisioning"; "requests"; "ctrl load up (Mbps)"; "setup (ms)";
        "rules held" ]
    ~rows:
      (List.map
         (fun (label, reqs, load, setup, rules) ->
           [
             label; string_of_int reqs; Report.fmt_mbps load;
             Report.fmt_ms setup; string_of_int rules;
           ])
         rows)

let run_all () =
  buffer_sizing ();
  miss_send_len_sweep ();
  release_strategy ();
  resend_timeout_under_loss ();
  rule_install_latency ();
  proactive_baseline ()
