lib/traffic/patterns.ml: Addressing Bytes Ethernet Int32 Ipv4 List Packet Rng Sdn_net Sdn_sim Tag Tcp Units
