(* Dirty fixture: a waiver whose hazard is gone. Must trip stale-allow
   exactly once. *)

(* analyze: allow par-global *)
let pure x = x * 2
