type t = {
  buffer_id : int32;
  in_port : int;
  actions : Of_action.t list;
  data : Bytes.t;
}

let release ~buffer_id ~out_port =
  {
    buffer_id;
    in_port = Of_wire.Port.none;
    actions = [ Of_action.output out_port ];
    data = Bytes.empty;
  }

(* Frames are immutable by convention, so the full-frame fallback
   aliases [frame] rather than copying it into the message. *)
let full ~frame ~in_port ~out_port =
  {
    buffer_id = Of_wire.no_buffer;
    in_port;
    actions = [ Of_action.output out_port ];
    data = frame;
  }

let fixed_body = 4 + 2 + 2

let body_size t =
  fixed_body + Of_action.list_size t.actions + Bytes.length t.data

let write_body t buf off =
  Bytes.set_int32_be buf off t.buffer_id;
  Bytes.set_uint16_be buf (off + 4) t.in_port;
  Bytes.set_uint16_be buf (off + 6) (Of_action.list_size t.actions);
  let o = Of_action.write_list t.actions buf (off + fixed_body) in
  Bytes.blit t.data 0 buf o (Bytes.length t.data)

let read_body buf off ~len =
  if len < fixed_body then Error "Of_packet_out.read_body: truncated"
  else begin
    let actions_len = Bytes.get_uint16_be buf (off + 6) in
    if fixed_body + actions_len > len then
      Error "Of_packet_out.read_body: actions overrun"
    else begin
      match Of_action.read_list buf (off + fixed_body) ~len:actions_len with
      | Error _ as e -> e
      | Ok actions ->
          let data_off = off + fixed_body + actions_len in
          let data_len = len - fixed_body - actions_len in
          Ok
            {
              buffer_id = Bytes.get_int32_be buf off;
              in_port = Bytes.get_uint16_be buf (off + 4);
              actions;
              data = Bytes.sub buf data_off data_len;
            }
    end
  end

let equal a b =
  Int32.equal a.buffer_id b.buffer_id
  && a.in_port = b.in_port
  && List.length a.actions = List.length b.actions
  && List.for_all2 Of_action.equal a.actions b.actions
  && Bytes.equal a.data b.data

let pp fmt t =
  Format.fprintf fmt "packet_out{buffer=%ld in_port=%d actions=[%a] data=%dB}"
    t.buffer_id t.in_port Of_action.pp_list t.actions (Bytes.length t.data)
