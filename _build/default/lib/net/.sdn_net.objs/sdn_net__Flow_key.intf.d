lib/net/flow_key.mli: Format Hashtbl Ip
