lib/core/chain.ml: Array Bytes Calibration Capture Config Delay Engine Experiment Float Format Int64 Ip Link Option Printf Rng Sdn_controller Sdn_measure Sdn_net Sdn_sim Sdn_switch Sdn_traffic
