lib/net/tcp.ml: Bytes Checksum Format Int32 Ipv4 List String Udp
