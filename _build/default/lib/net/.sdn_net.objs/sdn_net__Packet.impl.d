lib/net/packet.ml: Arp Bytes Ethernet Flow_key Format Ipv4 Printf Tcp Udp
