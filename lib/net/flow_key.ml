type t = {
  proto : int;
  src_ip : Ip.t;
  dst_ip : Ip.t;
  src_port : int;
  dst_port : int;
}

let make ~proto ~src_ip ~dst_ip ~src_port ~dst_port =
  { proto; src_ip; dst_ip; src_port; dst_port }

let compare a b =
  let c = Int.compare a.proto b.proto in
  if c <> 0 then c
  else begin
    let c = Ip.compare a.src_ip b.src_ip in
    if c <> 0 then c
    else begin
      let c = Ip.compare a.dst_ip b.dst_ip in
      if c <> 0 then c
      else begin
        let c = Int.compare a.src_port b.src_port in
        if c <> 0 then c else Int.compare a.dst_port b.dst_port
      end
    end
  end

let equal a b = compare a b = 0

let hash t =
  let h = Hashtbl.hash in
  h (t.proto, Ip.hash t.src_ip, Ip.hash t.dst_ip, t.src_port, t.dst_port)

let pp fmt t =
  Format.fprintf fmt "%a:%d -> %a:%d proto=%d" Ip.pp t.src_ip t.src_port Ip.pp
    t.dst_ip t.dst_port t.proto

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
