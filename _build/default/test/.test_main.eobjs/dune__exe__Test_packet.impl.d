test/test_packet.ml: Alcotest Arp Bytes Ethernet Flow_key Ip Ipv4 Mac Option Packet QCheck QCheck_alcotest Result Sdn_net Tcp
