examples/chain_topology.mli:
