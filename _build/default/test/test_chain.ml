(* Tests for the multi-switch chain scenario and the controller's
   multi-session support. *)

open Sdn_core

let config ?(mechanism = Config.Packet_granularity) ?(buffer = 256)
    ?(n_flows = 100) () =
  {
    Config.default with
    Config.mechanism;
    buffer_capacity = buffer;
    rate_mbps = 30.0;
    workload = Config.Exp_a { n_flows };
    seed = 5;
  }

let test_single_switch_matches_paper_setup () =
  let r = Chain.run (config ()) ~n_switches:1 in
  Alcotest.(check int) "one request per flow" 100 r.Chain.pkt_ins;
  Alcotest.(check int) "all delivered" 100 r.Chain.packets_out

let test_requests_scale_with_hops () =
  let r1 = Chain.run (config ()) ~n_switches:1 in
  let r3 = Chain.run (config ()) ~n_switches:3 in
  Alcotest.(check int) "3x the requests" (3 * r1.Chain.pkt_ins) r3.Chain.pkt_ins;
  Alcotest.(check bool) "more control load" true
    (r3.Chain.ctrl_load_up_mbps > 2.0 *. r1.Chain.ctrl_load_up_mbps);
  Alcotest.(check int) "still all delivered" 100 r3.Chain.packets_out

let test_setup_delay_grows_with_hops () =
  let r1 = Chain.run (config ()) ~n_switches:1 in
  let r4 = Chain.run (config ()) ~n_switches:4 in
  Alcotest.(check bool)
    (Printf.sprintf "per-hop delay accumulates (%.2f vs %.2f ms)"
       (r1.Chain.setup_delay.Experiment.mean *. 1e3)
       (r4.Chain.setup_delay.Experiment.mean *. 1e3))
    true
    (r4.Chain.setup_delay.Experiment.mean
     > 2.0 *. r1.Chain.setup_delay.Experiment.mean);
  Alcotest.(check int) "every flow measured end-to-end" 100
    r4.Chain.setup_delay.Experiment.count

let test_buffer_beats_no_buffer_across_hops () =
  let nb = Chain.run (config ~mechanism:Config.No_buffer ~buffer:0 ()) ~n_switches:3 in
  let b = Chain.run (config ()) ~n_switches:3 in
  Alcotest.(check bool) "load reduced on every hop" true
    (b.Chain.ctrl_load_up_mbps < 0.3 *. nb.Chain.ctrl_load_up_mbps);
  Alcotest.(check bool) "setup delay no worse" true
    (b.Chain.setup_delay.Experiment.mean
     <= nb.Chain.setup_delay.Experiment.mean +. 0.5e-3)

let test_flow_granularity_in_chain () =
  let cfg =
    {
      (config ~mechanism:Config.Flow_granularity ()) with
      Config.workload = Config.Exp_b { n_flows = 10; packets_per_flow = 10; concurrent = 5 };
      rate_mbps = 80.0;
    }
  in
  let r = Chain.run cfg ~n_switches:2 in
  Alcotest.(check int) "all packets across both hops" 100 r.Chain.packets_out;
  (* Each hop buffers the flow's in-flight packets and asks once per
     install round: far fewer than one request per packet per hop. *)
  Alcotest.(check bool)
    (Printf.sprintf "request suppression holds per hop (%d)" r.Chain.pkt_ins)
    true
    (r.Chain.pkt_ins < 100)

let test_rejects_empty_chain () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Chain.build (config ()) ~n_switches:0);
       false
     with Invalid_argument _ -> true)

let test_chain_reproducible () =
  let a = Chain.run (config ()) ~n_switches:2 in
  let b = Chain.run (config ()) ~n_switches:2 in
  Alcotest.(check (float 0.0)) "same setup mean" a.Chain.setup_delay.Experiment.mean
    b.Chain.setup_delay.Experiment.mean;
  Alcotest.(check int) "same requests" a.Chain.pkt_ins b.Chain.pkt_ins

let suite =
  [
    Alcotest.test_case "single switch sanity" `Quick
      test_single_switch_matches_paper_setup;
    Alcotest.test_case "requests scale with hop count" `Quick
      test_requests_scale_with_hops;
    Alcotest.test_case "setup delay accumulates per hop" `Quick
      test_setup_delay_grows_with_hops;
    Alcotest.test_case "buffering wins across hops" `Quick
      test_buffer_beats_no_buffer_across_hops;
    Alcotest.test_case "flow granularity in a chain" `Quick
      test_flow_granularity_in_chain;
    Alcotest.test_case "rejects empty chain" `Quick test_rejects_empty_chain;
    Alcotest.test_case "chain runs are reproducible" `Quick test_chain_reproducible;
  ]
