lib/sim/link.ml: Engine Float Rng Units
