(* Tests for the analytical cross-validation suite: the golden
   agreement report, the jobs-independence of its bytes, and the
   tolerance gate. *)

open Sdn_core

(* One shared golden-grid run: the fixture grid is a single Floodlight
   replication per regime, small enough for the test budget. *)
let golden_report = lazy (Validate.run ~jobs:1 Validate.golden_grid)

let test_golden_agreement () =
  let report = Lazy.force golden_report in
  Alcotest.(check bool) "golden grid agrees" true report.Validate.ok;
  Alcotest.(check int) "no checker violations" 0 report.Validate.violations

(* The committed fixture pins the whole chain — workload generation,
   simulator, pooling, predictions, formatting. Regenerate with
   [sdn_buffer_cli validate --grid golden --csv
   test/golden/validate_golden.csv] after an intentional change. *)
let test_golden_csv_bytes () =
  let expected =
    let ic = open_in_bin "golden/validate_golden.csv" in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  Alcotest.(check string) "agreement report is byte-identical"
    expected
    (Validate.csv (Lazy.force golden_report))

let test_jobs_independence () =
  let parallel = Validate.run ~jobs:3 Validate.golden_grid in
  Alcotest.(check string) "jobs=3 report equals jobs=1 bytes"
    (Validate.csv (Lazy.force golden_report))
    (Validate.csv parallel)

let test_tolerance_gate () =
  let tol = { Validate.rel = 0.1; abs = 2.0 } in
  Alcotest.(check bool) "inside abs floor" true
    (Validate.agrees tol ~predicted:0.0 ~observed:1.5);
  Alcotest.(check bool) "inside rel band" true
    (Validate.agrees tol ~predicted:100.0 ~observed:109.0);
  Alcotest.(check bool) "outside both" false
    (Validate.agrees tol ~predicted:100.0 ~observed:113.0);
  Alcotest.(check bool) "boundary is inclusive" true
    (Validate.agrees tol ~predicted:100.0 ~observed:110.0);
  (* A degenerate observation is a divergence, never a vacuous pass. *)
  Alcotest.(check bool) "nan observed fails" false
    (Validate.agrees tol ~predicted:1.0 ~observed:nan);
  Alcotest.(check bool) "infinite observed fails" false
    (Validate.agrees tol ~predicted:1.0 ~observed:infinity);
  (* Negative metrics gate on the magnitude of the prediction. *)
  Alcotest.(check bool) "negative predicted uses |predicted|" true
    (Validate.agrees tol ~predicted:(-100.0) ~observed:(-95.0))

(* A report with any out-of-tolerance metric must flip both the point
   and the report verdicts — the CLI's exit-2 path. *)
let test_divergence_propagates () =
  let report = Lazy.force golden_report in
  let break (p : Validate.point) =
    {
      p with
      Validate.p_ok = false;
      metrics =
        List.map
          (fun (m : Validate.metric) -> { m with Validate.m_ok = false })
          p.Validate.metrics;
    }
  in
  let broken =
    {
      report with
      Validate.points =
        (match report.Validate.points with
        | first :: rest -> break first :: rest
        | [] -> []);
      ok = false;
    }
  in
  Alcotest.(check bool) "summary reports divergence" true
    (let s = Validate.summary broken in
     String.length s >= 10
     &&
     let rec contains i =
       i + 10 <= String.length s
       && (String.sub s i 10 = "DIVERGENCE" || contains (i + 1))
     in
     contains 0);
  (* Every broken metric renders FAIL in the csv. *)
  let csv = Validate.csv broken in
  let fail_rows =
    String.split_on_char '\n' csv
    |> List.filter (fun l ->
           String.length l >= 4 && String.sub l (String.length l - 4) 4 = "FAIL")
  in
  Alcotest.(check int) "one point's metrics all FAIL"
    (List.length (List.hd report.Validate.points).Validate.metrics)
    (List.length fail_rows)

let suite =
  [
    Alcotest.test_case "golden grid agrees with the models" `Quick
      test_golden_agreement;
    Alcotest.test_case "golden csv bytes" `Quick test_golden_csv_bytes;
    Alcotest.test_case "report independent of --jobs" `Quick
      test_jobs_independence;
    Alcotest.test_case "tolerance gate" `Quick test_tolerance_gate;
    Alcotest.test_case "divergence propagates to the verdict" `Quick
      test_divergence_propagates;
  ]
