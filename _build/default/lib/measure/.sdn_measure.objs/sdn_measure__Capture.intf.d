lib/measure/capture.mli: Bytes Format Of_wire Sdn_openflow
