(** Open Jackson networks.

    The switch -> controller -> switch loop is an open network of
    exponential stations: the kernel datapath, the userspace slow
    path and the controller process, visited a fixed expected number
    of times per external packet. Jackson's theorem gives the
    stationary product form; each station then behaves as an
    independent {!Mm1.mmc} queue at its solved arrival rate, and the
    mean time an external arrival spends in the network follows from
    Little's law over the whole network.

    Two entry points: {!solve} takes the per-station visit counts
    directly (the usual reduction for a fixed deterministic route),
    while {!solve_routing} solves the traffic equations
    [lambda = gamma + lambda P] for an explicit routing matrix and
    reduces to the same thing — the cross-validation suite uses the
    former, the property tests pin their equivalence on the paper's
    feedback topology. *)

type node = {
  name : string;
  service : float;  (** mean service time per visit, seconds *)
  servers : int;
}

type station = {
  node : node;
  visits : float;  (** expected visits per external arrival *)
  lambda : float;  (** solved station arrival rate *)
  queue : Mm1.t;  (** the station as an independent M/M/c queue *)
}

type t = {
  arrival_rate : float;  (** total external arrival rate *)
  stations : station list;
  stable : bool;  (** every station below saturation *)
}

val solve : arrival_rate:float -> (node * float) list -> t
(** [solve ~arrival_rate nodes] solves the network in which each
    [node] is visited [visits] times per external arrival:
    [lambda_i = arrival_rate * visits_i]. Raises [Invalid_argument]
    on a negative rate or visit count, or duplicate node names. *)

val solve_routing :
  external_arrivals:float array ->
  routing:float array array ->
  nodes:node array ->
  t
(** [solve_routing ~external_arrivals ~routing ~nodes] solves the
    traffic equations [lambda = gamma + lambda P] by fixed-point
    iteration ([P] substochastic: each row sums to at most 1, the
    deficit leaving the network) and then proceeds as {!solve} with
    [visits_i = lambda_i / sum gamma]. Raises [Invalid_argument] on
    shape mismatches, negative entries, or a row summing above 1. *)

val station : t -> string -> station
(** Station by node name. Raises [Not_found]. *)

val sojourn : t -> string -> float
(** Mean per-visit sojourn [w] of the named station. *)

val queue_wait : t -> string -> float
(** Mean per-visit wait [wq] of the named station. *)

val utilization : t -> string -> float
(** Per-server utilization [rho] of the named station. *)

val mean_jobs : t -> float
(** Mean total number of jobs in the network: [sum l_i]. *)

val response_time : t -> float
(** Mean time an external arrival spends in the network, by Little's
    law on the whole network: [mean_jobs / arrival_rate] — equal to
    [sum visits_i * w_i]. [0] when the arrival rate is [0]. *)
