(* Dirty fixture: a top-level ref mutated by a function handed to the
   task pool — the exact race the PR 5 sequential-equivalence gate can
   only catch dynamically. Must trip par-global exactly once (the
   finding is per sharing pair, not per touch). *)

let hits = ref 0

let work () =
  incr hits;
  !hits

let launch () = Task_pool.run work
