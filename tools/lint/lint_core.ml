(* Determinism lint over the untyped AST. See lint_core.mli for the
   rule catalog. The analyzer deliberately works on the Parsetree, not
   the Typedtree: it must run on any file that merely parses, without a
   full build, and every rule here is recognisable syntactically. Only
   stable Parsetree nodes are matched (Pexp_ident / Pexp_assert /
   Pexp_try / Ppat_any / Pstr_value), so the same source compiles
   against the 5.1 and 5.2 compiler-libs. *)

type finding = Report_common.finding = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

let rules =
  [
    ( "wall-clock",
      "host-clock read; the simulation's only clock is Engine.now" );
    ("entropy", "Random module use; randomness must come from seeded Rng");
    ( "hashtbl-order",
      "Hashtbl iteration order escapes without an explicit sort" );
    ("exception-swallow", "wildcard exception handler hides failures");
    ("partial-exit", "assert false / failwith instead of a typed error");
    ("poly-compare", "polymorphic compare; name a monomorphic comparison");
    ( "global-mutable",
      "mutable toplevel state; parallel task bodies must not share it" );
    ( "domain-self",
      "Domain.self-dependent behaviour; output must not vary with the \
       executing domain" );
    Report_common.stale_rule;
  ]

(* ---- Small string helpers (no external deps in this tool) ---- *)

let ends_with ~suffix s =
  let n = String.length s and m = String.length suffix in
  m <= n && String.sub s (n - m) m = suffix

(* ---- Longident classification ---- *)

(* Longident.flatten raises on functor applications; fold by hand. *)
let flatten lid =
  let exception Functor_application in
  let rec go acc = function
    | Longident.Lident s -> s :: acc
    | Longident.Ldot (l, s) -> go (s :: acc) l
    | Longident.Lapply _ -> raise Functor_application
  in
  match go [] lid with parts -> Some parts | exception Functor_application -> None

let wall_clock_idents =
  [
    [ "Unix"; "gettimeofday" ];
    [ "Unix"; "time" ];
    [ "Unix"; "gmtime" ];
    [ "Unix"; "localtime" ];
    [ "Sys"; "time" ];
  ]

let failwith_idents = [ [ "failwith" ]; [ "Stdlib"; "failwith" ] ]

let poly_compare_idents =
  [ [ "compare" ]; [ "Stdlib"; "compare" ]; [ "Pervasives"; "compare" ] ]

let sort_names = [ "sort"; "stable_sort"; "sort_uniq"; "fast_sort" ]

let domain_self_idents = [ [ "Domain"; "self" ]; [ "Domain"; "DLS"; "get" ] ]

(* Constructors whose toplevel application creates mutable state shared
   by every domain: a task body reaching such a binding breaks the
   parallel-equivalence guarantee (and, unsynchronized, is a data
   race). Function-local creations are per-call and fine; this list is
   only consulted for bindings directly at structure level. *)
let mutable_ctor_idents =
  [
    [ "ref" ];
    [ "Stdlib"; "ref" ];
    [ "Hashtbl"; "create" ];
    [ "Queue"; "create" ];
    [ "Stack"; "create" ];
    [ "Buffer"; "create" ];
    [ "Bytes"; "create" ];
    [ "Bytes"; "make" ];
    [ "Array"; "make" ];
    [ "Array"; "create_float" ];
    [ "Atomic"; "make" ];
  ]

(* Hashtbl.fold / Hashtbl.iter, including the functorial instances the
   codebase spells <Key>.Table.fold. *)
let hashtbl_iteration parts =
  match List.rev parts with
  | fn :: module_ :: _ when fn = "fold" || fn = "iter" ->
      module_ = "Hashtbl" || module_ = "Table"
  | _ -> false

let is_sort parts =
  match List.rev parts with
  | fn :: _ :: _ -> List.mem fn sort_names
  | _ -> false

(* A file defining its own top-level [compare] is exempt from the
   poly-compare rule: local references resolve to that binding. *)
let defines_toplevel_compare structure =
  List.exists
    (fun (item : Parsetree.structure_item) ->
      match item.Parsetree.pstr_desc with
      | Parsetree.Pstr_value (_, bindings) ->
          List.exists
            (fun (vb : Parsetree.value_binding) ->
              match vb.Parsetree.pvb_pat.Parsetree.ppat_desc with
              | Parsetree.Ppat_var { Asttypes.txt = "compare"; _ } -> true
              | _ -> false)
            bindings
      | _ -> false)
    structure

(* ---- The per-file walk ---- *)

let lint_structure ~path ~lines structure =
  (* Findings are collected raw (pre-waiver): the stale-allow pass
     needs to know what a suppression comment actually suppressed. *)
  let findings = ref [] in
  let add ~loc rule message =
    let line = loc.Location.loc_start.Lexing.pos_lnum in
    findings := { file = path; line; rule; message } :: !findings
  in
  let poly_exempt = defines_toplevel_compare structure in
  let entropy_exempt = ends_with ~suffix:"sim/rng.ml" path in
  (* global-mutable: a structure-level [let] binding whose right-hand
     side directly applies a mutable-state constructor. Function-local
     creations are per-call state and never flagged; the walk recurses
     into nested modules but not into expressions. *)
  let rec scan_global_mutable items =
    let rec peel (e : Parsetree.expression) =
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_constraint (inner, _) -> peel inner
      | _ -> e
    in
    let rec scan_module_expr (m : Parsetree.module_expr) =
      match m.Parsetree.pmod_desc with
      | Parsetree.Pmod_structure str -> scan_global_mutable str
      | Parsetree.Pmod_constraint (inner, _) -> scan_module_expr inner
      | Parsetree.Pmod_functor (_, body) -> scan_module_expr body
      | _ -> ()
    in
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.Parsetree.pstr_desc with
        | Parsetree.Pstr_value (_, bindings) ->
            List.iter
              (fun (vb : Parsetree.value_binding) ->
                match (peel vb.Parsetree.pvb_expr).Parsetree.pexp_desc with
                | Parsetree.Pexp_apply
                    ( {
                        Parsetree.pexp_desc =
                          Parsetree.Pexp_ident { Asttypes.txt; _ };
                        _;
                      },
                      _ ) -> (
                    match flatten txt with
                    | Some parts when List.mem parts mutable_ctor_idents ->
                        add ~loc:vb.Parsetree.pvb_loc "global-mutable"
                          (Printf.sprintf
                             "toplevel %s is mutable state shared by every \
                              domain; allocate it inside the function that \
                              uses it, or thread it through the task \
                              explicitly"
                             (String.concat "." parts))
                    | _ -> ())
                | _ -> ())
              bindings
        | Parsetree.Pstr_module mb -> scan_module_expr mb.Parsetree.pmb_expr
        | Parsetree.Pstr_recmodule mbs ->
            List.iter
              (fun (mb : Parsetree.module_binding) ->
                scan_module_expr mb.Parsetree.pmb_expr)
              mbs
        | Parsetree.Pstr_include incl ->
            scan_module_expr incl.Parsetree.pincl_mod
        | _ -> ())
      items
  in
  scan_global_mutable structure;
  List.iter
    (fun (item : Parsetree.structure_item) ->
      (* hashtbl-order is judged per top-level definition: iteration
         sites are collected, and any sort application in the same
         definition discharges them (the list was ordered before it
         escaped). *)
      let hashtbl_uses = ref [] in
      let sort_seen = ref false in
      let on_ident ~loc parts =
        let name = String.concat "." parts in
        if List.mem parts wall_clock_idents then
          add ~loc "wall-clock"
            (Printf.sprintf
               "%s reads the host clock; simulated time is Engine.now" name);
        (match parts with
        | "Random" :: _ :: _ when not entropy_exempt ->
            add ~loc "entropy"
              (Printf.sprintf
                 "%s is unseeded global state; draw from an Sdn_sim.Rng \
                  stream instead"
                 name)
        | _ -> ());
        if List.mem parts failwith_idents then
          add ~loc "partial-exit"
            "failwith crashes on bad input; return a typed error instead";
        if List.mem parts domain_self_idents then
          add ~loc "domain-self"
            (Printf.sprintf
               "%s makes behaviour depend on which worker domain runs the \
                task; results must be a function of the task index alone \
                (or mark a pure diagnostic with 'lint: allow domain-self')"
               name);
        if (not poly_exempt) && List.mem parts poly_compare_idents then
          add ~loc "poly-compare"
            (Printf.sprintf
               "%s is polymorphic (NaN-unsound on floats); use Float.compare \
                / Int.compare or a dedicated comparison"
               name);
        if hashtbl_iteration parts then
          hashtbl_uses := (loc, name) :: !hashtbl_uses;
        if is_sort parts then sort_seen := true
      in
      let expr_iter (it : Ast_iterator.iterator) (e : Parsetree.expression) =
        (match e.Parsetree.pexp_desc with
        | Parsetree.Pexp_ident { Asttypes.txt; loc } -> (
            match flatten txt with
            | Some parts -> on_ident ~loc parts
            | None -> ())
        | Parsetree.Pexp_assert
            {
              Parsetree.pexp_desc =
                Parsetree.Pexp_construct
                  ({ Asttypes.txt = Longident.Lident "false"; _ }, None);
              _;
            } ->
            add ~loc:e.Parsetree.pexp_loc "partial-exit"
              "assert false crashes at runtime; unreachable arms need a \
               'lint: allow partial-exit' comment stating the invariant, \
               parse paths need a typed error"
        | Parsetree.Pexp_try (_, cases) ->
            List.iter
              (fun (c : Parsetree.case) ->
                let wildcard =
                  match c.Parsetree.pc_lhs.Parsetree.ppat_desc with
                  | Parsetree.Ppat_any -> true
                  | Parsetree.Ppat_var { Asttypes.txt = name; _ } ->
                      String.length name > 0 && name.[0] = '_'
                  | _ -> false
                in
                if wildcard then
                  add ~loc:c.Parsetree.pc_lhs.Parsetree.ppat_loc
                    "exception-swallow"
                    "wildcard handler swallows every exception, including \
                     invariant violations; match the exceptions you mean")
              cases
        | _ -> ());
        Ast_iterator.default_iterator.Ast_iterator.expr it e
      in
      let iterator =
        { Ast_iterator.default_iterator with Ast_iterator.expr = expr_iter }
      in
      iterator.Ast_iterator.structure_item iterator item;
      if not !sort_seen then
        List.iter
          (fun (loc, name) ->
            add ~loc "hashtbl-order"
              (Printf.sprintf
                 "%s visits hash buckets in unspecified order; sort the \
                  result before it escapes, or mark a commutative \
                  accumulation with 'lint: allow hashtbl-order'"
                 name))
          (List.rev !hashtbl_uses))
    structure;
  let raw = List.rev !findings in
  let visible =
    List.filter
      (fun f ->
        not
          (Report_common.suppressed ~keyword:"lint" ~rules ~lines ~line:f.line
             ~rule:f.rule))
      raw
  in
  visible @ Report_common.stale_allows ~keyword:"lint" ~rules ~file:path ~lines ~raw

let compare_findings = Report_common.compare_findings

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | src -> (
      let lines = Array.of_list (String.split_on_char '\n' src) in
      let lexbuf = Lexing.from_string src in
      Lexing.set_filename lexbuf path;
      match Parse.implementation lexbuf with
      | exception exn ->
          Error
            (Printf.sprintf "%s: does not parse: %s" path
               (Printexc.to_string exn))
      | structure ->
          Ok (List.sort compare_findings (lint_structure ~path ~lines structure))
      )

let lint_files paths =
  let findings, errors =
    List.fold_left
      (fun (fs, es) path ->
        match lint_file path with
        | Ok found -> (found :: fs, es)
        | Error msg -> (fs, msg :: es))
      ([], []) paths
  in
  (List.sort compare_findings (List.concat findings), List.rev errors)

let pp_finding = Report_common.pp_finding

(* ---- Machine-readable summaries (shared with sdn_analyze) ---- *)

let to_json = Report_common.to_json
let to_sarif = Report_common.to_sarif ~tool:"sdn_lint" ~rules
