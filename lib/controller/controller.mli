(** The SDN controller model (Floodlight stand-in).

    Receives OpenFlow messages from the control link, prices the
    per-message CPU work (parse proportional to carried bytes, app
    decision, reply encoding), and answers each [PACKET_IN] with the
    paper's message pair: a [FLOW_MOD] installing the rule followed by
    a [PACKET_OUT] releasing the miss-match packet. Replies carry the
    request's transaction id so measurement can pair them.

    For the ablation study the release strategy is selectable:
    [`Pair] is what the paper describes; [`Flow_mod_release] rides the
    buffer id inside the [FLOW_MOD] and skips the [PACKET_OUT]
    entirely (saving one message when the packet is buffered). *)

open Sdn_sim

type release_strategy = [ `Pair | `Flow_mod_release ]

type counters = {
  pkt_ins_received : int;
  flow_mods_sent : int;
  pkt_outs_sent : int;
  drops_decided : int;
  errors_received : int;
  errors_sent : int;
      (** OFPT_ERROR replies to malformed or misdirected frames *)
  echo_requests : int;
  flow_removed_received : int;
  port_changes : int;
  decode_failures : int;
  switch_downs : int;
      (** switch sessions declared Down by the echo keepalive *)
  resyncs : int;
      (** handshake replays pushed after a session recovered *)
  crashes : int;  (** injected controller crashes *)
  crash_lost_messages : int;
      (** switch messages that arrived while the process was dead *)
  reconcile_audits : int;
      (** wildcard FLOW stats requests sent by the reconciliation pass *)
  reconcile_installs : int;
      (** entries re-installed because a post-crash audit found them
          missing from the switch *)
}

type t

val create :
  Engine.t ->
  app:App.t ->
  costs:Costs.t ->
  rng:Rng.t ->
  ?check:Sdn_check.Check.t ->
  ?release_strategy:release_strategy ->
  ?echo_interval:float ->
  ?echo_misses:int ->
  unit ->
  t
(** [release_strategy] defaults to [`Pair]. [echo_interval] (default 0:
    disabled) enables a per-switch echo keepalive; after [echo_misses]
    (default 3) unanswered echoes the switch's session is declared Down
    and, on recovery, the handshake recorded by {!start_switch} is
    replayed to resync the switch's configuration.

    With [check] armed, every emitted message and every per-switch
    session transition reports to the invariant checker under channel
    names ["ctl/sw-<id>"]. *)

val set_switch_link : t -> Bytes.t Link.t -> unit
(** Attach the controller-to-switch half of the control channel
    (single-switch shorthand for [add_switch ~switch:0]). *)

val add_switch : t -> switch:int -> Bytes.t Link.t -> unit
(** Register another switch session — one controller can manage a
    whole topology (e.g. the chain scenario). *)

val switch_count : t -> int

val handle_message : t -> Bytes.t -> unit
(** Deliver a switch-to-controller message (wired as the receiver of
    the control link); single-switch shorthand for
    [handle_message_from ~switch:0]. *)

val handle_message_from : t -> switch:int -> Bytes.t -> unit
(** Deliver a message from a specific switch session; responses return
    on that session's link. *)

val start_switch :
  t ->
  switch:int ->
  ?enable_flow_buffer:Sdn_openflow.Of_ext.backoff ->
  ?miss_send_len:int ->
  unit ->
  unit
(** Hand-shake one switch session. *)

val start :
  t ->
  ?enable_flow_buffer:Sdn_openflow.Of_ext.backoff ->
  ?miss_send_len:int ->
  unit ->
  unit
(** Run the handshake: HELLO then FEATURES_REQUEST; when
    [miss_send_len] is given, configure the switch's PACKET_IN
    truncation via SET_CONFIG; when [enable_flow_buffer] is given, also
    send the vendor message turning on flow-granularity buffering with
    that re-request backoff policy. *)

val install_proactive :
  t -> ?switch:int -> Sdn_openflow.Of_flow_mod.t list -> unit
(** Push a batch of FLOW_MODs to a switch outside any request/response
    cycle — the proactive provisioning baseline against which the
    paper's reactive flow setup (and all its overhead) is compared. *)

val switch_session : t -> switch:int -> Sdn_switch.Session.t option
(** The liveness tracker of one switch session (created at
    [start_switch] or on the switch's first message). *)

val switch_downs : t -> int
(** Total Down declarations across all switch sessions. *)

(** {1 Crash–restart fault injection}

    The controller process can be killed and later rebooted. While
    dead it neither receives (arriving messages count as
    [crash_lost_messages]) nor emits — in-flight CPU work completing
    during the downtime is discarded at the send boundary. On
    {!restart} the boot cost ({!Costs.t.restart_warm_s} /
    [restart_cold_s]) stalls every core before queued work resumes,
    every session re-enters the reconnect machinery, and the next
    resync of each session runs a flow-state reconciliation pass:
    audit the switch's flow table with a wildcard FLOW stats request,
    re-install view entries the switch lost, re-audit (bounded
    rounds). A {e cold} crash additionally wipes the controller's
    installed-entry views, which are then relearnt from the switches'
    stats replies rather than flushed. *)

val crash : t -> mode:Faults.restart_mode -> unit
(** Kill the process. Every switch session is forced Down (timers
    cancelled, no probes — a dead process cannot probe) and marked for
    reconciliation at the next resync. No-op while already dead. *)

val restart : t -> mode:Faults.restart_mode -> unit
(** Reboot after {!crash}. No-op unless dead. *)

val note_switch_disconnect : t -> switch:int -> unit
(** The {e switch's} process crashed: its TCP connection reset. The
    controller-side tracker goes Down immediately (probing for the
    switch's return) and the session is marked for reconciliation when
    it rejoins. *)

val is_dead : t -> bool

val reconcile_events : t -> (float * string) list
(** Reconciliation outcomes, oldest first — one entry per finished
    pass, e.g. ["reconciliation done (sw-0)"] or
    ["reconciliation gave up (sw-0)"] after the bounded rounds ran
    out. *)

val cpu : t -> Cpu.t
val counters : t -> counters
val app_name : t -> string
