lib/switch/costs.ml:
