lib/net/ethernet.mli: Bytes Format Mac
