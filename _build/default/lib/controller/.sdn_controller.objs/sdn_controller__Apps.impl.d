lib/controller/apps.ml: App Ethernet Hashtbl Ip Ipv4 List Mac Packet Sdn_net
