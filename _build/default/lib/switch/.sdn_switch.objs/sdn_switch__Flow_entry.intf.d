lib/switch/flow_entry.mli: Format Of_action Of_flow_mod Of_flow_removed Of_match Of_stats Sdn_openflow
