(* Property tests for the analytical queueing models (Sdn_model).

   Each property is checked over a few hundred parameter tuples drawn
   from a deterministic Sdn_sim.Rng stream — the suite is byte-stable
   across runs, like every other randomized suite in the repository. *)

open Sdn_sim
module Mm1 = Sdn_model.Mm1
module Jackson = Sdn_model.Jackson
module Feedback = Sdn_model.Feedback

let close ?(eps = 1e-9) a b =
  abs_float (a -. b) <= eps *. (1.0 +. abs_float a +. abs_float b)

let check_close ?eps what a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.12g vs %.12g" what a b)
    true (close ?eps a b)

(* Fuzz driver: [n] deterministic repetitions of [f], which draws its
   own parameters from the stream. *)
let fuzz ?(n = 300) ~seed f =
  let rng = Rng.create (Int64.of_int seed) in
  for i = 1 to n do
    f i rng
  done

let stable_mmc rng =
  let servers = 1 + Rng.int rng 4 in
  let mu = Rng.uniform rng ~lo:0.1 ~hi:1000.0 in
  let rho = Rng.uniform rng ~lo:0.01 ~hi:0.95 in
  let lambda = rho *. float_of_int servers *. mu in
  Mm1.mmc ~lambda ~mu ~servers

let test_littles_law_mmc () =
  fuzz ~seed:11 (fun _ rng ->
      let q = stable_mmc rng in
      check_close "L = lambda W" q.Mm1.l (q.Mm1.lambda *. q.Mm1.w);
      check_close "Lq = lambda Wq" q.Mm1.lq (q.Mm1.lambda *. q.Mm1.wq);
      check_close "W = Wq + 1/mu" q.Mm1.w (q.Mm1.wq +. (1.0 /. q.Mm1.mu)))

let test_mm1_closed_form () =
  fuzz ~seed:12 (fun _ rng ->
      let mu = Rng.uniform rng ~lo:0.1 ~hi:1000.0 in
      let lambda = Rng.uniform rng ~lo:0.0 ~hi:0.95 *. mu in
      let q = Mm1.mm1 ~lambda ~mu in
      check_close "w = 1/(mu - lambda)" q.Mm1.w (1.0 /. (mu -. lambda));
      (* M/M/1 is mmc with one server. *)
      let q' = Mm1.mmc ~lambda ~mu ~servers:1 in
      check_close "mm1 = mmc 1 (w)" q.Mm1.w q'.Mm1.w;
      check_close "mm1 = mmc 1 (wait_prob)" q.Mm1.wait_prob q'.Mm1.wait_prob)

let test_saturation_is_infinite () =
  fuzz ~n:100 ~seed:13 (fun _ rng ->
      let mu = Rng.uniform rng ~lo:0.1 ~hi:100.0 in
      let lambda = mu *. Rng.uniform rng ~lo:1.0 ~hi:3.0 in
      let q = Mm1.mmc ~lambda ~mu ~servers:1 in
      Alcotest.(check bool) "w infinite" true (q.Mm1.w = infinity);
      Alcotest.(check bool) "l infinite" true (q.Mm1.l = infinity);
      Alcotest.(check (float 0.0)) "wait_prob 1" 1.0 q.Mm1.wait_prob)

let test_delay_monotone_in_rho () =
  (* W and L are strictly increasing in the arrival rate, all else
     fixed — the shape behind every rising curve the oracle predicts. *)
  fuzz ~seed:14 (fun _ rng ->
      let servers = 1 + Rng.int rng 4 in
      let mu = Rng.uniform rng ~lo:0.1 ~hi:1000.0 in
      let rho1 = Rng.uniform rng ~lo:0.01 ~hi:0.9 in
      let rho2 = Rng.uniform rng ~lo:(rho1 +. 0.01) ~hi:0.98 in
      let at rho =
        Mm1.mmc ~lambda:(rho *. float_of_int servers *. mu) ~mu ~servers
      in
      let a = at rho1 and b = at rho2 in
      Alcotest.(check bool)
        (Printf.sprintf "W rises: %g@%g vs %g@%g" a.Mm1.w rho1 b.Mm1.w rho2)
        true
        (b.Mm1.w > a.Mm1.w);
      Alcotest.(check bool) "L rises" true (b.Mm1.l > a.Mm1.l))

let test_mm1k_littles_law_and_bounds () =
  fuzz ~seed:15 (fun _ rng ->
      let mu = Rng.uniform rng ~lo:0.1 ~hi:100.0 in
      let lambda = Rng.uniform rng ~lo:0.0 ~hi:1.5 *. mu in
      let k = 1 + Rng.int rng 64 in
      let f = Mm1.mm1k ~lambda ~mu ~k in
      Alcotest.(check bool) "blocking in [0,1]" true
        (f.Mm1.blocking >= 0.0 && f.Mm1.blocking <= 1.0);
      Alcotest.(check bool) "l in [0,k]" true
        (f.Mm1.f_l >= 0.0 && f.Mm1.f_l <= float_of_int k);
      (* Little's law with the effective (accepted) rate. *)
      if f.Mm1.lambda_eff > 0.0 then
        check_close "L = lambda_eff W" f.Mm1.f_l (f.Mm1.lambda_eff *. f.Mm1.f_w))

let test_mm1k_converges_to_mm1 () =
  fuzz ~n:200 ~seed:16 (fun _ rng ->
      let mu = Rng.uniform rng ~lo:0.1 ~hi:100.0 in
      let lambda = Rng.uniform rng ~lo:0.0 ~hi:0.7 *. mu in
      let f = Mm1.mm1k ~lambda ~mu ~k:600 in
      let q = Mm1.mm1 ~lambda ~mu in
      Alcotest.(check bool) "blocking vanishes" true (f.Mm1.blocking < 1e-9);
      check_close ~eps:1e-6 "L converges" f.Mm1.f_l q.Mm1.l;
      check_close ~eps:1e-6 "W converges" f.Mm1.f_w q.Mm1.w)

let test_mm1k_critical_load () =
  (* The rho = 1 limit is the uniform distribution on {0..k}. *)
  for k = 1 to 32 do
    let f = Mm1.mm1k ~lambda:5.0 ~mu:5.0 ~k in
    check_close "blocking = 1/(k+1)" (1.0 /. float_of_int (k + 1)) f.Mm1.blocking;
    check_close "l = k/2" (float_of_int k /. 2.0) f.Mm1.f_l
  done

let test_erlang_b_recursion_and_c () =
  fuzz ~seed:17 (fun _ rng ->
      let servers = 1 + Rng.int rng 64 in
      let a = Rng.uniform rng ~lo:0.0 ~hi:1.5 *. float_of_int servers in
      let b = Mm1.erlang_b ~servers ~offered_load:a in
      Alcotest.(check bool) "B in [0,1]" true (b >= 0.0 && b <= 1.0);
      (* The defining recursion B(c) = aB(c-1) / (c + aB(c-1)). *)
      if servers > 1 then begin
        let b_prev = Mm1.erlang_b ~servers:(servers - 1) ~offered_load:a in
        check_close "Erlang-B recursion" b
          (a *. b_prev /. (float_of_int servers +. (a *. b_prev)))
      end;
      let c = Mm1.erlang_c ~servers ~offered_load:a in
      if a < float_of_int servers then
        Alcotest.(check bool) "C >= B below saturation" true (c >= b -. 1e-12)
      else Alcotest.(check (float 0.0)) "C = 1 at saturation" 1.0 c)

let test_md1_is_half_mm1_wait () =
  fuzz ~seed:18 (fun _ rng ->
      let service = Rng.uniform rng ~lo:1e-6 ~hi:10.0 in
      let lambda = Rng.uniform rng ~lo:0.0 ~hi:0.95 /. service in
      let md1 = Mm1.md1_wait ~lambda ~service in
      let mm1 = (Mm1.mm1 ~lambda ~mu:(1.0 /. service)).Mm1.wq in
      check_close "M/D/1 wait = half M/M/1 wait" md1 (0.5 *. mm1))

let test_jackson_littles_law () =
  fuzz ~n:200 ~seed:19 (fun i rng ->
      let n_nodes = 1 + Rng.int rng 4 in
      let nodes =
        List.init n_nodes (fun j ->
            ( {
                Jackson.name = Printf.sprintf "n%d-%d" i j;
                service = Rng.uniform rng ~lo:1e-5 ~hi:1e-2;
                servers = 1 + Rng.int rng 3;
              },
              Rng.uniform rng ~lo:0.1 ~hi:4.0 ))
      in
      (* Scale the arrival rate so every station stays below 90%. *)
      let cap =
        List.fold_left
          (fun acc (n, v) ->
            Float.min acc
              (0.9 *. float_of_int n.Jackson.servers /. (v *. n.Jackson.service)))
          infinity nodes
      in
      let arrival_rate = Rng.uniform rng ~lo:0.05 ~hi:0.95 *. cap in
      let net = Jackson.solve ~arrival_rate nodes in
      Alcotest.(check bool) "stable" true net.Jackson.stable;
      (* Response time by Little's law equals the visit-weighted sum of
         per-station sojourns. *)
      let by_visits =
        List.fold_left
          (fun acc (n, v) -> acc +. (v *. Jackson.sojourn net n.Jackson.name))
          0.0 nodes
      in
      check_close "network Little's law" (Jackson.response_time net) by_visits;
      check_close "mean jobs = lambda T" (Jackson.mean_jobs net)
        (arrival_rate *. Jackson.response_time net))

let test_feedback_matches_jackson () =
  fuzz ~seed:20 (fun _ rng ->
      let p =
        {
          Feedback.lambda = Rng.uniform rng ~lo:1.0 ~hi:5000.0;
          packet_in_prob = Rng.uniform rng ~lo:0.0 ~hi:1.0;
          switch_service = Rng.uniform rng ~lo:1e-6 ~hi:1e-4;
          switch_servers = 1 + Rng.int rng 2;
          controller_service = Rng.uniform rng ~lo:1e-6 ~hi:1e-4;
          controller_servers = 1 + Rng.int rng 4;
          loop_delay = Rng.uniform rng ~lo:0.0 ~hi:1e-3;
        }
      in
      let fb = Feedback.eval p in
      let net = Feedback.jackson_of p in
      (* The direct evaluation and the routing-matrix reduction agree
         station by station. *)
      let sw = Jackson.station net "switch" in
      let ct = Jackson.station net "controller" in
      check_close "switch rate (1+q)lambda" fb.Feedback.switch.Mm1.lambda
        sw.Jackson.lambda;
      check_close "controller rate q lambda" fb.Feedback.controller.Mm1.lambda
        ct.Jackson.lambda;
      if fb.Feedback.stable then begin
        check_close "switch sojourn" fb.Feedback.switch.Mm1.w sw.Jackson.queue.Mm1.w;
        check_close "controller sojourn" fb.Feedback.controller.Mm1.w
          ct.Jackson.queue.Mm1.w;
        (* The sojourn decomposition T = (1+q) W_s + q (W_c + loop). *)
        let q = p.Feedback.packet_in_prob in
        check_close "sojourn decomposition" fb.Feedback.sojourn
          (((1.0 +. q) *. fb.Feedback.switch.Mm1.w)
          +. (q *. (fb.Feedback.controller.Mm1.w +. p.Feedback.loop_delay)));
        check_close "packet_in_rtt" fb.Feedback.packet_in_rtt
          (p.Feedback.loop_delay +. fb.Feedback.controller.Mm1.w)
      end)

let test_domain_errors () =
  Alcotest.check_raises "negative lambda"
    (Invalid_argument "Mm1.mmc: lambda must be finite and >= 0") (fun () ->
      ignore (Mm1.mmc ~lambda:(-1.0) ~mu:1.0 ~servers:1));
  Alcotest.check_raises "bad servers" (Invalid_argument "Mm1.mmc: servers must be >= 1")
    (fun () -> ignore (Mm1.mmc ~lambda:1.0 ~mu:1.0 ~servers:0));
  Alcotest.check_raises "bad k" (Invalid_argument "Mm1.mm1k: k must be >= 1") (fun () ->
      ignore (Mm1.mm1k ~lambda:1.0 ~mu:1.0 ~k:0))

let suite =
  [
    Alcotest.test_case "Little's law on M/M/c" `Quick test_littles_law_mmc;
    Alcotest.test_case "M/M/1 closed form" `Quick test_mm1_closed_form;
    Alcotest.test_case "saturation yields infinities" `Quick
      test_saturation_is_infinite;
    Alcotest.test_case "delay monotone in rho" `Quick test_delay_monotone_in_rho;
    Alcotest.test_case "M/M/1/K Little's law and bounds" `Quick
      test_mm1k_littles_law_and_bounds;
    Alcotest.test_case "M/M/1/K converges to M/M/1" `Quick
      test_mm1k_converges_to_mm1;
    Alcotest.test_case "M/M/1/K critical load" `Quick test_mm1k_critical_load;
    Alcotest.test_case "Erlang B recursion, Erlang C" `Quick
      test_erlang_b_recursion_and_c;
    Alcotest.test_case "M/D/1 is half the M/M/1 wait" `Quick
      test_md1_is_half_mm1_wait;
    Alcotest.test_case "Jackson network Little's law" `Quick
      test_jackson_littles_law;
    Alcotest.test_case "feedback model matches its Jackson form" `Quick
      test_feedback_matches_jackson;
    Alcotest.test_case "domain errors" `Quick test_domain_errors;
  ]
