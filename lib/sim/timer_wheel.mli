(** Hierarchical timer wheel (Varghese–Lauck).

    An alternative pending-event store for {!Engine}, tuned for very
    large pending sets: scheduling is O(1) (a cons into a slot), and
    dispatch is O(1) amortized — the cursor walks slots instead of
    sifting a heap, so cost per event stays flat as the pending count
    grows from thousands to millions. The indexed heap pays O(log n)
    per operation but has no cursor to advance across empty time; see
    DESIGN for when each wins.

    Structure: 4 levels of 256 slots each. Level 0 resolves single
    ticks (default 1 µs); each higher level covers 256x the span of
    the one below, so the wheels together cover 2^32 ticks (~71.6
    virtual minutes at the default tick) ahead of the cursor. Events
    beyond that horizon wait in a small overflow heap and are pulled
    into the wheels when the cursor enters their 2^32-tick window.
    When the cursor crosses a slot boundary of a higher level, that
    slot's events cascade down into the finer wheels below.

    Events that fall into the same tick are dispatched in [(time,
    seq)] order — the due tick is drained into a sorted ready batch —
    so wheel dispatch order is {e identical} to the heap's, not merely
    tick-accurate. This is what lets the engine treat the backend as a
    drop-in swap with byte-identical simulation output.

    The wheel is generic in its element type and reads timestamps,
    tie-break sequence numbers and cancellation flags through
    accessors supplied at creation. Cancellation is lazy: the owner
    flips its cancelled flag and calls {!note_cancel} once; the
    element is skipped and dropped whenever the wheel next touches it.
    O(1), no index bookkeeping — the trade-off against the heap's
    eager O(log n) removal is that a cancelled element's memory lives
    until its tick (or a cascade) reaches it. *)

type 'a t
(** A mutable timer wheel of ['a] events. *)

val create :
  ?tick:float ->
  ?now:float ->
  time:('a -> float) ->
  seq:('a -> int) ->
  cancelled:('a -> bool) ->
  unit ->
  'a t
(** [create ~time ~seq ~cancelled ()] is an empty wheel whose cursor
    starts at [now] (default [0.], must be non-negative). [tick]
    (default [1e-6], i.e. 1 µs) is the level-0 resolution in seconds;
    events closer together than one tick still dispatch in exact
    [(time, seq)] order, a coarser tick only batches more of them into
    one sorted drain. Raises [Invalid_argument] if [tick <= 0.]. *)

val add : 'a t -> 'a -> unit
(** Insert an event. O(1). Events at or before the cursor's current
    tick (the engine schedules at the running clock instant) are
    placed directly into the due batch, still in sorted position. *)

val peek : 'a t -> 'a option
(** Earliest live (non-cancelled) event without removing it, or [None]
    if none remain. Advances the cursor over empty ticks as needed;
    amortized O(1) per dispatched event. *)

val pop : 'a t -> 'a option
(** Remove and return the earliest live event, or [None]. *)

val note_cancel : 'a t -> unit
(** The owner just cancelled one queued element (flipped the flag the
    [cancelled] accessor reads). Adjusts {!length} immediately; the
    element itself is dropped lazily. Call exactly once per cancelled
    element that was added and not yet popped. *)

val length : 'a t -> int
(** Number of live (non-cancelled) events queued. *)

val is_empty : 'a t -> bool
(** [is_empty w] is [length w = 0]. *)
