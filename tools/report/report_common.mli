(** Shared reporting layer for the two source gates ({!Lint_core}, the
    Parsetree determinism lint, and {!Analyze_core}, the typedtree
    domain-safety/purity analyzer).

    Both tools produce the same shape of finding — [file:line],
    a rule id from a small catalog, a one-line message — and share the
    per-site waiver idiom: a comment containing
    [<keyword>: allow <rule-id>] (keyword [lint] or [analyze]) on the
    offending line or the line directly above disables that one rule
    for that line.

    This module owns:

    - the finding record and its deterministic ordering;
    - waiver-comment parsing with {e whole-token} rule matching: the
      rule name must appear as a complete token (over the alphabet
      [A-Za-z0-9_-]) in the comma/space-separated list directly after
      [allow]; parsing stops at the first token that is not a
      catalogued rule id, so free-text reasons that merely mention a
      rule name do not suppress it, and neither does a longer
      similarly-prefixed name ([allow hashtbl-order-custom] does not
      suppress [hashtbl-order]);
    - stale-waiver detection ([stale-allow]): an allow comment whose
      named rule no longer fires on the line it covers is itself a
      finding, so waivers cannot outlive the hazard they documented.
      [stale-allow] is not suppressible;
    - the two machine-readable encodings: a flat JSON array and SARIF
      2.1.0 (one run, one driver, results at [error] level) for GitHub
      code-scanning upload. *)

type finding = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

val compare_findings : finding -> finding -> int
(** Order by file, line, rule, message — the report order. *)

val pp_finding : Format.formatter -> finding -> unit
(** [file:line: [rule] message] — editor-clickable. *)

val allow_tokens :
  keyword:string -> rules:(string * string) list -> string -> string list option
(** [allow_tokens ~keyword ~rules line] is [None] when [line] contains
    no ["<keyword>: allow"] marker, and [Some rule_ids] otherwise,
    where [rule_ids] are the catalogued rule names listed directly
    after [allow] (possibly empty when the first token is not a
    catalogued rule — a typo or an unknown rule). [stale-allow] never
    parses as an allowed rule. *)

val suppressed :
  keyword:string ->
  rules:(string * string) list ->
  lines:string array ->
  line:int ->
  rule:string ->
  bool
(** Is a finding of [rule] on 1-based [line] waived by an allow
    comment on that line or the line directly above? *)

val stale_allows :
  keyword:string ->
  rules:(string * string) list ->
  file:string ->
  lines:string array ->
  raw:finding list ->
  finding list
(** One [stale-allow] finding per allow comment that no longer earns
    its keep: either it names no catalogued rule at all, or a named
    rule has no raw (pre-suppression) finding on the comment's line or
    the line below. [raw] must be the findings {e before} waivers were
    applied, or live waivers would self-report as stale. *)

val stale_rule : string * string
(** The ["stale-allow"] catalog entry, for inclusion in each tool's
    rule list. *)

val to_json : finding list -> string
(** A JSON array of
    [{"file": ..., "line": ..., "rule": ..., "message": ...}]. *)

val to_sarif :
  tool:string -> rules:(string * string) list -> finding list -> string
(** SARIF 2.1.0 log: one run for [tool], the rule catalog as
    [tool.driver.rules], each finding a result at [error] level with a
    physical location ([uri] is the finding's [file] verbatim, so run
    the tools with repo-root-relative paths when the log is uploaded
    to code scanning). *)
