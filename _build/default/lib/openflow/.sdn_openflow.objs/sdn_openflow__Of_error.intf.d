lib/openflow/of_error.mli: Bytes Format
