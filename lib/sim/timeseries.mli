(** Time-indexed measurements.

    Two flavours are provided:

    - {!t}: a plain series of [(time, value)] points, used for sampled
      curves such as CPU utilization over a run.
    - {!Weighted}: a time-weighted accumulator for piecewise-constant
      quantities such as buffer occupancy or the number of busy CPU
      cores; its [mean] is the integral of the value over time divided
      by the observation span, which is what "average buffer units in
      use" means in the paper's Figs. 8 and 13. *)

type t
(** A growable series of time-stamped samples. *)

val create : unit -> t

val add : t -> time:float -> value:float -> unit
(** Append a point. Times are expected to be non-decreasing. *)

val length : t -> int

val points : t -> (float * float) array
(** Copy of all points in insertion order. *)

val values : t -> float array

val mean : t -> float
(** Plain (unweighted) mean of the values; [0.] if empty. *)

val max_value : t -> float
(** Largest value (correct for all-negative series); [0.] if empty. *)

val stats : t -> Stats.t
(** All values loaded into a fresh {!Stats.t}. *)

(** Time-weighted accumulator for a piecewise-constant signal. *)
module Weighted : sig
  type w

  val create : ?start:float -> ?initial:float -> unit -> w
  (** Signal begins at [start] (default [0.]) with value [initial]
      (default [0.]). *)

  val update : w -> time:float -> value:float -> unit
  (** The signal takes [value] from [time] onward. [time] must be
      [>=] the previous update time. *)

  val mean : w -> until:float -> float
  (** Time-weighted mean of the signal over [\[start, until\]]. An
      [until] earlier than the last update time is clamped up to it —
      the accumulated integral already covers that span. *)

  val max_value : w -> float
  (** Largest value the signal ever took (including the initial one). *)

  val current : w -> float
  (** Value most recently set. *)
end
