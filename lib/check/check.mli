(** Runtime protocol-invariant checker.

    A verification layer threaded through the simulation (enabled with
    [--check] on the CLI and always-on in the invariant test suites).
    Components report semantically-interesting events — buffer-unit
    allocations and releases, PACKET_IN emissions, control-session
    state transitions, every encoded OpenFlow message — and the checker
    validates the protocol invariants the paper's mechanism (Algorithms
    1 and 2) depends on:

    - {b buffer-conservation}: every buffered packet is released or
      expired exactly once, and a [buffer_id] is never re-allocated
      while still live;
    - {b single-packet-in}: one flow chain triggers exactly one
      original PACKET_IN (Algorithm 1 line 8); appends are silent, and
      only the timeout machinery may re-send;
    - {b xid-uniqueness}: freshly-allocated transaction ids never
      repeat within a control session (replies legitimately echo the
      request's xid and are exempt);
    - {b session-transitions}: the liveness state machine only takes
      legal edges (e.g. [Handshaking] never jumps straight to
      [Reconnecting]);
    - {b codec-roundtrip}: [decode (encode m) = m] for every message
      put on the control channel;
    - {b microflow-agreement}: the switch's exact-match fast path
      returns the same entry as the full flow-table lookup;
    - {b parallel-equivalence}: a sampled task of a parallel sweep,
      re-run sequentially in the calling domain, produces a
      field-for-field identical {!Sdn_core.Experiment.result};
    - {b shared-pool-conservation}: in a policy-managed shared buffer
      pool, the sum of per-class holdings plus the pool's free count
      equals the registered capacity at every claim/release event, no
      class's holdings ever go negative, and only registered classes
      claim or release;
    - {b frame-pool-conservation}: in the fixed-slab frame pool the
      live slot count plus the pool's reported free count equals the
      slot total at every claim and release, no slot is released
      twice, and a crash wipe leaves every slot free;
    - {b cold-restart-wipe}: no buffered chain survives a cold node
      restart — the wipe must have expired every live unit of the
      crashed pool;
    - {b flow-reconciliation}: after a crashed node rejoins and the
      controller's reconciliation pass completes, the controller's
      view of the installed entries matches the switch's flow table.

    Violations are recorded as structured reports carrying the tail of
    the event trace leading up to them; optionally they raise
    {!Violation} immediately. *)

type t

type violation = {
  time : float;  (** virtual time of the violation *)
  invariant : string;  (** invariant id, e.g. ["buffer-conservation"] *)
  detail : string;  (** what exactly went wrong *)
  trace : (float * string) list;
      (** tail of the event trace, oldest first, violation last *)
}

exception Violation of violation

val create : ?trace_depth:int -> ?raise_on_violation:bool -> unit -> t
(** A fresh checker. [trace_depth] (default 48) bounds the event-trace
    tail attached to each violation; with [raise_on_violation] (default
    [false]) the first violation raises {!Violation} instead of only
    being recorded. *)

val record : t -> time:float -> string -> unit
(** Append a free-form event to the trace ring (for context only). *)

(* ---- Buffer conservation + single PACKET_IN ---- *)

val note_buffer_alloc : t -> time:float -> pool:string -> id:int32 -> unit
(** A buffer unit was allocated under [id]. Violation if [id] is still
    live in [pool]. *)

val note_buffer_append : t -> time:float -> pool:string -> id:int32 -> unit
(** A packet was chained onto live unit [id]. Violation if [id] is not
    live. *)

val note_buffer_release :
  t -> time:float -> pool:string -> id:int32 -> packets:int -> unit
(** Unit [id] released [packets] packets. Violation if [id] is not
    live (double release / release of an unknown id) or if the packet
    count disagrees with the allocs+appends observed. *)

val note_buffer_expire : t -> time:float -> pool:string -> id:int32 -> unit
(** Unit [id] expired (abandoned after the resend budget, or packet
    buffer timeout). Violation if [id] is not live. *)

val note_packet_in :
  t -> time:float -> pool:string -> id:int32 -> resend:bool -> unit
(** A PACKET_IN was generated for buffered unit [id]. Violation if the
    unit is not live, or if a second {e original} (non-resend)
    PACKET_IN is generated for the same live chain. *)

(* ---- Crash state-loss ---- *)

val note_crash_wipe : t -> time:float -> pool:string -> unit
(** A cold node restart just wiped buffer pool [pool]. Violation if any
    chain of that pool is still live in the conservation ledger — no
    chain may survive a cold restart. Call {e after} the wipe has
    reported its expiries. *)

(* ---- Shared-pool conservation ---- *)

val note_pool_create :
  t -> time:float -> pool:string -> headroom:int -> unit
(** Shared pool [pool] came up with [headroom] capacity units beyond
    what its classes' quotas will contribute. Must precede the pool's
    first claim so the conservation sum sees the full capacity. *)

val note_pool_register :
  t -> time:float -> pool:string -> class_:string -> quota:int -> unit
(** Class [class_] joined shared pool [pool] with a static [quota]
    contribution to the pool's capacity. Violation if the class is
    already registered in that pool. *)

val note_pool_claim :
  t -> time:float -> pool:string -> class_:string -> free:int -> unit
(** Class [class_] claimed one unit from [pool]; [free] is the pool's
    free count {e after} the claim. Violation if the class is
    unregistered or the conservation sum (holdings + free = capacity)
    no longer holds. *)

val note_pool_release :
  t -> time:float -> pool:string -> class_:string -> free:int -> unit
(** Class [class_] returned one unit to [pool]; [free] is the pool's
    free count {e after} the release. Violation if the class is
    unregistered, its holdings would go negative, or conservation
    fails. *)

(* ---- Frame-pool slot conservation ---- *)

val note_frame_pool_create : t -> time:float -> pool:string -> slots:int -> unit
(** Fixed-slab frame pool [pool] came up with [slots] slots, all free.
    Must precede the pool's first claim. *)

val note_frame_pool_claim : t -> time:float -> pool:string -> free:int -> unit
(** The datapath claimed one slot from [pool]; [free] is the pool's
    free count {e after} the claim. Violation if the pool is unknown,
    more slots are live than exist, or [live + free <> slots]. *)

val note_frame_pool_release : t -> time:float -> pool:string -> free:int -> unit
(** One slot went back to [pool]; [free] is the free count {e after}
    the release. Violation on double release (no slot live) or a
    broken conservation sum. *)

val note_frame_pool_wipe : t -> time:float -> pool:string -> free:int -> unit
(** A crash wipe forcibly released every slot of [pool]; [free] is
    the pool's free count afterwards. Violation unless every slot is
    free again. *)

val note_reconciliation :
  t -> time:float -> session:string -> agree:bool -> detail:string -> unit
(** The controller finished a post-rejoin flow-state reconciliation
    pass on [session] and compared its view of the installed entries
    against the switch's reported flow table. Violation when they
    disagree after re-installation; [detail] names the divergence. *)

(* ---- Microflow-cache agreement ---- *)

val note_microflow :
  t -> time:float -> table:string -> agree:bool -> detail:string -> unit
(** The flow table answered a lookup from the microflow cache and — with
    the checker armed — re-ran the full slow-path lookup alongside it.
    Violation when the two disagree (the cache returned a different
    entry, or a hit where the table would miss, or vice versa);
    [detail] describes the divergence. *)

(* ---- Parallel-equivalence replay ---- *)

val note_parallel_replay :
  t -> time:float -> task:string -> equal:bool -> detail:string -> unit
(** A parallel sweep executor re-ran task [task] sequentially in the
    calling domain and compared the two results field-for-field.
    Violation when they disagree — a task body touched mutable state
    shared across domains, or otherwise depended on execution order;
    [detail] names the mismatching fields. *)

(* ---- Control-session invariants ---- *)

val note_session_transition :
  t -> time:float -> session:string -> from_:string -> to_:string -> unit
(** The session state machine moved [from_] one state [to_] another
    (lower-case state names as printed by
    {!Sdn_switch.Session.state_to_string}). Violation on an edge
    outside the legal set. *)

val note_emit :
  t ->
  time:float ->
  session:string ->
  fresh:bool ->
  xid:int32 ->
  msg:Sdn_openflow.Of_codec.msg ->
  encoded:Bytes.t ->
  unit
(** A message was encoded and put on the control channel. Always
    verifies the codec round-trip ([decode encoded] must give back
    [xid] and [msg]); when [fresh] is set (the sender allocated the
    xid rather than echoing a request's) additionally enforces xid
    uniqueness within [session]. *)

(* ---- Results ---- *)

val violations : t -> violation list
(** All recorded violations, oldest first. *)

val violation_count : t -> int
val events_seen : t -> int

val pp_violation : Format.formatter -> violation -> unit
val report : t -> string
(** Human-readable multi-line report of every violation with its event
    trace tail; [""] when clean. *)
