open Sdn_sim

type service_distribution = Lognormal | Exponential

type t = {
  cores : int;
  parse_base_cost : float;
  parse_per_byte : float;
  decision_cost : float;
  encode_base_cost : float;
  encode_per_byte : float;
  congestion_threshold : int;
  congestion_slope : float;
  congestion_cap : float;
  gc_window : float;
  gc_threshold_bytes : int;
  gc_slope_per_kb : float;
  gc_cap : float;
  gc_pause_duration : float;
  gc_pause_min_gap : float;
  service_noise_sigma : float;
  service_distribution : service_distribution;
  restart_warm_s : float;
  restart_cold_s : float;
  reconcile_per_entry_cost : float;
}

let default =
  {
    cores = 2;
    parse_base_cost = 18e-6;
    parse_per_byte = 25e-9;
    decision_cost = 30e-6;
    encode_base_cost = 6e-6;
    encode_per_byte = 25e-9;
    congestion_threshold = 16;
    congestion_slope = 0.01;
    congestion_cap = 1.3;
    gc_window = 5e-3;
    gc_threshold_bytes = 38_000;
    gc_slope_per_kb = 0.015;
    gc_cap = 1.8;
    gc_pause_duration = 2.5e-3;
    gc_pause_min_gap = 25e-3;
    service_noise_sigma = 0.08;
    service_distribution = Lognormal;
    (* Floodlight restarts as a single JVM process: fast warm resume,
       sub-second cold boot of the module loader. *)
    restart_warm_s = 50e-3;
    restart_cold_s = 0.8;
    reconcile_per_entry_cost = 2e-6;
  }

type profile = Pox | Floodlight | Opendaylight

(* Single-threaded Python: one core, an interpreted parse/decision
   path roughly an order of magnitude above the JVM controllers. *)
let pox =
  {
    default with
    cores = 1;
    parse_base_cost = 150e-6;
    parse_per_byte = 80e-9;
    decision_cost = 220e-6;
    encode_base_cost = 25e-6;
    (* Interpreter start-up dominates the cold boot; reconciliation
       walks the flow view in Python. *)
    restart_warm_s = 120e-3;
    restart_cold_s = 2.5;
    reconcile_per_entry_cost = 10e-6;
  }

(* The paper's testbed controller: the calibrated defaults. *)
let floodlight = default

(* Heavier framework per message than Floodlight but wider thread
   pools on the same class of hardware. *)
let opendaylight =
  {
    default with
    cores = 4;
    parse_base_cost = 22e-6;
    parse_per_byte = 30e-9;
    decision_cost = 55e-6;
    encode_base_cost = 8e-6;
    (* The OSGi container makes cold boots by far the slowest of the
       three; the datastore keeps warm restarts quick and per-entry
       reconciliation cheap. *)
    restart_warm_s = 80e-3;
    restart_cold_s = 4.0;
    reconcile_per_entry_cost = 3e-6;
  }

let of_profile = function
  | Pox -> pox
  | Floodlight -> floodlight
  | Opendaylight -> opendaylight

let profile_to_string = function
  | Pox -> "pox"
  | Floodlight -> "floodlight"
  | Opendaylight -> "opendaylight"

let profile_of_string = function
  | "pox" -> Some Pox
  | "floodlight" -> Some Floodlight
  | "opendaylight" -> Some Opendaylight
  | _ -> None

let profiles = [ Pox; Floodlight; Opendaylight ]

let noise t rng =
  match t.service_distribution with
  | Lognormal -> fun () -> Rng.lognormal_factor rng ~sigma:t.service_noise_sigma
  | Exponential -> fun () -> Rng.exponential rng ~mean:1.0

let penalty t ~queue_len =
  let excess = float_of_int (max 0 (queue_len - t.congestion_threshold)) in
  Float.min t.congestion_cap (1.0 +. (t.congestion_slope *. excess))

let gc_factor t ~window_bytes =
  let excess_kb =
    float_of_int (max 0 (window_bytes - t.gc_threshold_bytes)) /. 1000.0
  in
  Float.min t.gc_cap (1.0 +. (t.gc_slope_per_kb *. excess_kb))
