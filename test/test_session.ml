(* Tests for the control-session lifecycle: echo-driven liveness,
   outage detection, false-positive accounting and reconnect backoff,
   plus the integration-level guarantee that delay jitter alone never
   trips the detector. *)

open Sdn_sim
open Sdn_switch
open Sdn_core

let config ?(interval = 0.01) ?(misses = 3) () =
  {
    Session.echo_interval = interval;
    echo_misses = misses;
    reconnect_delay = 0.05;
    reconnect_multiplier = 2.0;
    reconnect_cap = 0.4;
  }

(* A session wired to a test harness: [send_echo] is the only wire, and
   the session itself is threaded back through a ref so responders can
   schedule replies. *)
let make ?interval ?misses ?(on_down = fun () -> ())
    ?(on_restore = fun ~downtime:_ -> ()) engine ~send_echo =
  let t_ref = ref None in
  let xid = ref 0l in
  let fresh_xid () =
    xid := Int32.add !xid 1l;
    !xid
  in
  let t =
    Session.create engine
      ~config:(config ?interval ?misses ())
      ~fresh_xid
      ~send_echo:(fun ~xid -> send_echo (Option.get !t_ref) ~xid)
      ~on_down ~on_restore ()
  in
  t_ref := Some t;
  t

let test_disabled_is_passive () =
  let engine = Engine.create () in
  let t =
    make ~interval:0.0 engine ~send_echo:(fun _ ~xid:_ ->
        Alcotest.fail "disabled session must not send echoes")
  in
  Session.start t;
  Session.note_activity t;
  Engine.run ~until:1.0 engine;
  Alcotest.(check int) "no echoes" 0 (Session.echoes_sent t);
  Alcotest.(check int) "no downs" 0 (Session.downs t);
  Alcotest.(check bool) "promoted by activity" true (Session.state t = Session.Up)

let test_keepalive_loop_stays_up () =
  let engine = Engine.create () in
  (* The peer answers every echo 2 ms later. *)
  let t =
    make engine ~send_echo:(fun t ~xid ->
        ignore
          (Engine.schedule engine ~delay:0.002 (fun () ->
               Session.note_echo_reply t ~xid)))
  in
  Session.note_activity t;
  Session.start t;
  Engine.run ~until:0.095 engine;
  Alcotest.(check bool) "still up" true (Session.state t = Session.Up);
  Alcotest.(check int) "no downs" 0 (Session.downs t);
  Alcotest.(check int) "9 echoes" 9 (Session.echoes_sent t);
  Alcotest.(check int) "all matched" 9 (Session.replies_matched t);
  Alcotest.(check (float 1e-9)) "rtt measured" 0.002
    (Stats.mean (Session.echo_rtts t))

let test_down_after_misses () =
  let engine = Engine.create () in
  let went_down = ref [] in
  let t =
    make
      ~on_down:(fun () -> went_down := Engine.now engine :: !went_down)
      engine
      ~send_echo:(fun _ ~xid:_ -> ())
  in
  Session.note_activity t;
  Session.start t;
  Engine.run ~until:0.1 engine;
  (* Echoes at 10/20/30 ms; the fourth tick finds 3 unanswered. *)
  Alcotest.(check (list (float 1e-9))) "down at the miss budget" [ 0.04 ]
    !went_down;
  Alcotest.(check int) "one down" 1 (Session.downs t);
  Alcotest.(check bool) "degraded" true (Session.is_down t);
  Alcotest.(check bool) "probing the channel" true (Session.probes_sent t >= 1);
  let states = List.map snd (Session.transitions t) in
  Alcotest.(check bool) "passed through probing" true
    (List.mem Session.Probing states);
  Alcotest.(check bool) "reached reconnecting" true
    (Session.state t = Session.Reconnecting)

let test_probe_reply_restores () =
  let engine = Engine.create () in
  let answering = ref false in
  let restored = ref [] in
  let t =
    make
      ~on_restore:(fun ~downtime -> restored := downtime :: !restored)
      engine
      ~send_echo:(fun t ~xid ->
        if !answering then
          ignore
            (Engine.schedule engine ~delay:0.002 (fun () ->
                 Session.note_echo_reply t ~xid)))
  in
  Session.note_activity t;
  Session.start t;
  (* The channel heals at 60 ms: the first reconnect probe (fired at
     40 ms down + 50 ms backoff = 90 ms) gets through. *)
  ignore (Engine.schedule_at engine 0.06 (fun () -> answering := true));
  Engine.run ~until:0.2 engine;
  Alcotest.(check bool) "back up" true (Session.state t = Session.Up);
  Alcotest.(check int) "one recovery" 1 (List.length !restored);
  Alcotest.(check (float 1e-9)) "downtime = probe delay + rtt" 0.052
    (List.hd !restored);
  Alcotest.(check int) "probe replies are not false positives" 0
    (Session.false_positives t);
  Alcotest.(check bool) "keepalive loop restarted" true
    (Session.echoes_sent t > 3)

let test_late_reply_is_false_positive () =
  let engine = Engine.create () in
  let sent = ref [] in
  let t =
    make engine ~send_echo:(fun _ ~xid -> sent := xid :: !sent)
  in
  Session.note_activity t;
  Session.start t;
  (* Down fires at 40 ms; at 50 ms a reply to the very first (pre-
     outage) keepalive finally arrives — the channel was slow, not
     dead. *)
  ignore
    (Engine.schedule_at engine 0.05 (fun () ->
         Session.note_echo_reply t ~xid:(List.nth (List.rev !sent) 0)));
  Engine.run ~until:0.055 engine;
  Alcotest.(check int) "down was declared" 1 (Session.downs t);
  Alcotest.(check int) "and contradicted" 1 (Session.false_positives t);
  Alcotest.(check bool) "restored" true (Session.state t = Session.Up);
  Alcotest.(check (float 1e-9)) "downtime closed" 0.01
    (Session.total_downtime t)

let test_reordered_replies_match_by_xid () =
  let engine = Engine.create () in
  let sent = ref [] in
  let t =
    make engine ~send_echo:(fun _ ~xid -> sent := xid :: !sent)
  in
  Session.note_activity t;
  Session.start t;
  (* Three echoes are in flight (10/20/30 ms); their replies arrive at
     35 ms in reverse order. Matching is by xid, so all three clear. *)
  ignore
    (Engine.schedule_at engine 0.035 (fun () ->
         List.iter (fun xid -> Session.note_echo_reply t ~xid) !sent));
  Engine.run ~until:0.045 engine;
  Alcotest.(check int) "all three matched" 3 (Session.replies_matched t);
  Alcotest.(check int) "no unmatched" 0 (Session.replies_unmatched t);
  Alcotest.(check int) "no downs" 0 (Session.downs t);
  Alcotest.(check int) "no false positives" 0 (Session.false_positives t);
  Alcotest.(check bool) "up" true (Session.state t = Session.Up)

let test_unmatched_reply_counts_as_activity () =
  let engine = Engine.create () in
  let t = make engine ~send_echo:(fun _ ~xid:_ -> ()) in
  Session.note_activity t;
  Session.start t;
  Engine.run ~until:0.025 engine;
  Alcotest.(check bool) "suspicious" true (Session.state t = Session.Probing);
  (* A reply the session never sent (e.g. from before a resync): not
     matched, but still proof of liveness. *)
  Session.note_echo_reply t ~xid:0x7777l;
  Alcotest.(check int) "unmatched counted" 1 (Session.replies_unmatched t);
  Alcotest.(check bool) "activity clears suspicion" true
    (Session.state t = Session.Up)

let test_fail_mode_parsing () =
  List.iter
    (fun (s, expect) ->
      match (Session.fail_mode_of_string s, expect) with
      | Ok m, Some m' ->
          Alcotest.(check string) s
            (Session.fail_mode_to_string m')
            (Session.fail_mode_to_string m)
      | Error _, None -> ()
      | Ok _, None -> Alcotest.fail (s ^ ": expected a parse error")
      | Error e, Some _ -> Alcotest.fail e)
    [
      ("secure", Some Session.Fail_secure);
      ("fail-secure", Some Session.Fail_secure);
      ("fail_secure", Some Session.Fail_secure);
      ("standalone", Some Session.Fail_standalone);
      ("fail-standalone", Some Session.Fail_standalone);
      ("open", None);
    ]

(* Satellite: delay jitter reorders control messages and stretches
   RTTs, but with a sane miss budget the detector must not fire — no
   outage, no false positive, every flow completes. *)
let test_jitter_no_false_alarms () =
  let config =
    {
      (Config.exp_b ~mechanism:Config.Flow_granularity ~rate_mbps:20.0 ~seed:11) with
      Config.echo_interval = 0.005;
      echo_misses = 4;
      faults = { Sdn_sim.Faults.none with Sdn_sim.Faults.jitter_s = 0.008 };
    }
  in
  let r = Experiment.run config in
  Alcotest.(check int) "no outage detected" 0 r.Experiment.outage_detections;
  Alcotest.(check int) "no false positives" 0
    r.Experiment.outage_false_positives;
  Alcotest.(check (float 1e-9)) "no downtime" 0.0 r.Experiment.session_downtime;
  Alcotest.(check int) "every flow completed" r.Experiment.flows_started
    r.Experiment.flows_completed

(* A crash-notified disconnect tears the connection down: replies to
   keepalives that were in flight when it died must not restore the
   session (the peer process is gone), and neither may stray activity
   — only a reply to a reconnect probe, sent after the disconnect,
   proves the peer's new incarnation is up. *)
let test_disconnect_ignores_stale_replies () =
  let engine = Engine.create () in
  let sent = ref [] in
  let t = make engine ~send_echo:(fun _ ~xid -> sent := xid :: !sent) in
  Session.start t;
  Session.note_activity t;
  (* Let one keepalive go out, then kill the peer under it. *)
  Engine.run ~until:0.011 engine;
  let stale_xid = List.hd !sent in
  Session.note_disconnect t;
  Alcotest.(check bool) "down" true (Session.state t = Session.Down);
  Session.note_echo_reply t ~xid:stale_xid;
  Alcotest.(check bool) "stale reply does not restore" true
    (Session.state t = Session.Down);
  Alcotest.(check int) "and is not a false positive" 0
    (Session.false_positives t);
  Session.note_activity t;
  Alcotest.(check bool) "stray activity does not restore" true
    (Session.state t = Session.Down);
  (* Run until a reconnect probe goes out; answering it restores. *)
  let before = List.length !sent in
  Engine.run ~until:0.2 engine;
  let probe_xid = List.hd !sent in
  Alcotest.(check bool) "a probe was sent" true (List.length !sent > before);
  Session.note_echo_reply t ~xid:probe_xid;
  Alcotest.(check bool) "probe reply restores" true
    (Session.state t = Session.Up)

let suite =
  [
    Alcotest.test_case "disabled session is passive" `Quick
      test_disabled_is_passive;
    Alcotest.test_case "crash disconnect ignores stale replies" `Quick
      test_disconnect_ignores_stale_replies;
    Alcotest.test_case "keepalive loop stays up" `Quick
      test_keepalive_loop_stays_up;
    Alcotest.test_case "down after the miss budget" `Quick
      test_down_after_misses;
    Alcotest.test_case "probe reply restores" `Quick test_probe_reply_restores;
    Alcotest.test_case "late reply is a false positive" `Quick
      test_late_reply_is_false_positive;
    Alcotest.test_case "reordered replies match by xid" `Quick
      test_reordered_replies_match_by_xid;
    Alcotest.test_case "unmatched reply is activity" `Quick
      test_unmatched_reply_counts_as_activity;
    Alcotest.test_case "fail-mode parsing" `Quick test_fail_mode_parsing;
    Alcotest.test_case "jitter causes no false alarms" `Slow
      test_jitter_no_false_alarms;
  ]
