(* Tests for workload generation: tags, addressing, the paper's Exp-A
   and Exp-B patterns, TCP scenarios, scheduling. *)

open Sdn_sim
open Sdn_net
open Sdn_traffic

let rng () = Rng.of_int 7

let test_tag_roundtrip () =
  let tag = { Tag.flow_id = 123; seq = 45; flow_packets = 20 } in
  let buf = Bytes.make Tag.size '\000' in
  Tag.write tag buf;
  Alcotest.(check bool) "payload roundtrip" true (Tag.read_payload buf = Some tag)

let test_tag_in_frame () =
  let injections =
    Patterns.exp_a ~rng:(rng ()) ~n_flows:3 ~rate_mbps:10.0 ~frame_size:1000 ()
  in
  List.iteri
    (fun i inj ->
      match Tag.read_frame inj.Patterns.frame with
      | Some tag ->
          Alcotest.(check int) "flow id" i tag.Tag.flow_id;
          Alcotest.(check int) "seq" 0 tag.Tag.seq;
          Alcotest.(check int) "flow packets" 1 tag.Tag.flow_packets
      | None -> Alcotest.fail "tag missing")
    injections

let test_tag_rejects_untagged () =
  Alcotest.(check bool) "no magic" true
    (Tag.read_payload (Bytes.make Tag.size 'x') = None);
  Alcotest.(check bool) "too short" true (Tag.read_frame (Bytes.make 10 'x') = None)

let test_addressing_unique_flows () =
  let a = Addressing.default in
  let keys = List.init 100 (fun flow_id -> Addressing.flow_key a ~flow_id) in
  let distinct = List.sort_uniq Flow_key.compare keys in
  Alcotest.(check int) "all 5-tuples unique" 100 (List.length distinct)

let test_spacing () =
  (* 1000 B at 20 Mbps = 400 us per frame. *)
  Alcotest.(check (float 1e-12)) "gap" 400e-6
    (Patterns.spacing ~rate_mbps:20.0 ~frame_size:1000)

let test_exp_a_structure () =
  let injections =
    Patterns.exp_a ~rng:(rng ()) ~jitter:0.0 ~n_flows:10 ~rate_mbps:20.0
      ~frame_size:1000 ()
  in
  Alcotest.(check int) "count" 10 (List.length injections);
  List.iter
    (fun inj ->
      Alcotest.(check int) "frame size" 1000 (Bytes.length inj.Patterns.frame);
      Alcotest.(check int) "enters port 1" 1 inj.Patterns.in_port)
    injections;
  (* Spacing between consecutive frames is the nominal gap. *)
  let times = List.map (fun i -> i.Patterns.time) injections in
  List.iteri
    (fun i t ->
      Alcotest.(check (float 1e-9)) "even spacing" (float_of_int i *. 400e-6) t)
    times;
  (* Every frame decodes and is a distinct flow. *)
  let keys =
    List.map
      (fun inj ->
        match Packet.decode inj.Patterns.frame with
        | Ok pkt -> Option.get (Packet.flow_key pkt)
        | Error e -> Alcotest.fail e)
      injections
  in
  Alcotest.(check int) "unique flows" 10
    (List.length (List.sort_uniq Flow_key.compare keys))

let test_exp_a_jitter_deterministic () =
  let a = Patterns.exp_a ~rng:(Rng.of_int 3) ~n_flows:20 ~rate_mbps:30.0 ~frame_size:1000 () in
  let b = Patterns.exp_a ~rng:(Rng.of_int 3) ~n_flows:20 ~rate_mbps:30.0 ~frame_size:1000 () in
  let c = Patterns.exp_a ~rng:(Rng.of_int 4) ~n_flows:20 ~rate_mbps:30.0 ~frame_size:1000 () in
  let times l = List.map (fun i -> i.Patterns.time) l in
  Alcotest.(check (list (float 1e-15))) "same seed, same times" (times a) (times b);
  Alcotest.(check bool) "different seed differs" true (times a <> times c)

let test_exp_b_cross_sequence () =
  let injections =
    Patterns.exp_b ~rng:(rng ()) ~jitter:0.0 ~n_flows:10 ~packets_per_flow:4
      ~concurrent:5 ~rate_mbps:50.0 ~frame_size:1000 ()
  in
  Alcotest.(check int) "total packets" 40 (List.length injections);
  (* First five injections are flows 0..4 seq 0 (cross sequence), the
     next five are the same flows at seq 1, etc. *)
  let expected_order =
    [ (0, 0); (1, 0); (2, 0); (3, 0); (4, 0); (0, 1); (1, 1); (2, 1); (3, 1); (4, 1) ]
  in
  let actual =
    List.map (fun i -> (i.Patterns.flow_id, i.Patterns.seq)) injections
  in
  Alcotest.(check (list (pair int int))) "cross sequence"
    expected_order
    (List.filteri (fun i _ -> i < 10) actual);
  (* The second batch starts after the first is fully sent. *)
  let batch2 = List.nth injections 20 in
  Alcotest.(check int) "second batch first flow" 5 batch2.Patterns.flow_id;
  (* Tags carry the per-flow packet count. *)
  List.iter
    (fun inj ->
      match Tag.read_frame inj.Patterns.frame with
      | Some tag -> Alcotest.(check int) "flow_packets" 4 tag.Tag.flow_packets
      | None -> Alcotest.fail "tag missing")
    injections

let test_exp_b_validation () =
  Alcotest.(check bool) "n_flows multiple of concurrent" true
    (try
       ignore
         (Patterns.exp_b ~rng:(rng ()) ~n_flows:7 ~packets_per_flow:2
            ~concurrent:5 ~rate_mbps:10.0 ~frame_size:1000 ());
       false
     with Invalid_argument _ -> true)

let test_udp_burst () =
  let injections =
    Patterns.udp_burst ~rng:(rng ()) ~n_packets:50 ~rate_mbps:100.0 ~frame_size:1000 ()
  in
  Alcotest.(check int) "count" 50 (List.length injections);
  let flows =
    List.sort_uniq compare (List.map (fun i -> i.Patterns.flow_id) injections)
  in
  Alcotest.(check (list int)) "single flow" [ 0 ] flows

let test_tcp_handshake_then_data () =
  let injections =
    Patterns.tcp_handshake_then_data ~rng:(rng ()) ~flow_id:1 ~data_packets:5
      ~rate_mbps:50.0 ~frame_size:1000 ()
  in
  Alcotest.(check int) "3 handshake + 5 data" 8 (List.length injections);
  let decoded =
    List.map
      (fun inj ->
        match Packet.decode inj.Patterns.frame with
        | Ok pkt -> (inj.Patterns.in_port, pkt)
        | Error e -> Alcotest.fail e)
      injections
  in
  (match decoded with
  | (1, syn) :: (2, syn_ack) :: (1, ack) :: data -> (
      let flags pkt =
        match pkt.Packet.l3 with
        | Packet.Ipv4 (_, Packet.Tcp (tcp, _)) -> tcp.Tcp.flags
        | _ -> Alcotest.fail "expected tcp"
      in
      Alcotest.(check bool) "SYN" true (flags syn = Tcp.flags_syn);
      Alcotest.(check bool) "SYN-ACK" true (flags syn_ack = Tcp.flags_syn_ack);
      Alcotest.(check bool) "ACK" true (flags ack = Tcp.flags_ack);
      Alcotest.(check bool) "handshake frames are small" true
        (List.for_all
           (fun inj -> Bytes.length inj.Patterns.frame < 100)
           (List.filteri (fun i _ -> i < 3) injections));
      match data with
      | (_, first_data) :: _ ->
          Alcotest.(check int) "data frames are full size" 1000
            (Packet.size first_data)
      | [] -> Alcotest.fail "expected data")
  | _ -> Alcotest.fail "unexpected handshake shape")

let test_tcp_idle_resume_gap () =
  let injections =
    Patterns.tcp_idle_resume ~rng:(rng ()) ~flow_id:1 ~first_burst:3
      ~idle_gap:10.0 ~second_burst:3 ~rate_mbps:50.0 ~frame_size:1000 ()
  in
  Alcotest.(check int) "3 + 3 + 3" 9 (List.length injections);
  let times = List.map (fun i -> i.Patterns.time) injections in
  let gaps =
    List.map2 (fun a b -> b -. a)
      (List.filteri (fun i _ -> i < 8) times)
      (List.tl times)
  in
  let big_gaps = List.filter (fun g -> g > 9.0) gaps in
  Alcotest.(check int) "exactly one idle gap" 1 (List.length big_gaps)

let test_pktgen_schedules_at_times () =
  let engine = Engine.create () in
  let injections =
    Patterns.exp_a ~rng:(rng ()) ~jitter:0.0 ~n_flows:5 ~rate_mbps:10.0
      ~frame_size:1000 ()
  in
  let delivered = ref [] in
  Pktgen.schedule engine
    ~inject:(fun ~in_port:_ frame ->
      delivered := (Engine.now engine, frame) :: !delivered)
    injections;
  Engine.run engine;
  Alcotest.(check int) "all delivered" 5 (List.length !delivered);
  List.iter2
    (fun inj (t, frame) ->
      Alcotest.(check (float 1e-12)) "at planned time" inj.Patterns.time t;
      Alcotest.(check bytes) "right frame" inj.Patterns.frame frame)
    injections (List.rev !delivered)

let test_pktgen_stats () =
  let injections =
    Patterns.exp_a ~rng:(rng ()) ~jitter:0.0 ~n_flows:100 ~rate_mbps:40.0
      ~frame_size:1000 ()
  in
  let stats = Pktgen.stats_of injections in
  Alcotest.(check int) "count" 100 stats.Pktgen.injected;
  Alcotest.(check int) "bytes" 100_000 stats.Pktgen.bytes;
  let rate = Pktgen.offered_rate_mbps stats in
  Alcotest.(check bool)
    (Printf.sprintf "offered rate near nominal (got %g)" rate)
    true
    (abs_float (rate -. 40.0) < 1.0)

let suite =
  [
    Alcotest.test_case "tag roundtrip" `Quick test_tag_roundtrip;
    Alcotest.test_case "tag embedded in frames" `Quick test_tag_in_frame;
    Alcotest.test_case "tag rejects untagged data" `Quick test_tag_rejects_untagged;
    Alcotest.test_case "addressing gives unique flows" `Quick
      test_addressing_unique_flows;
    Alcotest.test_case "spacing math" `Quick test_spacing;
    Alcotest.test_case "exp-a structure" `Quick test_exp_a_structure;
    Alcotest.test_case "exp-a deterministic jitter" `Quick
      test_exp_a_jitter_deterministic;
    Alcotest.test_case "exp-b cross sequence" `Quick test_exp_b_cross_sequence;
    Alcotest.test_case "exp-b validation" `Quick test_exp_b_validation;
    Alcotest.test_case "udp burst" `Quick test_udp_burst;
    Alcotest.test_case "tcp handshake then data" `Quick test_tcp_handshake_then_data;
    Alcotest.test_case "tcp idle/resume gap" `Quick test_tcp_idle_resume_gap;
    Alcotest.test_case "pktgen schedules at times" `Quick
      test_pktgen_schedules_at_times;
    Alcotest.test_case "pktgen stats" `Quick test_pktgen_stats;
  ]
