test/test_traffic.ml: Addressing Alcotest Bytes Engine Flow_key List Option Packet Patterns Pktgen Printf Rng Sdn_net Sdn_sim Sdn_traffic Tag Tcp
