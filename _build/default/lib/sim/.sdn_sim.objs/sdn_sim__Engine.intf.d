lib/sim/engine.mli:
