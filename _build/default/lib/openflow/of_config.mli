(** OpenFlow 1.0 switch configuration ([GET_CONFIG_REPLY] /
    [SET_CONFIG] body).

    [miss_send_len] is how the controller configures the very quantity
    the paper studies: the number of bytes of a buffered miss-match
    packet that ride inside the [PACKET_IN] ("the actual length of the
    data field in the message depends on how to configure the parameter
    of the pkt_in message", Section IV). *)

type t = {
  flags : int;  (** fragment handling flags; 0 = FRAG_NORMAL *)
  miss_send_len : int;
}

val default : t
(** Flags 0, miss_send_len 128 (the OpenFlow 1.0 default). *)

val body_size : int
(** 4 bytes. *)

val write_body : t -> Bytes.t -> int -> unit
val read_body : Bytes.t -> int -> len:int -> (t, string) result

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
