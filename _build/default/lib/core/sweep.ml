open Sdn_sim

type point = { rate_mbps : float; results : Experiment.result list }

type series = { label : string; points : point list }

let default_rates = List.init 20 (fun i -> float_of_int ((i + 1) * 5))

let run ~label ?(rates = default_rates) ?(reps = 20) make_config =
  let points =
    List.map
      (fun rate_mbps ->
        let results =
          List.init reps (fun rep ->
              let seed = (int_of_float (rate_mbps *. 10.0) * 1000) + rep + 1 in
              Experiment.run (make_config ~rate_mbps ~seed))
        in
        { rate_mbps; results })
      rates
  in
  { label; points }

let stats_of_point point f =
  let s = Stats.create () in
  List.iter (fun r -> Stats.add s (f r)) point.results;
  s

let point_mean point f = Stats.mean (stats_of_point point f)
let point_sd point f = Stats.stddev (stats_of_point point f)

let point_max point f =
  let s = stats_of_point point f in
  if Stats.count s = 0 then 0.0 else Stats.max s

let stats_of_series series f =
  let s = Stats.create () in
  List.iter
    (fun point -> List.iter (fun r -> Stats.add s (f r)) point.results)
    series.points;
  s

let series_mean series f = Stats.mean (stats_of_series series f)
let series_sd series f = Stats.stddev (stats_of_series series f)

let series_max series f =
  let s = stats_of_series series f in
  if Stats.count s = 0 then 0.0 else Stats.max s

let reduction_pct ~baseline ~improved =
  if baseline = 0.0 then 0.0 else (baseline -. improved) /. baseline *. 100.0
