(* The chaos scenario: sweep control-channel loss rate against buffer
   mechanism and report how each mechanism survives an unreliable
   control channel — flow-completion ratio, packet delivery, re-request
   effort and time-to-recovery. Everything here is driven by the
   deterministic fault plans of {!Sdn_sim.Faults}, so two runs with the
   same seed produce byte-identical reports. *)

open Sdn_sim
open Sdn_measure

type point = {
  config : Config.t;
  loss_rate : float;
  result : Experiment.result;
}

let default_loss_rates = [ 0.0; 0.05; 0.1; 0.2 ]

let default_mechanisms =
  [ Config.No_buffer; Config.Packet_granularity; Config.Flow_granularity ]

(* Multi-packet flows are the interesting workload under control loss:
   a lost buffer release strands the whole tail of a chain, which is
   exactly what the re-request mechanism must recover. *)
let default_base ~seed =
  Config.exp_b ~mechanism:Config.Flow_granularity ~rate_mbps:20.0 ~seed

let point_config ~base ~mechanism ~loss_rate =
  let faults = { base.Config.faults with Faults.loss_rate } in
  {
    base with
    Config.mechanism;
    buffer_capacity =
      (if mechanism = Config.No_buffer then 0 else base.Config.buffer_capacity);
    control_loss_rate = 0.0;
    faults;
  }

let run ?(mechanisms = default_mechanisms) ?(loss_rates = default_loss_rates)
    ?jobs ~base () =
  let jobs = match jobs with Some j -> j | None -> base.Config.jobs in
  let specs =
    List.concat_map
      (fun mechanism ->
        List.map
          (fun loss_rate ->
            (loss_rate, point_config ~base ~mechanism ~loss_rate))
          loss_rates)
      mechanisms
  in
  let configs = Array.of_list (List.map snd specs) in
  let results =
    Exec.run_experiments ~jobs
      ~label:(fun i ->
        let loss_rate, config = List.nth specs i in
        Printf.sprintf "chaos/%s/loss=%g" (Config.label config) loss_rate)
      configs
  in
  List.mapi
    (fun i (loss_rate, config) -> { config; loss_rate; result = results.(i) })
    specs

let mechanism_name = function
  | Config.No_buffer -> "no-buffer"
  | Config.Packet_granularity -> "packet-granularity"
  | Config.Flow_granularity -> "flow-granularity"

let completion_ratio (r : Experiment.result) =
  if r.Experiment.flows_started = 0 then 1.0
  else
    float_of_int r.Experiment.flows_completed
    /. float_of_int r.Experiment.flows_started

let row p =
  let r = p.result in
  [
    mechanism_name p.config.Config.mechanism;
    Printf.sprintf "%.0f%%" (p.loss_rate *. 100.0);
    Printf.sprintf "%d/%d" r.Experiment.flows_completed
      r.Experiment.flows_started;
    Printf.sprintf "%.1f%%" (completion_ratio r *. 100.0);
    Printf.sprintf "%d/%d" r.Experiment.packets_out r.Experiment.packets_in;
    string_of_int r.Experiment.pkt_in_resends;
    string_of_int r.Experiment.flows_recovered;
    string_of_int r.Experiment.flows_abandoned;
    (if r.Experiment.recovery_delay.Experiment.count = 0 then "-"
     else Report.fmt_ms r.Experiment.recovery_delay.Experiment.mean);
    (if r.Experiment.recovery_delay.Experiment.count = 0 then "-"
     else Report.fmt_ms r.Experiment.recovery_delay.Experiment.max);
  ]

let header =
  [
    "mechanism";
    "loss";
    "flows";
    "completion";
    "packets";
    "resends";
    "recovered";
    "abandoned";
    "t_rec mean (ms)";
    "t_rec max (ms)";
  ]

let recovery_histogram points =
  let stats = Stats.create () in
  List.iter
    (fun p ->
      Array.iter (Stats.add stats) p.result.Experiment.recovery_delay_samples)
    points;
  if Stats.count stats = 0 then None
  else
    Some
      (Report.histogram ~bins:8
         ~fmt:(fun s -> Printf.sprintf "%.1fms" (s *. 1e3))
         stats)

let report points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "chaos: control-channel loss sweep (deterministic fault plans)\n\n";
  Buffer.add_string buf (Report.table ~header ~rows:(List.map row points));
  Buffer.add_char buf '\n';
  (match recovery_histogram points with
  | None -> ()
  | Some h ->
      Buffer.add_string buf "\ntime-to-recovery histogram (all points)\n";
      Buffer.add_string buf h;
      Buffer.add_char buf '\n');
  Buffer.contents buf

let print_report points = print_string (report points)

(* ------------------------------------------------------------------ *)
(* Outage sweep: a scheduled control-channel blackout against the
   session lifecycle.  Where the loss sweep stresses the re-request
   machinery with i.i.d. drops, the outage sweep kills the channel
   outright for a window and measures what the echo keepalive detects,
   how each fail mode degrades, and what the reconnect resyncs. *)

type outage_point = {
  config : Config.t;
  fail_mode : Config.fail_mode;
  duration : float;
  result : Experiment.result;
}

let default_outage_durations = [ 0.05; 0.1 ]
let default_fail_modes = [ Config.Fail_secure; Config.Fail_standalone ]

(* Traffic starts at 0.05s; 0.15s puts the blackout mid-run for the
   default Exp-B workload so misses arrive while the session is Down. *)
let outage_start = 0.15

let default_outage_base ~seed =
  let base =
    Config.exp_b ~mechanism:Config.Flow_granularity ~rate_mbps:20.0 ~seed
  in
  { base with Config.echo_interval = 0.01; echo_misses = 2 }

let outage_point_config ~base ~mechanism ~fail_mode ~duration =
  let faults =
    {
      base.Config.faults with
      Faults.outages =
        [ { Faults.start_s = outage_start; stop_s = outage_start +. duration } ];
    }
  in
  {
    base with
    Config.mechanism;
    buffer_capacity =
      (if mechanism = Config.No_buffer then 0 else base.Config.buffer_capacity);
    control_loss_rate = 0.0;
    fail_mode;
    faults;
  }

let run_outage ?(mechanisms = default_mechanisms)
    ?(fail_modes = default_fail_modes)
    ?(durations = default_outage_durations) ?jobs ~base () =
  let jobs = match jobs with Some j -> j | None -> base.Config.jobs in
  let specs =
    List.concat_map
      (fun mechanism ->
        List.concat_map
          (fun fail_mode ->
            List.map
              (fun duration ->
                ( (fail_mode, duration),
                  outage_point_config ~base ~mechanism ~fail_mode ~duration ))
              durations)
          fail_modes)
      mechanisms
  in
  let configs = Array.of_list (List.map snd specs) in
  let results =
    Exec.run_experiments ~jobs
      ~label:(fun i ->
        let (fail_mode, duration), config = List.nth specs i in
        Printf.sprintf "outage/%s/%s/%.0fms" (Config.label config)
          (Sdn_switch.Session.fail_mode_to_string fail_mode)
          (duration *. 1e3))
      configs
  in
  List.mapi
    (fun i ((fail_mode, duration), config) ->
      { config; fail_mode; duration; result = results.(i) })
    specs

let fail_mode_name = function
  | Config.Fail_secure -> "fail-secure"
  | Config.Fail_standalone -> "fail-standalone"

(* Time from the outage opening to the switch declaring Down; "-" when
   the keepalive never noticed (outage shorter than the miss budget). *)
let detect_latency p =
  let rec first_down = function
    | [] -> None
    | (time, state) :: rest ->
        if state = "down" && time >= outage_start then Some (time -. outage_start)
        else first_down rest
  in
  first_down p.result.Experiment.session_transitions

let outage_row p =
  let r = p.result in
  [
    mechanism_name p.config.Config.mechanism;
    fail_mode_name p.fail_mode;
    Printf.sprintf "%.0fms" (p.duration *. 1e3);
    string_of_int r.Experiment.outage_detections;
    (match detect_latency p with
    | None -> "-"
    | Some d -> Report.fmt_ms d);
    Report.fmt_ms r.Experiment.session_downtime;
    Printf.sprintf "%.1f%%" (completion_ratio r *. 100.0);
    Printf.sprintf "%d/%d" r.Experiment.packets_out r.Experiment.packets_in;
    string_of_int r.Experiment.standalone_frames;
    string_of_int r.Experiment.fail_secure_drops;
    Printf.sprintf "%d/%d/%d" r.Experiment.chains_frozen
      r.Experiment.chains_resumed r.Experiment.chains_expired;
    string_of_int r.Experiment.controller_resyncs;
    string_of_int r.Experiment.outage_false_positives;
  ]

let outage_header =
  [
    "mechanism";
    "fail mode";
    "outage";
    "downs";
    "t_detect (ms)";
    "downtime (ms)";
    "completion";
    "packets";
    "standalone";
    "secure-drop";
    "froz/res/exp";
    "resyncs";
    "false+";
  ]

let outage_report points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "chaos: control-channel outage sweep (blackout at t=%.3fs, echo \
        keepalive driven)\n\n"
       outage_start);
  Buffer.add_string buf
    (Report.table ~header:outage_header ~rows:(List.map outage_row points));
  Buffer.add_char buf '\n';
  Buffer.add_string buf "\nsession timelines\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%-18s %-15s %5.0fms  %s\n"
           (mechanism_name p.config.Config.mechanism)
           (fail_mode_name p.fail_mode) (p.duration *. 1e3)
           (Report.timeline p.result.Experiment.session_transitions)))
    points;
  Buffer.contents buf

let print_outage_report points = print_string (outage_report points)

(* ------------------------------------------------------------------ *)
(* Crash sweep: a scheduled node crash (switch or controller, warm or
   cold restart) mid-incast.  Where the outage sweep severs only the
   channel, the crash sweep kills the process — buffered chains are
   dropped or salvaged, tables survive or are wiped — and the report
   compares packets lost, recovery time to steady state and the
   reconciliation effort spent re-converging the flow state. *)

type crash_point = {
  config : Config.t;
  node : Sdn_sim.Faults.crash_node;
  mode : Sdn_sim.Faults.restart_mode;
  down : float;
  result : Experiment.result;
}

let default_crash_nodes = [ Faults.Switch_node; Faults.Controller_node ]
let default_crash_modes = [ Faults.Warm; Faults.Cold ]
let default_crash_downs = [ 0.05 ]

(* Same instant as the outage sweep: mid-run for the default Exp-B
   workload, so the crash lands while misses are in flight. *)
let crash_start = outage_start

(* The keepalive must be armed: it is what notices a dead peer and
   drives the reconnect machinery on both sides. *)
let default_crash_base = default_outage_base

let crash_point_config ~base ~mechanism ~node ~mode ~down =
  let faults =
    {
      base.Config.faults with
      Faults.crashes =
        [ { Faults.node; at_s = crash_start; down_s = down; mode } ];
    }
  in
  {
    base with
    Config.mechanism;
    buffer_capacity =
      (if mechanism = Config.No_buffer then 0 else base.Config.buffer_capacity);
    control_loss_rate = 0.0;
    faults;
  }

let run_crash ?(mechanisms = default_mechanisms)
    ?(nodes = default_crash_nodes) ?(modes = default_crash_modes)
    ?(downs = default_crash_downs) ?jobs ~base () =
  let jobs = match jobs with Some j -> j | None -> base.Config.jobs in
  let specs =
    List.concat_map
      (fun mechanism ->
        List.concat_map
          (fun node ->
            List.concat_map
              (fun mode ->
                List.map
                  (fun down ->
                    ( (node, mode, down),
                      crash_point_config ~base ~mechanism ~node ~mode ~down ))
                  downs)
              modes)
          nodes)
      mechanisms
  in
  let configs = Array.of_list (List.map snd specs) in
  let results =
    Exec.run_experiments ~jobs
      ~label:(fun i ->
        let (node, mode, down), config = List.nth specs i in
        Printf.sprintf "crash/%s/%s/%s/%.0fms" (Config.label config)
          (Faults.crash_node_to_string node)
          (Faults.restart_mode_to_string mode)
          (down *. 1e3))
      configs
  in
  List.mapi
    (fun i ((node, mode, down), config) ->
      { config; node; mode; down; result = results.(i) })
    specs

let crash_row p =
  let r = p.result in
  [
    mechanism_name p.config.Config.mechanism;
    Faults.crash_node_to_string p.node;
    Faults.restart_mode_to_string p.mode;
    Printf.sprintf "%.0fms" (p.down *. 1e3);
    string_of_int r.Experiment.packets_lost_to_crash;
    string_of_int r.Experiment.crash_msgs_lost;
    (if r.Experiment.crash_recovery.Experiment.count = 0 then "-"
     else Report.fmt_ms r.Experiment.crash_recovery.Experiment.mean);
    Printf.sprintf "%d/%d" r.Experiment.reconcile_audits
      r.Experiment.reconcile_installs;
    string_of_int r.Experiment.overload_sheds;
    Printf.sprintf "%.1f%%" (completion_ratio r *. 100.0);
    Printf.sprintf "%d/%d" r.Experiment.packets_out r.Experiment.packets_in;
    Printf.sprintf "%d/%d/%d" r.Experiment.chains_frozen
      r.Experiment.chains_resumed r.Experiment.chains_expired;
  ]

let crash_header =
  [
    "mechanism";
    "node";
    "restart";
    "down";
    "pkts lost";
    "msgs lost";
    "t_recover (ms)";
    "audits/installs";
    "sheds";
    "completion";
    "packets";
    "froz/res/exp";
  ]

let crash_report points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "chaos: node crash-restart sweep (crash at t=%.3fs, stateful \
        recovery)\n\n"
       crash_start);
  Buffer.add_string buf
    (Report.table ~header:crash_header ~rows:(List.map crash_row points));
  Buffer.add_char buf '\n';
  Buffer.add_string buf "\ncrash timelines\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%-18s %-10s %-4s %5.0fms  %s\n"
           (mechanism_name p.config.Config.mechanism)
           (Faults.crash_node_to_string p.node)
           (Faults.restart_mode_to_string p.mode)
           (p.down *. 1e3)
           (Report.timeline ~events:p.result.Experiment.crash_events
              p.result.Experiment.session_transitions)))
    points;
  Buffer.contents buf

let print_crash_report points = print_string (crash_report points)

(* ------------------------------------------------------------------ *)
(* Buffer-policy sweep: the shared-buffer sharing disciplines of
   {!Sdn_switch.Buf_policy} swept against pool size under an incast
   burst.  An 80 Mbps burst slams into a 20 Mbps egress uplink, so both
   the ingress packet pool (misses waiting on rule installs) and the
   egress classes (backlog behind the slow wire) fight over the shared
   pool; the report compares delivery, drops and per-class occupancy /
   threshold behaviour across policies and pool sizes. *)

type policy_point = {
  config : Config.t;
  policy : Sdn_switch.Buf_policy.kind;
  buffer : int;
  result : Experiment.result;
}

let default_policies =
  [
    Sdn_switch.Buf_policy.Static;
    Sdn_switch.Buf_policy.Sharing;
    Sdn_switch.Buf_policy.Dt { alpha = 2.0 };
    Sdn_switch.Buf_policy.Tdt { alpha0 = 2.0; target_delay = 2e-3 };
  ]

let default_policy_buffers = [ 16; 64; 256 ]

(* Flows spread deterministically over three strict-priority classes by
   source port; the tight capacities are what the sharing policies
   relieve (or refuse to). *)
let policy_classify (ctx : Sdn_controller.App.context) =
  match ctx.Sdn_controller.App.flow_key with
  | Some key -> Int32.of_int (key.Sdn_net.Flow_key.src_port mod 3)
  | None -> 0l

let default_policy_queues =
  [
    { Sdn_switch.Egress_queue.queue_id = 0l; priority = 0; weight = 1; capacity = 32 };
    { Sdn_switch.Egress_queue.queue_id = 1l; priority = 1; weight = 2; capacity = 32 };
    { Sdn_switch.Egress_queue.queue_id = 2l; priority = 2; weight = 4; capacity = 16 };
  ]

let default_policy_base ~seed =
  {
    Config.default with
    Config.mechanism = Config.Packet_granularity;
    buffer_capacity = 64;
    rate_mbps = 80.0;
    workload = Config.Udp_burst { n_packets = 400 };
    egress_bandwidth_bps = Some 20e6;
    qos =
      Some
        {
          Config.classify = policy_classify;
          policy = Sdn_switch.Egress_queue.Strict_priority;
          queues = default_policy_queues;
        };
    seed;
  }

let policy_point_config ~base ~policy ~buffer =
  { base with Config.buf_policy = Some policy; buffer_capacity = buffer }

let run_policy ?(policies = default_policies)
    ?(buffers = default_policy_buffers) ?jobs ~base () =
  let jobs = match jobs with Some j -> j | None -> base.Config.jobs in
  let specs =
    List.concat_map
      (fun policy ->
        List.map
          (fun buffer ->
            ((policy, buffer), policy_point_config ~base ~policy ~buffer))
          buffers)
      policies
  in
  let configs = Array.of_list (List.map snd specs) in
  let results =
    Exec.run_experiments ~jobs
      ~label:(fun i ->
        let _, config = List.nth specs i in
        Printf.sprintf "policy/%s" (Config.label config))
      configs
  in
  List.mapi
    (fun i ((policy, buffer), config) ->
      { config; policy; buffer; result = results.(i) })
    specs

let pool_rejected (r : Experiment.result) =
  List.fold_left
    (fun acc (s : Sdn_switch.Buf_policy.class_stat) ->
      acc + s.Sdn_switch.Buf_policy.rejected)
    0 r.Experiment.pool_classes

let policy_row p =
  let r = p.result in
  [
    Sdn_switch.Buf_policy.kind_to_string p.policy;
    string_of_int p.buffer;
    Printf.sprintf "%d/%d" r.Experiment.packets_out r.Experiment.packets_in;
    string_of_int r.Experiment.packets_dropped;
    string_of_int r.Experiment.full_packet_fallbacks;
    string_of_int r.Experiment.buffer_max_in_use;
    string_of_int (pool_rejected r);
    string_of_int r.Experiment.egress_misrouted;
    Report.fmt_ms r.Experiment.forwarding_delay.Experiment.mean;
  ]

let policy_header =
  [
    "policy";
    "buffer";
    "packets";
    "dropped";
    "fallbacks";
    "buf max";
    "pool-rej";
    "misrouted";
    "fwd mean (ms)";
  ]

let policy_report points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "chaos: shared-buffer policy sweep (incast burst, policy x pool size)\n\n";
  Buffer.add_string buf
    (Report.table ~header:policy_header ~rows:(List.map policy_row points));
  Buffer.add_char buf '\n';
  Buffer.add_string buf "\npool classes\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%s (buffer %d)\n"
           (Sdn_switch.Buf_policy.kind_to_string p.policy)
           p.buffer);
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Format.asprintf "  %a\n" Sdn_switch.Buf_policy.pp_class_stat s))
        p.result.Experiment.pool_classes)
    points;
  Buffer.contents buf

let print_policy_report points = print_string (policy_report points)
