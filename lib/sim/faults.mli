(** Deterministic control-channel fault injection.

    The paper's flow-granularity mechanism exists because the control
    channel can fail to answer (Algorithm 1's re-request timeout), and
    measurement studies of OpenFlow deployments show control-path loss
    is bursty and delay-correlated rather than i.i.d. A {!t} is a
    {e fault plan}: a declarative {!spec} plus a private {!Rng.t}
    stream, consulted once per message by {!Link}. Because the plan
    owns its generator and draws in a fixed order per message, the same
    seed and spec produce the same fault schedule, message for message
    — chaos runs are exactly reproducible.

    Four fault classes compose (all optional, all off in {!none}):

    - {b independent loss}: classic Bernoulli drop with probability
      [loss_rate];
    - {b Gilbert–Elliott bursts}: a two-state Markov chain (good/bad)
      with per-state loss probabilities, modelling congestion episodes;
    - {b delay jitter}: uniform extra delivery delay in
      [\[0, jitter_s\]], which reorders messages in flight;
    - {b outage windows}: scheduled intervals [\[start_s, stop_s)]
      during which every message is dropped (link flap, controller
      restart). *)

type burst = {
  p_good_to_bad : float;  (** per-message P(good -> bad) *)
  p_bad_to_good : float;  (** per-message P(bad -> good) *)
  loss_good : float;  (** drop probability while in the good state *)
  loss_bad : float;  (** drop probability while in the bad state *)
}
(** Gilbert–Elliott parameters. The chain starts in the good state and
    transitions once per judged message, after the loss draw. *)

type outage = { start_s : float; stop_s : float }
(** Every message judged at a time in [\[start_s, stop_s)] is dropped. *)

type restart_mode =
  | Warm  (** soft state salvaged where possible (buffered chains frozen) *)
  | Cold  (** all soft state lost: buffers, flow table, microflow cache *)

val restart_mode_to_string : restart_mode -> string
val restart_mode_of_string : string -> (restart_mode, string) result

type crash_node = Switch_node | Controller_node

val crash_node_to_string : crash_node -> string
val crash_node_of_string : string -> (crash_node, string) result

type crash = {
  node : crash_node;  (** which process dies *)
  at_s : float;  (** crash instant, seconds of simulation time *)
  down_s : float;  (** how long the process stays dead before restarting *)
  mode : restart_mode;
}
(** One scheduled node crash. Crashes are {e schedule-only}: unlike the
    message-level fault classes they are never consulted by {!judge}
    and draw nothing from the plan's RNG — interpretation belongs to
    the scenario layer, which kills and restarts the node at the
    scheduled instants. A spec with crashes but no message faults
    therefore leaves every message-level schedule byte-identical to
    {!none}. *)

type spec = {
  loss_rate : float;  (** independent loss probability, in [\[0, 1\]] *)
  burst : burst option;
  jitter_s : float;  (** max extra delivery delay, seconds *)
  outages : outage list;
  crashes : crash list;
}

val none : spec
(** No faults: zero loss, no bursts, no jitter, no outages. *)

val is_none : spec -> bool

val validate : spec -> (spec, string) result
(** Check every probability is in [\[0, 1\]], jitter is non-negative and
    outage windows are well-formed ([start_s <= stop_s]). *)

val spec_to_string : spec -> string
(** Canonical textual form, re-parsable by {!spec_of_string}. *)

val spec_of_string : string -> (spec, string) result
(** Parse the CLI [--faults] grammar: comma-separated fields
    [loss=P], [burst=PGB:PBG:LBAD\[:LGOOD\]], [jitter=S],
    [outage=T0-T1\[+T0-T1...\]] and
    [crash=NODE:AT:DOWN:MODE\[+NODE:AT:DOWN:MODE...\]] with [NODE] one
    of [switch]/[sw]/[controller]/[ctl] and [MODE] one of
    [warm]/[cold]; the empty string and ["none"] are {!none}. Times
    are seconds (floats). *)

val crashes_for : spec -> crash_node -> crash list
(** The spec's crashes for one node, sorted by crash time (stable). *)

type reason = Independent_loss | Burst_loss | Outage
(** Why a message was dropped, for per-class accounting. *)

val reason_to_string : reason -> string

type verdict = Deliver of { jitter_s : float } | Drop of reason

type t
(** A fault plan: spec, private RNG stream, burst-chain state and
    counters. *)

val create : ?spec:spec -> rng:Rng.t -> unit -> t
(** [create ~spec ~rng ()] is a fresh plan. [spec] defaults to
    {!none}; invalid specs raise [Invalid_argument]. The generator is
    owned by the plan: do not draw from it elsewhere, or the schedule
    stops being a pure function of the seed. *)

val judge : t -> now:float -> verdict
(** Decide one message's fate at simulation time [now]. Draw order per
    message is fixed (outage check, burst loss + transition,
    independent loss, jitter), so schedules are reproducible. *)

val spec : t -> spec
val in_bad_state : t -> bool
(** Current Gilbert–Elliott chain state ([false] when no burst model). *)

val in_outage : t -> now:float -> bool

(** {2 Counters} *)

val judged : t -> int
val dropped : t -> int
(** Total drops, all classes. *)

val dropped_by : t -> reason -> int
val delayed : t -> int
(** Messages delivered with non-zero extra delay. *)

val total_jitter_s : t -> float
