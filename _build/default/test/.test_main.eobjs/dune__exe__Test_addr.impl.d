test/test_addr.ml: Alcotest Bytes Ip List Mac Printf Result Sdn_net Sdn_sim Units
