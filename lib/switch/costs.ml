open Sdn_sim

type service_distribution = Lognormal | Exponential

type t = {
  kernel_cores : int;
  userspace_cores : int;
  kernel_rx_cost : float;
  kernel_fwd_cost : float;
  kernel_upcall_cost : float;
  upcall_base_cost : float;
  upcall_per_byte : float;
  buffer_alloc_cost : float;
  flow_buffer_first_cost : float;
  flow_buffer_append_cost : float;
  pkt_out_base_cost : float;
  pkt_out_per_byte : float;
  flow_mod_install_cost : float;
  flow_mod_apply_latency : float;
  release_per_packet_cost : float;
  bus_bandwidth_bps : float;
  bus_descriptor_bytes : int;
  amortization_floor : float;
  amortization_scale : int;
  service_noise_sigma : float;
  service_distribution : service_distribution;
}

let default =
  {
    kernel_cores = 2;
    userspace_cores = 2;
    kernel_rx_cost = 8e-6;
    kernel_fwd_cost = 12e-6;
    kernel_upcall_cost = 45e-6;
    upcall_base_cost = 170e-6;
    upcall_per_byte = 12e-9;
    buffer_alloc_cost = 24e-6;
    flow_buffer_first_cost = 26e-6;
    flow_buffer_append_cost = 8e-6;
    pkt_out_base_cost = 25e-6;
    pkt_out_per_byte = 12e-9;
    flow_mod_install_cost = 20e-6;
    flow_mod_apply_latency = 0.2e-3;
    release_per_packet_cost = 10e-6;
    bus_bandwidth_bps = 150e6;
    bus_descriptor_bytes = 32;
    amortization_floor = 0.25;
    amortization_scale = 6;
    service_noise_sigma = 0.08;
    service_distribution = Lognormal;
  }

let noise t rng =
  match t.service_distribution with
  | Lognormal -> fun () -> Rng.lognormal_factor rng ~sigma:t.service_noise_sigma
  | Exponential -> fun () -> Rng.exponential rng ~mean:1.0

let amortization t ~queue_len =
  let q = float_of_int (max 0 queue_len) in
  let scale = float_of_int (max 1 t.amortization_scale) in
  t.amortization_floor
  +. ((1.0 -. t.amortization_floor) /. (1.0 +. (q /. scale)))
