open Sdn_sim

let every engine ~dt ~until f =
  if dt <= 0.0 then invalid_arg "Sampler.every: dt must be positive";
  let rec tick () =
    let now = Engine.now engine in
    if now <= until then begin
      f ~time:now;
      ignore (Engine.schedule engine ~delay:dt tick)
    end
  in
  ignore (Engine.schedule engine ~delay:dt tick)

let cpu_utilization engine ~dt ~until cpus =
  let series = Timeseries.create () in
  let last = ref (List.map (fun cpu -> Cpu.busy_core_seconds cpu) cpus) in
  every engine ~dt ~until (fun ~time ->
      let current = List.map (fun cpu -> Cpu.busy_core_seconds cpu) cpus in
      let busy =
        List.fold_left2 (fun acc now before -> acc +. now -. before) 0.0 current
          !last
      in
      last := current;
      Timeseries.add series ~time ~value:(busy /. dt *. 100.0));
  series

let gauge engine ~dt ~until f =
  let series = Timeseries.create () in
  every engine ~dt ~until (fun ~time -> Timeseries.add series ~time ~value:(f ()));
  series
