lib/core/experiment.mli: Config Format Sdn_sim Stats
