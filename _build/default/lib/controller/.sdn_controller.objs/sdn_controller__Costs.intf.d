lib/controller/costs.mli:
