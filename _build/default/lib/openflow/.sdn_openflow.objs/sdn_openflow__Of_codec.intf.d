lib/openflow/of_codec.mli: Bytes Format Of_config Of_error Of_ext Of_features Of_flow_mod Of_flow_removed Of_packet_in Of_packet_out Of_port_status Of_stats Of_wire
