open Sdn_sim
open Sdn_net
open Sdn_openflow
module Session = Sdn_switch.Session

type release_strategy = [ `Pair | `Flow_mod_release ]

type counters = {
  pkt_ins_received : int;
  flow_mods_sent : int;
  pkt_outs_sent : int;
  drops_decided : int;
  errors_received : int;
  errors_sent : int;
  echo_requests : int;
  flow_removed_received : int;
  port_changes : int;
  decode_failures : int;
  switch_downs : int;
  resyncs : int;
  crashes : int;
  crash_lost_messages : int;
  reconcile_audits : int;
  reconcile_installs : int;
}

(* Per-switch session state: the liveness tracker plus the handshake
   parameters remembered so they can be re-pushed verbatim on resync,
   and the controller's view of the entries it has installed — the
   basis of the post-rejoin flow-state reconciliation pass. The view is
   keyed by the printed (match, priority) pair so no polymorphic
   equality over match records is involved. *)
type session = {
  tracker : Session.t;
  mutable enable_flow_buffer : Of_ext.backoff option;
  mutable miss_send_len : int option;
  flow_view : (string, Of_flow_mod.t) Hashtbl.t;
  mutable reconciling : bool;
  mutable reconcile_rounds : int;
  mutable needs_reconcile : bool;
      (* set when a crash severed this session; the next resync then
         runs the reconciliation pass. Plain outages never set it, so
         crash-free runs stay byte-identical. *)
}

type t = {
  engine : Engine.t;
  app : App.t;
  costs : Costs.t;
  check : Sdn_check.Check.t option;
  release_strategy : release_strategy;
  cpu : Cpu.t;
  links : (int, Bytes.t Link.t) Hashtbl.t;  (** switch id -> downlink *)
  echo_interval : float;
  echo_misses : int;
  sessions : (int, session) Hashtbl.t;
  mutable next_xid : int32;
  (* Sliding window of recently-arrived message bytes, for the GC
     pressure factor. *)
  recent : (float * int) Queue.t;
  mutable recent_bytes : int;
  mutable last_gc_pause : float;
  mutable pkt_ins_received : int;
  mutable flow_mods_sent : int;
  mutable pkt_outs_sent : int;
  mutable drops_decided : int;
  mutable errors_received : int;
  mutable errors_sent : int;
  mutable echo_requests : int;
  mutable flow_removed_received : int;
  mutable port_changes : int;
  mutable decode_failures : int;
  mutable resyncs : int;
  (* Crash–restart fault injection: while [dead] the process neither
     receives nor emits; messages arriving meanwhile are lost. *)
  mutable dead : bool;
  mutable crashes : int;
  mutable crash_lost_messages : int;
  mutable reconcile_audits : int;
  mutable reconcile_installs : int;
  (* Reconciliation outcomes, newest first, for timeline rendering. *)
  mutable reconcile_events_rev : (float * string) list;
}

let create engine ~app ~costs ~rng ?check ?(release_strategy = `Pair)
    ?(echo_interval = 0.0) ?(echo_misses = 3) () =
  let noise = Costs.noise costs rng in
  let scale ~queue_len = Costs.penalty costs ~queue_len in
  {
    engine;
    app;
    costs;
    check;
    release_strategy;
    cpu =
      Cpu.create engine ~name:"controller" ~cores:costs.Costs.cores
        ~service_scale:scale ~noise ();
    links = Hashtbl.create 4;
    echo_interval;
    echo_misses;
    sessions = Hashtbl.create 4;
    next_xid = 0x4000_0000l;
    recent = Queue.create ();
    recent_bytes = 0;
    last_gc_pause = neg_infinity;
    pkt_ins_received = 0;
    flow_mods_sent = 0;
    pkt_outs_sent = 0;
    drops_decided = 0;
    errors_received = 0;
    errors_sent = 0;
    echo_requests = 0;
    flow_removed_received = 0;
    port_changes = 0;
    decode_failures = 0;
    resyncs = 0;
    dead = false;
    crashes = 0;
    crash_lost_messages = 0;
    reconcile_audits = 0;
    reconcile_installs = 0;
    reconcile_events_rev = [];
  }

let fresh_xid t =
  let xid = t.next_xid in
  t.next_xid <-
    (if Int32.equal t.next_xid Int32.max_int then 0x4000_0000l
     else Int32.add t.next_xid 1l);
  xid

(* The checker's xid namespace for one controller->switch channel. *)
let channel_name switch = Printf.sprintf "ctl/sw-%d" switch

(* The flow-view key: the printed (match, priority) pair — the identity
   OpenFlow 1.0 gives a flow entry — avoiding polymorphic equality on
   the match record. *)
let view_key match_ priority =
  Format.asprintf "%a/%d" Of_match.pp match_ priority

let flow_mod_outputs_to (fm : Of_flow_mod.t) port =
  List.exists
    (function
      | Of_action.Output { port = p; _ } | Of_action.Enqueue { port = p; _ } ->
          p = port
      | _ -> false)
    fm.Of_flow_mod.actions

(* Mirror every FLOW_MOD this controller sends into its per-switch view
   of the installed entries — the ground truth the post-crash
   reconciliation pass audits the switch against. Deletes prune the
   view with OpenFlow's own semantics (strict = exact match+priority,
   non-strict = subsumption, plus the out_port action filter). *)
let note_flow_mod_view t ~switch (fm : Of_flow_mod.t) =
  match Hashtbl.find_opt t.sessions switch with
  | None -> ()
  | Some s -> (
      match fm.Of_flow_mod.command with
      | Of_flow_mod.Add | Of_flow_mod.Modify | Of_flow_mod.Modify_strict ->
          Hashtbl.replace s.flow_view
            (view_key fm.Of_flow_mod.match_ fm.Of_flow_mod.priority)
            (* Re-installs must not reference a buffer that is long
               gone. *)
            { fm with Of_flow_mod.buffer_id = Of_wire.no_buffer }
      | Of_flow_mod.Delete | Of_flow_mod.Delete_strict ->
          let strict =
            match fm.Of_flow_mod.command with
            | Of_flow_mod.Delete_strict -> true
            | _ -> false
          in
          let doomed =
            (* Sorted removal set: verdict independent of table order.
               lint: allow hashtbl-order *)
            Hashtbl.fold
              (fun key (old : Of_flow_mod.t) acc ->
                let match_ok =
                  if strict then
                    old.Of_flow_mod.priority = fm.Of_flow_mod.priority
                    && Of_match.equal old.Of_flow_mod.match_
                         fm.Of_flow_mod.match_
                  else
                    Of_match.subsumes ~general:fm.Of_flow_mod.match_
                      ~specific:old.Of_flow_mod.match_
                in
                let port_ok =
                  fm.Of_flow_mod.out_port = Of_wire.Port.none
                  || flow_mod_outputs_to old fm.Of_flow_mod.out_port
                in
                if match_ok && port_ok then key :: acc else acc)
              s.flow_view []
          in
          List.iter (Hashtbl.remove s.flow_view) doomed)

(* [fresh] marks xids this controller allocated itself; replies that
   echo a request's xid (including the flow_mod + packet_out pair
   answering one PACKET_IN) are legitimately repeated and exempt from
   the uniqueness invariant. A dead (crashed) controller emits
   nothing: whatever in-flight work completes while it is down is
   silently discarded. *)
let send ?(fresh = false) t ~switch ~xid msg =
  if t.dead then ()
  else
    match Hashtbl.find_opt t.links switch with
  | Some link ->
      let encoded = Of_codec.encode ~xid msg in
      (match t.check with
      | Some check ->
          Sdn_check.Check.note_emit check ~time:(Engine.now t.engine)
            ~session:(channel_name switch) ~fresh ~xid ~msg ~encoded
      | None -> ());
      Link.send link ~size:(Bytes.length encoded) encoded;
      (match msg with
      | Of_codec.Flow_mod fm ->
          t.flow_mods_sent <- t.flow_mods_sent + 1;
          note_flow_mod_view t ~switch fm
      | Of_codec.Packet_out _ -> t.pkt_outs_sent <- t.pkt_outs_sent + 1
      | Of_codec.Hello | Of_codec.Error_msg _ | Of_codec.Echo_request _
      | Of_codec.Echo_reply _ | Of_codec.Vendor _ | Of_codec.Features_request
      | Of_codec.Features_reply _ | Of_codec.Get_config_request
      | Of_codec.Get_config_reply _ | Of_codec.Set_config _
      | Of_codec.Packet_in _ | Of_codec.Flow_removed _
      | Of_codec.Port_status _
      | Of_codec.Stats_request _ | Of_codec.Stats_reply _
      | Of_codec.Barrier_request | Of_codec.Barrier_reply -> ())
  | None -> ()

let send_error t ~switch ~xid ~error_type ~code ~offending =
  t.errors_sent <- t.errors_sent + 1;
  let data = Bytes.sub offending 0 (min 64 (Bytes.length offending)) in
  let work = t.costs.Costs.parse_base_cost +. t.costs.Costs.encode_base_cost in
  Cpu.submit t.cpu ~work_s:work (fun () ->
      send t ~switch ~xid
        (Of_codec.Error_msg (Of_error.make ~error_type ~code ~data ())))

let do_handshake t ~switch ?enable_flow_buffer ?miss_send_len () =
  send ~fresh:true t ~switch ~xid:(fresh_xid t) Of_codec.Hello;
  send ~fresh:true t ~switch ~xid:(fresh_xid t) Of_codec.Features_request;
  (match miss_send_len with
  | Some n ->
      send ~fresh:true t ~switch ~xid:(fresh_xid t)
        (Of_codec.Set_config { Of_config.flags = 0; miss_send_len = n })
  | None -> ());
  match enable_flow_buffer with
  | Some backoff ->
      send ~fresh:true t ~switch ~xid:(fresh_xid t)
        (Of_codec.Vendor (Of_ext.Flow_buffer_enable backoff))
  | None -> ()

(* ---- Flow-state reconciliation (post-crash rejoin) ---- *)

(* Bounded audit -> repair -> re-audit loop: each round sends a
   wildcard FLOW stats request, re-installs view entries the switch no
   longer reports, waits for the flow_mod apply latency to land, and
   audits again. *)
let max_reconcile_rounds = 8
let reconcile_recheck_delay = 5e-3

let send_audit t ~switch =
  t.reconcile_audits <- t.reconcile_audits + 1;
  send ~fresh:true t ~switch ~xid:(fresh_xid t)
    (Of_codec.Stats_request
       (Of_stats.Flow_request
          {
            match_ = Of_match.wildcard_all;
            table_id = 0xff;
            out_port = Of_wire.Port.none;
          }))

(* State resync after an outage: replay the whole handshake with the
   parameters remembered from [start_switch], so the switch gets its
   configuration — including the flow-buffer backoff policy — pushed
   again even if it rebooted into defaults. When the disconnect was a
   node crash, follow with the flow-state reconciliation audit. *)
let resync t ~switch =
  match Hashtbl.find_opt t.sessions switch with
  | None -> ()
  | Some s ->
      t.resyncs <- t.resyncs + 1;
      do_handshake t ~switch ?enable_flow_buffer:s.enable_flow_buffer
        ?miss_send_len:s.miss_send_len ();
      if s.needs_reconcile then begin
        s.needs_reconcile <- false;
        s.reconciling <- true;
        s.reconcile_rounds <- 0;
        send_audit t ~switch
      end

let ensure_session t ~switch =
  match Hashtbl.find_opt t.sessions switch with
  | Some s -> s
  | None ->
      let tracker =
        Session.create t.engine ?check:t.check ~name:(channel_name switch)
          ~config:
            {
              Session.default_config with
              Session.echo_interval = t.echo_interval;
              echo_misses = t.echo_misses;
            }
          ~fresh_xid:(fun () -> fresh_xid t)
          ~send_echo:(fun ~xid ->
            send ~fresh:true t ~switch ~xid (Of_codec.Echo_request Bytes.empty))
          ~on_down:(fun () -> ())
          ~on_restore:(fun ~downtime:_ -> resync t ~switch)
          ()
      in
      let s =
        {
          tracker;
          enable_flow_buffer = None;
          miss_send_len = None;
          flow_view = Hashtbl.create 64;
          reconciling = false;
          reconcile_rounds = 0;
          needs_reconcile = false;
        }
      in
      Hashtbl.add t.sessions switch s;
      s

(* The match installed for a flow: the 5-tuple when the headers give
   one (hash-indexable at the switch), the exact L2 match otherwise. *)
let match_for (ctx : App.context) =
  match ctx.App.flow_key with
  | Some key -> Of_match.of_flow_key key
  | None ->
      {
        Of_match.wildcard_all with
        Of_match.dl_src = Some ctx.App.headers.Packet.h_eth.Ethernet.src;
        dl_dst = Some ctx.App.headers.Packet.h_eth.Ethernet.dst;
        dl_type = Some ctx.App.headers.Packet.h_eth.Ethernet.ethertype;
      }

let respond t ~switch ~xid ~(pkt_in : Of_packet_in.t) (ctx : App.context)
    decision =
  let buffered = not (Int32.equal ctx.App.buffer_id Of_wire.no_buffer) in
  let pkt_out_for ~out_port =
    if buffered then
      Of_packet_out.release ~buffer_id:ctx.App.buffer_id ~out_port
    else
      Of_packet_out.full ~frame:pkt_in.Of_packet_in.data
        ~in_port:ctx.App.in_port ~out_port
  in
  let forward ~action ~out_port (f : App.forward) =
    if f.App.install then begin
      let release_in_flow_mod =
        buffered && t.release_strategy = `Flow_mod_release
      in
      let flow_mod =
        Of_flow_mod.add ~idle_timeout:f.App.idle_timeout
          ~hard_timeout:f.App.hard_timeout
          ~buffer_id:
            (if release_in_flow_mod then ctx.App.buffer_id else Of_wire.no_buffer)
          ~match_:(match_for ctx) ~actions:[ action ] ()
      in
      send t ~switch ~xid (Of_codec.Flow_mod flow_mod);
      if not release_in_flow_mod then begin
        let po = pkt_out_for ~out_port in
        send t ~switch ~xid
          (Of_codec.Packet_out { po with Of_packet_out.actions = [ action ] })
      end
    end
    else begin
      let po = pkt_out_for ~out_port in
      send t ~switch ~xid
        (Of_codec.Packet_out { po with Of_packet_out.actions = [ action ] })
    end
  in
  match decision with
  | App.Drop ->
      t.drops_decided <- t.drops_decided + 1;
      if buffered then
        (* Release the buffer with no output action: the switch frees
           the unit and discards the packet. *)
        send t ~switch ~xid
          (Of_codec.Packet_out
             {
               Of_packet_out.buffer_id = ctx.App.buffer_id;
               in_port = ctx.App.in_port;
               actions = [];
               data = Bytes.empty;
             })
  | App.Flood ->
      send t ~switch ~xid
        (Of_codec.Packet_out (pkt_out_for ~out_port:Of_wire.Port.flood))
  | App.Forward f ->
      forward ~action:(Of_action.output f.App.out_port) ~out_port:f.App.out_port f
  | App.Forward_queued { App.f; queue_id } ->
      forward
        ~action:(Of_action.Enqueue { port = f.App.out_port; queue_id })
        ~out_port:f.App.out_port f

let reply_sizes t decision ~buffered ~data_len =
  (* Work for encoding the replies: base per message plus the bytes of
     frame data carried back (the expensive no-buffer PACKET_OUT). *)
  let data_out = if buffered then 0 else data_len in
  match decision with
  | App.Drop -> if buffered then (1, 0) else (0, 0)
  | App.Flood -> (1, data_out)
  | App.Forward { App.install; _ } | App.Forward_queued { App.f = { App.install; _ }; _ }
    ->
      if not install then (1, data_out)
      else if buffered && t.release_strategy = `Flow_mod_release then (1, 0)
      else (2, data_out)

let note_arrival t ~bytes =
  let now = Engine.now t.engine in
  Queue.push (now, bytes) t.recent;
  t.recent_bytes <- t.recent_bytes + bytes;
  let horizon = now -. t.costs.Costs.gc_window in
  let rec prune () =
    match Queue.peek_opt t.recent with
    | Some (time, old_bytes) when time < horizon ->
        ignore (Queue.pop t.recent);
        t.recent_bytes <- t.recent_bytes - old_bytes;
        prune ()
    | Some _ | None -> ()
  in
  prune ();
  (* Sustained pressure triggers a stop-the-world collection: every
     core is stalled for the pause duration, so requests queued behind
     it see multi-millisecond delays. *)
  if
    t.recent_bytes > t.costs.Costs.gc_threshold_bytes
    && now -. t.last_gc_pause >= t.costs.Costs.gc_pause_min_gap
  then begin
    t.last_gc_pause <- now;
    for _core = 1 to Cpu.cores t.cpu do
      Cpu.submit t.cpu ~work_s:t.costs.Costs.gc_pause_duration (fun () -> ())
    done
  end;
  Costs.gc_factor t.costs ~window_bytes:t.recent_bytes

let handle_packet_in t ~switch ~xid (pkt_in : Of_packet_in.t) ~msg_bytes =
  t.pkt_ins_received <- t.pkt_ins_received + 1;
  let gc = note_arrival t ~bytes:msg_bytes in
  match Packet.peek_headers pkt_in.Of_packet_in.data with
  | Error _ -> t.decode_failures <- t.decode_failures + 1
  | Ok headers ->
      let ctx =
        {
          App.in_port = pkt_in.Of_packet_in.in_port;
          headers;
          flow_key = Packet.peek_flow_key pkt_in.Of_packet_in.data;
          buffer_id = pkt_in.Of_packet_in.buffer_id;
          total_len = pkt_in.Of_packet_in.total_len;
        }
      in
      let decision = t.app.App.decide ctx in
      let buffered = not (Int32.equal ctx.App.buffer_id Of_wire.no_buffer) in
      let replies, data_out =
        reply_sizes t decision ~buffered
          ~data_len:(Bytes.length pkt_in.Of_packet_in.data)
      in
      let work =
        gc
        *. (t.costs.Costs.parse_base_cost
           +. (t.costs.Costs.parse_per_byte *. float_of_int msg_bytes)
           +. t.costs.Costs.decision_cost
           +. (t.costs.Costs.encode_base_cost *. float_of_int replies)
           +. (t.costs.Costs.encode_per_byte *. float_of_int data_out))
      in
      Cpu.submit t.cpu ~work_s:work (fun () ->
          respond t ~switch ~xid ~pkt_in ctx decision)

(* One reconciliation round, run after the CPU paid for comparing the
   two tables. [stats] is what the switch reports; the view is what
   this controller believes it installed. *)
let reconcile_step t ~switch s stats =
  let now = Engine.now t.engine in
  let reported = Hashtbl.create ((2 * List.length stats) + 1) in
  List.iter
    (fun (st : Of_stats.flow_stats) ->
      Hashtbl.replace reported
        (view_key st.Of_stats.match_ st.Of_stats.priority)
        ())
    stats;
  (* Adopt switch entries the view does not know: after a cold
     controller restart the view is empty and must be relearnt from
     the network rather than flushed out of it. *)
  List.iter
    (fun (st : Of_stats.flow_stats) ->
      let key = view_key st.Of_stats.match_ st.Of_stats.priority in
      if not (Hashtbl.mem s.flow_view key) then
        Hashtbl.replace s.flow_view key
          (Of_flow_mod.add ~cookie:st.Of_stats.cookie
             ~idle_timeout:st.Of_stats.idle_timeout
             ~hard_timeout:st.Of_stats.hard_timeout
             ~priority:st.Of_stats.priority ~match_:st.Of_stats.match_
             ~actions:st.Of_stats.actions ()))
    stats;
  let missing =
    (* Sorted by key so re-installs go out in a deterministic order
       (the sort discharges the hashtbl-order rule). *)
    Hashtbl.fold
      (fun key fm acc ->
        if Hashtbl.mem reported key then acc else (key, fm) :: acc)
      s.flow_view []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  match missing with
  | [] ->
      s.reconciling <- false;
      t.reconcile_events_rev <-
        (now, Printf.sprintf "reconciliation done (sw-%d)" switch)
        :: t.reconcile_events_rev;
      (match t.check with
      | Some check ->
          Sdn_check.Check.note_reconciliation check ~time:now
            ~session:(channel_name switch) ~agree:true ~detail:""
      | None -> ())
  | _ :: _ when s.reconcile_rounds >= max_reconcile_rounds ->
      s.reconciling <- false;
      t.reconcile_events_rev <-
        (now, Printf.sprintf "reconciliation gave up (sw-%d)" switch)
        :: t.reconcile_events_rev;
      (match t.check with
      | Some check ->
          Sdn_check.Check.note_reconciliation check ~time:now
            ~session:(channel_name switch) ~agree:false
            ~detail:
              (Printf.sprintf "%d entr%s still missing after %d audit round(s)"
                 (List.length missing)
                 (if List.length missing = 1 then "y" else "ies")
                 s.reconcile_rounds)
      | None -> ())
  | _ :: _ ->
      s.reconcile_rounds <- s.reconcile_rounds + 1;
      List.iter
        (fun (_, fm) ->
          t.reconcile_installs <- t.reconcile_installs + 1;
          send ~fresh:true t ~switch ~xid:(fresh_xid t) (Of_codec.Flow_mod fm))
        missing;
      (* Let the switch's flow_mod apply latency land, then audit
         again. *)
      ignore
        (Engine.schedule t.engine ~delay:reconcile_recheck_delay (fun () ->
             if s.reconciling && not t.dead then send_audit t ~switch))

let handle_flow_stats t ~switch stats =
  match Hashtbl.find_opt t.sessions switch with
  | None -> ()
  | Some s ->
      if s.reconciling then begin
        let work =
          t.costs.Costs.reconcile_per_entry_cost
          *. float_of_int (Hashtbl.length s.flow_view + List.length stats)
        in
        Cpu.submit t.cpu ~work_s:work (fun () ->
            if s.reconciling then reconcile_step t ~switch s stats)
      end

let handle_message_from t ~switch buf =
  if t.dead then
    (* The process is down: the frame is lost on the floor. *)
    t.crash_lost_messages <- t.crash_lost_messages + 1
  else
  match Of_codec.decode buf with
  | Error _ ->
      t.decode_failures <- t.decode_failures + 1;
      (* A buggy switch must learn its frame was rejected: answer with
         the OFPT_ERROR matching what was wrong with it. *)
      let error_type, code =
        match Of_codec.error_kind buf with
        | Of_codec.Truncated | Of_codec.Bad_body ->
            (Of_error.Bad_request, Of_error.Bad_request_code.bad_len)
        | Of_codec.Bad_version _ ->
            (Of_error.Hello_failed, Of_error.Hello_failed_code.incompatible)
        | Of_codec.Bad_type _ ->
            (Of_error.Bad_request, Of_error.Bad_request_code.bad_type)
      in
      send_error t ~switch ~xid:(Of_codec.peek_xid buf) ~error_type ~code
        ~offending:buf
  | Ok (xid, msg) -> (
      (let s = ensure_session t ~switch in
       match msg with
       | Of_codec.Echo_reply _ -> Session.note_echo_reply s.tracker ~xid
       | _ -> Session.note_activity s.tracker);
      match msg with
      | Of_codec.Packet_in pkt_in ->
          handle_packet_in t ~switch ~xid pkt_in ~msg_bytes:(Bytes.length buf)
      | Of_codec.Error_msg _ -> t.errors_received <- t.errors_received + 1
      | Of_codec.Echo_request payload ->
          t.echo_requests <- t.echo_requests + 1;
          let work = t.costs.Costs.parse_base_cost +. t.costs.Costs.encode_base_cost in
          Cpu.submit t.cpu ~work_s:work (fun () ->
              send t ~switch ~xid (Of_codec.Echo_reply payload))
      | Of_codec.Flow_removed fr ->
          t.flow_removed_received <- t.flow_removed_received + 1;
          (* The entry timed out at the switch; forget it so the
             reconciliation pass does not resurrect it. *)
          (match Hashtbl.find_opt t.sessions switch with
          | Some s ->
              Hashtbl.remove s.flow_view
                (view_key fr.Of_flow_removed.match_ fr.Of_flow_removed.priority)
          | None -> ())
      | Of_codec.Port_status ps ->
          t.port_changes <- t.port_changes + 1;
          (* A failed link strands every rule forwarding into it; flush
             them so affected flows fall back to the reactive path. *)
          if ps.Of_port_status.link_down then begin
            let work = t.costs.Costs.parse_base_cost +. t.costs.Costs.decision_cost in
            Cpu.submit t.cpu ~work_s:work (fun () ->
                send t ~switch ~xid
                  (Of_codec.Flow_mod
                     {
                       (Of_flow_mod.add ~match_:Of_match.wildcard_all ~actions:[] ()) with
                       Of_flow_mod.command = Of_flow_mod.Delete;
                       out_port = ps.Of_port_status.port.Of_features.port_no;
                     }))
          end
      | Of_codec.Stats_reply (Of_stats.Flow_reply stats) ->
          handle_flow_stats t ~switch stats
      | Of_codec.Hello | Of_codec.Echo_reply _ | Of_codec.Features_reply _
      | Of_codec.Get_config_reply _ | Of_codec.Stats_reply _
      | Of_codec.Barrier_reply | Of_codec.Vendor _ ->
          (* Handshake replies and statistics land here; nothing to do
             for the reproduction's workloads. *)
          ()
      | Of_codec.Features_request | Of_codec.Get_config_request
      | Of_codec.Set_config _ | Of_codec.Packet_out _ | Of_codec.Flow_mod _
      | Of_codec.Stats_request _ | Of_codec.Barrier_request ->
          (* Switch-bound messages should not arrive at the controller;
             reject them explicitly. *)
          t.decode_failures <- t.decode_failures + 1;
          send_error t ~switch ~xid ~error_type:Of_error.Bad_request
            ~code:Of_error.Bad_request_code.bad_type ~offending:buf)

let handle_message t buf = handle_message_from t ~switch:0 buf

let start_switch t ~switch ?enable_flow_buffer ?miss_send_len () =
  let s = ensure_session t ~switch in
  s.enable_flow_buffer <- enable_flow_buffer;
  s.miss_send_len <- miss_send_len;
  do_handshake t ~switch ?enable_flow_buffer ?miss_send_len ();
  Session.start s.tracker

let start t ?enable_flow_buffer ?miss_send_len () =
  start_switch t ~switch:0 ?enable_flow_buffer ?miss_send_len ()

let add_switch t ~switch link = Hashtbl.replace t.links switch link

let install_proactive t ?(switch = 0) flow_mods =
  List.iter
    (fun fm ->
      let work =
        t.costs.Costs.encode_base_cost
        +. (t.costs.Costs.parse_base_cost /. 2.0)
      in
      Cpu.submit t.cpu ~work_s:work (fun () ->
          send ~fresh:true t ~switch ~xid:(fresh_xid t) (Of_codec.Flow_mod fm)))
    flow_mods

let set_switch_link t link = add_switch t ~switch:0 link

let switch_count t = Hashtbl.length t.links
let cpu t = t.cpu
let app_name t = t.app.App.name

let switch_session t ~switch =
  Option.map (fun s -> s.tracker) (Hashtbl.find_opt t.sessions switch)

let switch_downs t =
  (* Commutative sum: iteration order cannot change the total.
     lint: allow hashtbl-order *)
  Hashtbl.fold (fun _ s acc -> acc + Session.downs s.tracker) t.sessions 0

(* ---- Crash–restart fault injection ---- *)

let sorted_sessions t =
  (* Sorted by switch id so crash/restart side effects fire in a
     deterministic order (the sort discharges the hashtbl-order rule). *)
  Hashtbl.fold (fun id s acc -> (id, s) :: acc) t.sessions []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let crash t ~mode =
  if not t.dead then begin
    t.dead <- true;
    t.crashes <- t.crashes + 1;
    List.iter
      (fun (_, s) ->
        s.reconciling <- false;
        s.needs_reconcile <- true;
        (match mode with
        | Faults.Cold ->
            (* Full state loss: the installed-entry view must be
               relearnt from the switches after boot. *)
            Hashtbl.reset s.flow_view
        | Faults.Warm -> ());
        Session.force_down s.tracker)
      (sorted_sessions t)
  end

let restart t ~mode =
  if t.dead then begin
    t.dead <- false;
    let boot =
      match mode with
      | Faults.Warm -> t.costs.Costs.restart_warm_s
      | Faults.Cold -> t.costs.Costs.restart_cold_s
    in
    (* The whole process boots before any queued message is served:
       every core is busy for the boot duration. *)
    if boot > 0.0 then
      for _core = 1 to Cpu.cores t.cpu do
        Cpu.submit t.cpu ~work_s:boot (fun () -> ())
      done;
    List.iter (fun (_, s) -> Session.revive s.tracker) (sorted_sessions t)
  end

(* The peer's TCP connection died under it (the switch process
   crashed): take the tracker down immediately instead of waiting for
   echo misses, and mark the session for reconciliation on rejoin. *)
let note_switch_disconnect t ~switch =
  match Hashtbl.find_opt t.sessions switch with
  | None -> ()
  | Some s ->
      s.reconciling <- false;
      s.needs_reconcile <- true;
      Session.note_disconnect s.tracker

let is_dead t = t.dead
let reconcile_events t = List.rev t.reconcile_events_rev

let counters t =
  {
    pkt_ins_received = t.pkt_ins_received;
    flow_mods_sent = t.flow_mods_sent;
    pkt_outs_sent = t.pkt_outs_sent;
    drops_decided = t.drops_decided;
    errors_received = t.errors_received;
    errors_sent = t.errors_sent;
    echo_requests = t.echo_requests;
    flow_removed_received = t.flow_removed_received;
    port_changes = t.port_changes;
    decode_failures = t.decode_failures;
    switch_downs = switch_downs t;
    resyncs = t.resyncs;
    crashes = t.crashes;
    crash_lost_messages = t.crash_lost_messages;
    reconcile_audits = t.reconcile_audits;
    reconcile_installs = t.reconcile_installs;
  }
