(** The OpenFlow switch model.

    Wires together the flow table, the buffer pools, the kernel and
    userspace CPUs and the ASIC-to-CPU bus, and implements the three
    miss-handling mechanisms the paper compares:

    - {b No_buffer}: every miss-match packet travels entirely to the
      controller inside the [PACKET_IN], and comes back entirely inside
      the [PACKET_OUT];
    - {b Packet_granularity}: the default OpenFlow buffer — each
      miss-match packet is stored locally, gets its own [buffer_id] and
      still triggers its own [PACKET_IN] (now carrying only
      [miss_send_len] bytes);
    - {b Flow_granularity}: the paper's mechanism — all miss-match
      packets of one flow share a unit and a [buffer_id]; only the
      first triggers a [PACKET_IN]; one [PACKET_OUT] releases the whole
      chain (Algorithms 1 and 2).

    Both buffered mechanisms fall back to the no-buffer behaviour when
    the pool is exhausted, exactly as the paper observes for buffer-16
    above ~30 Mbps.

    The mechanism can also be switched at runtime by the controller
    through the {!Sdn_openflow.Of_ext} vendor messages. *)

open Sdn_sim
open Sdn_openflow

type mechanism = No_buffer | Packet_granularity | Flow_granularity

val mechanism_to_string : mechanism -> string

type config = {
  datapath_id : int64;
  mechanism : mechanism;
  buffer_capacity : int;  (** units (0 forces [No_buffer]) *)
  miss_send_len : int;  (** PACKET_IN data bytes when buffered *)
  buffer_expiry : float;  (** packet-granularity ageing, seconds *)
  reclaim_lag : float;  (** deferred unit reclamation, seconds *)
  resend_timeout : float;  (** flow-granularity base re-request delay *)
  resend_multiplier : float;
      (** growth of the re-request delay per unanswered request (1 =
          the paper's fixed period) *)
  resend_cap : float;  (** upper bound on the re-request delay, seconds *)
  resend_jitter : float;
      (** uniform multiplicative jitter fraction on each delay, in
          [\[0, 1)] — desynchronises simultaneous timeouts *)
  max_resends : int;
  flow_table_capacity : int;
  flow_table_eviction : bool;
  table_sweep_interval : float;  (** idle/hard timeout sweep period *)
  echo_interval : float;
      (** keepalive echo period, seconds; [<= 0] disables the liveness
          machinery entirely (the pre-session behaviour) *)
  echo_misses : int;
      (** unanswered echoes before the controller session is declared
          Down and the switch degrades *)
  fail_mode : Session.fail_mode;
      (** what to do with miss-match traffic while Down *)
  overload_watermark : float;
      (** admission-control high watermark as a fraction of buffer
          capacity: once occupancy reaches it, {e new} miss chains are
          shed with a typed drop reason instead of crowding in-flight
          ones (appends to live chains are still admitted). [1.0] (the
          default) disables the guard *)
  buf_policy : Buf_policy.kind option;
      (** shared-buffer sharing discipline. [None] (the default) keeps
          the legacy private static partitions — runs are byte-identical
          to the pre-policy behaviour. [Some kind] routes the packet
          pool and every QoS queue's admissions through one switch-wide
          {!Buf_policy} pool *)
  shared_headroom : int;
      (** extra physical capacity (units) granted to the shared pool on
          top of the per-class quotas; the slack non-static policies
          can move between classes. Ignored without [buf_policy] *)
}

val default_config : config

type counters = {
  frames_received : int;
  frames_forwarded : int;
  frames_dropped : int;
  table_misses : int;
  pkt_ins_sent : int;
  pkt_in_resends : int;
  full_packet_fallbacks : int;
      (** misses handled without a buffer unit (pool empty / non-flow
          packet under flow granularity / no-buffer mode) *)
  pkt_outs_handled : int;
  flow_mods_handled : int;
  errors_sent : int;
  errors_received : int;  (** OFPT_ERROR messages from the controller *)
  decode_failures : int;
  decode_truncated : int;
      (** decode failures answered with [Bad_request]/[bad_len] *)
  decode_bad_version : int;
      (** decode failures answered with [Hello_failed]/[incompatible] *)
  decode_bad_type : int;
      (** decode failures answered with [Bad_request]/[bad_type] *)
  standalone_frames : int;
      (** miss-match frames carried by the fail-standalone L2 path *)
  fail_secure_drops : int;
      (** miss-match frames dropped (or frozen chains refused for lack
          of space) while Down in fail-secure mode *)
  crashes : int;  (** injected node crashes *)
  crash_lost_frames : int;
      (** data-plane frames black-holed while the process was dead *)
  crash_lost_messages : int;
      (** OpenFlow messages lost while the process was dead *)
  crash_wiped_packets : int;
      (** buffered packets destroyed by cold-restart pool wipes *)
  overload_sheds : int;
      (** new miss chains refused by the admission guard at the
          {!config.overload_watermark} *)
}

type t

val create :
  Engine.t ->
  ?check:Sdn_check.Check.t ->
  config:config ->
  costs:Costs.t ->
  rng:Rng.t ->
  unit ->
  t
(** The switch starts unwired; attach ports and the controller link
    before injecting traffic.

    With [check] armed, the buffer pools, the control session and every
    emitted OpenFlow message report to the invariant checker under
    names prefixed ["sw-<datapath_id>"]. *)

val config : t -> config
val mechanism : t -> mechanism

val miss_send_len : t -> int
(** Current PACKET_IN truncation length; starts at the configured value
    and is updated by SET_CONFIG from the controller. *)

val set_port : t -> port:int -> Bytes.t Link.t -> unit
(** Attach the egress link of a data port (ports are 1-based, as in
    OpenFlow). *)

val set_port_scheduler :
  t ->
  port:int ->
  policy:Egress_queue.policy ->
  queues:Egress_queue.queue_config list ->
  unit
(** Put a QoS egress scheduler in front of a port (the port must
    already be attached). Frames are classified by the [Enqueue]
    action's queue id; plain [Output] goes to queue 0. *)

val port_scheduler : t -> port:int -> Egress_queue.t option

val shared_pool : t -> Buf_policy.t option
(** The switch-wide shared buffer pool, present once a
    {!config.buf_policy} is configured and the first consumer (packet
    pool or port scheduler) has been created. *)

val egress_misrouted : t -> int
(** Frames dropped across all port schedulers because they named a
    queue id no configured queue carries (summed in port order). *)

val set_port_state : t -> port:int -> up:bool -> unit
(** Fail or restore a port (failure injection). Frames forwarded to a
    down port are dropped, floods skip it, and the controller receives
    a [PORT_STATUS] notification on every transition. *)

val port_is_up : t -> port:int -> bool

val set_controller_link : t -> Bytes.t Link.t -> unit
(** Attach the switch-to-controller half of the control channel. *)

val handle_frame : t -> in_port:int -> Bytes.t -> unit
(** Deliver an ingress frame (wired as the receiver of host links). *)

val handle_of_message : t -> Bytes.t -> unit
(** Deliver a controller-to-switch OpenFlow message (wired as the
    receiver of the control link). *)

val start : t -> unit
(** Begin periodic housekeeping: the flow-table expiry sweep and — when
    [echo_interval > 0] — the controller-session keepalive loop. *)

val session : t -> Session.t
(** The controller-session state machine. While it reports Down, table
    misses are handled by the configured {!Session.fail_mode} instead
    of PACKET_INs, and flow-granularity chains are frozen; on restore
    the chains that still fit their resend budget are re-requested. *)

(** {2 Crash–restart fault injection} *)

val crash : t -> mode:Faults.restart_mode -> unit
(** Kill the switch process. The control session dies with its timers
    ({!Session.force_down}); data frames and OpenFlow messages arriving
    while dead are counted lost. [`Warm`] keeps the buffer pools (flow
    chains freeze and replay on rejoin); [`Cold`] wipes both pools
    (expiring every held chain into the conservation ledger and
    asserting the cold-restart-wipe invariant), clears the flow table
    and resets the soft configuration to power-on defaults. No-op
    while already dead. *)

val restart : t -> unit
(** Reboot after {!crash}: re-enter the reconnect machinery; the first
    answered probe restores the session, resumes frozen chains and
    triggers the controller's resync/reconciliation. No-op unless
    dead. *)

val is_dead : t -> bool

(** {2 Introspection for measurement} *)

val kernel_cpu : t -> Cpu.t
val userspace_cpu : t -> Cpu.t
val flow_table : t -> Flow_table.t
val counters : t -> counters

val buffer_units_in_use : t -> int
val buffer_mean_in_use : t -> until:float -> float
val buffer_max_in_use : t -> int
val buffer_stats : t -> Of_ext.stats
(** Unified pool statistics for whichever mechanism is active. *)

val flows_abandoned : t -> int
(** Flow-granularity chains dropped after exhausting [max_resends]. *)

val flows_recovered : t -> int
(** Flow-granularity chains released after at least one re-request. *)

val recovery_delays : t -> Stats.t
(** Time-to-recovery samples of the recovered flows (empty when the
    flow pool was never instantiated). *)

val chains_frozen : t -> int
(** Cumulative flow-granularity chains frozen at session-down
    transitions. *)

val chains_resumed : t -> int
(** Cumulative chains re-armed (re-requested) after session restore. *)

val chains_expired_on_resume : t -> int
(** Chains whose resend budget was already spent before an outage and
    which were expired at restore. *)

val cpu_busy_core_seconds : t -> float
(** Combined kernel + userspace busy integral — the quantity behind
    the paper's "switch usages" (CPU percent of the OVS process). *)
