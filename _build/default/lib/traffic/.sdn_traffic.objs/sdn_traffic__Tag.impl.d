lib/traffic/tag.ml: Bytes Format Int32 Packet Sdn_net
