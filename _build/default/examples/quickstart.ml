(* Quickstart: build one experiment, run it, read the metrics.

   Run with:  dune exec examples/quickstart.exe

   This reproduces a single point of the paper's Section IV setup: the
   default (packet-granularity) OpenFlow buffer with 256 units, 1000
   single-packet UDP flows sent at 30 Mbps through the Fig. 1 topology
   (two hosts, one switch, one controller). *)

open Sdn_core

let () =
  let config =
    {
      Config.default with
      Config.mechanism = Config.Packet_granularity;
      buffer_capacity = 256;
      rate_mbps = 30.0;
      workload = Config.Exp_a { n_flows = 1000 };
      seed = 42;
    }
  in
  Printf.printf "Running: %s at %.0f Mbps, %d single-packet flows...\n\n"
    (Config.label config) config.Config.rate_mbps
    (Config.packets_expected config);
  let result = Experiment.run config in
  Format.printf "%a@." Experiment.pp_result result;
  Printf.printf
    "\nReading the result:\n\
    \  - every flow's first packet missed the table, was buffered, and\n\
    \    triggered one small PACKET_IN (%d requests for %d flows);\n\
    \  - the control path carried %.2f Mbps toward the controller instead\n\
    \    of the ~%.1f Mbps the same workload costs without a buffer;\n\
    \  - flow setup took %.2f ms on average.\n"
    result.Experiment.pkt_ins result.Experiment.flows_started
    result.Experiment.ctrl_load_up_mbps
    (config.Config.rate_mbps *. 1.084)
    (result.Experiment.setup_delay.Experiment.mean *. 1e3)
