lib/controller/apps.mli: App Ip Mac Sdn_net
