open Sdn_net
open Sdn_openflow

type insert_result =
  | Installed
  | Replaced
  | Evicted of Flow_entry.t
  | Table_full

type t = {
  capacity : int;
  eviction : bool;
  by_uid : (int, Flow_entry.t) Hashtbl.t;
  exact : int list ref Flow_key.Table.t;
  mutable wildcard_uids : int list;
  mutable next_uid : int;
  mutable lookups : int;
  mutable hits : int;
  mutable evictions : int;
  mutable expirations : int;
  (* OVS-style fast path: exact-match cache over full lookup results,
     flushed on every table mutation. *)
  cache : Flow_entry.t option Microflow.t option;
  check : Sdn_check.Check.t option;
  name : string;
  clock : unit -> float;
}

let create ?(eviction = true) ?(microflow = true) ?microflow_capacity ?check
    ?(name = "flow-table") ?(clock = fun () -> 0.0) ~capacity () =
  if capacity <= 0 then invalid_arg "Flow_table.create: capacity";
  {
    capacity;
    eviction;
    by_uid = Hashtbl.create 64;
    exact = Flow_key.Table.create 64;
    wildcard_uids = [];
    next_uid = 0;
    lookups = 0;
    hits = 0;
    evictions = 0;
    expirations = 0;
    cache =
      (if microflow then
         Some (Microflow.create ?capacity:microflow_capacity ())
       else None);
    check;
    name;
    clock;
  }

let invalidate_cache t =
  match t.cache with Some cache -> Microflow.flush cache | None -> ()

let length t = Hashtbl.length t.by_uid
let capacity t = t.capacity

(* A match is hash-indexable when it pins the whole IPv4 5-tuple; other
   fields (in_port, MACs) only narrow it further and are re-verified at
   lookup time. *)
let index_key (m : Of_match.t) =
  match
    (m.Of_match.dl_type, m.Of_match.nw_proto, m.Of_match.nw_src,
     m.Of_match.nw_dst, m.Of_match.tp_src, m.Of_match.tp_dst)
  with
  | Some dl_type, Some proto, Some (src_ip, 32), Some (dst_ip, 32),
    Some src_port, Some dst_port
    when dl_type = Ethernet.ethertype_ipv4 ->
      Some (Flow_key.make ~proto ~src_ip ~dst_ip ~src_port ~dst_port)
  | _, _, _, _, _, _ -> None

let index_add t key uid =
  match Flow_key.Table.find_opt t.exact key with
  | Some uids -> uids := uid :: !uids
  | None -> Flow_key.Table.add t.exact key (ref [ uid ])

let index_remove t key uid =
  match Flow_key.Table.find_opt t.exact key with
  | None -> ()
  | Some uids ->
      uids := List.filter (fun u -> u <> uid) !uids;
      if !uids = [] then Flow_key.Table.remove t.exact key

let remove_uid t uid =
  match Hashtbl.find_opt t.by_uid uid with
  | None -> ()
  | Some entry ->
      invalidate_cache t;
      Hashtbl.remove t.by_uid uid;
      (match index_key entry.Flow_entry.match_ with
      | Some key -> index_remove t key uid
      | None -> t.wildcard_uids <- List.filter (fun u -> u <> uid) t.wildcard_uids)

let add_entry t entry =
  invalidate_cache t;
  let uid = t.next_uid in
  t.next_uid <- t.next_uid + 1;
  Hashtbl.add t.by_uid uid entry;
  (match index_key entry.Flow_entry.match_ with
  | Some key -> index_add t key uid
  | None -> t.wildcard_uids <- uid :: t.wildcard_uids);
  uid

let find_identical t (entry : Flow_entry.t) =
  (* At most one entry can share (priority, match) — [insert] replaces
     identical entries — so this fold finds at most one match no matter
     the iteration order. lint: allow hashtbl-order *)
  Hashtbl.fold
    (fun uid (e : Flow_entry.t) acc ->
      match acc with
      | Some _ -> acc
      | None ->
          if
            e.Flow_entry.priority = entry.Flow_entry.priority
            && Of_match.equal e.Flow_entry.match_ entry.Flow_entry.match_
          then Some uid
          else None)
    t.by_uid None

let eviction_victim t =
  (* Least-recently-used among the minimal-priority entries; uid breaks
     remaining ties, so the minimum is unique and the fold result is
     independent of iteration order. lint: allow hashtbl-order *)
  Hashtbl.fold
    (fun uid (e : Flow_entry.t) acc ->
      match acc with
      | None -> Some (uid, e)
      | Some (best_uid, best) ->
          if
            e.Flow_entry.priority < best.Flow_entry.priority
            || (e.Flow_entry.priority = best.Flow_entry.priority
               && (e.Flow_entry.last_used < best.Flow_entry.last_used
                  || (e.Flow_entry.last_used = best.Flow_entry.last_used
                     && uid < best_uid)))
          then Some (uid, e)
          else acc)
    t.by_uid None

let insert t entry =
  match find_identical t entry with
  | Some uid ->
      remove_uid t uid;
      ignore (add_entry t entry);
      Replaced
  | None ->
      if Hashtbl.length t.by_uid < t.capacity then begin
        ignore (add_entry t entry);
        Installed
      end
      else if not t.eviction then Table_full
      else begin
        match eviction_victim t with
        | None -> Table_full (* capacity 0 is rejected at create *)
        | Some (uid, victim) ->
            remove_uid t uid;
            t.evictions <- t.evictions + 1;
            ignore (add_entry t entry);
            Evicted victim
      end

let candidates t pkt =
  let exact =
    match Packet.flow_key pkt with
    | None -> []
    | Some key -> (
        match Flow_key.Table.find_opt t.exact key with
        | None -> []
        | Some uids -> !uids)
  in
  List.rev_append exact t.wildcard_uids

(* The slow path: highest-priority match over the candidate set. Pure
   (no counters), so the checker can replay it next to a cache hit. *)
let lookup_uncached t ~in_port pkt =
  List.fold_left
    (fun acc uid ->
      match Hashtbl.find_opt t.by_uid uid with
      | None -> acc
      | Some entry ->
          if not (Of_match.matches entry.Flow_entry.match_ ~in_port pkt) then
            acc
          else begin
            match acc with
            | None -> Some entry
            | Some (current : Flow_entry.t) ->
                if entry.Flow_entry.priority > current.Flow_entry.priority
                then Some entry
                else acc
          end)
    None (candidates t pkt)

(* With the checker armed, every cache hit replays the slow path and
   the two results must name the same physical entry (or agree on a
   miss). The comparison never alters the returned value, so checked
   runs stay byte-identical to unchecked ones. *)
let audit_hit t ~in_port pkt cached =
  match t.check with
  | None -> ()
  | Some check ->
      let slow = lookup_uncached t ~in_port pkt in
      let agree =
        match (cached, slow) with
        | Some (a : Flow_entry.t), Some b -> a == b
        | None, None -> true
        | Some _, None | None, Some _ -> false
      in
      let detail =
        if agree then ""
        else
          let describe = function
            | None -> "miss"
            | Some (e : Flow_entry.t) ->
                Format.asprintf "%a prio=%d" Of_match.pp e.Flow_entry.match_
                  e.Flow_entry.priority
          in
          Printf.sprintf "cache=%s table=%s" (describe cached) (describe slow)
      in
      Sdn_check.Check.note_microflow check ~time:(t.clock ()) ~table:t.name
        ~agree ~detail

let lookup t ~in_port pkt =
  t.lookups <- t.lookups + 1;
  let best =
    match t.cache with
    | None -> lookup_uncached t ~in_port pkt
    | Some cache -> (
        match Microflow.key_of_packet ~in_port pkt with
        | None -> lookup_uncached t ~in_port pkt
        | Some key -> (
            match Microflow.find cache key with
            | Some cached ->
                audit_hit t ~in_port pkt cached;
                cached
            | None ->
                let result = lookup_uncached t ~in_port pkt in
                Microflow.add cache key result;
                result))
  in
  (match best with Some _ -> t.hits <- t.hits + 1 | None -> ());
  best

let entry_outputs_to (e : Flow_entry.t) port =
  List.exists
    (function
      | Of_action.Output { port = p; _ } -> p = port
      | Of_action.Enqueue { port = p; _ } -> p = port
      | Of_action.Set_vlan_vid _ | Of_action.Set_vlan_pcp _
      | Of_action.Strip_vlan | Of_action.Set_dl_src _ | Of_action.Set_dl_dst _
      | Of_action.Set_nw_src _ | Of_action.Set_nw_dst _ | Of_action.Set_nw_tos _
      | Of_action.Set_tp_src _ | Of_action.Set_tp_dst _ ->
          false)
    e.Flow_entry.actions

let delete t ~strict ?(out_port = Of_wire.Port.none) ~match_ ~priority () =
  let doomed =
    Hashtbl.fold
      (fun uid (e : Flow_entry.t) acc ->
        let match_ok =
          if strict then
            e.Flow_entry.priority = priority
            && Of_match.equal e.Flow_entry.match_ match_
          else Of_match.subsumes ~general:match_ ~specific:e.Flow_entry.match_
        in
        let port_ok =
          out_port = Of_wire.Port.none || entry_outputs_to e out_port
        in
        if match_ok && port_ok then uid :: acc else acc)
      t.by_uid []
  in
  (* uid order = install order; keeps the removal sequence deterministic. *)
  let doomed = List.sort Int.compare doomed in
  List.iter (remove_uid t) doomed;
  List.length doomed

let expire t ~now =
  let doomed =
    Hashtbl.fold
      (fun uid (e : Flow_entry.t) acc ->
        if Flow_entry.is_expired e ~now then (uid, e) :: acc else acc)
      t.by_uid []
  in
  (* The expired entries escape to flow_removed notifications, so order
     them by uid (install order) rather than hash-table iteration. *)
  let doomed = List.sort (fun (a, _) (b, _) -> Int.compare a b) doomed in
  List.iter (fun (uid, _) -> remove_uid t uid) doomed;
  t.expirations <- t.expirations + List.length doomed;
  List.map snd doomed

let clear t =
  let n = Hashtbl.length t.by_uid in
  Hashtbl.reset t.by_uid;
  Flow_key.Table.reset t.exact;
  t.wildcard_uids <- [];
  invalidate_cache t;
  n

let entries t =
  (* Entries escape to stats replies; uid order = install order. *)
  Hashtbl.fold (fun uid e acc -> (uid, e) :: acc) t.by_uid []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map snd

let to_stats t ~now = List.map (Flow_entry.to_stats ~now) (entries t)

let lookups t = t.lookups
let hits t = t.hits
let misses t = t.lookups - t.hits
let evictions t = t.evictions
let expirations t = t.expirations

let microflow_hits t =
  match t.cache with Some c -> Microflow.hits c | None -> 0

let microflow_misses t =
  match t.cache with Some c -> Microflow.misses c | None -> 0

let microflow_flushes t =
  match t.cache with Some c -> Microflow.flushes c | None -> 0

let microflow_length t =
  match t.cache with Some c -> Microflow.length c | None -> 0
