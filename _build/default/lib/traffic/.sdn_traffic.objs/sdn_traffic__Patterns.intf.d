lib/traffic/patterns.mli: Addressing Bytes Rng Sdn_sim
