examples/mechanism_comparison.mli:
