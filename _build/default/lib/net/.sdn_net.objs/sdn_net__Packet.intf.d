lib/net/packet.mli: Arp Bytes Ethernet Flow_key Format Ip Ipv4 Mac Tcp Udp
