(** Plain-text table and CSV rendering for experiment output. *)

val table : header:string list -> rows:string list list -> string
(** Monospace table with column widths fitted to the content. *)

val print_table : header:string list -> rows:string list list -> unit

val csv : header:string list -> rows:string list list -> string

val write_csv : path:string -> header:string list -> rows:string list list -> unit

val fmt_ms : float -> string
(** Seconds rendered as milliseconds, 3 decimals. *)

val fmt_mbps : float -> string
val fmt_pct : float -> string
val fmt_f : ?decimals:int -> float -> string
