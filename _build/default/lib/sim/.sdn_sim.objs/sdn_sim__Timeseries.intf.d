lib/sim/timeseries.mli: Stats
