test/test_properties.ml: Alcotest Bytes Config Experiment Hashtbl Ip List Mac Of_action Of_flow_mod Of_match Option Packet Printf QCheck QCheck_alcotest Sdn_core Sdn_net Sdn_openflow Sdn_switch
