lib/measure/delay.ml: Bytes Float Hashtbl Of_codec Of_packet_in Of_wire Option Sdn_net Sdn_openflow Sdn_sim Sdn_traffic Stats Tag
