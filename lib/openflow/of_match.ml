open Sdn_net

type t = {
  in_port : int option;
  dl_src : Mac.t option;
  dl_dst : Mac.t option;
  dl_vlan : int option;
  dl_vlan_pcp : int option;
  dl_type : int option;
  nw_tos : int option;
  nw_proto : int option;
  nw_src : (Ip.t * int) option;
  nw_dst : (Ip.t * int) option;
  tp_src : int option;
  tp_dst : int option;
}

let size = 40

(* Wildcard bit positions, per ofp_flow_wildcards. *)
let wc_in_port = 1 lsl 0
let wc_dl_vlan = 1 lsl 1
let wc_dl_src = 1 lsl 2
let wc_dl_dst = 1 lsl 3
let wc_dl_type = 1 lsl 4
let wc_nw_proto = 1 lsl 5
let wc_tp_src = 1 lsl 6
let wc_tp_dst = 1 lsl 7
let nw_src_shift = 8
let nw_dst_shift = 14
let wc_dl_vlan_pcp = 1 lsl 20
let wc_nw_tos = 1 lsl 21

let wildcard_all =
  {
    in_port = None;
    dl_src = None;
    dl_dst = None;
    dl_vlan = None;
    dl_vlan_pcp = None;
    dl_type = None;
    nw_tos = None;
    nw_proto = None;
    nw_src = None;
    nw_dst = None;
    tp_src = None;
    tp_dst = None;
  }

let exact_of_packet ?in_port (pkt : Packet.t) =
  let base =
    {
      wildcard_all with
      in_port;
      dl_src = Some pkt.Packet.eth.Ethernet.src;
      dl_dst = Some pkt.Packet.eth.Ethernet.dst;
      dl_type = Some pkt.Packet.eth.Ethernet.ethertype;
    }
  in
  match pkt.Packet.l3 with
  | Packet.Ipv4 (ip, l4) -> (
      let with_ip =
        {
          base with
          nw_tos = Some ip.Ipv4.tos;
          nw_proto = Some ip.Ipv4.proto;
          nw_src = Some (ip.Ipv4.src, 32);
          nw_dst = Some (ip.Ipv4.dst, 32);
        }
      in
      match l4 with
      | Packet.Udp (udp, _) ->
          {
            with_ip with
            tp_src = Some udp.Udp.src_port;
            tp_dst = Some udp.Udp.dst_port;
          }
      | Packet.Tcp (tcp, _) ->
          {
            with_ip with
            tp_src = Some tcp.Tcp.src_port;
            tp_dst = Some tcp.Tcp.dst_port;
          }
      | Packet.Raw_l4 _ -> with_ip)
  | Packet.Arp arp ->
      (* OF 1.0 reuses nw fields for ARP addresses and nw_proto for the
         opcode. *)
      {
        base with
        nw_proto = Some (match arp.Arp.oper with Arp.Request -> 1 | Arp.Reply -> 2);
        nw_src = Some (arp.Arp.sender_ip, 32);
        nw_dst = Some (arp.Arp.target_ip, 32);
      }
  | Packet.Raw_l3 _ -> base

let of_flow_key (key : Flow_key.t) =
  {
    wildcard_all with
    dl_type = Some Ethernet.ethertype_ipv4;
    nw_proto = Some key.Flow_key.proto;
    nw_src = Some (key.Flow_key.src_ip, 32);
    nw_dst = Some (key.Flow_key.dst_ip, 32);
    tp_src = Some key.Flow_key.src_port;
    tp_dst = Some key.Flow_key.dst_port;
  }

let matches t ~in_port (pkt : Packet.t) =
  let pkt_as_match = exact_of_packet ~in_port pkt in
  let opt_eq eq a b =
    match (a, b) with
    | None, _ -> true
    | Some expected, Some actual -> eq expected actual
    | Some _, None -> false
  in
  let ip_field a b =
    match (a, b) with
    | None, _ -> true
    | Some (prefix, bits), Some (addr, _) -> Ip.matches_prefix ~prefix ~bits addr
    | Some _, None -> false
  in
  opt_eq ( = ) t.in_port pkt_as_match.in_port
  && opt_eq Mac.equal t.dl_src pkt_as_match.dl_src
  && opt_eq Mac.equal t.dl_dst pkt_as_match.dl_dst
  && opt_eq ( = ) t.dl_vlan pkt_as_match.dl_vlan
  && opt_eq ( = ) t.dl_vlan_pcp pkt_as_match.dl_vlan_pcp
  && opt_eq ( = ) t.dl_type pkt_as_match.dl_type
  && opt_eq ( = ) t.nw_tos pkt_as_match.nw_tos
  && opt_eq ( = ) t.nw_proto pkt_as_match.nw_proto
  && ip_field t.nw_src pkt_as_match.nw_src
  && ip_field t.nw_dst pkt_as_match.nw_dst
  && opt_eq ( = ) t.tp_src pkt_as_match.tp_src
  && opt_eq ( = ) t.tp_dst pkt_as_match.tp_dst

let subsumes ~general ~specific =
  let field g s eq =
    match (g, s) with
    | None, _ -> true
    | Some _, None -> false
    | Some gv, Some sv -> eq gv sv
  in
  let prefix_field g s =
    match (g, s) with
    | None, _ -> true
    | Some _, None -> false
    | Some (gp, gb), Some (sp, sb) ->
        gb <= sb && Ip.matches_prefix ~prefix:gp ~bits:gb sp
  in
  field general.in_port specific.in_port ( = )
  && field general.dl_src specific.dl_src Mac.equal
  && field general.dl_dst specific.dl_dst Mac.equal
  && field general.dl_vlan specific.dl_vlan ( = )
  && field general.dl_vlan_pcp specific.dl_vlan_pcp ( = )
  && field general.dl_type specific.dl_type ( = )
  && field general.nw_tos specific.nw_tos ( = )
  && field general.nw_proto specific.nw_proto ( = )
  && prefix_field general.nw_src specific.nw_src
  && prefix_field general.nw_dst specific.nw_dst
  && field general.tp_src specific.tp_src ( = )
  && field general.tp_dst specific.tp_dst ( = )

let wildcards_of t =
  let bit b = function None -> b | Some _ -> 0 in
  let prefix_bits shift = function
    | None -> 63 lsl shift (* all bits of the 6-bit field; >= 32 means ignore *)
    | Some (_, bits) -> (32 - bits) lsl shift
  in
  bit wc_in_port t.in_port
  lor bit wc_dl_vlan t.dl_vlan
  lor bit wc_dl_src t.dl_src
  lor bit wc_dl_dst t.dl_dst
  lor bit wc_dl_type t.dl_type
  lor bit wc_nw_proto t.nw_proto
  lor bit wc_tp_src t.tp_src
  lor bit wc_tp_dst t.tp_dst
  lor prefix_bits nw_src_shift t.nw_src
  lor prefix_bits nw_dst_shift t.nw_dst
  lor bit wc_dl_vlan_pcp t.dl_vlan_pcp
  lor bit wc_nw_tos t.nw_tos

(* Closure- and box-free on purpose: this writer dominates the
   flow-mod encode cost, and the scratch path's zero-allocation
   budget leaves no room for per-call helpers or an Int32 box. The
   22-bit wildcards word is emitted as two u16 halves to stay off
   [Int32.of_int]. *)
let write t buf off =
  Bytes.fill buf off size '\000';
  let wildcards = wildcards_of t in
  Bytes.set_uint16_be buf off (wildcards lsr 16);
  Bytes.set_uint16_be buf (off + 2) (wildcards land 0xFFFF);
  Bytes.set_uint16_be buf (off + 4) (Option.value t.in_port ~default:0);
  (match t.dl_src with Some m -> Mac.write m buf (off + 6) | None -> ());
  (match t.dl_dst with Some m -> Mac.write m buf (off + 12) | None -> ());
  Bytes.set_uint16_be buf (off + 18) (Option.value t.dl_vlan ~default:0);
  Bytes.set_uint8 buf (off + 20) (Option.value t.dl_vlan_pcp ~default:0);
  (* pad at 21 *)
  Bytes.set_uint16_be buf (off + 22) (Option.value t.dl_type ~default:0);
  Bytes.set_uint8 buf (off + 24) (Option.value t.nw_tos ~default:0);
  Bytes.set_uint8 buf (off + 25) (Option.value t.nw_proto ~default:0);
  (* pad at 26-27 *)
  (match t.nw_src with Some (ip, _) -> Ip.write ip buf (off + 28) | None -> ());
  (match t.nw_dst with Some (ip, _) -> Ip.write ip buf (off + 32) | None -> ());
  Bytes.set_uint16_be buf (off + 36) (Option.value t.tp_src ~default:0);
  Bytes.set_uint16_be buf (off + 38) (Option.value t.tp_dst ~default:0)

let read buf off =
  if off + size > Bytes.length buf then Error "Of_match.read: truncated"
  else begin
    let wildcards = Int32.to_int (Bytes.get_int32_be buf off) land 0x3FFFFF in
    let get_u16 o = Bytes.get_uint16_be buf (off + o) in
    let get_u8 o = Bytes.get_uint8 buf (off + o) in
    let plain bit value = if wildcards land bit <> 0 then None else Some value in
    let prefix shift o =
      let wc = (wildcards lsr shift) land 0x3F in
      if wc >= 32 then None else Some (Ip.read buf (off + o), 32 - wc)
    in
    Ok
      {
        in_port = plain wc_in_port (get_u16 4);
        dl_src = plain wc_dl_src (Mac.read buf (off + 6));
        dl_dst = plain wc_dl_dst (Mac.read buf (off + 12));
        dl_vlan = plain wc_dl_vlan (get_u16 18);
        dl_vlan_pcp = plain wc_dl_vlan_pcp (get_u8 20);
        dl_type = plain wc_dl_type (get_u16 22);
        nw_tos = plain wc_nw_tos (get_u8 24);
        nw_proto = plain wc_nw_proto (get_u8 25);
        nw_src = prefix nw_src_shift 28;
        nw_dst = prefix nw_dst_shift 32;
        tp_src = plain wc_tp_src (get_u16 36);
        tp_dst = plain wc_tp_dst (get_u16 38);
      }
  end

let equal a b =
  let opt_eq eq x y =
    match (x, y) with
    | None, None -> true
    | Some u, Some v -> eq u v
    | None, Some _ | Some _, None -> false
  in
  let ip_eq (ia, ba) (ib, bb) = Ip.equal ia ib && ba = bb in
  opt_eq ( = ) a.in_port b.in_port
  && opt_eq Mac.equal a.dl_src b.dl_src
  && opt_eq Mac.equal a.dl_dst b.dl_dst
  && opt_eq ( = ) a.dl_vlan b.dl_vlan
  && opt_eq ( = ) a.dl_vlan_pcp b.dl_vlan_pcp
  && opt_eq ( = ) a.dl_type b.dl_type
  && opt_eq ( = ) a.nw_tos b.nw_tos
  && opt_eq ( = ) a.nw_proto b.nw_proto
  && opt_eq ip_eq a.nw_src b.nw_src
  && opt_eq ip_eq a.nw_dst b.nw_dst
  && opt_eq ( = ) a.tp_src b.tp_src
  && opt_eq ( = ) a.tp_dst b.tp_dst

let pp fmt t =
  let field name pp_v = function
    | None -> ()
    | Some v -> Format.fprintf fmt "%s=%a " name pp_v v
  in
  let pp_int fmt = Format.fprintf fmt "%d" in
  let pp_hex fmt = Format.fprintf fmt "0x%04x" in
  let pp_prefix fmt (ip, bits) = Format.fprintf fmt "%a/%d" Ip.pp ip bits in
  Format.fprintf fmt "match{";
  field "in_port" pp_int t.in_port;
  field "dl_src" Mac.pp t.dl_src;
  field "dl_dst" Mac.pp t.dl_dst;
  field "dl_vlan" pp_int t.dl_vlan;
  field "dl_vlan_pcp" pp_int t.dl_vlan_pcp;
  field "dl_type" pp_hex t.dl_type;
  field "nw_tos" pp_int t.nw_tos;
  field "nw_proto" pp_int t.nw_proto;
  field "nw_src" pp_prefix t.nw_src;
  field "nw_dst" pp_prefix t.nw_dst;
  field "tp_src" pp_int t.tp_src;
  field "tp_dst" pp_int t.tp_dst;
  Format.fprintf fmt "}"
