lib/core/chain.mli: Bytes Capture Config Delay Engine Experiment Format Link Rng Sdn_controller Sdn_measure Sdn_sim Sdn_switch
