(* Dirty fixture: a waiver for a rule that no longer fires anywhere
   near it. Must trip stale-allow exactly once. *)

(* lint: allow entropy *)
let pure x = x + 1
