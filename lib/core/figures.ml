type exp_a_data = {
  no_buffer : Sweep.series;
  buffer_16 : Sweep.series;
  buffer_256 : Sweep.series;
}

type exp_b_data = { packet_gran : Sweep.series; flow_gran : Sweep.series }

let run_exp_a ?rates ?reps ?jobs () =
  let sweep mechanism buffer_capacity label =
    Sweep.run ~label ?rates ?reps ?jobs (fun ~rate_mbps ~seed ->
        Config.exp_a ~mechanism ~buffer_capacity ~rate_mbps ~seed)
  in
  {
    no_buffer = sweep Config.No_buffer 0 "no-buffer";
    buffer_16 = sweep Config.Packet_granularity 16 "buffer-16";
    buffer_256 = sweep Config.Packet_granularity 256 "buffer-256";
  }

let run_exp_b ?rates ?reps ?jobs () =
  let sweep mechanism label =
    Sweep.run ~label ?rates ?reps ?jobs (fun ~rate_mbps ~seed ->
        Config.exp_b ~mechanism ~rate_mbps ~seed)
  in
  {
    packet_gran = sweep Config.Packet_granularity "packet-granularity";
    flow_gran = sweep Config.Flow_granularity "flow-granularity";
  }

let print_figure ~id ~title ~unit_label ~series metric =
  Printf.printf "\n%s: %s [%s]\n" id title unit_label;
  let header =
    "rate(Mbps)"
    :: List.concat_map
         (fun (s : Sweep.series) ->
           [ s.Sweep.label ^ " mean"; s.Sweep.label ^ " sd" ])
         series
  in
  let rates =
    match series with
    | [] -> []
    | s :: _ -> List.map (fun (p : Sweep.point) -> p.Sweep.rate_mbps) s.Sweep.points
  in
  let rows =
    List.mapi
      (fun i rate ->
        Printf.sprintf "%.0f" rate
        :: List.concat_map
             (fun (s : Sweep.series) ->
               let p = List.nth s.Sweep.points i in
               [
                 Printf.sprintf "%.3f" (Sweep.point_mean p metric);
                 Printf.sprintf "%.3f" (Sweep.point_sd p metric);
               ])
             series)
      rates
  in
  Sdn_measure.Report.print_table ~header ~rows

(* Metric extractors (delays in milliseconds for readability). *)
let load_up (r : Experiment.result) = r.Experiment.ctrl_load_up_mbps
let load_down (r : Experiment.result) = r.Experiment.ctrl_load_down_mbps
let controller_cpu (r : Experiment.result) = r.Experiment.controller_cpu_pct
let switch_cpu (r : Experiment.result) = r.Experiment.switch_cpu_pct
let setup_ms (r : Experiment.result) = r.Experiment.setup_delay.Experiment.mean *. 1e3
let controller_ms (r : Experiment.result) =
  r.Experiment.controller_delay.Experiment.mean *. 1e3
let switch_ms (r : Experiment.result) = r.Experiment.switch_delay.Experiment.mean *. 1e3
let forwarding_ms (r : Experiment.result) =
  r.Experiment.forwarding_delay.Experiment.mean *. 1e3
let buffer_mean (r : Experiment.result) = r.Experiment.buffer_mean_in_use
let buffer_max (r : Experiment.result) = float_of_int r.Experiment.buffer_max_in_use

let fig2a d =
  print_figure ~id:"Fig 2(a)" ~title:"control path load, switch -> controller"
    ~unit_label:"Mbps"
    ~series:[ d.no_buffer; d.buffer_16; d.buffer_256 ]
    load_up

let fig2b d =
  print_figure ~id:"Fig 2(b)" ~title:"control path load, controller -> switch"
    ~unit_label:"Mbps"
    ~series:[ d.no_buffer; d.buffer_16; d.buffer_256 ]
    load_down

let fig3 d =
  print_figure ~id:"Fig 3" ~title:"controller usages" ~unit_label:"% CPU"
    ~series:[ d.no_buffer; d.buffer_16; d.buffer_256 ]
    controller_cpu

let fig4 d =
  print_figure ~id:"Fig 4" ~title:"switch usages" ~unit_label:"% CPU"
    ~series:[ d.no_buffer; d.buffer_16; d.buffer_256 ]
    switch_cpu

let fig5 d =
  print_figure ~id:"Fig 5" ~title:"flow setup delay" ~unit_label:"ms"
    ~series:[ d.no_buffer; d.buffer_16; d.buffer_256 ]
    setup_ms

let fig6 d =
  print_figure ~id:"Fig 6" ~title:"controller delay" ~unit_label:"ms"
    ~series:[ d.no_buffer; d.buffer_16; d.buffer_256 ]
    controller_ms

let fig7 d =
  print_figure ~id:"Fig 7" ~title:"switch delay" ~unit_label:"ms"
    ~series:[ d.no_buffer; d.buffer_16; d.buffer_256 ]
    switch_ms

let fig8 d =
  print_figure ~id:"Fig 8" ~title:"buffer utilization (units in use)"
    ~unit_label:"units"
    ~series:[ d.buffer_16; d.buffer_256 ]
    buffer_mean

let fig9a d =
  print_figure ~id:"Fig 9(a)" ~title:"control path load, switch -> controller"
    ~unit_label:"Mbps"
    ~series:[ d.packet_gran; d.flow_gran ]
    load_up

let fig9b d =
  print_figure ~id:"Fig 9(b)" ~title:"control path load, controller -> switch"
    ~unit_label:"Mbps"
    ~series:[ d.packet_gran; d.flow_gran ]
    load_down

let fig10 d =
  print_figure ~id:"Fig 10" ~title:"controller usages" ~unit_label:"% CPU"
    ~series:[ d.packet_gran; d.flow_gran ]
    controller_cpu

let fig11 d =
  print_figure ~id:"Fig 11" ~title:"switch usages" ~unit_label:"% CPU"
    ~series:[ d.packet_gran; d.flow_gran ]
    switch_cpu

let fig12a d =
  print_figure ~id:"Fig 12(a)" ~title:"flow setup delay" ~unit_label:"ms"
    ~series:[ d.packet_gran; d.flow_gran ]
    setup_ms

let fig12b d =
  print_figure ~id:"Fig 12(b)" ~title:"flow forwarding delay" ~unit_label:"ms"
    ~series:[ d.packet_gran; d.flow_gran ]
    forwarding_ms

let fig13a d =
  print_figure ~id:"Fig 13(a)" ~title:"average buffer units used"
    ~unit_label:"units"
    ~series:[ d.packet_gran; d.flow_gran ]
    buffer_mean

let fig13b d =
  print_figure ~id:"Fig 13(b)" ~title:"maximum buffer units used"
    ~unit_label:"units"
    ~series:[ d.packet_gran; d.flow_gran ]
    buffer_max

(* CSV export: one file per figure. *)
let figure_csv ~dir ~id ~series metric =
  let header =
    "rate_mbps"
    :: List.concat_map
         (fun (s : Sweep.series) ->
           [ s.Sweep.label ^ "_mean"; s.Sweep.label ^ "_sd" ])
         series
  in
  let rates =
    match series with
    | [] -> []
    | s :: _ -> List.map (fun (p : Sweep.point) -> p.Sweep.rate_mbps) s.Sweep.points
  in
  let rows =
    List.mapi
      (fun i rate ->
        Printf.sprintf "%.0f" rate
        :: List.concat_map
             (fun (s : Sweep.series) ->
               let p = List.nth s.Sweep.points i in
               [
                 Printf.sprintf "%.6f" (Sweep.point_mean p metric);
                 Printf.sprintf "%.6f" (Sweep.point_sd p metric);
               ])
             series)
      rates
  in
  Sdn_measure.Report.write_csv
    ~path:(Filename.concat dir (id ^ ".csv"))
    ~header ~rows

let export_csv ~dir a b =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let a3 = [ a.no_buffer; a.buffer_16; a.buffer_256 ] in
  let a2 = [ a.buffer_16; a.buffer_256 ] in
  let b2 = [ b.packet_gran; b.flow_gran ] in
  figure_csv ~dir ~id:"fig2a" ~series:a3 load_up;
  figure_csv ~dir ~id:"fig2b" ~series:a3 load_down;
  figure_csv ~dir ~id:"fig3" ~series:a3 controller_cpu;
  figure_csv ~dir ~id:"fig4" ~series:a3 switch_cpu;
  figure_csv ~dir ~id:"fig5" ~series:a3 setup_ms;
  figure_csv ~dir ~id:"fig6" ~series:a3 controller_ms;
  figure_csv ~dir ~id:"fig7" ~series:a3 switch_ms;
  figure_csv ~dir ~id:"fig8" ~series:a2 buffer_mean;
  figure_csv ~dir ~id:"fig9a" ~series:b2 load_up;
  figure_csv ~dir ~id:"fig9b" ~series:b2 load_down;
  figure_csv ~dir ~id:"fig10" ~series:b2 controller_cpu;
  figure_csv ~dir ~id:"fig11" ~series:b2 switch_cpu;
  figure_csv ~dir ~id:"fig12a" ~series:b2 setup_ms;
  figure_csv ~dir ~id:"fig12b" ~series:b2 forwarding_ms;
  figure_csv ~dir ~id:"fig13a" ~series:b2 buffer_mean;
  figure_csv ~dir ~id:"fig13b" ~series:b2 buffer_max

let claim ~what ~paper ~ours =
  Printf.printf "  %-46s paper: %6s   measured: %6s\n" what paper ours

let pct v = Printf.sprintf "%.1f%%" v

let summary_exp_a d =
  let reduction metric =
    Sweep.reduction_pct
      ~baseline:(Sweep.series_mean d.no_buffer metric)
      ~improved:(Sweep.series_mean d.buffer_256 metric)
  in
  Printf.printf "\nSection IV headline claims (buffer-256 vs no-buffer, sweep averages):\n";
  claim ~what:"control path load reduction (to controller)" ~paper:"78.7%"
    ~ours:(pct (reduction load_up));
  claim ~what:"control path load reduction (to switch)" ~paper:"96%"
    ~ours:(pct (reduction load_down));
  claim ~what:"controller overhead reduction" ~paper:"37%"
    ~ours:(pct (reduction controller_cpu));
  claim ~what:"switch overhead increase"
    ~paper:"5.6%"
    ~ours:
      (pct
         (-.Sweep.reduction_pct
             ~baseline:(Sweep.series_mean d.no_buffer switch_cpu)
             ~improved:(Sweep.series_mean d.buffer_256 switch_cpu)));
  claim ~what:"controller delay reduction" ~paper:"58%"
    ~ours:(pct (reduction controller_ms));
  claim ~what:"switch delay reduction" ~paper:"87%"
    ~ours:(pct (reduction switch_ms));
  claim ~what:"flow setup delay reduction" ~paper:"78%"
    ~ours:(pct (reduction setup_ms))

let summary_exp_b d =
  let reduction metric =
    Sweep.reduction_pct
      ~baseline:(Sweep.series_mean d.packet_gran metric)
      ~improved:(Sweep.series_mean d.flow_gran metric)
  in
  Printf.printf
    "\nSection V headline claims (flow- vs packet-granularity, sweep averages):\n";
  claim ~what:"control path load reduction (to controller)" ~paper:"64%"
    ~ours:(pct (reduction load_up));
  claim ~what:"control path load reduction (to switch)" ~paper:"80%"
    ~ours:(pct (reduction load_down));
  claim ~what:"controller overhead reduction" ~paper:"35.7%"
    ~ours:(pct (reduction controller_cpu));
  claim ~what:"buffer utilization improvement" ~paper:"71.6%"
    ~ours:(pct (reduction buffer_mean));
  claim ~what:"flow forwarding delay reduction" ~paper:"18%"
    ~ours:(pct (reduction forwarding_ms))

let exp_a_figures =
  [
    ("fig2a", fig2a); ("fig2b", fig2b); ("fig3", fig3); ("fig4", fig4);
    ("fig5", fig5); ("fig6", fig6); ("fig7", fig7); ("fig8", fig8);
  ]

let exp_b_figures =
  [
    ("fig9a", fig9a); ("fig9b", fig9b); ("fig10", fig10); ("fig11", fig11);
    ("fig12a", fig12a); ("fig12b", fig12b); ("fig13a", fig13a);
    ("fig13b", fig13b);
  ]

let run_all ?rates ?reps ?jobs () =
  Printf.printf "== Section IV: benefits of the default switch buffer ==\n";
  Printf.printf "workload: 1000 single-packet UDP flows, 1000 B frames\n";
  let a = run_exp_a ?rates ?reps ?jobs () in
  List.iter (fun (_, f) -> f a) exp_a_figures;
  summary_exp_a a;
  Printf.printf "\n== Section V: flow-granularity buffer mechanism ==\n";
  Printf.printf
    "workload: 50 flows x 20 packets, cross-sequence batches of 5, buffer 256\n";
  let b = run_exp_b ?rates ?reps ?jobs () in
  List.iter (fun (_, f) -> f b) exp_b_figures;
  summary_exp_b b
