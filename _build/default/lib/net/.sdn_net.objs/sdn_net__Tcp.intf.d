lib/net/tcp.mli: Bytes Format Ip
