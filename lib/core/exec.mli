(** Deterministic (possibly parallel) execution of independent
    experiment replications.

    Every sweep in the repository — rate sweeps, the chaos loss and
    outage sweeps, the figure/CSV harness — reduces to "run this array
    of configurations, one {!Experiment.run} each, and give me the
    results in configuration order". This module is that one funnel:
    it fans the array out over an {!Sdn_sim.Task_pool} domain pool and
    merges by task index, so the result array is byte-identical to the
    [jobs = 1] sequential reference path for every [jobs] value.

    When [jobs > 1] and any configuration has its [check] flag armed,
    a deterministically-sampled task is re-run sequentially in the
    calling domain after the parallel pass and compared field-for-field
    ({!Experiment.diff_result}). A mismatch — a task body that touched
    cross-domain mutable state — is recorded as a [parallel-equivalence]
    violation on that task's result, flowing through the same
    [check_violations]/[check_report] channel the CLI's [--check]
    epilogue already inspects. Clean runs are left untouched, so clean
    parallel output stays byte-identical to sequential output. *)

val run_experiments :
  ?label:(int -> string) ->
  jobs:int ->
  Config.t array ->
  Experiment.result array
(** [run_experiments ~jobs configs] is the result of
    [Experiment.run configs.(i)] at every index [i], computed on
    [jobs] worker domains ([jobs <= 1]: sequentially in the calling
    domain). [label i] names task [i] in a parallel-equivalence
    violation report (default ["task-<i>"]). *)

val replay_index : Config.t array -> int
(** The index the parallel-equivalence check replays: derived from the
    first configuration's seed and the grid size, so the sample varies
    across sweeps but is identical across runs of the same sweep.
    Exposed for the test suite. *)
