(** Switch-side resource cost model.

    The paper's testbed switch is Open vSwitch on a commodity PC; the
    behaviours it measures are driven by three contended resources,
    each of which appears here as an explicit parameter group:

    - the {b kernel datapath} (per-packet receive/forward cost; every
      packet pays it, hit or miss);
    - the {b userspace slow path} (per-miss upcall processing, with
      batch amortization — Open vSwitch handles upcalls in batches, so
      per-packet cost falls under load, which produces the
      rise-then-flatten switch-usage curve of the paper's Fig. 4);
    - the {b ASIC/kernel-to-userspace bus}, a half-duplex channel of
      limited bandwidth. Without a buffer the full frame crosses it
      twice (up inside the upcall, down inside the [PACKET_OUT]),
      which is what makes the no-buffer switch delay blow up past
      ~70 Mbps in the paper's Fig. 7.

    All times are seconds, sizes bytes, bandwidths bits/second.
    [Sdn_core.Calibration] documents how the default values were fitted
    to the paper's reported curves. *)

type service_distribution =
  | Lognormal  (** multiplicative [exp (sigma * N(0,1))] jitter *)
  | Exponential
      (** multiplicative [Exp(1)] factor, making every service time
          exponential with its configured mean — the memoryless regime
          the analytical oracle's M/M/c stations assume *)

type t = {
  kernel_cores : int;
  userspace_cores : int;
  kernel_rx_cost : float;  (** per packet: receive + flow-table lookup *)
  kernel_fwd_cost : float;  (** per packet: egress handling *)
  kernel_upcall_cost : float;  (** per miss: kernel side of the upcall *)
  upcall_base_cost : float;  (** per miss reaching userspace *)
  upcall_per_byte : float;  (** per byte copied into the PACKET_IN *)
  buffer_alloc_cost : float;  (** packet-granularity: store + id assignment *)
  flow_buffer_first_cost : float;
      (** flow-granularity: map probe + insert + id derivation for the
          first packet of a flow (Algorithm 1, lines 6-9) *)
  flow_buffer_append_cost : float;
      (** flow-granularity: chaining a subsequent packet (line 11) *)
  pkt_out_base_cost : float;  (** userspace handling of a PACKET_OUT *)
  pkt_out_per_byte : float;  (** per byte of frame data carried in it *)
  flow_mod_install_cost : float;  (** userspace handling of a FLOW_MOD *)
  flow_mod_apply_latency : float;
      (** delay between FLOW_MOD processing and the rule actually
          taking effect in the datapath (table programming latency;
          He et al. measure milliseconds on real switches). During
          this window subsequent packets of the flow still miss —
          which is why, at high rates, many packets of an Exp-B flow
          trigger their own requests under packet granularity. *)
  release_per_packet_cost : float;
      (** per buffered packet handed back to the datapath on release *)
  bus_bandwidth_bps : float;  (** half-duplex ASIC <-> CPU channel *)
  bus_descriptor_bytes : int;  (** fixed per-transfer overhead on the bus *)
  amortization_floor : float;
      (** lower bound of the batching speed-up factor (0 < f <= 1) *)
  amortization_scale : int;
      (** queue length at which half the possible speed-up is reached *)
  service_noise_sigma : float;
      (** lognormal sigma jittering every service time (under
          [Lognormal]; ignored by [Exponential]) *)
  service_distribution : service_distribution;
}

val default : t
(** Values calibrated against the paper's testbed curves; see
    [Sdn_core.Calibration]. *)

val noise : t -> Sdn_sim.Rng.t -> unit -> float
(** The multiplicative service-time jitter sampler selected by
    [service_distribution]. *)

val amortization : t -> queue_len:int -> float
(** The batching factor: [floor + (1 - floor) / (1 + queue/scale)]. *)
