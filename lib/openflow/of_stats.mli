(** OpenFlow 1.0 statistics messages (DESC, FLOW, AGGREGATE, PORT).

    Used by the monitoring examples and by tests that cross-check the
    switch's flow-table counters against link-level observations. *)

type request =
  | Desc_request
  | Flow_request of { match_ : Of_match.t; table_id : int; out_port : int }
  | Aggregate_request of { match_ : Of_match.t; table_id : int; out_port : int }
  | Port_request of { port_no : int }
      (** [port_no = Of_wire.Port.none] requests all ports. *)

type flow_stats = {
  table_id : int;
  match_ : Of_match.t;
  duration_sec : int32;
  duration_nsec : int32;
  priority : int;
  idle_timeout : int;
  hard_timeout : int;
  cookie : int64;
  packet_count : int64;
  byte_count : int64;
  actions : Of_action.t list;
}

type port_stats = {
  port_no : int;
  rx_packets : int64;
  tx_packets : int64;
  rx_bytes : int64;
  tx_bytes : int64;
  rx_dropped : int64;
  tx_dropped : int64;
  rx_errors : int64;
  tx_errors : int64;
}

type desc = {
  mfr_desc : string;
  hw_desc : string;
  sw_desc : string;
  serial_num : string;
  dp_desc : string;
}

type reply =
  | Desc_reply of desc
  | Flow_reply of flow_stats list
  | Aggregate_reply of {
      packet_count : int64;
      byte_count : int64;
      flow_count : int32;
    }
  | Port_reply of port_stats list

val request_body_size : request -> int
val write_request_body : request -> Bytes.t -> int -> unit
val read_request_body : Bytes.t -> int -> len:int -> (request, string) result

val truncate_flow_entries : flow_stats list -> flow_stats list
(** Longest prefix of [entries] whose [Flow_reply] still fits the
    16-bit wire length field. OpenFlow 1.0 continues an oversized
    stats reply with the OFPSF_REPLY_MORE multipart flag, which this
    codec does not model; senders must truncate instead of letting
    {!Of_wire.write_header} reject the frame. Identity when the whole
    list fits (roughly 680 single-action entries). *)

val reply_body_size : reply -> int
val write_reply_body : reply -> Bytes.t -> int -> unit
val read_reply_body : Bytes.t -> int -> len:int -> (reply, string) result

val equal_request : request -> request -> bool
val equal_reply : reply -> reply -> bool
val pp_request : Format.formatter -> request -> unit
val pp_reply : Format.formatter -> reply -> unit
