(* Tests for MAC and IPv4 address types, and unit conversions. *)

open Sdn_net
open Sdn_sim

let test_mac_string_roundtrip () =
  let mac = Mac.of_octets 0xde 0xad 0xbe 0xef 0x00 0x42 in
  Alcotest.(check string) "to_string" "de:ad:be:ef:00:42" (Mac.to_string mac);
  Alcotest.(check bool) "of_string roundtrip" true
    (Mac.equal mac (Mac.of_string_exn (Mac.to_string mac)))

let test_mac_parse_errors () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "reject %S" s)
        true
        (Result.is_error (Mac.of_string s)))
    [ "aa:bb:cc"; "aa:bb:cc:dd:ee:zz"; ""; "aa:bb:cc:dd:ee:ff:00"; "1ff:00:00:00:00:00" ]

let test_mac_bytes_roundtrip () =
  let mac = Mac.of_octets 1 2 3 4 5 6 in
  let buf = Bytes.make 8 '\xff' in
  Mac.write mac buf 1;
  Alcotest.(check bool) "read back" true (Mac.equal mac (Mac.read buf 1));
  (* Bytes outside the field untouched. *)
  Alcotest.(check char) "prefix" '\xff' (Bytes.get buf 0);
  Alcotest.(check char) "suffix" '\xff' (Bytes.get buf 7)

let test_mac_broadcast () =
  Alcotest.(check bool) "broadcast" true (Mac.is_broadcast Mac.broadcast);
  Alcotest.(check bool) "zero not broadcast" false (Mac.is_broadcast Mac.zero);
  Alcotest.(check string) "broadcast text" "ff:ff:ff:ff:ff:ff"
    (Mac.to_string Mac.broadcast)

let test_mac_rejects_bad_octet () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Mac.of_octets 256 0 0 0 0 0);
       false
     with Invalid_argument _ -> true)

let test_ip_string_roundtrip () =
  let ip = Ip.make 192 168 1 200 in
  Alcotest.(check string) "to_string" "192.168.1.200" (Ip.to_string ip);
  Alcotest.(check bool) "roundtrip" true
    (Ip.equal ip (Ip.of_string_exn "192.168.1.200"))

let test_ip_parse_errors () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "reject %S" s)
        true
        (Result.is_error (Ip.of_string s)))
    [ "1.2.3"; "1.2.3.4.5"; "1.2.3.256"; "a.b.c.d"; "" ]

let test_ip_unsigned_compare () =
  let low = Ip.make 1 0 0 0 and high = Ip.make 200 0 0 0 in
  (* 200.0.0.0 has the sign bit set in int32; unsigned compare must
     still put it above 1.0.0.0. *)
  Alcotest.(check bool) "unsigned order" true (Ip.compare low high < 0)

let test_ip_prefix_match () =
  let prefix = Ip.make 10 1 0 0 in
  Alcotest.(check bool) "inside /16" true
    (Ip.matches_prefix ~prefix ~bits:16 (Ip.make 10 1 200 3));
  Alcotest.(check bool) "outside /16" false
    (Ip.matches_prefix ~prefix ~bits:16 (Ip.make 10 2 0 1));
  Alcotest.(check bool) "/0 matches all" true
    (Ip.matches_prefix ~prefix ~bits:0 (Ip.make 8 8 8 8));
  Alcotest.(check bool) "/32 exact" false
    (Ip.matches_prefix ~prefix ~bits:32 (Ip.make 10 1 0 1))

let test_ip_bytes_roundtrip () =
  let ip = Ip.make 172 16 254 1 in
  let buf = Bytes.create 4 in
  Ip.write ip buf 0;
  Alcotest.(check bool) "roundtrip" true (Ip.equal ip (Ip.read buf 0))

let test_units () =
  Alcotest.(check (float 1e-9)) "mbps" 5e6 (Units.mbps_to_bps 5.0);
  Alcotest.(check (float 1e-9)) "bps" 5.0 (Units.bps_to_mbps 5e6);
  Alcotest.(check (float 1e-12)) "tx time" 80e-6
    (Units.transmission_time ~bytes:1000 ~bandwidth_bps:100e6);
  Alcotest.(check (float 1e-12)) "ms" 2e-3 (Units.ms 2.0);
  Alcotest.(check (float 1e-12)) "us" 3e-6 (Units.us 3.0);
  Alcotest.(check (float 1e-9)) "pps of 1000B at 100Mbps" 12500.0
    (Units.packets_per_second ~rate_mbps:100.0 ~frame_bytes:1000)

let suite =
  [
    Alcotest.test_case "mac string roundtrip" `Quick test_mac_string_roundtrip;
    Alcotest.test_case "mac parse errors" `Quick test_mac_parse_errors;
    Alcotest.test_case "mac bytes roundtrip" `Quick test_mac_bytes_roundtrip;
    Alcotest.test_case "mac broadcast" `Quick test_mac_broadcast;
    Alcotest.test_case "mac rejects bad octet" `Quick test_mac_rejects_bad_octet;
    Alcotest.test_case "ip string roundtrip" `Quick test_ip_string_roundtrip;
    Alcotest.test_case "ip parse errors" `Quick test_ip_parse_errors;
    Alcotest.test_case "ip unsigned compare" `Quick test_ip_unsigned_compare;
    Alcotest.test_case "ip prefix matching" `Quick test_ip_prefix_match;
    Alcotest.test_case "ip bytes roundtrip" `Quick test_ip_bytes_roundtrip;
    Alcotest.test_case "unit conversions" `Quick test_units;
  ]
