lib/switch/costs.mli:
