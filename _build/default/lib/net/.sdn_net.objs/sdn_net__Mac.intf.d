lib/net/mac.mli: Bytes Format
