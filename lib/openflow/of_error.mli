(** OpenFlow 1.0 [ERROR] message body. *)

type error_type =
  | Hello_failed
  | Bad_request
  | Bad_action
  | Flow_mod_failed
  | Port_mod_failed
  | Queue_op_failed

type t = {
  error_type : error_type;
  code : int;
  data : Bytes.t;  (** at least 64 bytes of the offending message *)
}

(** Codes for [Flow_mod_failed], the type the switch model raises. *)
module Flow_mod_failed_code : sig
  val all_tables_full : int
  val overlap : int
  val eperm : int
  val bad_emerg_timeout : int
  val bad_command : int
  val unsupported : int
end

(** Codes for [Hello_failed]. *)
module Hello_failed_code : sig
  val incompatible : int
  val eperm : int
end

(** Codes for [Bad_request]. *)
module Bad_request_code : sig
  val bad_version : int
  val bad_type : int
  val bad_stat : int
  val bad_vendor : int
  val bad_subtype : int
  val eperm : int
  val bad_len : int
  val buffer_empty : int
  val buffer_unknown : int
end

val make : error_type:error_type -> code:int -> ?data:Bytes.t -> unit -> t

val body_size : t -> int
val write_body : t -> Bytes.t -> int -> unit
val read_body : Bytes.t -> int -> len:int -> (t, string) result

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
