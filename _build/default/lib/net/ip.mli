(** IPv4 addresses. *)

type t
(** An IPv4 address (32 bits). *)

val make : int -> int -> int -> int -> t
(** [make a b c d] is [a.b.c.d]; each component in [\[0, 255\]]. *)

val of_int32 : int32 -> t
val to_int32 : t -> int32

val of_string : string -> (t, string) result
(** Parse dotted-quad notation. *)

val of_string_exn : string -> t

val to_string : t -> string

val any : t
(** [0.0.0.0]. *)

val broadcast : t
(** [255.255.255.255]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

val write : t -> Bytes.t -> int -> unit
val read : Bytes.t -> int -> t

val matches_prefix : prefix:t -> bits:int -> t -> bool
(** [matches_prefix ~prefix ~bits addr] tests whether [addr] falls in
    [prefix/bits]. [bits] in [\[0, 32\]]; 0 matches everything. Used by
    wildcarded OpenFlow matches. *)
