test/test_of_match.ml: Alcotest Arp Bytes Ethernet Ip Mac Of_match Option Packet QCheck QCheck_alcotest Sdn_net Sdn_openflow
