(* Benchmark harness.

   Two halves:

   1. Bechamel micro-benchmarks of the building blocks (codec, flow
      table, buffer pools, event engine) — the cost of the mechanisms
      themselves, independent of any scenario.

   2. The figure harness: regenerates every table/figure of the paper's
      evaluation (Figs. 2-13) by running the Section IV and Section V
      sweeps and printing the series, followed by the headline
      aggregate claims next to the paper's reported numbers.

   Usage:
     dune exec bench/main.exe                 # micro + all figures
     dune exec bench/main.exe -- micro        # micro-benchmarks only
     dune exec bench/main.exe -- figures      # all figures only
     dune exec bench/main.exe -- fig5         # one figure
     dune exec bench/main.exe -- figures 5    # all figures, 5 reps/point
     dune exec bench/main.exe -- ablations    # the ablation studies
     dune exec bench/main.exe -- json [path]  # machine-readable snapshot
                                              # (default BENCH_pr9.json)

   The json snapshot also times a small end-to-end sweep at
   --jobs 1/2/4 and records the parallel speedups, so the regression
   gate tracks the Task_pool scaling factor alongside the micro
   subjects.
*)

open Bechamel
open Toolkit

(* ---- Micro-benchmark subjects ---- *)

let mac1 = Sdn_net.Mac.of_octets 0x02 0 0 0 0 1
let mac2 = Sdn_net.Mac.of_octets 0x02 0 0 0 0 2
let ip1 = Sdn_net.Ip.make 10 0 0 1
let ip2 = Sdn_net.Ip.make 10 0 0 2

let sample_packet =
  Sdn_net.Packet.udp_frame_of_size ~src_mac:mac1 ~dst_mac:mac2 ~src_ip:ip1
    ~dst_ip:ip2 ~src_port:1000 ~dst_port:9 ~frame_size:1000
    ~payload_fill:(fun _ -> ())

let sample_frame = Sdn_net.Packet.encode sample_packet

let sample_pkt_in_full =
  Sdn_openflow.Of_codec.encode ~xid:1l
    (Sdn_openflow.Of_codec.Packet_in
       (Sdn_openflow.Of_packet_in.make ~buffer_id:Sdn_openflow.Of_wire.no_buffer
          ~in_port:1 ~reason:Sdn_openflow.Of_packet_in.No_match
          ~frame:sample_frame ~miss_send_len:None))

let sample_pkt_in_buffered =
  Sdn_openflow.Of_codec.encode ~xid:1l
    (Sdn_openflow.Of_codec.Packet_in
       (Sdn_openflow.Of_packet_in.make ~buffer_id:7l ~in_port:1
          ~reason:Sdn_openflow.Of_packet_in.No_match ~frame:sample_frame
          ~miss_send_len:(Some 128)))

let sample_flow_mod =
  Sdn_openflow.Of_flow_mod.add
    ~match_:
      (Sdn_openflow.Of_match.of_flow_key
         (Option.get (Sdn_net.Packet.flow_key sample_packet)))
    ~actions:[ Sdn_openflow.Of_action.output 2 ]
    ()

(* A populated flow table for lookup benchmarks: [n] exact 5-tuple
   rules plus [wildcards] low-priority wildcarded rules (the default
   rules a reactive deployment carries), which force the slow path to
   run its linear scan. *)
(* Hoisted message values: the encode subjects measure the encoder,
   not per-call variant/record construction. *)
let sample_flow_mod_msg = Sdn_openflow.Of_codec.Flow_mod sample_flow_mod

let sample_pkt_in_full_msg =
  Sdn_openflow.Of_codec.Packet_in
    (Sdn_openflow.Of_packet_in.make ~buffer_id:Sdn_openflow.Of_wire.no_buffer
       ~in_port:1 ~reason:Sdn_openflow.Of_packet_in.No_match
       ~frame:sample_frame ~miss_send_len:None)

let sample_pkt_in_buffered_msg =
  Sdn_openflow.Of_codec.Packet_in
    (Sdn_openflow.Of_packet_in.make ~buffer_id:7l ~in_port:1
       ~reason:Sdn_openflow.Of_packet_in.No_match ~frame:sample_frame
       ~miss_send_len:(Some 128))

let populated_table ?(wildcards = 0) n =
  let table = Sdn_switch.Flow_table.create ~capacity:(2 * (n + wildcards)) () in
  for i = 0 to n - 1 do
    let key =
      Sdn_net.Flow_key.make ~proto:17
        ~src_ip:(Sdn_net.Ip.of_int32 (Int32.of_int (0x0A010000 + i)))
        ~dst_ip:ip2 ~src_port:(1000 + (i mod 16384)) ~dst_port:9
    in
    let fm =
      Sdn_openflow.Of_flow_mod.add
        ~match_:(Sdn_openflow.Of_match.of_flow_key key)
        ~actions:[ Sdn_openflow.Of_action.output 2 ]
        ()
    in
    ignore
      (Sdn_switch.Flow_table.insert table
         (Sdn_switch.Flow_entry.of_flow_mod fm ~now:0.0))
  done;
  for i = 0 to wildcards - 1 do
    (* Distinct ingress ports no benchmark packet arrives on: scanned
       by every slow-path lookup, matched by none. *)
    let fm =
      Sdn_openflow.Of_flow_mod.add ~priority:0
        ~match_:
          { Sdn_openflow.Of_match.wildcard_all with
            Sdn_openflow.Of_match.in_port = Some (10_000 + i) }
        ~actions:[ Sdn_openflow.Of_action.output 3 ]
        ()
    in
    ignore
      (Sdn_switch.Flow_table.insert table
         (Sdn_switch.Flow_entry.of_flow_mod fm ~now:0.0))
  done;
  table

(* A packet that matches rule 0 of [populated_table]. *)
let hit_packet =
  Sdn_net.Packet.udp ~src_mac:mac1 ~dst_mac:mac2
    ~src_ip:(Sdn_net.Ip.of_int32 0x0A010000l) ~dst_ip:ip2 ~src_port:1000
    ~dst_port:9
    ~payload:(Bytes.of_string "x")
    ()

(* Element type for the raw heap benchmark (tracks its own slot for
   indexed removal, the way engine handles do). *)
type heap_slot = { v : int; mutable idx : int }

let micro_tests () =
  let open Sdn_net in
  let open Sdn_openflow in
  let table1000 = populated_table 1000 in
  [
    Test.make ~name:"packet/encode-1000B"
      (Staged.stage (fun () -> ignore (Packet.encode sample_packet)));
    Test.make ~name:"packet/decode-1000B"
      (Staged.stage (fun () -> ignore (Packet.decode sample_frame)));
    Test.make ~name:"packet/peek-headers"
      (Staged.stage (fun () -> ignore (Packet.peek_headers sample_frame)));
    Test.make ~name:"openflow/encode-pkt_in-no-buffer"
      (Staged.stage (fun () ->
           ignore
             (Of_codec.encode ~xid:1l
                (Of_codec.Packet_in
                   (Of_packet_in.make ~buffer_id:Of_wire.no_buffer ~in_port:1
                      ~reason:Of_packet_in.No_match ~frame:sample_frame
                      ~miss_send_len:None)))));
    Test.make ~name:"openflow/encode-pkt_in-buffered"
      (Staged.stage (fun () ->
           ignore
             (Of_codec.encode ~xid:1l
                (Of_codec.Packet_in
                   (Of_packet_in.make ~buffer_id:7l ~in_port:1
                      ~reason:Of_packet_in.No_match ~frame:sample_frame
                      ~miss_send_len:(Some 128))))));
    Test.make ~name:"openflow/decode-pkt_in-no-buffer"
      (Staged.stage (fun () -> ignore (Of_codec.decode sample_pkt_in_full)));
    Test.make ~name:"openflow/decode-pkt_in-buffered"
      (Staged.stage (fun () -> ignore (Of_codec.decode sample_pkt_in_buffered)));
    Test.make ~name:"openflow/encode-flow_mod"
      (Staged.stage (fun () ->
           ignore (Of_codec.encode ~xid:1l sample_flow_mod_msg)));
    Test.make ~name:"flow-table/lookup-hit-1000-rules"
      (Staged.stage (fun () ->
           ignore (Sdn_switch.Flow_table.lookup table1000 ~in_port:1 hit_packet)));
    Test.make ~name:"flow-table/lookup-miss-1000-rules"
      (Staged.stage
         (let miss_packet =
            Packet.udp ~src_mac:mac1 ~dst_mac:mac2 ~src_ip:(Ip.make 192 168 0 1)
              ~dst_ip:ip2 ~src_port:1 ~dst_port:2 ~payload:Bytes.empty ()
          in
          fun () ->
            ignore (Sdn_switch.Flow_table.lookup table1000 ~in_port:1 miss_packet)));
    Test.make ~name:"buffer/packet-granularity-alloc-take"
      (Staged.stage
         (let engine = Sdn_sim.Engine.create () in
          let pool =
            Sdn_switch.Packet_buffer.create engine ~capacity:256 ~expiry:1e9
              ~reclaim_lag:0.0 ()
          in
          fun () ->
            match Sdn_switch.Packet_buffer.alloc pool ~frame:sample_frame with
            | Some id ->
                ignore (Sdn_switch.Packet_buffer.take pool id);
                (* Drain the engine so reclaim events do not pile up. *)
                Sdn_sim.Engine.run engine
            | None -> ()));
    Test.make ~name:"buf-policy/dt-admit-release"
      (Staged.stage
         (let engine = Sdn_sim.Engine.create () in
          let pool =
            Sdn_switch.Buf_policy.create
              ~kind:(Sdn_switch.Buf_policy.Dt { alpha = 2.0 })
              ~name:"bench" engine
          in
          let cls =
            Sdn_switch.Buf_policy.register pool ~name:"cls" ~quota:256
              ~priority:1
          in
          fun () ->
            if Sdn_switch.Buf_policy.admit cls then
              Sdn_switch.Buf_policy.release cls));
    Test.make ~name:"buf-policy/tdt-note_delay"
      (Staged.stage
         (let engine = Sdn_sim.Engine.create () in
          let pool =
            Sdn_switch.Buf_policy.create
              ~kind:
                (Sdn_switch.Buf_policy.Tdt
                   { alpha0 = 2.0; target_delay = 2e-3 })
              ~name:"bench" engine
          in
          let cls =
            Sdn_switch.Buf_policy.register pool ~name:"cls" ~quota:256
              ~priority:1
          in
          fun () -> Sdn_switch.Buf_policy.note_delay cls 1e-3));
    Test.make ~name:"buffer/flow-granularity-add-take_all"
      (Staged.stage
         (let engine = Sdn_sim.Engine.create () in
          let pool =
            Sdn_switch.Flow_buffer.create engine ~capacity:256 ~reclaim_lag:0.0
              ~resend_timeout:1e9 ~max_resends:0
              ~on_resend:(fun ~buffer_id:_ ~key:_ ~first_frame:_ -> ())
              ()
          in
          let key = Option.get (Sdn_net.Packet.flow_key sample_packet) in
          fun () ->
            match Sdn_switch.Flow_buffer.add pool ~key ~frame:sample_frame with
            | Sdn_switch.Flow_buffer.First id ->
                ignore (Sdn_switch.Flow_buffer.add pool ~key ~frame:sample_frame);
                ignore (Sdn_switch.Flow_buffer.take_all pool id);
                Sdn_sim.Engine.run engine
            | Sdn_switch.Flow_buffer.Appended _ | Sdn_switch.Flow_buffer.No_space
              ->
                ()));
    Test.make ~name:"engine/schedule-run-event"
      (Staged.stage
         (let engine = Sdn_sim.Engine.create () in
          fun () ->
            ignore (Sdn_sim.Engine.schedule engine ~delay:1e-9 (fun () -> ()));
            ignore (Sdn_sim.Engine.step engine)));
    (* ---- Hot-path subjects: fast vs slow classification, the
       allocation-free codec, and O(log n) cancellation. ---- *)
    Test.make ~name:"flow-table/lookup-cached-1k-mixed"
      (Staged.stage
         (let table = populated_table ~wildcards:32 968 in
          fun () ->
            ignore (Sdn_switch.Flow_table.lookup table ~in_port:1 hit_packet)));
    Test.make ~name:"flow-table/lookup-uncached-1k-mixed"
      (Staged.stage
         (let table = populated_table ~wildcards:32 968 in
          fun () ->
            ignore
              (Sdn_switch.Flow_table.lookup_uncached table ~in_port:1
                 hit_packet)));
    Test.make ~name:"openflow/encode-pkt_in-no-buffer-scratch"
      (Staged.stage
         (let scratch = Sdn_openflow.Of_wire.Scratch.create () in
          fun () ->
            ignore
              (Of_codec.encode_scratch scratch ~xid:1l
                 sample_pkt_in_full_msg)));
    Test.make ~name:"openflow/encode-pkt_in-buffered-scratch"
      (Staged.stage
         (let scratch = Sdn_openflow.Of_wire.Scratch.create () in
          fun () ->
            ignore
              (Of_codec.encode_scratch scratch ~xid:1l
                 sample_pkt_in_buffered_msg)));
    Test.make ~name:"openflow/encode-flow_mod-scratch"
      (Staged.stage
         (let scratch = Sdn_openflow.Of_wire.Scratch.create () in
          fun () ->
            ignore
              (Of_codec.encode_scratch scratch ~xid:1l sample_flow_mod_msg)));
    Test.make ~name:"openflow/decode_sub-pkt_in-buffered"
      (Staged.stage (fun () ->
           ignore
             (Of_codec.decode_sub sample_pkt_in_buffered ~pos:0
                ~len:(Bytes.length sample_pkt_in_buffered))));
    Test.make ~name:"engine/schedule-cancel"
      (Staged.stage
         (let engine = Sdn_sim.Engine.create () in
          fun () ->
            Sdn_sim.Engine.cancel
              (Sdn_sim.Engine.schedule engine ~delay:1.0 (fun () -> ()))));
    (* One packet through the allocation-free kernel: pool alloc,
       frame load, microflow classify + in-place TTL rewrite, egress
       ring, release.  The minor-words estimate for this subject is
       the zero-allocation guarantee the gate pins at 0. *)
    Test.make ~name:"switch/fast-path-packet"
      (Staged.stage
         (let fp_pool = Sdn_net.Frame_pool.create ~slots:16 ~slot_size:128 () in
          let fp =
            Sdn_switch.Fast_path.create ~pool:fp_pool ~n_ports:2
              ~ring_capacity:8 ()
          in
          let installed =
            Sdn_switch.Fast_path.install fp ~proto:Sdn_net.Ipv4.proto_udp
              ~src_ip:0x0A000001 ~dst_ip:0x0A000002 ~src_port:1000 ~dst_port:9
              ~out_port:1
          in
          assert installed;
          let template =
            Packet.encode
              (Packet.udp ~src_mac:mac1 ~dst_mac:mac2 ~src_ip:ip1 ~dst_ip:ip2
                 ~src_port:1000 ~dst_port:9
                 ~payload:(Bytes.make 18 'x')
                 ())
          in
          fun () ->
            let slot = Sdn_net.Frame_pool.alloc fp_pool in
            Sdn_net.Frame_pool.load fp_pool slot template;
            let port = Sdn_switch.Fast_path.process fp slot in
            let out = Sdn_switch.Fast_path.dequeue fp port in
            ignore (Sdn_net.Frame_pool.release fp_pool out : bool)));
    Test.make ~name:"heap/push-remove-1k"
      (Staged.stage
         (let heap =
            Sdn_sim.Heap.create ~capacity:2048
              ~set_index:(fun s i -> s.idx <- i)
              ~cmp:(fun a b -> Int.compare a.v b.v)
              ()
          in
          for i = 0 to 1022 do
            Sdn_sim.Heap.push heap { v = 2 * i; idx = -1 }
          done;
          let probe = { v = 1001; idx = -1 } in
          fun () ->
            Sdn_sim.Heap.push heap probe;
            ignore (Sdn_sim.Heap.remove heap probe.idx)));
    (* The analytical oracle's full evaluation for one operating point:
       the three-station Jackson solve, the feedback model, and the
       Erlang-B loss recursion at buffer-16. Pure closed-form float
       work — the gate pins its cost so the validation suite's
       prediction side stays negligible next to the simulator runs. *)
    Test.make ~name:"model/oracle-eval-point"
      (Staged.stage
         (let kernel =
            { Sdn_model.Jackson.name = "kernel"; service = 2e-6; servers = 1 }
          in
          let userspace =
            { Sdn_model.Jackson.name = "userspace"; service = 8e-6; servers = 1 }
          in
          let controller =
            {
              Sdn_model.Jackson.name = "controller";
              service = 250e-6;
              servers = 2;
            }
          in
          let params =
            {
              Sdn_model.Feedback.lambda = 2000.0;
              packet_in_prob = 0.5;
              switch_service = 10e-6;
              switch_servers = 1;
              controller_service = 250e-6;
              controller_servers = 2;
              loop_delay = 400e-6;
            }
          in
          fun () ->
            let net =
              Sdn_model.Jackson.solve ~arrival_rate:2000.0
                [ (kernel, 4.0); (userspace, 3.0); (controller, 1.0) ]
            in
            let fb = Sdn_model.Feedback.eval params in
            let b = Sdn_model.Mm1.erlang_b ~servers:16 ~offered_load:8.0 in
            ignore (Sdn_model.Jackson.response_time net);
            ignore fb.Sdn_model.Feedback.sojourn;
            ignore b));
    (* ---- Crash–restart subjects: what a cold restart costs. The
       wipe/rebuild cycle is the switch-side snapshot loss (buffered
       packets expired, flow entries cleared, then state re-grown);
       the stats round-trip is the reconciliation audit's wire work
       (one wildcard FLOW reply carrying the switch's table). ---- *)
    Test.make ~name:"crash/cold-wipe-restore-16"
      (Staged.stage
         (let engine = Sdn_sim.Engine.create () in
          let pool =
            Sdn_switch.Packet_buffer.create engine ~capacity:32 ~expiry:1e9
              ~reclaim_lag:0.0 ()
          in
          let table = Sdn_switch.Flow_table.create ~capacity:64 () in
          let mods =
            List.init 16 (fun i ->
                let key =
                  Sdn_net.Flow_key.make ~proto:17
                    ~src_ip:
                      (Sdn_net.Ip.of_int32 (Int32.of_int (0x0A020000 + i)))
                    ~dst_ip:ip2 ~src_port:(2000 + i) ~dst_port:9
                in
                Sdn_openflow.Of_flow_mod.add
                  ~match_:(Sdn_openflow.Of_match.of_flow_key key)
                  ~actions:[ Sdn_openflow.Of_action.output 2 ]
                  ())
          in
          fun () ->
            List.iter
              (fun fm ->
                ignore
                  (Sdn_switch.Packet_buffer.alloc pool ~frame:sample_frame);
                ignore
                  (Sdn_switch.Flow_table.insert table
                     (Sdn_switch.Flow_entry.of_flow_mod fm ~now:0.0)))
              mods;
            ignore (Sdn_switch.Packet_buffer.wipe pool);
            ignore (Sdn_switch.Flow_table.clear table)));
    Test.make ~name:"crash/reconcile-flow-stats-64"
      (Staged.stage
         (let stats =
            List.init 64 (fun i ->
                let key =
                  Sdn_net.Flow_key.make ~proto:17
                    ~src_ip:
                      (Sdn_net.Ip.of_int32 (Int32.of_int (0x0A030000 + i)))
                    ~dst_ip:ip2 ~src_port:(3000 + i) ~dst_port:9
                in
                {
                  Sdn_openflow.Of_stats.table_id = 0;
                  match_ = Sdn_openflow.Of_match.of_flow_key key;
                  duration_sec = 1l;
                  duration_nsec = 0l;
                  priority = 32768;
                  idle_timeout = 0;
                  hard_timeout = 0;
                  cookie = 0L;
                  packet_count = 10L;
                  byte_count = 10_000L;
                  actions = [ Sdn_openflow.Of_action.output 2 ];
                })
          in
          let reply =
            Sdn_openflow.Of_codec.Stats_reply
              (Sdn_openflow.Of_stats.Flow_reply stats)
          in
          fun () ->
            ignore
              (Sdn_openflow.Of_codec.decode
                 (Sdn_openflow.Of_codec.encode ~xid:1l reply))));
  ]

(* Bechamel's stock [Instance.minor_allocated] reads
   [(Gc.quick_stat ()).minor_words], which on OCaml 5.1 only advances
   at minor collections — sample windows short enough to fit in the
   young heap read an exact zero.  The dedicated [Gc.minor_words]
   primitive includes in-flight young-heap allocation, so register our
   own measure on top of it. *)
module Minor_words = struct
  type witness = unit

  let load () = ()
  let unload () = ()
  let make () = ()
  let get () = Gc.minor_words ()
  let label () = "minor-words"
  let unit () = "mnw"
end

let minor_words =
  Measure.instance (module Minor_words) (Measure.register (module Minor_words))

let bench_raw ~instances =
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let tests = Test.make_grouped ~name:"micro" (micro_tests ()) in
  Benchmark.all cfg instances tests

let analyze raw instance =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  Analyze.all ols instance raw

(* Per-subject per-run OLS estimates, name-sorted for determinism. *)
let collect_estimates results =
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some (e :: _) -> (name, e) :: acc
      | Some [] | None -> acc)
    results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let run_micro () =
  print_endline "== Micro-benchmarks (Bechamel, ns/run) ==";
  let raw = bench_raw ~instances:Instance.[ monotonic_clock ] in
  let results = analyze raw Instance.monotonic_clock in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> Printf.sprintf "%12.1f" e
        | Some [] | None -> "n/a"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "n/a"
      in
      rows := (name, estimate, r2) :: !rows)
    results;
  let rows =
    List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) !rows
  in
  Printf.printf "%-50s %14s %8s\n" "benchmark" "ns/run" "r^2";
  List.iter
    (fun (name, est, r2) -> Printf.printf "%-50s %14s %8s\n" name est r2)
    rows;
  print_newline ()

(* ---- Sweep throughput: the macro subject behind [--jobs]. ----

   A deliberately small Exp-A grid (4 rates x 2 reps = 8 independent
   replications, 60 flows each) run to completion at jobs = 1, 2 and
   4.  Bechamel's per-run OLS model fits ns-scale subjects, not a
   multi-millisecond macro job, so whole sweeps are timed directly
   against the monotonic clock, best of three after a warm-up.  The
   derived speedups are the portable metrics: absolute wall-clock
   cancels out of the ratio, leaving the Task_pool scaling factor.
   On a single-core host the ratio sits below 1 (extra domains only
   add stop-the-world minor-GC synchronisation); on a multi-core CI
   runner it must not regress below the recorded baseline. *)

let sweep_config ~rate_mbps ~seed =
  {
    (Sdn_core.Config.exp_a ~mechanism:Sdn_core.Config.Packet_granularity
       ~buffer_capacity:256 ~rate_mbps ~seed)
    with
    Sdn_core.Config.workload = Sdn_core.Config.Exp_a { n_flows = 60 };
  }

let time_sweep ~jobs =
  let run () =
    ignore
      (Sdn_core.Sweep.run ~label:"bench-sweep"
         ~rates:[ 20.0; 40.0; 60.0; 80.0 ] ~reps:2 ~jobs sweep_config)
  in
  run ();
  let now () = Monotonic_clock.get () in
  let best = ref Float.infinity in
  for _ = 1 to 3 do
    let t0 = now () in
    run ();
    let dt = now () -. t0 in
    if Float.compare dt !best < 0 then best := dt
  done;
  !best

let sweep_metrics () =
  let timings = List.map (fun jobs -> (jobs, time_sweep ~jobs)) [ 1; 2; 4 ] in
  let absolute =
    List.map
      (fun (jobs, ns) -> (Printf.sprintf "sweep/exp_a-small/jobs%d/ns" jobs, ns))
      timings
  in
  let t1 = List.assoc 1 timings in
  let speedups =
    List.filter_map
      (fun (jobs, ns) ->
        if jobs = 1 || Float.compare ns 1e-9 <= 0 then None
        else
          Some (Printf.sprintf "derived/sweep_speedup_jobs%d" jobs, t1 /. ns))
      timings
  in
  (absolute, speedups)

(* ---- Event-queue scaling: the hierarchical timer wheel against the
   indexed binary heap at extreme pending counts.

   Each trial fills a queue with [pending] events at deterministic
   pseudo-random times over a one-hour horizon, then drains it dry —
   the schedule+dispatch churn an extreme-scale run puts through the
   engine.  Per-event nanoseconds are recorded per backend and per
   size, and the portable gate pins the derived wheel-over-heap
   speedup, which must hold >= 2x at one million pending (the wheel's
   O(1) insert vs the heap's O(log n) sift). *)

type qev = { qt : float; qseq : int; mutable qidx : int }

let queue_events ~pending =
  let rng = Sdn_sim.Rng.of_int 42 in
  Array.init pending (fun i ->
      { qt = Sdn_sim.Rng.float rng 3600.0; qseq = i; qidx = -1 })

let heap_churn events =
  let n = Array.length events in
  let heap =
    Sdn_sim.Heap.create ~capacity:(n + 1)
      ~set_index:(fun e i -> e.qidx <- i)
      ~cmp:(fun a b ->
        let c = Float.compare a.qt b.qt in
        if c <> 0 then c else Int.compare a.qseq b.qseq)
      ()
  in
  let t0 = Monotonic_clock.get () in
  for i = 0 to n - 1 do
    Sdn_sim.Heap.push heap events.(i)
  done;
  while not (Sdn_sim.Heap.is_empty heap) do
    ignore (Sdn_sim.Heap.pop_exn heap)
  done;
  Monotonic_clock.get () -. t0

let wheel_churn events =
  let n = Array.length events in
  let wheel =
    Sdn_sim.Timer_wheel.create
      ~time:(fun e -> e.qt)
      ~seq:(fun e -> e.qseq)
      ~cancelled:(fun _ -> false)
      ()
  in
  let t0 = Monotonic_clock.get () in
  for i = 0 to n - 1 do
    Sdn_sim.Timer_wheel.add wheel events.(i)
  done;
  let continue = ref true in
  while !continue do
    if Sdn_sim.Timer_wheel.pop wheel = None then continue := false
  done;
  Monotonic_clock.get () -. t0

let queue_metrics () =
  (* Best-of shrinks with size: the big trials are stable (millions of
     operations) and expensive enough that repeats would dominate the
     bench run. *)
  let best rounds churn events =
    let best = ref Float.infinity in
    for _ = 1 to rounds do
      let dt = churn events in
      if Float.compare dt !best < 0 then best := dt
    done;
    !best
  in
  let sizes =
    [ ("10k", 10_000, 3); ("100k", 100_000, 3); ("1m", 1_000_000, 2);
      ("10m", 10_000_000, 1) ]
  in
  List.concat_map
    (fun (tag, pending, rounds) ->
      let events = queue_events ~pending in
      let heap_ns = best rounds heap_churn events in
      let wheel_ns = best rounds wheel_churn events in
      let per = 2.0 *. float_of_int pending in
      [
        (Printf.sprintf "event-queue/heap/%s-pending/ns-per-event" tag,
         heap_ns /. per);
        (Printf.sprintf "event-queue/wheel/%s-pending/ns-per-event" tag,
         wheel_ns /. per);
        (Printf.sprintf "derived/wheel_speedup_%s" tag, heap_ns /. wheel_ns);
      ])
    sizes

(* ---- The massive scenario, scaled down to bench size: the
   allocation-free datapath kernel and the sharded full-pipeline
   phase.  The words-per-packet metric is the portable zero-allocation
   guarantee of the switch fast path; the ns rates are informational
   (host-dependent). *)
let massive_metrics () =
  let t0 = Monotonic_clock.get () in
  let w0 = Gc.minor_words () in
  let dp = Sdn_core.Massive.run_datapath ~flows:1_000 ~packets:500_000 () in
  let w1 = Gc.minor_words () in
  let dp_ns = Monotonic_clock.get () -. t0 in
  let t1 = Monotonic_clock.get () in
  let pl = Sdn_core.Massive.run_pipeline ~flows:20_000 ~shards:4 () in
  let pl_ns = Monotonic_clock.get () -. t1 in
  let packets = float_of_int dp.Sdn_core.Massive.dp_packets in
  [
    ("massive/datapath/ns-per-packet", dp_ns /. packets);
    (* Setup (pool + table) allocates a handful of words; amortized
       over the packet loop this must stay ~0 or the fast path has
       started allocating. *)
    ("massive/datapath/minor-words-per-packet", (w1 -. w0) /. packets);
    ("massive/pipeline-small/ns-per-event",
     pl_ns /. float_of_int pl.Sdn_core.Massive.pl_sim_events);
    ("massive/pipeline-small/sim-events",
     float_of_int pl.Sdn_core.Massive.pl_sim_events);
  ]

(* ---- Machine-readable benchmark snapshot (the regression gate's
   input): every subject's ns/run and minor-words/run, plus derived
   higher-is-better ratios that are stable across machines. ---- *)

let find_metric metrics suffix =
  List.find_map
    (fun (name, v) ->
      let ls = String.length suffix and ln = String.length name in
      if ln >= ls && String.equal (String.sub name (ln - ls) ls) suffix then
        Some v
      else None)
    metrics

let run_json path =
  let raw = bench_raw ~instances:[ Instance.monotonic_clock; minor_words ] in
  let ns = collect_estimates (analyze raw Instance.monotonic_clock) in
  let words = collect_estimates (analyze raw minor_words) in
  let ratio num den =
    match (num, den) with
    | Some a, Some b when Float.compare b 1e-9 > 0 -> Some (a /. b)
    | Some _, Some _ | Some _, None | None, Some _ | None, None -> None
  in
  let derived =
    List.filter_map
      (fun (name, v) -> Option.map (fun v -> (name, v)) v)
      [
        (* How much faster the microflow fast path answers a warm
           lookup than the full classification on a 1k-entry table. *)
        ( "derived/flow_table_cache_speedup",
          ratio
            (find_metric ns "flow-table/lookup-uncached-1k-mixed")
            (find_metric ns "flow-table/lookup-cached-1k-mixed") );
        (* Allocation reduction of the scratch encoder on the
           dominant PACKET_IN shape (full frame attached). *)
        ( "derived/pkt_in_encode_alloc_speedup",
          ratio
            (find_metric words "openflow/encode-pkt_in-no-buffer")
            (find_metric words "openflow/encode-pkt_in-no-buffer-scratch") );
        ( "derived/flow_mod_encode_alloc_speedup",
          ratio
            (find_metric words "openflow/encode-flow_mod")
            (find_metric words "openflow/encode-flow_mod-scratch") );
      ]
  in
  let sweep_absolute, sweep_speedups = sweep_metrics () in
  let queue = queue_metrics () in
  let massive = massive_metrics () in
  let metrics =
    List.map (fun (n, v) -> (n ^ "/ns", v)) ns
    @ List.map (fun (n, v) -> (n ^ "/minor-words", v)) words
    @ sweep_absolute @ derived @ sweep_speedups @ queue @ massive
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "{\n  \"schema\": \"sdn-buffer-bench/1\",\n";
      Printf.fprintf oc "  \"metrics\": {\n";
      let n = List.length metrics in
      List.iteri
        (fun i (name, v) ->
          Printf.fprintf oc "    \"%s\": %.6g%s\n" name v
            (if i = n - 1 then "" else ","))
        metrics;
      Printf.fprintf oc "  }\n}\n");
  List.iter
    (fun (name, v) -> Printf.printf "%-60s %14.3f\n" name v)
    (derived @ sweep_speedups @ queue @ massive);
  Printf.printf "wrote %d metrics to %s\n" (List.length metrics) path

(* ---- Figure harness ---- *)

let run_figures ?reps () = Sdn_core.Figures.run_all ?reps ()

let run_one_figure id ?reps () =
  match List.assoc_opt id Sdn_core.Figures.exp_a_figures with
  | Some f -> f (Sdn_core.Figures.run_exp_a ?reps ())
  | None -> (
      match List.assoc_opt id Sdn_core.Figures.exp_b_figures with
      | Some f -> f (Sdn_core.Figures.run_exp_b ?reps ())
      | None -> Printf.eprintf "unknown figure %S\n" id)

let () =
  let args = Array.to_list Sys.argv in
  match args with
  | [ _ ] | [ _; "all" ] ->
      run_micro ();
      run_figures ();
      Sdn_core.Ablations.run_all ()
  | [ _; "micro" ] -> run_micro ()
  | [ _; "json" ] -> run_json "BENCH_pr10.json"
  | [ _; "json"; path ] -> run_json path
  | [ _; "ablations" ] -> Sdn_core.Ablations.run_all ()
  | [ _; "figures" ] -> run_figures ()
  | [ _; "figures"; reps ] -> run_figures ~reps:(int_of_string reps) ()
  | [ _; id ] -> run_one_figure id ()
  | [ _; id; reps ] -> run_one_figure id ~reps:(int_of_string reps) ()
  | _ ->
      prerr_endline "usage: main.exe [all|micro|figures [reps]|figN [reps]]";
      exit 2
