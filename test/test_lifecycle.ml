(* Acceptance tests for the session lifecycle under a mid-run
   control-channel blackout: fail-standalone keeps the data plane
   moving, fail-secure preserves buffered chains across the outage, and
   the whole scenario is seed-deterministic. *)

open Sdn_core

(* 20 flows x 10 packets at 15 Mbps inject from t = 0.05 for about
   0.1 s; the blackout at [0.069, 0.12) lands mid-run, opening just
   before a wave of new flows so some chains are caught in flight (and
   frozen) while later waves miss into the already-Down switch. The
   5 ms / 2-miss keepalive declares Down ~11 ms in. *)
let outage_config ~mechanism ~fail_mode ~seed =
  {
    Config.default with
    Config.mechanism;
    buffer_capacity = 256;
    rate_mbps = 15.0;
    workload =
      Config.Exp_b { n_flows = 20; packets_per_flow = 10; concurrent = 4 };
    seed;
    echo_interval = 0.005;
    echo_misses = 2;
    fail_mode;
    (* Generous budget so every chain frozen through the outage still
       fits its post-reconnect resend allowance. *)
    max_resends = 12;
    faults =
      {
        Sdn_sim.Faults.none with
        Sdn_sim.Faults.outages =
          [ { Sdn_sim.Faults.start_s = 0.069; stop_s = 0.12 } ];
      };
  }

let test_standalone_sustains_delivery () =
  let r =
    Experiment.run
      (outage_config ~mechanism:Config.Flow_granularity
         ~fail_mode:Config.Fail_standalone ~seed:3)
  in
  Alcotest.(check bool) "outage detected" true (r.Experiment.outage_detections >= 1);
  Alcotest.(check int) "no false positives" 0
    r.Experiment.outage_false_positives;
  Alcotest.(check bool) "standalone path carried traffic" true
    (r.Experiment.standalone_frames > 0);
  Alcotest.(check bool) "handshake replayed" true
    (r.Experiment.controller_resyncs >= 1);
  let delivery =
    float_of_int r.Experiment.packets_out
    /. float_of_int r.Experiment.packets_in
  in
  Alcotest.(check bool)
    (Printf.sprintf "delivery %.1f%% > 90%%" (delivery *. 100.0))
    true (delivery > 0.9)

let test_fail_secure_preserves_chains () =
  let r =
    Experiment.run
      (outage_config ~mechanism:Config.Flow_granularity
         ~fail_mode:Config.Fail_secure ~seed:3)
  in
  Alcotest.(check bool) "outage detected" true (r.Experiment.outage_detections >= 1);
  Alcotest.(check bool) "chains froze at session-down" true
    (r.Experiment.chains_frozen > 0);
  Alcotest.(check bool) "frozen chains re-requested" true
    (r.Experiment.chains_resumed >= r.Experiment.chains_frozen);
  Alcotest.(check int) "no chain lost within the resend budget" 0
    r.Experiment.flows_abandoned;
  Alcotest.(check bool) "handshake replayed" true
    (r.Experiment.controller_resyncs >= 1);
  (* The point of freezing: after reconnect, completion returns to
     1.0. *)
  Alcotest.(check int) "every flow completed"
    r.Experiment.flows_started r.Experiment.flows_completed

let test_fail_secure_drops_without_chains () =
  (* Packet-granularity has no flow chains to freeze: fail-secure
     drops miss-match traffic on the floor while Down. *)
  let r =
    Experiment.run
      (outage_config ~mechanism:Config.Packet_granularity
         ~fail_mode:Config.Fail_secure ~seed:3)
  in
  Alcotest.(check bool) "outage detected" true (r.Experiment.outage_detections >= 1);
  Alcotest.(check bool) "miss-match traffic dropped" true
    (r.Experiment.fail_secure_drops > 0);
  Alcotest.(check bool) "delivery suffered" true
    (r.Experiment.packets_out < r.Experiment.packets_in);
  Alcotest.(check int) "drops are accounted" r.Experiment.fail_secure_drops
    r.Experiment.packets_dropped

let test_outage_run_is_deterministic () =
  let run () =
    let r =
      Experiment.run
        (outage_config ~mechanism:Config.Flow_granularity
           ~fail_mode:Config.Fail_standalone ~seed:42)
    in
    Format.asprintf "%a" Experiment.pp_result r
  in
  let first = run () in
  let second = run () in
  Alcotest.(check string) "same seed, byte-identical report" first second

let suite =
  [
    Alcotest.test_case "fail-standalone sustains delivery" `Slow
      test_standalone_sustains_delivery;
    Alcotest.test_case "fail-secure preserves buffered chains" `Slow
      test_fail_secure_preserves_chains;
    Alcotest.test_case "fail-secure drops without chains" `Slow
      test_fail_secure_drops_without_chains;
    Alcotest.test_case "outage run is deterministic" `Slow
      test_outage_run_is_deterministic;
  ]
