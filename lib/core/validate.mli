(** Cross-validation of the simulator against the analytical oracle.

    The queueing models in [Sdn_model] predict the simulator's
    steady-state metrics in closed form — but only inside their
    operating regime: Poisson arrivals, exponential service,
    utilization below saturation. This module generates simulator
    configurations that {e satisfy} those assumptions (the
    [Poisson_flows]/[Poisson_mix] workloads, [Exponential] service
    noise, congestion/GC/amortization machinery neutralized, uniform
    per-node service times sized so every station stays inside its
    band), runs them through {!Exec.run_experiments} — inheriting the
    deterministic parallel contract and the [--check] replay — and
    asserts relative agreement within per-metric tolerance bands.

    Three regimes, each specialized to one model:

    - {b jackson}: every packet a fresh single-packet flow (packet-in
      probability 1) walked through the kernel / userspace /
      controller stations of an open Jackson network
      ({!Sdn_model.Jackson}), with the bus and the serialization links
      as M/G/1 and M/D/1 stages. Swept over controller utilization
      [rho] for each controller cost profile.
    - {b feedback}: Mahmood et al.'s single-node model
      ({!Sdn_model.Feedback}): Poisson traffic split between a primed
      long-lived flow and fresh flows with packet-in probability 1/2.
    - {b blocking}: the finite-buffer specialization — buffer-16 as an
      Erlang loss system ({!Sdn_model.Mm1.erlang_b}), swept over
      offered load in Erlangs; buffer-256 at the same rates never
      blocks, which is the paper's buffer-sizing argument.

    DESIGN.md section 12 derives every prediction and documents the
    tolerance rationale. *)

type tolerance = { rel : float; abs : float }
(** A metric agrees when
    [|predicted - observed| <= max (abs, rel *. |predicted|)]. *)

val agrees : tolerance -> predicted:float -> observed:float -> bool
(** The gating predicate: [|predicted - observed| <= max (abs,
    rel *. |predicted|)]. A non-finite observation (an empty series'
    [nan], a saturated run's [infinity]) never agrees — divergence, not
    a vacuous pass. *)

type metric = {
  m_name : string;
  predicted : float;
  observed : float;
  tol : tolerance;
  m_ok : bool;
}

type point = {
  regime : string;  (** ["jackson"], ["feedback"] or ["blocking"] *)
  profile : string;  (** controller cost profile name *)
  target : float;
      (** the swept coordinate: controller utilization [rho]
          (jackson/feedback) or offered load in Erlangs (blocking) *)
  lambda_pps : float;  (** external packet arrival rate *)
  rate_mbps : float;  (** the corresponding sending rate *)
  metrics : metric list;
  p_ok : bool;
}

type report = {
  points : point list;
  ok : bool;  (** every metric of every point within tolerance *)
  violations : int;  (** runtime-checker violations, when armed *)
}

type grid = {
  rhos : float list;  (** controller utilizations for jackson/feedback *)
  offered : float list;  (** offered loads (Erlangs) for blocking *)
  reps : int;  (** replications pooled per point *)
  packets : int;  (** packets injected per replication *)
  profiles : Sdn_controller.Costs.profile list;
}

val full_grid : grid
(** rho in {0.1, 0.3, 0.5, 0.7, 0.9}, offered in {10, 16, 22} Erlangs,
    3 replications of 1500 packets, all controller profiles. *)

val quick_grid : grid
(** CI-sized: rho in {0.2, 0.6}, offered {16}, 2 replications of 500
    packets, all profiles. *)

val golden_grid : grid
(** Byte-stable fixture for the golden test: rho in {0.3, 0.7},
    offered {8}, 1 replication of 600 packets, pox only (its low rates
    stretch the send window past the lead-in, and 8 Erlangs stays
    inside its stable band, so the single replication is
    well-conditioned). *)

val run : ?check:bool -> jobs:int -> grid -> report
(** Generate the grid's configurations, execute them on [jobs] worker
    domains ({!Exec.run_experiments}: byte-identical for every [jobs]
    value), pool replications and compare against the models.
    [check] arms the runtime protocol-invariant checker in every
    run. *)

val reconvergence : ?check:bool -> jobs:int -> unit -> report
(** Crash-reconvergence gate: re-run the jackson rho=0.3 point
    (pox profile) with a warm switch crash scheduled a third of
    the way into the send window and keepalive detection armed, then
    assert that the run still agrees with the crash-free analytical
    model. Only the per-message steady-state delay metrics
    ([controller_delay], [setup_delay]) are held to the grid's
    tolerance bands — frames arriving while the node is dead are lost
    unmeasured, so a recovered node must leave no lasting bias in them,
    while run-wide aggregates (CPU%, occupancy, rates) legitimately
    shift with the lost load and are excluded. Two extra metrics gate
    the recovery itself: [recovery_time_s] (observed time from crash to
    the session re-entering Up, predicted as the scheduled outage
    duration) and [reconciliations_per_crash] (exactly one completed
    flow-state reconciliation per crash; [nan] when no node ever
    crashed, which fails the band). Deterministic and byte-identical
    for every [jobs] value, like {!run}. *)

val csv : report -> string
(** Machine-readable agreement report, one row per (point, metric):
    [regime,profile,target,lambda_pps,rate_mbps,metric,predicted,
    observed,abs_error,tolerance,status]. Deterministic: byte-stable
    across [jobs] values and repeated runs. *)

val summary : report -> string
(** Human-readable table plus a pass/fail tail line. *)
