(** 48-bit Ethernet MAC addresses. *)

type t
(** A MAC address. Total order and equality are structural. *)

val of_octets : int -> int -> int -> int -> int -> int -> t
(** [of_octets a b c d e f] builds [a:b:c:d:e:f]. Each octet must be in
    [\[0, 255\]]; raises [Invalid_argument] otherwise. *)

val of_int64 : int64 -> t
(** Low 48 bits of the argument. *)

val to_int64 : t -> int64

val of_string : string -> (t, string) result
(** Parse ["aa:bb:cc:dd:ee:ff"] (case-insensitive). *)

val of_string_exn : string -> t

val to_string : t -> string
(** Lower-case colon-separated form. *)

val broadcast : t
(** [ff:ff:ff:ff:ff:ff]. *)

val zero : t

val is_broadcast : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

val write : t -> Bytes.t -> int -> unit
(** [write t buf off] stores the 6 octets at [buf.\[off..off+5\]]. *)

val read : Bytes.t -> int -> t
(** [read buf off] reads 6 octets. *)
