(** ARP for IPv4 over Ethernet (RFC 826). *)

type oper = Request | Reply

type t = {
  oper : oper;
  sender_mac : Mac.t;
  sender_ip : Ip.t;
  target_mac : Mac.t;
  target_ip : Ip.t;
}

val size : int
(** 28 bytes. *)

val request : sender_mac:Mac.t -> sender_ip:Ip.t -> target_ip:Ip.t -> t
(** A who-has request (target MAC zero). *)

val reply : t -> responder_mac:Mac.t -> t
(** Build the reply matching a request. *)

val write : t -> Bytes.t -> int -> unit
val read : Bytes.t -> int -> (t, string) result

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
