lib/switch/flow_entry.ml: Float Format Int32 Int64 Of_action Of_flow_mod Of_flow_removed Of_match Of_stats Sdn_openflow
