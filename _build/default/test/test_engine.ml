(* Tests for the discrete-event engine. *)

open Sdn_sim

let test_runs_in_time_order () =
  let engine = Engine.create () in
  let order = ref [] in
  ignore (Engine.schedule_at engine 3.0 (fun () -> order := 3 :: !order));
  ignore (Engine.schedule_at engine 1.0 (fun () -> order := 1 :: !order));
  ignore (Engine.schedule_at engine 2.0 (fun () -> order := 2 :: !order));
  Engine.run engine;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !order)

let test_fifo_tie_break () =
  let engine = Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule_at engine 1.0 (fun () -> order := i :: !order))
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "insertion order at equal time" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_clock_advances () =
  let engine = Engine.create () in
  let seen = ref [] in
  ignore (Engine.schedule_at engine 0.5 (fun () -> seen := Engine.now engine :: !seen));
  ignore (Engine.schedule_at engine 1.5 (fun () -> seen := Engine.now engine :: !seen));
  Engine.run engine;
  Alcotest.(check (list (float 1e-12))) "clock at event times" [ 0.5; 1.5 ]
    (List.rev !seen)

let test_schedule_relative () =
  let engine = Engine.create ~now:10.0 () in
  let fired_at = ref 0.0 in
  ignore (Engine.schedule engine ~delay:2.0 (fun () -> fired_at := Engine.now engine));
  Engine.run engine;
  Alcotest.(check (float 1e-12)) "relative delay" 12.0 !fired_at

let test_rejects_past () =
  let engine = Engine.create ~now:5.0 () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Engine.schedule_at engine 4.0 (fun () -> ()));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative delay raises" true
    (try
       ignore (Engine.schedule engine ~delay:(-1.0) (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_cancel () =
  let engine = Engine.create () in
  let fired = ref false in
  let handle = Engine.schedule_at engine 1.0 (fun () -> fired := true) in
  Engine.cancel handle;
  Alcotest.(check bool) "marked cancelled" true (Engine.is_cancelled handle);
  Engine.run engine;
  Alcotest.(check bool) "did not fire" false !fired

let test_events_schedule_events () =
  let engine = Engine.create () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then
      ignore
        (Engine.schedule engine ~delay:0.1 (fun () ->
             incr count;
             chain (n - 1)))
  in
  chain 10;
  Engine.run engine;
  Alcotest.(check int) "all chained events ran" 10 !count;
  Alcotest.(check (float 1e-9)) "clock" 1.0 (Engine.now engine)

let test_run_until () =
  let engine = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun t -> ignore (Engine.schedule_at engine t (fun () -> fired := t :: !fired)))
    [ 1.0; 2.0; 3.0 ];
  Engine.run ~until:2.5 engine;
  Alcotest.(check (list (float 1e-12))) "only events before limit" [ 1.0; 2.0 ]
    (List.rev !fired);
  Alcotest.(check (float 1e-12)) "clock advanced to limit" 2.5 (Engine.now engine);
  Alcotest.(check int) "one pending" 1 (Engine.pending engine);
  Engine.run engine;
  Alcotest.(check (list (float 1e-12))) "rest runs later" [ 1.0; 2.0; 3.0 ]
    (List.rev !fired)

let test_run_until_idle_advances_clock () =
  let engine = Engine.create () in
  Engine.run ~until:7.0 engine;
  Alcotest.(check (float 1e-12)) "clock" 7.0 (Engine.now engine)

let test_processed_counter () =
  let engine = Engine.create () in
  for _ = 1 to 4 do
    ignore (Engine.schedule engine ~delay:0.1 (fun () -> ()))
  done;
  let cancelled = Engine.schedule engine ~delay:0.2 (fun () -> ()) in
  Engine.cancel cancelled;
  Engine.run engine;
  Alcotest.(check int) "processed excludes cancelled" 4 (Engine.processed engine)

let test_step () =
  let engine = Engine.create () in
  ignore (Engine.schedule engine ~delay:1.0 (fun () -> ()));
  Alcotest.(check bool) "step runs one" true (Engine.step engine);
  Alcotest.(check bool) "then empty" false (Engine.step engine)

let suite =
  [
    Alcotest.test_case "time order" `Quick test_runs_in_time_order;
    Alcotest.test_case "FIFO tie-break" `Quick test_fifo_tie_break;
    Alcotest.test_case "clock advances to event times" `Quick test_clock_advances;
    Alcotest.test_case "relative scheduling" `Quick test_schedule_relative;
    Alcotest.test_case "rejects past times" `Quick test_rejects_past;
    Alcotest.test_case "cancellation" `Quick test_cancel;
    Alcotest.test_case "events schedule events" `Quick test_events_schedule_events;
    Alcotest.test_case "run ~until" `Quick test_run_until;
    Alcotest.test_case "run ~until with empty queue" `Quick
      test_run_until_idle_advances_clock;
    Alcotest.test_case "processed counter" `Quick test_processed_counter;
    Alcotest.test_case "single step" `Quick test_step;
  ]
