examples/udp_burst.ml: Config Experiment List Printf Report Sdn_core Sdn_measure
