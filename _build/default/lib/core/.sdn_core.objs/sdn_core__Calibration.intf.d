lib/core/calibration.mli: Sdn_controller Sdn_switch
