(** Calibration of the simulated testbed against the paper's hardware.

    The paper's Table I testbed: two hosts, one Open vSwitch box and
    one Floodlight box, 100 Mbps Ethernet everywhere, 1000-byte frames.
    Every constant below is chosen so that a specific observation from
    the paper's figures is reproduced; the comment on each value in the
    implementation names that observation. Absolute magnitudes are
    calibrated once and then {e held fixed} across all experiments —
    nothing is re-fitted per figure. *)

val data_link_bandwidth_bps : float
(** 100 Mbps host links (Fig. 1). *)

val data_link_latency : float
(** One-way propagation + NIC latency of a host link. *)

val control_link_bandwidth_bps : float
(** 100 Mbps control path (same class of NIC as the data path). *)

val control_link_latency : float
(** One-way control-channel latency including kernel TCP stack and
    socket scheduling — the dominant fixed term of the paper's
    controller delay (~0.7 ms round trip when unloaded, Fig. 6). *)

val encap_overhead_bytes : int
(** Ethernet + IPv4 + TCP framing around each OpenFlow message as seen
    by tcpdump on the control interface. *)

val switch_costs : Sdn_switch.Costs.t
(** See {!Sdn_switch.Costs} for the meaning of each field. *)

val controller_costs : Sdn_controller.Costs.t

val sanity : ?jobs:int -> unit -> (string * bool) list
(** Self-checks tying constants to the paper's headline observations
    (e.g. a buffered PACKET_IN must be several times smaller than the
    no-buffer one). Each entry is a description and whether it holds;
    tests assert they all do. The checks are independent pure
    conditions, so [jobs] (default 1) evaluates them through the same
    {!Sdn_sim.Task_pool} funnel as the sweeps — the verdict list is
    identical for every value. *)
