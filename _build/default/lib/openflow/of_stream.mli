(** Message framing over a byte stream.

    Real OpenFlow sessions run over TCP: the receiver sees arbitrary
    chunks in which messages coalesce and split. This module
    reassembles the stream back into whole messages using the length
    field of the common header, and conversely coalesces a batch of
    messages into one contiguous buffer (as a sender's socket write
    would).

    The simulated control channel in this repository delivers whole
    messages, so the framing layer is not on the hot path — it exists
    so the codec is usable against a real socket, and its tests pin the
    wire format's self-delimiting property. *)

type t
(** Reassembly state for one direction of one session. *)

val create : unit -> t

val input : t -> Bytes.t -> unit
(** Append a received chunk (any size, including empty). *)

val input_sub : t -> Bytes.t -> pos:int -> len:int -> unit
(** Append a slice of a larger buffer. *)

type event =
  | Message of int32 * Of_codec.msg  (** a complete, decoded message *)
  | Awaiting  (** need more bytes *)
  | Corrupt of string
      (** undecodable framing; the stream cannot be resynchronized and
          the session must be torn down, as a real agent would *)

val next : t -> event
(** Extract the next complete message, if any. After [Corrupt] every
    subsequent call returns the same [Corrupt]. *)

val drain : t -> ((int32 * Of_codec.msg) list, string) result
(** All currently complete messages; [Error] if corruption was hit
    (messages decoded before the corruption are lost — use {!next} to
    recover them one by one). *)

val buffered_bytes : t -> int
(** Bytes received but not yet consumed by {!next}. *)

val encode_batch : (int32 * Of_codec.msg) list -> Bytes.t
(** Concatenate encodings, oldest first — what a sender's buffered
    socket write puts on the wire. *)
