lib/net/udp.ml: Bytes Checksum Format Ip Ipv4
