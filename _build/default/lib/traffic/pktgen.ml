open Sdn_sim

type stats = { injected : int; bytes : int; first : float; last : float }

let schedule engine ~inject injections =
  List.iter
    (fun (inj : Patterns.injection) ->
      ignore
        (Engine.schedule_at engine inj.Patterns.time (fun () ->
             inject ~in_port:inj.Patterns.in_port inj.Patterns.frame)))
    injections

let stats_of injections =
  match injections with
  | [] -> { injected = 0; bytes = 0; first = 0.0; last = 0.0 }
  | first_inj :: _ ->
      let last_inj =
        List.fold_left (fun _ inj -> inj) first_inj injections
      in
      {
        injected = List.length injections;
        bytes = Patterns.total_bytes injections;
        first = first_inj.Patterns.time;
        last = last_inj.Patterns.time;
      }

let offered_rate_mbps stats =
  let span = stats.last -. stats.first in
  if span <= 0.0 || stats.injected <= 1 then 0.0
  else begin
    (* The last frame still needs its own serialization slot; include
       it so the rate matches the plan's nominal rate. *)
    let mean_gap = span /. float_of_int (stats.injected - 1) in
    Sdn_sim.Units.bps_to_mbps
      (Sdn_sim.Units.bytes_to_bits stats.bytes /. (span +. mean_gap))
  end
