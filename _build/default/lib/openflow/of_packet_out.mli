(** OpenFlow 1.0 [PACKET_OUT] message body.

    With a valid [buffer_id] the message merely names the stored packet
    and the actions to apply — a few bytes. With
    [buffer_id = NO_BUFFER] it must carry the whole frame back to the
    switch, which is the expensive controller-to-switch direction the
    paper measures in Figs. 2(b) and 9(b). *)

type t = {
  buffer_id : int32;
  in_port : int;  (** {!Of_wire.Port.none} if not meaningful *)
  actions : Of_action.t list;
  data : Bytes.t;  (** must be empty when [buffer_id] is valid *)
}

val release : buffer_id:int32 -> out_port:int -> t
(** The small message releasing a buffered packet through a port. *)

val full : frame:Bytes.t -> in_port:int -> out_port:int -> t
(** The large message carrying the full frame (no-buffer case). *)

val body_size : t -> int
(** 8 + actions + data. *)

val write_body : t -> Bytes.t -> int -> unit
val read_body : Bytes.t -> int -> len:int -> (t, string) result

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
