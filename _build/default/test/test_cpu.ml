(* Tests for the multi-core service-queue CPU model. *)

open Sdn_sim

let test_single_job () =
  let engine = Engine.create () in
  let cpu = Cpu.create engine ~name:"c" ~cores:1 () in
  let done_at = ref 0.0 in
  Cpu.submit cpu ~work_s:1e-3 (fun () -> done_at := Engine.now engine);
  Engine.run engine;
  Alcotest.(check (float 1e-12)) "service time" 1e-3 !done_at;
  Alcotest.(check int) "completed" 1 (Cpu.jobs_completed cpu)

let test_fifo_single_core () =
  let engine = Engine.create () in
  let cpu = Cpu.create engine ~name:"c" ~cores:1 () in
  let finish = ref [] in
  Cpu.submit cpu ~work_s:1e-3 (fun () -> finish := ("a", Engine.now engine) :: !finish);
  Cpu.submit cpu ~work_s:2e-3 (fun () -> finish := ("b", Engine.now engine) :: !finish);
  Alcotest.(check int) "one waiting" 1 (Cpu.queue_length cpu);
  Alcotest.(check int) "one in service" 1 (Cpu.in_service cpu);
  Engine.run engine;
  match List.rev !finish with
  | [ ("a", t1); ("b", t2) ] ->
      Alcotest.(check (float 1e-12)) "a" 1e-3 t1;
      Alcotest.(check (float 1e-12)) "b queued behind a" 3e-3 t2
  | _ -> Alcotest.fail "expected both jobs"

let test_two_cores_parallel () =
  let engine = Engine.create () in
  let cpu = Cpu.create engine ~name:"c" ~cores:2 () in
  let finish = ref [] in
  Cpu.submit cpu ~work_s:1e-3 (fun () -> finish := Engine.now engine :: !finish);
  Cpu.submit cpu ~work_s:1e-3 (fun () -> finish := Engine.now engine :: !finish);
  Engine.run engine;
  List.iter
    (fun t -> Alcotest.(check (float 1e-12)) "ran in parallel" 1e-3 t)
    !finish;
  Alcotest.(check int) "both done" 2 (List.length !finish)

let test_busy_integral () =
  let engine = Engine.create () in
  let cpu = Cpu.create engine ~name:"c" ~cores:2 () in
  Cpu.submit cpu ~work_s:1e-3 (fun () -> ());
  Cpu.submit cpu ~work_s:1e-3 (fun () -> ());
  Cpu.submit cpu ~work_s:1e-3 (fun () -> ());
  Engine.run engine;
  (* 3 ms of work total, regardless of parallelism. *)
  Alcotest.(check (float 1e-9)) "busy core seconds" 3e-3
    (Cpu.busy_core_seconds cpu);
  (* Over the 2 ms wall window that is 150% of one core. *)
  let pct = 3e-3 /. Engine.now engine *. 100.0 in
  Alcotest.(check bool) "utilization can exceed 100%" true (pct > 100.0)

let test_utilization_percent_helper () =
  let engine = Engine.create () in
  let cpu = Cpu.create engine ~name:"c" ~cores:1 () in
  let start = Engine.now engine in
  let integral_at_start = Cpu.busy_core_seconds cpu in
  Cpu.submit cpu ~work_s:2e-3 (fun () -> ());
  ignore (Engine.schedule_at engine 4e-3 (fun () -> ()));
  Engine.run engine;
  Alcotest.(check (float 1e-6)) "50% over window" 50.0
    (Cpu.utilization_percent cpu ~integral_at_start ~start)

let test_service_scale () =
  let engine = Engine.create () in
  (* Batching: everything after the first job runs at half cost. *)
  let scale ~queue_len = if queue_len > 0 then 0.5 else 1.0 in
  let cpu = Cpu.create engine ~name:"c" ~cores:1 ~service_scale:scale () in
  let finish = ref [] in
  for _ = 1 to 3 do
    Cpu.submit cpu ~work_s:1e-3 (fun () -> finish := Engine.now engine :: !finish)
  done;
  Engine.run engine;
  (* Job1 starts on an empty queue (1 ms); jobs 2 and 3 start with 1
     and 0 jobs still waiting respectively (0.5 ms and 1 ms). *)
  Alcotest.(check (float 1e-9)) "amortized finish" 2.5e-3 (Engine.now engine)

let test_noise_applied () =
  let engine = Engine.create () in
  let cpu = Cpu.create engine ~name:"c" ~cores:1 ~noise:(fun () -> 2.0) () in
  Cpu.submit cpu ~work_s:1e-3 (fun () -> ());
  Engine.run engine;
  Alcotest.(check (float 1e-12)) "doubled" 2e-3 (Engine.now engine)

let test_max_queue_watermark () =
  let engine = Engine.create () in
  let cpu = Cpu.create engine ~name:"c" ~cores:1 () in
  for _ = 1 to 5 do
    Cpu.submit cpu ~work_s:1e-4 (fun () -> ())
  done;
  Alcotest.(check int) "watermark" 4 (Cpu.max_queue_length cpu);
  Engine.run engine;
  Alcotest.(check int) "watermark persists" 4 (Cpu.max_queue_length cpu)

let test_finish_can_resubmit () =
  let engine = Engine.create () in
  let cpu = Cpu.create engine ~name:"c" ~cores:1 () in
  let count = ref 0 in
  let rec job () =
    incr count;
    if !count < 5 then Cpu.submit cpu ~work_s:1e-4 job
  in
  Cpu.submit cpu ~work_s:1e-4 job;
  Engine.run engine;
  Alcotest.(check int) "chain completed" 5 !count

let test_rejects_bad_args () =
  let engine = Engine.create () in
  Alcotest.(check bool) "zero cores" true
    (try
       ignore (Cpu.create engine ~name:"bad" ~cores:0 ());
       false
     with Invalid_argument _ -> true);
  let cpu = Cpu.create engine ~name:"c" ~cores:1 () in
  Alcotest.(check bool) "negative work" true
    (try
       Cpu.submit cpu ~work_s:(-1.0) (fun () -> ());
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "single job service time" `Quick test_single_job;
    Alcotest.test_case "FIFO on one core" `Quick test_fifo_single_core;
    Alcotest.test_case "two cores run in parallel" `Quick test_two_cores_parallel;
    Alcotest.test_case "busy integral" `Quick test_busy_integral;
    Alcotest.test_case "utilization helper" `Quick test_utilization_percent_helper;
    Alcotest.test_case "service scale (batching)" `Quick test_service_scale;
    Alcotest.test_case "noise factor" `Quick test_noise_applied;
    Alcotest.test_case "queue watermark" `Quick test_max_queue_watermark;
    Alcotest.test_case "finish continuation resubmits" `Quick
      test_finish_can_resubmit;
    Alcotest.test_case "argument validation" `Quick test_rejects_bad_args;
  ]
