(** Control-session lifecycle: echo-driven liveness, outage detection
    and reconnection with exponential backoff.

    OpenFlow 1.0 keeps the switch–controller connection alive with
    periodic [ECHO_REQUEST]/[ECHO_REPLY] pairs; a peer that stops
    answering is declared dead and the endpoint degrades (the switch
    into {e fail secure} or {e fail standalone} mode, §6.4 of the 1.0
    spec) until the channel is re-established. This module is that
    state machine, shared by both endpoints:

    {v
      Handshaking --activity--> Up --unanswered echo--> Probing
      Probing --reply--> Up
      Probing --echo_misses unanswered--> Down     (on_down fires)
      Down --first probe--> Reconnecting
      Down/Reconnecting --any reply/activity--> Up (on_restore fires)
    v}

    While Up/Probing it sends one keepalive echo per [echo_interval]
    and matches replies by xid (so reordered replies under jitter still
    match). Once Down it switches to reconnect probes on an
    exponential-backoff schedule ([reconnect_delay] doubling up to
    [reconnect_cap]). Replies to pre-outage keepalives that arrive
    after the Down transition are counted as {e false positives} — the
    channel was merely slow, not dead.

    With [echo_interval <= 0] the machine is passive: it only tracks
    Handshaking → Up and never declares an outage, which keeps
    echo-free experiments byte-identical to earlier versions. *)

open Sdn_sim

type state = Handshaking | Up | Probing | Down | Reconnecting

val state_to_string : state -> string

(** OpenFlow 1.0 switch behaviour while the controller is unreachable. *)
type fail_mode =
  | Fail_secure
      (** drop miss-match traffic; buffered chains freeze until
          reconnect *)
  | Fail_standalone  (** forward via an internal L2 learning path *)

val fail_mode_to_string : fail_mode -> string

val fail_mode_of_string : string -> (fail_mode, string) result
(** Accepts ["secure"] / ["fail-secure"] / ["fail_secure"] and the
    standalone spellings. *)

type config = {
  echo_interval : float;  (** seconds between keepalives; [<= 0] disables *)
  echo_misses : int;  (** unanswered echoes before declaring Down *)
  reconnect_delay : float;  (** first reconnect probe delay *)
  reconnect_multiplier : float;  (** backoff growth, [>= 1] *)
  reconnect_cap : float;  (** backoff ceiling *)
}

val default_config : config
(** Disabled echo (interval 0), 3 misses, 50 ms → ×2 → 400 ms probes. *)

type t

val create :
  Engine.t ->
  ?check:Sdn_check.Check.t ->
  ?name:string ->
  config:config ->
  fresh_xid:(unit -> int32) ->
  send_echo:(xid:int32 -> unit) ->
  on_down:(unit -> unit) ->
  on_restore:(downtime:float -> unit) ->
  unit ->
  t
(** [send_echo] must transmit an [ECHO_REQUEST] with the given xid to
    the peer; [on_down] fires on the Up/Probing → Down transition,
    [on_restore] on recovery (with the measured downtime), before the
    keepalive loop restarts.

    With [check] armed, every state transition is reported to the
    invariant checker under [name] (default ["session"]) and verified
    against the legal transition set. *)

val start : t -> unit
(** Begin the keepalive loop (no-op when disabled or already running). *)

val note_activity : t -> unit
(** Any successfully decoded message from the peer arrived. Promotes
    Handshaking → Up, clears a Probing suspicion, and restores a
    Down/Reconnecting session (traffic is proof of liveness) — unless
    the outage began with an observed connection death
    ({!note_disconnect}/{!force_down}), in which case stray traffic may
    be the old connection draining and only an answered reconnect
    probe restores. *)

val note_echo_reply : t -> xid:int32 -> unit
(** An [ECHO_REPLY] with this xid arrived. Matched against outstanding
    keepalives and reconnect probes; unmatched replies still count as
    activity. *)

val force_down : t -> unit
(** The owning process crashed: cancel every timer, forget outstanding
    echoes and probes (a late reply to a pre-crash echo is {e not} a
    false positive — the process really died) and transition to Down
    ([on_down] fires) {e without} arming reconnect probes: a dead
    process cannot probe. Idempotent while already Down/Reconnecting
    (still silences probes). Pair with {!revive} at restart. *)

val revive : t -> unit
(** The owning process restarted: if the session is Down/Reconnecting,
    arm the first reconnect probe (backoff restarts at attempt 0);
    otherwise just re-arm the keepalive loop. *)

val note_disconnect : t -> unit
(** The {e peer's} process died under the connection (a visible TCP
    reset, not silent loss). This side is alive, so it goes Down the
    normal way — [on_down] fires and reconnect probes are armed — and
    keeps probing until the peer returns. Keepalives in flight died
    with the connection: the pending-echo bookkeeping is discarded, a
    late reply is not a false positive, and until a probe is answered
    stray traffic does not restore the session. No-op while already
    Down/Reconnecting. *)

val state : t -> state
val is_down : t -> bool
(** [true] in Down or Reconnecting — the caller should degrade. *)

val downs : t -> int
(** Outage detections (Up/Probing → Down transitions). *)

val false_positives : t -> int
(** Down declarations later contradicted by a reply to a pre-outage
    keepalive. *)

val echoes_sent : t -> int
val probes_sent : t -> int
val replies_matched : t -> int
val replies_unmatched : t -> int
val echo_rtts : t -> Stats.t
val recovery_times : t -> Stats.t
(** Down → Up durations, one sample per recovered outage. *)

val total_downtime : t -> float
(** Cumulative seconds spent Down/Reconnecting, including a still-open
    outage up to the engine's current time. *)

val transitions : t -> (float * state) list
(** The state timeseries, chronological: (time, entered state). *)

val pp_state : Format.formatter -> state -> unit
val pp : Format.formatter -> t -> unit
