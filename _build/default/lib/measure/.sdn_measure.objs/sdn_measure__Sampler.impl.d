lib/measure/sampler.ml: Cpu Engine List Sdn_sim Timeseries
