type burst = {
  p_good_to_bad : float;
  p_bad_to_good : float;
  loss_good : float;
  loss_bad : float;
}

type outage = { start_s : float; stop_s : float }

type restart_mode = Warm | Cold

let restart_mode_to_string = function Warm -> "warm" | Cold -> "cold"

let restart_mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "warm" -> Ok Warm
  | "cold" -> Ok Cold
  | other -> Error (Printf.sprintf "restart mode %S: want warm or cold" other)

type crash_node = Switch_node | Controller_node

let crash_node_to_string = function
  | Switch_node -> "switch"
  | Controller_node -> "controller"

let crash_node_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "switch" | "sw" -> Ok Switch_node
  | "controller" | "ctl" -> Ok Controller_node
  | other -> Error (Printf.sprintf "crash node %S: want switch or controller" other)

type crash = {
  node : crash_node;
  at_s : float;
  down_s : float;
  mode : restart_mode;
}

type spec = {
  loss_rate : float;
  burst : burst option;
  jitter_s : float;
  outages : outage list;
  crashes : crash list;
}

let none =
  {
    loss_rate = 0.0;
    burst = None;
    jitter_s = 0.0;
    outages = [];
    crashes = [];
  }

let is_none spec =
  spec.loss_rate = 0.0 && spec.burst = None && spec.jitter_s = 0.0
  && spec.outages = [] && spec.crashes = []

let prob_ok p = p >= 0.0 && p <= 1.0

let validate spec =
  if not (prob_ok spec.loss_rate) then Error "loss rate out of [0, 1]"
  else if spec.jitter_s < 0.0 then Error "negative jitter"
  else if
    List.exists
      (fun o -> o.start_s < 0.0 || o.stop_s < o.start_s)
      spec.outages
  then Error "malformed outage window (want 0 <= start <= stop)"
  else if
    List.exists (fun c -> c.at_s < 0.0 || c.down_s < 0.0) spec.crashes
  then Error "malformed crash (want crash time >= 0 and down duration >= 0)"
  else begin
    match spec.burst with
    | Some b
      when not
             (prob_ok b.p_good_to_bad && prob_ok b.p_bad_to_good
             && prob_ok b.loss_good && prob_ok b.loss_bad) ->
        Error "burst probability out of [0, 1]"
    | Some _ | None -> Ok spec
  end

let spec_to_string spec =
  if is_none spec then "none"
  else begin
    let fields = ref [] in
    let add s = fields := s :: !fields in
    if spec.crashes <> [] then
      add
        (Printf.sprintf "crash=%s"
           (String.concat "+"
              (List.map
                 (fun c ->
                   Printf.sprintf "%s:%g:%g:%s"
                     (crash_node_to_string c.node)
                     c.at_s c.down_s
                     (restart_mode_to_string c.mode))
                 spec.crashes)));
    if spec.outages <> [] then
      add
        (Printf.sprintf "outage=%s"
           (String.concat "+"
              (List.map
                 (fun o -> Printf.sprintf "%g-%g" o.start_s o.stop_s)
                 spec.outages)));
    if spec.jitter_s > 0.0 then add (Printf.sprintf "jitter=%g" spec.jitter_s);
    (match spec.burst with
    | Some b ->
        add
          (Printf.sprintf "burst=%g:%g:%g:%g" b.p_good_to_bad b.p_bad_to_good
             b.loss_bad b.loss_good)
    | None -> ());
    if spec.loss_rate > 0.0 then add (Printf.sprintf "loss=%g" spec.loss_rate);
    String.concat "," !fields
  end

let float_of_string_opt' s = float_of_string_opt (String.trim s)

let parse_outages value =
  let windows = String.split_on_char '+' value in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | w :: rest -> (
        match String.index_opt w '-' with
        | None -> Error (Printf.sprintf "outage %S: want T0-T1" w)
        | Some i -> (
            let t0 = float_of_string_opt' (String.sub w 0 i) in
            let t1 =
              float_of_string_opt'
                (String.sub w (i + 1) (String.length w - i - 1))
            in
            match (t0, t1) with
            | Some start_s, Some stop_s -> go ({ start_s; stop_s } :: acc) rest
            | _ -> Error (Printf.sprintf "outage %S: bad number" w)))
  in
  go [] windows

let parse_crashes value =
  let entries = String.split_on_char '+' value in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | entry :: rest -> (
        match String.split_on_char ':' entry with
        | [ node_s; at_s_s; down_s_s; mode_s ] -> (
            match (crash_node_of_string node_s, restart_mode_of_string mode_s)
            with
            | Error _ as e, _ | _, (Error _ as e) -> e
            | Ok node, Ok mode -> (
                match
                  (float_of_string_opt' at_s_s, float_of_string_opt' down_s_s)
                with
                | Some at_s, Some down_s ->
                    go ({ node; at_s; down_s; mode } :: acc) rest
                | _ -> Error (Printf.sprintf "crash %S: bad number" entry)))
        | _ ->
            Error
              (Printf.sprintf "crash %S: want NODE:AT:DOWN:MODE" entry))
  in
  go [] entries

let parse_burst value =
  match List.map float_of_string_opt' (String.split_on_char ':' value) with
  | [ Some p_good_to_bad; Some p_bad_to_good ] ->
      Ok { p_good_to_bad; p_bad_to_good; loss_good = 0.0; loss_bad = 1.0 }
  | [ Some p_good_to_bad; Some p_bad_to_good; Some loss_bad ] ->
      Ok { p_good_to_bad; p_bad_to_good; loss_good = 0.0; loss_bad }
  | [ Some p_good_to_bad; Some p_bad_to_good; Some loss_bad; Some loss_good ]
    ->
      Ok { p_good_to_bad; p_bad_to_good; loss_good; loss_bad }
  | _ -> Error (Printf.sprintf "burst %S: want PGB:PBG[:LBAD[:LGOOD]]" value)

let spec_of_string s =
  let s = String.trim s in
  if s = "" || s = "none" then Ok none
  else begin
    let fields = String.split_on_char ',' s in
    let rec go spec = function
      | [] -> validate spec
      | field :: rest -> (
          match String.index_opt field '=' with
          | None -> Error (Printf.sprintf "field %S: want key=value" field)
          | Some i -> (
              let key = String.trim (String.sub field 0 i) in
              let value =
                String.trim
                  (String.sub field (i + 1) (String.length field - i - 1))
              in
              match key with
              | "loss" -> (
                  match float_of_string_opt' value with
                  | Some loss_rate -> go { spec with loss_rate } rest
                  | None -> Error (Printf.sprintf "loss %S: bad number" value))
              | "jitter" -> (
                  match float_of_string_opt' value with
                  | Some jitter_s -> go { spec with jitter_s } rest
                  | None ->
                      Error (Printf.sprintf "jitter %S: bad number" value))
              | "burst" -> (
                  match parse_burst value with
                  | Ok b -> go { spec with burst = Some b } rest
                  | Error _ as e -> e)
              | "outage" -> (
                  match parse_outages value with
                  | Ok outages ->
                      go { spec with outages = spec.outages @ outages } rest
                  | Error _ as e -> e)
              | "crash" -> (
                  match parse_crashes value with
                  | Ok crashes ->
                      go { spec with crashes = spec.crashes @ crashes } rest
                  | Error _ as e -> e)
              | _ -> Error (Printf.sprintf "unknown fault field %S" key)))
    in
    go none fields
  end

let crashes_for spec node =
  List.stable_sort
    (fun a b -> Float.compare a.at_s b.at_s)
    (List.filter (fun c -> c.node = node) spec.crashes)

type reason = Independent_loss | Burst_loss | Outage

let reason_to_string = function
  | Independent_loss -> "independent-loss"
  | Burst_loss -> "burst-loss"
  | Outage -> "outage"

type verdict = Deliver of { jitter_s : float } | Drop of reason

type t = {
  spec : spec;
  rng : Rng.t;
  mutable bad : bool;
  mutable judged : int;
  mutable dropped_independent : int;
  mutable dropped_burst : int;
  mutable dropped_outage : int;
  mutable delayed : int;
  mutable total_jitter_s : float;
}

let create ?(spec = none) ~rng () =
  (match validate spec with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Faults.create: " ^ e));
  {
    spec;
    rng;
    bad = false;
    judged = 0;
    dropped_independent = 0;
    dropped_burst = 0;
    dropped_outage = 0;
    delayed = 0;
    total_jitter_s = 0.0;
  }

let in_outage t ~now =
  List.exists (fun o -> now >= o.start_s && now < o.stop_s) t.spec.outages

(* Sample the burst chain for one message: loss draw in the current
   state, then one transition. Returns whether the message is lost. *)
let burst_step t (b : burst) =
  let loss_p = if t.bad then b.loss_bad else b.loss_good in
  let lost = loss_p > 0.0 && Rng.float t.rng 1.0 < loss_p in
  let flip_p = if t.bad then b.p_bad_to_good else b.p_good_to_bad in
  if flip_p > 0.0 && Rng.float t.rng 1.0 < flip_p then t.bad <- not t.bad;
  lost

let judge t ~now =
  t.judged <- t.judged + 1;
  if in_outage t ~now then begin
    t.dropped_outage <- t.dropped_outage + 1;
    Drop Outage
  end
  else begin
    let burst_lost =
      match t.spec.burst with Some b -> burst_step t b | None -> false
    in
    if burst_lost then begin
      t.dropped_burst <- t.dropped_burst + 1;
      Drop Burst_loss
    end
    else if t.spec.loss_rate > 0.0 && Rng.float t.rng 1.0 < t.spec.loss_rate
    then begin
      t.dropped_independent <- t.dropped_independent + 1;
      Drop Independent_loss
    end
    else begin
      let jitter_s =
        if t.spec.jitter_s > 0.0 then Rng.float t.rng t.spec.jitter_s else 0.0
      in
      if jitter_s > 0.0 then begin
        t.delayed <- t.delayed + 1;
        t.total_jitter_s <- t.total_jitter_s +. jitter_s
      end;
      Deliver { jitter_s }
    end
  end

let spec t = t.spec
let in_bad_state t = t.bad
let judged t = t.judged

let dropped t = t.dropped_independent + t.dropped_burst + t.dropped_outage

let dropped_by t = function
  | Independent_loss -> t.dropped_independent
  | Burst_loss -> t.dropped_burst
  | Outage -> t.dropped_outage

let delayed t = t.delayed
let total_jitter_s t = t.total_jitter_s
