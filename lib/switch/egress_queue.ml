open Sdn_sim

type policy = Fifo | Strict_priority | Drr of { quantum : int }

type queue_config = {
  queue_id : int32;
  priority : int;
  weight : int;
  capacity : int;
}

let default_queue = { queue_id = 0l; priority = 0; weight = 1; capacity = 512 }

type class_queue = {
  config : queue_config;
  frames : (float * Bytes.t) Queue.t;  (** enqueue time, frame *)
  mutable deficit : int;  (** DRR byte credit *)
  mutable sent : int;
  mutable dropped : int;
  delays : Stats.t;
  shared_cls : Buf_policy.cls option;
      (** when the scheduler draws on a shared buffer pool, the class
          this queue claims units from *)
}

type t = {
  engine : Engine.t;
  link : Bytes.t Link.t;
  policy : policy;
  classes : class_queue array;  (** strict-priority order, best first *)
  mutable drr_cursor : int;
  mutable drr_visit_credited : bool;
  mutable pump_armed : bool;
  mutable misrouted : int;
      (** frames sent with an unknown [queue_id]: typed-dropped, never
          enqueued (and in particular never into the top class) *)
}

let create ?shared engine ~link ~policy ~queues =
  if queues = [] then invalid_arg "Egress_queue.create: no queues";
  let ids = List.map (fun q -> q.queue_id) queues in
  if List.length (List.sort_uniq Int32.compare ids) <> List.length ids then
    invalid_arg "Egress_queue.create: duplicate queue ids";
  List.iter
    (fun q ->
      if q.weight <= 0 then invalid_arg "Egress_queue.create: weight must be positive";
      if q.capacity <= 0 then invalid_arg "Egress_queue.create: capacity must be positive")
    queues;
  let sorted =
    List.sort (fun a b -> Int.compare b.priority a.priority) queues
  in
  {
    engine;
    link;
    policy;
    classes =
      Array.of_list
        (List.map
           (fun config ->
             let shared_cls =
               match shared with
               | None -> None
               | Some (pool, prefix) ->
                   (* Registration follows the sorted class order, so a
                      given queue set always produces the same shared-
                      pool ledger regardless of input ordering. *)
                   Some
                     (Buf_policy.register pool
                        ~name:
                          (Printf.sprintf "%s/q%ld" prefix config.queue_id)
                        ~quota:config.capacity ~priority:config.priority)
             in
             {
               config;
               frames = Queue.create ();
               deficit = 0;
               sent = 0;
               dropped = 0;
               delays = Stats.create ();
               shared_cls;
             })
           sorted);
    drr_cursor = 0;
    drr_visit_credited = false;
    pump_armed = false;
    misrouted = 0;
  }

(* Exact lookup: [None] for an id no configured queue carries. The old
   fall-through to [classes.(0)] silently promoted misrouted frames to
   the top-priority class. *)
let class_for_opt t queue_id =
  let found = ref None in
  Array.iter
    (fun c ->
      if !found = None && Int32.equal c.config.queue_id queue_id then
        found := Some c)
    t.classes;
  !found

let class_for t queue_id =
  match class_for_opt t queue_id with
  | Some c -> c
  | None ->
      invalid_arg
        (Printf.sprintf "Egress_queue: unknown queue id %ld" queue_id)

let backlog t =
  Array.fold_left (fun acc c -> acc + Queue.length c.frames) 0 t.classes

(* Pick the next class to serve, or None if everything is empty. *)
let next_class t =
  match t.policy with
  | Fifo | Strict_priority ->
      (* Classes are stored best-priority-first; FIFO has one queue. *)
      let found = ref None in
      Array.iter
        (fun c -> if !found = None && not (Queue.is_empty c.frames) then found := Some c)
        t.classes;
      !found
  | Drr { quantum } ->
      let n = Array.length t.classes in
      if backlog t = 0 then None
      else begin
        (* Classic deficit round robin (Shreedhar & Varghese): each
           visit to a non-empty class credits it quantum * weight ONCE;
           the class is served while its deficit covers its head frame,
           then the cursor moves on. A class may need several rounds of
           credit for a large frame, so the hunt is bounded generously
           and falls back to the first non-empty class if exceeded. *)
        let advance () =
          t.drr_cursor <- (t.drr_cursor + 1) mod n;
          t.drr_visit_credited <- false
        in
        let max_steps = n * ((16_000 / max 1 quantum) + 2) in
        let rec hunt steps =
          if steps > max_steps then begin
            let found = ref None in
            Array.iter
              (fun c ->
                if !found = None && not (Queue.is_empty c.frames) then
                  found := Some c)
              t.classes;
            !found
          end
          else begin
            let c = t.classes.(t.drr_cursor) in
            if Queue.is_empty c.frames then begin
              c.deficit <- 0;
              advance ();
              hunt (steps + 1)
            end
            else begin
              if not t.drr_visit_credited then begin
                c.deficit <- c.deficit + (quantum * c.config.weight);
                t.drr_visit_credited <- true
              end;
              let _, head = Queue.peek c.frames in
              if c.deficit >= Bytes.length head then Some c
              else begin
                advance ();
                hunt (steps + 1)
              end
            end
          end
        in
        hunt 0
      end

let rec pump t =
  let now = Engine.now t.engine in
  let busy_until = Link.busy_until t.link in
  if busy_until > now then arm_at t busy_until
  else begin
    match next_class t with
    | None -> ()
    | Some c ->
        let enqueued_at, frame = Queue.pop c.frames in
        (match t.policy with
        | Drr _ ->
            c.deficit <- c.deficit - Bytes.length frame;
            if Queue.is_empty c.frames then begin
              (* The class emptied mid-visit: reset and move on. *)
              c.deficit <- 0;
              t.drr_cursor <-
                (t.drr_cursor + 1) mod Array.length t.classes;
              t.drr_visit_credited <- false
            end
        | Fifo | Strict_priority -> ());
        c.sent <- c.sent + 1;
        Stats.add c.delays (now -. enqueued_at);
        (match c.shared_cls with
        | Some cls ->
            Buf_policy.release cls;
            Buf_policy.note_delay cls (now -. enqueued_at)
        | None -> ());
        Link.send t.link ~size:(Bytes.length frame) frame;
        (* The wire is now busy until this frame finishes; come back. *)
        if backlog t > 0 then arm_at t (Link.busy_until t.link)
  end

and arm_at t time =
  if not t.pump_armed then begin
    t.pump_armed <- true;
    ignore
      (Engine.schedule_at t.engine time (fun () ->
           t.pump_armed <- false;
           pump t))
  end

(* One unit of queue room, from the shared pool when attached and from
   the class's own tail-drop capacity otherwise. Under the [Static]
   policy the two are equivalent: the class quota equals the configured
   capacity and the class length mirrors the queue length exactly. *)
let admit_frame c =
  match c.shared_cls with
  | Some cls -> Buf_policy.admit cls
  | None -> Queue.length c.frames < c.config.capacity

let send t ~queue_id frame =
  let target =
    match queue_id with
    | Some qid -> class_for_opt t qid
    | None -> (
        (* Plain Output actions (no queue selected) keep their historic
           default: queue 0 when configured, else the first class. *)
        match class_for_opt t 0l with
        | Some c -> Some c
        | None -> Some t.classes.(0))
  in
  match target with
  | None ->
      (* Unknown queue id: a typed drop, counted but never enqueued —
         promoting it to the top-priority class would let a bogus id
         jump the scheduling order. *)
      t.misrouted <- t.misrouted + 1
  | Some c ->
      if not (admit_frame c) then c.dropped <- c.dropped + 1
      else begin
        Queue.push (Engine.now t.engine, frame) c.frames;
        pump t
      end

let queued t ~queue_id = Queue.length (class_for t queue_id).frames
let sent t ~queue_id = (class_for t queue_id).sent
let dropped t ~queue_id = (class_for t queue_id).dropped
let misrouted t = t.misrouted

let total_dropped t =
  Array.fold_left (fun acc c -> acc + c.dropped) 0 t.classes

let queue_delay_stats t ~queue_id = (class_for t queue_id).delays
