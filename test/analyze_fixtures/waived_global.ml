(* Clean fixture: the shared counter is deliberate and carries a
   per-site waiver with its reason, the same idiom the lint uses. *)

let total = ref 0

(* analyze: allow par-global -- fixture: deliberately shared counter *)
let work () = incr total

let launch () = Task_pool.run work
