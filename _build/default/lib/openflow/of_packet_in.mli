(** OpenFlow 1.0 [PACKET_IN] message body — the request a switch sends
    the controller for a miss-match packet.

    The size of this message is the heart of the paper's benefits
    analysis: with no buffer, [buffer_id] is {!Of_wire.no_buffer} and
    [data] carries the whole frame; with a buffer, [buffer_id]
    identifies the stored packet and [data] carries only the first
    [miss_send_len] bytes (128 by default in OpenFlow 1.0). *)

type reason = No_match | Action

type t = {
  buffer_id : int32;
  total_len : int;  (** full length of the original frame *)
  in_port : int;
  reason : reason;
  data : Bytes.t;  (** whole frame, or its first [miss_send_len] bytes *)
}

val default_miss_send_len : int
(** 128 bytes, per the OpenFlow 1.0 default configuration. *)

val make :
  buffer_id:int32 -> in_port:int -> reason:reason -> frame:Bytes.t ->
  miss_send_len:int option -> t
(** Build a [PACKET_IN] for a captured frame. [miss_send_len = None]
    means the whole frame is included (the no-buffer case); [Some n]
    truncates the data to [n] bytes (the buffered case). *)

val body_size : t -> int
(** 10 + data bytes. *)

val write_body : t -> Bytes.t -> int -> unit
val read_body : Bytes.t -> int -> len:int -> (t, string) result

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
