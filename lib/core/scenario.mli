(** The experimental platform of the paper's Fig. 1, assembled:

    {v
      Host1 --100Mbps--> [port 1] Switch [port 2] --100Mbps--> Host2
                                   |
                              control path
                                   |
                               Controller
    v}

    with a tcpdump-style capture on the control channel, delay trackers
    at the switch's interfaces, and both hosts able to inject (Host2
    injects the reverse direction of TCP scenarios). *)

open Sdn_sim
open Sdn_measure

type t = {
  engine : Engine.t;
  switch : Sdn_switch.Switch.t;
  controller : Sdn_controller.Controller.t;
  check : Sdn_check.Check.t option;
      (** the runtime invariant checker, armed when the config's
          [check] flag is set *)
  capture : Capture.t;
  delay : Delay.t;
  host1_link : Bytes.t Link.t;  (** Host1 -> switch port 1 *)
  host2_link : Bytes.t Link.t;  (** Host2 -> switch port 2 *)
  to_host1 : Bytes.t Link.t;  (** switch port 1 egress *)
  to_host2 : Bytes.t Link.t;  (** switch port 2 egress *)
  to_controller : Bytes.t Link.t;
  to_switch : Bytes.t Link.t;
  faults_up : Faults.t;  (** fault plan on the switch-to-controller leg *)
  faults_down : Faults.t;  (** fault plan on the controller-to-switch leg *)
  traffic_rng : Rng.t;
  mutable host1_received : int;
  mutable host2_received : int;
  mutable crash_events_rev : (float * string) list;
      (** injected crash/restart events, newest first; read through
          {!crash_events} *)
}

val build : Config.t -> t
(** Construct and hand-shake the whole platform (switch housekeeping
    started, controller HELLO / FEATURES exchanged at time zero, flow
    granularity enabled over the vendor extension when configured). *)

val inject : t -> in_port:int -> Bytes.t -> unit
(** Send a frame from the host attached to [in_port] (1 or 2). *)

val crash_events : t -> (float * string) list
(** The crash/restart events the fault plan's crash schedule injected,
    oldest first — e.g. [("0.2", "switch crash (cold)")] followed by
    the matching restart. Empty when the plan has no crashes. *)

val run_until_quiet : ?grace:float -> ?min_time:float -> t -> unit
(** Run the engine until every injected packet has either egressed or
    been dropped, probing in [grace]-second slices (default 2). Pass
    [min_time] (absolute simulation time) to keep running at least
    that long even through quiet periods — needed for workloads with
    idle gaps, such as the TCP rule-eviction scenario. *)
