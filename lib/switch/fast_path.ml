(* Steady-state forwarding kernel over pooled frames: every per-packet
   structure is an int array, every per-packet value an untagged int,
   so a microflow hit runs without minor-heap allocation. *)

open Sdn_net

type t = {
  pool : Frame_pool.t;
  mask : int;
  (* Open-addressing microflow table, linear probing. A slot is
     occupied iff [ports.(i) >= 0]; the 5-tuple is packed into two
     ints ([keys1] = src_ip:16+src_port, [keys2] =
     dst_ip:24 + dst_port:8 + proto). *)
  keys1 : int array;
  keys2 : int array;
  ports : int array;
  load_limit : int;
  mutable entries : int;
  (* Per-port egress rings of slot ids. *)
  rings : int array array;
  ring_mask : int;
  heads : int array;
  tails : int array;
  mutable hits : int;
  mutable misses : int;
  mutable drops : int;
}

let rec pow2_at_least n c = if c >= n then c else pow2_at_least n (c * 2)

let create ~pool ~n_ports ?(table_capacity = 65536) ?(ring_capacity = 4096) ()
    =
  if n_ports <= 0 then
    invalid_arg "Fast_path.create: n_ports must be positive";
  let cap = pow2_at_least (max 16 table_capacity) 16 in
  let ring_cap = pow2_at_least (max 16 ring_capacity) 16 in
  {
    pool;
    mask = cap - 1;
    keys1 = Array.make cap 0;
    keys2 = Array.make cap 0;
    ports = Array.make cap (-1);
    (* 3/4 load cap keeps linear-probe chains short and bounded. *)
    load_limit = cap - (cap / 4);
    entries = 0;
    rings = Array.init n_ports (fun _ -> Array.make ring_cap 0);
    ring_mask = ring_cap - 1;
    heads = Array.make n_ports 0;
    tails = Array.make n_ports 0;
    hits = 0;
    misses = 0;
    drops = 0;
  }

(* Deterministic avalanche over the packed key pair; odd multipliers
   spread consecutive IPs/ports across the table. *)
let slot_hash t k1 k2 =
  let h = (k1 * 0x9E3779B1) lxor (k2 * 0x85EBCA77) in
  (h lxor (h lsr 16)) land t.mask

let install t ~proto ~src_ip ~dst_ip ~src_port ~dst_port ~out_port =
  if out_port < 0 || out_port >= Array.length t.rings then false
  else begin
    let k1 = (src_ip lsl 16) lor (src_port land 0xFFFF) in
    let k2 = (dst_ip lsl 24) lor ((dst_port land 0xFFFF) lsl 8) lor (proto land 0xFF) in
    let i = ref (slot_hash t k1 k2) in
    while
      t.ports.(!i) >= 0 && not (t.keys1.(!i) = k1 && t.keys2.(!i) = k2)
    do
      i := (!i + 1) land t.mask
    done;
    if t.ports.(!i) >= 0 then begin
      (* Same key: replace the mapping. *)
      t.ports.(!i) <- out_port;
      true
    end
    else if t.entries >= t.load_limit then false
    else begin
      t.keys1.(!i) <- k1;
      t.keys2.(!i) <- k2;
      t.ports.(!i) <- out_port;
      t.entries <- t.entries + 1;
      true
    end
  end

let flush t =
  Array.fill t.ports 0 (Array.length t.ports) (-1);
  t.entries <- 0

let process t slot =
  let pool = t.pool in
  let proto = Frame_pool.get_u8 pool slot Frame_pool.off_proto in
  let src_ip = Frame_pool.get_u32 pool slot Frame_pool.off_src_ip in
  let dst_ip = Frame_pool.get_u32 pool slot Frame_pool.off_dst_ip in
  let src_port = Frame_pool.get_u16 pool slot Frame_pool.off_src_port in
  let dst_port = Frame_pool.get_u16 pool slot Frame_pool.off_dst_port in
  let k1 = (src_ip lsl 16) lor src_port in
  let k2 = (dst_ip lsl 24) lor (dst_port lsl 8) lor proto in
  let i = ref (slot_hash t k1 k2) in
  while
    Array.unsafe_get t.ports (!i land t.mask) >= 0
    && not
         (Array.unsafe_get t.keys1 !i = k1
         && Array.unsafe_get t.keys2 !i = k2)
  do
    i := (!i + 1) land t.mask
  done;
  let port = Array.unsafe_get t.ports !i in
  if port < 0 then begin
    t.misses <- t.misses + 1;
    -1
  end
  else begin
    let head = Array.unsafe_get t.heads port in
    let tail = Array.unsafe_get t.tails port in
    if tail - head > t.ring_mask then begin
      t.drops <- t.drops + 1;
      -2
    end
    else begin
      ignore (Frame_pool.dec_ttl pool slot);
      let ring = Array.unsafe_get t.rings port in
      Array.unsafe_set ring (tail land t.ring_mask) slot;
      Array.unsafe_set t.tails port (tail + 1);
      t.hits <- t.hits + 1;
      port
    end
  end

let dequeue t port =
  let head = t.heads.(port) in
  if head = t.tails.(port) then -1
  else begin
    t.heads.(port) <- head + 1;
    t.rings.(port).(head land t.ring_mask)
  end

let queue_length t port = t.tails.(port) - t.heads.(port)
let entries t = t.entries
let hits t = t.hits
let misses t = t.misses
let drops t = t.drops
