lib/core/ablations.mli:
