open Sdn_sim
open Sdn_measure
open Sdn_traffic

type summary = {
  count : int;
  mean : float;
  sd : float;
  min : float;
  max : float;
}

let summary_of_stats stats =
  {
    count = Stats.count stats;
    mean = Stats.mean stats;
    sd = Stats.stddev stats;
    min = (if Stats.count stats = 0 then 0.0 else Stats.min stats);
    max = (if Stats.count stats = 0 then 0.0 else Stats.max stats);
  }

type result = {
  config : Config.t;
  send_window : float;
  observe_window : float;
  ctrl_load_up_mbps : float;
  ctrl_load_down_mbps : float;
  ctrl_msgs_up : int;
  ctrl_msgs_down : int;
  pkt_ins : int;
  pkt_in_resends : int;
  full_packet_fallbacks : int;
  ctrl_msgs_lost : int;
  controller_cpu_pct : float;
  switch_cpu_pct : float;
  setup_delay : summary;
  controller_delay : summary;
  switch_delay : summary;
  forwarding_delay : summary;
  buffer_mean_in_use : float;
  buffer_max_in_use : int;
  (* Shared-buffer policy layer (empty/zero — and unprinted — when no
     policy is configured, keeping default runs byte-identical). *)
  buf_policy : string option;
  pool_classes : Sdn_switch.Buf_policy.class_stat list;
  egress_misrouted : int;
  flows_started : int;
  flows_completed : int;
  flows_recovered : int;
  flows_abandoned : int;
  recovery_delay : summary;
  recovery_delay_samples : float array;
  packets_in : int;
  packets_out : int;
  packets_dropped : int;
  (* Controller-session lifecycle (all zero when echo keepalive is
     disabled). *)
  outage_detections : int;
  outage_false_positives : int;
  session_downtime : float;
  session_recovery : summary;
  session_transitions : (float * string) list;
  standalone_frames : int;
  fail_secure_drops : int;
  chains_frozen : int;
  chains_resumed : int;
  chains_expired : int;
  controller_downs : int;
  controller_resyncs : int;
  microflow_hits : int;
  microflow_misses : int;
  (* Crash–restart fault injection (all zero/empty when the fault plan
     schedules no crashes). *)
  node_crashes : int;
  packets_lost_to_crash : int;
  crash_msgs_lost : int;
  crash_recovery : summary;
  reconcile_audits : int;
  reconcile_installs : int;
  overload_sheds : int;
  sim_events : int;
  crash_events : (float * string) list;
  check_violations : int;
  check_report : string option;
}

(* Injections start after the handshake has settled. *)
let traffic_start = 0.05

let injections_of (config : Config.t) rng =
  match config.Config.workload with
  | Config.Exp_a { n_flows } ->
      Patterns.exp_a ~rng ~start:traffic_start ~n_flows
        ~rate_mbps:config.Config.rate_mbps ~frame_size:config.Config.frame_size
        ()
  | Config.Exp_b { n_flows; packets_per_flow; concurrent } ->
      Patterns.exp_b ~rng ~start:traffic_start ~n_flows ~packets_per_flow
        ~concurrent ~rate_mbps:config.Config.rate_mbps
        ~frame_size:config.Config.frame_size ()
  | Config.Udp_burst { n_packets } ->
      Patterns.udp_burst ~rng ~start:traffic_start ~n_packets
        ~rate_mbps:config.Config.rate_mbps ~frame_size:config.Config.frame_size
        ()
  | Config.Poisson_flows { n_flows } ->
      Patterns.poisson_flows ~rng ~start:traffic_start ~n_flows
        ~rate_mbps:config.Config.rate_mbps ~frame_size:config.Config.frame_size
        ()
  | Config.Poisson_mix { n_packets; miss_fraction } ->
      (* The primer goes at traffic_start; the mix begins prime_lead
         later, once flow 0's rule is installed. *)
      Patterns.poisson_mix ~rng ~start:traffic_start ~n_packets ~miss_fraction
        ~rate_mbps:config.Config.rate_mbps ~frame_size:config.Config.frame_size
        ()

let run (config : Config.t) =
  let scenario = Scenario.build config in
  let engine = scenario.Scenario.engine in
  let injections = injections_of config scenario.Scenario.traffic_rng in
  let plan = Pktgen.stats_of injections in
  Pktgen.schedule engine
    ~inject:(fun ~in_port frame -> Scenario.inject scenario ~in_port frame)
    injections;
  Scenario.run_until_quiet ~min_time:plan.Pktgen.last scenario;
  let capture = scenario.Scenario.capture in
  let delay = scenario.Scenario.delay in
  let switch = scenario.Scenario.switch in
  let send_window = plan.Pktgen.last -. plan.Pktgen.first in
  let window_end =
    List.fold_left Float.max plan.Pktgen.last
      [
        Delay.last_egress_time delay;
        Option.value ~default:0.0 (Capture.last_time capture Capture.To_controller);
        Option.value ~default:0.0 (Capture.last_time capture Capture.To_switch);
      ]
  in
  let observe_window = Float.max 1e-9 (window_end -. plan.Pktgen.first) in
  let counters = Sdn_switch.Switch.counters switch in
  let session = Sdn_switch.Switch.session switch in
  let controller_counters =
    Sdn_controller.Controller.counters scenario.Scenario.controller
  in
  let controller_cpu =
    Cpu.busy_core_seconds (Sdn_controller.Controller.cpu scenario.Scenario.controller)
  in
  let switch_cpu = Sdn_switch.Switch.cpu_busy_core_seconds switch in
  let session_transitions =
    List.map
      (fun (time, state) -> (time, Sdn_switch.Session.state_to_string state))
      (Sdn_switch.Session.transitions session)
  in
  let injected_crash_events = Scenario.crash_events scenario in
  let crash_events =
    (* Injected crash/restart events merged chronologically with the
       controller's reconciliation outcomes. *)
    List.stable_sort
      (fun (ta, _) (tb, _) -> Float.compare ta tb)
      (injected_crash_events
      @ Sdn_controller.Controller.reconcile_events scenario.Scenario.controller)
  in
  let crash_recovery =
    (* Recovery time to steady state: from each injected crash to the
       first subsequent return of the switch session to Up (handshake
       replayed, buffered chains resumed, reconciliation under way). *)
    let stats = Stats.create () in
    let ups =
      List.filter_map
        (fun (time, state) ->
          if String.equal state "up" then Some time else None)
        session_transitions
    in
    let mentions_crash what =
      let needle = "crash" in
      let nl = String.length needle and wl = String.length what in
      let rec scan i =
        i + nl <= wl && (String.sub what i nl = needle || scan (i + 1))
      in
      scan 0
    in
    List.iter
      (fun (t0, what) ->
        if mentions_crash what then
          match List.find_opt (fun tu -> Float.compare tu t0 > 0) ups with
          | Some tu -> Stats.add stats (tu -. t0)
          | None -> ())
      injected_crash_events;
    summary_of_stats stats
  in
  {
    config;
    send_window;
    observe_window;
    ctrl_load_up_mbps = Capture.load_mbps capture Capture.To_controller ~window:observe_window;
    ctrl_load_down_mbps = Capture.load_mbps capture Capture.To_switch ~window:observe_window;
    ctrl_msgs_up = Capture.messages capture Capture.To_controller;
    ctrl_msgs_down = Capture.messages capture Capture.To_switch;
    pkt_ins = counters.Sdn_switch.Switch.pkt_ins_sent;
    pkt_in_resends = counters.Sdn_switch.Switch.pkt_in_resends;
    full_packet_fallbacks = counters.Sdn_switch.Switch.full_packet_fallbacks;
    ctrl_msgs_lost =
      Sdn_sim.Link.messages_lost scenario.Scenario.to_controller
      + Sdn_sim.Link.messages_lost scenario.Scenario.to_switch;
    controller_cpu_pct = controller_cpu /. observe_window *. 100.0;
    switch_cpu_pct = switch_cpu /. observe_window *. 100.0;
    setup_delay = summary_of_stats (Delay.flow_setup_delays delay);
    controller_delay = summary_of_stats (Delay.controller_delays delay);
    switch_delay = summary_of_stats (Delay.switch_delays delay);
    forwarding_delay = summary_of_stats (Delay.flow_forwarding_delays delay);
    buffer_mean_in_use = Sdn_switch.Switch.buffer_mean_in_use switch ~until:window_end;
    buffer_max_in_use = Sdn_switch.Switch.buffer_max_in_use switch;
    buf_policy =
      Option.map Sdn_switch.Buf_policy.kind_to_string
        config.Config.buf_policy;
    pool_classes =
      (match Sdn_switch.Switch.shared_pool switch with
      | Some pool -> Sdn_switch.Buf_policy.stats pool ~until:window_end
      | None -> []);
    egress_misrouted = Sdn_switch.Switch.egress_misrouted switch;
    flows_started = Delay.flows_started delay;
    flows_completed = Delay.flows_completed delay;
    flows_recovered = Sdn_switch.Switch.flows_recovered switch;
    flows_abandoned = Sdn_switch.Switch.flows_abandoned switch;
    recovery_delay =
      summary_of_stats (Sdn_switch.Switch.recovery_delays switch);
    recovery_delay_samples =
      Stats.samples (Sdn_switch.Switch.recovery_delays switch);
    packets_in = Delay.packets_in delay;
    packets_out = Delay.packets_out delay;
    packets_dropped = counters.Sdn_switch.Switch.frames_dropped;
    outage_detections = Sdn_switch.Session.downs session;
    outage_false_positives = Sdn_switch.Session.false_positives session;
    session_downtime = Sdn_switch.Session.total_downtime session;
    session_recovery =
      summary_of_stats (Sdn_switch.Session.recovery_times session);
    session_transitions;
    standalone_frames = counters.Sdn_switch.Switch.standalone_frames;
    fail_secure_drops = counters.Sdn_switch.Switch.fail_secure_drops;
    chains_frozen = Sdn_switch.Switch.chains_frozen switch;
    chains_resumed = Sdn_switch.Switch.chains_resumed switch;
    chains_expired = Sdn_switch.Switch.chains_expired_on_resume switch;
    controller_downs = controller_counters.Sdn_controller.Controller.switch_downs;
    controller_resyncs = controller_counters.Sdn_controller.Controller.resyncs;
    microflow_hits =
      Sdn_switch.Flow_table.microflow_hits (Sdn_switch.Switch.flow_table switch);
    microflow_misses =
      Sdn_switch.Flow_table.microflow_misses
        (Sdn_switch.Switch.flow_table switch);
    node_crashes =
      counters.Sdn_switch.Switch.crashes
      + controller_counters.Sdn_controller.Controller.crashes;
    packets_lost_to_crash =
      counters.Sdn_switch.Switch.crash_lost_frames
      + counters.Sdn_switch.Switch.crash_wiped_packets;
    crash_msgs_lost =
      counters.Sdn_switch.Switch.crash_lost_messages
      + controller_counters.Sdn_controller.Controller.crash_lost_messages;
    crash_recovery;
    reconcile_audits =
      controller_counters.Sdn_controller.Controller.reconcile_audits;
    reconcile_installs =
      controller_counters.Sdn_controller.Controller.reconcile_installs;
    overload_sheds = counters.Sdn_switch.Switch.overload_sheds;
    sim_events = Sdn_sim.Engine.processed scenario.Scenario.engine;
    crash_events;
    check_violations =
      (match scenario.Scenario.check with
      | Some check -> Sdn_check.Check.violation_count check
      | None -> 0);
    check_report =
      (match scenario.Scenario.check with
      | Some check when Sdn_check.Check.violation_count check > 0 ->
          Some (Sdn_check.Check.report check)
      | Some _ | None -> None);
  }

(* ---- Field-for-field comparison ----

   The parallel-equivalence replay check compares a parallel task's
   result against its sequential rerun. Floats are compared exactly
   (Float.compare, so NaN = NaN): the determinism contract is
   byte-identical output, not approximate agreement. [config] is
   excluded — it holds the same value by construction and may carry a
   closure (qos classify) that structural equality cannot inspect. *)

let float_eq a b = Float.compare a b = 0

let summary_eq a b =
  a.count = b.count && float_eq a.mean b.mean && float_eq a.sd b.sd
  && float_eq a.min b.min && float_eq a.max b.max

let float_array_eq a b =
  Array.length a = Array.length b && Array.for_all2 float_eq a b

let transitions_eq a b =
  List.equal
    (fun (ta, sa) (tb, sb) -> float_eq ta tb && String.equal sa sb)
    a b

let class_stat_eq (a : Sdn_switch.Buf_policy.class_stat)
    (b : Sdn_switch.Buf_policy.class_stat) =
  let open Sdn_switch.Buf_policy in
  String.equal a.class_name b.class_name
  && a.quota = b.quota && a.priority = b.priority
  && float_eq a.occupancy_mean b.occupancy_mean
  && a.occupancy_max = b.occupancy_max
  && a.threshold = b.threshold
  && float_eq a.alpha b.alpha
  && a.admitted = b.admitted && a.rejected = b.rejected

let diff_result a b =
  let mismatches = ref [] in
  let chk name equal = if not equal then mismatches := name :: !mismatches in
  chk "send_window" (float_eq a.send_window b.send_window);
  chk "observe_window" (float_eq a.observe_window b.observe_window);
  chk "ctrl_load_up_mbps" (float_eq a.ctrl_load_up_mbps b.ctrl_load_up_mbps);
  chk "ctrl_load_down_mbps"
    (float_eq a.ctrl_load_down_mbps b.ctrl_load_down_mbps);
  chk "ctrl_msgs_up" (a.ctrl_msgs_up = b.ctrl_msgs_up);
  chk "ctrl_msgs_down" (a.ctrl_msgs_down = b.ctrl_msgs_down);
  chk "pkt_ins" (a.pkt_ins = b.pkt_ins);
  chk "pkt_in_resends" (a.pkt_in_resends = b.pkt_in_resends);
  chk "full_packet_fallbacks" (a.full_packet_fallbacks = b.full_packet_fallbacks);
  chk "ctrl_msgs_lost" (a.ctrl_msgs_lost = b.ctrl_msgs_lost);
  chk "controller_cpu_pct" (float_eq a.controller_cpu_pct b.controller_cpu_pct);
  chk "switch_cpu_pct" (float_eq a.switch_cpu_pct b.switch_cpu_pct);
  chk "setup_delay" (summary_eq a.setup_delay b.setup_delay);
  chk "controller_delay" (summary_eq a.controller_delay b.controller_delay);
  chk "switch_delay" (summary_eq a.switch_delay b.switch_delay);
  chk "forwarding_delay" (summary_eq a.forwarding_delay b.forwarding_delay);
  chk "buffer_mean_in_use" (float_eq a.buffer_mean_in_use b.buffer_mean_in_use);
  chk "buffer_max_in_use" (a.buffer_max_in_use = b.buffer_max_in_use);
  chk "buf_policy" (Option.equal String.equal a.buf_policy b.buf_policy);
  chk "pool_classes" (List.equal class_stat_eq a.pool_classes b.pool_classes);
  chk "egress_misrouted" (a.egress_misrouted = b.egress_misrouted);
  chk "flows_started" (a.flows_started = b.flows_started);
  chk "flows_completed" (a.flows_completed = b.flows_completed);
  chk "flows_recovered" (a.flows_recovered = b.flows_recovered);
  chk "flows_abandoned" (a.flows_abandoned = b.flows_abandoned);
  chk "recovery_delay" (summary_eq a.recovery_delay b.recovery_delay);
  chk "recovery_delay_samples"
    (float_array_eq a.recovery_delay_samples b.recovery_delay_samples);
  chk "packets_in" (a.packets_in = b.packets_in);
  chk "packets_out" (a.packets_out = b.packets_out);
  chk "packets_dropped" (a.packets_dropped = b.packets_dropped);
  chk "outage_detections" (a.outage_detections = b.outage_detections);
  chk "outage_false_positives"
    (a.outage_false_positives = b.outage_false_positives);
  chk "session_downtime" (float_eq a.session_downtime b.session_downtime);
  chk "session_recovery" (summary_eq a.session_recovery b.session_recovery);
  chk "session_transitions"
    (transitions_eq a.session_transitions b.session_transitions);
  chk "standalone_frames" (a.standalone_frames = b.standalone_frames);
  chk "fail_secure_drops" (a.fail_secure_drops = b.fail_secure_drops);
  chk "chains_frozen" (a.chains_frozen = b.chains_frozen);
  chk "chains_resumed" (a.chains_resumed = b.chains_resumed);
  chk "chains_expired" (a.chains_expired = b.chains_expired);
  chk "controller_downs" (a.controller_downs = b.controller_downs);
  chk "controller_resyncs" (a.controller_resyncs = b.controller_resyncs);
  chk "microflow_hits" (a.microflow_hits = b.microflow_hits);
  chk "microflow_misses" (a.microflow_misses = b.microflow_misses);
  chk "node_crashes" (a.node_crashes = b.node_crashes);
  chk "packets_lost_to_crash"
    (a.packets_lost_to_crash = b.packets_lost_to_crash);
  chk "crash_msgs_lost" (a.crash_msgs_lost = b.crash_msgs_lost);
  chk "crash_recovery" (summary_eq a.crash_recovery b.crash_recovery);
  chk "reconcile_audits" (a.reconcile_audits = b.reconcile_audits);
  chk "reconcile_installs" (a.reconcile_installs = b.reconcile_installs);
  chk "overload_sheds" (a.overload_sheds = b.overload_sheds);
  chk "sim_events" (a.sim_events = b.sim_events);
  chk "crash_events" (transitions_eq a.crash_events b.crash_events);
  chk "check_violations" (a.check_violations = b.check_violations);
  chk "check_report"
    (Option.equal String.equal a.check_report b.check_report);
  List.rev !mismatches

let equal_result a b = diff_result a b = []

let pp_summary_ms fmt s =
  Format.fprintf fmt "mean=%.3fms sd=%.3fms max=%.3fms (n=%d)" (s.mean *. 1e3)
    (s.sd *. 1e3) (s.max *. 1e3) s.count

let pp_result fmt r =
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt "configuration        : %s, %.0f Mbps, seed %d@,"
    (Config.label r.config) r.config.Config.rate_mbps r.config.Config.seed;
  Format.fprintf fmt "windows              : send %.3fs, observe %.3fs@,"
    r.send_window r.observe_window;
  Format.fprintf fmt "control load up/down : %.3f / %.3f Mbps (%d / %d msgs)@,"
    r.ctrl_load_up_mbps r.ctrl_load_down_mbps r.ctrl_msgs_up r.ctrl_msgs_down;
  Format.fprintf fmt "packet_ins           : %d (+%d resends, %d full-packet fallbacks)@,"
    r.pkt_ins r.pkt_in_resends r.full_packet_fallbacks;
  Format.fprintf fmt "controller / switch CPU : %.1f%% / %.1f%%@,"
    r.controller_cpu_pct r.switch_cpu_pct;
  Format.fprintf fmt "flow setup delay     : %a@," pp_summary_ms r.setup_delay;
  Format.fprintf fmt "controller delay     : %a@," pp_summary_ms r.controller_delay;
  Format.fprintf fmt "switch delay         : %a@," pp_summary_ms r.switch_delay;
  if r.forwarding_delay.count > 0 then
    Format.fprintf fmt "flow forwarding delay: %a@," pp_summary_ms
      r.forwarding_delay;
  Format.fprintf fmt "buffer units         : mean %.1f, max %d@,"
    r.buffer_mean_in_use r.buffer_max_in_use;
  (* Printed only under a configured sharing policy, so default-policy
     runs stay byte-identical to the pre-policy goldens. *)
  (match r.buf_policy with
  | Some policy ->
      Format.fprintf fmt "buffer policy        : %s@," policy;
      List.iter
        (fun s ->
          Format.fprintf fmt "  %a@," Sdn_switch.Buf_policy.pp_class_stat s)
        r.pool_classes
  | None -> ());
  if r.egress_misrouted > 0 then
    Format.fprintf fmt "egress misroutes     : %d frame(s) to unknown queues@,"
      r.egress_misrouted;
  Format.fprintf fmt "flows                : %d started, %d completed@,"
    r.flows_started r.flows_completed;
  if r.flows_recovered > 0 || r.flows_abandoned > 0 then begin
    Format.fprintf fmt "recovery             : %d recovered, %d abandoned@,"
      r.flows_recovered r.flows_abandoned;
    if r.recovery_delay.count > 0 then
      Format.fprintf fmt "time to recovery     : %a@," pp_summary_ms
        r.recovery_delay
  end;
  if r.outage_detections > 0 || r.outage_false_positives > 0 then begin
    Format.fprintf fmt
      "control session      : %d outage(s) detected, %d false positive(s), \
       downtime %.1fms@,"
      r.outage_detections r.outage_false_positives
      (r.session_downtime *. 1e3);
    if r.session_recovery.count > 0 then
      Format.fprintf fmt "session recovery     : %a@," pp_summary_ms
        r.session_recovery;
    Format.fprintf fmt "session timeline     : %s@,"
      (Report.timeline r.session_transitions);
    if r.standalone_frames > 0 then
      Format.fprintf fmt "standalone forwarding: %d frame(s)@,"
        r.standalone_frames;
    if r.fail_secure_drops > 0 then
      Format.fprintf fmt "fail-secure drops    : %d frame(s)@,"
        r.fail_secure_drops;
    if r.chains_frozen > 0 then
      Format.fprintf fmt
        "frozen chains        : %d frozen, %d resumed, %d expired@,"
        r.chains_frozen r.chains_resumed r.chains_expired;
    Format.fprintf fmt "controller view      : %d down(s), %d resync(s)@,"
      r.controller_downs r.controller_resyncs
  end;
  if r.microflow_hits > 0 || r.microflow_misses > 0 then
    Format.fprintf fmt "microflow cache      : %d hit(s), %d miss(es)@,"
      r.microflow_hits r.microflow_misses;
  if r.overload_sheds > 0 then
    Format.fprintf fmt "overload guard       : %d new chain(s) shed@,"
      r.overload_sheds;
  if r.node_crashes > 0 then begin
    Format.fprintf fmt
      "node crashes         : %d, %d packet(s) lost, %d message(s) lost@,"
      r.node_crashes r.packets_lost_to_crash r.crash_msgs_lost;
    if r.crash_recovery.count > 0 then
      Format.fprintf fmt "crash recovery       : %a@," pp_summary_ms
        r.crash_recovery;
    if r.reconcile_audits > 0 then
      Format.fprintf fmt
        "flow reconciliation  : %d audit(s), %d re-install(s)@,"
        r.reconcile_audits r.reconcile_installs;
    Format.fprintf fmt "crash timeline       : %s@,"
      (Report.timeline ~events:r.crash_events r.session_transitions)
  end;
  Format.fprintf fmt "packets              : %d in, %d out, %d dropped"
    r.packets_in r.packets_out r.packets_dropped;
  (* Only violations change the report: a clean [--check] run prints
     byte-identically to an unchecked one, so the CI determinism
     comparisons still hold. *)
  (match r.check_report with
  | Some report ->
      Format.fprintf fmt "@,invariant violations  : %d@,%s" r.check_violations
        report
  | None -> ());
  Format.fprintf fmt "@]"
