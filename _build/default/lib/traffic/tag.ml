open Sdn_net

type t = { flow_id : int; seq : int; flow_packets : int }

let magic = 0x5344_4E47l (* "SDNG" *)

let size = 16

let write t buf =
  Bytes.set_int32_be buf 0 magic;
  Bytes.set_int32_be buf 4 (Int32.of_int t.flow_id);
  Bytes.set_int32_be buf 8 (Int32.of_int t.seq);
  Bytes.set_int32_be buf 12 (Int32.of_int t.flow_packets)

let read_payload buf =
  if Bytes.length buf < size then None
  else if not (Int32.equal (Bytes.get_int32_be buf 0) magic) then None
  else
    Some
      {
        flow_id = Int32.to_int (Bytes.get_int32_be buf 4);
        seq = Int32.to_int (Bytes.get_int32_be buf 8);
        flow_packets = Int32.to_int (Bytes.get_int32_be buf 12);
      }

let read_frame frame =
  let off = Packet.min_udp_frame in
  if Bytes.length frame < off + size then None
  else read_payload (Bytes.sub frame off size)

let pp fmt t =
  Format.fprintf fmt "tag{flow=%d seq=%d/%d}" t.flow_id t.seq t.flow_packets
