lib/switch/flow_table.ml: Ethernet Flow_entry Flow_key Hashtbl List Of_action Of_match Of_wire Packet Sdn_net Sdn_openflow
