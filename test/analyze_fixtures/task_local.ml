(* Clean fixture: mutable state allocated inside the task body never
   escapes the call, so it cannot be shared between domains. *)

let work () =
  let buf = Buffer.create 16 in
  Buffer.add_string buf "task-local";
  Buffer.length buf

let launch () = Task_pool.run work
