lib/openflow/of_stats.mli: Bytes Format Of_action Of_match
