(** Bigarray-backed fixed-slab frame pool.

    Extends the scratch-codec idea ({!Sdn_openflow.Of_wire.Scratch})
    from control messages to whole data-plane packets: a pool owns one
    off-heap slab of [slots * slot_size] bytes (a
    [(char, int8_unsigned_elt)] Bigarray) plus an int free-list, and
    hands out slot ids — plain [int]s — instead of [Bytes.t] frames.
    The packet-processing hot path (microflow hit → header rewrite →
    egress enqueue, see {!Sdn_switch.Fast_path}) then touches only the
    slab, through accessors that read and write untagged [int]s, so
    steady-state forwarding allocates {e nothing} on the OCaml minor
    heap: no per-packet [Bytes.t], no [Int32] boxing, no closures.

    Frames in slots use the same wire layout as {!Packet.encode}
    (Ethernet at 0, IPv4 at 14, L4 at 34), so header field offsets are
    fixed and a slot can be converted to and from heap [Bytes.t] at
    the pool boundary (ingress load / slow-path handoff) — the copies
    happen only off the fast path.

    Discipline: {!alloc} pops a free slot, {!release} pushes it back.
    A double {!release} (or a release of an out-of-range id) is
    rejected and reported to the caller, and {!wipe} force-frees
    everything (cold restart). The conservation law — live slots plus
    free slots equal the slot count at all times — is audited by
    {!Sdn_check.Check} frame-pool notes when the owner runs with
    [--check]. *)

type t

val create : slots:int -> slot_size:int -> unit -> t
(** A pool of [slots] frames of at most [slot_size] bytes each, all
    free. The slab is allocated once, off the OCaml heap. Raises
    [Invalid_argument] if either is non-positive. *)

val slots : t -> int
val slot_size : t -> int

val free_count : t -> int
(** Slots currently on the free list. *)

val live_count : t -> int
(** Slots currently claimed: [slots t - free_count t]. *)

(** {2 Slot lifecycle} *)

val alloc : t -> int
(** Claim a slot; its stored length starts at 0. Returns [-1] when the
    pool is exhausted (the caller sheds load — no exception, the hot
    path stays branch-plus-int). O(1), allocation-free. *)

val release : t -> int -> bool
(** Return a slot to the free list. [false] — and no state change — if
    the id is out of range or the slot is already free (double
    release). O(1), allocation-free. *)

val wipe : t -> unit
(** Force-release every slot (cold node restart). Slot contents are
    zeroed so no stale frame bytes survive the crash. *)

(** {2 Frame bytes} *)

val load : t -> int -> Bytes.t -> unit
(** [load t slot frame] copies an encoded frame into the slot and sets
    the stored length. Raises [Invalid_argument] if the slot is free
    or the frame exceeds [slot_size]. Pool-boundary operation (copies;
    not for the hot path). *)

val length : t -> int -> int
(** Stored frame length of a claimed slot (0 if never loaded). *)

val set_length : t -> int -> int -> unit
(** Set the stored frame length (frame built in place). Raises
    [Invalid_argument] if the slot is free or the length exceeds
    [slot_size]. *)

val copy_out : t -> int -> Bytes.t
(** Fresh [Bytes.t] of the slot's stored frame (slow-path handoff;
    allocates, not for the hot path). Raises [Invalid_argument] if the
    slot is free. *)

(** {2 In-place header access — the allocation-free hot path}

    All offsets are relative to the frame start. No bounds or
    liveness checks beyond the Bigarray's own: these are the
    per-packet innermost operations. All values are untagged [int]s
    (big-endian on the wire), never [Int32] or [Bytes.t]. *)

val get_u8 : t -> int -> int -> int
val set_u8 : t -> int -> int -> int -> unit
val get_u16 : t -> int -> int -> int
val set_u16 : t -> int -> int -> int -> unit

val get_u32 : t -> int -> int -> int
(** Big-endian 32-bit read as a non-negative [int] (no boxing). *)

val set_u32 : t -> int -> int -> int -> unit

(** {3 Fixed wire-layout header fields} *)

val off_proto : int  (** IPv4 protocol byte: 23 *)

val off_ttl : int  (** IPv4 TTL byte: 22 *)

val off_src_ip : int  (** IPv4 source address: 26 *)

val off_dst_ip : int  (** IPv4 destination address: 30 *)

val off_src_port : int  (** L4 source port: 34 *)

val off_dst_port : int  (** L4 destination port: 36 *)

val dec_ttl : t -> int -> int
(** Decrement the frame's IPv4 TTL in place and return the new value
    (the forwarding rewrite). The IPv4 header checksum field is kept
    consistent by the incremental RFC 1624 update, still without
    allocating. *)
