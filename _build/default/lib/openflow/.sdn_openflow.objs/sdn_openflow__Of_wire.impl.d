lib/openflow/of_wire.ml: Bytes Format Int32 Printf
