lib/core/sweep.ml: Experiment List Sdn_sim Stats
