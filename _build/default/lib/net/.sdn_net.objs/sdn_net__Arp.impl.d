lib/net/arp.ml: Bytes Ethernet Format Ip Mac Printf
