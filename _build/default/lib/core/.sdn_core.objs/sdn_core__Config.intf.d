lib/core/config.mli: Sdn_controller Sdn_switch
