(* Section VI.A motivation: a UDP sender suddenly emits a large burst
   with no connection setup. Every packet of the burst is a miss-match
   packet until the controller's rule lands, so the burst is exactly
   where buffering pays off.

   Run with:  dune exec examples/udp_burst.exe

   Compares the three mechanisms on the same 200-packet burst at
   80 Mbps: number of requests sent to the controller, control-path
   bytes, and when the burst finished draining. *)

open Sdn_core
open Sdn_measure

let run mechanism buffer_capacity =
  let config =
    {
      Config.default with
      Config.mechanism;
      buffer_capacity;
      rate_mbps = 80.0;
      workload = Config.Udp_burst { n_packets = 200 };
      seed = 7;
    }
  in
  (Config.label config, Experiment.run config)

let () =
  Printf.printf
    "A 200-packet UDP burst at 80 Mbps hits an empty flow table.\n\n";
  let rows =
    List.map
      (fun (label, r) ->
        [
          label;
          string_of_int r.Experiment.pkt_ins;
          Report.fmt_mbps r.Experiment.ctrl_load_up_mbps;
          Report.fmt_mbps r.Experiment.ctrl_load_down_mbps;
          Report.fmt_ms r.Experiment.setup_delay.Experiment.mean;
          Report.fmt_ms r.Experiment.forwarding_delay.Experiment.mean;
          string_of_int r.Experiment.packets_out;
        ])
      [
        run Config.No_buffer 0;
        run Config.Packet_granularity 256;
        run Config.Flow_granularity 256;
      ]
  in
  Report.print_table
    ~header:
      [
        "mechanism"; "requests"; "load up (Mbps)"; "load down (Mbps)";
        "setup (ms)"; "burst drain (ms)"; "delivered";
      ]
    ~rows;
  Printf.printf
    "\nThe flow-granularity buffer answers the whole burst with a handful\n\
     of requests: the first packet allocates the flow's buffer unit and\n\
     every subsequent miss chains onto it silently (Algorithm 1), so the\n\
     controller sees one request per install round instead of one per\n\
     packet.\n"
