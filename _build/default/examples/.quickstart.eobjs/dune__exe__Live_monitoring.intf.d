examples/live_monitoring.mli:
