lib/net/udp.mli: Bytes Format Ip
