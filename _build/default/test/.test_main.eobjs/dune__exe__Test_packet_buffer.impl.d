test/test_packet_buffer.ml: Alcotest Bytes Engine Int32 List Option Packet_buffer Printf QCheck QCheck_alcotest Sdn_sim Sdn_switch
