(** Per-port egress scheduling — the paper's stated future work
    (Section VII: "design egress scheduling mechanisms combining with
    the ingress buffer mechanism proposed in this paper to provide QoS
    guarantee for different applications").

    An egress scheduler sits in front of a port's link. While the wire
    is busy, outgoing frames wait in per-class queues; whenever the
    wire frees, the scheduler picks the next frame:

    - {b Fifo}: one queue, arrival order (what an unscheduled port
      does implicitly);
    - {b Strict_priority}: always serve the non-empty queue with the
      highest priority value;
    - {b Drr}: deficit round robin across queues weighted by their
      [weight] — byte-fair, starvation-free (Shreedhar & Varghese).

    Frames are classified by the OpenFlow [Enqueue] action's queue id
    (an [Output] action lands in queue 0). Each queue has a bounded
    depth; overflow tail-drops, and drops are counted per queue. A
    frame naming a queue id no configured queue carries is a {e typed
    drop}: counted in {!misrouted}, never enqueued — in particular it
    is never promoted into the top-priority class. Queue room may
    optionally be drawn from a shared {!Buf_policy} pool instead of
    each queue's private tail-drop capacity. *)

open Sdn_sim

type policy =
  | Fifo
  | Strict_priority
  | Drr of { quantum : int }  (** bytes added to a queue's deficit per round *)

type queue_config = {
  queue_id : int32;
  priority : int;  (** larger = more important (strict priority) *)
  weight : int;  (** relative share (DRR); must be positive *)
  capacity : int;  (** maximum frames queued before tail drop *)
}

val default_queue : queue_config
(** Queue 0, priority 0, weight 1, capacity 512. *)

type t

val create :
  ?shared:Buf_policy.t * string ->
  Engine.t ->
  link:Bytes.t Link.t ->
  policy:policy ->
  queues:queue_config list ->
  t
(** [queues] must be non-empty and contain distinct ids. With
    [shared = (pool, prefix)] each queue registers a class
    ["<prefix>/q<id>"] in [pool] (quota = its capacity, its priority)
    and admits frames through the pool's sharing policy instead of its
    private capacity. *)

val send : t -> queue_id:int32 option -> Bytes.t -> unit
(** Submit a frame for transmission. [None] (a plain [Output] action)
    goes to queue 0 when configured, else to the first queue. An
    unknown id is counted in {!misrouted} and dropped. *)

val backlog : t -> int
(** Frames waiting across all queues (not counting the one on the
    wire). *)

val queued : t -> queue_id:int32 -> int
val sent : t -> queue_id:int32 -> int
val dropped : t -> queue_id:int32 -> int
val total_dropped : t -> int

val misrouted : t -> int
(** Frames submitted with a queue id no configured queue carries
    (typed-dropped at [send]). *)

val queue_delay_stats : t -> queue_id:int32 -> Stats.t
(** Waiting time (enqueue to wire) of the frames of one class. *)
