let widths header rows =
  let n = List.length header in
  let w = Array.make n 0 in
  let note row =
    List.iteri (fun i cell -> if i < n then w.(i) <- max w.(i) (String.length cell)) row
  in
  note header;
  List.iter note rows;
  w

let pad cell width = cell ^ String.make (max 0 (width - String.length cell)) ' '

let render_row w row =
  String.concat "  " (List.mapi (fun i cell -> pad cell w.(i)) row)

let table ~header ~rows =
  let w = widths header rows in
  let sep =
    String.concat "  " (Array.to_list (Array.map (fun n -> String.make n '-') w))
  in
  String.concat "\n" (render_row w header :: sep :: List.map (render_row w) rows)

let print_table ~header ~rows = print_endline (table ~header ~rows)

let escape_csv cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let csv ~header ~rows =
  let line row = String.concat "," (List.map escape_csv row) in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

let write_csv ~path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (csv ~header ~rows))

let histogram ?(bins = 8) ?(width = 40) ?(fmt = fun v -> Printf.sprintf "%g" v)
    stats =
  let samples = Sdn_sim.Stats.samples stats in
  if Array.length samples = 0 then "(no samples)"
  else begin
    let lo = Array.fold_left Float.min samples.(0) samples in
    let hi = Array.fold_left Float.max samples.(0) samples in
    let bins = max 1 bins in
    (* A degenerate range (all samples equal) collapses to one bucket. *)
    let span = hi -. lo in
    let bins = if span <= 0.0 then 1 else bins in
    let counts = Array.make bins 0 in
    Array.iter
      (fun v ->
        let i =
          if span <= 0.0 then 0
          else Stdlib.min (bins - 1) (int_of_float ((v -. lo) /. span *. float_of_int bins))
        in
        counts.(i) <- counts.(i) + 1)
      samples;
    let peak = Array.fold_left max 1 counts in
    let rows =
      List.init bins (fun i ->
          let b_lo = lo +. (span *. float_of_int i /. float_of_int bins) in
          let b_hi = lo +. (span *. float_of_int (i + 1) /. float_of_int bins) in
          (* A non-empty bucket always shows at least one mark, however
             dominant the peak. *)
          let bar_len =
            if counts.(i) = 0 then 0
            else Stdlib.max 1 (counts.(i) * width / peak)
          in
          [
            Printf.sprintf "[%s, %s%c" (fmt b_lo) (fmt b_hi)
              (if i = bins - 1 then ']' else ')');
            String.make bar_len '#';
            string_of_int counts.(i);
          ])
    in
    table ~header:[ "bucket"; ""; "count" ] ~rows
  end

(* Crash/restart/reconciliation events carry a marker so they read
   differently from plain session-state transitions; the legend is
   appended only when events are present, keeping event-free timelines
   byte-identical to the historical rendering. *)
let event_marker what =
  let has needle =
    let nl = String.length needle and wl = String.length what in
    let rec scan i = i + nl <= wl && (String.sub what i nl = needle || scan (i + 1)) in
    scan 0
  in
  if has "reconcil" then "~" else if has "restart" then "^" else if has "crash" then "!" else "*"

let timeline ?(events = []) transitions =
  let entries =
    List.map (fun (time, state) -> (time, 0, Printf.sprintf "%s@t%.3fs" state time)) transitions
    @ List.map
        (fun (time, what) ->
          (time, 1, Printf.sprintf "%s[%s]@t%.3fs" (event_marker what) what time))
        events
  in
  let entries =
    (* Chronological; transitions before events at equal times, so
       injected events never displace the state they caused. *)
    List.stable_sort
      (fun (ta, ka, _) (tb, kb, _) ->
        match Float.compare ta tb with 0 -> Int.compare ka kb | c -> c)
      entries
  in
  match entries with
  | [] -> "(none)"
  | _ ->
      let body = String.concat " -> " (List.map (fun (_, _, s) -> s) entries) in
      if events = [] then body
      else body ^ " [legend: ![crash] ^[restart] ~[reconciliation]]"

let fmt_ms seconds = Printf.sprintf "%.3f" (seconds *. 1000.0)
let fmt_mbps v = Printf.sprintf "%.2f" v
let fmt_pct v = Printf.sprintf "%.1f" v
let fmt_f ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v
