(* Fixture: clean — one waiver comment names both rules that fire on
   the next line (comma/space separated ids, reason text after). *)

(* lint: allow wall-clock, entropy — fixture exercises multi-id waivers *)
let seed () = int_of_float (Unix.gettimeofday ()) + Random.bits ()
