lib/openflow/of_config.mli: Bytes Format
