(** The chaos scenario: control-channel loss rate swept against buffer
    mechanism. Each point runs one full {!Experiment} with the
    control-channel fault plan's independent loss set to the point's
    rate, and the report compares flow-completion ratio, packet
    delivery, re-request effort and time-to-recovery across
    mechanisms. All randomness comes from the seed in the base
    configuration, so two runs with the same seed produce
    byte-identical reports. *)

type point = {
  config : Config.t;  (** the exact configuration the point ran *)
  loss_rate : float;  (** independent loss applied to both control legs *)
  result : Experiment.result;
}

val default_loss_rates : float list
(** [0; 0.05; 0.1; 0.2] *)

val default_mechanisms : Config.mechanism list
(** no-buffer, packet-granularity, flow-granularity. *)

val default_base : seed:int -> Config.t
(** Exp-B (50 flows x 20 packets) at 20 Mbps: multi-packet flows whose
    buffered tails make control-channel loss visible. *)

val point_config :
  base:Config.t -> mechanism:Config.mechanism -> loss_rate:float -> Config.t
(** The configuration a sweep point runs: [base] with the mechanism
    substituted and the fault plan's independent loss set to
    [loss_rate] (any burst/jitter/outage in [base.faults] is kept). *)

val run :
  ?mechanisms:Config.mechanism list ->
  ?loss_rates:float list ->
  base:Config.t ->
  unit ->
  point list
(** Run the sweep: one experiment per mechanism x loss rate, in
    deterministic order (mechanisms outer, loss rates inner). *)

val report : point list -> string
(** Deterministic plain-text report: one table row per point plus a
    time-to-recovery histogram aggregated over every point that
    recovered at least one flow. *)

val print_report : point list -> unit
