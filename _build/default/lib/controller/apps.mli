(** Stock controller applications. *)

open Sdn_net

val forwarding :
  hosts:(Ip.t * Mac.t * int) list ->
  ?idle_timeout:int ->
  ?hard_timeout:int ->
  unit ->
  App.t
(** Floodlight-style reactive forwarding over a known host table:
    route by destination IP (falling back to destination MAC), install
    a 5-tuple rule, release the packet. Unroutable packets flood. *)

val learning_switch : unit -> App.t
(** Classic L2 learning switch: learns source MAC to ingress port
    bindings from [PACKET_IN]s, forwards to the learned port or floods,
    and installs a rule once the destination is known. *)

val qos_forwarding :
  hosts:(Ip.t * Mac.t * int) list ->
  classify:(App.context -> int32) ->
  ?idle_timeout:int ->
  unit ->
  App.t
(** Like {!forwarding} but installs [Enqueue] actions: the classifier
    maps each new flow to an egress queue id, so the switch's QoS
    scheduler (the paper's future-work extension) can differentiate
    classes. *)

val hub : unit -> App.t
(** Floods everything; never installs rules. The worst-case baseline:
    every packet of every flow is a miss forever. *)

val dropper : unit -> App.t
(** Drops everything (a "deny" policy); useful in tests. *)
