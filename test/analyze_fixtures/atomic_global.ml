(* Clean fixture: the shared counter is Atomic-mediated, which is the
   sanctioned pattern for state that must cross domains. *)

let hits = Atomic.make 0

let work () =
  Atomic.incr hits;
  Atomic.get hits

let launch () = Task_pool.run work
