lib/openflow/of_error.ml: Bytes Format Printf
