(* Crash–restart fault injection: state-loss semantics, recovery to
   steady state, flow-state reconciliation and the admission-control
   overload guard — plus the backward-compat goldens pinning the
   crash-free sweeps to their PR 6 output byte for byte. *)

open Sdn_sim
open Sdn_core

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
  in
  scan 0

(* Mid-incast crash against the Exp-B workload, keepalive armed (the
   keepalive is what notices a dead peer on both sides). *)
let crash_config ?(mechanism = Config.Flow_granularity)
    ?(node = Faults.Switch_node) ?(mode = Faults.Cold) ?(at = 0.15)
    ?(down = 0.05) ?(check = true) ?(seed = 7) () =
  let base = Config.exp_b ~mechanism ~rate_mbps:20.0 ~seed in
  {
    base with
    Config.echo_interval = 0.01;
    echo_misses = 2;
    check;
    faults =
      {
        base.Config.faults with
        Faults.crashes = [ { Faults.node; at_s = at; down_s = down; mode } ];
      };
  }

let reconciliation_done r =
  List.exists
    (fun (_, what) -> contains what "reconciliation done")
    r.Experiment.crash_events

(* A cold switch crash loses every buffered packet and in-flight frame,
   wipes the flow table (visible as reconciliation re-installs), and
   still satisfies every invariant — conservation holds across the
   crash boundary because the wipe is declared to the checker. *)
let test_switch_cold_crash () =
  let r = Experiment.run (crash_config ~mode:Faults.Cold ()) in
  Alcotest.(check int) "one crash" 1 r.Experiment.node_crashes;
  Alcotest.(check bool)
    "packets lost to the crash" true
    (r.Experiment.packets_lost_to_crash > 0);
  Alcotest.(check bool) "audited" true (r.Experiment.reconcile_audits >= 1);
  Alcotest.(check bool)
    "cold restart forces re-installs" true
    (r.Experiment.reconcile_installs > 0);
  Alcotest.(check bool) "reconciliation converged" true (reconciliation_done r);
  Alcotest.(check int)
    "recovery time measured once" 1 r.Experiment.crash_recovery.Experiment.count;
  Alcotest.(check bool)
    "recovery spans at least the downtime" true
    (r.Experiment.crash_recovery.Experiment.mean >= 0.05);
  Alcotest.(check int) "invariants clean" 0 r.Experiment.check_violations

(* A warm restart keeps the flow table, so reconciliation finds (almost)
   nothing to re-install; a cold one starts from an empty table. *)
let test_warm_keeps_more_state_than_cold () =
  let warm = Experiment.run (crash_config ~mode:Faults.Warm ()) in
  let cold = Experiment.run (crash_config ~mode:Faults.Cold ()) in
  Alcotest.(check bool)
    "cold re-installs strictly more" true
    (cold.Experiment.reconcile_installs > warm.Experiment.reconcile_installs);
  Alcotest.(check int) "warm run clean" 0 warm.Experiment.check_violations;
  Alcotest.(check int) "cold run clean" 0 cold.Experiment.check_violations

(* Satellite: a controller restart while the switch stays up. The
   switch-side session walks Down -> Reconnecting -> Up through the
   existing machinery, the handshake is replayed (resync) and the
   post-crash reconciliation pass converges. The switch itself never
   dies, so no packets are lost to the crash; miss traffic arriving in
   the fail-secure freeze window is frozen and later resumed. *)
let test_controller_restart_resync () =
  let run mode =
    Experiment.run
      (crash_config ~node:Faults.Controller_node ~mode ~down:0.08 ())
  in
  let r = run Faults.Warm in
  let states = List.map snd r.Experiment.session_transitions in
  Alcotest.(check bool)
    "switch session reconnects" true
    (List.mem "reconnecting" states);
  Alcotest.(check bool)
    "session returns to up" true
    (match List.rev states with last :: _ -> last = "up" | [] -> false);
  Alcotest.(check bool) "resynced" true (r.Experiment.controller_resyncs >= 1);
  Alcotest.(check bool) "audited" true (r.Experiment.reconcile_audits >= 1);
  Alcotest.(check bool) "reconciliation converged" true (reconciliation_done r);
  Alcotest.(check int)
    "switch alive: nothing wiped" 0 r.Experiment.packets_lost_to_crash;
  Alcotest.(check bool)
    "frozen chains resumed after the freeze window" true
    (r.Experiment.chains_resumed > 0);
  Alcotest.(check int) "invariants clean" 0 r.Experiment.check_violations;
  (* Cold: the controller's own flow views are wiped too; they are
     relearnt from the switch's stats reply (adopted), not re-pushed,
     so the audit converges without re-installs. *)
  let c = run Faults.Cold in
  Alcotest.(check bool) "cold converges too" true (reconciliation_done c);
  Alcotest.(check int)
    "cold relearns instead of re-installing" 0 c.Experiment.reconcile_installs;
  Alcotest.(check int) "cold run clean" 0 c.Experiment.check_violations

(* The overload guard sheds new miss chains — with a typed counter —
   once the pool crosses the watermark, and stays disarmed at the
   default watermark of 1.0. *)
let test_overload_guard () =
  let config watermark =
    let base =
      Config.exp_b ~mechanism:Config.Flow_granularity ~rate_mbps:30.0 ~seed:7
    in
    {
      base with
      Config.buffer_capacity = 8;
      overload_watermark = watermark;
      check = true;
    }
  in
  let guarded = Experiment.run (config 0.5) in
  Alcotest.(check bool) "sheds" true (guarded.Experiment.overload_sheds > 0);
  Alcotest.(check int)
    "sheds are dropped frames" guarded.Experiment.packets_dropped
    guarded.Experiment.overload_sheds;
  Alcotest.(check int) "guarded run clean" 0 guarded.Experiment.check_violations;
  let off = Experiment.run (config 1.0) in
  Alcotest.(check int) "watermark 1.0 disarms" 0 off.Experiment.overload_sheds

(* Same seed, same crash schedule, byte-identical results. *)
let test_crash_determinism () =
  let config = crash_config ~mode:Faults.Cold () in
  let a = Experiment.run config in
  let b = Experiment.run config in
  Alcotest.(check (list string))
    "identical field for field" [] (Experiment.diff_result a b)

(* ---- Backward-compat goldens (PR 6 fixtures) ----

   Crash schedules are schedule-only: a fault plan without crashes
   draws nothing new, so the chaos and outage sweeps must reproduce
   their PR 6 reports byte for byte. The fixtures were captured from
   the CLI ([chaos -s 7] / [chaos --outage -s 7], default 30 Mbps);
   regenerate deliberately after an intentional output change. *)

let read_golden path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_chaos_sweep_bytes () =
  let base =
    { (Chaos.default_base ~seed:7) with Config.rate_mbps = 30.0 }
  in
  let report = Chaos.report (Chaos.run ~base ()) in
  Alcotest.(check string)
    "chaos sweep matches PR 6 output"
    (read_golden "golden/chaos_sweep_pr6.txt")
    report

let test_outage_sweep_bytes () =
  let base =
    { (Chaos.default_outage_base ~seed:7) with Config.rate_mbps = 30.0 }
  in
  let report = Chaos.outage_report (Chaos.run_outage ~base ()) in
  Alcotest.(check string)
    "outage sweep matches PR 6 output"
    (read_golden "golden/outage_sweep_pr6.txt")
    report

let suite =
  [
    Alcotest.test_case "switch cold crash: wipe, loss, reconciliation" `Quick
      test_switch_cold_crash;
    Alcotest.test_case "warm keeps more state than cold" `Quick
      test_warm_keeps_more_state_than_cold;
    Alcotest.test_case "controller restart: resync + reconciliation" `Quick
      test_controller_restart_resync;
    Alcotest.test_case "overload guard sheds at the watermark" `Quick
      test_overload_guard;
    Alcotest.test_case "crash runs are deterministic" `Quick
      test_crash_determinism;
    Alcotest.test_case "chaos sweep bytes match PR 6" `Quick
      test_chaos_sweep_bytes;
    Alcotest.test_case "outage sweep bytes match PR 6" `Quick
      test_outage_sweep_bytes;
  ]
