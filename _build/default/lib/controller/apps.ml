open Sdn_net

let forwarding ~hosts ?(idle_timeout = 5) ?(hard_timeout = 0) () =
  let by_ip = Hashtbl.create 8 in
  let by_mac = Hashtbl.create 8 in
  List.iter
    (fun (ip, mac, port) ->
      Hashtbl.replace by_ip (Ip.to_int32 ip) port;
      Hashtbl.replace by_mac (Mac.to_int64 mac) port)
    hosts;
  let decide (ctx : App.context) =
    let port_of_ip =
      match ctx.App.headers.Packet.h_ipv4 with
      | Some ip -> Hashtbl.find_opt by_ip (Ip.to_int32 ip.Ipv4.dst)
      | None -> None
    in
    let port =
      match port_of_ip with
      | Some _ as p -> p
      | None ->
          Hashtbl.find_opt by_mac
            (Mac.to_int64 ctx.App.headers.Packet.h_eth.Ethernet.dst)
    in
    match port with
    | Some out_port -> App.forward ~idle_timeout ~hard_timeout out_port
    | None -> App.Flood
  in
  { App.name = "forwarding"; decide }

let learning_switch () =
  let table = Hashtbl.create 16 in
  let decide (ctx : App.context) =
    let eth = ctx.App.headers.Packet.h_eth in
    Hashtbl.replace table (Mac.to_int64 eth.Ethernet.src) ctx.App.in_port;
    if Mac.is_broadcast eth.Ethernet.dst then App.Flood
    else begin
      match Hashtbl.find_opt table (Mac.to_int64 eth.Ethernet.dst) with
      | Some out_port -> App.forward out_port
      | None -> App.Flood
    end
  in
  { App.name = "learning-switch"; decide }

let qos_forwarding ~hosts ~classify ?(idle_timeout = 5) () =
  let plain = forwarding ~hosts ~idle_timeout () in
  let decide (ctx : App.context) =
    match plain.App.decide ctx with
    | App.Forward f -> App.Forward_queued { App.f; queue_id = classify ctx }
    | (App.Flood | App.Drop | App.Forward_queued _) as d -> d
  in
  { App.name = "qos-forwarding"; decide }

let hub () = { App.name = "hub"; decide = (fun _ -> App.Flood) }

let dropper () = { App.name = "dropper"; decide = (fun _ -> App.Drop) }
