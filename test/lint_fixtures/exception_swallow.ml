(* Fixture: exactly one exception-swallow finding. *)

let swallow f = try f () with _ -> ()
