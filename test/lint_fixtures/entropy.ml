(* Fixture: exactly one entropy finding. *)

let roll () = Random.int 6
