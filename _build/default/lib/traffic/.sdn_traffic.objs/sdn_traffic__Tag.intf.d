lib/traffic/tag.mli: Bytes Format
