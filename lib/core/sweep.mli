(** Rate sweeps with repetitions — the paper's methodology: every
    sending rate from 5 to 100 Mbps in 5 Mbps steps, 20 repetitions
    per point. *)

type point = { rate_mbps : float; results : Experiment.result list }

type series = { label : string; points : point list }

val default_rates : float list
(** [5; 10; ...; 100]. *)

val seed_for : rate_mbps:float -> rep:int -> int
(** The release-stable seed for one grid cell:
    [rate * 10 * 1000 + rep + 1]. Distinct across every (rate,
    repetition) pair of the paper's grid; golden-tested so recorded
    figures stay reproducible across releases. *)

val run :
  label:string ->
  ?rates:float list ->
  ?reps:int ->
  ?jobs:int ->
  (rate_mbps:float -> seed:int -> Config.t) ->
  series
(** [run ~label make_config] executes [reps] (default 20) runs per
    rate, seeding each repetition with {!seed_for} (distinct across
    repetitions and across rates).

    [jobs] (default 1) fans the independent replications out over that
    many worker domains via {!Exec.run_experiments}; results are merged
    by grid index, so every [jobs] value yields an identical [series].
    [make_config] is always called sequentially in the calling domain,
    rates outer and repetitions inner, exactly as in the sequential
    path — only the [Experiment.run] calls parallelize. *)

val point_mean : point -> (Experiment.result -> float) -> float

val point_sd : point -> (Experiment.result -> float) -> float
(** Sample standard deviation over the point's repetitions; [0.0] when
    the point holds fewer than two samples (a single repetition has no
    spread, not an undefined one). *)

val point_max : point -> (Experiment.result -> float) -> float

val series_mean : series -> (Experiment.result -> float) -> float
(** Mean of the metric over every run at every rate — the quantity
    behind the paper's "on average" claims. *)

val series_sd : series -> (Experiment.result -> float) -> float
(** Sample standard deviation over every run at every rate; [0.0] when
    the whole series holds fewer than two samples. *)

val series_max : series -> (Experiment.result -> float) -> float

val reduction_pct : baseline:float -> improved:float -> float
(** [(baseline - improved) / baseline * 100]. *)
