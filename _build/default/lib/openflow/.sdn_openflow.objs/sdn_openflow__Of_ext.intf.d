lib/openflow/of_ext.mli: Bytes Format
