examples/qos_scheduling.mli:
