(* Fixture stub standing in for lib/sim's Task_pool: the analyzer
   keys its reachability roots on the normalised names
   [Task_pool.run] / [Task_pool.map_list], not on the real library,
   so this one-file stand-in makes the corpus self-contained. *)

let run f = f ()
let map_list f xs = List.map f xs
