lib/openflow/of_stream.ml: Bytes List Of_codec Of_wire Printf
