lib/switch/flow_buffer.ml: Array Bytes Engine Flow_key Int32 List Sdn_net Sdn_sim Timeseries
