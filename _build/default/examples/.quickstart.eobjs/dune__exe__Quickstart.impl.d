examples/quickstart.ml: Config Experiment Format Printf Sdn_core
