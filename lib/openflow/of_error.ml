type error_type =
  | Hello_failed
  | Bad_request
  | Bad_action
  | Flow_mod_failed
  | Port_mod_failed
  | Queue_op_failed

type t = { error_type : error_type; code : int; data : Bytes.t }

module Flow_mod_failed_code = struct
  let all_tables_full = 0
  let overlap = 1
  let eperm = 2
  let bad_emerg_timeout = 3
  let bad_command = 4
  let unsupported = 5
end

module Hello_failed_code = struct
  let incompatible = 0
  let eperm = 1
end

module Bad_request_code = struct
  let bad_version = 0
  let bad_type = 1
  let bad_stat = 2
  let bad_vendor = 3
  let bad_subtype = 4
  let eperm = 5
  let bad_len = 6
  let buffer_empty = 7
  let buffer_unknown = 8
end

let make ~error_type ~code ?(data = Bytes.empty) () = { error_type; code; data }

let type_to_int = function
  | Hello_failed -> 0
  | Bad_request -> 1
  | Bad_action -> 2
  | Flow_mod_failed -> 3
  | Port_mod_failed -> 4
  | Queue_op_failed -> 5

let type_of_int = function
  | 0 -> Ok Hello_failed
  | 1 -> Ok Bad_request
  | 2 -> Ok Bad_action
  | 3 -> Ok Flow_mod_failed
  | 4 -> Ok Port_mod_failed
  | 5 -> Ok Queue_op_failed
  | n -> Error (Printf.sprintf "Of_error: unknown error type %d" n)

let body_size t = 4 + Bytes.length t.data

let write_body t buf off =
  Bytes.set_uint16_be buf off (type_to_int t.error_type);
  Bytes.set_uint16_be buf (off + 2) t.code;
  Bytes.blit t.data 0 buf (off + 4) (Bytes.length t.data)

let read_body buf off ~len =
  if len < 4 then Error "Of_error.read_body: truncated"
  else begin
    match type_of_int (Bytes.get_uint16_be buf off) with
    | Error _ as e -> e
    | Ok error_type ->
        Ok
          {
            error_type;
            code = Bytes.get_uint16_be buf (off + 2);
            data = Bytes.sub buf (off + 4) (len - 4);
          }
  end

let equal a b =
  a.error_type = b.error_type && a.code = b.code && Bytes.equal a.data b.data

let type_to_string = function
  | Hello_failed -> "HELLO_FAILED"
  | Bad_request -> "BAD_REQUEST"
  | Bad_action -> "BAD_ACTION"
  | Flow_mod_failed -> "FLOW_MOD_FAILED"
  | Port_mod_failed -> "PORT_MOD_FAILED"
  | Queue_op_failed -> "QUEUE_OP_FAILED"

let pp fmt t =
  Format.fprintf fmt "error{%s code=%d data=%dB}" (type_to_string t.error_type)
    t.code (Bytes.length t.data)
