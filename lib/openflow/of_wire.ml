let version = 0x01
let header_size = 8
let no_buffer = 0xFFFF_FFFFl
let max_xid = Int32.max_int

module Port = struct
  let max_physical = 0xFF00
  let in_port = 0xFFF8
  let table = 0xFFF9
  let normal = 0xFFFA
  let flood = 0xFFFB
  let all = 0xFFFC
  let controller = 0xFFFD
  let local = 0xFFFE
  let none = 0xFFFF

  let pp fmt p =
    let s =
      if p = in_port then "IN_PORT"
      else if p = table then "TABLE"
      else if p = normal then "NORMAL"
      else if p = flood then "FLOOD"
      else if p = all then "ALL"
      else if p = controller then "CONTROLLER"
      else if p = local then "LOCAL"
      else if p = none then "NONE"
      else string_of_int p
    in
    Format.pp_print_string fmt s
end

module Msg_type = struct
  type t =
    | Hello
    | Error
    | Echo_request
    | Echo_reply
    | Vendor
    | Features_request
    | Features_reply
    | Get_config_request
    | Get_config_reply
    | Set_config
    | Packet_in
    | Flow_removed
    | Port_status
    | Packet_out
    | Flow_mod
    | Port_mod
    | Stats_request
    | Stats_reply
    | Barrier_request
    | Barrier_reply

  let to_int = function
    | Hello -> 0
    | Error -> 1
    | Echo_request -> 2
    | Echo_reply -> 3
    | Vendor -> 4
    | Features_request -> 5
    | Features_reply -> 6
    | Get_config_request -> 7
    | Get_config_reply -> 8
    | Set_config -> 9
    | Packet_in -> 10
    | Flow_removed -> 11
    | Port_status -> 12
    | Packet_out -> 13
    | Flow_mod -> 14
    | Port_mod -> 15
    | Stats_request -> 16
    | Stats_reply -> 17
    | Barrier_request -> 18
    | Barrier_reply -> 19

  let of_int = function
    | 0 -> Ok Hello
    | 1 -> Ok Error
    | 2 -> Ok Echo_request
    | 3 -> Ok Echo_reply
    | 4 -> Ok Vendor
    | 5 -> Ok Features_request
    | 6 -> Ok Features_reply
    | 7 -> Ok Get_config_request
    | 8 -> Ok Get_config_reply
    | 9 -> Ok Set_config
    | 10 -> Ok Packet_in
    | 11 -> Ok Flow_removed
    | 12 -> Ok Port_status
    | 13 -> Ok Packet_out
    | 14 -> Ok Flow_mod
    | 15 -> Ok Port_mod
    | 16 -> Ok Stats_request
    | 17 -> Ok Stats_reply
    | 18 -> Ok Barrier_request
    | 19 -> Ok Barrier_reply
    | n -> Error (Printf.sprintf "Of_wire.Msg_type.of_int: unknown type %d" n)

  let to_string = function
    | Hello -> "HELLO"
    | Error -> "ERROR"
    | Echo_request -> "ECHO_REQUEST"
    | Echo_reply -> "ECHO_REPLY"
    | Vendor -> "VENDOR"
    | Features_request -> "FEATURES_REQUEST"
    | Features_reply -> "FEATURES_REPLY"
    | Get_config_request -> "GET_CONFIG_REQUEST"
    | Get_config_reply -> "GET_CONFIG_REPLY"
    | Set_config -> "SET_CONFIG"
    | Packet_in -> "PACKET_IN"
    | Flow_removed -> "FLOW_REMOVED"
    | Port_status -> "PORT_STATUS"
    | Packet_out -> "PACKET_OUT"
    | Flow_mod -> "FLOW_MOD"
    | Port_mod -> "PORT_MOD"
    | Stats_request -> "STATS_REQUEST"
    | Stats_reply -> "STATS_REPLY"
    | Barrier_request -> "BARRIER_REQUEST"
    | Barrier_reply -> "BARRIER_REPLY"

  let pp fmt t = Format.pp_print_string fmt (to_string t)
end

type header = { msg_type : Msg_type.t; length : int; xid : int32 }

(* The wire length field is 16 bits; Bytes.set_uint16_be would wrap
   a larger value silently and emit a frame the peer cannot parse.
   Oversized bodies (a stats reply for a huge flow table, say) must
   be split by the sender before framing. *)
let write_header_fields ~msg_type ~length ~xid buf ~pos =
  if length > 0xffff then
    invalid_arg "Of_wire.write_header: length exceeds the 16-bit wire field";
  Bytes.set_uint8 buf pos version;
  Bytes.set_uint8 buf (pos + 1) (Msg_type.to_int msg_type);
  Bytes.set_uint16_be buf (pos + 2) length;
  Bytes.set_int32_be buf (pos + 4) xid

let write_header_at h buf ~pos =
  write_header_fields ~msg_type:h.msg_type ~length:h.length ~xid:h.xid buf ~pos

let write_header h buf = write_header_at h buf ~pos:0

let read_header_sub buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    Error "Of_wire.read_header: slice out of bounds"
  else if len < header_size then Error "Of_wire.read_header: truncated"
  else begin
    let v = Bytes.get_uint8 buf pos in
    if v <> version then
      Error (Printf.sprintf "Of_wire.read_header: unsupported version 0x%02x" v)
    else begin
      match Msg_type.of_int (Bytes.get_uint8 buf (pos + 1)) with
      | Error msg -> Error msg
      | Ok msg_type ->
          let length = Bytes.get_uint16_be buf (pos + 2) in
          if length < header_size then
            Error "Of_wire.read_header: length smaller than header"
          else if length > len then
            Error "Of_wire.read_header: length exceeds buffer"
          else Ok { msg_type; length; xid = Bytes.get_int32_be buf (pos + 4) }
    end
  end

let read_header buf = read_header_sub buf ~pos:0 ~len:(Bytes.length buf)

module Scratch = struct
  type t = { mutable buf : Bytes.t }

  let create ?(capacity = 2048) () =
    if capacity <= 0 then invalid_arg "Of_wire.Scratch.create: capacity";
    { buf = Bytes.create capacity }

  let ensure t n =
    if Bytes.length t.buf < n then begin
      let capacity = ref (Bytes.length t.buf) in
      while !capacity < n do
        capacity := 2 * !capacity
      done;
      (* Contents are scratch: no need to preserve them across growth. *)
      t.buf <- Bytes.create !capacity
    end;
    t.buf

  let buffer t = t.buf
  let capacity t = Bytes.length t.buf
end
