(* Tests for streaming statistics and time series. *)

open Sdn_sim

let feq ?(eps = 1e-9) what expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %g, got %g" what expected actual)
    true
    (abs_float (expected -. actual) <= eps)

let test_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  feq "mean" 0.0 (Stats.mean s);
  feq "variance" 0.0 (Stats.variance s)

let test_single () =
  let s = Stats.create () in
  Stats.add s 4.0;
  feq "mean" 4.0 (Stats.mean s);
  feq "min" 4.0 (Stats.min s);
  feq "max" 4.0 (Stats.max s);
  feq "variance" 0.0 (Stats.variance s)

let test_known_values () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  feq "mean" 5.0 (Stats.mean s);
  (* Unbiased sample variance of this classic set is 32/7. *)
  feq ~eps:1e-9 "variance" (32.0 /. 7.0) (Stats.variance s);
  feq "min" 2.0 (Stats.min s);
  feq "max" 9.0 (Stats.max s);
  feq "sum" 40.0 (Stats.sum s)

let test_percentiles () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  feq "median" 3.0 (Stats.median s);
  feq "p0" 1.0 (Stats.percentile s 0.0);
  feq "p100" 5.0 (Stats.percentile s 100.0);
  feq "p25" 2.0 (Stats.percentile s 25.0);
  feq "p62.5 interpolates" 3.5 (Stats.percentile s 62.5)

let test_percentile_errors () =
  let s = Stats.create () in
  (* Empty series yield nan, like min/max — not an exception; the
     report paths rely on this. *)
  Alcotest.(check bool)
    "empty percentile is nan" true
    (Float.is_nan (Stats.percentile s 50.0));
  Alcotest.(check bool) "empty median is nan" true (Float.is_nan (Stats.median s));
  Stats.add s 1.0;
  Alcotest.check_raises "out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile s 101.0));
  let unkept = Stats.create ~keep_samples:false () in
  Stats.add unkept 1.0;
  Alcotest.check_raises "samples not kept"
    (Invalid_argument "Stats.percentile: samples were not kept") (fun () ->
      ignore (Stats.percentile unkept 50.0))

let test_merge_matches_combined () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  let xs = [ 1.0; 5.0; 2.5 ] and ys = [ 10.0; -3.0; 4.0; 4.0 ] in
  List.iter (Stats.add a) xs;
  List.iter (Stats.add b) ys;
  List.iter (Stats.add whole) (xs @ ys);
  let merged = Stats.merge a b in
  Alcotest.(check int) "count" (Stats.count whole) (Stats.count merged);
  feq ~eps:1e-9 "mean" (Stats.mean whole) (Stats.mean merged);
  feq ~eps:1e-9 "variance" (Stats.variance whole) (Stats.variance merged);
  feq "min" (Stats.min whole) (Stats.min merged);
  feq "max" (Stats.max whole) (Stats.max merged)

let test_merge_empty_side () =
  let empty = Stats.create () and b = Stats.create () in
  List.iter (Stats.add b) [ 2.0; 6.0; 4.0 ];
  let check_equals_b merged =
    Alcotest.(check int) "count" (Stats.count b) (Stats.count merged);
    feq "mean" (Stats.mean b) (Stats.mean merged);
    feq "variance" (Stats.variance b) (Stats.variance merged);
    feq "min" (Stats.min b) (Stats.min merged);
    feq "max" (Stats.max b) (Stats.max merged)
  in
  (* An empty side must be the identity, whichever side it is — the
     min/max of the empty accumulator (infinities) must not leak. *)
  check_equals_b (Stats.merge empty b);
  check_equals_b (Stats.merge b empty);
  let both = Stats.merge empty (Stats.create ()) in
  Alcotest.(check int) "empty+empty count" 0 (Stats.count both);
  feq "empty+empty mean" 0.0 (Stats.mean both)

let test_merge_mismatched_keep_samples () =
  let a = Stats.create ~keep_samples:false () and b = Stats.create () in
  List.iter (Stats.add a) [ 1.0; 3.0 ];
  List.iter (Stats.add b) [ 5.0; 7.0 ];
  let merged = Stats.merge a b in
  (* Moments survive the mismatch; the sample store does not (one side
     never had samples to contribute), so percentiles must refuse
     rather than answer from half the data. *)
  Alcotest.(check int) "count" 4 (Stats.count merged);
  feq "mean" 4.0 (Stats.mean merged);
  feq "min" 1.0 (Stats.min merged);
  feq "max" 7.0 (Stats.max merged);
  Alcotest.check_raises "percentile refuses"
    (Invalid_argument "Stats.percentile: samples were not kept") (fun () ->
      ignore (Stats.percentile merged 50.0))

let test_clear () =
  let s = Stats.create () in
  Stats.add s 3.0;
  Stats.clear s;
  Alcotest.(check int) "count" 0 (Stats.count s);
  Stats.add s 7.0;
  feq "reusable" 7.0 (Stats.mean s)

let prop_welford_matches_naive =
  QCheck.Test.make ~name:"welford matches naive mean/variance" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs
        /. (n -. 1.0)
      in
      let close a b =
        abs_float (a -. b) <= 1e-6 *. (1.0 +. abs_float a +. abs_float b)
      in
      close mean (Stats.mean s) && close var (Stats.variance s))

let test_timeseries_basics () =
  let ts = Timeseries.create () in
  Timeseries.add ts ~time:0.0 ~value:1.0;
  Timeseries.add ts ~time:1.0 ~value:3.0;
  Timeseries.add ts ~time:2.0 ~value:2.0;
  Alcotest.(check int) "length" 3 (Timeseries.length ts);
  feq "mean" 2.0 (Timeseries.mean ts);
  feq "max" 3.0 (Timeseries.max_value ts);
  let points = Timeseries.points ts in
  Alcotest.(check int) "points" 3 (Array.length points);
  feq "first time" 0.0 (fst points.(0))

let test_weighted_mean () =
  (* Signal: 0 on [0,1), 10 on [1,3), 4 on [3,4]. *)
  let w = Timeseries.Weighted.create () in
  Timeseries.Weighted.update w ~time:1.0 ~value:10.0;
  Timeseries.Weighted.update w ~time:3.0 ~value:4.0;
  feq "time-weighted mean" ((0.0 +. 20.0 +. 4.0) /. 4.0)
    (Timeseries.Weighted.mean w ~until:4.0);
  feq "max" 10.0 (Timeseries.Weighted.max_value w);
  feq "current" 4.0 (Timeseries.Weighted.current w)

(* Regression: max_value initialised its accumulator to 0.0 and
   reported 0 for any all-negative series. *)
let test_max_value_all_negative () =
  let ts = Timeseries.create () in
  Timeseries.add ts ~time:0.0 ~value:(-5.0);
  Timeseries.add ts ~time:1.0 ~value:(-2.0);
  Timeseries.add ts ~time:2.0 ~value:(-9.0);
  feq "all-negative max" (-2.0) (Timeseries.max_value ts);
  feq "empty max" 0.0 (Timeseries.max_value (Timeseries.create ()))

(* Regression: [mean ~until] with [until] before the last update used
   the short span as the divisor while the integral already extended to
   the last update — overcounting the mean (10 instead of 20/3 here).
   The window is now clamped to end no earlier than the last update. *)
let test_weighted_mean_until_before_last_update () =
  let w = Timeseries.Weighted.create () in
  Timeseries.Weighted.update w ~time:1.0 ~value:10.0;
  Timeseries.Weighted.update w ~time:3.0 ~value:4.0;
  (* Integral over [0,3] is 0*1 + 10*2 = 20; asking for until=2.0 must
     not divide that by 2. *)
  feq "clamped to the covered span" (20.0 /. 3.0)
    (Timeseries.Weighted.mean w ~until:2.0)

let test_weighted_rejects_backwards_time () =
  let w = Timeseries.Weighted.create () in
  Timeseries.Weighted.update w ~time:2.0 ~value:1.0;
  Alcotest.check_raises "backwards"
    (Invalid_argument "Timeseries.Weighted.update: time went backwards")
    (fun () -> Timeseries.Weighted.update w ~time:1.0 ~value:0.0)

let suite =
  [
    Alcotest.test_case "empty accumulator" `Quick test_empty;
    Alcotest.test_case "single sample" `Quick test_single;
    Alcotest.test_case "known values" `Quick test_known_values;
    Alcotest.test_case "percentiles" `Quick test_percentiles;
    Alcotest.test_case "percentile errors" `Quick test_percentile_errors;
    Alcotest.test_case "merge equals combined" `Quick test_merge_matches_combined;
    Alcotest.test_case "merge with an empty side" `Quick test_merge_empty_side;
    Alcotest.test_case "merge with mismatched keep_samples" `Quick
      test_merge_mismatched_keep_samples;
    Alcotest.test_case "clear" `Quick test_clear;
    QCheck_alcotest.to_alcotest prop_welford_matches_naive;
    Alcotest.test_case "timeseries basics" `Quick test_timeseries_basics;
    Alcotest.test_case "time-weighted mean" `Quick test_weighted_mean;
    Alcotest.test_case "max_value handles all-negative series" `Quick
      test_max_value_all_negative;
    Alcotest.test_case "weighted mean clamps early until" `Quick
      test_weighted_mean_until_before_last_update;
    Alcotest.test_case "weighted rejects backwards time" `Quick
      test_weighted_rejects_backwards_time;
  ]
