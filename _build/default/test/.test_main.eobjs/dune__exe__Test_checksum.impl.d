test/test_checksum.ml: Alcotest Bytes Checksum QCheck QCheck_alcotest Sdn_net
