(** Run one configured experiment and collect every metric of the
    paper's Section III.B. *)

open Sdn_sim

type summary = {
  count : int;
  mean : float;
  sd : float;
  min : float;
  max : float;
}

val summary_of_stats : Stats.t -> summary

val traffic_start : float
(** Injection lead-in: traffic begins this many seconds into the run,
    after the control-session handshake has settled. The analytical
    validator uses it to undo the lead-in dilution of time-averaged
    metrics. *)

type result = {
  config : Config.t;
  send_window : float;  (** first to last injection, seconds *)
  observe_window : float;  (** first injection to last activity *)
  ctrl_load_up_mbps : float;  (** switch-to-controller control load *)
  ctrl_load_down_mbps : float;
  ctrl_msgs_up : int;
  ctrl_msgs_down : int;
  pkt_ins : int;
  pkt_in_resends : int;
  full_packet_fallbacks : int;
  ctrl_msgs_lost : int;  (** control messages dropped by the loss model *)
  controller_cpu_pct : float;  (** percent of one core; can exceed 100 *)
  switch_cpu_pct : float;
  setup_delay : summary;  (** seconds *)
  controller_delay : summary;
  switch_delay : summary;
  forwarding_delay : summary;
  buffer_mean_in_use : float;
  buffer_max_in_use : int;
  buf_policy : string option;
      (** the configured shared-buffer policy
          ({!Sdn_switch.Buf_policy.kind_to_string}); [None] on default
          runs, whose reports stay byte-identical *)
  pool_classes : Sdn_switch.Buf_policy.class_stat list;
      (** per-class occupancy / threshold / admission summary of the
          switch's shared pool, in registration order; empty when no
          policy is configured *)
  egress_misrouted : int;
      (** frames carrying an [Enqueue] action naming a queue id the
          egress port never configured (dropped, not silently promoted
          to the top-priority class) *)
  flows_started : int;
  flows_completed : int;
  flows_recovered : int;
      (** flow-granularity chains released after >= 1 re-request *)
  flows_abandoned : int;
      (** flow-granularity chains dropped after exhausting resends *)
  recovery_delay : summary;
      (** first miss to release, recovered flows only; seconds *)
  recovery_delay_samples : float array;
      (** raw time-to-recovery samples, for histograms *)
  packets_in : int;
  packets_out : int;
  packets_dropped : int;
  outage_detections : int;
      (** switch-side Down declarations by the echo keepalive *)
  outage_false_positives : int;
      (** Down declarations contradicted by a late keepalive reply *)
  session_downtime : float;  (** cumulative Down/Reconnecting seconds *)
  session_recovery : summary;  (** Down -> Up durations, seconds *)
  session_transitions : (float * string) list;
      (** switch session state timeseries: (time, state name) *)
  standalone_frames : int;
      (** miss-match frames carried by the fail-standalone L2 path *)
  fail_secure_drops : int;
      (** miss-match frames dropped while Down in fail-secure mode *)
  chains_frozen : int;  (** chains whose timers froze at session-down *)
  chains_resumed : int;  (** chains re-requested after reconnect *)
  chains_expired : int;
      (** chains whose resend budget was spent before the outage *)
  controller_downs : int;
      (** controller-side Down declarations for this switch *)
  controller_resyncs : int;
      (** handshake replays (state resync) after recovery *)
  microflow_hits : int;
      (** flow-table lookups answered by the exact-match fast path *)
  microflow_misses : int;
      (** cacheable lookups that fell through to the full table scan *)
  node_crashes : int;
      (** injected switch + controller crashes ([crash=...] fault plan) *)
  packets_lost_to_crash : int;
      (** frames blackholed while a node was dead plus buffered packets
          wiped by a cold switch restart *)
  crash_msgs_lost : int;
      (** control messages that arrived at a dead node *)
  crash_recovery : summary;
      (** time from each injected crash to the first subsequent return
          of the switch session to Up (steady state); seconds *)
  reconcile_audits : int;
      (** wildcard FLOW stats audits sent by post-crash reconciliation *)
  reconcile_installs : int;
      (** flow entries re-installed because an audit found them missing *)
  overload_sheds : int;
      (** new miss chains refused by the buffer-pool admission guard *)
  sim_events : int;
      (** discrete events the engine dispatched over the whole run —
          the numerator of the [massive] scenario's events/s rate
          (deterministic; independent of the queue backend) *)
  crash_events : (float * string) list;
      (** injected crash/restart events merged chronologically with
          reconciliation outcomes: (time, description) *)
  check_violations : int;
      (** protocol-invariant violations recorded by the runtime checker
          (always 0 when the config's [check] flag is off) *)
  check_report : string option;
      (** the checker's violation report; [None] when clean or
          unchecked, so clean [--check] output stays byte-identical *)
}

val run : Config.t -> result

val diff_result : result -> result -> string list
(** Names of the fields on which the two results differ (empty when
    identical). Floats are compared exactly ([Float.compare] = 0, so
    NaN equals NaN): the determinism contract is byte-identical
    output. [config] is excluded — the parallel-equivalence replay
    compares two runs of the {e same} configuration, and the record
    may carry a closure. *)

val equal_result : result -> result -> bool
(** [diff_result a b = \[\]]. *)

val pp_result : Format.formatter -> result -> unit
(** Multi-line human-readable report of a single run. *)
