(* Tests for the OpenFlow 1.0 match structure and wildcards. *)

open Sdn_net
open Sdn_openflow

let mac1 = Mac.of_octets 0x02 0 0 0 0 1
let mac2 = Mac.of_octets 0x02 0 0 0 0 2
let ip1 = Ip.make 10 0 0 1
let ip2 = Ip.make 10 0 0 2

let udp_pkt ?(src_ip = ip1) ?(src_port = 1000) () =
  Packet.udp ~src_mac:mac1 ~dst_mac:mac2 ~src_ip ~dst_ip:ip2 ~src_port
    ~dst_port:9 ~payload:(Bytes.of_string "x") ()

let test_wildcard_all_matches_everything () =
  let pkt = udp_pkt () in
  Alcotest.(check bool) "matches udp" true
    (Of_match.matches Of_match.wildcard_all ~in_port:1 pkt);
  let arp =
    Packet.arp ~src_mac:mac1 ~dst_mac:Mac.broadcast
      (Arp.request ~sender_mac:mac1 ~sender_ip:ip1 ~target_ip:ip2)
  in
  Alcotest.(check bool) "matches arp" true
    (Of_match.matches Of_match.wildcard_all ~in_port:7 arp)

let test_exact_match_self () =
  let pkt = udp_pkt () in
  let m = Of_match.exact_of_packet ~in_port:1 pkt in
  Alcotest.(check bool) "matches itself" true (Of_match.matches m ~in_port:1 pkt);
  Alcotest.(check bool) "wrong in_port" false (Of_match.matches m ~in_port:2 pkt);
  Alcotest.(check bool) "different src port" false
    (Of_match.matches m ~in_port:1 (udp_pkt ~src_port:1001 ()))

let test_flow_key_match () =
  let pkt = udp_pkt () in
  let key = Option.get (Packet.flow_key pkt) in
  let m = Of_match.of_flow_key key in
  Alcotest.(check bool) "matches on any port" true
    (Of_match.matches m ~in_port:5 pkt);
  Alcotest.(check bool) "rejects other flow" false
    (Of_match.matches m ~in_port:5 (udp_pkt ~src_ip:(Ip.make 10 9 9 9) ()))

let test_prefix_wildcard () =
  let m =
    {
      Of_match.wildcard_all with
      Of_match.dl_type = Some Ethernet.ethertype_ipv4;
      nw_src = Some (Ip.make 10 0 0 0, 8);
    }
  in
  Alcotest.(check bool) "10.x matches /8" true
    (Of_match.matches m ~in_port:1 (udp_pkt ~src_ip:(Ip.make 10 200 3 4) ()));
  let other =
    Packet.udp ~src_mac:mac1 ~dst_mac:mac2 ~src_ip:(Ip.make 11 0 0 1)
      ~dst_ip:ip2 ~src_port:1 ~dst_port:2 ~payload:Bytes.empty ()
  in
  Alcotest.(check bool) "11.x does not" false (Of_match.matches m ~in_port:1 other)

let test_wire_roundtrip_exact () =
  let m = Of_match.exact_of_packet ~in_port:3 (udp_pkt ()) in
  let buf = Bytes.make Of_match.size '\000' in
  Of_match.write m buf 0;
  match Of_match.read buf 0 with
  | Ok m' -> Alcotest.(check bool) "equal" true (Of_match.equal m m')
  | Error msg -> Alcotest.fail msg

let test_wire_roundtrip_wildcards () =
  let m =
    {
      Of_match.wildcard_all with
      Of_match.dl_type = Some Ethernet.ethertype_ipv4;
      nw_dst = Some (Ip.make 10 1 0 0, 16);
      nw_proto = Some 17;
    }
  in
  let buf = Bytes.make Of_match.size '\000' in
  Of_match.write m buf 0;
  match Of_match.read buf 0 with
  | Ok m' -> Alcotest.(check bool) "equal incl. prefix bits" true (Of_match.equal m m')
  | Error msg -> Alcotest.fail msg

let test_wire_roundtrip_all_wildcard () =
  let buf = Bytes.make Of_match.size '\000' in
  Of_match.write Of_match.wildcard_all buf 0;
  match Of_match.read buf 0 with
  | Ok m' ->
      Alcotest.(check bool) "still matches everything" true
        (Of_match.equal Of_match.wildcard_all m')
  | Error msg -> Alcotest.fail msg

let test_subsumption () =
  let pkt = udp_pkt () in
  let exact = Of_match.exact_of_packet ~in_port:1 pkt in
  let key = Of_match.of_flow_key (Option.get (Packet.flow_key pkt)) in
  Alcotest.(check bool) "wildcard subsumes exact" true
    (Of_match.subsumes ~general:Of_match.wildcard_all ~specific:exact);
  Alcotest.(check bool) "5-tuple subsumes exact" true
    (Of_match.subsumes ~general:key ~specific:exact);
  Alcotest.(check bool) "exact does not subsume 5-tuple" false
    (Of_match.subsumes ~general:exact ~specific:key);
  Alcotest.(check bool) "subsumes self" true
    (Of_match.subsumes ~general:exact ~specific:exact)

let test_prefix_subsumption () =
  let wide =
    { Of_match.wildcard_all with Of_match.nw_src = Some (Ip.make 10 0 0 0, 8) }
  in
  let narrow =
    { Of_match.wildcard_all with Of_match.nw_src = Some (Ip.make 10 1 0 0, 16) }
  in
  Alcotest.(check bool) "/8 subsumes /16 inside it" true
    (Of_match.subsumes ~general:wide ~specific:narrow);
  Alcotest.(check bool) "/16 does not subsume /8" false
    (Of_match.subsumes ~general:narrow ~specific:wide)

let prop_match_roundtrip =
  let arbitrary =
    let gen =
      QCheck.Gen.(
        map
          (fun (use_port, port, a, bits) ->
            {
              Of_match.wildcard_all with
              Of_match.in_port = (if use_port then Some (port land 0xffff) else None);
              dl_type = Some Ethernet.ethertype_ipv4;
              nw_proto = Some 17;
              nw_src = Some (Ip.make 10 (a land 0xff) 0 0, 1 + (bits mod 32));
              tp_dst = Some (port land 0xffff);
            })
          (quad bool nat nat nat))
    in
    QCheck.make gen
  in
  QCheck.Test.make ~name:"match wire roundtrip" ~count:200 arbitrary (fun m ->
      let buf = Bytes.make Of_match.size '\000' in
      Of_match.write m buf 0;
      match Of_match.read buf 0 with
      | Ok m' -> Of_match.equal m m'
      | Error _ -> false)

let prop_exact_always_matches_source =
  let arbitrary =
    QCheck.make
      QCheck.Gen.(
        map2
          (fun port src_port ->
            (1 + (port mod 16), udp_pkt ~src_port:(1 + (src_port land 0x7fff)) ()))
          nat nat)
  in
  QCheck.Test.make ~name:"exact_of_packet matches its packet" ~count:100
    arbitrary (fun (in_port, pkt) ->
      Of_match.matches (Of_match.exact_of_packet ~in_port pkt) ~in_port pkt)

let suite =
  [
    Alcotest.test_case "wildcard matches everything" `Quick
      test_wildcard_all_matches_everything;
    Alcotest.test_case "exact match" `Quick test_exact_match_self;
    Alcotest.test_case "5-tuple match" `Quick test_flow_key_match;
    Alcotest.test_case "prefix wildcard" `Quick test_prefix_wildcard;
    Alcotest.test_case "wire roundtrip (exact)" `Quick test_wire_roundtrip_exact;
    Alcotest.test_case "wire roundtrip (wildcards)" `Quick
      test_wire_roundtrip_wildcards;
    Alcotest.test_case "wire roundtrip (all-wildcard)" `Quick
      test_wire_roundtrip_all_wildcard;
    Alcotest.test_case "subsumption" `Quick test_subsumption;
    Alcotest.test_case "prefix subsumption" `Quick test_prefix_subsumption;
    QCheck_alcotest.to_alcotest prop_match_roundtrip;
    QCheck_alcotest.to_alcotest prop_exact_always_matches_source;
  ]
