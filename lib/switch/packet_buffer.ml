open Sdn_sim

type slot_state =
  | Free
  | Held of { frame : Bytes.t; expiry_handle : Engine.handle; held_at : float }
  | Reclaiming of { reclaim_handle : Engine.handle }
      (** carries the deferred-reclaim timer so {!wipe} can cancel it —
          otherwise a stale callback could shorten the reclaim lag of a
          slot re-allocated after the wipe *)

type slot = { mutable state : slot_state; mutable generation : int }

type t = {
  engine : Engine.t;
  check : Sdn_check.Check.t option;
  policy : Buf_policy.cls option;
  pool_name : string;
  capacity : int;
  expiry : float;
  reclaim_lag : float;
  slots : slot array;
  mutable free : int list;
  mutable in_use : int;
  occupancy : Timeseries.Weighted.w;
  mutable allocations : int;
  mutable alloc_failures : int;
  mutable expired : int;
  mutable stale_takes : int;
}

type take_result = Taken of Bytes.t | Unknown_id

(* buffer_id layout: generation in the high bits, slot index in the low
   16. Generations disambiguate a reused slot from a stale id. *)
let id_of ~generation ~slot =
  Int32.logor
    (Int32.shift_left (Int32.of_int (generation land 0x7FFF)) 16)
    (Int32.of_int (slot land 0xFFFF))

let slot_of_id id = Int32.to_int (Int32.logand id 0xFFFFl)
let generation_of_id id = Int32.to_int (Int32.shift_right_logical id 16) land 0x7FFF

let create engine ?check ?policy ?(pool_name = "pkt_pool") ~capacity ~expiry
    ~reclaim_lag () =
  if capacity <= 0 || capacity > 0xFFFF then
    invalid_arg "Packet_buffer.create: capacity out of range";
  {
    engine;
    check;
    policy;
    pool_name;
    capacity;
    expiry;
    reclaim_lag;
    slots = Array.init capacity (fun _ -> { state = Free; generation = 0 });
    free = List.init capacity (fun i -> i);
    in_use = 0;
    occupancy =
      Timeseries.Weighted.create ~start:(Engine.now engine) ~initial:0.0 ();
    allocations = 0;
    alloc_failures = 0;
    expired = 0;
    stale_takes = 0;
  }

let note_occupancy t =
  Timeseries.Weighted.update t.occupancy ~time:(Engine.now t.engine)
    ~value:(float_of_int t.in_use)

(* Report a buffer-ledger event to the invariant checker, if armed. *)
let checked t f =
  match t.check with
  | Some check -> f check ~time:(Engine.now t.engine) ~pool:t.pool_name
  | None -> ()

let release_slot t i =
  let slot = t.slots.(i) in
  slot.state <- Free;
  slot.generation <- (slot.generation + 1) land 0x7FFF;
  t.free <- i :: t.free;
  t.in_use <- t.in_use - 1;
  (match t.policy with Some cls -> Buf_policy.release cls | None -> ());
  note_occupancy t

let alloc t ~frame =
  (* Policy admission first: the sharing discipline may refuse even
     when a physical slot is free (its share is exhausted), or grant a
     unit the static quota would have refused. *)
  let admitted =
    match t.policy with Some cls -> Buf_policy.admit cls | None -> true
  in
  if not admitted then begin
    t.alloc_failures <- t.alloc_failures + 1;
    None
  end
  else
    match t.free with
    | [] ->
        (match t.policy with
        | Some cls -> Buf_policy.release cls
        | None -> ());
        t.alloc_failures <- t.alloc_failures + 1;
        None
    | i :: rest ->
        t.free <- rest;
        let slot = t.slots.(i) in
        let generation = slot.generation in
        let expiry_handle =
          Engine.schedule t.engine ~delay:t.expiry (fun () ->
              (* Still held by the same allocation? Then nobody released
                 it in time: drop the packet. *)
              match slot.state with
              | Held _ when slot.generation = generation ->
                  t.expired <- t.expired + 1;
                  checked t
                    (Sdn_check.Check.note_buffer_expire
                       ~id:(id_of ~generation ~slot:i));
                  release_slot t i
              | Held _ | Free | Reclaiming _ -> ())
        in
        slot.state <-
          Held { frame; expiry_handle; held_at = Engine.now t.engine };
        t.in_use <- t.in_use + 1;
        t.allocations <- t.allocations + 1;
        note_occupancy t;
        let id = id_of ~generation ~slot:i in
        checked t (Sdn_check.Check.note_buffer_alloc ~id);
        Some id

let take t id =
  let i = slot_of_id id in
  if i < 0 || i >= t.capacity then Unknown_id
  else begin
    let slot = t.slots.(i) in
    match slot.state with
    | Held { frame; expiry_handle; held_at }
      when slot.generation = generation_of_id id ->
        Engine.cancel expiry_handle;
        checked t (Sdn_check.Check.note_buffer_release ~id ~packets:1);
        (match t.policy with
        | Some cls -> Buf_policy.note_delay cls (Engine.now t.engine -. held_at)
        | None -> ());
        let reclaim_handle =
          Engine.schedule t.engine ~delay:t.reclaim_lag (fun () ->
              match slot.state with
              | Reclaiming _ -> release_slot t i
              | Free | Held _ -> ())
        in
        slot.state <- Reclaiming { reclaim_handle };
        Taken frame
    | Held _ | Free | Reclaiming _ ->
        t.stale_takes <- t.stale_takes + 1;
        Unknown_id
  end

let wipe t =
  let packets = ref 0 in
  (* Index order keeps the checker's expiry notes byte-reproducible. *)
  Array.iteri
    (fun i slot ->
      match slot.state with
      | Held { expiry_handle; _ } ->
          Engine.cancel expiry_handle;
          t.expired <- t.expired + 1;
          checked t
            (Sdn_check.Check.note_buffer_expire
               ~id:(id_of ~generation:slot.generation ~slot:i));
          release_slot t i;
          incr packets
      | Reclaiming { reclaim_handle } ->
          (* Reclaim immediately — and cancel the deferred timer, so it
             cannot fire against a future allocation of this slot and
             silently shorten that allocation's reclaim lag. *)
          Engine.cancel reclaim_handle;
          release_slot t i
      | Free -> ())
    t.slots;
  !packets

let capacity t = t.capacity
let in_use t = t.in_use
let mean_in_use t ~until = Timeseries.Weighted.mean t.occupancy ~until
let max_in_use t = int_of_float (Timeseries.Weighted.max_value t.occupancy)
let allocations t = t.allocations
let alloc_failures t = t.alloc_failures
let expired t = t.expired
let stale_takes t = t.stale_takes
