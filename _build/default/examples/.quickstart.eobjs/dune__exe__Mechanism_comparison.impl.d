examples/mechanism_comparison.ml: Config Experiment List Printf Report Sdn_core Sdn_measure
