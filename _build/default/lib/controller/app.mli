(** Controller application interface.

    An application receives the decoded context of a [PACKET_IN] and
    returns a forwarding decision; the controller core turns the
    decision into [FLOW_MOD] / [PACKET_OUT] messages and prices the
    CPU work. *)

open Sdn_net

type context = {
  in_port : int;
  headers : Packet.headers;
  flow_key : Flow_key.t option;
  buffer_id : int32;  (** {!Sdn_openflow.Of_wire.no_buffer} if unbuffered *)
  total_len : int;
}

type forward = {
  out_port : int;
  install : bool;  (** also install a rule for the flow? *)
  idle_timeout : int;
  hard_timeout : int;
}

type forward_queued = {
  f : forward;
  queue_id : int32;  (** egress class for the QoS scheduler *)
}

type decision =
  | Forward of forward
  | Forward_queued of forward_queued
      (** like [Forward] but through an [Enqueue] action *)
  | Flood  (** PACKET_OUT to FLOOD, no rule installed *)
  | Drop

type t = {
  name : string;
  decide : context -> decision;
}

val forward :
  ?install:bool -> ?idle_timeout:int -> ?hard_timeout:int -> int -> decision
(** [forward port] with Floodlight-like defaults ([install = true],
    idle 5 s, no hard timeout). *)
