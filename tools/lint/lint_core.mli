(** Determinism lint: a compiler-libs source analyzer for the
    simulation's reproducibility contract.

    The repository's headline guarantee is that two runs with the same
    seed produce byte-identical reports. That guarantee dies quietly:
    one [Unix.gettimeofday] in a cost model, one [Hashtbl.fold] whose
    order leaks into a table, one [with _ ->] hiding a decode bug. This
    module parses every [.ml] file with the compiler's own front end
    and walks the untyped AST looking for the hazard classes below;
    {!Sdn_lint} runs it over [lib/], [bin/] and [bench/] as the
    [@lint] alias.

    Rules (ids as reported and as named in suppression comments):

    - [wall-clock] — reads of host time ([Unix.gettimeofday],
      [Unix.time], [Unix.gmtime], [Unix.localtime], [Sys.time]): the
      simulation has exactly one clock, [Engine.now];
    - [entropy] — uses of the [Random] module: all randomness must come
      from the seeded [Sdn_sim.Rng] streams (the [lib/sim/rng.ml]
      implementation itself is exempt);
    - [hashtbl-order] — [Hashtbl.fold]/[Hashtbl.iter] (including
      functorial [*.Table.fold/iter]): hash-bucket order is
      implementation-defined, so any result that escapes into a report
      or onto the wire must be explicitly sorted. A sort application
      ([List.sort], [List.stable_sort], [List.sort_uniq],
      [Array.sort], ...) within the same top-level definition counts as
      the escape hatch; provably order-insensitive folds (commutative
      counters) carry a suppression comment instead;
    - [exception-swallow] — [try ... with _ ->] (or [with _exn ->]):
      wildcard handlers silently eat exactly the invariant violations
      the checker is designed to surface;
    - [partial-exit] — [assert false] and [failwith]: in decode or
      parse paths these turn malformed input into a crash; parsers
      must return typed errors. Genuinely unreachable arms carry a
      suppression comment stating the invariant;
    - [poly-compare] — the polymorphic [compare] (bare or
      [Stdlib.compare]): on float-carrying records it is both slow and
      a NaN trap; comparisons must name [Float.compare]/[Int.compare]
      or a record-specific function. A file defining its own top-level
      [let compare] is exempt (local references resolve to it);
    - [global-mutable] — a structure-level [let] whose right-hand side
      directly applies a mutable-state constructor ([ref],
      [Hashtbl.create], [Buffer.create], [Bytes.create]/[make],
      [Array.make], [Atomic.make], [Queue.create], [Stack.create]),
      including inside nested modules: toplevel mutable state is
      shared by every worker domain, so a {!Sdn_sim.Task_pool} task
      body reaching it breaks the parallel-equivalence guarantee (and
      is a data race). Function-local creations are per-call state and
      never flagged;
    - [domain-self] — [Domain.self ()] (or [Domain.DLS.get]): anything
      derived from the executing domain's identity varies with
      scheduling, so it must never reach a result or report. Pure
      diagnostics carry a suppression comment;
    - [stale-allow] — a [lint: allow] comment whose named rule no
      longer fires on the line it covers (or that names no catalogued
      rule at all): a waiver must not outlive the hazard it
      documented. Not suppressible — the fix is deleting the comment.

    Per-site suppression: a comment containing
    [lint: allow <rule-id>] on the offending line or the line directly
    above disables that one rule for that line. The rule id must
    appear as a whole token directly after [allow] (several ids may be
    listed, comma- or space-separated); free-text reasons follow the
    ids and never suppress anything. See {!Report_common} for the
    exact grammar, shared with the typedtree analyzer's
    [analyze: allow] waivers. *)

type finding = Report_common.finding = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

val rules : (string * string) list
(** Rule id and one-line description, in report order. *)

val lint_file : string -> (finding list, string) result
(** Analyze one [.ml] file. [Error] carries a syntax-error message when
    the file does not parse (a file that does not parse cannot be
    vouched for). Findings are sorted by line. *)

val lint_files : string list -> finding list * string list
(** Analyze many files: (all findings sorted by file, line and rule;
    parse-error messages in file order). *)

val pp_finding : Format.formatter -> finding -> unit
(** [file:line: [rule] message] — editor-clickable. *)

val to_json : finding list -> string
(** Machine-readable summary: a JSON array of
    [{"file": ..., "line": ..., "rule": ..., "message": ...}]. *)

val to_sarif : finding list -> string
(** SARIF 2.1.0 log (tool name [sdn_lint], the rule catalog attached),
    for GitHub code-scanning upload. *)
