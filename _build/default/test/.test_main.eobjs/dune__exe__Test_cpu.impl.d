test/test_cpu.ml: Alcotest Cpu Engine List Sdn_sim
