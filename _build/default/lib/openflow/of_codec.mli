(** Top-level OpenFlow 1.0 message codec.

    [encode] produces the exact wire bytes (common header included);
    [decode] parses them back. Every byte the control channel carries
    in the reproduction goes through this module, so link-level byte
    counters measure real OpenFlow message sizes. *)

type msg =
  | Hello
  | Error_msg of Of_error.t
  | Echo_request of Bytes.t
  | Echo_reply of Bytes.t
  | Vendor of Of_ext.t
  | Features_request
  | Features_reply of Of_features.t
  | Get_config_request
  | Get_config_reply of Of_config.t
  | Set_config of Of_config.t
  | Packet_in of Of_packet_in.t
  | Flow_removed of Of_flow_removed.t
  | Port_status of Of_port_status.t
  | Packet_out of Of_packet_out.t
  | Flow_mod of Of_flow_mod.t
  | Stats_request of Of_stats.request
  | Stats_reply of Of_stats.reply
  | Barrier_request
  | Barrier_reply

val msg_type : msg -> Of_wire.Msg_type.t

val size : msg -> int
(** Encoded size including the 8-byte header. *)

val encode : xid:int32 -> msg -> Bytes.t

val decode : Bytes.t -> (int32 * msg, string) result
(** Parse one message from the start of the buffer; the buffer must be
    exactly one message long (as delivered by the simulated channel). *)

val peek_type : Bytes.t -> (Of_wire.Msg_type.t, string) result
(** Cheap classification of an encoded message without a full parse —
    what the capture/metrics layer uses per sniffed message. *)

val equal : msg -> msg -> bool
val pp : Format.formatter -> msg -> unit
