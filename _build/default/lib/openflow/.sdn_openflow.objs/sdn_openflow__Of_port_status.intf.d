lib/openflow/of_port_status.mli: Bytes Format Of_features
