open Sdn_net

type t =
  | Output of { port : int; max_len : int }
  | Set_vlan_vid of int
  | Set_vlan_pcp of int
  | Strip_vlan
  | Set_dl_src of Mac.t
  | Set_dl_dst of Mac.t
  | Set_nw_src of Ip.t
  | Set_nw_dst of Ip.t
  | Set_nw_tos of int
  | Set_tp_src of int
  | Set_tp_dst of int
  | Enqueue of { port : int; queue_id : int32 }

let output ?(max_len = 0xFFFF) port = Output { port; max_len }

(* ofp_action_type values. *)
let type_output = 0
let type_set_vlan_vid = 1
let type_set_vlan_pcp = 2
let type_strip_vlan = 3
let type_set_dl_src = 4
let type_set_dl_dst = 5
let type_set_nw_src = 6
let type_set_nw_dst = 7
let type_set_nw_tos = 8
let type_set_tp_src = 9
let type_set_tp_dst = 10
let type_enqueue = 11

let size = function
  | Output _ | Set_vlan_vid _ | Set_vlan_pcp _ | Strip_vlan | Set_nw_src _
  | Set_nw_dst _ | Set_nw_tos _ | Set_tp_src _ | Set_tp_dst _ ->
      8
  | Set_dl_src _ | Set_dl_dst _ | Enqueue _ -> 16

let rec list_size = function [] -> 0 | a :: rest -> size a + list_size rest

let type_of = function
  | Output _ -> type_output
  | Set_vlan_vid _ -> type_set_vlan_vid
  | Set_vlan_pcp _ -> type_set_vlan_pcp
  | Strip_vlan -> type_strip_vlan
  | Set_dl_src _ -> type_set_dl_src
  | Set_dl_dst _ -> type_set_dl_dst
  | Set_nw_src _ -> type_set_nw_src
  | Set_nw_dst _ -> type_set_nw_dst
  | Set_nw_tos _ -> type_set_nw_tos
  | Set_tp_src _ -> type_set_tp_src
  | Set_tp_dst _ -> type_set_tp_dst
  | Enqueue _ -> type_enqueue

(* Keep this writer closure-free: it sits on the controller's
   flow-mod hot path, where every closure is a minor-heap word the
   scratch encoder promised not to spend. *)
let write_one action buf off =
  let n = size action in
  Bytes.fill buf off n '\000';
  Bytes.set_uint16_be buf off (type_of action);
  Bytes.set_uint16_be buf (off + 2) n;
  (match action with
  | Output { port; max_len } ->
      Bytes.set_uint16_be buf (off + 4) port;
      Bytes.set_uint16_be buf (off + 6) max_len
  | Set_vlan_vid vid -> Bytes.set_uint16_be buf (off + 4) vid
  | Set_vlan_pcp pcp -> Bytes.set_uint8 buf (off + 4) pcp
  | Strip_vlan -> ()
  | Set_dl_src mac | Set_dl_dst mac -> Mac.write mac buf (off + 4)
  | Set_nw_src ip | Set_nw_dst ip -> Ip.write ip buf (off + 4)
  | Set_nw_tos tos -> Bytes.set_uint8 buf (off + 4) tos
  | Set_tp_src port | Set_tp_dst port -> Bytes.set_uint16_be buf (off + 4) port
  | Enqueue { port; queue_id } ->
      Bytes.set_uint16_be buf (off + 4) port;
      Bytes.set_int32_be buf (off + 12) queue_id);
  off + n

let rec write_list actions buf off =
  match actions with
  | [] -> off
  | a :: rest -> write_list rest buf (write_one a buf off)

let read_one buf off =
  if off + 8 > Bytes.length buf then Error "Of_action.read: truncated header"
  else begin
    let typ = Bytes.get_uint16_be buf off in
    let len = Bytes.get_uint16_be buf (off + 2) in
    if len < 8 || len mod 8 <> 0 || off + len > Bytes.length buf then
      Error "Of_action.read: bad action length"
    else begin
      let action =
        if typ = type_output then
          Ok
            (Output
               {
                 port = Bytes.get_uint16_be buf (off + 4);
                 max_len = Bytes.get_uint16_be buf (off + 6);
               })
        else if typ = type_set_vlan_vid then
          Ok (Set_vlan_vid (Bytes.get_uint16_be buf (off + 4)))
        else if typ = type_set_vlan_pcp then
          Ok (Set_vlan_pcp (Bytes.get_uint8 buf (off + 4)))
        else if typ = type_strip_vlan then Ok Strip_vlan
        else if typ = type_set_dl_src then Ok (Set_dl_src (Mac.read buf (off + 4)))
        else if typ = type_set_dl_dst then Ok (Set_dl_dst (Mac.read buf (off + 4)))
        else if typ = type_set_nw_src then Ok (Set_nw_src (Ip.read buf (off + 4)))
        else if typ = type_set_nw_dst then Ok (Set_nw_dst (Ip.read buf (off + 4)))
        else if typ = type_set_nw_tos then
          Ok (Set_nw_tos (Bytes.get_uint8 buf (off + 4)))
        else if typ = type_set_tp_src then
          Ok (Set_tp_src (Bytes.get_uint16_be buf (off + 4)))
        else if typ = type_set_tp_dst then
          Ok (Set_tp_dst (Bytes.get_uint16_be buf (off + 4)))
        else if typ = type_enqueue then
          Ok
            (Enqueue
               {
                 port = Bytes.get_uint16_be buf (off + 4);
                 queue_id = Bytes.get_int32_be buf (off + 12);
               })
        else Error (Printf.sprintf "Of_action.read: unknown type %d" typ)
      in
      Result.map (fun a -> (a, off + len)) action
    end
  end

let read_list buf off ~len =
  let stop = off + len in
  let rec loop acc o =
    if o = stop then Ok (List.rev acc)
    else if o > stop then Error "Of_action.read_list: actions overrun"
    else begin
      match read_one buf o with
      | Ok (a, next) -> loop (a :: acc) next
      | Error _ as e -> e
    end
  in
  loop [] off

let rewrite_l4_src port = function
  | Packet.Udp (u, p) -> Packet.Udp ({ u with Udp.src_port = port }, p)
  | Packet.Tcp (t, p) -> Packet.Tcp ({ t with Tcp.src_port = port }, p)
  | Packet.Raw_l4 _ as l4 -> l4

let rewrite_l4_dst port = function
  | Packet.Udp (u, p) -> Packet.Udp ({ u with Udp.dst_port = port }, p)
  | Packet.Tcp (t, p) -> Packet.Tcp ({ t with Tcp.dst_port = port }, p)
  | Packet.Raw_l4 _ as l4 -> l4

let rewrite_ip f (pkt : Packet.t) =
  match pkt.Packet.l3 with
  | Packet.Ipv4 (ip, l4) -> { pkt with Packet.l3 = Packet.Ipv4 (f ip, l4) }
  | Packet.Arp _ | Packet.Raw_l3 _ -> pkt

let rewrite_l4 f (pkt : Packet.t) =
  match pkt.Packet.l3 with
  | Packet.Ipv4 (ip, l4) -> { pkt with Packet.l3 = Packet.Ipv4 (ip, f l4) }
  | Packet.Arp _ | Packet.Raw_l3 _ -> pkt

type output_spec = { out_port : int; queue_id : int32 option }

let apply_full actions pkt =
  let step (pkt, outputs) action =
    match action with
    | Output { port; _ } -> (pkt, { out_port = port; queue_id = None } :: outputs)
    | Enqueue { port; queue_id } ->
        (pkt, { out_port = port; queue_id = Some queue_id } :: outputs)
    | Set_dl_src mac ->
        ({ pkt with Packet.eth = { pkt.Packet.eth with Ethernet.src = mac } }, outputs)
    | Set_dl_dst mac ->
        ({ pkt with Packet.eth = { pkt.Packet.eth with Ethernet.dst = mac } }, outputs)
    | Set_nw_src ip -> (rewrite_ip (fun h -> { h with Ipv4.src = ip }) pkt, outputs)
    | Set_nw_dst ip -> (rewrite_ip (fun h -> { h with Ipv4.dst = ip }) pkt, outputs)
    | Set_nw_tos tos -> (rewrite_ip (fun h -> { h with Ipv4.tos = tos }) pkt, outputs)
    | Set_tp_src port -> (rewrite_l4 (rewrite_l4_src port) pkt, outputs)
    | Set_tp_dst port -> (rewrite_l4 (rewrite_l4_dst port) pkt, outputs)
    | Set_vlan_vid _ | Set_vlan_pcp _ | Strip_vlan ->
        (* VLAN tagging is not modelled on the data plane. *)
        (pkt, outputs)
  in
  let pkt, outputs = List.fold_left step (pkt, []) actions in
  (pkt, List.rev outputs)

let apply actions pkt =
  let pkt, outputs = apply_full actions pkt in
  (pkt, List.map (fun o -> o.out_port) outputs)

let equal a b =
  match (a, b) with
  | Output x, Output y -> x.port = y.port && x.max_len = y.max_len
  | Set_vlan_vid x, Set_vlan_vid y -> x = y
  | Set_vlan_pcp x, Set_vlan_pcp y -> x = y
  | Strip_vlan, Strip_vlan -> true
  | Set_dl_src x, Set_dl_src y | Set_dl_dst x, Set_dl_dst y -> Mac.equal x y
  | Set_nw_src x, Set_nw_src y | Set_nw_dst x, Set_nw_dst y -> Ip.equal x y
  | Set_nw_tos x, Set_nw_tos y -> x = y
  | Set_tp_src x, Set_tp_src y | Set_tp_dst x, Set_tp_dst y -> x = y
  | Enqueue x, Enqueue y -> x.port = y.port && Int32.equal x.queue_id y.queue_id
  | ( ( Output _ | Set_vlan_vid _ | Set_vlan_pcp _ | Strip_vlan | Set_dl_src _
      | Set_dl_dst _ | Set_nw_src _ | Set_nw_dst _ | Set_nw_tos _ | Set_tp_src _
      | Set_tp_dst _ | Enqueue _ ),
      _ ) ->
      false

let pp fmt = function
  | Output { port; max_len } ->
      Format.fprintf fmt "output(%a, max_len=%d)" Of_wire.Port.pp port max_len
  | Set_vlan_vid v -> Format.fprintf fmt "set_vlan_vid(%d)" v
  | Set_vlan_pcp v -> Format.fprintf fmt "set_vlan_pcp(%d)" v
  | Strip_vlan -> Format.fprintf fmt "strip_vlan"
  | Set_dl_src m -> Format.fprintf fmt "set_dl_src(%a)" Mac.pp m
  | Set_dl_dst m -> Format.fprintf fmt "set_dl_dst(%a)" Mac.pp m
  | Set_nw_src i -> Format.fprintf fmt "set_nw_src(%a)" Ip.pp i
  | Set_nw_dst i -> Format.fprintf fmt "set_nw_dst(%a)" Ip.pp i
  | Set_nw_tos v -> Format.fprintf fmt "set_nw_tos(%d)" v
  | Set_tp_src v -> Format.fprintf fmt "set_tp_src(%d)" v
  | Set_tp_dst v -> Format.fprintf fmt "set_tp_dst(%d)" v
  | Enqueue { port; queue_id } ->
      Format.fprintf fmt "enqueue(%d, q=%ld)" port queue_id

let pp_list fmt actions =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    pp fmt actions
