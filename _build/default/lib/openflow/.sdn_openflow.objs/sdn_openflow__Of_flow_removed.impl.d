lib/openflow/of_flow_removed.ml: Bytes Format Int32 Int64 Of_match Printf
