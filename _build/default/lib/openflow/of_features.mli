(** OpenFlow 1.0 [FEATURES_REPLY] (switch handshake).

    [n_buffers] advertises the size of the packet buffer pool — the
    quantity the paper varies (0 / 16 / 256). *)

open Sdn_net

type phy_port = {
  port_no : int;
  hw_addr : Mac.t;
  name : string;  (** at most 15 bytes; NUL-padded on the wire *)
}

type t = {
  datapath_id : int64;
  n_buffers : int32;
  n_tables : int;
  capabilities : int32;
  actions : int32;
  ports : phy_port list;
}

val make :
  datapath_id:int64 -> n_buffers:int -> n_tables:int -> ports:phy_port list -> t
(** Capabilities/actions are filled with the flow-stats and
    output-action bits this implementation supports. *)

val phy_port_size : int
(** 48 bytes. *)

val write_port : phy_port -> Bytes.t -> int -> unit
(** Serialize one ofp_phy_port (config/state/feature words zeroed). *)

val read_port : Bytes.t -> int -> phy_port

val body_size : t -> int
val write_body : t -> Bytes.t -> int -> unit
val read_body : Bytes.t -> int -> len:int -> (t, string) result

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
