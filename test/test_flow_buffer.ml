(* Tests for the flow-granularity buffer: Algorithm 1 (shared buffer_id
   per flow, one request, timeout re-request) and Algorithm 2 (release
   the whole chain). *)

open Sdn_sim
open Sdn_net
open Sdn_switch

let key n =
  Flow_key.make ~proto:17 ~src_ip:(Ip.make 10 0 0 n) ~dst_ip:(Ip.make 10 0 0 2)
    ~src_port:(1000 + n) ~dst_port:9

let frame n = Bytes.of_string (Printf.sprintf "pkt-%d" n)

let make ?(capacity = 4) ?(reclaim = 0.001) ?(timeout = 0.05) ?(max_resends = 3)
    ?(on_resend = fun ~buffer_id:_ ~key:_ ~first_frame:_ -> ()) engine =
  Flow_buffer.create engine ~capacity ~reclaim_lag:reclaim
    ~resend_timeout:timeout ~max_resends ~on_resend ()

let test_first_then_appended () =
  let engine = Engine.create () in
  let pool = make engine in
  let id =
    match Flow_buffer.add pool ~key:(key 1) ~frame:(frame 0) with
    | Flow_buffer.First id -> id
    | _ -> Alcotest.fail "expected First"
  in
  (* Algorithm 1 line 10-11: same flow's packets share the id, no new
     request. *)
  (match Flow_buffer.add pool ~key:(key 1) ~frame:(frame 1) with
  | Flow_buffer.Appended id' ->
      Alcotest.(check int32) "same buffer_id" id id'
  | _ -> Alcotest.fail "expected Appended");
  Alcotest.(check int) "one unit" 1 (Flow_buffer.units_in_use pool);
  Alcotest.(check int) "two packets" 2 (Flow_buffer.packets_buffered pool);
  Alcotest.(check int) "one flow" 1 (Flow_buffer.flows_buffered pool)

let test_distinct_flows_distinct_units () =
  let engine = Engine.create () in
  let pool = make engine in
  let id1 =
    match Flow_buffer.add pool ~key:(key 1) ~frame:(frame 0) with
    | Flow_buffer.First id -> id
    | _ -> Alcotest.fail "First expected"
  in
  let id2 =
    match Flow_buffer.add pool ~key:(key 2) ~frame:(frame 0) with
    | Flow_buffer.First id -> id
    | _ -> Alcotest.fail "First expected"
  in
  Alcotest.(check bool) "different ids" true (not (Int32.equal id1 id2));
  Alcotest.(check int) "two units" 2 (Flow_buffer.units_in_use pool)

let test_take_all_in_order () =
  let engine = Engine.create () in
  let pool = make engine in
  let id =
    match Flow_buffer.add pool ~key:(key 1) ~frame:(frame 0) with
    | Flow_buffer.First id -> id
    | _ -> Alcotest.fail "First expected"
  in
  for i = 1 to 3 do
    ignore (Flow_buffer.add pool ~key:(key 1) ~frame:(frame i))
  done;
  (match Flow_buffer.take_all pool id with
  | Flow_buffer.Taken frames ->
      Alcotest.(check (list bytes)) "arrival order"
        [ frame 0; frame 1; frame 2; frame 3 ]
        frames
  | Flow_buffer.Unknown_id -> Alcotest.fail "expected frames");
  Alcotest.(check int) "no packets left" 0 (Flow_buffer.packets_buffered pool);
  (* Stale release of the same id. *)
  match Flow_buffer.take_all pool id with
  | Flow_buffer.Unknown_id -> ()
  | Flow_buffer.Taken _ -> Alcotest.fail "double release must fail"

let test_same_flow_after_release_gets_new_unit () =
  let engine = Engine.create () in
  let pool = make ~reclaim:1e-9 engine in
  let id1 =
    match Flow_buffer.add pool ~key:(key 1) ~frame:(frame 0) with
    | Flow_buffer.First id -> id
    | _ -> Alcotest.fail "First expected"
  in
  ignore (Flow_buffer.take_all pool id1);
  (* A new miss of the same flow is a fresh First (new request). *)
  match Flow_buffer.add pool ~key:(key 1) ~frame:(frame 1) with
  | Flow_buffer.First id2 ->
      Alcotest.(check bool) "fresh id" true (not (Int32.equal id1 id2))
  | _ -> Alcotest.fail "expected a fresh First"

let test_no_space () =
  let engine = Engine.create () in
  let pool = make ~capacity:1 engine in
  ignore (Flow_buffer.add pool ~key:(key 1) ~frame:(frame 0));
  (match Flow_buffer.add pool ~key:(key 2) ~frame:(frame 0) with
  | Flow_buffer.No_space -> ()
  | _ -> Alcotest.fail "expected No_space");
  Alcotest.(check int) "failure counted" 1 (Flow_buffer.alloc_failures pool);
  (* But the existing flow can still append. *)
  match Flow_buffer.add pool ~key:(key 1) ~frame:(frame 1) with
  | Flow_buffer.Appended _ -> ()
  | _ -> Alcotest.fail "expected Appended despite full pool"

let test_timeout_resend () =
  let engine = Engine.create () in
  let resends = ref [] in
  let pool =
    make ~timeout:0.05 ~max_resends:2
      ~on_resend:(fun ~buffer_id ~key:_ ~first_frame ->
        resends := (Engine.now engine, buffer_id, first_frame) :: !resends)
      engine
  in
  let id =
    match Flow_buffer.add pool ~key:(key 1) ~frame:(frame 0) with
    | Flow_buffer.First id -> id
    | _ -> Alcotest.fail "First expected"
  in
  (* Nobody answers: expect 2 resends at 50 ms and 100 ms, then the
     chain is dropped at 150 ms. *)
  Engine.run engine;
  (match List.rev !resends with
  | [ (t1, id1, f1); (t2, id2, _) ] ->
      Alcotest.(check (float 1e-9)) "first resend" 0.05 t1;
      Alcotest.(check (float 1e-9)) "second resend" 0.10 t2;
      Alcotest.(check int32) "same buffer id" id id1;
      Alcotest.(check int32) "same buffer id again" id id2;
      Alcotest.(check bytes) "carries first frame" (frame 0) f1
  | l -> Alcotest.fail (Printf.sprintf "expected 2 resends, got %d" (List.length l)));
  Alcotest.(check int) "resends counted" 2 (Flow_buffer.resends pool);
  Alcotest.(check int) "chain dropped" 1 (Flow_buffer.drops pool);
  Alcotest.(check int) "unit freed" 0 (Flow_buffer.units_in_use pool)

let test_release_cancels_timer () =
  let engine = Engine.create () in
  let resends = ref 0 in
  let pool =
    make ~timeout:0.05 ~on_resend:(fun ~buffer_id:_ ~key:_ ~first_frame:_ -> incr resends)
      engine
  in
  let id =
    match Flow_buffer.add pool ~key:(key 1) ~frame:(frame 0) with
    | Flow_buffer.First id -> id
    | _ -> Alcotest.fail "First expected"
  in
  ignore (Engine.schedule_at engine 0.01 (fun () -> ignore (Flow_buffer.take_all pool id)));
  Engine.run engine;
  Alcotest.(check int) "no resends after release" 0 !resends

let test_occupancy_tracking () =
  let engine = Engine.create () in
  let pool = make ~capacity:8 ~reclaim:1e-9 ~timeout:10.0 engine in
  let ids =
    List.map
      (fun n ->
        match Flow_buffer.add pool ~key:(key n) ~frame:(frame n) with
        | Flow_buffer.First id -> id
        | _ -> Alcotest.fail "First expected")
      [ 1; 2; 3 ]
  in
  Alcotest.(check int) "max units" 3 (Flow_buffer.max_units_in_use pool);
  List.iter (fun id -> ignore (Flow_buffer.take_all pool id)) ids;
  Engine.run ~until:0.1 engine;
  Alcotest.(check int) "drained" 0 (Flow_buffer.units_in_use pool)

let test_expiry_mid_chain () =
  (* A chain that exhausts its resend budget while packets are still
     being appended: the whole chain must be dropped exactly once, the
     unit freed, and a later miss of the same flow must start a fresh
     chain — no stranded packets, no double release. *)
  let engine = Engine.create () in
  let pool = make ~timeout:0.05 ~max_resends:2 engine in
  let id =
    match Flow_buffer.add pool ~key:(key 1) ~frame:(frame 0) with
    | Flow_buffer.First id -> id
    | _ -> Alcotest.fail "First expected"
  in
  (* Appends land between the re-requests (resends fire at 50 ms and
     100 ms; the drop at 150 ms). *)
  List.iter
    (fun (t, i) ->
      ignore
        (Engine.schedule_at engine t (fun () ->
             match Flow_buffer.add pool ~key:(key 1) ~frame:(frame i) with
             | Flow_buffer.Appended id' ->
                 Alcotest.(check int32) "appended to the live chain" id id'
             | _ -> Alcotest.fail "expected Appended")))
    [ (0.03, 1); (0.08, 2); (0.12, 3) ];
  Engine.run engine;
  Alcotest.(check int) "all four packets dropped together" 4
    (Flow_buffer.drops pool);
  Alcotest.(check int) "one flow abandoned" 1 (Flow_buffer.abandoned_flows pool);
  Alcotest.(check int) "unit freed" 0 (Flow_buffer.units_in_use pool);
  Alcotest.(check int) "no stranded packets" 0
    (Flow_buffer.packets_buffered pool);
  (* The expired id must not release anything. *)
  (match Flow_buffer.take_all pool id with
  | Flow_buffer.Unknown_id -> ()
  | Flow_buffer.Taken _ -> Alcotest.fail "release after expiry must fail");
  (* A new miss of the same flow is a fresh chain with a fresh id. *)
  match Flow_buffer.add pool ~key:(key 1) ~frame:(frame 4) with
  | Flow_buffer.First id2 ->
      Alcotest.(check bool) "fresh id after expiry" true
        (not (Int32.equal id id2))
  | _ -> Alcotest.fail "expected a fresh First"

let test_freeze_stops_resends () =
  let engine = Engine.create () in
  let resends = ref 0 in
  let pool =
    make ~timeout:0.05 ~max_resends:5
      ~on_resend:(fun ~buffer_id:_ ~key:_ ~first_frame:_ -> incr resends)
      engine
  in
  ignore (Flow_buffer.add pool ~key:(key 1) ~frame:(frame 0));
  ignore (Engine.schedule_at engine 0.01 (fun () -> Flow_buffer.freeze pool));
  (* While frozen, new chains accumulate without arming timers. *)
  ignore
    (Engine.schedule_at engine 0.02 (fun () ->
         ignore (Flow_buffer.add pool ~key:(key 2) ~frame:(frame 1))));
  Engine.run ~until:0.5 engine;
  Alcotest.(check int) "no resends while frozen" 0 !resends;
  Alcotest.(check bool) "frozen" true (Flow_buffer.is_frozen pool);
  Alcotest.(check int) "freeze counted" 1 (Flow_buffer.freezes pool);
  Alcotest.(check int) "one chain had its timer cancelled" 1
    (Flow_buffer.chains_frozen pool);
  (* Resume re-arms both held chains; each re-requests one timeout
     later. *)
  Flow_buffer.resume pool;
  Engine.run ~until:1.0 engine;
  Alcotest.(check bool) "thawed" false (Flow_buffer.is_frozen pool);
  Alcotest.(check int) "both chains re-armed" 2
    (Flow_buffer.chains_resumed pool);
  Alcotest.(check bool) "re-requests resumed" true (!resends > 0)

let test_resume_expires_spent_chains () =
  (* A chain whose budget was already spent before the outage must be
     expired at resume, not re-armed into a fourth life. *)
  let engine = Engine.create () in
  let pool = make ~timeout:0.05 ~max_resends:2 engine in
  ignore (Flow_buffer.add pool ~key:(key 1) ~frame:(frame 0));
  (* Freeze after both resends have fired (t = 0.05, 0.10) but before
     the drop at t = 0.15. *)
  ignore (Engine.schedule_at engine 0.12 (fun () -> Flow_buffer.freeze pool));
  Engine.run ~until:0.3 engine;
  Alcotest.(check int) "chain survived the outage frozen" 1
    (Flow_buffer.units_in_use pool);
  Flow_buffer.resume pool;
  Alcotest.(check int) "expired at resume" 1
    (Flow_buffer.expired_on_resume pool);
  Alcotest.(check int) "counted as abandoned" 1
    (Flow_buffer.abandoned_flows pool);
  Alcotest.(check int) "unit freed" 0 (Flow_buffer.units_in_use pool);
  Alcotest.(check int) "nothing re-armed" 0 (Flow_buffer.chains_resumed pool)

let test_freeze_resume_idempotent () =
  let engine = Engine.create () in
  let pool = make engine in
  ignore (Flow_buffer.add pool ~key:(key 1) ~frame:(frame 0));
  Flow_buffer.freeze pool;
  Flow_buffer.freeze pool;
  Alcotest.(check int) "one freeze" 1 (Flow_buffer.freezes pool);
  Alcotest.(check int) "one chain frozen" 1 (Flow_buffer.chains_frozen pool);
  Flow_buffer.resume pool;
  Flow_buffer.resume pool;
  Alcotest.(check int) "one chain resumed" 1 (Flow_buffer.chains_resumed pool)

let prop_chain_preserves_frames =
  QCheck.Test.make ~name:"take_all returns exactly the added frames" ~count:100
    QCheck.(int_range 1 40)
    (fun n ->
      let engine = Engine.create () in
      let pool = make ~capacity:2 ~timeout:100.0 engine in
      let id =
        match Flow_buffer.add pool ~key:(key 1) ~frame:(frame 0) with
        | Flow_buffer.First id -> id
        | _ -> assert false
      in
      for i = 1 to n - 1 do
        ignore (Flow_buffer.add pool ~key:(key 1) ~frame:(frame i))
      done;
      match Flow_buffer.take_all pool id with
      | Flow_buffer.Taken frames ->
          frames = List.init n frame
      | Flow_buffer.Unknown_id -> false)

let suite =
  [
    Alcotest.test_case "first then appended (Algorithm 1)" `Quick
      test_first_then_appended;
    Alcotest.test_case "distinct flows, distinct units" `Quick
      test_distinct_flows_distinct_units;
    Alcotest.test_case "take_all releases in order (Algorithm 2)" `Quick
      test_take_all_in_order;
    Alcotest.test_case "fresh unit after release" `Quick
      test_same_flow_after_release_gets_new_unit;
    Alcotest.test_case "no space fallback" `Quick test_no_space;
    Alcotest.test_case "timeout re-request then drop" `Quick test_timeout_resend;
    Alcotest.test_case "release cancels the timer" `Quick
      test_release_cancels_timer;
    Alcotest.test_case "occupancy tracking" `Quick test_occupancy_tracking;
    Alcotest.test_case "expiry mid-chain strands nothing" `Quick
      test_expiry_mid_chain;
    Alcotest.test_case "freeze stops re-requests" `Quick
      test_freeze_stops_resends;
    Alcotest.test_case "resume expires spent chains" `Quick
      test_resume_expires_spent_chains;
    Alcotest.test_case "freeze/resume idempotent" `Quick
      test_freeze_resume_idempotent;
    QCheck_alcotest.to_alcotest prop_chain_preserves_frames;
  ]
