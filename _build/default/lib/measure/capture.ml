open Sdn_sim
open Sdn_openflow

type direction = To_controller | To_switch

type side = {
  mutable messages : int;
  mutable bytes : int;
  mutable payload_bytes : int;
  mutable first_time : float option;
  mutable last_time : float option;
  per_type_messages : (int, int) Hashtbl.t;
  per_type_bytes : (int, int) Hashtbl.t;
}

type t = { encap_overhead : int; up : side; down : side }

let make_side () =
  {
    messages = 0;
    bytes = 0;
    payload_bytes = 0;
    first_time = None;
    last_time = None;
    per_type_messages = Hashtbl.create 8;
    per_type_bytes = Hashtbl.create 8;
  }

let create ?(encap_overhead = 66) () =
  { encap_overhead; up = make_side (); down = make_side () }

let side t = function To_controller -> t.up | To_switch -> t.down

let bump tbl key v =
  Hashtbl.replace tbl key (v + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let observe t direction ~time buf =
  let s = side t direction in
  let payload = Bytes.length buf in
  s.messages <- s.messages + 1;
  s.payload_bytes <- s.payload_bytes + payload;
  s.bytes <- s.bytes + payload + t.encap_overhead;
  if s.first_time = None then s.first_time <- Some time;
  s.last_time <- Some time;
  match Of_codec.peek_type buf with
  | Ok msg_type ->
      let key = Of_wire.Msg_type.to_int msg_type in
      bump s.per_type_messages key 1;
      bump s.per_type_bytes key (payload + t.encap_overhead)
  | Error _ -> ()

let messages t d = (side t d).messages
let bytes t d = (side t d).bytes
let payload_bytes t d = (side t d).payload_bytes

let messages_of_type t d msg_type =
  Option.value ~default:0
    (Hashtbl.find_opt (side t d).per_type_messages (Of_wire.Msg_type.to_int msg_type))

let bytes_of_type t d msg_type =
  Option.value ~default:0
    (Hashtbl.find_opt (side t d).per_type_bytes (Of_wire.Msg_type.to_int msg_type))

let first_time t d = (side t d).first_time
let last_time t d = (side t d).last_time

let load_mbps t d ~window =
  if window <= 0.0 then 0.0
  else Units.bps_to_mbps (Units.bytes_to_bits (side t d).bytes /. window)

let pp_side fmt s =
  Format.fprintf fmt "%d msgs, %d B (payload %d B)" s.messages s.bytes
    s.payload_bytes

let pp_summary fmt t =
  Format.fprintf fmt "to-controller: %a; to-switch: %a" pp_side t.up pp_side
    t.down
