(* Multi-hop extension: flow setup across a chain of switches.

   Run with:  dune exec examples/chain_topology.exe

   In a data-center fabric a new flow crosses several switches, and
   every hop's table misses until its rule lands — so both the
   flow-setup delay and the control-path load multiply with path
   length. This example runs the paper's Exp-A workload (500
   single-packet flows at 40 Mbps) over chains of 1..4 switches under
   the three buffer mechanisms, all managed by one controller. *)

open Sdn_core
open Sdn_measure

let run mechanism buffer n_switches =
  let config =
    {
      Config.default with
      Config.mechanism;
      buffer_capacity = buffer;
      rate_mbps = 40.0;
      workload = Config.Exp_a { n_flows = 500 };
      seed = 21;
    }
  in
  (Config.label config, Chain.run config ~n_switches)

let () =
  Printf.printf
    "500 single-packet flows at 40 Mbps across 1..4 switches in a chain\n\
     (one controller, one control channel per switch).\n\n";
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun (label, r) ->
            [
              string_of_int n;
              label;
              string_of_int r.Chain.pkt_ins;
              Report.fmt_mbps r.Chain.ctrl_load_up_mbps;
              Report.fmt_ms r.Chain.setup_delay.Experiment.mean;
              Printf.sprintf "%d/%d" r.Chain.packets_out r.Chain.packets_in;
            ])
          [
            run Config.No_buffer 0 n;
            run Config.Packet_granularity 256 n;
            run Config.Flow_granularity 256 n;
          ])
      [ 1; 2; 3; 4 ]
  in
  Report.print_table
    ~header:
      [
        "hops"; "mechanism"; "requests"; "ctrl load up (Mbps)";
        "e2e setup (ms)"; "delivered";
      ]
    ~rows;
  Printf.printf
    "\nRequests and control load scale with the hop count for every\n\
     mechanism — but the per-hop cost of the unbuffered switch is ~5x\n\
     larger, so the buffer's savings compound along the path.\n"
