open Sdn_openflow

type t = {
  match_ : Of_match.t;
  priority : int;
  actions : Of_action.t list;
  cookie : int64;
  idle_timeout : float;
  hard_timeout : float;
  send_flow_rem : bool;
  installed_at : float;
  mutable last_used : float;
  mutable packets : int64;
  mutable bytes : int64;
}

let of_flow_mod (fm : Of_flow_mod.t) ~now =
  {
    match_ = fm.Of_flow_mod.match_;
    priority = fm.Of_flow_mod.priority;
    actions = fm.Of_flow_mod.actions;
    cookie = fm.Of_flow_mod.cookie;
    idle_timeout = float_of_int fm.Of_flow_mod.idle_timeout;
    hard_timeout = float_of_int fm.Of_flow_mod.hard_timeout;
    send_flow_rem = fm.Of_flow_mod.send_flow_rem;
    installed_at = now;
    last_used = now;
    packets = 0L;
    bytes = 0L;
  }

let touch t ~now ~bytes =
  t.last_used <- now;
  t.packets <- Int64.add t.packets 1L;
  t.bytes <- Int64.add t.bytes (Int64.of_int bytes)

let is_expired t ~now =
  (t.idle_timeout > 0.0 && now -. t.last_used >= t.idle_timeout)
  || (t.hard_timeout > 0.0 && now -. t.installed_at >= t.hard_timeout)

let expires_at t =
  let idle =
    if t.idle_timeout > 0.0 then t.last_used +. t.idle_timeout else infinity
  in
  let hard =
    if t.hard_timeout > 0.0 then t.installed_at +. t.hard_timeout else infinity
  in
  Float.min idle hard

let to_stats t ~now =
  let duration = Float.max 0.0 (now -. t.installed_at) in
  let sec = int_of_float duration in
  let nsec = int_of_float ((duration -. float_of_int sec) *. 1e9) in
  {
    Of_stats.table_id = 0;
    match_ = t.match_;
    duration_sec = Int32.of_int sec;
    duration_nsec = Int32.of_int nsec;
    priority = t.priority;
    idle_timeout = int_of_float t.idle_timeout;
    hard_timeout = int_of_float t.hard_timeout;
    cookie = t.cookie;
    packet_count = t.packets;
    byte_count = t.bytes;
    actions = t.actions;
  }

let pp fmt t =
  Format.fprintf fmt "entry{%a prio=%d pkts=%Ld bytes=%Ld}" Of_match.pp
    t.match_ t.priority t.packets t.bytes

let expiry_reason t ~now =
  if t.hard_timeout > 0.0 && now -. t.installed_at >= t.hard_timeout then
    Some Of_flow_removed.Hard_timeout
  else if t.idle_timeout > 0.0 && now -. t.last_used >= t.idle_timeout then
    Some Of_flow_removed.Idle_timeout
  else None

let to_flow_removed t ~now ~reason =
  let duration = Float.max 0.0 (now -. t.installed_at) in
  let sec = int_of_float duration in
  let nsec = int_of_float ((duration -. float_of_int sec) *. 1e9) in
  {
    Of_flow_removed.match_ = t.match_;
    cookie = t.cookie;
    priority = t.priority;
    reason;
    duration_sec = Int32.of_int sec;
    duration_nsec = Int32.of_int nsec;
    idle_timeout = int_of_float t.idle_timeout;
    packet_count = t.packets;
    byte_count = t.bytes;
  }
