lib/openflow/of_stream.mli: Bytes Of_codec
