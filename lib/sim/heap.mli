(** Array-backed, index-tracked binary min-heap.

    The heap is generic in its element type; the ordering is fixed at
    creation time by a comparison function. Used by {!Engine} as the
    pending-event queue, and reusable for any priority-queue need.

    Two properties matter for the simulator's hot path:

    - {b indexed removal}: when a [set_index] callback is supplied at
      creation, the heap reports every element's current slot through
      it ([-1] once the element leaves the heap). An element that knows
      its own slot can be removed in O(log n) with {!remove} — no
      tombstones, no deferred reaping (this is how {!Engine.cancel}
      deletes echo keepalives and backoff timers for real).
    - {b adaptive capacity}: the backing array halves whenever
      occupancy falls to a quarter (never below the creation capacity),
      so a burst does not pin its high-water memory forever. *)

type 'a t
(** A mutable min-heap of ['a] values. *)

val create :
  ?capacity:int -> ?set_index:('a -> int -> unit) -> cmp:('a -> 'a -> int) ->
  unit -> 'a t
(** [create ~cmp ()] is an empty heap ordered by [cmp] (smallest first).
    [capacity] is the initial size of the backing array (default 64)
    and its shrink floor; the heap grows and shrinks automatically.
    [set_index] (default a no-op) is called with an element's current
    array slot every time it moves, and with [-1] when it is popped,
    removed or cleared — store it to enable {!remove}. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val capacity : 'a t -> int
(** Current size of the backing array (for memory introspection). *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val push : 'a t -> 'a -> unit
(** Insert an element. O(log n). *)

val peek : 'a t -> 'a option
(** Smallest element without removing it, or [None] if empty. O(1). *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element, or [None] if empty. O(log n). *)

val pop_exn : 'a t -> 'a
(** Like {!pop} but raises [Invalid_argument] on an empty heap. *)

val remove : 'a t -> int -> 'a
(** [remove h i] removes and returns the element currently stored at
    array slot [i] (as reported by [set_index]), restoring the heap
    property. O(log n). Raises [Invalid_argument] if [i] is not a live
    slot. *)

val clear : 'a t -> unit
(** Remove all elements (reporting [-1] to [set_index] for each) and
    drop the backing array to its creation capacity. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Iterate over the elements in unspecified (heap) order. *)

val to_list : 'a t -> 'a list
(** All elements in unspecified (heap) order. *)
