lib/switch/egress_queue.ml: Array Bytes Engine Int32 Link List Option Queue Sdn_sim Stats
