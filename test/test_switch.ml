(* Behavioural tests of the switch: miss paths for the three
   mechanisms, rule installation, buffered release, handshake replies,
   errors, fallback on exhaustion. *)

open Sdn_sim
open Sdn_net
open Sdn_openflow
open Sdn_switch

let mac1 = Mac.of_octets 0x02 0 0 0 0 1
let mac2 = Mac.of_octets 0x02 0 0 0 0 2
let ip1 = Ip.make 10 0 0 1
let ip2 = Ip.make 10 0 0 2

let frame ?(src_port = 1000) ?(size = 200) () =
  Packet.encode
    (Packet.udp_frame_of_size ~src_mac:mac1 ~dst_mac:mac2 ~src_ip:ip1
       ~dst_ip:ip2 ~src_port ~dst_port:9 ~frame_size:size
       ~payload_fill:(fun _ -> ()))

(* A quiet cost model so tests reason about behaviour, not timing. *)
let fast_costs =
  {
    Costs.default with
    Costs.service_noise_sigma = 0.0;
    flow_mod_apply_latency = 1e-6;
  }

type harness = {
  engine : Engine.t;
  switch : Switch.t;
  egress1 : Bytes.t list ref;  (** frames sent out port 1 *)
  egress2 : Bytes.t list ref;  (** frames sent out port 2 *)
  to_controller : (int32 * Of_codec.msg) list ref;  (** decoded, in order *)
}

let make_harness ?(config = Switch.default_config) () =
  let engine = Engine.create () in
  let switch =
    Switch.create engine ~config ~costs:fast_costs ~rng:(Rng.of_int 1) ()
  in
  let egress1 = ref [] and egress2 = ref [] and to_controller = ref [] in
  let data_link store =
    Link.create engine ~name:"egress" ~bandwidth_bps:1e9 ~propagation_s:0.0
      ~receiver:(fun frame -> store := frame :: !store)
      ()
  in
  let ctrl_link =
    Link.create engine ~name:"ctrl" ~bandwidth_bps:1e9 ~propagation_s:0.0
      ~receiver:(fun buf ->
        match Of_codec.decode buf with
        | Ok decoded -> to_controller := decoded :: !to_controller
        | Error e -> Alcotest.fail e)
      ()
  in
  Switch.set_port switch ~port:1 (data_link egress1);
  Switch.set_port switch ~port:2 (data_link egress2);
  Switch.set_controller_link switch ctrl_link;
  { engine; switch; egress1; egress2; to_controller }

let messages h = List.rev !(h.to_controller)

let pkt_ins h =
  List.filter_map
    (function _, Of_codec.Packet_in p -> Some p | _ -> None)
    (messages h)

let send_of h msg = Switch.handle_of_message h.switch (Of_codec.encode ~xid:7l msg)

let test_miss_no_buffer_sends_full_packet () =
  let config = { Switch.default_config with Switch.mechanism = Switch.No_buffer } in
  let h = make_harness ~config () in
  let f = frame ~size:300 () in
  Switch.handle_frame h.switch ~in_port:1 f;
  Engine.run h.engine;
  match pkt_ins h with
  | [ p ] ->
      Alcotest.(check int32) "NO_BUFFER id" Of_wire.no_buffer p.Of_packet_in.buffer_id;
      Alcotest.(check int) "full frame carried" 300
        (Bytes.length p.Of_packet_in.data);
      Alcotest.(check int) "in_port" 1 p.Of_packet_in.in_port
  | l -> Alcotest.fail (Printf.sprintf "expected 1 packet_in, got %d" (List.length l))

let test_miss_packet_granularity_truncates () =
  let h = make_harness () in
  Switch.handle_frame h.switch ~in_port:1 (frame ~size:500 ());
  (* Stop before the pool's 1 s ageing would drop the unit. *)
  Engine.run ~until:0.01 h.engine;
  match pkt_ins h with
  | [ p ] ->
      Alcotest.(check bool) "valid buffer id" true
        (not (Int32.equal p.Of_packet_in.buffer_id Of_wire.no_buffer));
      Alcotest.(check int) "miss_send_len bytes" 128 (Bytes.length p.Of_packet_in.data);
      Alcotest.(check int) "total_len is full frame" 500 p.Of_packet_in.total_len;
      Alcotest.(check int) "one unit held" 1 (Switch.buffer_units_in_use h.switch)
  | _ -> Alcotest.fail "expected one packet_in"

let test_packet_out_releases_buffered () =
  let h = make_harness () in
  let f = frame () in
  Switch.handle_frame h.switch ~in_port:1 f;
  Engine.run ~until:0.01 h.engine;
  let p = List.hd (pkt_ins h) in
  send_of h
    (Of_codec.Packet_out
       (Of_packet_out.release ~buffer_id:p.Of_packet_in.buffer_id ~out_port:2));
  Engine.run ~until:0.02 h.engine;
  (match !(h.egress2) with
  | [ out ] -> Alcotest.(check bytes) "original frame egressed" f out
  | _ -> Alcotest.fail "expected the buffered frame on port 2");
  Alcotest.(check int) "forwarded counter" 1
    (Switch.counters h.switch).Switch.frames_forwarded

let test_flow_mod_installs_rule () =
  let h = make_harness () in
  let f = frame ~src_port:42 () in
  let key = Option.get (Packet.peek_flow_key f) in
  send_of h
    (Of_codec.Flow_mod
       (Of_flow_mod.add ~match_:(Of_match.of_flow_key key)
          ~actions:[ Of_action.output 2 ] ()));
  Engine.run h.engine;
  Alcotest.(check int) "rule installed" 1 (Flow_table.length (Switch.flow_table h.switch));
  (* A matching packet now forwards without any packet_in. *)
  Switch.handle_frame h.switch ~in_port:1 f;
  Engine.run h.engine;
  Alcotest.(check int) "no packet_in" 0 (List.length (pkt_ins h));
  Alcotest.(check int) "egressed" 1 (List.length !(h.egress2))

let test_flow_mod_with_buffer_id_releases () =
  let h = make_harness () in
  let f = frame ~src_port:43 () in
  Switch.handle_frame h.switch ~in_port:1 f;
  Engine.run ~until:0.01 h.engine;
  let p = List.hd (pkt_ins h) in
  let key = Option.get (Packet.peek_flow_key f) in
  send_of h
    (Of_codec.Flow_mod
       (Of_flow_mod.add ~buffer_id:p.Of_packet_in.buffer_id
          ~match_:(Of_match.of_flow_key key)
          ~actions:[ Of_action.output 2 ] ()));
  Engine.run ~until:0.02 h.engine;
  Alcotest.(check int) "rule installed" 1 (Flow_table.length (Switch.flow_table h.switch));
  Alcotest.(check int) "buffered frame released via flow_mod" 1
    (List.length !(h.egress2))

let test_buffer_exhaustion_falls_back () =
  let config = { Switch.default_config with Switch.buffer_capacity = 2 } in
  let h = make_harness ~config () in
  for p = 1 to 3 do
    Switch.handle_frame h.switch ~in_port:1 (frame ~src_port:p ())
  done;
  Engine.run h.engine;
  let ps = pkt_ins h in
  Alcotest.(check int) "three packet_ins" 3 (List.length ps);
  let fallbacks =
    List.filter
      (fun p -> Int32.equal p.Of_packet_in.buffer_id Of_wire.no_buffer)
      ps
  in
  Alcotest.(check int) "one fell back to full packet" 1 (List.length fallbacks);
  Alcotest.(check int) "counter agrees" 1
    (Switch.counters h.switch).Switch.full_packet_fallbacks

let test_flow_granularity_one_request_per_flow () =
  let config = { Switch.default_config with Switch.mechanism = Switch.Flow_granularity } in
  let h = make_harness ~config () in
  (* Four packets of one flow, two of another, all before any reply. *)
  for _ = 1 to 4 do
    Switch.handle_frame h.switch ~in_port:1 (frame ~src_port:100 ())
  done;
  for _ = 1 to 2 do
    Switch.handle_frame h.switch ~in_port:1 (frame ~src_port:200 ())
  done;
  Engine.run ~until:0.01 h.engine;
  let ps = pkt_ins h in
  Alcotest.(check int) "one request per flow" 2 (List.length ps);
  let stats = Switch.buffer_stats h.switch in
  Alcotest.(check int) "six packets buffered" 6 stats.Of_ext.packets_buffered;
  Alcotest.(check int) "two units" 2 stats.Of_ext.units_in_use

let test_flow_granularity_release_chain () =
  let config = { Switch.default_config with Switch.mechanism = Switch.Flow_granularity } in
  let h = make_harness ~config () in
  for _ = 1 to 3 do
    Switch.handle_frame h.switch ~in_port:1 (frame ~src_port:100 ())
  done;
  Engine.run ~until:0.01 h.engine;
  let p = List.hd (pkt_ins h) in
  send_of h
    (Of_codec.Packet_out
       (Of_packet_out.release ~buffer_id:p.Of_packet_in.buffer_id ~out_port:2));
  Engine.run ~until:0.02 h.engine;
  Alcotest.(check int) "whole chain egressed" 3 (List.length !(h.egress2));
  Alcotest.(check int) "pool drained" 0
    (Switch.buffer_stats h.switch).Of_ext.packets_buffered

let test_flow_granularity_timeout_resend () =
  let config =
    {
      Switch.default_config with
      Switch.mechanism = Switch.Flow_granularity;
      resend_timeout = 0.02;
      max_resends = 1;
    }
  in
  let h = make_harness ~config () in
  Switch.handle_frame h.switch ~in_port:1 (frame ~src_port:100 ());
  Engine.run ~until:0.1 h.engine;
  Alcotest.(check int) "original + resend" 2 (List.length (pkt_ins h));
  Alcotest.(check int) "resend counter" 1
    (Switch.counters h.switch).Switch.pkt_in_resends

let test_stale_buffer_id_error () =
  let h = make_harness () in
  send_of h (Of_codec.Packet_out (Of_packet_out.release ~buffer_id:12345l ~out_port:2));
  Engine.run h.engine;
  let errors =
    List.filter_map
      (function _, Of_codec.Error_msg e -> Some e | _ -> None)
      (messages h)
  in
  match errors with
  | [ e ] ->
      Alcotest.(check bool) "bad_request" true (e.Of_error.error_type = Of_error.Bad_request);
      Alcotest.(check int) "buffer_unknown" Of_error.Bad_request_code.buffer_unknown
        e.Of_error.code
  | _ -> Alcotest.fail "expected one error"

let test_handshake_replies () =
  let h = make_harness () in
  send_of h Of_codec.Hello;
  send_of h Of_codec.Features_request;
  send_of h (Of_codec.Echo_request (Bytes.of_string "x"));
  send_of h Of_codec.Barrier_request;
  Engine.run h.engine;
  let kinds = List.map (fun (_, m) -> Of_codec.msg_type m) (messages h) in
  Alcotest.(check (list string)) "reply sequence"
    [ "HELLO"; "FEATURES_REPLY"; "ECHO_REPLY"; "BARRIER_REPLY" ]
    (List.map Of_wire.Msg_type.to_string kinds);
  match messages h with
  | [ _; (_, Of_codec.Features_reply fr); _; _ ] ->
      Alcotest.(check int32) "advertises buffer pool" 256l fr.Of_features.n_buffers;
      Alcotest.(check int) "two ports" 2 (List.length fr.Of_features.ports)
  | _ -> Alcotest.fail "unexpected message shapes"

let test_vendor_switches_mechanism () =
  let h = make_harness () in
  Alcotest.(check string) "starts packet-granularity" "packet-granularity"
    (Switch.mechanism_to_string (Switch.mechanism h.switch));
  send_of h
    (Of_codec.Vendor
       (Of_ext.Flow_buffer_enable (Of_ext.default_backoff ~timeout:0.05)));
  Engine.run h.engine;
  Alcotest.(check string) "flow-granularity enabled" "flow-granularity"
    (Switch.mechanism_to_string (Switch.mechanism h.switch));
  send_of h (Of_codec.Vendor Of_ext.Flow_buffer_disable);
  Engine.run h.engine;
  Alcotest.(check string) "back to packet-granularity" "packet-granularity"
    (Switch.mechanism_to_string (Switch.mechanism h.switch))

let test_stats_replies () =
  let h = make_harness () in
  send_of h (Of_codec.Stats_request Of_stats.Desc_request);
  send_of h (Of_codec.Stats_request (Of_stats.Port_request { port_no = Of_wire.Port.none }));
  Engine.run h.engine;
  let replies =
    List.filter_map (function _, Of_codec.Stats_reply r -> Some r | _ -> None) (messages h)
  in
  match replies with
  | [ Of_stats.Desc_reply desc; Of_stats.Port_reply ports ] ->
      Alcotest.(check string) "dp_desc names mechanism" "packet-granularity"
        desc.Of_stats.dp_desc;
      Alcotest.(check int) "both ports reported" 2 (List.length ports)
  | _ -> Alcotest.fail "expected desc + port replies"

let test_table_sweep_expires_rules () =
  let h = make_harness () in
  Switch.start h.switch;
  let f = frame ~src_port:42 () in
  let key = Option.get (Packet.peek_flow_key f) in
  send_of h
    (Of_codec.Flow_mod
       (Of_flow_mod.add ~idle_timeout:2
          ~match_:(Of_match.of_flow_key key)
          ~actions:[ Of_action.output 2 ] ()));
  Engine.run ~until:1.0 h.engine;
  Alcotest.(check int) "installed" 1 (Flow_table.length (Switch.flow_table h.switch));
  Engine.run ~until:4.0 h.engine;
  Alcotest.(check int) "swept after idle timeout" 0
    (Flow_table.length (Switch.flow_table h.switch))

let suite =
  [
    Alcotest.test_case "no-buffer miss carries full packet" `Quick
      test_miss_no_buffer_sends_full_packet;
    Alcotest.test_case "packet-granularity miss truncates" `Quick
      test_miss_packet_granularity_truncates;
    Alcotest.test_case "packet_out releases buffered frame" `Quick
      test_packet_out_releases_buffered;
    Alcotest.test_case "flow_mod installs a working rule" `Quick
      test_flow_mod_installs_rule;
    Alcotest.test_case "flow_mod with buffer_id releases" `Quick
      test_flow_mod_with_buffer_id_releases;
    Alcotest.test_case "exhaustion falls back to full packets" `Quick
      test_buffer_exhaustion_falls_back;
    Alcotest.test_case "flow granularity: one request per flow" `Quick
      test_flow_granularity_one_request_per_flow;
    Alcotest.test_case "flow granularity: chain release" `Quick
      test_flow_granularity_release_chain;
    Alcotest.test_case "flow granularity: timeout re-request" `Quick
      test_flow_granularity_timeout_resend;
    Alcotest.test_case "stale buffer id raises an error" `Quick
      test_stale_buffer_id_error;
    Alcotest.test_case "handshake replies" `Quick test_handshake_replies;
    Alcotest.test_case "vendor message switches mechanism" `Quick
      test_vendor_switches_mechanism;
    Alcotest.test_case "stats replies" `Quick test_stats_replies;
    Alcotest.test_case "housekeeping sweep expires rules" `Quick
      test_table_sweep_expires_rules;
  ]
