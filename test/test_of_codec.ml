(* Roundtrip tests for every OpenFlow message type, plus the message
   sizes that the paper's analysis depends on. *)

open Sdn_net
open Sdn_openflow

let mac1 = Mac.of_octets 0x02 0 0 0 0 1
let mac2 = Mac.of_octets 0x02 0 0 0 0 2
let ip1 = Ip.make 10 0 0 1
let ip2 = Ip.make 10 0 0 2

let frame_of_size n =
  Packet.encode
    (Packet.udp_frame_of_size ~src_mac:mac1 ~dst_mac:mac2 ~src_ip:ip1
       ~dst_ip:ip2 ~src_port:1000 ~dst_port:9 ~frame_size:n
       ~payload_fill:(fun _ -> ()))

let roundtrip msg =
  let xid = 0x1234_5678l in
  let encoded = Of_codec.encode ~xid msg in
  Alcotest.(check int) "declared size" (Of_codec.size msg) (Bytes.length encoded);
  match Of_codec.decode encoded with
  | Ok (xid', msg') ->
      Alcotest.(check int32) "xid preserved" xid xid';
      Alcotest.(check bool)
        (Format.asprintf "roundtrip of %a" Of_codec.pp msg)
        true (Of_codec.equal msg msg')
  | Error e -> Alcotest.fail e

let sample_match = Of_match.of_flow_key
    (Flow_key.make ~proto:17 ~src_ip:ip1 ~dst_ip:ip2 ~src_port:1000 ~dst_port:9)

let sample_flow_mod =
  Of_flow_mod.add ~cookie:42L ~idle_timeout:5 ~priority:7 ~match_:sample_match
    ~actions:[ Of_action.output 2 ] ()

let test_hello () = roundtrip Of_codec.Hello
let test_echo () = roundtrip (Of_codec.Echo_request (Bytes.of_string "ping"));
  roundtrip (Of_codec.Echo_reply (Bytes.of_string "pong"))

let test_error () =
  roundtrip
    (Of_codec.Error_msg
       (Of_error.make ~error_type:Of_error.Bad_request
          ~code:Of_error.Bad_request_code.buffer_unknown
          ~data:(Bytes.of_string "offending bytes") ()))

let test_features () =
  roundtrip Of_codec.Features_request;
  roundtrip
    (Of_codec.Features_reply
       (Of_features.make ~datapath_id:99L ~n_buffers:256 ~n_tables:1
          ~ports:
            [
              { Of_features.port_no = 1; hw_addr = mac1; name = "eth1" };
              { Of_features.port_no = 2; hw_addr = mac2; name = "eth2" };
            ]))

let test_packet_in_full () =
  let frame = frame_of_size 1000 in
  roundtrip
    (Of_codec.Packet_in
       (Of_packet_in.make ~buffer_id:Of_wire.no_buffer ~in_port:1
          ~reason:Of_packet_in.No_match ~frame ~miss_send_len:None))

let test_packet_in_truncated () =
  let frame = frame_of_size 1000 in
  let pkt_in =
    Of_packet_in.make ~buffer_id:77l ~in_port:1 ~reason:Of_packet_in.No_match
      ~frame ~miss_send_len:(Some 128)
  in
  Alcotest.(check int) "data truncated" 128 (Bytes.length pkt_in.Of_packet_in.data);
  Alcotest.(check int) "total_len is the full frame" 1000
    pkt_in.Of_packet_in.total_len;
  roundtrip (Of_codec.Packet_in pkt_in)

let test_packet_out_release () =
  roundtrip (Of_codec.Packet_out (Of_packet_out.release ~buffer_id:3l ~out_port:2))

let test_packet_out_full () =
  let frame = frame_of_size 200 in
  roundtrip (Of_codec.Packet_out (Of_packet_out.full ~frame ~in_port:1 ~out_port:2))

let test_flow_mod () = roundtrip (Of_codec.Flow_mod sample_flow_mod)

let test_flow_mod_delete () =
  roundtrip
    (Of_codec.Flow_mod
       {
         sample_flow_mod with
         Of_flow_mod.command = Of_flow_mod.Delete;
         out_port = Of_wire.Port.none;
         actions = [];
       })

let test_barrier () =
  roundtrip Of_codec.Barrier_request;
  roundtrip Of_codec.Barrier_reply

let test_stats_desc () =
  roundtrip (Of_codec.Stats_request Of_stats.Desc_request);
  roundtrip
    (Of_codec.Stats_reply
       (Of_stats.Desc_reply
          {
            Of_stats.mfr_desc = "mfr";
            hw_desc = "hw";
            sw_desc = "sw";
            serial_num = "1";
            dp_desc = "dp";
          }))

let test_stats_flow () =
  roundtrip
    (Of_codec.Stats_request
       (Of_stats.Flow_request
          { match_ = sample_match; table_id = 0; out_port = Of_wire.Port.none }));
  let entry =
    {
      Of_stats.table_id = 0;
      match_ = sample_match;
      duration_sec = 12l;
      duration_nsec = 100l;
      priority = 7;
      idle_timeout = 5;
      hard_timeout = 0;
      cookie = 42L;
      packet_count = 1000L;
      byte_count = 1_000_000L;
      actions = [ Of_action.output 2 ];
    }
  in
  roundtrip (Of_codec.Stats_reply (Of_stats.Flow_reply [ entry; entry ]))

(* The wire length field is 16 bits: an oversized Flow_reply must be
   rejected loudly by the framer (no silent wraparound), and
   [truncate_flow_entries] must hand back exactly the prefix that
   still frames. *)
let test_stats_flow_oversized () =
  let entry =
    {
      Of_stats.table_id = 0;
      match_ = sample_match;
      duration_sec = 1l;
      duration_nsec = 0l;
      priority = 1;
      idle_timeout = 0;
      hard_timeout = 0;
      cookie = 0L;
      packet_count = 0L;
      byte_count = 0L;
      actions = [ Of_action.output 2 ];
    }
  in
  let big = List.init 1000 (fun _ -> entry) in
  Alcotest.check_raises "oversized reply rejected"
    (Invalid_argument
       "Of_wire.write_header: length exceeds the 16-bit wire field")
    (fun () ->
      ignore (Of_codec.encode ~xid:1l (Of_codec.Stats_reply (Of_stats.Flow_reply big))));
  let kept = Of_stats.truncate_flow_entries big in
  Alcotest.(check bool) "truncated" true (List.length kept < 1000);
  Alcotest.(check bool) "non-empty" true (kept <> []);
  roundtrip (Of_codec.Stats_reply (Of_stats.Flow_reply kept));
  (* One more entry would overflow again. *)
  Alcotest.check_raises "prefix is maximal"
    (Invalid_argument
       "Of_wire.write_header: length exceeds the 16-bit wire field")
    (fun () ->
      ignore
        (Of_codec.encode ~xid:1l
           (Of_codec.Stats_reply (Of_stats.Flow_reply (entry :: kept)))));
  (* A list that already fits is returned as-is. *)
  let small = List.init 5 (fun _ -> entry) in
  Alcotest.(check bool) "identity when it fits" true
    (Of_stats.truncate_flow_entries small == small)

let test_stats_aggregate () =
  roundtrip
    (Of_codec.Stats_request
       (Of_stats.Aggregate_request
          { match_ = Of_match.wildcard_all; table_id = 0xff; out_port = Of_wire.Port.none }));
  roundtrip
    (Of_codec.Stats_reply
       (Of_stats.Aggregate_reply
          { packet_count = 5L; byte_count = 5000L; flow_count = 2l }))

let test_stats_port () =
  roundtrip (Of_codec.Stats_request (Of_stats.Port_request { port_no = Of_wire.Port.none }));
  roundtrip
    (Of_codec.Stats_reply
       (Of_stats.Port_reply
          [
            {
              Of_stats.port_no = 1;
              rx_packets = 10L;
              tx_packets = 20L;
              rx_bytes = 100L;
              tx_bytes = 200L;
              rx_dropped = 0L;
              tx_dropped = 1L;
              rx_errors = 0L;
              tx_errors = 0L;
            };
          ]))

let test_vendor_messages () =
  roundtrip
    (Of_codec.Vendor
       (Of_ext.Flow_buffer_enable
          {
            Of_ext.timeout = 0.05;
            multiplier = 2.0;
            cap = 0.4;
            max_resends = 5;
          }));
  roundtrip
    (Of_codec.Vendor
       (Of_ext.Flow_buffer_enable (Of_ext.default_backoff ~timeout:0.05)));
  roundtrip (Of_codec.Vendor Of_ext.Flow_buffer_disable);
  roundtrip (Of_codec.Vendor Of_ext.Flow_buffer_stats_request);
  roundtrip
    (Of_codec.Vendor
       (Of_ext.Flow_buffer_stats_reply
          {
            Of_ext.units_in_use = 5;
            units_total = 256;
            flows_buffered = 5;
            packets_buffered = 40;
            resends = 1;
          }))

(* The message-size arithmetic behind the paper's Fig. 2. *)
let test_paper_message_sizes () =
  let frame = frame_of_size 1000 in
  let no_buffer_pkt_in =
    Of_codec.size
      (Of_codec.Packet_in
         (Of_packet_in.make ~buffer_id:Of_wire.no_buffer ~in_port:1
            ~reason:Of_packet_in.No_match ~frame ~miss_send_len:None))
  in
  let buffered_pkt_in =
    Of_codec.size
      (Of_codec.Packet_in
         (Of_packet_in.make ~buffer_id:1l ~in_port:1
            ~reason:Of_packet_in.No_match ~frame ~miss_send_len:(Some 128)))
  in
  let no_buffer_pkt_out =
    Of_codec.size (Of_codec.Packet_out (Of_packet_out.full ~frame ~in_port:1 ~out_port:2))
  in
  let buffered_pkt_out =
    Of_codec.size (Of_codec.Packet_out (Of_packet_out.release ~buffer_id:1l ~out_port:2))
  in
  Alcotest.(check int) "no-buffer PACKET_IN = 18 + frame" 1018 no_buffer_pkt_in;
  Alcotest.(check int) "buffered PACKET_IN = 18 + 128" 146 buffered_pkt_in;
  Alcotest.(check int) "no-buffer PACKET_OUT = 24 + frame" 1024 no_buffer_pkt_out;
  Alcotest.(check int) "buffered PACKET_OUT = 24" 24 buffered_pkt_out;
  Alcotest.(check int) "flow_mod = 72 + one action" 80
    (Of_codec.size (Of_codec.Flow_mod sample_flow_mod))

let test_decode_garbage () =
  Alcotest.(check bool) "short buffer" true
    (Result.is_error (Of_codec.decode (Bytes.of_string "abc")));
  let bad_version = Of_codec.encode ~xid:1l Of_codec.Hello in
  Bytes.set_uint8 bad_version 0 0x04;
  Alcotest.(check bool) "wrong version" true
    (Result.is_error (Of_codec.decode bad_version));
  let bad_type = Of_codec.encode ~xid:1l Of_codec.Hello in
  Bytes.set_uint8 bad_type 1 0xEE;
  Alcotest.(check bool) "unknown type" true
    (Result.is_error (Of_codec.decode bad_type))

let test_peek_type () =
  let encoded = Of_codec.encode ~xid:9l (Of_codec.Flow_mod sample_flow_mod) in
  match Of_codec.peek_type encoded with
  | Ok t -> Alcotest.(check bool) "flow_mod" true (t = Of_wire.Msg_type.Flow_mod)
  | Error e -> Alcotest.fail e

let prop_actions_roundtrip =
  let arbitrary_action =
    QCheck.Gen.(
      oneof
        [
          map (fun p -> Of_action.output (p land 0xffff)) nat;
          map (fun v -> Of_action.Set_vlan_vid (v land 0xfff)) nat;
          return Of_action.Strip_vlan;
          map (fun o -> Of_action.Set_dl_src (Mac.of_octets 2 0 0 0 0 (o land 0xff))) nat;
          map (fun o -> Of_action.Set_nw_dst (Ip.make 10 0 0 (o land 0xff))) nat;
          map (fun v -> Of_action.Set_nw_tos (v land 0xff)) nat;
          map (fun v -> Of_action.Set_tp_src (v land 0xffff)) nat;
          map
            (fun (p, q) ->
              Of_action.Enqueue { port = p land 0xffff; queue_id = Int32.of_int (q land 0xff) })
            (pair nat nat);
        ])
  in
  QCheck.Test.make ~name:"action list wire roundtrip" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 8) arbitrary_action))
    (fun actions ->
      let len = Of_action.list_size actions in
      let buf = Bytes.make len '\000' in
      ignore (Of_action.write_list actions buf 0);
      match Of_action.read_list buf 0 ~len with
      | Ok actions' ->
          List.length actions = List.length actions'
          && List.for_all2 Of_action.equal actions actions'
      | Error _ -> false)

let prop_packet_in_roundtrip =
  QCheck.Test.make ~name:"packet_in roundtrip across sizes" ~count:100
    (QCheck.make QCheck.Gen.(pair (int_range 64 1400) bool))
    (fun (size, buffered) ->
      let frame = frame_of_size size in
      let msg =
        Of_codec.Packet_in
          (Of_packet_in.make
             ~buffer_id:(if buffered then 5l else Of_wire.no_buffer)
             ~in_port:1 ~reason:Of_packet_in.No_match ~frame
             ~miss_send_len:(if buffered then Some 128 else None))
      in
      match Of_codec.decode (Of_codec.encode ~xid:1l msg) with
      | Ok (_, msg') -> Of_codec.equal msg msg'
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "hello" `Quick test_hello;
    Alcotest.test_case "echo request/reply" `Quick test_echo;
    Alcotest.test_case "error" `Quick test_error;
    Alcotest.test_case "features" `Quick test_features;
    Alcotest.test_case "packet_in (full frame)" `Quick test_packet_in_full;
    Alcotest.test_case "packet_in (buffered, truncated)" `Quick
      test_packet_in_truncated;
    Alcotest.test_case "packet_out (release)" `Quick test_packet_out_release;
    Alcotest.test_case "packet_out (full frame)" `Quick test_packet_out_full;
    Alcotest.test_case "flow_mod add" `Quick test_flow_mod;
    Alcotest.test_case "flow_mod delete" `Quick test_flow_mod_delete;
    Alcotest.test_case "barrier" `Quick test_barrier;
    Alcotest.test_case "stats desc" `Quick test_stats_desc;
    Alcotest.test_case "stats flow" `Quick test_stats_flow;
    Alcotest.test_case "stats flow oversized reply" `Quick
      test_stats_flow_oversized;
    Alcotest.test_case "stats aggregate" `Quick test_stats_aggregate;
    Alcotest.test_case "stats port" `Quick test_stats_port;
    Alcotest.test_case "vendor (flow-buffer extension)" `Quick
      test_vendor_messages;
    Alcotest.test_case "paper message sizes" `Quick test_paper_message_sizes;
    Alcotest.test_case "garbage rejected" `Quick test_decode_garbage;
    Alcotest.test_case "peek_type" `Quick test_peek_type;
    QCheck_alcotest.to_alcotest prop_actions_roundtrip;
    QCheck_alcotest.to_alcotest prop_packet_in_roundtrip;
  ]
