lib/switch/switch.mli: Bytes Costs Cpu Egress_queue Engine Flow_table Link Of_ext Rng Sdn_openflow Sdn_sim
