type t = { src_port : int; dst_port : int }

let size = 8

let pseudo_header_sum ~src_ip ~dst_ip ~proto ~l4_len =
  let buf = Bytes.create 12 in
  Ip.write src_ip buf 0;
  Ip.write dst_ip buf 4;
  Bytes.set_uint8 buf 8 0;
  Bytes.set_uint8 buf 9 proto;
  Bytes.set_uint16_be buf 10 l4_len;
  Checksum.sum buf 0 12

let write t ~src_ip ~dst_ip ~payload buf off =
  let len = size + Bytes.length payload in
  Bytes.set_uint16_be buf off t.src_port;
  Bytes.set_uint16_be buf (off + 2) t.dst_port;
  Bytes.set_uint16_be buf (off + 4) len;
  Bytes.set_uint16_be buf (off + 6) 0;
  let pseudo =
    pseudo_header_sum ~src_ip ~dst_ip ~proto:Ipv4.proto_udp ~l4_len:len
  in
  let body = Checksum.sum buf off len in
  let csum = Checksum.finish (Checksum.add pseudo body) in
  (* RFC 768: a computed checksum of zero is transmitted as all ones. *)
  let csum = if csum = 0 then 0xFFFF else csum in
  Bytes.set_uint16_be buf (off + 6) csum

let read buf off ~len ~src_ip ~dst_ip =
  if len < size || off + len > Bytes.length buf then
    Error "Udp.read: truncated datagram"
  else begin
    let wire_len = Bytes.get_uint16_be buf (off + 4) in
    if wire_len <> len then Error "Udp.read: length field mismatch"
    else begin
      let wire_csum = Bytes.get_uint16_be buf (off + 6) in
      let ok =
        if wire_csum = 0 then true (* checksum not used *)
        else begin
          let pseudo =
            pseudo_header_sum ~src_ip ~dst_ip ~proto:Ipv4.proto_udp ~l4_len:len
          in
          let body = Checksum.sum buf off len in
          Checksum.add pseudo body = 0xFFFF
        end
      in
      if not ok then Error "Udp.read: bad checksum"
      else
        Ok
          ( {
              src_port = Bytes.get_uint16_be buf off;
              dst_port = Bytes.get_uint16_be buf (off + 2);
            },
            len - size )
    end
  end

let equal a b = a.src_port = b.src_port && a.dst_port = b.dst_port

let pp fmt t = Format.fprintf fmt "udp{%d -> %d}" t.src_port t.dst_port
