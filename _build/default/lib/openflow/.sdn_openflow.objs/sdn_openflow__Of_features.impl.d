lib/openflow/of_features.ml: Bytes Format Int32 Int64 List Mac Sdn_net String
