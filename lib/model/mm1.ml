(* Closed-form single-station queueing models. Pure arithmetic; the
   saturated regimes return infinities instead of raising so the
   validator can report a divergent operating point rather than die
   on it. *)

type t = {
  lambda : float;
  mu : float;
  servers : int;
  rho : float;
  wait_prob : float;
  lq : float;
  wq : float;
  l : float;
  w : float;
}

let check_rates ~name ~lambda ~mu ~servers =
  if not (Float.is_finite lambda) || lambda < 0.0 then
    invalid_arg (name ^ ": lambda must be finite and >= 0");
  if not (Float.is_finite mu) || mu <= 0.0 then
    invalid_arg (name ^ ": mu must be finite and > 0");
  if servers < 1 then invalid_arg (name ^ ": servers must be >= 1")

(* Stable recursion B(0) = 1, B(k) = a B(k-1) / (k + a B(k-1)): no
   factorials, monotone in [a], exact at a = 0. *)
let erlang_b ~servers ~offered_load =
  if servers < 0 then invalid_arg "Mm1.erlang_b: servers must be >= 0";
  if not (Float.is_finite offered_load) || offered_load < 0.0 then
    invalid_arg "Mm1.erlang_b: offered load must be finite and >= 0";
  let a = offered_load in
  let b = ref 1.0 in
  for k = 1 to servers do
    b := a *. !b /. (float_of_int k +. (a *. !b))
  done;
  !b

let erlang_c ~servers ~offered_load =
  if servers < 1 then invalid_arg "Mm1.erlang_c: servers must be >= 1";
  let c = float_of_int servers in
  if offered_load >= c then 1.0
  else begin
    let b = erlang_b ~servers ~offered_load in
    c *. b /. (c -. (offered_load *. (1.0 -. b)))
  end

let mmc ~lambda ~mu ~servers =
  check_rates ~name:"Mm1.mmc" ~lambda ~mu ~servers;
  let c = float_of_int servers in
  let a = lambda /. mu in
  let rho = a /. c in
  if rho >= 1.0 then
    {
      lambda;
      mu;
      servers;
      rho;
      wait_prob = 1.0;
      lq = infinity;
      wq = infinity;
      l = infinity;
      w = infinity;
    }
  else begin
    let wait_prob = erlang_c ~servers ~offered_load:a in
    let wq = wait_prob /. ((c *. mu) -. lambda) in
    let w = wq +. (1.0 /. mu) in
    { lambda; mu; servers; rho; wait_prob; lq = lambda *. wq; wq; l = lambda *. w; w }
  end

let mm1 ~lambda ~mu = mmc ~lambda ~mu ~servers:1

type finite = {
  f_lambda : float;
  f_mu : float;
  k : int;
  f_rho : float;
  blocking : float;
  lambda_eff : float;
  f_l : float;
  f_w : float;
}

let mm1k ~lambda ~mu ~k =
  check_rates ~name:"Mm1.mm1k" ~lambda ~mu ~servers:1;
  if k < 1 then invalid_arg "Mm1.mm1k: k must be >= 1";
  let rho = lambda /. mu in
  let kf = float_of_int k in
  let blocking, l =
    if lambda = 0.0 then (0.0, 0.0)
    else if Float.abs (rho -. 1.0) < 1e-9 then
      (* rho -> 1 limit: the stationary distribution is uniform over
         {0..k}. *)
      (1.0 /. (kf +. 1.0), kf /. 2.0)
    else begin
      (* p_n = p0 rho^n; for rho > 1 the same formulas hold with the
         geometric series summed exactly. *)
      let rk = rho ** kf in
      let rk1 = rk *. rho in
      let p0 = (1.0 -. rho) /. (1.0 -. rk1) in
      let blocking = p0 *. rk in
      let l = (rho /. (1.0 -. rho)) -. ((kf +. 1.0) *. rk1 /. (1.0 -. rk1)) in
      (blocking, l)
    end
  in
  let lambda_eff = lambda *. (1.0 -. blocking) in
  let f_w = if lambda_eff = 0.0 then 1.0 /. mu else l /. lambda_eff in
  { f_lambda = lambda; f_mu = mu; k; f_rho = rho; blocking; lambda_eff; f_l = l; f_w }

let mg1_wait ~lambda ~mean_service ~second_moment =
  if not (Float.is_finite lambda) || lambda < 0.0 then
    invalid_arg "Mm1.mg1_wait: lambda must be finite and >= 0";
  if mean_service < 0.0 || second_moment < 0.0 then
    invalid_arg "Mm1.mg1_wait: service moments must be >= 0";
  let rho = lambda *. mean_service in
  if rho >= 1.0 then infinity
  else lambda *. second_moment /. (2.0 *. (1.0 -. rho))

let md1_wait ~lambda ~service =
  mg1_wait ~lambda ~mean_service:service ~second_moment:(service *. service)
