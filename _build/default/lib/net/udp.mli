(** UDP header with RFC 768 checksum over the IPv4 pseudo-header. *)

type t = { src_port : int; dst_port : int }

val size : int
(** 8 bytes. *)

val pseudo_header_sum :
  src_ip:Ip.t -> dst_ip:Ip.t -> proto:int -> l4_len:int -> int
(** Running checksum of the IPv4 pseudo-header, shared with {!Tcp}. *)

val write :
  t -> src_ip:Ip.t -> dst_ip:Ip.t -> payload:Bytes.t -> Bytes.t -> int -> unit
(** [write t ~src_ip ~dst_ip ~payload buf off] serializes header plus
    checksum; the caller must have already placed [payload] at
    [off + size] (the checksum covers it in place). *)

val read :
  Bytes.t -> int -> len:int -> src_ip:Ip.t -> dst_ip:Ip.t ->
  (t * int, string) result
(** [read buf off ~len ~src_ip ~dst_ip] parses a UDP datagram occupying
    [len] bytes, verifies length and checksum, and returns
    [(header, payload_len)]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
