(* Tests for the protocol/config extensions: SET_CONFIG / GET_CONFIG,
   FLOW_REMOVED notifications, the lossy control channel, and the
   ablation-facing configuration plumbing. *)

open Sdn_sim
open Sdn_net
open Sdn_openflow
open Sdn_core

let mac1 = Mac.of_octets 0x02 0 0 0 0 1
let mac2 = Mac.of_octets 0x02 0 0 0 0 2

let frame ?(src_port = 1000) () =
  Packet.encode
    (Packet.udp_frame_of_size ~src_mac:mac1 ~dst_mac:mac2
       ~src_ip:(Ip.make 10 0 0 1) ~dst_ip:(Ip.make 10 0 0 2) ~src_port
       ~dst_port:9 ~frame_size:600 ~payload_fill:(fun _ -> ()))

(* ---- Codec roundtrips for the new messages ---- *)

let roundtrip msg =
  let encoded = Of_codec.encode ~xid:5l msg in
  match Of_codec.decode encoded with
  | Ok (_, msg') ->
      Alcotest.(check bool)
        (Format.asprintf "roundtrip %a" Of_codec.pp msg)
        true (Of_codec.equal msg msg')
  | Error e -> Alcotest.fail e

let test_config_roundtrip () =
  roundtrip Of_codec.Get_config_request;
  roundtrip (Of_codec.Get_config_reply { Of_config.flags = 0; miss_send_len = 128 });
  roundtrip (Of_codec.Set_config { Of_config.flags = 1; miss_send_len = 1500 })

let test_flow_removed_roundtrip () =
  let key =
    Flow_key.make ~proto:17 ~src_ip:(Ip.make 10 0 0 1) ~dst_ip:(Ip.make 10 0 0 2)
      ~src_port:1 ~dst_port:2
  in
  List.iter
    (fun reason ->
      roundtrip
        (Of_codec.Flow_removed
           {
             Of_flow_removed.match_ = Of_match.of_flow_key key;
             cookie = 9L;
             priority = 1;
             reason;
             duration_sec = 7l;
             duration_nsec = 500l;
             idle_timeout = 5;
             packet_count = 42L;
             byte_count = 42_000L;
           }))
    [ Of_flow_removed.Idle_timeout; Of_flow_removed.Hard_timeout;
      Of_flow_removed.Delete ]

(* ---- Switch behaviour: SET_CONFIG controls truncation ---- *)

let switch_harness config =
  let engine = Engine.create () in
  let costs =
    { Sdn_switch.Costs.default with Sdn_switch.Costs.service_noise_sigma = 0.0 }
  in
  let switch = Sdn_switch.Switch.create engine ~config ~costs ~rng:(Rng.of_int 1) () in
  let to_controller = ref [] in
  let ctrl =
    Link.create engine ~name:"ctrl" ~bandwidth_bps:1e9 ~propagation_s:0.0
      ~receiver:(fun buf ->
        match Of_codec.decode buf with
        | Ok decoded -> to_controller := decoded :: !to_controller
        | Error e -> Alcotest.fail e)
      ()
  in
  let sink =
    Link.create engine ~name:"sink" ~bandwidth_bps:1e9 ~propagation_s:0.0
      ~receiver:(fun (_ : Bytes.t) -> ())
      ()
  in
  Sdn_switch.Switch.set_port switch ~port:2 sink;
  Sdn_switch.Switch.set_controller_link switch ctrl;
  (engine, switch, to_controller)

let test_set_config_changes_truncation () =
  let engine, switch, msgs = switch_harness Sdn_switch.Switch.default_config in
  Alcotest.(check int) "default 128" 128 (Sdn_switch.Switch.miss_send_len switch);
  Sdn_switch.Switch.handle_of_message switch
    (Of_codec.encode ~xid:1l
       (Of_codec.Set_config { Of_config.flags = 0; miss_send_len = 64 }));
  Engine.run ~until:0.001 engine;
  Alcotest.(check int) "updated" 64 (Sdn_switch.Switch.miss_send_len switch);
  Sdn_switch.Switch.handle_frame switch ~in_port:1 (frame ());
  Engine.run ~until:0.01 engine;
  let pkt_in =
    List.find_map
      (function _, Of_codec.Packet_in p -> Some p | _ -> None)
      !msgs
  in
  match pkt_in with
  | Some p ->
      Alcotest.(check int) "64-byte data" 64 (Bytes.length p.Of_packet_in.data)
  | None -> Alcotest.fail "expected a packet_in"

let test_get_config_reply () =
  let engine, switch, msgs = switch_harness Sdn_switch.Switch.default_config in
  Sdn_switch.Switch.handle_of_message switch
    (Of_codec.encode ~xid:1l Of_codec.Get_config_request);
  Engine.run ~until:0.001 engine;
  match !msgs with
  | [ (_, Of_codec.Get_config_reply c) ] ->
      Alcotest.(check int) "reports miss_send_len" 128 c.Of_config.miss_send_len
  | _ -> Alcotest.fail "expected a config reply"

let test_flow_removed_on_expiry () =
  let engine, switch, msgs = switch_harness Sdn_switch.Switch.default_config in
  Sdn_switch.Switch.start switch;
  let key = Option.get (Packet.peek_flow_key (frame ())) in
  let install ~send_flow_rem ~priority =
    let fm =
      Of_flow_mod.add ~idle_timeout:1 ~priority
        ~match_:(Of_match.of_flow_key key)
        ~actions:[ Of_action.output 2 ]
        ()
    in
    Sdn_switch.Switch.handle_of_message switch
      (Of_codec.encode ~xid:1l
         (Of_codec.Flow_mod { fm with Of_flow_mod.send_flow_rem }))
  in
  (* Two rules on the same match, different priorities: only the
     flagged one must notify. *)
  install ~send_flow_rem:true ~priority:5;
  install ~send_flow_rem:false ~priority:1;
  Engine.run ~until:3.5 engine;
  let removed =
    List.filter_map
      (function _, Of_codec.Flow_removed fr -> Some fr | _ -> None)
      !msgs
  in
  match removed with
  | [ fr ] ->
      Alcotest.(check int) "the flagged rule" 5 fr.Of_flow_removed.priority;
      Alcotest.(check bool) "idle reason" true
        (fr.Of_flow_removed.reason = Of_flow_removed.Idle_timeout)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 notification, got %d" (List.length l))

(* ---- Lossy links ---- *)

let test_link_loss_statistics () =
  let engine = Engine.create () in
  let received = ref 0 in
  let link =
    Link.create engine ~name:"lossy" ~bandwidth_bps:1e9 ~propagation_s:0.0
      ~loss:(0.3, Rng.of_int 5)
      ~receiver:(fun (_ : int) -> incr received)
      ()
  in
  for i = 1 to 1000 do
    Link.send link ~size:100 i
  done;
  Engine.run engine;
  let lost = Link.messages_lost link in
  Alcotest.(check int) "conservation" 1000 (!received + lost);
  Alcotest.(check bool)
    (Printf.sprintf "loss near 30%% (got %d/1000)" lost)
    true
    (lost > 230 && lost < 370)

let test_link_loss_rate_validation () =
  let engine = Engine.create () in
  Alcotest.(check bool) "rejects rate > 1" true
    (try
       ignore
         (Link.create engine ~name:"bad" ~bandwidth_bps:1e9 ~propagation_s:0.0
            ~loss:(1.5, Rng.of_int 1)
            ~receiver:(fun (_ : unit) -> ())
            ());
       false
     with Invalid_argument _ -> true)

let test_zero_loss_is_lossless () =
  let engine = Engine.create () in
  let received = ref 0 in
  let link =
    Link.create engine ~name:"clean" ~bandwidth_bps:1e9 ~propagation_s:0.0
      ~loss:(0.0, Rng.of_int 5)
      ~receiver:(fun (_ : int) -> incr received)
      ()
  in
  for i = 1 to 100 do
    Link.send link ~size:10 i
  done;
  Engine.run engine;
  Alcotest.(check int) "all delivered" 100 !received

(* ---- End-to-end under control-channel loss ---- *)

let run_lossy mechanism =
  Experiment.run
    {
      Config.default with
      Config.mechanism;
      buffer_capacity = 256;
      rate_mbps = 40.0;
      workload = Config.Exp_a { n_flows = 300 };
      control_loss_rate = 0.08;
      seed = 4;
    }

let test_flow_granularity_survives_loss () =
  let flow = run_lossy Config.Flow_granularity in
  Alcotest.(check bool) "some messages were lost" true
    (flow.Experiment.ctrl_msgs_lost > 0);
  Alcotest.(check bool) "re-requests fired" true
    (flow.Experiment.pkt_in_resends > 0);
  Alcotest.(check bool)
    (Printf.sprintf "delivery >= 99%% (%d/%d)" flow.Experiment.packets_out
       flow.Experiment.packets_in)
    true
    (float_of_int flow.Experiment.packets_out
     >= 0.99 *. float_of_int flow.Experiment.packets_in)

let test_packet_granularity_strands_packets_under_loss () =
  let pkt = run_lossy Config.Packet_granularity in
  Alcotest.(check bool) "messages were lost" true (pkt.Experiment.ctrl_msgs_lost > 0);
  Alcotest.(check bool)
    (Printf.sprintf "some packets stranded (%d delivered of %d)"
       pkt.Experiment.packets_out pkt.Experiment.packets_in)
    true
    (pkt.Experiment.packets_out < pkt.Experiment.packets_in)

let test_loss_reproducible () =
  let a = run_lossy Config.Flow_granularity in
  let b = run_lossy Config.Flow_granularity in
  Alcotest.(check int) "same losses" a.Experiment.ctrl_msgs_lost
    b.Experiment.ctrl_msgs_lost;
  Alcotest.(check int) "same resends" a.Experiment.pkt_in_resends
    b.Experiment.pkt_in_resends

(* ---- miss_send_len plumbing end-to-end ---- *)

let test_miss_send_len_scales_load () =
  let run len =
    Experiment.run
      {
        Config.default with
        Config.workload = Config.Exp_a { n_flows = 200 };
        rate_mbps = 30.0;
        miss_send_len = len;
      }
  in
  let small = run 64 and big = run 512 in
  Alcotest.(check bool)
    (Printf.sprintf "larger requests, larger load (%.2f vs %.2f)"
       small.Experiment.ctrl_load_up_mbps big.Experiment.ctrl_load_up_mbps)
    true
    (big.Experiment.ctrl_load_up_mbps > small.Experiment.ctrl_load_up_mbps *. 1.5)

let suite =
  [
    Alcotest.test_case "config message roundtrips" `Quick test_config_roundtrip;
    Alcotest.test_case "flow_removed roundtrips" `Quick test_flow_removed_roundtrip;
    Alcotest.test_case "SET_CONFIG changes truncation" `Quick
      test_set_config_changes_truncation;
    Alcotest.test_case "GET_CONFIG reports state" `Quick test_get_config_reply;
    Alcotest.test_case "FLOW_REMOVED on expiry (flagged rules only)" `Quick
      test_flow_removed_on_expiry;
    Alcotest.test_case "link loss statistics" `Quick test_link_loss_statistics;
    Alcotest.test_case "loss rate validation" `Quick test_link_loss_rate_validation;
    Alcotest.test_case "zero loss delivers everything" `Quick
      test_zero_loss_is_lossless;
    Alcotest.test_case "flow granularity survives control loss" `Quick
      test_flow_granularity_survives_loss;
    Alcotest.test_case "packet granularity strands packets under loss" `Quick
      test_packet_granularity_strands_packets_under_loss;
    Alcotest.test_case "loss model is reproducible" `Quick test_loss_reproducible;
    Alcotest.test_case "miss_send_len scales control load" `Quick
      test_miss_send_len_scales_load;
  ]
