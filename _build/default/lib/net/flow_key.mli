(** The 5-tuple identifying a transport flow.

    The paper's flow-granularity buffer mechanism keys its shared
    [buffer_id] map on exactly this tuple
    [(src_ip, src_port, dst_ip, dst_port, protocol)] (Algorithm 1). *)

type t = {
  proto : int;
  src_ip : Ip.t;
  dst_ip : Ip.t;
  src_port : int;
  dst_port : int;
}

val make :
  proto:int -> src_ip:Ip.t -> dst_ip:Ip.t -> src_port:int -> dst_port:int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** Hash tables keyed by flow. *)
module Table : Hashtbl.S with type key = t
