lib/measure/report.mli:
