lib/openflow/of_match.mli: Bytes Flow_key Format Ip Mac Packet Sdn_net
