(** Discrete-event simulation engine.

    The engine owns a virtual clock and a priority queue of pending
    events. Components schedule closures to run at future instants;
    running an event may schedule further events. Ties are broken by
    insertion order, so the simulation is fully deterministic.

    The queue has two interchangeable backends. The default is an
    index-tracked heap ({!Heap}): cancelling an event removes it in
    O(log n) instead of leaving a tombstone to be reaped at pop time,
    so heavy cancel churn (echo keepalives, backoff timers) neither
    grows the queue nor skews {!pending}. The alternative is a
    hierarchical timer wheel ({!Timer_wheel}) with O(1) schedule and
    amortized-O(1) dispatch, built for pending sets in the millions.
    Both dispatch in exactly the same [(time, seq)] order, so the
    choice never changes simulation output — only its speed. Events
    that share a timestamp are dispatched as one batch
    ({!step_batch}).

    Times are in seconds (floats). A typical experiment run in this
    repository covers a few simulated seconds and a few hundred
    thousand events. *)

type t
(** A simulation engine (clock + event queue). *)

type handle
(** A scheduled event, usable for cancellation (e.g. the
    flow-granularity buffer's re-request timeout is cancelled when the
    controller answers in time). *)

type queue_kind = [ `Heap | `Wheel ]
(** Pending-event store: [`Heap] is the index-tracked binary heap,
    [`Wheel] the hierarchical timer wheel. Identical dispatch order;
    see DESIGN for the performance trade-off. *)

val create : ?now:float -> ?queue:queue_kind -> unit -> t
(** Fresh engine with the clock at [now] (default [0.]) and the given
    queue backend (default [`Heap]). *)

val now : t -> float
(** Current virtual time in seconds. *)

val schedule_at : t -> float -> (unit -> unit) -> handle
(** [schedule_at t time f] runs [f] when the clock reaches [time].
    Raises [Invalid_argument] if [time] is in the past. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] is [schedule_at t (now t +. delay) f].
    A negative [delay] raises [Invalid_argument]. *)

val cancel : handle -> unit
(** Prevent the event from firing and remove it from the queue —
    O(log n) eager removal on the heap backend, O(1) lazy drop on the
    wheel. Cancelling an already-fired or already-cancelled event is
    a no-op. *)

val is_cancelled : handle -> bool

val step : t -> bool
(** Run the single earliest pending event. Returns [false] when the
    queue is empty (and nothing was run). *)

val step_batch : t -> int
(** Run {e every} event carrying the earliest pending timestamp —
    including events their actions schedule at that same instant — in
    insertion order, advancing the clock once. Returns the number of
    events executed (0 when the queue is empty). Equivalent to calling
    {!step} repeatedly; exists so the run loop pays the bookkeeping per
    timestamp instead of per event. *)

val run : ?until:float -> t -> unit
(** Run events in order until the queue is empty, or — if [until] is
    given — until the next event would be later than [until], in which
    case the clock is advanced to [until] and remaining events stay
    queued. *)

val pending : t -> int
(** Number of {e live} events still queued. Cancelled events are
    removed immediately and never counted. *)

val processed : t -> int
(** Total number of events executed so far. *)
