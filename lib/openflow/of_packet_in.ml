type reason = No_match | Action

type t = {
  buffer_id : int32;
  total_len : int;
  in_port : int;
  reason : reason;
  data : Bytes.t;
}

let default_miss_send_len = 128

(* Frames are immutable by convention throughout the simulator, so the
   full-frame and full-prefix cases alias [frame] instead of copying —
   packet_in construction is on the per-packet hot path. *)
let make ~buffer_id ~in_port ~reason ~frame ~miss_send_len =
  let total_len = Bytes.length frame in
  let data =
    match miss_send_len with
    | None -> frame
    | Some n -> if n >= total_len then frame else Bytes.sub frame 0 n
  in
  { buffer_id; total_len; in_port; reason; data }

let fixed_body = 4 + 2 + 2 + 1 + 1

let body_size t = fixed_body + Bytes.length t.data

let reason_to_int = function No_match -> 0 | Action -> 1

let reason_of_int = function
  | 0 -> Ok No_match
  | 1 -> Ok Action
  | n -> Error (Printf.sprintf "Of_packet_in: unknown reason %d" n)

let write_body t buf off =
  Bytes.set_int32_be buf off t.buffer_id;
  Bytes.set_uint16_be buf (off + 4) t.total_len;
  Bytes.set_uint16_be buf (off + 6) t.in_port;
  Bytes.set_uint8 buf (off + 8) (reason_to_int t.reason);
  Bytes.set_uint8 buf (off + 9) 0;
  Bytes.blit t.data 0 buf (off + fixed_body) (Bytes.length t.data)

let read_body buf off ~len =
  if len < fixed_body then Error "Of_packet_in.read_body: truncated"
  else begin
    match reason_of_int (Bytes.get_uint8 buf (off + 8)) with
    | Error _ as e -> e
    | Ok reason ->
        Ok
          {
            buffer_id = Bytes.get_int32_be buf off;
            total_len = Bytes.get_uint16_be buf (off + 4);
            in_port = Bytes.get_uint16_be buf (off + 6);
            reason;
            data = Bytes.sub buf (off + fixed_body) (len - fixed_body);
          }
  end

let equal a b =
  Int32.equal a.buffer_id b.buffer_id
  && a.total_len = b.total_len && a.in_port = b.in_port && a.reason = b.reason
  && Bytes.equal a.data b.data

let pp fmt t =
  Format.fprintf fmt
    "packet_in{buffer=%ld total_len=%d in_port=%d reason=%s data=%dB}"
    t.buffer_id t.total_len t.in_port
    (match t.reason with No_match -> "NO_MATCH" | Action -> "ACTION")
    (Bytes.length t.data)
