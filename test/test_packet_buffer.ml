(* Tests for the packet-granularity buffer pool. *)

open Sdn_sim
open Sdn_switch

let frame tag = Bytes.of_string (Printf.sprintf "frame-%d" tag)

let make ?(capacity = 4) ?(expiry = 1.0) ?(reclaim = 0.01) engine =
  Packet_buffer.create engine ~capacity ~expiry ~reclaim_lag:reclaim ()

let test_alloc_take () =
  let engine = Engine.create () in
  let pool = make engine in
  let id = Option.get (Packet_buffer.alloc pool ~frame:(frame 1)) in
  Alcotest.(check int) "in use" 1 (Packet_buffer.in_use pool);
  (match Packet_buffer.take pool id with
  | Packet_buffer.Taken f -> Alcotest.(check bytes) "frame" (frame 1) f
  | Packet_buffer.Unknown_id -> Alcotest.fail "expected frame");
  (* Double take is stale. *)
  (match Packet_buffer.take pool id with
  | Packet_buffer.Unknown_id -> ()
  | Packet_buffer.Taken _ -> Alcotest.fail "double take must fail");
  Alcotest.(check int) "stale counted" 1 (Packet_buffer.stale_takes pool)

let test_exhaustion_and_reclaim () =
  let engine = Engine.create () in
  let pool = make ~capacity:2 engine in
  let id1 = Option.get (Packet_buffer.alloc pool ~frame:(frame 1)) in
  let _id2 = Option.get (Packet_buffer.alloc pool ~frame:(frame 2)) in
  Alcotest.(check (option int32)) "full" None
    (Packet_buffer.alloc pool ~frame:(frame 3));
  Alcotest.(check int) "failure counted" 1 (Packet_buffer.alloc_failures pool);
  (* Taking frees the unit only after the reclaim lag. *)
  ignore (Packet_buffer.take pool id1);
  Alcotest.(check int) "still accounted during reclaim" 2
    (Packet_buffer.in_use pool);
  Alcotest.(check (option int32)) "still full during reclaim" None
    (Packet_buffer.alloc pool ~frame:(frame 4));
  (* Run just past the reclaim lag (but not to the 1 s expiry of the
     other unit). *)
  Engine.run ~until:0.05 engine;
  Alcotest.(check int) "reclaimed" 1 (Packet_buffer.in_use pool);
  Alcotest.(check bool) "allocatable again" true
    (Packet_buffer.alloc pool ~frame:(frame 5) <> None)

let test_stale_generation () =
  let engine = Engine.create () in
  let pool = make ~capacity:1 ~reclaim:0.001 engine in
  let id1 = Option.get (Packet_buffer.alloc pool ~frame:(frame 1)) in
  ignore (Packet_buffer.take pool id1);
  Engine.run engine;
  let id2 = Option.get (Packet_buffer.alloc pool ~frame:(frame 2)) in
  Alcotest.(check bool) "slot reused with new id" true (not (Int32.equal id1 id2));
  (* The old id must not release the new occupant. *)
  (match Packet_buffer.take pool id1 with
  | Packet_buffer.Unknown_id -> ()
  | Packet_buffer.Taken _ -> Alcotest.fail "stale id released new packet");
  match Packet_buffer.take pool id2 with
  | Packet_buffer.Taken f -> Alcotest.(check bytes) "new frame intact" (frame 2) f
  | Packet_buffer.Unknown_id -> Alcotest.fail "expected new frame"

let test_expiry_drops_unreleased () =
  let engine = Engine.create () in
  let pool = make ~capacity:2 ~expiry:0.5 engine in
  let id = Option.get (Packet_buffer.alloc pool ~frame:(frame 1)) in
  Engine.run engine;
  Alcotest.(check int) "expired" 1 (Packet_buffer.expired pool);
  Alcotest.(check int) "freed" 0 (Packet_buffer.in_use pool);
  match Packet_buffer.take pool id with
  | Packet_buffer.Unknown_id -> ()
  | Packet_buffer.Taken _ -> Alcotest.fail "expired packet must be gone"

let test_take_cancels_expiry () =
  let engine = Engine.create () in
  let pool = make ~capacity:2 ~expiry:0.5 engine in
  let id = Option.get (Packet_buffer.alloc pool ~frame:(frame 1)) in
  ignore (Engine.schedule_at engine 0.1 (fun () -> ignore (Packet_buffer.take pool id)));
  Engine.run engine;
  Alcotest.(check int) "no expiry after take" 0 (Packet_buffer.expired pool)

let test_occupancy_statistics () =
  let engine = Engine.create () in
  let pool = make ~capacity:8 ~reclaim:1e-9 engine in
  (* Occupy 2 units over [0, 1), then 0 afterwards. *)
  let id1 = Option.get (Packet_buffer.alloc pool ~frame:(frame 1)) in
  let id2 = Option.get (Packet_buffer.alloc pool ~frame:(frame 2)) in
  ignore
    (Engine.schedule_at engine 1.0 (fun () ->
         ignore (Packet_buffer.take pool id1);
         ignore (Packet_buffer.take pool id2)));
  ignore (Engine.schedule_at engine 2.0 (fun () -> ()));
  Engine.run engine;
  Alcotest.(check int) "max" 2 (Packet_buffer.max_in_use pool);
  let mean = Packet_buffer.mean_in_use pool ~until:2.0 in
  Alcotest.(check bool)
    (Printf.sprintf "mean ~1 (got %g)" mean)
    true
    (abs_float (mean -. 1.0) < 0.01)

(* Regression: a cold wipe arriving while a slot is in its deferred
   reclaim must CANCEL the reclaim timer. Pre-fix the timer handle was
   discarded, so the stale callback fired against the slot's next
   occupant: a post-wipe re-allocation that was taken again had its
   reclaim lag silently shortened to whatever remained of the old
   timer. *)
let test_wipe_cancels_pending_reclaim () =
  let engine = Engine.create () in
  let pool = make ~capacity:1 ~reclaim:0.1 engine in
  (* First life of the slot: alloc + take at t=0 puts it in Reclaiming
     with a timer due at t=0.1. *)
  let id1 = Option.get (Packet_buffer.alloc pool ~frame:(frame 1)) in
  (match Packet_buffer.take pool id1 with
  | Packet_buffer.Taken _ -> ()
  | Packet_buffer.Unknown_id -> Alcotest.fail "first take must succeed");
  (* Wipe mid-reclaim at t=0.05, then immediately start the slot's
     second life and take it at t=0.06: its reclaim is due at 0.16. *)
  ignore
    (Engine.schedule_at engine 0.05 (fun () ->
         Alcotest.(check int) "wipe reclaims the in-flight release" 0
           (let _lost = Packet_buffer.wipe pool in
            Packet_buffer.in_use pool);
         let id2 = Option.get (Packet_buffer.alloc pool ~frame:(frame 2)) in
         ignore
           (Engine.schedule_at engine 0.06 (fun () ->
                match Packet_buffer.take pool id2 with
                | Packet_buffer.Taken _ -> ()
                | Packet_buffer.Unknown_id ->
                    Alcotest.fail "second take must succeed"))));
  (* At t=0.12 the STALE timer (due 0.1) has fired — or would have,
     pre-fix, releasing the slot 40 ms early. The second reclaim must
     still be counting down to 0.16. *)
  Engine.run ~until:0.12 engine;
  Alcotest.(check int) "second reclaim honours the full lag" 1
    (Packet_buffer.in_use pool);
  Alcotest.(check bool) "in_use never negative" true
    (Packet_buffer.in_use pool >= 0);
  Engine.run ~until:0.2 engine;
  Alcotest.(check int) "second reclaim completes on time" 0
    (Packet_buffer.in_use pool);
  Alcotest.(check bool) "slot allocatable after both lives" true
    (Packet_buffer.alloc pool ~frame:(frame 3) <> None)

let prop_never_exceeds_capacity =
  QCheck.Test.make ~name:"in_use never exceeds capacity" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 60) bool)
    (fun ops ->
      let engine = Engine.create () in
      let pool = make ~capacity:5 ~reclaim:1e-9 engine in
      let held = ref [] in
      let ok = ref true in
      List.iter
        (fun alloc ->
          (if alloc then begin
             match Packet_buffer.alloc pool ~frame:(frame 0) with
             | Some id -> held := id :: !held
             | None -> ()
           end
           else begin
             match !held with
             | id :: rest ->
                 held := rest;
                 ignore (Packet_buffer.take pool id)
             | [] -> ()
           end);
          if Packet_buffer.in_use pool > 5 then ok := false)
        ops;
      !ok)

let suite =
  [
    Alcotest.test_case "alloc/take basic" `Quick test_alloc_take;
    Alcotest.test_case "exhaustion and deferred reclaim" `Quick
      test_exhaustion_and_reclaim;
    Alcotest.test_case "stale generation ids" `Quick test_stale_generation;
    Alcotest.test_case "expiry drops unreleased packets" `Quick
      test_expiry_drops_unreleased;
    Alcotest.test_case "take cancels expiry" `Quick test_take_cancels_expiry;
    Alcotest.test_case "occupancy statistics" `Quick test_occupancy_statistics;
    Alcotest.test_case "wipe cancels pending reclaim" `Quick
      test_wipe_cancels_pending_reclaim;
    QCheck_alcotest.to_alcotest prop_never_exceeds_capacity;
  ]
