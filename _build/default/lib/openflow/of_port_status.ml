type reason = Add | Delete | Modify

type t = { reason : reason; port : Of_features.phy_port; link_down : bool }

let body_size = 8 + Of_features.phy_port_size

let reason_to_int = function Add -> 0 | Delete -> 1 | Modify -> 2

let reason_of_int = function
  | 0 -> Ok Add
  | 1 -> Ok Delete
  | 2 -> Ok Modify
  | n -> Error (Printf.sprintf "Of_port_status: unknown reason %d" n)

(* OFPPS_LINK_DOWN is bit 0 of the port state field, which lives at
   offset 36 of ofp_phy_port; the shared phy_port codec zeroes it, so
   this module patches the bit in after writing the port. *)
let state_offset = 36

let write_body t buf off =
  Bytes.set_uint8 buf off (reason_to_int t.reason);
  Bytes.fill buf (off + 1) 7 '\000';
  Of_features.write_port t.port buf (off + 8);
  if t.link_down then
    Bytes.set_int32_be buf (off + 8 + state_offset) 1l

let read_body buf off ~len =
  if len < body_size then Error "Of_port_status.read_body: truncated"
  else begin
    match reason_of_int (Bytes.get_uint8 buf off) with
    | Error _ as e -> e
    | Ok reason ->
        let port = Of_features.read_port buf (off + 8) in
        let state = Bytes.get_int32_be buf (off + 8 + state_offset) in
        Ok { reason; port; link_down = Int32.logand state 1l <> 0l }
  end

let equal a b =
  a.reason = b.reason && a.link_down = b.link_down
  && a.port.Of_features.port_no = b.port.Of_features.port_no
  && a.port.Of_features.name = b.port.Of_features.name

let pp fmt t =
  Format.fprintf fmt "port_status{port=%d %s%s}" t.port.Of_features.port_no
    (match t.reason with Add -> "add" | Delete -> "delete" | Modify -> "modify")
    (if t.link_down then " link-down" else "")
