(** Address assignment for generated traffic.

    The paper's generator forges source IP addresses to make every
    packet a new flow; this module derives deterministic, unique
    5-tuples from flow ids. *)

open Sdn_net

type t = {
  src_mac : Mac.t;
  dst_mac : Mac.t;
  src_ip_base : Ip.t;  (** flow id is added to this base *)
  dst_ip : Ip.t;
  src_port_base : int;
  dst_port : int;
}

val default : t
(** Host1 (10.0.0.1, talking to) Host2 (10.0.0.2), forged sources from
    10.1.0.0 upward, destination port 9. *)

val src_ip : t -> flow_id:int -> Ip.t
(** [src_ip_base + flow_id] (32-bit wrap-around). *)

val src_port : t -> flow_id:int -> int
(** [src_port_base + flow_id mod 16384], keeping ports valid. *)

val flow_key : t -> flow_id:int -> Flow_key.t
(** The unique UDP 5-tuple of a generated flow. *)
