test/test_rng.ml: Alcotest Array Int64 Rng Sdn_sim Stats
