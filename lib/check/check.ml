open Sdn_openflow

type violation = {
  time : float;
  invariant : string;
  detail : string;
  trace : (float * string) list;
}

exception Violation of violation

(* Per-unit ledger entry: a unit is [Live] from allocation until its
   single release or expiry, after which the id must never come back
   (generations make recycled slots produce fresh ids). *)
type buffer_state = { mutable packets : int; mutable originals : int }

(* Shared-pool conservation ledger: one entry per policy-managed pool.
   [holdings] keeps registration order (an assoc list, not a table) so
   every report derived from it is deterministic. *)
type pool_ledger = {
  mutable pool_capacity : int;
  mutable holdings : (string * int ref) list;
}

(* Frame-pool slot conservation ledger: the pool's fixed slot count
   and how many slots the datapath currently holds. Claims and
   releases carry the pool's own free count so the checker can verify
   [live + free = slots] at every event. *)
type frame_pool_ledger = { fp_slots : int; mutable fp_live : int }

type t = {
  trace_depth : int;
  raise_on_violation : bool;
  (* Most recent first; trimmed to [trace_depth]. *)
  mutable trace_rev : (float * string) list;
  mutable trace_len : int;
  mutable violations_rev : violation list;
  mutable events : int;
  live : (string * int32, buffer_state) Hashtbl.t;
  closed : (string * int32, unit) Hashtbl.t;
  xids : (string * int32, unit) Hashtbl.t;
  pools : (string, pool_ledger) Hashtbl.t;
  frame_pools : (string, frame_pool_ledger) Hashtbl.t;
}

let create ?(trace_depth = 48) ?(raise_on_violation = false) () =
  {
    trace_depth;
    raise_on_violation;
    trace_rev = [];
    trace_len = 0;
    violations_rev = [];
    events = 0;
    live = Hashtbl.create 256;
    closed = Hashtbl.create 256;
    xids = Hashtbl.create 1024;
    pools = Hashtbl.create 8;
    frame_pools = Hashtbl.create 8;
  }

let record t ~time event =
  t.events <- t.events + 1;
  t.trace_rev <- (time, event) :: t.trace_rev;
  t.trace_len <- t.trace_len + 1;
  if t.trace_len > 2 * t.trace_depth then begin
    (* Amortised trim: keep the most recent [trace_depth] events. *)
    t.trace_rev <- List.filteri (fun i _ -> i < t.trace_depth) t.trace_rev;
    t.trace_len <- t.trace_depth
  end

let trace_tail t =
  List.rev (List.filteri (fun i _ -> i < t.trace_depth) t.trace_rev)

let violate t ~time ~invariant detail =
  record t ~time (Printf.sprintf "VIOLATION [%s] %s" invariant detail);
  let v = { time; invariant; detail; trace = trace_tail t } in
  t.violations_rev <- v :: t.violations_rev;
  if t.raise_on_violation then raise (Violation v)

(* ---- Buffer conservation + single PACKET_IN ---- *)

let unit_name pool id = Printf.sprintf "%s/%ld" pool id

let note_buffer_alloc t ~time ~pool ~id =
  record t ~time (Printf.sprintf "alloc %s" (unit_name pool id));
  let key = (pool, id) in
  if Hashtbl.mem t.live key then
    violate t ~time ~invariant:"buffer-conservation"
      (Printf.sprintf "buffer id %s re-allocated while live"
         (unit_name pool id))
  else begin
    Hashtbl.remove t.closed key;
    Hashtbl.replace t.live key { packets = 1; originals = 0 }
  end

let not_live_detail t ~pool ~id ~what =
  if Hashtbl.mem t.closed (pool, id) then
    Printf.sprintf "%s of %s after it was already released or expired" what
      (unit_name pool id)
  else Printf.sprintf "%s of never-allocated id %s" what (unit_name pool id)

let note_buffer_append t ~time ~pool ~id =
  record t ~time (Printf.sprintf "append %s" (unit_name pool id));
  match Hashtbl.find_opt t.live (pool, id) with
  | Some u -> u.packets <- u.packets + 1
  | None ->
      violate t ~time ~invariant:"buffer-conservation"
        (not_live_detail t ~pool ~id ~what:"append")

let close t ~time ~pool ~id ~what ~packets =
  let key = (pool, id) in
  match Hashtbl.find_opt t.live key with
  | Some u ->
      (match packets with
      | Some n when n <> u.packets ->
          violate t ~time ~invariant:"buffer-conservation"
            (Printf.sprintf "%s of %s returned %d packet(s), %d were buffered"
               what (unit_name pool id) n u.packets)
      | Some _ | None -> ());
      Hashtbl.remove t.live key;
      Hashtbl.replace t.closed key ()
  | None ->
      violate t ~time ~invariant:"buffer-conservation"
        (not_live_detail t ~pool ~id ~what)

let note_buffer_release t ~time ~pool ~id ~packets =
  record t ~time
    (Printf.sprintf "release %s (%d pkt)" (unit_name pool id) packets);
  close t ~time ~pool ~id ~what:"release" ~packets:(Some packets)

let note_buffer_expire t ~time ~pool ~id =
  record t ~time (Printf.sprintf "expire %s" (unit_name pool id));
  close t ~time ~pool ~id ~what:"expiry" ~packets:None

let note_packet_in t ~time ~pool ~id ~resend =
  record t ~time
    (Printf.sprintf "packet_in%s %s"
       (if resend then " (resend)" else "")
       (unit_name pool id));
  match Hashtbl.find_opt t.live (pool, id) with
  | Some u ->
      if not resend then begin
        u.originals <- u.originals + 1;
        if u.originals > 1 then
          violate t ~time ~invariant:"single-packet-in"
            (Printf.sprintf
               "second original PACKET_IN for live chain %s (appends must be \
                silent)"
               (unit_name pool id))
      end
  | None ->
      violate t ~time ~invariant:"single-packet-in"
        (not_live_detail t ~pool ~id ~what:"PACKET_IN")

(* ---- Crash state-loss ---- *)

let note_crash_wipe t ~time ~pool =
  record t ~time (Printf.sprintf "crash wipe %s" pool);
  (* Sorted by id, so the verdict is independent of table iteration
     order (the sort discharges the hashtbl-order rule). *)
  let survivors =
    Hashtbl.fold
      (fun (p, id) _ acc -> if String.equal p pool then id :: acc else acc)
      t.live []
    |> List.sort Int32.compare
  in
  match survivors with
  | [] -> ()
  | ids ->
      violate t ~time ~invariant:"cold-restart-wipe"
        (Printf.sprintf "%d chain(s) survived the cold restart of pool %s: %s"
           (List.length ids) pool
           (String.concat ", " (List.map Int32.to_string ids)))

(* ---- Shared-pool conservation ---- *)

let pool_ledger t pool =
  match Hashtbl.find_opt t.pools pool with
  | Some ledger -> ledger
  | None ->
      let ledger = { pool_capacity = 0; holdings = [] } in
      Hashtbl.replace t.pools pool ledger;
      ledger

let holdings_sum ledger =
  List.fold_left (fun acc (_, n) -> acc + !n) 0 ledger.holdings

(* The invariant itself: at every ledger event the per-class holdings
   and the pool's reported free count must tile the capacity exactly —
   no unit is ever double-claimed or leaked. *)
let check_pool_conservation t ~time ~pool ledger ~free =
  let sum = holdings_sum ledger in
  if sum + free <> ledger.pool_capacity then
    violate t ~time ~invariant:"shared-pool-conservation"
      (Printf.sprintf
         "pool %s: class holdings (%d) + free (%d) <> capacity (%d)" pool sum
         free ledger.pool_capacity)

let note_pool_create t ~time ~pool ~headroom =
  record t ~time (Printf.sprintf "pool create %s headroom=%d" pool headroom);
  let ledger = pool_ledger t pool in
  (* Headroom is pool capacity beyond the sum of class quotas; without
     it the ledger would under-count and flag every claim. *)
  ledger.pool_capacity <- ledger.pool_capacity + headroom

let note_pool_register t ~time ~pool ~class_ ~quota =
  record t ~time
    (Printf.sprintf "pool register %s/%s quota=%d" pool class_ quota);
  let ledger = pool_ledger t pool in
  if List.mem_assoc class_ ledger.holdings then
    violate t ~time ~invariant:"shared-pool-conservation"
      (Printf.sprintf "pool %s: class %s registered twice" pool class_)
  else begin
    (* Append keeps registration order for deterministic reports. *)
    ledger.holdings <- ledger.holdings @ [ (class_, ref 0) ];
    ledger.pool_capacity <- ledger.pool_capacity + quota
  end

let note_pool_claim t ~time ~pool ~class_ ~free =
  record t ~time (Printf.sprintf "pool claim %s/%s free=%d" pool class_ free);
  let ledger = pool_ledger t pool in
  (match List.assoc_opt class_ ledger.holdings with
  | Some n -> incr n
  | None ->
      violate t ~time ~invariant:"shared-pool-conservation"
        (Printf.sprintf "pool %s: claim by unregistered class %s" pool class_));
  check_pool_conservation t ~time ~pool ledger ~free

let note_pool_release t ~time ~pool ~class_ ~free =
  record t ~time
    (Printf.sprintf "pool release %s/%s free=%d" pool class_ free);
  let ledger = pool_ledger t pool in
  (match List.assoc_opt class_ ledger.holdings with
  | Some n ->
      decr n;
      if !n < 0 then
        violate t ~time ~invariant:"shared-pool-conservation"
          (Printf.sprintf "pool %s: class %s holdings went negative" pool
             class_)
  | None ->
      violate t ~time ~invariant:"shared-pool-conservation"
        (Printf.sprintf "pool %s: release by unregistered class %s" pool
           class_));
  check_pool_conservation t ~time ~pool ledger ~free

(* ---- Frame-pool slot conservation ---- *)

let frame_pool_conservation t ~time ~pool ledger ~free =
  if ledger.fp_live + free <> ledger.fp_slots then
    violate t ~time ~invariant:"frame-pool-conservation"
      (Printf.sprintf "frame pool %s: live (%d) + free (%d) <> slots (%d)" pool
         ledger.fp_live free ledger.fp_slots)

let note_frame_pool_create t ~time ~pool ~slots =
  record t ~time (Printf.sprintf "frame pool create %s slots=%d" pool slots);
  Hashtbl.replace t.frame_pools pool { fp_slots = slots; fp_live = 0 }

let unknown_frame_pool t ~time ~pool ~what =
  violate t ~time ~invariant:"frame-pool-conservation"
    (Printf.sprintf "%s on unknown frame pool %s" what pool)

let note_frame_pool_claim t ~time ~pool ~free =
  record t ~time (Printf.sprintf "frame pool claim %s free=%d" pool free);
  match Hashtbl.find_opt t.frame_pools pool with
  | None -> unknown_frame_pool t ~time ~pool ~what:"claim"
  | Some ledger ->
      ledger.fp_live <- ledger.fp_live + 1;
      if ledger.fp_live > ledger.fp_slots then
        violate t ~time ~invariant:"frame-pool-conservation"
          (Printf.sprintf "frame pool %s: %d slot(s) live out of %d" pool
             ledger.fp_live ledger.fp_slots);
      frame_pool_conservation t ~time ~pool ledger ~free

let note_frame_pool_release t ~time ~pool ~free =
  record t ~time (Printf.sprintf "frame pool release %s free=%d" pool free);
  match Hashtbl.find_opt t.frame_pools pool with
  | None -> unknown_frame_pool t ~time ~pool ~what:"release"
  | Some ledger ->
      ledger.fp_live <- ledger.fp_live - 1;
      if ledger.fp_live < 0 then
        violate t ~time ~invariant:"frame-pool-conservation"
          (Printf.sprintf
             "frame pool %s: release with no slot live (double release)" pool);
      frame_pool_conservation t ~time ~pool ledger ~free

let note_frame_pool_wipe t ~time ~pool ~free =
  record t ~time (Printf.sprintf "frame pool wipe %s free=%d" pool free);
  match Hashtbl.find_opt t.frame_pools pool with
  | None -> unknown_frame_pool t ~time ~pool ~what:"wipe"
  | Some ledger ->
      ledger.fp_live <- 0;
      if free <> ledger.fp_slots then
        violate t ~time ~invariant:"frame-pool-conservation"
          (Printf.sprintf
             "frame pool %s: wipe left %d slot(s) free out of %d" pool free
             ledger.fp_slots)

let note_reconciliation t ~time ~session ~agree ~detail =
  record t ~time
    (Printf.sprintf "reconciliation %s: flow views %s" session
       (if agree then "agree" else "DISAGREE"));
  if not agree then
    violate t ~time ~invariant:"flow-reconciliation"
      (Printf.sprintf
         "session %s: post-reconciliation flow tables disagree between \
          controller view and switch (%s)"
         session detail)

(* ---- Microflow-cache agreement ---- *)

let note_microflow t ~time ~table ~agree ~detail =
  record t ~time
    (Printf.sprintf "microflow %s: cached lookup %s" table
       (if agree then "agrees" else "DISAGREES"));
  if not agree then
    violate t ~time ~invariant:"microflow-agreement"
      (Printf.sprintf
         "table %s: cached lookup disagrees with full flow-table lookup (%s)"
         table detail)

let note_parallel_replay t ~time ~task ~equal ~detail =
  record t ~time
    (Printf.sprintf "parallel replay %s: sequential rerun %s" task
       (if equal then "agrees" else "DISAGREES"));
  if not equal then
    violate t ~time ~invariant:"parallel-equivalence"
      (Printf.sprintf
         "task %s: parallel result disagrees with its sequential replay (%s)"
         task detail)

(* ---- Control-session invariants ---- *)

(* Legal edges of {!Sdn_switch.Session}: the keepalive may degrade
   Up -> Probing -> Down, detection fires only from Up/Probing, probes
   move Down -> Reconnecting, and any proof of liveness restores to Up
   (from Probing, Down or Reconnecting). The handshake normally only
   settles into Up — but a node crash can kill a session in any live
   state, so handshaking -> down is legal too. *)
let legal_transitions =
  [
    ("handshaking", "up");
    ("handshaking", "down");
    ("up", "probing");
    ("up", "down");
    ("probing", "up");
    ("probing", "down");
    ("down", "reconnecting");
    ("down", "up");
    ("reconnecting", "up");
  ]

let note_session_transition t ~time ~session ~from_ ~to_ =
  record t ~time (Printf.sprintf "session %s: %s -> %s" session from_ to_);
  if
    not
      (List.exists
         (fun (a, b) -> String.equal a from_ && String.equal b to_)
         legal_transitions)
  then
    violate t ~time ~invariant:"session-transitions"
      (Printf.sprintf "illegal transition %s -> %s on session %s" from_ to_
         session)

let note_emit t ~time ~session ~fresh ~xid ~msg ~encoded =
  record t ~time
    (Printf.sprintf "emit %s xid=%ld %s%s" session xid
       (Of_wire.Msg_type.to_string (Of_codec.msg_type msg))
       (if fresh then " fresh" else ""));
  (match Of_codec.decode encoded with
  | Ok (xid', msg') when Int32.equal xid xid' && Of_codec.equal msg msg' -> ()
  | Ok (xid', _) when not (Int32.equal xid xid') ->
      violate t ~time ~invariant:"codec-roundtrip"
        (Printf.sprintf "session %s: encoded xid %ld decoded back as %ld"
           session xid xid')
  | Ok (_, msg') ->
      violate t ~time ~invariant:"codec-roundtrip"
        (Format.asprintf
           "session %s xid=%ld: decode (encode m) <> m (got %a, sent %a)"
           session xid Of_codec.pp msg' Of_codec.pp msg)
  | Error e ->
      violate t ~time ~invariant:"codec-roundtrip"
        (Printf.sprintf "session %s xid=%ld: emitted message fails to decode: %s"
           session xid e));
  if fresh then begin
    let key = (session, xid) in
    if Hashtbl.mem t.xids key then
      violate t ~time ~invariant:"xid-uniqueness"
        (Printf.sprintf "fresh xid %ld re-used on session %s" xid session)
    else Hashtbl.replace t.xids key ()
  end

(* ---- Results ---- *)

let violations t = List.rev t.violations_rev
let violation_count t = List.length t.violations_rev
let events_seen t = t.events

let pp_violation fmt v =
  Format.fprintf fmt "@[<v>invariant violation [%s] at t=%.6fs: %s@,"
    v.invariant v.time v.detail;
  Format.fprintf fmt "  event trace tail:@,";
  List.iter
    (fun (time, event) -> Format.fprintf fmt "    %.6fs  %s@," time event)
    v.trace;
  Format.fprintf fmt "@]"

let report t =
  match violations t with
  | [] -> ""
  | vs ->
      Format.asprintf "@[<v>%d invariant violation(s)@,%a@]" (List.length vs)
        (Format.pp_print_list pp_violation)
        vs
