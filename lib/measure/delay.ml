open Sdn_sim
open Sdn_openflow
open Sdn_traffic

type flow_state = {
  first_ingress : float;
  expected_packets : int;
  mutable first_egress : float option;
  mutable last_egress : float option;
  mutable egressed : int;
  mutable controller_delay : float option;
}

type t = {
  flows : (int, flow_state) Hashtbl.t;
  pending_requests : (int32, float * int option) Hashtbl.t;
      (** xid -> (send time, flow id when the tag was visible) *)
  setup : Stats.t;
  controller : Stats.t;
  switch : Stats.t;
  forwarding : Stats.t;
  mutable packets_in : int;
  mutable packets_out : int;
  mutable unmatched : int;
  mutable last_egress_time : float;
}

let create () =
  {
    flows = Hashtbl.create 64;
    pending_requests = Hashtbl.create 64;
    setup = Stats.create ();
    controller = Stats.create ();
    switch = Stats.create ();
    forwarding = Stats.create ();
    packets_in = 0;
    packets_out = 0;
    unmatched = 0;
    last_egress_time = 0.0;
  }

let on_switch_ingress t ~time frame =
  t.packets_in <- t.packets_in + 1;
  match Tag.read_frame frame with
  | None -> ()
  | Some tag ->
      if not (Hashtbl.mem t.flows tag.Tag.flow_id) then
        Hashtbl.add t.flows tag.Tag.flow_id
          {
            first_ingress = time;
            expected_packets = tag.Tag.flow_packets;
            first_egress = None;
            last_egress = None;
            egressed = 0;
            controller_delay = None;
          }

let finish_flow t flow =
  (* All packets out: the flow contributes its setup, switch and
     forwarding delays exactly once. *)
  match (flow.first_egress, flow.last_egress) with
  | Some first, Some last ->
      let setup = first -. flow.first_ingress in
      Stats.add t.setup setup;
      (match flow.controller_delay with
      | Some cd -> Stats.add t.switch (Float.max 0.0 (setup -. cd))
      | None -> ());
      if flow.expected_packets > 1 then
        Stats.add t.forwarding (last -. flow.first_ingress)
  | None, _ | _, None -> ()

let on_switch_egress t ~time frame =
  t.packets_out <- t.packets_out + 1;
  t.last_egress_time <- time;
  match Tag.read_frame frame with
  | None -> ()
  | Some tag -> (
      match Hashtbl.find_opt t.flows tag.Tag.flow_id with
      | None -> ()
      | Some flow ->
          if flow.first_egress = None then flow.first_egress <- Some time;
          flow.last_egress <- Some time;
          flow.egressed <- flow.egressed + 1;
          if flow.egressed = flow.expected_packets then finish_flow t flow)

let flow_id_of_pkt_in (pkt_in : Of_packet_in.t) =
  let data = pkt_in.Of_packet_in.data in
  let payload_off = Sdn_net.Packet.min_udp_frame in
  if Bytes.length data >= payload_off + Tag.size then
    Option.map
      (fun tag -> tag.Tag.flow_id)
      (Tag.read_payload (Bytes.sub data payload_off Tag.size))
  else None

let on_to_controller t ~time buf =
  match Of_codec.decode buf with
  | Ok (xid, Of_codec.Packet_in pkt_in) ->
      Hashtbl.replace t.pending_requests xid (time, flow_id_of_pkt_in pkt_in)
  | Ok _ | Error _ -> ()

let on_to_switch t ~time buf =
  match Of_wire.read_header buf with
  | Error _ -> ()
  | Ok header -> (
      match header.Of_wire.msg_type with
      | Of_wire.Msg_type.Flow_mod | Of_wire.Msg_type.Packet_out -> (
          match Hashtbl.find_opt t.pending_requests header.Of_wire.xid with
          | None -> t.unmatched <- t.unmatched + 1
          | Some (sent_at, flow_id) ->
              (* Pair with the first response only. *)
              Hashtbl.remove t.pending_requests header.Of_wire.xid;
              let delay = time -. sent_at in
              Stats.add t.controller delay;
              (match flow_id with
              | Some id -> (
                  match Hashtbl.find_opt t.flows id with
                  | Some flow when flow.controller_delay = None ->
                      flow.controller_delay <- Some delay
                  | Some _ | None -> ())
              | None -> ()))
      | _ -> ())

let flow_setup_delays t = t.setup
let controller_delays t = t.controller
let switch_delays t = t.switch
let flow_forwarding_delays t = t.forwarding

let flows_started t = Hashtbl.length t.flows

let flows_set_up t =
  (* Commutative count: iteration order cannot change the sum.
     lint: allow hashtbl-order *)
  Hashtbl.fold
    (fun _ f acc -> if f.first_egress <> None then acc + 1 else acc)
    t.flows 0

let flows_completed t =
  (* Commutative count: iteration order cannot change the sum.
     lint: allow hashtbl-order *)
  Hashtbl.fold
    (fun _ f acc -> if f.egressed >= f.expected_packets then acc + 1 else acc)
    t.flows 0

let packets_in t = t.packets_in
let packets_out t = t.packets_out
let unmatched_responses t = t.unmatched
let last_egress_time t = t.last_egress_time
