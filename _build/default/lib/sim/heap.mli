(** Array-backed binary min-heap.

    The heap is generic in its element type; the ordering is fixed at
    creation time by a comparison function. Used by {!Engine} as the
    pending-event queue, and reusable for any priority-queue need. *)

type 'a t
(** A mutable min-heap of ['a] values. *)

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp ()] is an empty heap ordered by [cmp] (smallest first).
    [capacity] is the initial size of the backing array (default 64);
    the heap grows automatically. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val push : 'a t -> 'a -> unit
(** Insert an element. O(log n). *)

val peek : 'a t -> 'a option
(** Smallest element without removing it, or [None] if empty. O(1). *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element, or [None] if empty. O(log n). *)

val pop_exn : 'a t -> 'a
(** Like {!pop} but raises [Invalid_argument] on an empty heap. *)

val clear : 'a t -> unit
(** Remove all elements (the backing array is kept). *)

val iter : ('a -> unit) -> 'a t -> unit
(** Iterate over the elements in unspecified (heap) order. *)

val to_list : 'a t -> 'a list
(** All elements in unspecified (heap) order. *)
