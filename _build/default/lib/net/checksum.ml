let fold_carries s =
  let s = ref s in
  while !s > 0xFFFF do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  !s

let sum buf off len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Checksum.sum: region out of bounds";
  let s = ref 0 in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    s := !s + Bytes.get_uint16_be buf !i;
    i := !i + 2
  done;
  if !i < stop then s := !s + (Bytes.get_uint8 buf !i lsl 8);
  fold_carries !s

let add a b = fold_carries (a + b)

let finish s = lnot s land 0xFFFF

let over buf off len = finish (sum buf off len)

let verify buf off len = sum buf off len = 0xFFFF
