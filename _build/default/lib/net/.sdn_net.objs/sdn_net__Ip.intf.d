lib/net/ip.mli: Bytes Format
