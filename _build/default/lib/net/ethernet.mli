(** Ethernet II frame header (no 802.1Q tag, no FCS). *)

type t = { dst : Mac.t; src : Mac.t; ethertype : int }

val size : int
(** 14 bytes. *)

val ethertype_ipv4 : int
(** 0x0800 *)

val ethertype_arp : int
(** 0x0806 *)

val write : t -> Bytes.t -> int -> unit
(** Serialize at the given offset; needs {!size} bytes of room. *)

val read : Bytes.t -> int -> (t, string) result
(** Parse at the given offset. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
