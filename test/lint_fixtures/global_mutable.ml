(* Dirty fixture: toplevel mutable state, shared by every domain that
   calls [memoized]. Must trip global-mutable exactly once. *)

let cache = Hashtbl.create 16

let memoized key value =
  match Hashtbl.find_opt cache key with
  | Some v -> v
  | None ->
      Hashtbl.add cache key value;
      value
