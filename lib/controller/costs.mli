(** Controller-side resource cost model (the Floodlight process).

    The paper's controller-usage measurements show parse cost growing
    with the bytes carried in each [PACKET_IN] (the no-buffer penalty)
    and a super-linear regime once many large requests arrive
    concurrently ("an approximate exponential variation", Fig. 3).
    The model therefore prices a request as

    [parse_base + parse_per_byte * msg_bytes + decision
     + encode_base * replies + encode_per_byte * reply_bytes]

    and applies a queue-length congestion penalty — GC pressure and
    scheduler thrashing under concurrency — once the backlog passes
    [congestion_threshold]. *)

type service_distribution =
  | Lognormal  (** multiplicative [exp (sigma * N(0,1))] jitter *)
  | Exponential
      (** multiplicative [Exp(1)] factor, making every service time
          exponential with its configured mean — the memoryless regime
          the analytical oracle's M/M/c stations assume *)

type t = {
  cores : int;
  parse_base_cost : float;
  parse_per_byte : float;
  decision_cost : float;  (** forwarding-table consultation *)
  encode_base_cost : float;  (** per outgoing message *)
  encode_per_byte : float;  (** per byte of data carried out *)
  congestion_threshold : int;  (** backlog at which the penalty starts *)
  congestion_slope : float;  (** extra work fraction per queued message *)
  congestion_cap : float;  (** upper bound of the penalty factor *)
  gc_window : float;
      (** sliding window (seconds) over which incoming message bytes
          are summed to estimate memory pressure *)
  gc_threshold_bytes : int;  (** pressure-free byte budget per window *)
  gc_slope_per_kb : float;
      (** extra work fraction per KB of window bytes above threshold —
          the JVM garbage-collection/copy pressure that makes handling
          many concurrent {e large} PACKET_INs super-linear (paper
          Fig. 3, no-buffer); small buffered messages never reach the
          threshold *)
  gc_cap : float;
  gc_pause_duration : float;
      (** stop-the-world pause length (seconds) injected while the byte
          window stays above threshold — the source of the no-buffer
          controller-delay spikes past ~60 Mbps in the paper's Fig. 6 *)
  gc_pause_min_gap : float;  (** minimum time between pauses *)
  service_noise_sigma : float;
  service_distribution : service_distribution;
  restart_warm_s : float;
      (** process boot time after a warm crash–restart: the control
          plane is stalled (every core busy) for this long before any
          queued message is served *)
  restart_cold_s : float;
      (** boot time after a cold restart (full state loss): module /
          interpreter / container start-up, much longer than warm *)
  reconcile_per_entry_cost : float;
      (** CPU work per flow-table entry compared during the
          post-rejoin flow-state reconciliation audit *)
}

val default : t

(** {1 Controller cost profiles}

    Swappable presets standing in for the controller implementations
    the SDN literature benchmarks against each other. Only the
    per-message cost structure and the thread-pool width vary; the
    congestion/GC shape is shared. [Floodlight] is the paper's testbed
    controller and equals {!default}. *)

type profile = Pox | Floodlight | Opendaylight

val pox : t
(** Single-threaded Python controller: [cores = 1], roughly an order
    of magnitude more per-message work. *)

val floodlight : t
(** The calibrated defaults (the paper's testbed controller). *)

val opendaylight : t
(** Wider thread pool ([cores = 4]), heavier framework per message
    than Floodlight. *)

val of_profile : profile -> t
val profile_to_string : profile -> string
val profile_of_string : string -> profile option
val profiles : profile list
(** All presets, in CLI/report order. *)

val noise : t -> Sdn_sim.Rng.t -> unit -> float
(** The multiplicative service-time jitter sampler selected by
    [service_distribution]. *)

val penalty : t -> queue_len:int -> float
(** [min cap (1 + slope * max 0 (queue - threshold))]. *)

val gc_factor : t -> window_bytes:int -> float
(** [min gc_cap (1 + gc_slope_per_kb * excess_kb)]. *)
