lib/openflow/of_packet_in.mli: Bytes Format
