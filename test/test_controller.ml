(* Behavioural tests of the controller: response pairs, xid echoing,
   release strategies, apps. *)

open Sdn_sim
open Sdn_net
open Sdn_openflow
open Sdn_controller

let mac1 = Mac.of_octets 0x02 0 0 0 0 1
let mac2 = Mac.of_octets 0x02 0 0 0 0 2
let ip1 = Ip.make 10 0 0 1
let ip2 = Ip.make 10 0 0 2

let hosts = [ (ip1, mac1, 1); (ip2, mac2, 2) ]

let quiet_costs = { Costs.default with Costs.service_noise_sigma = 0.0 }

let frame ?(dst_ip = ip2) ?(size = 200) () =
  Packet.encode
    (Packet.udp_frame_of_size ~src_mac:mac1 ~dst_mac:mac2 ~src_ip:ip1 ~dst_ip
       ~src_port:1000 ~dst_port:9 ~frame_size:size ~payload_fill:(fun _ -> ()))

type harness = {
  engine : Engine.t;
  controller : Controller.t;
  to_switch : (int32 * Of_codec.msg) list ref;
}

let make_harness ?release_strategy ?(app = Apps.forwarding ~hosts ()) () =
  let engine = Engine.create () in
  let controller =
    Controller.create engine ~app ~costs:quiet_costs ~rng:(Rng.of_int 1)
      ?release_strategy ()
  in
  let to_switch = ref [] in
  let link =
    Link.create engine ~name:"down" ~bandwidth_bps:1e9 ~propagation_s:0.0
      ~receiver:(fun buf ->
        match Of_codec.decode buf with
        | Ok decoded -> to_switch := decoded :: !to_switch
        | Error e -> Alcotest.fail e)
      ()
  in
  Controller.set_switch_link controller link;
  { engine; controller; to_switch }

let deliver h msg ~xid =
  Controller.handle_message h.controller (Of_codec.encode ~xid msg)

let messages h = List.rev !(h.to_switch)

let pkt_in_of ?(buffered = true) f =
  Of_packet_in.make
    ~buffer_id:(if buffered then 7l else Of_wire.no_buffer)
    ~in_port:1 ~reason:Of_packet_in.No_match ~frame:f
    ~miss_send_len:(if buffered then Some 128 else None)

let test_buffered_request_gets_pair () =
  let h = make_harness () in
  deliver h (Of_codec.Packet_in (pkt_in_of (frame ()))) ~xid:99l;
  Engine.run h.engine;
  match messages h with
  | [ (x1, Of_codec.Flow_mod fm); (x2, Of_codec.Packet_out po) ] ->
      Alcotest.(check int32) "flow_mod echoes xid" 99l x1;
      Alcotest.(check int32) "packet_out echoes xid" 99l x2;
      Alcotest.(check int32) "flow_mod does not carry the buffer" Of_wire.no_buffer
        fm.Of_flow_mod.buffer_id;
      Alcotest.(check int32) "packet_out names the buffer" 7l
        po.Of_packet_out.buffer_id;
      Alcotest.(check int) "packet_out carries no data" 0
        (Bytes.length po.Of_packet_out.data);
      (match po.Of_packet_out.actions with
      | [ Of_action.Output { port = 2; _ } ] -> ()
      | _ -> Alcotest.fail "expected output to port 2 (host2)");
      (* The installed rule matches the flow's 5-tuple. *)
      Alcotest.(check bool) "match pins the 5-tuple" true
        (fm.Of_flow_mod.match_.Of_match.tp_src = Some 1000)
  | l -> Alcotest.fail (Printf.sprintf "expected pair, got %d messages" (List.length l))

let test_unbuffered_request_carries_data_back () =
  let h = make_harness () in
  let f = frame ~size:300 () in
  deliver h (Of_codec.Packet_in (pkt_in_of ~buffered:false f)) ~xid:5l;
  Engine.run h.engine;
  match messages h with
  | [ _; (_, Of_codec.Packet_out po) ] ->
      Alcotest.(check int32) "NO_BUFFER" Of_wire.no_buffer po.Of_packet_out.buffer_id;
      Alcotest.(check int) "full frame inside" 300 (Bytes.length po.Of_packet_out.data)
  | _ -> Alcotest.fail "expected flow_mod + packet_out"

let test_flow_mod_release_strategy () =
  let h = make_harness ~release_strategy:`Flow_mod_release () in
  deliver h (Of_codec.Packet_in (pkt_in_of (frame ()))) ~xid:3l;
  Engine.run h.engine;
  match messages h with
  | [ (_, Of_codec.Flow_mod fm) ] ->
      Alcotest.(check int32) "buffer released via flow_mod" 7l
        fm.Of_flow_mod.buffer_id
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected a single flow_mod, got %d messages" (List.length l))

let test_unroutable_floods () =
  let h = make_harness () in
  let f = frame ~dst_ip:(Ip.make 203 0 113 9) () in
  (* Unknown destination IP and a known dst MAC: still routed by MAC.
     Make the MAC unknown too. *)
  let unroutable =
    Packet.encode
      (Packet.udp_frame_of_size ~src_mac:mac1
         ~dst_mac:(Mac.of_octets 0xde 0xad 0 0 0 1)
         ~src_ip:ip1 ~dst_ip:(Ip.make 203 0 113 9) ~src_port:1 ~dst_port:2
         ~frame_size:100 ~payload_fill:(fun _ -> ()))
  in
  ignore f;
  deliver h (Of_codec.Packet_in (pkt_in_of unroutable)) ~xid:1l;
  Engine.run h.engine;
  match messages h with
  | [ (_, Of_codec.Packet_out po) ] -> (
      match po.Of_packet_out.actions with
      | [ Of_action.Output { port; _ } ] ->
          Alcotest.(check int) "flood" Of_wire.Port.flood port
      | _ -> Alcotest.fail "expected a single output action")
  | _ -> Alcotest.fail "expected a flood packet_out and no flow_mod"

let test_dropper_app_releases_buffer () =
  let h = make_harness ~app:(Apps.dropper ()) () in
  deliver h (Of_codec.Packet_in (pkt_in_of (frame ()))) ~xid:1l;
  Engine.run h.engine;
  (match messages h with
  | [ (_, Of_codec.Packet_out po) ] ->
      Alcotest.(check (list reject)) "no actions = drop" []
        (List.map (fun _ -> ()) po.Of_packet_out.actions)
  | _ -> Alcotest.fail "expected an empty packet_out releasing the buffer");
  Alcotest.(check int) "drop counted" 1
    (Controller.counters h.controller).Controller.drops_decided

let test_learning_switch_learns () =
  let h = make_harness ~app:(Apps.learning_switch ()) () in
  (* First, a packet from mac1 on port 1 teaches the mapping; its
     destination is unknown, so it floods. *)
  deliver h (Of_codec.Packet_in (pkt_in_of (frame ()))) ~xid:1l;
  Engine.run h.engine;
  (match messages h with
  | [ (_, Of_codec.Packet_out po) ] -> (
      match po.Of_packet_out.actions with
      | [ Of_action.Output { port; _ } ] ->
          Alcotest.(check int) "floods unknown" Of_wire.Port.flood port
      | _ -> Alcotest.fail "expected one action")
  | _ -> Alcotest.fail "expected flood first");
  h.to_switch := [];
  (* Then the reverse direction: dst mac1 is now known on port 1. *)
  let reverse =
    Packet.encode
      (Packet.udp_frame_of_size ~src_mac:mac2 ~dst_mac:mac1 ~src_ip:ip2
         ~dst_ip:ip1 ~src_port:9 ~dst_port:1000 ~frame_size:100
         ~payload_fill:(fun _ -> ()))
  in
  deliver h
    (Of_codec.Packet_in
       (Of_packet_in.make ~buffer_id:9l ~in_port:2 ~reason:Of_packet_in.No_match
          ~frame:reverse ~miss_send_len:(Some 128)))
    ~xid:2l;
  Engine.run h.engine;
  match messages h with
  | [ (_, Of_codec.Flow_mod _); (_, Of_codec.Packet_out po) ] -> (
      match po.Of_packet_out.actions with
      | [ Of_action.Output { port = 1; _ } ] -> ()
      | _ -> Alcotest.fail "expected learned output to port 1")
  | _ -> Alcotest.fail "expected install + release"

let test_echo_reply () =
  let h = make_harness () in
  deliver h (Of_codec.Echo_request (Bytes.of_string "abc")) ~xid:44l;
  Engine.run h.engine;
  match messages h with
  | [ (xid, Of_codec.Echo_reply payload) ] ->
      Alcotest.(check int32) "xid" 44l xid;
      Alcotest.(check bytes) "payload" (Bytes.of_string "abc") payload
  | _ -> Alcotest.fail "expected an echo reply"

let test_start_handshake () =
  let h = make_harness () in
  Controller.start h.controller
    ~enable_flow_buffer:(Of_ext.default_backoff ~timeout:0.05) ();
  Engine.run h.engine;
  let kinds =
    List.map (fun (_, m) -> Of_wire.Msg_type.to_string (Of_codec.msg_type m)) (messages h)
  in
  Alcotest.(check (list string)) "handshake" [ "HELLO"; "FEATURES_REQUEST"; "VENDOR" ] kinds

let test_counters () =
  let h = make_harness () in
  deliver h (Of_codec.Packet_in (pkt_in_of (frame ()))) ~xid:1l;
  deliver h (Of_codec.Packet_in (pkt_in_of (frame ()))) ~xid:2l;
  Engine.run h.engine;
  let c = Controller.counters h.controller in
  Alcotest.(check int) "pkt_ins" 2 c.Controller.pkt_ins_received;
  Alcotest.(check int) "flow_mods" 2 c.Controller.flow_mods_sent;
  Alcotest.(check int) "pkt_outs" 2 c.Controller.pkt_outs_sent

let suite =
  [
    Alcotest.test_case "buffered request gets flow_mod + small packet_out" `Quick
      test_buffered_request_gets_pair;
    Alcotest.test_case "unbuffered request carries the frame back" `Quick
      test_unbuffered_request_carries_data_back;
    Alcotest.test_case "flow_mod release strategy (ablation)" `Quick
      test_flow_mod_release_strategy;
    Alcotest.test_case "unroutable destination floods" `Quick test_unroutable_floods;
    Alcotest.test_case "dropper app releases buffer" `Quick
      test_dropper_app_releases_buffer;
    Alcotest.test_case "learning switch learns" `Quick test_learning_switch_learns;
    Alcotest.test_case "echo reply" `Quick test_echo_reply;
    Alcotest.test_case "handshake on start" `Quick test_start_handshake;
    Alcotest.test_case "counters" `Quick test_counters;
  ]
