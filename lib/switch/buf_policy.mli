(** Pluggable shared-buffer management policies.

    The paper sweeps a {e statically partitioned} per-switch buffer
    (16 vs 256 slots) and stops there; the mechanism-design extension
    is to let every consumer of switch buffering — the packet-buffer
    pool and each egress class queue — draw from one {e shared} pool
    through a policy that decides, per admission, whether the claiming
    class may take one more unit.

    Four policies are provided:

    - {b Static partition} ([Static]): each class may hold at most its
      registered quota. This reproduces today's behaviour exactly and
      is the reference the goldens are pinned to.
    - {b Complete sharing} ([Sharing]): any class may claim any free
      unit; nothing is reserved. Maximal utilisation, no isolation.
    - {b Dynamic Threshold} ([Dt]): the classic Choudhury–Hahne rule —
      admit while [len < alpha * free]. The threshold self-adjusts
      with load: as the pool fills, [free] shrinks and so does every
      class's effective limit, always leaving a slack fraction
      unallocated.
    - {b Traffic-aware Dynamic Threshold} ([Tdt]): a TDT/BShare-style
      refinement in which each class's alpha is continuously re-derived
      from its observed queueing delay EWMA and its priority: classes
      whose delay stays at or below the target keep a generous alpha,
      classes whose delay inflates see alpha tightened, pushing the
      shared slack toward the classes that are actually meeting their
      service target.

    All state is per-pool and engine-driven; admission decisions are
    pure functions of the pool counters, so runs are deterministic.
    When a {!Sdn_check.Check.t} is attached, every claim and release is
    reported for the {b shared-pool-conservation} invariant (sum of
    per-class holdings + free = capacity at every ledger event). *)

(** Which sharing discipline governs the pool. *)
type kind =
  | Static  (** per-class quotas, no sharing (reference behaviour) *)
  | Sharing  (** complete sharing: first come, first served *)
  | Dt of { alpha : float }
      (** Dynamic Threshold: admit while [len < alpha * free] *)
  | Tdt of { alpha0 : float; target_delay : float }
      (** adaptive DT: per-class alpha derived from [alpha0], class
          priority and the class's queueing-delay EWMA against
          [target_delay] (seconds) *)

val kind_of_string : string -> (kind, string) result
(** Parse a CLI spelling: ["static"], ["share"], ["dt:ALPHA"] (also
    bare ["dt"], alpha 2), ["tdt"], ["tdt:ALPHA0"] or
    ["tdt:ALPHA0:TARGET_MS"]. *)

val kind_to_string : kind -> string
(** Inverse of {!kind_of_string}; used in labels and reports. *)

type t
(** A shared pool: total capacity (the sum of registered quotas plus
    any headroom granted at creation) and the classes drawing on it. *)

type cls
(** One registered class: its quota, priority, live holdings and
    admission statistics. *)

val create :
  ?check:Sdn_check.Check.t ->
  ?headroom:int ->
  kind:kind ->
  name:string ->
  Sdn_sim.Engine.t ->
  t
(** A fresh pool. [headroom] (default 0) is extra shared capacity on
    top of the per-class quotas — the slack that non-static policies
    can move between classes. [name] identifies the pool in checker
    ledgers and reports. *)

val register :
  t -> name:string -> quota:int -> priority:int -> cls
(** Add a class contributing [quota] units to the pool's capacity.
    [priority] (higher = more important, matching
    {!Egress_queue.queue_config.priority}) feeds the TDT alpha
    derivation. Raises [Invalid_argument] on a duplicate name or
    negative quota. *)

val admit : cls -> bool
(** May this class claim one more unit right now? On [true] the unit
    is claimed (holdings and pool usage increment) and accounted; on
    [false] the rejection is counted and nothing changes. *)

val release : cls -> unit
(** Return one previously-admitted unit to the pool. Raises
    [Invalid_argument] if the class holds nothing. *)

val note_delay : cls -> float -> unit
(** Feed one observed queueing delay (seconds) into the class's EWMA.
    Under [Tdt] this re-derives the class's alpha; under the other
    policies it only updates the statistic. *)

val kind_of : t -> kind
val capacity : t -> int
val used : t -> int
val free : t -> int

val len : cls -> int
(** Units the class currently holds. *)

val threshold : cls -> int
(** The class's current admission limit in units: its quota under
    [Static], the whole capacity under [Sharing], and
    [floor (alpha * free)] under [Dt]/[Tdt] (a snapshot — it moves
    with pool occupancy). *)

val alpha : cls -> float
(** Current alpha ([infinity] under [Sharing], [quota/free]-free 0
    semantics do not apply: [Static] reports 0). *)

(** Per-class occupancy/threshold/shed figures for one finished run,
    in registration order. *)
type class_stat = {
  class_name : string;
  quota : int;
  priority : int;
  occupancy_mean : float;  (** time-weighted mean holdings (units) *)
  occupancy_max : int;  (** peak holdings *)
  threshold : int;  (** admission limit at measurement time *)
  alpha : float;  (** alpha at measurement time *)
  admitted : int;  (** units admitted over the run *)
  rejected : int;  (** admission attempts refused by the policy *)
}

val stats : t -> until:float -> class_stat list
(** Snapshot of every class at [until] (virtual seconds), registration
    order. *)

val pp_class_stat : Format.formatter -> class_stat -> unit
