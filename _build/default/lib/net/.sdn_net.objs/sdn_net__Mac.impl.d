lib/net/mac.ml: Bytes Format Int64 List Printf String
