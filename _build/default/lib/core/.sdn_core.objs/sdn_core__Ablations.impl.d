lib/core/ablations.ml: Config Experiment Float List Printf Report Scenario Sdn_controller Sdn_measure Sdn_openflow Sdn_sim Sdn_switch Sdn_traffic
