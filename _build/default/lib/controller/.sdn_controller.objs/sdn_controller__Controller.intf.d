lib/controller/controller.mli: App Bytes Costs Cpu Engine Link Rng Sdn_openflow Sdn_sim
