(** The single-node M/M/1 switch model with controller feedback.

    Mahmood et al.'s model of one OpenFlow switch attached to one
    controller ("On The Modeling of OpenFlow-based SDNs: The Single
    Node Case"): external packets arrive at the switch at rate
    [lambda]; a fraction [q] (the packet-in probability) has no
    matching rule and is forwarded to the controller, whose reply
    re-enters the switch queue. The switch therefore serves
    [(1 + q) lambda] and the controller [q lambda]; both are
    quasi-reversible exponential stations, so each is an independent
    M/M/c queue and the mean packet sojourn decomposes as

    [T = (1 + q) W_s + q (W_c + loop_delay)]

    where [loop_delay] is the fixed (non-queueing) part of the
    control-channel round trip. *)

type params = {
  lambda : float;  (** external packet arrival rate, 1/s *)
  packet_in_prob : float;  (** q, the table-miss fraction in [0, 1] *)
  switch_service : float;  (** mean switch service per visit, seconds *)
  switch_servers : int;
  controller_service : float;  (** mean controller service, seconds *)
  controller_servers : int;
  loop_delay : float;
      (** fixed control-channel round-trip component: serialization
          plus twice the propagation delay, seconds *)
}

type t = {
  switch : Mm1.t;  (** the switch station, loaded at [(1 + q) lambda] *)
  controller : Mm1.t;  (** the controller station, loaded at [q lambda] *)
  packet_in_rtt : float;
      (** mean controller round trip seen by a missing packet:
          [loop_delay + W_c] *)
  sojourn : float;
      (** mean time an external packet spends in the system:
          [(1 + q) W_s + q (W_c + loop_delay)] *)
  stable : bool;
}

val eval : params -> t
(** Raises [Invalid_argument] outside the domain ([lambda < 0],
    [q] outside [0, 1], non-positive service times or server counts,
    negative loop delay). Saturation yields infinities, consistent
    with {!Mm1.mmc}. *)

val jackson_of : params -> Jackson.t
(** The same system expressed as a two-node open Jackson network via
    {!Jackson.solve_routing} (switch routes to the controller with
    probability [q / (1 + q)] per visit, the controller always back to
    the switch). The property suite pins [eval] against it: identical
    per-station rates and sojourns. Node names: ["switch"],
    ["controller"]. *)
