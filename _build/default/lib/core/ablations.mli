(** Ablation studies of the design choices DESIGN.md calls out.

    Each study prints a self-contained table. [run_all] is wired into
    the benchmark harness ([dune exec bench/main.exe -- ablations]).

    - {!buffer_sizing}: how many buffer units a given line rate needs —
      the paper's closing observation of Section IV.G ("no more than 80
      buffer units can meet the maximum sending rate", i.e. an 80 KB
      buffer suffices for a 100 Mbps interface).
    - {!miss_send_len_sweep}: the PACKET_IN truncation length trades
      control load against how much of the packet the controller can
      inspect (the paper notes security applications may want the whole
      packet).
    - {!release_strategy}: the paper's FLOW_MOD + PACKET_OUT response
      pair vs releasing the buffer inside the FLOW_MOD.
    - {!resend_timeout_under_loss}: the flow-granularity re-request
      timeout (Algorithm 1 lines 12-13) is the mechanism's safety net;
      this study injects control-channel loss and measures delivery
      and duplicate requests across timeout settings.
    - {!rule_install_latency}: how datapath rule-programming latency
      reshapes the Exp-B comparison (the regime discussed as deviation
      D4 in EXPERIMENTS.md). *)

val buffer_sizing : ?rates:float list -> ?sizes:int list -> ?seed:int -> unit -> unit

val miss_send_len_sweep : ?lengths:int list -> ?rate:float -> ?seed:int -> unit -> unit

val release_strategy : ?rate:float -> ?seed:int -> unit -> unit

val resend_timeout_under_loss :
  ?loss_rates:float list -> ?timeouts:float list -> ?seed:int -> unit -> unit

val rule_install_latency :
  ?latencies:float list -> ?rate:float -> ?seed:int -> unit -> unit

val proactive_baseline : ?rate:float -> ?seed:int -> unit -> unit
(** Reactive flow setup (the paper's subject) against proactive rule
    provisioning: pre-installing every rule removes the request traffic
    entirely, at the cost of knowing and holding all flows up front —
    the trade-off that motivates reducing the reactive path's cost
    rather than abandoning it. *)

val run_all : unit -> unit
