open Sdn_sim
open Sdn_net

type injection = {
  time : float;
  in_port : int;
  flow_id : int;
  seq : int;
  frame : Bytes.t;
}

let spacing ~rate_mbps ~frame_size =
  if rate_mbps <= 0.0 then invalid_arg "Patterns.spacing: rate must be positive";
  Units.bytes_to_bits frame_size /. Units.mbps_to_bps rate_mbps

let udp_frame addressing ~flow_id ~seq ~flow_packets ~frame_size =
  let pkt =
    Packet.udp_frame_of_size ~src_mac:addressing.Addressing.src_mac
      ~dst_mac:addressing.Addressing.dst_mac
      ~src_ip:(Addressing.src_ip addressing ~flow_id)
      ~dst_ip:addressing.Addressing.dst_ip
      ~src_port:(Addressing.src_port addressing ~flow_id)
      ~dst_port:addressing.Addressing.dst_port ~frame_size
      ~payload_fill:(fun payload ->
        Tag.write { Tag.flow_id; seq; flow_packets } payload)
  in
  Packet.encode pkt

let jittered_gap rng ~gap ~jitter =
  if jitter <= 0.0 then gap
  else gap *. (1.0 +. Rng.uniform rng ~lo:(-.jitter) ~hi:jitter)

let exp_a ~rng ?(addressing = Addressing.default) ?(start = 0.0) ?(jitter = 0.02)
    ~n_flows ~rate_mbps ~frame_size () =
  if n_flows <= 0 then invalid_arg "Patterns.exp_a: n_flows";
  let gap = spacing ~rate_mbps ~frame_size in
  let time = ref start in
  List.init n_flows (fun flow_id ->
      let inj =
        {
          time = !time;
          in_port = 1;
          flow_id;
          seq = 0;
          frame = udp_frame addressing ~flow_id ~seq:0 ~flow_packets:1 ~frame_size;
        }
      in
      time := !time +. jittered_gap rng ~gap ~jitter;
      inj)

let exp_b ~rng ?(addressing = Addressing.default) ?(start = 0.0) ?(jitter = 0.02)
    ~n_flows ~packets_per_flow ~concurrent ~rate_mbps ~frame_size () =
  if n_flows <= 0 || packets_per_flow <= 0 || concurrent <= 0 then
    invalid_arg "Patterns.exp_b: counts must be positive";
  if n_flows mod concurrent <> 0 then
    invalid_arg "Patterns.exp_b: n_flows must be a multiple of concurrent";
  let gap = spacing ~rate_mbps ~frame_size in
  let time = ref start in
  let batches = n_flows / concurrent in
  let acc = ref [] in
  for batch = 0 to batches - 1 do
    for seq = 0 to packets_per_flow - 1 do
      for member = 0 to concurrent - 1 do
        let flow_id = (batch * concurrent) + member in
        let inj =
          {
            time = !time;
            in_port = 1;
            flow_id;
            seq;
            frame =
              udp_frame addressing ~flow_id ~seq
                ~flow_packets:packets_per_flow ~frame_size;
          }
        in
        acc := inj :: !acc;
        time := !time +. jittered_gap rng ~gap ~jitter
      done
    done
  done;
  List.rev !acc

let udp_burst ~rng ?(addressing = Addressing.default) ?(start = 0.0) ~n_packets
    ~rate_mbps ~frame_size () =
  if n_packets <= 0 then invalid_arg "Patterns.udp_burst: n_packets";
  let gap = spacing ~rate_mbps ~frame_size in
  let time = ref start in
  List.init n_packets (fun seq ->
      let inj =
        {
          time = !time;
          in_port = 1;
          flow_id = 0;
          seq;
          frame =
            udp_frame addressing ~flow_id:0 ~seq ~flow_packets:n_packets
              ~frame_size;
        }
      in
      time := !time +. jittered_gap rng ~gap ~jitter:0.01;
      inj)

let poisson_flows ~rng ?(addressing = Addressing.default) ?(start = 0.0)
    ~n_flows ~rate_mbps ~frame_size () =
  if n_flows <= 0 then invalid_arg "Patterns.poisson_flows: n_flows";
  let mean_gap = spacing ~rate_mbps ~frame_size in
  let time = ref start in
  List.init n_flows (fun flow_id ->
      let inj =
        {
          time = !time;
          in_port = 1;
          flow_id;
          seq = 0;
          frame = udp_frame addressing ~flow_id ~seq:0 ~flow_packets:1 ~frame_size;
        }
      in
      time := !time +. Rng.exponential rng ~mean:mean_gap;
      inj)

let poisson_mix ~rng ?(addressing = Addressing.default) ?(start = 0.0)
    ?(prime_lead = 0.05) ~n_packets ~miss_fraction ~rate_mbps ~frame_size () =
  if n_packets <= 0 then invalid_arg "Patterns.poisson_mix: n_packets";
  if
    (not (Float.is_finite miss_fraction))
    || miss_fraction < 0.0 || miss_fraction > 1.0
  then invalid_arg "Patterns.poisson_mix: miss_fraction must lie in [0, 1]";
  let mean_gap = spacing ~rate_mbps ~frame_size in
  (* Sample the whole arrival sequence first: the elephant flow's
     packet count must be known before its frames are tagged. *)
  let time = ref (start +. prime_lead) in
  let events =
    List.init n_packets (fun _ ->
        let t = !time in
        let miss = Rng.uniform rng ~lo:0.0 ~hi:1.0 < miss_fraction in
        time := !time +. Rng.exponential rng ~mean:mean_gap;
        (t, miss))
  in
  let elephant_packets =
    1 + List.length (List.filter (fun (_, miss) -> not miss) events)
  in
  let elephant ~time ~seq =
    {
      time;
      in_port = 1;
      flow_id = 0;
      seq;
      frame =
        udp_frame addressing ~flow_id:0 ~seq ~flow_packets:elephant_packets
          ~frame_size;
    }
  in
  let next_flow = ref 1 in
  let elephant_seq = ref 1 in
  (* The primer installs flow 0's rule before the main phase begins,
     so its later packets are hits. *)
  elephant ~time:start ~seq:0
  :: List.map
       (fun (t, miss) ->
         if miss then begin
           let flow_id = !next_flow in
           incr next_flow;
           {
             time = t;
             in_port = 1;
             flow_id;
             seq = 0;
             frame =
               udp_frame addressing ~flow_id ~seq:0 ~flow_packets:1 ~frame_size;
           }
         end
         else begin
           let seq = !elephant_seq in
           incr elephant_seq;
           elephant ~time:t ~seq
         end)
       events

(* ---- TCP scenarios ---- *)

let tcp_frame addressing ~flow_id ~seq_no ~ack_no ~flags ~payload_len ~reverse =
  let payload = Bytes.make payload_len '\000' in
  if payload_len >= Tag.size then
    Tag.write { Tag.flow_id; seq = Int32.to_int seq_no; flow_packets = 0 } payload;
  let src_ip = Addressing.src_ip addressing ~flow_id in
  let src_port = Addressing.src_port addressing ~flow_id in
  let a = addressing in
  let pkt =
    if reverse then
      Packet.tcp ~src_mac:a.Addressing.dst_mac ~dst_mac:a.Addressing.src_mac
        ~src_ip:a.Addressing.dst_ip ~dst_ip:src_ip
        ~src_port:a.Addressing.dst_port ~dst_port:src_port ~seq:seq_no
        ~ack_seq:ack_no ~flags ~payload ()
    else
      Packet.tcp ~src_mac:a.Addressing.src_mac ~dst_mac:a.Addressing.dst_mac
        ~src_ip ~dst_ip:a.Addressing.dst_ip ~src_port
        ~dst_port:a.Addressing.dst_port ~seq:seq_no ~ack_seq:ack_no ~flags
        ~payload ()
  in
  Packet.encode pkt

let tcp_handshake ~addressing ~flow_id ~start ~gap =
  [
    {
      time = start;
      in_port = 1;
      flow_id;
      seq = 0;
      frame =
        tcp_frame addressing ~flow_id ~seq_no:0l ~ack_no:0l ~flags:Tcp.flags_syn
          ~payload_len:0 ~reverse:false;
    };
    {
      time = start +. gap;
      in_port = 2;
      flow_id;
      seq = 1;
      frame =
        tcp_frame addressing ~flow_id ~seq_no:0l ~ack_no:1l
          ~flags:Tcp.flags_syn_ack ~payload_len:0 ~reverse:true;
    };
    {
      time = start +. (2.0 *. gap);
      in_port = 1;
      flow_id;
      seq = 2;
      frame =
        tcp_frame addressing ~flow_id ~seq_no:1l ~ack_no:1l ~flags:Tcp.flags_ack
          ~payload_len:0 ~reverse:false;
    };
  ]

let tcp_data_burst ~rng ~addressing ~flow_id ~start ~gap ~jitter ~n ~first_seq
    ~payload_len =
  let time = ref start in
  List.init n (fun i ->
      let seq_no = Int32.of_int (1 + (i * payload_len)) in
      let inj =
        {
          time = !time;
          in_port = 1;
          flow_id;
          seq = first_seq + i;
          frame =
            tcp_frame addressing ~flow_id ~seq_no ~ack_no:1l
              ~flags:Tcp.flags_psh_ack ~payload_len ~reverse:false;
        }
      in
      time := !time +. jittered_gap rng ~gap ~jitter;
      inj)

let data_payload_len ~frame_size =
  max Tag.size (frame_size - Ethernet.size - Ipv4.size - Tcp.size)

let tcp_handshake_then_data ~rng ?(addressing = Addressing.default)
    ?(start = 0.0) ~flow_id ~data_packets ~rate_mbps ~frame_size () =
  let gap = spacing ~rate_mbps ~frame_size in
  let handshake = tcp_handshake ~addressing ~flow_id ~start ~gap in
  let data =
    tcp_data_burst ~rng ~addressing ~flow_id
      ~start:(start +. (3.0 *. gap))
      ~gap ~jitter:0.01 ~n:data_packets ~first_seq:3
      ~payload_len:(data_payload_len ~frame_size)
  in
  handshake @ data

let tcp_idle_resume ~rng ?(addressing = Addressing.default) ?(start = 0.0)
    ~flow_id ~first_burst ~idle_gap ~second_burst ~rate_mbps ~frame_size () =
  let gap = spacing ~rate_mbps ~frame_size in
  let payload_len = data_payload_len ~frame_size in
  let handshake = tcp_handshake ~addressing ~flow_id ~start ~gap in
  let burst1 =
    tcp_data_burst ~rng ~addressing ~flow_id
      ~start:(start +. (3.0 *. gap))
      ~gap ~jitter:0.01 ~n:first_burst ~first_seq:3 ~payload_len
  in
  let burst1_end =
    match List.rev burst1 with [] -> start +. (3.0 *. gap) | last :: _ -> last.time
  in
  let burst2 =
    tcp_data_burst ~rng ~addressing ~flow_id
      ~start:(burst1_end +. idle_gap)
      ~gap ~jitter:0.01 ~n:second_burst
      ~first_seq:(3 + first_burst)
      ~payload_len
  in
  handshake @ burst1 @ burst2

let total_bytes injections =
  List.fold_left (fun acc inj -> acc + Bytes.length inj.frame) 0 injections

let duration = function
  | [] -> 0.0
  | first :: _ as injections ->
      let last = List.fold_left (fun _ inj -> inj) first injections in
      last.time -. first.time
