(* Tests for the link model: serialization, FIFO, propagation,
   counters, capture. *)

open Sdn_sim

let make ?(bandwidth = 100e6) ?(propagation = 0.0) ?capture engine received =
  Link.create engine ~name:"test" ~bandwidth_bps:bandwidth
    ~propagation_s:propagation ?capture
    ~receiver:(fun payload ->
      received := (Engine.now engine, payload) :: !received)
    ()

let test_serialization_delay () =
  let engine = Engine.create () in
  let received = ref [] in
  let link = make ~bandwidth:100e6 ~propagation:0.0 engine received in
  (* 1000 bytes at 100 Mbps = 80 us. *)
  Link.send link ~size:1000 "a";
  Engine.run engine;
  match !received with
  | [ (t, "a") ] -> Alcotest.(check (float 1e-12)) "tx time" 80e-6 t
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_propagation_added () =
  let engine = Engine.create () in
  let received = ref [] in
  let link = make ~bandwidth:100e6 ~propagation:50e-6 engine received in
  Link.send link ~size:1000 "a";
  Engine.run engine;
  match !received with
  | [ (t, _) ] -> Alcotest.(check (float 1e-12)) "tx + prop" 130e-6 t
  | _ -> Alcotest.fail "expected one delivery"

let test_fifo_back_to_back () =
  let engine = Engine.create () in
  let received = ref [] in
  let link = make ~bandwidth:100e6 engine received in
  Link.send link ~size:1000 "first";
  Link.send link ~size:1000 "second";
  Engine.run engine;
  match List.rev !received with
  | [ (t1, "first"); (t2, "second") ] ->
      Alcotest.(check (float 1e-12)) "first at 80us" 80e-6 t1;
      Alcotest.(check (float 1e-12)) "second serialized after first" 160e-6 t2
  | _ -> Alcotest.fail "expected two ordered deliveries"

let test_idle_gap_no_queueing () =
  let engine = Engine.create () in
  let received = ref [] in
  let link = make ~bandwidth:100e6 engine received in
  Link.send link ~size:1000 "a";
  ignore
    (Engine.schedule_at engine 1.0 (fun () -> Link.send link ~size:1000 "b"));
  Engine.run engine;
  match List.rev !received with
  | [ _; (t2, "b") ] ->
      Alcotest.(check (float 1e-9)) "no residual queueing" (1.0 +. 80e-6) t2
  | _ -> Alcotest.fail "expected two deliveries"

let test_counters () =
  let engine = Engine.create () in
  let received = ref [] in
  let link = make engine received in
  Link.send link ~size:100 "x";
  Link.send link ~size:200 "y";
  Alcotest.(check int) "bytes" 300 (Link.bytes_sent link);
  Alcotest.(check int) "messages" 2 (Link.messages_sent link);
  Link.reset_counters link;
  Alcotest.(check int) "reset" 0 (Link.bytes_sent link)

let test_capture_sees_send_time () =
  let engine = Engine.create () in
  let received = ref [] in
  let captured = ref [] in
  let capture ~time ~size payload = captured := (time, size, payload) :: !captured in
  let link = make ~capture engine received in
  Link.send link ~size:1000 "a";
  Link.send link ~size:1000 "b";
  Engine.run engine;
  match List.rev !captured with
  | [ (t1, 1000, "a"); (t2, 1000, "b") ] ->
      Alcotest.(check (float 1e-12)) "first starts immediately" 0.0 t1;
      Alcotest.(check (float 1e-12)) "second starts when wire frees" 80e-6 t2
  | _ -> Alcotest.fail "expected two captures"

let test_backlog_tracking () =
  let engine = Engine.create () in
  let received = ref [] in
  let link = make engine received in
  Link.send link ~size:500 "a";
  Link.send link ~size:500 "b";
  Alcotest.(check int) "backlog while in flight" 1000 (Link.backlog_bytes link);
  Engine.run engine;
  Alcotest.(check int) "backlog drains" 0 (Link.backlog_bytes link)

let test_utilization () =
  let engine = Engine.create () in
  let received = ref [] in
  let link = make ~bandwidth:100e6 engine received in
  (* 12500 bytes = 1 ms of wire time. *)
  Link.send link ~size:12500 "a";
  Engine.run engine;
  let u = Link.utilization link ~since:0.0 ~until_:2e-3 in
  Alcotest.(check (float 1e-9)) "50% busy" 0.5 u

let test_rejects_bad_args () =
  let engine = Engine.create () in
  Alcotest.(check bool) "zero bandwidth" true
    (try
       ignore
         (Link.create engine ~name:"bad" ~bandwidth_bps:0.0 ~propagation_s:0.0
            ~receiver:(fun (_ : unit) -> ())
            ());
       false
     with Invalid_argument _ -> true);
  let received = ref [] in
  let link = make engine received in
  Alcotest.(check bool) "negative size" true
    (try
       Link.send link ~size:(-1) "x";
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "serialization delay" `Quick test_serialization_delay;
    Alcotest.test_case "propagation" `Quick test_propagation_added;
    Alcotest.test_case "FIFO back-to-back" `Quick test_fifo_back_to_back;
    Alcotest.test_case "idle gap resets queue" `Quick test_idle_gap_no_queueing;
    Alcotest.test_case "byte/message counters" `Quick test_counters;
    Alcotest.test_case "capture at send time" `Quick test_capture_sees_send_time;
    Alcotest.test_case "backlog tracking" `Quick test_backlog_tracking;
    Alcotest.test_case "utilization" `Quick test_utilization;
    Alcotest.test_case "argument validation" `Quick test_rejects_bad_args;
  ]
