(* Fixture: exactly one poly-compare finding. *)

let sorted l = List.sort compare l
