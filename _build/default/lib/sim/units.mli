(** Unit conversions used throughout the testbed.

    Internal conventions: time in seconds, sizes in bytes, link speeds
    in bits per second. The paper reports rates in Mbps and delays in
    milliseconds; these helpers keep the conversions in one place. *)

val mbps_to_bps : float -> float
(** Megabits per second to bits per second. *)

val bps_to_mbps : float -> float

val bytes_to_bits : int -> float

val transmission_time : bytes:int -> bandwidth_bps:float -> float
(** Serialization delay of [bytes] on a link of the given speed. *)

val ms : float -> float
(** [ms x] is [x] milliseconds expressed in seconds. *)

val us : float -> float
(** [us x] is [x] microseconds expressed in seconds. *)

val to_ms : float -> float
(** Seconds to milliseconds. *)

val to_us : float -> float
(** Seconds to microseconds. *)

val packets_per_second : rate_mbps:float -> frame_bytes:int -> float
(** Packet rate achieved by sending fixed-size frames at [rate_mbps]. *)

val pp_rate : Format.formatter -> float -> unit
(** Print a bit rate (bps) with an adaptive Kbps/Mbps/Gbps unit. *)
