open Sdn_sim
open Sdn_net

type unit_state = {
  key : Flow_key.t;
  first_miss_time : float;
  mutable frames_rev : Bytes.t list;
  mutable resend_count : int;
  mutable resend_handle : Engine.handle option;
}

type slot_state = Free | Held of unit_state | Reclaiming

type slot = { mutable state : slot_state; mutable generation : int }

type t = {
  engine : Engine.t;
  check : Sdn_check.Check.t option;
  pool_name : string;
  capacity : int;
  reclaim_lag : float;
  mutable resend_timeout : float;
  mutable resend_multiplier : float;
  mutable resend_cap : float;
  mutable resend_jitter : float;
  mutable max_resends : int;
  rng : Rng.t option;
  on_resend : buffer_id:int32 -> key:Flow_key.t -> first_frame:Bytes.t -> unit;
  slots : slot array;
  mutable free : int list;
  by_key : int Flow_key.Table.t;  (** flow -> slot index (the buffer_id map) *)
  mutable in_use : int;
  mutable packets : int;
  occupancy : Timeseries.Weighted.w;
  mutable allocations : int;
  mutable alloc_failures : int;
  mutable resends : int;
  mutable drops : int;
  mutable abandoned_flows : int;
  mutable recovered_flows : int;
  recovery_delays : Stats.t;
  mutable stale_takes : int;
  mutable frozen : bool;
  mutable freezes : int;
  mutable chains_frozen : int;
  mutable chains_resumed : int;
  mutable expired_on_resume : int;
}

type add_result = First of int32 | Appended of int32 | No_space

type take_result = Taken of Bytes.t list | Unknown_id

let id_of ~generation ~slot =
  Int32.logor
    (Int32.shift_left (Int32.of_int (generation land 0x7FFF)) 16)
    (Int32.of_int (slot land 0xFFFF))

let slot_of_id id = Int32.to_int (Int32.logand id 0xFFFFl)
let generation_of_id id = Int32.to_int (Int32.shift_right_logical id 16) land 0x7FFF

let create engine ?check ?(pool_name = "flow_pool") ~capacity ~reclaim_lag
    ~resend_timeout ?(resend_multiplier = 1.0) ?(resend_cap = infinity)
    ?(resend_jitter = 0.0) ?rng ~max_resends ~on_resend () =
  if capacity <= 0 || capacity > 0xFFFF then
    invalid_arg "Flow_buffer.create: capacity out of range";
  if resend_multiplier < 1.0 then
    invalid_arg "Flow_buffer.create: multiplier below 1";
  if resend_jitter < 0.0 || resend_jitter >= 1.0 then
    invalid_arg "Flow_buffer.create: jitter fraction out of [0, 1)";
  if resend_jitter > 0.0 && rng = None then
    invalid_arg "Flow_buffer.create: jitter needs an rng";
  {
    engine;
    check;
    pool_name;
    capacity;
    reclaim_lag;
    resend_timeout;
    resend_multiplier;
    resend_cap;
    resend_jitter;
    max_resends;
    rng;
    on_resend;
    slots = Array.init capacity (fun _ -> { state = Free; generation = 0 });
    free = List.init capacity (fun i -> i);
    by_key = Flow_key.Table.create 64;
    in_use = 0;
    packets = 0;
    occupancy =
      Timeseries.Weighted.create ~start:(Engine.now engine) ~initial:0.0 ();
    allocations = 0;
    alloc_failures = 0;
    resends = 0;
    drops = 0;
    abandoned_flows = 0;
    recovered_flows = 0;
    recovery_delays = Stats.create ();
    stale_takes = 0;
    frozen = false;
    freezes = 0;
    chains_frozen = 0;
    chains_resumed = 0;
    expired_on_resume = 0;
  }

let set_backoff t ~resend_timeout ~resend_multiplier ~resend_cap ~max_resends =
  if resend_multiplier >= 1.0 then begin
    t.resend_timeout <- resend_timeout;
    t.resend_multiplier <- resend_multiplier;
    t.resend_cap <- resend_cap;
    t.max_resends <- max_resends
  end

(* Delay before re-request number [attempt] (0-based): exponential in
   the attempt, capped, with optional multiplicative jitter so that a
   thundering herd of timed-out flows desynchronises. *)
let resend_delay t ~attempt =
  let base =
    t.resend_timeout *. (t.resend_multiplier ** float_of_int attempt)
  in
  let capped = Float.min base t.resend_cap in
  match (t.rng, t.resend_jitter) with
  | Some rng, j when j > 0.0 ->
      capped *. (1.0 +. Rng.uniform rng ~lo:(-.j) ~hi:j)
  | _ -> capped

let note_occupancy t =
  Timeseries.Weighted.update t.occupancy ~time:(Engine.now t.engine)
    ~value:(float_of_int t.in_use)

(* Report a buffer-ledger event to the invariant checker, if armed. *)
let checked t f =
  match t.check with
  | Some check -> f check ~time:(Engine.now t.engine) ~pool:t.pool_name
  | None -> ()

let release_slot t i =
  let slot = t.slots.(i) in
  slot.state <- Free;
  slot.generation <- (slot.generation + 1) land 0x7FFF;
  t.free <- i :: t.free;
  t.in_use <- t.in_use - 1;
  note_occupancy t

let drop_unit t i (u : unit_state) =
  (match u.resend_handle with Some h -> Engine.cancel h | None -> ());
  checked t
    (Sdn_check.Check.note_buffer_expire
       ~id:(id_of ~generation:t.slots.(i).generation ~slot:i));
  t.drops <- t.drops + List.length u.frames_rev;
  t.abandoned_flows <- t.abandoned_flows + 1;
  t.packets <- t.packets - List.length u.frames_rev;
  Flow_key.Table.remove t.by_key u.key;
  release_slot t i

let rec arm_resend t i (u : unit_state) ~generation =
  let handle =
    Engine.schedule t.engine ~delay:(resend_delay t ~attempt:u.resend_count)
      (fun () ->
        let slot = t.slots.(i) in
        match slot.state with
        | Held held when slot.generation = generation && held == u ->
            if u.resend_count >= t.max_resends then drop_unit t i u
            else begin
              u.resend_count <- u.resend_count + 1;
              t.resends <- t.resends + 1;
              (match List.rev u.frames_rev with
              | first :: _ ->
                  t.on_resend ~buffer_id:(id_of ~generation ~slot:i) ~key:u.key
                    ~first_frame:first
              | [] -> ());
              arm_resend t i u ~generation
            end
        | Held _ | Free | Reclaiming -> ())
  in
  u.resend_handle <- Some handle

let add t ~key ~frame =
  match Flow_key.Table.find_opt t.by_key key with
  | Some i -> (
      let slot = t.slots.(i) in
      match slot.state with
      | Held u ->
          u.frames_rev <- frame :: u.frames_rev;
          t.packets <- t.packets + 1;
          let id = id_of ~generation:slot.generation ~slot:i in
          checked t (Sdn_check.Check.note_buffer_append ~id);
          Appended id
      | Free | Reclaiming ->
          (* Unreachable: [by_key] never points at a non-held slot —
             take_all and drop_unit both remove the key from the map
             before the slot leaves Held. *)
          assert false (* lint: allow partial-exit *))
  | None -> (
      match t.free with
      | [] ->
          t.alloc_failures <- t.alloc_failures + 1;
          No_space
      | i :: rest ->
          t.free <- rest;
          let slot = t.slots.(i) in
          let u =
            {
              key;
              first_miss_time = Engine.now t.engine;
              frames_rev = [ frame ];
              resend_count = 0;
              resend_handle = None;
            }
          in
          slot.state <- Held u;
          Flow_key.Table.add t.by_key key i;
          t.in_use <- t.in_use + 1;
          t.packets <- t.packets + 1;
          t.allocations <- t.allocations + 1;
          note_occupancy t;
          (* While frozen (controller session down, fail-secure mode)
             chains are absorbed silently: no re-request timer burns
             its budget into a dead link. [resume] arms it later. *)
          if not t.frozen then arm_resend t i u ~generation:slot.generation;
          let id = id_of ~generation:slot.generation ~slot:i in
          checked t (Sdn_check.Check.note_buffer_alloc ~id);
          First id)

let take_all t id =
  let i = slot_of_id id in
  if i < 0 || i >= t.capacity then Unknown_id
  else begin
    let slot = t.slots.(i) in
    match slot.state with
    | Held u when slot.generation = generation_of_id id ->
        (match u.resend_handle with Some h -> Engine.cancel h | None -> ());
        if u.resend_count > 0 then begin
          (* The flow survived at least one unanswered request: its
             whole wait is the time-to-recovery the chaos report
             histograms. *)
          t.recovered_flows <- t.recovered_flows + 1;
          Stats.add t.recovery_delays
            (Engine.now t.engine -. u.first_miss_time)
        end;
        let frames = List.rev u.frames_rev in
        checked t
          (Sdn_check.Check.note_buffer_release ~id
             ~packets:(List.length frames));
        t.packets <- t.packets - List.length frames;
        Flow_key.Table.remove t.by_key u.key;
        slot.state <- Reclaiming;
        ignore
          (Engine.schedule t.engine ~delay:t.reclaim_lag (fun () ->
               match slot.state with
               | Reclaiming -> release_slot t i
               | Free | Held _ -> ()));
        Taken frames
    | Held _ | Free | Reclaiming ->
        t.stale_takes <- t.stale_takes + 1;
        Unknown_id
  end

let freeze t =
  if not t.frozen then begin
    t.frozen <- true;
    t.freezes <- t.freezes + 1;
    Array.iter
      (fun slot ->
        match slot.state with
        | Held u ->
            (match u.resend_handle with
            | Some h -> Engine.cancel h
            | None -> ());
            u.resend_handle <- None;
            t.chains_frozen <- t.chains_frozen + 1
        | Free | Reclaiming -> ())
      t.slots
  end

let resume t =
  if t.frozen then begin
    t.frozen <- false;
    (* Index order keeps the post-outage re-request schedule
       deterministic. Chains that had already spent their whole resend
       budget before the outage expire here; the rest re-enter the
       normal backoff machinery at their next attempt number. *)
    Array.iteri
      (fun i slot ->
        match slot.state with
        | Held u ->
            if u.resend_count >= t.max_resends then begin
              t.expired_on_resume <- t.expired_on_resume + 1;
              drop_unit t i u
            end
            else begin
              t.chains_resumed <- t.chains_resumed + 1;
              arm_resend t i u ~generation:slot.generation
            end
        | Free | Reclaiming -> ())
      t.slots
  end

let wipe t =
  let chains = ref 0 and packets = ref 0 in
  (* Index order: the expiry notes reach the checker in a fixed
     sequence, so wiped runs stay byte-reproducible. *)
  Array.iteri
    (fun i slot ->
      match slot.state with
      | Held u ->
          (match u.resend_handle with Some h -> Engine.cancel h | None -> ());
          checked t
            (Sdn_check.Check.note_buffer_expire
               ~id:(id_of ~generation:slot.generation ~slot:i));
          let n = List.length u.frames_rev in
          t.drops <- t.drops + n;
          t.packets <- t.packets - n;
          Flow_key.Table.remove t.by_key u.key;
          release_slot t i;
          incr chains;
          packets := !packets + n
      | Reclaiming ->
          (* The deferred release would fire into a dead pool; reclaim
             now. The pending callback sees Free and stands down. *)
          release_slot t i
      | Free -> ())
    t.slots;
  t.frozen <- false;
  (!chains, !packets)

let has_chain t ~key = Flow_key.Table.mem t.by_key key

let is_frozen t = t.frozen
let freezes t = t.freezes
let chains_frozen t = t.chains_frozen
let chains_resumed t = t.chains_resumed
let expired_on_resume t = t.expired_on_resume

let capacity t = t.capacity
let units_in_use t = t.in_use
let packets_buffered t = t.packets
let flows_buffered t = Flow_key.Table.length t.by_key
let mean_units_in_use t ~until = Timeseries.Weighted.mean t.occupancy ~until
let max_units_in_use t = int_of_float (Timeseries.Weighted.max_value t.occupancy)
let allocations t = t.allocations
let alloc_failures t = t.alloc_failures
let resends t = t.resends
let drops t = t.drops
let abandoned_flows t = t.abandoned_flows
let recovered_flows t = t.recovered_flows
let recovery_delays t = t.recovery_delays
let stale_takes t = t.stale_takes
