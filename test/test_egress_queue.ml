(* Tests for the QoS egress scheduler (the paper's future-work
   extension): FIFO, strict priority, deficit round robin, tail drop,
   delay accounting, and the switch/controller integration. *)

open Sdn_sim
open Sdn_net
open Sdn_openflow
open Sdn_switch

let frame_of_size n = Bytes.make n 'x'

type harness = {
  engine : Engine.t;
  link : Bytes.t Link.t;
  delivered : Bytes.t list ref;
}

(* A slow link (1 Mbps) so frames queue up behind the first one. *)
let make_harness ?(bandwidth = 1e6) () =
  let engine = Engine.create () in
  let delivered = ref [] in
  let link =
    Link.create engine ~name:"wire" ~bandwidth_bps:bandwidth ~propagation_s:0.0
      ~receiver:(fun frame -> delivered := frame :: !delivered)
      ()
  in
  { engine; link; delivered }

let q ~id ~priority ~weight =
  { Egress_queue.default_queue with Egress_queue.queue_id = id; priority; weight }

let test_fifo_order () =
  let h = make_harness () in
  let eq =
    Egress_queue.create h.engine ~link:h.link ~policy:Egress_queue.Fifo
      ~queues:[ Egress_queue.default_queue ]
  in
  let frames = List.init 5 (fun i -> Bytes.make 100 (Char.chr (65 + i))) in
  List.iter (fun f -> Egress_queue.send eq ~queue_id:None f) frames;
  Engine.run h.engine;
  Alcotest.(check (list bytes)) "arrival order" frames (List.rev !(h.delivered))

let test_strict_priority_preempts_queue () =
  let h = make_harness () in
  let eq =
    Egress_queue.create h.engine ~link:h.link
      ~policy:Egress_queue.Strict_priority
      ~queues:[ q ~id:0l ~priority:0 ~weight:1; q ~id:1l ~priority:10 ~weight:1 ]
  in
  (* Fill the low-priority queue; the first frame grabs the wire. *)
  let bulk = List.init 4 (fun i -> Bytes.make 1000 (Char.chr (97 + i))) in
  List.iter (fun f -> Egress_queue.send eq ~queue_id:(Some 0l) f) bulk;
  (* A high-priority frame arrives while the wire is busy: it must be
     the NEXT frame on the wire, jumping the bulk backlog. *)
  let urgent = Bytes.make 100 '!' in
  ignore
    (Engine.schedule_at h.engine 0.001 (fun () ->
         Egress_queue.send eq ~queue_id:(Some 1l) urgent));
  Engine.run h.engine;
  match List.rev !(h.delivered) with
  | first :: second :: _ ->
      Alcotest.(check bytes) "first is the in-flight bulk frame" (List.hd bulk) first;
      Alcotest.(check bytes) "urgent jumps the backlog" urgent second
  | _ -> Alcotest.fail "expected deliveries"

let test_drr_byte_fairness () =
  let h = make_harness () in
  let eq =
    Egress_queue.create h.engine ~link:h.link
      ~policy:(Egress_queue.Drr { quantum = 500 })
      ~queues:[ q ~id:0l ~priority:0 ~weight:1; q ~id:1l ~priority:0 ~weight:3 ]
  in
  (* Keep both classes permanently backlogged with equal-size frames;
     class 1 (weight 3) should get ~3x the throughput. *)
  for _ = 1 to 40 do
    Egress_queue.send eq ~queue_id:(Some 0l) (frame_of_size 500);
    Egress_queue.send eq ~queue_id:(Some 1l) (frame_of_size 500)
  done;
  (* Run long enough for ~32 frames (16 ms at 1 Mbps / 500 B = 4 ms
     per frame... 500 B = 4 ms, so 8 s drains all; stop mid-way). *)
  Engine.run ~until:0.08 h.engine;
  let s0 = Egress_queue.sent eq ~queue_id:0l in
  let s1 = Egress_queue.sent eq ~queue_id:1l in
  Alcotest.(check bool)
    (Printf.sprintf "weight-proportional service (%d vs %d)" s0 s1)
    true
    (s1 >= 2 * s0 && s1 <= 4 * max 1 s0)

let test_drr_starvation_free () =
  let h = make_harness () in
  let eq =
    Egress_queue.create h.engine ~link:h.link
      ~policy:(Egress_queue.Drr { quantum = 500 })
      ~queues:[ q ~id:0l ~priority:0 ~weight:1; q ~id:1l ~priority:0 ~weight:100 ]
  in
  for _ = 1 to 20 do
    Egress_queue.send eq ~queue_id:(Some 0l) (frame_of_size 500);
    Egress_queue.send eq ~queue_id:(Some 1l) (frame_of_size 500)
  done;
  Engine.run ~until:0.1 h.engine;
  Alcotest.(check bool) "light class still served" true
    (Egress_queue.sent eq ~queue_id:0l > 0)

let test_tail_drop () =
  let h = make_harness () in
  let small =
    { Egress_queue.default_queue with Egress_queue.capacity = 3 }
  in
  let eq =
    Egress_queue.create h.engine ~link:h.link ~policy:Egress_queue.Fifo
      ~queues:[ small ]
  in
  (* One frame on the wire + 3 queued; the rest tail-drop. *)
  for _ = 1 to 10 do
    Egress_queue.send eq ~queue_id:None (frame_of_size 1000)
  done;
  Alcotest.(check int) "drops counted" 6 (Egress_queue.dropped eq ~queue_id:0l);
  Engine.run h.engine;
  Alcotest.(check int) "survivors delivered" 4 (List.length !(h.delivered))

(* Regression: a frame naming an unknown queue id must be typed-dropped
   and counted — never enqueued, and in particular never promoted into
   the top-priority class (the old fallback put it in classes.(0)). *)
let test_unknown_queue_misroutes () =
  let h = make_harness () in
  let eq =
    Egress_queue.create h.engine ~link:h.link ~policy:Egress_queue.Strict_priority
      ~queues:[ q ~id:7l ~priority:1 ~weight:1 ]
  in
  Egress_queue.send eq ~queue_id:(Some 99l) (frame_of_size 100);
  Engine.run h.engine;
  Alcotest.(check int) "nothing delivered" 0 (List.length !(h.delivered));
  Alcotest.(check int) "not smuggled into the top class" 0
    (Egress_queue.sent eq ~queue_id:7l);
  Alcotest.(check int) "counted as misrouted" 1 (Egress_queue.misrouted eq);
  Alcotest.(check int) "not a tail drop" 0 (Egress_queue.total_dropped eq);
  (* A frame with NO queue id keeps the historic default-queue path. *)
  Egress_queue.send eq ~queue_id:None (frame_of_size 100);
  Engine.run h.engine;
  Alcotest.(check int) "Output-action frame still delivered" 1
    (Egress_queue.sent eq ~queue_id:7l);
  Alcotest.(check int) "misroute count unchanged" 1 (Egress_queue.misrouted eq)

(* The DRR hunt gives up after max_steps rounds of crediting when a
   head frame is larger than any single visit's credit, and falls back
   to serving the first non-empty class: the scheduler must stay
   work-conserving even then. *)
let test_drr_oversized_frame_fallback () =
  let h = make_harness () in
  let eq =
    Egress_queue.create h.engine ~link:h.link
      ~policy:(Egress_queue.Drr { quantum = 100 })
      ~queues:[ q ~id:0l ~priority:0 ~weight:1; q ~id:1l ~priority:0 ~weight:1 ]
  in
  (* quantum 100, weight 1: max_steps = 2 * (16000/100 + 2) = 324
     visits credit at most 162 * 100 = 16200 per class — an oversized
     frame can still exceed one visit's credit by orders of magnitude,
     forcing the hunt to its bound. *)
  let huge = frame_of_size 64_000 in
  Egress_queue.send eq ~queue_id:(Some 0l) huge;
  Egress_queue.send eq ~queue_id:(Some 1l) (frame_of_size 200);
  Engine.run h.engine;
  Alcotest.(check int) "both frames delivered" 2 (List.length !(h.delivered));
  Alcotest.(check int) "oversized frame served via fallback" 1
    (Egress_queue.sent eq ~queue_id:0l);
  Alcotest.(check int) "backlog drained" 0 (Egress_queue.backlog eq)

let test_queue_delay_stats () =
  let h = make_harness () in
  let eq =
    Egress_queue.create h.engine ~link:h.link ~policy:Egress_queue.Fifo
      ~queues:[ Egress_queue.default_queue ]
  in
  (* 1000 B at 1 Mbps = 8 ms wire time; the second frame waits 8 ms. *)
  Egress_queue.send eq ~queue_id:None (frame_of_size 1000);
  Egress_queue.send eq ~queue_id:None (frame_of_size 1000);
  Engine.run h.engine;
  let stats = Egress_queue.queue_delay_stats eq ~queue_id:0l in
  Alcotest.(check int) "two samples" 2 (Stats.count stats);
  Alcotest.(check (float 1e-9)) "first never waited" 0.0 (Stats.min stats);
  Alcotest.(check (float 1e-6)) "second waited one frame" 8e-3 (Stats.max stats)

let test_validation () =
  let h = make_harness () in
  Alcotest.(check bool) "no queues" true
    (try
       ignore
         (Egress_queue.create h.engine ~link:h.link ~policy:Egress_queue.Fifo
            ~queues:[]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate ids" true
    (try
       ignore
         (Egress_queue.create h.engine ~link:h.link ~policy:Egress_queue.Fifo
            ~queues:[ q ~id:1l ~priority:0 ~weight:1; q ~id:1l ~priority:1 ~weight:1 ]);
       false
     with Invalid_argument _ -> true)

(* ---- Switch integration: Enqueue actions route into classes ---- *)

let test_switch_enqueue_action_classifies () =
  let engine = Engine.create () in
  let costs =
    { Costs.default with Costs.service_noise_sigma = 0.0; flow_mod_apply_latency = 1e-6 }
  in
  let switch =
    Switch.create engine ~config:Switch.default_config ~costs ~rng:(Rng.of_int 1) ()
  in
  let delivered = ref 0 in
  let out_link =
    Link.create engine ~name:"out" ~bandwidth_bps:1e6 ~propagation_s:0.0
      ~receiver:(fun (_ : Bytes.t) -> incr delivered)
      ()
  in
  let ctrl =
    Link.create engine ~name:"ctrl" ~bandwidth_bps:1e9 ~propagation_s:0.0
      ~receiver:(fun (_ : Bytes.t) -> ())
      ()
  in
  Switch.set_port switch ~port:2 out_link;
  Switch.set_controller_link switch ctrl;
  Switch.set_port_scheduler switch ~port:2 ~policy:Egress_queue.Strict_priority
    ~queues:[ q ~id:0l ~priority:0 ~weight:1; q ~id:1l ~priority:5 ~weight:1 ];
  (* Install a rule whose action enqueues into class 1. *)
  let mac1 = Mac.of_octets 2 0 0 0 0 1 and mac2 = Mac.of_octets 2 0 0 0 0 2 in
  let pkt =
    Packet.udp_frame_of_size ~src_mac:mac1 ~dst_mac:mac2
      ~src_ip:(Ip.make 10 0 0 1) ~dst_ip:(Ip.make 10 0 0 2) ~src_port:5
      ~dst_port:9 ~frame_size:400 ~payload_fill:(fun _ -> ())
  in
  let fm =
    Of_flow_mod.add
      ~match_:(Of_match.of_flow_key (Option.get (Packet.flow_key pkt)))
      ~actions:[ Of_action.Enqueue { port = 2; queue_id = 1l } ]
      ()
  in
  Switch.handle_of_message switch (Of_codec.encode ~xid:1l (Of_codec.Flow_mod fm));
  Engine.run ~until:0.01 engine;
  Switch.handle_frame switch ~in_port:1 (Packet.encode pkt);
  Engine.run ~until:0.1 engine;
  Alcotest.(check int) "delivered" 1 !delivered;
  let scheduler = Option.get (Switch.port_scheduler switch ~port:2) in
  Alcotest.(check int) "went through class 1" 1
    (Egress_queue.sent scheduler ~queue_id:1l);
  Alcotest.(check int) "not class 0" 0 (Egress_queue.sent scheduler ~queue_id:0l)

let prop_work_conserving =
  QCheck.Test.make ~name:"scheduler is work-conserving and lossless under capacity"
    ~count:60
    (QCheck.make QCheck.Gen.(list_size (int_range 1 30) (int_range 0 2)))
    (fun classes ->
      let h = make_harness ~bandwidth:1e9 () in
      let eq =
        Egress_queue.create h.engine ~link:h.link
          ~policy:(Egress_queue.Drr { quantum = 300 })
          ~queues:
            [ q ~id:0l ~priority:0 ~weight:1; q ~id:1l ~priority:1 ~weight:2;
              q ~id:2l ~priority:2 ~weight:3 ]
      in
      List.iter
        (fun c ->
          Egress_queue.send eq ~queue_id:(Some (Int32.of_int c)) (frame_of_size 200))
        classes;
      Engine.run h.engine;
      List.length !(h.delivered) = List.length classes
      && Egress_queue.backlog eq = 0 && Egress_queue.total_dropped eq = 0)

let suite =
  [
    Alcotest.test_case "fifo order" `Quick test_fifo_order;
    Alcotest.test_case "strict priority preempts backlog" `Quick
      test_strict_priority_preempts_queue;
    Alcotest.test_case "DRR byte fairness" `Quick test_drr_byte_fairness;
    Alcotest.test_case "DRR starvation-free" `Quick test_drr_starvation_free;
    Alcotest.test_case "tail drop at capacity" `Quick test_tail_drop;
    Alcotest.test_case "unknown queue id is a typed misroute drop" `Quick
      test_unknown_queue_misroutes;
    Alcotest.test_case "DRR serves oversized frames via fallback" `Quick
      test_drr_oversized_frame_fallback;
    Alcotest.test_case "per-class delay statistics" `Quick test_queue_delay_stats;
    Alcotest.test_case "configuration validation" `Quick test_validation;
    Alcotest.test_case "switch Enqueue action classifies" `Quick
      test_switch_enqueue_action_classifies;
    QCheck_alcotest.to_alcotest prop_work_conserving;
  ]
