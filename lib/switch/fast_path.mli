(** Allocation-free switch datapath kernel: microflow hit → header
    rewrite → egress enqueue over pooled frames.

    The classic {!Switch} pipeline models the full OpenFlow control
    interaction (buffering, PACKET_IN, flow-mod) with heap-allocated
    {!Sdn_net.Packet.t} values and closure-based links — the right
    shape for protocol fidelity, the wrong one for a 10M events/s
    forwarding floor. This module is the steady-state complement: once
    a flow's rule is installed, its packets take an exact-match hit
    path that runs entirely on {!Sdn_net.Frame_pool} slot ids and
    untagged ints — open-addressed int-array microflow table, in-place
    TTL rewrite, per-port int-ring egress queues — and performs {e
    zero} minor-heap allocation per packet (enforced by the
    [fast_path/hit-minor-words] bench subject).

    The microflow key is the IPv4 5-tuple read straight from the
    pooled frame bytes ({!Sdn_net.Frame_pool.off_src_ip} etc.),
    packed into two ints. Same-key packets are indistinguishable to
    this kernel; resolution of the first packet of a flow (the miss)
    stays with the slow path, which installs the mapping with
    {!install}.

    Ownership: the caller allocs a pool slot, loads the frame, and
    calls {!process}. On a hit the kernel takes ownership (the slot id
    sits in the out-port's ring until {!dequeue}); on a miss or drop
    the caller keeps ownership and typically hands the frame to the
    slow path or releases it. *)

type t

val create :
  pool:Sdn_net.Frame_pool.t ->
  n_ports:int ->
  ?table_capacity:int ->
  ?ring_capacity:int ->
  unit ->
  t
(** A kernel forwarding over [pool] to [n_ports] egress rings.
    [table_capacity] (default 65536) is rounded up to a power of two
    and bounds installed microflows; [ring_capacity] (default 4096,
    also rounded up) bounds each port's queued slot count. Raises
    [Invalid_argument] if [n_ports <= 0]. *)

(** {2 Control plane (slow path; may allocate)} *)

val install :
  t ->
  proto:int ->
  src_ip:int ->
  dst_ip:int ->
  src_port:int ->
  dst_port:int ->
  out_port:int ->
  bool
(** Map a 5-tuple to an egress port. IPs are the unsigned-int reading
    {!Sdn_net.Frame_pool.get_u32} returns. Replaces an existing
    mapping for the same key. [false] (and no change) when the table
    is at its load limit and the key is new, or [out_port] is out of
    range. *)

val flush : t -> unit
(** Drop every installed microflow (table mutation elsewhere — mirror
    of {!Microflow.flush}). Queued frames stay queued. *)

(** {2 Data plane (hot path; never allocates)} *)

val process : t -> int -> int
(** [process t slot] classifies the pooled frame in [slot] and, on a
    microflow hit, rewrites its TTL in place and enqueues the slot on
    the out-port's ring, returning the port number. Returns [-1] on a
    table miss and [-2] when the out-port ring is full (the frame is
    dropped by the caller); in both cases slot ownership stays with
    the caller. *)

val dequeue : t -> int -> int
(** [dequeue t port] pops the next queued slot id from the port's
    egress ring, or [-1] if the ring is empty. Ownership returns to
    the caller (who transmits and releases the slot). *)

val queue_length : t -> int -> int
(** Slot count currently queued on a port's ring. *)

(** {2 Introspection} *)

val entries : t -> int
val hits : t -> int
val misses : t -> int

val drops : t -> int
(** Hits whose out-port ring was full. *)
