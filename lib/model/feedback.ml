(* Mahmood et al.'s single-node feedback model: switch at (1+q)lambda,
   controller at q lambda, both M/M/c, sojourn by visit counts. *)

type params = {
  lambda : float;
  packet_in_prob : float;
  switch_service : float;
  switch_servers : int;
  controller_service : float;
  controller_servers : int;
  loop_delay : float;
}

type t = {
  switch : Mm1.t;
  controller : Mm1.t;
  packet_in_rtt : float;
  sojourn : float;
  stable : bool;
}

let check p =
  if not (Float.is_finite p.lambda) || p.lambda < 0.0 then
    invalid_arg "Feedback.eval: lambda must be finite and >= 0";
  if
    not (Float.is_finite p.packet_in_prob)
    || p.packet_in_prob < 0.0
    || p.packet_in_prob > 1.0
  then invalid_arg "Feedback.eval: packet_in_prob must lie in [0, 1]";
  if not (Float.is_finite p.switch_service) || p.switch_service <= 0.0 then
    invalid_arg "Feedback.eval: switch service must be finite and > 0";
  if not (Float.is_finite p.controller_service) || p.controller_service <= 0.0
  then invalid_arg "Feedback.eval: controller service must be finite and > 0";
  if p.switch_servers < 1 || p.controller_servers < 1 then
    invalid_arg "Feedback.eval: server counts must be >= 1";
  if not (Float.is_finite p.loop_delay) || p.loop_delay < 0.0 then
    invalid_arg "Feedback.eval: loop delay must be finite and >= 0"

let eval p =
  check p;
  let q = p.packet_in_prob in
  let switch =
    Mm1.mmc
      ~lambda:((1.0 +. q) *. p.lambda)
      ~mu:(1.0 /. p.switch_service)
      ~servers:p.switch_servers
  in
  let controller =
    Mm1.mmc ~lambda:(q *. p.lambda)
      ~mu:(1.0 /. p.controller_service)
      ~servers:p.controller_servers
  in
  let packet_in_rtt = p.loop_delay +. controller.Mm1.w in
  let sojourn = ((1.0 +. q) *. switch.Mm1.w) +. (q *. packet_in_rtt) in
  {
    switch;
    controller;
    packet_in_rtt;
    sojourn;
    stable = switch.Mm1.rho < 1.0 && controller.Mm1.rho < 1.0;
  }

let jackson_of p =
  check p;
  let q = p.packet_in_prob in
  (* Per switch visit, a packet heads to the controller with
     probability q / (1 + q): solving the traffic equations then gives
     lambda_s = (1 + q) lambda and lambda_c = q lambda, matching the
     visit-count form above. The controller always routes back. *)
  let to_controller = q /. (1.0 +. q) in
  Jackson.solve_routing
    ~external_arrivals:[| p.lambda; 0.0 |]
    ~routing:[| [| 0.0; to_controller |]; [| 1.0; 0.0 |] |]
    ~nodes:
      [|
        {
          Jackson.name = "switch";
          service = p.switch_service;
          servers = p.switch_servers;
        };
        {
          Jackson.name = "controller";
          service = p.controller_service;
          servers = p.controller_servers;
        };
      |]
