(** IPv4 header (fixed 20-byte form; options are not generated and are
    rejected on parse to keep the datapath model honest about sizes). *)

type t = {
  tos : int;
  ident : int;
  dont_fragment : bool;
  ttl : int;
  proto : int;
  src : Ip.t;
  dst : Ip.t;
}

val size : int
(** 20 bytes. *)

val proto_icmp : int
(** 1 *)

val proto_tcp : int
(** 6 *)

val proto_udp : int
(** 17 *)

val write : t -> payload_len:int -> Bytes.t -> int -> unit
(** Serialize with [total_length = size + payload_len] and a freshly
    computed header checksum. *)

val read : Bytes.t -> int -> (t * int, string) result
(** [read buf off] parses the header, verifies the checksum and returns
    [(header, payload_len)]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
