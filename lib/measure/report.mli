(** Plain-text table and CSV rendering for experiment output. *)

val table : header:string list -> rows:string list list -> string
(** Monospace table with column widths fitted to the content. *)

val print_table : header:string list -> rows:string list list -> unit

val csv : header:string list -> rows:string list list -> string

val write_csv : path:string -> header:string list -> rows:string list list -> unit

val histogram :
  ?bins:int -> ?width:int -> ?fmt:(float -> string) -> Sdn_sim.Stats.t -> string
(** Deterministic ASCII histogram of the retained samples: equal-width
    buckets between the sample min and max, one row per bucket with a
    ['#'] bar scaled so the fullest bucket spans [width] characters.
    [fmt] renders bucket edges (default ["%g"]). Returns
    ["(no samples)"] for an empty accumulator. *)

val timeline : ?events:(float * string) list -> (float * string) list -> string
(** Render a state timeseries as ["state@t0.000s -> state@t0.123s ->
    ..."] — the session-lifecycle rows of the outage report. Returns
    ["(none)"] when both lists are empty.

    [events] (default none) merges injected crash/restart and
    reconciliation events chronologically into the row, each with a
    distinguishing marker — ["![switch crash (cold)]@t0.200s"],
    ["^[switch restart]@t0.250s"], ["~[reconciliation done
    (sw-0)]@t0.300s"] — and appends a legend. With no events the
    rendering is byte-identical to the historical plain form. *)

val fmt_ms : float -> string
(** Seconds rendered as milliseconds, 3 decimals. *)

val fmt_mbps : float -> string
val fmt_pct : float -> string
val fmt_f : ?decimals:int -> float -> string
