lib/controller/app.ml: Flow_key Packet Sdn_net
