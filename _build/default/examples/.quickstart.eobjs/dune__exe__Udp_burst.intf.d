examples/udp_burst.mli:
