(* Hierarchical timer wheel: 4 levels x 256 slots, 1 tick = [tick]
   seconds at level 0, each level covering 256x the span below it.
   The cursor is an absolute tick count; ticks below it have been
   drained into [ready], a small sorted batch holding the next due
   tick's events plus anything scheduled at-or-before the cursor
   while that batch is being consumed. Within-tick order is restored
   by sorting on [(time, seq)], which makes dispatch order identical
   to the indexed heap's regardless of tick resolution. *)

let bits = 8
let slots_per_level = 1 lsl bits
let slot_mask = slots_per_level - 1
let levels = 4

(* Ticks covered by all wheels ahead of the cursor: 2^32. Farther
   events wait in the overflow heap. *)
let wheel_span = 1 lsl (bits * levels)

type 'a t = {
  tick : float;
  time_of : 'a -> float;
  seq_of : 'a -> int;
  cancelled_of : 'a -> bool;
  (* [slots.(level).(i)] holds events in arrival order; order within a
     slot is irrelevant because draining sorts. *)
  slots : 'a list array array;
  (* Stored element count per level, cancelled included — slot-scan
     skip decisions and the exhaustion test read these. *)
  counts : int array;
  overflow : 'a Heap.t;
  mutable cursor : int;
  (* Live (non-cancelled) queued events: the [length] this wheel
     reports, kept in step by [add] / [pop] / [note_cancel]. *)
  mutable live : int;
  (* The due batch, sorted ascending; consumed from [ready_head]. *)
  mutable ready : 'a option array;
  mutable ready_head : int;
  mutable ready_len : int;
}

let ready_floor = 16

let create ?(tick = 1e-6) ?(now = 0.0) ~time ~seq ~cancelled () =
  if tick <= 0.0 then invalid_arg "Timer_wheel.create: tick must be positive";
  let cmp a b =
    let c = Float.compare (time a) (time b) in
    if c <> 0 then c else Int.compare (seq a) (seq b)
  in
  let t =
    {
      tick;
      time_of = time;
      seq_of = seq;
      cancelled_of = cancelled;
      slots = Array.init levels (fun _ -> Array.make slots_per_level []);
      counts = Array.make levels 0;
      overflow = Heap.create ~capacity:16 ~cmp ();
      cursor = 0;
      live = 0;
      ready = Array.make ready_floor None;
      ready_head = 0;
      ready_len = 0;
    }
  in
  let f = now /. tick in
  t.cursor <- (if f <= 0.0 then 0 else int_of_float f);
  t

(* Monotone time->tick mapping, clamped so boundary arithmetic
   ([cursor + wheel_span]) can never overflow. *)
let tick_of t time =
  let f = time /. t.tick in
  if f <= 0.0 then 0
  else if f >= 4.0e18 then max_int - wheel_span
  else int_of_float f

let cmp_elt t a b =
  let c = Float.compare (t.time_of a) (t.time_of b) in
  if c <> 0 then c else Int.compare (t.seq_of a) (t.seq_of b)

let in_wheels t = t.counts.(0) + t.counts.(1) + t.counts.(2) + t.counts.(3)

let length t = t.live
let is_empty t = t.live = 0
let note_cancel t = t.live <- t.live - 1

(* ---- ready batch ---- *)

let ready_grow t =
  if t.ready_len = Array.length t.ready then begin
    let bigger = Array.make (2 * Array.length t.ready) None in
    Array.blit t.ready 0 bigger 0 t.ready_len;
    t.ready <- bigger
  end

(* Append, caller guarantees ascending order (sorted drains). *)
let ready_push t v =
  ready_grow t;
  t.ready.(t.ready_len) <- Some v;
  t.ready_len <- t.ready_len + 1

(* Sorted insert for events landing at or before the cursor — the
   common case is an action scheduling at the running instant, which
   sorts last in the current batch, so scan from the back. *)
let ready_insert t v =
  ready_grow t;
  let i = ref t.ready_len in
  let scanning = ref true in
  while !scanning && !i > t.ready_head do
    match t.ready.(!i - 1) with
    | Some u when cmp_elt t u v > 0 ->
        t.ready.(!i) <- t.ready.(!i - 1);
        decr i
    | Some _ | None -> scanning := false
  done;
  t.ready.(!i) <- Some v;
  t.ready_len <- t.ready_len + 1

(* Batch fully consumed: rewind, and let go of a storm-sized array so
   one same-instant burst does not pin its high-water memory. *)
let ready_reset t =
  t.ready_head <- 0;
  t.ready_len <- 0;
  if Array.length t.ready > 64 * ready_floor then
    t.ready <- Array.make ready_floor None

(* ---- placement ---- *)

let put t level idx v =
  t.slots.(level).(idx) <- v :: t.slots.(level).(idx);
  t.counts.(level) <- t.counts.(level) + 1

let place t v =
  let tk = tick_of t (t.time_of v) in
  let delta = tk - t.cursor in
  if delta < 0 then
    (* Tick already drained: join the due batch in sorted position.
       The cursor's own tick (delta 0) is NOT drained yet and must go
       through its slot, or it would jump ahead of earlier same-tick
       events still stored there. *)
    ready_insert t v
  else if delta < slots_per_level then put t 0 (tk land slot_mask) v
  else if delta < 1 lsl (2 * bits) then put t 1 ((tk lsr bits) land slot_mask) v
  else if delta < 1 lsl (3 * bits) then
    put t 2 ((tk lsr (2 * bits)) land slot_mask) v
  else if delta < wheel_span then
    put t 3 ((tk lsr (3 * bits)) land slot_mask) v
  else Heap.push t.overflow v

let add t v =
  place t v;
  t.live <- t.live + 1

(* ---- cursor advance ---- *)

(* Pour a higher-level slot down into the finer wheels. Every element
   re-placed here has a delta below the slot's own span (the cursor
   just reached the slot's window), so it lands strictly lower — or
   in [ready] if its tick equals the cursor. Cancelled elements are
   dropped on the way ([note_cancel] already uncounted them). *)
let cascade_slot t level idx =
  match t.slots.(level).(idx) with
  | [] -> ()
  | l ->
      t.slots.(level).(idx) <- [];
      t.counts.(level) <- t.counts.(level) - List.length l;
      List.iter (fun v -> if not (t.cancelled_of v) then place t v) l

(* Pull overflow events whose tick now falls inside the wheels'
   2^32-tick window. Called whenever the cursor crosses (or jumps to)
   a multiple of [wheel_span]. *)
let drain_overflow t =
  let draining = ref true in
  while !draining do
    match Heap.peek t.overflow with
    | Some v when tick_of t (t.time_of v) - t.cursor < wheel_span -> (
        match Heap.pop t.overflow with
        | Some v -> if not (t.cancelled_of v) then place t v
        | None -> draining := false)
    | Some _ | None -> draining := false
  done

(* The cursor just reached a multiple of 256 ticks: cascade the slot
   of each level whose boundary this is, highest level first so its
   elements pour through the levels below in the same pass. *)
let cascade_boundary t =
  let c = t.cursor in
  let idx1 = (c lsr bits) land slot_mask in
  if idx1 = 0 then begin
    let idx2 = (c lsr (2 * bits)) land slot_mask in
    if idx2 = 0 then begin
      let idx3 = (c lsr (3 * bits)) land slot_mask in
      if idx3 = 0 then drain_overflow t;
      cascade_slot t 3 idx3
    end;
    cascade_slot t 2 idx2
  end;
  cascade_slot t 1 idx1

(* Drain level-0 slot [idx] (the cursor's current tick) into [ready]
   in sorted order. Every element in a level-0 slot shares one exact
   tick: a slot index repeats only 256 ticks later, and deltas that
   large are stored a level up. *)
let drain_tick t idx =
  match t.slots.(0).(idx) with
  | [] -> ()
  | l ->
      t.slots.(0).(idx) <- [];
      t.counts.(0) <- t.counts.(0) - List.length l;
      let l = List.filter (fun v -> not (t.cancelled_of v)) l in
      List.iter (ready_push t) (List.sort (cmp_elt t) l)

(* Advance the cursor until [ready] gains an element or nothing is
   stored anywhere. Empty stretches are jumped a whole level-window at
   a time when the finer levels are empty, so idle virtual time costs
   slot checks, not per-tick work. *)
let hunt t =
  let hunting = ref true in
  while !hunting && t.ready_head >= t.ready_len do
    if in_wheels t = 0 then
      match Heap.peek t.overflow with
      | None -> hunting := false
      | Some v ->
          (* Everything lives beyond the wheels: jump the cursor to
             the overflow minimum's window and pull it in. *)
          let tk = tick_of t (t.time_of v) in
          if tk - t.cursor >= wheel_span then
            t.cursor <- tk land lnot (wheel_span - 1);
          drain_overflow t
    else begin
      if t.cursor land slot_mask = 0 then cascade_boundary t;
      if t.counts.(0) > 0 then begin
        let base = t.cursor land lnot slot_mask in
        let i = ref (t.cursor land slot_mask) in
        let scanning = ref true in
        while !scanning && !i < slots_per_level do
          match t.slots.(0).(!i) with
          | [] -> incr i
          | _ :: _ -> scanning := false
        done;
        if !i < slots_per_level then begin
          t.cursor <- base + !i;
          drain_tick t !i;
          t.cursor <- t.cursor + 1
        end
        else t.cursor <- base + slots_per_level
      end
      else if t.counts.(1) > 0 then
        t.cursor <- ((t.cursor lsr bits) + 1) lsl bits
      else if t.counts.(2) > 0 then
        t.cursor <- ((t.cursor lsr (2 * bits)) + 1) lsl (2 * bits)
      else t.cursor <- ((t.cursor lsr (3 * bits)) + 1) lsl (3 * bits)
    end
  done

(* ---- dispatch ---- *)

(* Drop cancelled events from the front of the due batch. *)
let skip_cancelled t =
  let skipping = ref true in
  while !skipping && t.ready_head < t.ready_len do
    match t.ready.(t.ready_head) with
    | Some v when t.cancelled_of v ->
        t.ready.(t.ready_head) <- None;
        t.ready_head <- t.ready_head + 1
    | Some _ -> skipping := false
    | None ->
        (* Live region never holds [None]; tolerate rather than trap. *)
        t.ready_head <- t.ready_head + 1
  done

let peek t =
  let result = ref None in
  let searching = ref true in
  while !searching do
    skip_cancelled t;
    if t.ready_head < t.ready_len then begin
      result := t.ready.(t.ready_head);
      searching := false
    end
    else begin
      ready_reset t;
      if in_wheels t = 0 && Heap.is_empty t.overflow then searching := false
      else hunt t
    end
  done;
  !result

let pop t =
  match peek t with
  | None -> None
  | Some _ as r ->
      t.ready.(t.ready_head) <- None;
      t.ready_head <- t.ready_head + 1;
      t.live <- t.live - 1;
      r
