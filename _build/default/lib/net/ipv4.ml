type t = {
  tos : int;
  ident : int;
  dont_fragment : bool;
  ttl : int;
  proto : int;
  src : Ip.t;
  dst : Ip.t;
}

let size = 20

let proto_icmp = 1
let proto_tcp = 6
let proto_udp = 17

let write t ~payload_len buf off =
  if payload_len < 0 then invalid_arg "Ipv4.write: negative payload length";
  Bytes.set_uint8 buf off 0x45 (* version 4, IHL 5 *);
  Bytes.set_uint8 buf (off + 1) t.tos;
  Bytes.set_uint16_be buf (off + 2) (size + payload_len);
  Bytes.set_uint16_be buf (off + 4) t.ident;
  Bytes.set_uint16_be buf (off + 6) (if t.dont_fragment then 0x4000 else 0);
  Bytes.set_uint8 buf (off + 8) t.ttl;
  Bytes.set_uint8 buf (off + 9) t.proto;
  Bytes.set_uint16_be buf (off + 10) 0;
  Ip.write t.src buf (off + 12);
  Ip.write t.dst buf (off + 16);
  let csum = Checksum.over buf off size in
  Bytes.set_uint16_be buf (off + 10) csum

let read buf off =
  if off + size > Bytes.length buf then Error "Ipv4.read: truncated header"
  else begin
    let vihl = Bytes.get_uint8 buf off in
    if vihl lsr 4 <> 4 then Error "Ipv4.read: not IPv4"
    else if vihl land 0xF <> 5 then Error "Ipv4.read: options unsupported"
    else if not (Checksum.verify buf off size) then
      Error "Ipv4.read: bad header checksum"
    else begin
      let total_len = Bytes.get_uint16_be buf (off + 2) in
      if total_len < size then Error "Ipv4.read: bad total length"
      else
        Ok
          ( {
              tos = Bytes.get_uint8 buf (off + 1);
              ident = Bytes.get_uint16_be buf (off + 4);
              dont_fragment = Bytes.get_uint16_be buf (off + 6) land 0x4000 <> 0;
              ttl = Bytes.get_uint8 buf (off + 8);
              proto = Bytes.get_uint8 buf (off + 9);
              src = Ip.read buf (off + 12);
              dst = Ip.read buf (off + 16);
            },
            total_len - size )
    end
  end

let equal a b =
  a.tos = b.tos && a.ident = b.ident && a.dont_fragment = b.dont_fragment
  && a.ttl = b.ttl && a.proto = b.proto && Ip.equal a.src b.src
  && Ip.equal a.dst b.dst

let pp fmt t =
  Format.fprintf fmt "ipv4{%a -> %a, proto=%d, ttl=%d}" Ip.pp t.src Ip.pp t.dst
    t.proto t.ttl
