(* Tests for the hierarchical timer wheel engine backend.

   The wheel's contract is behavioral equivalence with the default
   heap backend: identical dispatch order, identical clock behavior,
   identical pending/processed accounting. The deterministic cases
   mirror the sharpest heap-backend tests in Test_engine; the
   property test drives both backends through the same randomized
   schedule/cancel/step scripts and requires identical traces. *)

open Sdn_sim

let wheel () = Engine.create ~queue:`Wheel ()

let test_runs_in_time_order () =
  let engine = wheel () in
  let order = ref [] in
  ignore (Engine.schedule_at engine 3.0 (fun () -> order := 3 :: !order));
  ignore (Engine.schedule_at engine 1.0 (fun () -> order := 1 :: !order));
  ignore (Engine.schedule_at engine 2.0 (fun () -> order := 2 :: !order));
  Engine.run engine;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !order)

let test_fifo_tie_break () =
  let engine = wheel () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule_at engine 1.0 (fun () -> order := i :: !order))
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "insertion order at equal time" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

(* Sub-tick spacing: events closer together than the 1 µs level-0
   resolution share a slot, and the sorted drain must still dispatch
   them in exact time order. *)
let test_sub_tick_ordering () =
  let engine = wheel () in
  let order = ref [] in
  ignore (Engine.schedule_at engine 1.0000007 (fun () -> order := 3 :: !order));
  ignore (Engine.schedule_at engine 1.0000001 (fun () -> order := 1 :: !order));
  ignore (Engine.schedule_at engine 1.0000004 (fun () -> order := 2 :: !order));
  Engine.run engine;
  Alcotest.(check (list int)) "sub-tick times dispatch in time order"
    [ 1; 2; 3 ] (List.rev !order)

(* Deltas spanning every wheel level plus the overflow heap: 1 tick,
   one slot rotation, levels 1..3, and beyond the 2^32-tick horizon
   (~4295 s at 1 µs). All must come back in time order. *)
let test_cross_level_ordering () =
  let engine = wheel () in
  let times =
    [ 1e-6; 2.55e-4; 6.5e-2; 1.67e1; 4.2e3; 6.0e3; 1.0e5 ]
  in
  let order = ref [] in
  List.iteri
    (fun i time ->
      ignore (Engine.schedule_at engine time (fun () -> order := i :: !order)))
    (List.rev times);
  Engine.run engine;
  Alcotest.(check (list int)) "levels and overflow dispatch in time order"
    [ 6; 5; 4; 3; 2; 1; 0 ] (List.rev !order);
  Alcotest.(check (float 1e-9)) "clock at last event" 1.0e5 (Engine.now engine)

(* Mirror of the heap backend's [test_cancel_removes_from_queue]:
   schedule 10k timers, cancel every one, and the wheel must report
   zero pending and fire nothing. The wheel cancels lazily, so this
   exercises [note_cancel] accounting rather than physical removal. *)
let test_cancel_10k () =
  let engine = wheel () in
  let fired = ref 0 in
  let handles =
    List.init 10_000 (fun i ->
        Engine.schedule_at engine
          (1.0 +. (float_of_int i *. 1e-5))
          (fun () -> incr fired))
  in
  Alcotest.(check int) "all pending" 10_000 (Engine.pending engine);
  List.iter Engine.cancel handles;
  Alcotest.(check int) "none pending after cancel" 0 (Engine.pending engine);
  Engine.run engine;
  Alcotest.(check int) "nothing fired" 0 !fired;
  Alcotest.(check int) "nothing processed" 0 (Engine.processed engine)

let test_cancel_idempotent () =
  let engine = wheel () in
  let fired = ref false in
  let h = Engine.schedule_at engine 1.0 (fun () -> fired := true) in
  Engine.cancel h;
  Engine.cancel h;
  Alcotest.(check int) "pending counted once" 0 (Engine.pending engine);
  Engine.run engine;
  Alcotest.(check bool) "did not fire" false !fired

let test_run_until () =
  let engine = wheel () in
  let fired = ref [] in
  List.iter
    (fun t -> ignore (Engine.schedule_at engine t (fun () -> fired := t :: !fired)))
    [ 0.5; 1.5; 2.5 ];
  Engine.run ~until:2.0 engine;
  Alcotest.(check (list (float 1e-12))) "only events up to limit" [ 0.5; 1.5 ]
    (List.rev !fired);
  Alcotest.(check (float 1e-12)) "clock parked at limit" 2.0 (Engine.now engine);
  Alcotest.(check int) "later event still queued" 1 (Engine.pending engine);
  (* The 2.5 event's tick was hunted past while peeking; an event
     scheduled between the clock and that tick must still fire first. *)
  ignore (Engine.schedule_at engine 2.25 (fun () -> fired := 2.25 :: !fired));
  Engine.run engine;
  Alcotest.(check (list (float 1e-12))) "late add dispatches in order"
    [ 0.5; 1.5; 2.25; 2.5 ] (List.rev !fired)

let test_step_batch_includes_spawned_same_time () =
  let engine = wheel () in
  let order = ref [] in
  ignore
    (Engine.schedule_at engine 1.0 (fun () ->
         order := "first" :: !order;
         ignore
           (Engine.schedule_at engine 1.0 (fun () ->
                order := "spawned" :: !order))));
  ignore (Engine.schedule_at engine 1.0 (fun () -> order := "second" :: !order));
  let n = Engine.step_batch engine in
  Alcotest.(check int) "batch size" 3 n;
  Alcotest.(check (list string)) "spawned event joins the batch in seq order"
    [ "first"; "second"; "spawned" ] (List.rev !order)

let test_cancel_sibling_during_batch () =
  let engine = wheel () in
  let fired = ref [] in
  let sibling = ref None in
  ignore
    (Engine.schedule_at engine 1.0 (fun () ->
         fired := "killer" :: !fired;
         Option.iter Engine.cancel !sibling));
  sibling :=
    Some (Engine.schedule_at engine 1.0 (fun () -> fired := "victim" :: !fired));
  ignore (Engine.schedule_at engine 1.0 (fun () -> fired := "survivor" :: !fired));
  ignore (Engine.step_batch engine);
  Alcotest.(check (list string)) "victim skipped" [ "killer"; "survivor" ]
    (List.rev !fired);
  Alcotest.(check int) "no pending left" 0 (Engine.pending engine)

let test_chained_events () =
  let engine = wheel () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then
      ignore
        (Engine.schedule engine ~delay:0.1 (fun () ->
             incr count;
             chain (n - 1)))
  in
  chain 50;
  Engine.run engine;
  Alcotest.(check int) "all chained events ran" 50 !count;
  Alcotest.(check (float 1e-9)) "clock" 5.0 (Engine.now engine)

(* One randomized script, two backends, traces must match exactly.
   Op encoding: (kind, a) with kind 0-2 = schedule at now + scaled
   delay (three delay scales so events hit the same tick, nearby
   ticks, and higher wheel levels), kind 3 = cancel the a-th oldest
   live handle, kind 4 = step_batch. *)
let run_script ops queue =
  let engine = Engine.create ~queue () in
  let trace = ref [] in
  let handles = ref [] in
  let next_id = ref 0 in
  List.iter
    (fun (kind, a) ->
      match kind with
      | 0 | 1 | 2 ->
          let scale =
            match kind with 0 -> 3.3e-7 | 1 -> 1.05e-4 | _ -> 2.7e-2
          in
          let id = !next_id in
          incr next_id;
          let h =
            Engine.schedule engine
              ~delay:(float_of_int a *. scale)
              (fun () -> trace := (id, Engine.now engine) :: !trace)
          in
          handles := !handles @ [ h ]
      | 3 ->
          let n = List.length !handles in
          if n > 0 then Engine.cancel (List.nth !handles (a mod n))
      | _ -> ignore (Engine.step_batch engine))
    ops;
  Engine.run engine;
  (List.rev !trace, Engine.processed engine, Engine.pending engine)

let prop_matches_heap =
  QCheck.Test.make ~name:"wheel and heap dispatch identical traces" ~count:300
    QCheck.(list (pair (int_bound 4) (int_bound 200)))
    (fun ops ->
      let th, ph, nh = run_script ops `Heap in
      let tw, pw, nw = run_script ops `Wheel in
      List.length th = List.length tw
      && List.for_all2
           (fun (i, t) (j, u) -> i = j && Float.equal t u)
           th tw
      && ph = pw && nh = nw)

let suite =
  [
    Alcotest.test_case "runs in time order" `Quick test_runs_in_time_order;
    Alcotest.test_case "FIFO tie break" `Quick test_fifo_tie_break;
    Alcotest.test_case "sub-tick ordering" `Quick test_sub_tick_ordering;
    Alcotest.test_case "cross-level and overflow ordering" `Quick
      test_cross_level_ordering;
    Alcotest.test_case "10k cancel leaves queue empty" `Quick test_cancel_10k;
    Alcotest.test_case "cancel is idempotent" `Quick test_cancel_idempotent;
    Alcotest.test_case "run until limit" `Quick test_run_until;
    Alcotest.test_case "step_batch includes spawned same-time events" `Quick
      test_step_batch_includes_spawned_same_time;
    Alcotest.test_case "cancel sibling during batch" `Quick
      test_cancel_sibling_during_batch;
    Alcotest.test_case "chained events" `Quick test_chained_events;
    QCheck_alcotest.to_alcotest prop_matches_heap;
  ]
