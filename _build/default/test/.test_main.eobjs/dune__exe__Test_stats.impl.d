test/test_stats.ml: Alcotest Array Gen List Printf QCheck QCheck_alcotest Sdn_sim Stats Timeseries
