(* Clean model fixture: the only exceptional exits are the declared
   domain errors — an exception declared inside the model unit itself,
   and invalid_arg. Local mutation (the scratch ref) is fine too: it
   cannot escape the call. *)

exception Model_error of string

let check rate =
  if rate < 0.0 then raise (Model_error "negative rate") else rate

let guard rate = if rate >= 1.0 then invalid_arg "utilisation" else rate

let sum_scratch xs =
  let acc = ref 0.0 in
  List.iter (fun x -> acc := !acc +. x) xs;
  !acc
