lib/core/figures.mli: Sweep
