lib/openflow/of_features.mli: Bytes Format Mac Sdn_net
