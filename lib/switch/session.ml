open Sdn_sim

type state = Handshaking | Up | Probing | Down | Reconnecting

let state_to_string = function
  | Handshaking -> "handshaking"
  | Up -> "up"
  | Probing -> "probing"
  | Down -> "down"
  | Reconnecting -> "reconnecting"

type fail_mode = Fail_secure | Fail_standalone

let fail_mode_to_string = function
  | Fail_secure -> "fail-secure"
  | Fail_standalone -> "fail-standalone"

let fail_mode_of_string = function
  | "secure" | "fail-secure" | "fail_secure" -> Ok Fail_secure
  | "standalone" | "fail-standalone" | "fail_standalone" -> Ok Fail_standalone
  | s -> Error (Printf.sprintf "Session.fail_mode_of_string: %S" s)

type config = {
  echo_interval : float;
  echo_misses : int;
  reconnect_delay : float;
  reconnect_multiplier : float;
  reconnect_cap : float;
}

let default_config =
  {
    echo_interval = 0.0;
    echo_misses = 3;
    reconnect_delay = 50e-3;
    reconnect_multiplier = 2.0;
    reconnect_cap = 400e-3;
  }

type t = {
  engine : Engine.t;
  check : Sdn_check.Check.t option;
  name : string;
  config : config;
  fresh_xid : unit -> int32;
  send_echo : xid:int32 -> unit;
  on_down : unit -> unit;
  on_restore : downtime:float -> unit;
  (* Keepalive echoes awaiting a reply, xid -> send time. Distinct from
     [probes] so that a late reply to a pre-outage keepalive counts as a
     false positive while a reply to a reconnect probe does not. *)
  pending : (int32, float) Hashtbl.t;
  probes : (int32, float) Hashtbl.t;
  mutable state : state;
  (* The current outage began with an observed connection death (crash
     or TCP reset) rather than inferred echo loss: traffic that was in
     flight on the old connection proves nothing about the peer's new
     incarnation, so while this is set only an answered reconnect
     probe may restore the session. *)
  mutable conn_dead : bool;
  mutable tick_handle : Engine.handle option;
  mutable probe_handle : Engine.handle option;
  mutable down_since : float;
  mutable transitions_rev : (float * state) list;
  mutable downs : int;
  mutable false_positives : int;
  mutable echoes_sent : int;
  mutable probes_sent : int;
  mutable replies_matched : int;
  mutable replies_unmatched : int;
  mutable downtime_closed : float;
  echo_rtts : Stats.t;
  recovery_times : Stats.t;
}

let create engine ?check ?(name = "session") ~config ~fresh_xid ~send_echo
    ~on_down ~on_restore () =
  if config.echo_misses < 1 then
    invalid_arg "Session.create: echo_misses below 1";
  if config.reconnect_multiplier < 1.0 then
    invalid_arg "Session.create: reconnect multiplier below 1";
  {
    engine;
    check;
    name;
    config;
    fresh_xid;
    send_echo;
    on_down;
    on_restore;
    pending = Hashtbl.create 8;
    probes = Hashtbl.create 8;
    state = Handshaking;
    conn_dead = false;
    tick_handle = None;
    probe_handle = None;
    down_since = 0.0;
    transitions_rev = [ (Engine.now engine, Handshaking) ];
    downs = 0;
    false_positives = 0;
    echoes_sent = 0;
    probes_sent = 0;
    replies_matched = 0;
    replies_unmatched = 0;
    downtime_closed = 0.0;
    echo_rtts = Stats.create ();
    recovery_times = Stats.create ();
  }

let enabled t = t.config.echo_interval > 0.0
let state t = t.state
let is_down t = match t.state with Down | Reconnecting -> true | _ -> false

let set_state t s =
  if t.state <> s then begin
    (match t.check with
    | Some check ->
        Sdn_check.Check.note_session_transition check
          ~time:(Engine.now t.engine) ~session:t.name
          ~from_:(state_to_string t.state) ~to_:(state_to_string s)
    | None -> ());
    t.state <- s;
    t.transitions_rev <- (Engine.now t.engine, s) :: t.transitions_rev
  end

let reconnect_delay t ~attempt =
  Float.min t.config.reconnect_cap
    (t.config.reconnect_delay
    *. (t.config.reconnect_multiplier ** float_of_int attempt))

(* The keepalive loop: every [echo_interval], check how many echoes are
   still unanswered, then send a fresh one. Reaching [echo_misses]
   unanswered echoes declares the session Down. *)
let rec tick t =
  t.tick_handle <- None;
  match t.state with
  | Down | Reconnecting -> ()
  | Handshaking ->
      (* No traffic to probe yet; wait for the handshake to land. *)
      arm_tick t
  | Up | Probing ->
      if Hashtbl.length t.pending >= t.config.echo_misses then go_down t
      else begin
        if Hashtbl.length t.pending > 0 && t.state = Up then
          set_state t Probing;
        let xid = t.fresh_xid () in
        Hashtbl.replace t.pending xid (Engine.now t.engine);
        t.echoes_sent <- t.echoes_sent + 1;
        t.send_echo ~xid;
        arm_tick t
      end

and arm_tick t =
  t.tick_handle <-
    Some
      (Engine.schedule t.engine ~delay:t.config.echo_interval (fun () ->
           tick t))

and go_down t =
  set_state t Down;
  t.downs <- t.downs + 1;
  t.down_since <- Engine.now t.engine;
  (* [pending] is kept: a reply arriving after this point proves the
     detection was a false alarm. *)
  t.on_down ();
  arm_probe t ~attempt:0

(* Reconnection: probe the channel with echoes on an exponential-backoff
   schedule until one is answered (or any message arrives). *)
and arm_probe t ~attempt =
  t.probe_handle <-
    Some
      (Engine.schedule t.engine ~delay:(reconnect_delay t ~attempt)
         (fun () ->
           t.probe_handle <- None;
           match t.state with
           | Down | Reconnecting ->
               if t.state = Down then set_state t Reconnecting;
               let xid = t.fresh_xid () in
               Hashtbl.replace t.probes xid (Engine.now t.engine);
               t.probes_sent <- t.probes_sent + 1;
               t.send_echo ~xid;
               arm_probe t ~attempt:(attempt + 1)
           | Handshaking | Up | Probing -> ()))

let restore t =
  let now = Engine.now t.engine in
  let downtime = now -. t.down_since in
  t.downtime_closed <- t.downtime_closed +. downtime;
  Stats.add t.recovery_times downtime;
  (match t.probe_handle with Some h -> Engine.cancel h | None -> ());
  t.probe_handle <- None;
  Hashtbl.reset t.pending;
  Hashtbl.reset t.probes;
  t.conn_dead <- false;
  set_state t Up;
  t.on_restore ~downtime;
  if enabled t && t.tick_handle = None then arm_tick t

(* A node crash kills the whole process: every timer dies with it and
   the pending-echo bookkeeping is forgotten (a late reply to a
   pre-crash echo is not a false positive — the process really died).
   Unlike [go_down], no reconnect probes are armed: a dead process
   cannot probe. [revive] re-enters the normal reconnect machinery. *)
let force_down t =
  (match t.tick_handle with Some h -> Engine.cancel h | None -> ());
  t.tick_handle <- None;
  (match t.probe_handle with Some h -> Engine.cancel h | None -> ());
  t.probe_handle <- None;
  Hashtbl.reset t.pending;
  Hashtbl.reset t.probes;
  t.conn_dead <- true;
  match t.state with
  | Down | Reconnecting -> ()
  | Handshaking | Up | Probing ->
      set_state t Down;
      t.downs <- t.downs + 1;
      t.down_since <- Engine.now t.engine;
      t.on_down ()

let revive t =
  match t.state with
  | Down | Reconnecting ->
      if t.probe_handle = None then arm_probe t ~attempt:0
  | Handshaking | Up | Probing ->
      if enabled t && t.tick_handle = None then arm_tick t

(* The peer's process died under the connection (its crash is
   immediately visible as a TCP reset, unlike silent message loss):
   this side is still alive, so — unlike [force_down] — it goes down
   the normal way and keeps probing for the peer's return. *)
let note_disconnect t =
  match t.state with
  | Down | Reconnecting -> ()
  | Handshaking | Up | Probing ->
      (* The reset closed the connection: keepalives already in flight
         died with it, so a late reply is not a false positive here —
         unlike the missed-echo path, where [pending] is kept. *)
      Hashtbl.reset t.pending;
      t.conn_dead <- true;
      go_down t

let note_activity t =
  match t.state with
  | Handshaking -> set_state t Up
  | Up -> ()
  | Probing ->
      Hashtbl.reset t.pending;
      set_state t Up
  | Down | Reconnecting ->
      (* After a connection death, stray traffic may still be the old
         connection draining; hold out for an answered probe. A down
         inferred from echo loss has no such ambiguity: any sign of
         life restores. *)
      if not t.conn_dead then restore t

let note_echo_reply t ~xid =
  let now = Engine.now t.engine in
  if Hashtbl.mem t.probes xid then begin
    Hashtbl.remove t.probes xid;
    t.replies_matched <- t.replies_matched + 1;
    match t.state with
    | Down | Reconnecting -> restore t
    | Handshaking | Up | Probing -> ()
  end
  else begin
    match Hashtbl.find_opt t.pending xid with
    | Some sent -> begin
        Hashtbl.remove t.pending xid;
        t.replies_matched <- t.replies_matched + 1;
        Stats.add t.echo_rtts (now -. sent);
        match t.state with
        | Down | Reconnecting ->
            (* Reply to a pre-outage keepalive: the channel never
               actually died, the misses were pure delay. *)
            t.false_positives <- t.false_positives + 1;
            restore t
        | Probing -> if Hashtbl.length t.pending = 0 then set_state t Up
        | Up | Handshaking -> ()
      end
    | None ->
        t.replies_unmatched <- t.replies_unmatched + 1;
        (* Even an unmatched reply proves the peer is alive. *)
        note_activity t
  end

let start t = if enabled t && t.tick_handle = None then arm_tick t

let downs t = t.downs
let false_positives t = t.false_positives
let echoes_sent t = t.echoes_sent
let probes_sent t = t.probes_sent
let replies_matched t = t.replies_matched
let replies_unmatched t = t.replies_unmatched
let echo_rtts t = t.echo_rtts
let recovery_times t = t.recovery_times

let total_downtime t =
  if is_down t then t.downtime_closed +. (Engine.now t.engine -. t.down_since)
  else t.downtime_closed

let transitions t = List.rev t.transitions_rev

let pp_state fmt s = Format.pp_print_string fmt (state_to_string s)

let pp fmt t =
  Format.fprintf fmt
    "session{%a downs=%d false+=%d echoes=%d/%d probes=%d downtime=%.3fs}"
    pp_state t.state t.downs t.false_positives t.replies_matched t.echoes_sent
    t.probes_sent (total_downtime t)
