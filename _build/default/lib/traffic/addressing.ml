open Sdn_net

type t = {
  src_mac : Mac.t;
  dst_mac : Mac.t;
  src_ip_base : Ip.t;
  dst_ip : Ip.t;
  src_port_base : int;
  dst_port : int;
}

let default =
  {
    src_mac = Mac.of_octets 0x02 0 0 0 0 0x01;
    dst_mac = Mac.of_octets 0x02 0 0 0 0 0x02;
    src_ip_base = Ip.make 10 1 0 0;
    dst_ip = Ip.make 10 0 0 2;
    src_port_base = 10000;
    dst_port = 9;
  }

let src_ip t ~flow_id =
  Ip.of_int32 (Int32.add (Ip.to_int32 t.src_ip_base) (Int32.of_int flow_id))

let src_port t ~flow_id = t.src_port_base + (flow_id mod 16384)

let flow_key t ~flow_id =
  Flow_key.make ~proto:Ipv4.proto_udp ~src_ip:(src_ip t ~flow_id)
    ~dst_ip:t.dst_ip ~src_port:(src_port t ~flow_id) ~dst_port:t.dst_port
