lib/controller/app.mli: Flow_key Packet Sdn_net
