(** The [massive] extreme-scale bench scenario.

    Two phases, both deterministic (wall-clock timing is the caller's
    job, so every count printed from these stats is byte-identical
    across [--jobs] widths and queue backends):

    - {b datapath saturation}: drives millions of packets through the
      allocation-free kernel ({!Sdn_net.Frame_pool} +
      {!Sdn_switch.Fast_path}) — alloc, in-place header write,
      microflow classify, egress ring, release — with the frame-pool
      conservation invariant audited by {!Sdn_check.Check} when
      [check] is set.
    - {b pipeline}: injects an extreme flow count through the {e
      full} switch/controller pipeline (PACKET_IN, buffering,
      flow-mod, forwarding) as independent Poisson single-packet-flow
      shards fanned out over {!Exec.run_experiments}, so [--jobs] and
      [--check] (parallel-equivalence replay included) work exactly as
      in the standard sweeps. {!Experiment.result.sim_events} summed
      over shards is the numerator of the headline events/s rate.

    The CLI's [massive] subcommand times each phase and prints the
    wall-clock rates to stderr, keeping stdout deterministic for the
    CI byte-compare. *)

type datapath_stats = {
  dp_flows : int;  (** microflows installed in the kernel *)
  dp_packets : int;  (** packets pushed through the kernel *)
  dp_forwarded : int;  (** microflow hits enqueued and drained *)
  dp_misses : int;  (** packets with no installed microflow *)
  dp_drops : int;  (** hits shed because an egress ring was full *)
  dp_pool_slots : int;
  dp_check_violations : int;
  dp_check_report : string option;  (** [None] when clean or unchecked *)
}

val run_datapath :
  ?flows:int -> ?packets:int -> ?check:bool -> unit -> datapath_stats
(** Datapath phase: install [flows] (default 10_000) microflows, push
    [packets] (default 1_000_000) header-built-in-place frames
    through classify → TTL rewrite → egress ring → release, draining
    rings in batches. Every 97th packet carries an uninstalled
    5-tuple to keep the miss path honest. *)

type pipeline_stats = {
  pl_shards : int;
  pl_flows : int;  (** total flows injected across shards *)
  pl_packets_in : int;
  pl_packets_out : int;
  pl_flows_completed : int;
  pl_sim_events : int;  (** engine events dispatched, summed over shards *)
  pl_check_violations : int;
  pl_check_reports : string list;  (** per-shard reports, shard order *)
}

val run_pipeline :
  ?flows:int ->
  ?shards:int ->
  ?event_queue:Sdn_sim.Engine.queue_kind ->
  ?check:bool ->
  ?jobs:int ->
  ?seed:int ->
  unit ->
  pipeline_stats
(** Pipeline phase: split [flows] (default 1_000_000) Poisson
    single-packet flows into [shards] (default 20) independent
    full-pipeline experiments (seeded [seed], [seed+1], ...) and run
    them [jobs]-wide. Raises [Invalid_argument] if [flows] or
    [shards] is non-positive. *)
