open Sdn_sim
open Sdn_net
open Sdn_openflow

type mechanism = No_buffer | Packet_granularity | Flow_granularity

let mechanism_to_string = function
  | No_buffer -> "no-buffer"
  | Packet_granularity -> "packet-granularity"
  | Flow_granularity -> "flow-granularity"

type config = {
  datapath_id : int64;
  mechanism : mechanism;
  buffer_capacity : int;
  miss_send_len : int;
  buffer_expiry : float;
  reclaim_lag : float;
  resend_timeout : float;
  resend_multiplier : float;
  resend_cap : float;
  resend_jitter : float;
  max_resends : int;
  flow_table_capacity : int;
  flow_table_eviction : bool;
  table_sweep_interval : float;
  echo_interval : float;
  echo_misses : int;
  fail_mode : Session.fail_mode;
  overload_watermark : float;
  buf_policy : Buf_policy.kind option;
  shared_headroom : int;
}

let default_config =
  {
    datapath_id = 0x00_00_00_00_00_00_00_01L;
    mechanism = Packet_granularity;
    buffer_capacity = 256;
    miss_send_len = Of_packet_in.default_miss_send_len;
    buffer_expiry = 1.0;
    reclaim_lag = 3.2e-3;
    resend_timeout = 50e-3;
    (* Exponential backoff with mild jitter: 50, ~100, ~200 ms. The
       paper's fixed period is multiplier 1 / cap = timeout. *)
    resend_multiplier = 2.0;
    resend_cap = 400e-3;
    resend_jitter = 0.1;
    max_resends = 3;
    flow_table_capacity = 2048;
    flow_table_eviction = true;
    table_sweep_interval = 1.0;
    (* Echo keepalive is opt-in: interval 0 keeps the control channel
       byte-identical to the pre-session behaviour. *)
    echo_interval = 0.0;
    echo_misses = 3;
    fail_mode = Session.Fail_secure;
    (* 1.0 disables the admission guard: the pool only sheds at true
       exhaustion, exactly the pre-guard behaviour. *)
    overload_watermark = 1.0;
    (* No shared-buffer policy: the pools keep their private static
       partitions and every run stays byte-identical to before the
       policy layer existed. *)
    buf_policy = None;
    shared_headroom = 0;
  }

type counters = {
  frames_received : int;
  frames_forwarded : int;
  frames_dropped : int;
  table_misses : int;
  pkt_ins_sent : int;
  pkt_in_resends : int;
  full_packet_fallbacks : int;
  pkt_outs_handled : int;
  flow_mods_handled : int;
  errors_sent : int;
  errors_received : int;
  decode_failures : int;
  decode_truncated : int;
  decode_bad_version : int;
  decode_bad_type : int;
  standalone_frames : int;
  fail_secure_drops : int;
  crashes : int;
  crash_lost_frames : int;
  crash_lost_messages : int;
  crash_wiped_packets : int;
  overload_sheds : int;
}

type t = {
  engine : Engine.t;
  config : config;
  costs : Costs.t;
  check : Sdn_check.Check.t option;
  (* Per-switch prefix for checker pool / session names, so ledgers of
     different datapaths never collide in multi-switch topologies. *)
  name : string;
  resend_rng : Rng.t;
  mutable mechanism : mechanism;
  mutable miss_send_len : int;
  kernel : Cpu.t;
  userspace : Cpu.t;
  bus : (unit -> unit) Link.t option ref;
  table : Flow_table.t;
  mutable pkt_pool : Packet_buffer.t option;
  mutable flow_pool : Flow_buffer.t option;
  mutable shared_pool : Buf_policy.t option;
  ports : (int, Bytes.t Link.t) Hashtbl.t;
  port_schedulers : (int, Egress_queue.t) Hashtbl.t;
  down_ports : (int, unit) Hashtbl.t;
  mutable controller_link : Bytes.t Link.t option;
  mutable next_xid : int32;
  mutable session : Session.t option;
  (* MAC -> port map learned only while fail-standalone forwarding is
     active; reset at each outage so stale locations don't survive. *)
  standalone_table : (Mac.t, int) Hashtbl.t;
  (* mutable counter fields *)
  mutable frames_received : int;
  mutable frames_forwarded : int;
  mutable frames_dropped : int;
  mutable table_misses : int;
  mutable pkt_ins_sent : int;
  mutable pkt_in_resends : int;
  mutable full_packet_fallbacks : int;
  mutable pkt_outs_handled : int;
  mutable flow_mods_handled : int;
  mutable errors_sent : int;
  mutable errors_received : int;
  mutable decode_failures : int;
  mutable decode_truncated : int;
  mutable decode_bad_version : int;
  mutable decode_bad_type : int;
  mutable standalone_frames : int;
  mutable fail_secure_drops : int;
  (* Crash–restart fault injection: while [dead] the datapath neither
     forwards nor speaks OpenFlow; everything arriving is lost. *)
  mutable dead : bool;
  mutable crashes : int;
  mutable crash_lost_frames : int;
  mutable crash_lost_messages : int;
  mutable crash_wiped_packets : int;
  mutable overload_sheds : int;
}

let the_session t =
  match t.session with
  | Some s -> s
  | None -> invalid_arg "Switch: session not initialised"

let fresh_xid t =
  let xid = t.next_xid in
  t.next_xid <-
    (if Int32.equal t.next_xid Int32.max_int then 1l else Int32.add t.next_xid 1l);
  xid

let pkt_pool_name t = t.name ^ "/pkt_pool"
let flow_pool_name t = t.name ^ "/flow_pool"
let shared_pool_name t = t.name ^ "/shared"

(* The switch-wide shared buffer pool, created on first demand when a
   sharing policy is configured. The packet-buffer pool and every
   port scheduler's classes all draw on it. *)
let ensure_shared_pool t =
  match t.config.buf_policy with
  | None -> None
  | Some kind -> (
      match t.shared_pool with
      | Some _ as pool -> pool
      | None ->
          let pool =
            Buf_policy.create ?check:t.check
              ~headroom:t.config.shared_headroom ~kind
              ~name:(shared_pool_name t) t.engine
          in
          t.shared_pool <- Some pool;
          Some pool)

(* Report a PACKET_IN emission decision to the invariant checker. Noted
   at the decision point (miss handler / resend timer), not at the
   asynchronous send, so expiry racing bus and CPU delays cannot
   produce false violations. *)
let note_pkt_in t ~pool ~id ~resend =
  match t.check with
  | Some check ->
      Sdn_check.Check.note_packet_in check ~time:(Engine.now t.engine) ~pool
        ~id ~resend
  | None -> ()

let make_pkt_pool t =
  let policy =
    match ensure_shared_pool t with
    | None -> None
    | Some pool ->
        Some
          (Buf_policy.register pool ~name:"ingress"
             ~quota:t.config.buffer_capacity ~priority:0)
  in
  (* Under a sharing policy the physical slot array carries headroom
     beyond the static quota — the policy, not the array, is the
     admission limit. Static (and no policy) keeps the exact legacy
     geometry. *)
  let capacity =
    match t.config.buf_policy with
    | None | Some Buf_policy.Static -> t.config.buffer_capacity
    | Some _ ->
        Int.min 0xFFFF (t.config.buffer_capacity + t.config.shared_headroom)
  in
  Packet_buffer.create t.engine ?check:t.check ?policy
    ~pool_name:(pkt_pool_name t) ~capacity ~expiry:t.config.buffer_expiry
    ~reclaim_lag:t.config.reclaim_lag ()

(* The flow pool's resend callback needs the switch, so it is created
   lazily once [t] exists. *)
let rec ensure_flow_pool t =
  match t.flow_pool with
  | Some pool -> pool
  | None ->
      let pool =
        Flow_buffer.create t.engine ?check:t.check
          ~pool_name:(flow_pool_name t) ~capacity:t.config.buffer_capacity
          ~reclaim_lag:t.config.reclaim_lag
          ~resend_timeout:t.config.resend_timeout
          ~resend_multiplier:t.config.resend_multiplier
          ~resend_cap:t.config.resend_cap
          ~resend_jitter:t.config.resend_jitter ~rng:t.resend_rng
          ~max_resends:t.config.max_resends
          ~on_resend:(fun ~buffer_id ~key:_ ~first_frame ->
            t.pkt_in_resends <- t.pkt_in_resends + 1;
            note_pkt_in t ~pool:(flow_pool_name t) ~id:buffer_id ~resend:true;
            (* The repeated request retraces the miss path: bus, then
               userspace, then the control link (Algorithm 1 line 13). *)
            send_pkt_in t ~buffer_id ~frame:first_frame ~in_port:1
              ~truncate:(Some t.miss_send_len) ~extra_cost:0.0)
          ()
      in
      t.flow_pool <- Some pool;
      pool

and ensure_pkt_pool t =
  match t.pkt_pool with
  | Some pool -> pool
  | None ->
      let pool = make_pkt_pool t in
      t.pkt_pool <- Some pool;
      pool

(* Transfer [bytes] across the half-duplex ASIC<->CPU bus, then run
   [k]. The bus is the contended resource behind the paper's Fig. 7. *)
and bus_transfer t ~bytes k =
  match !(t.bus) with
  | Some bus -> Link.send bus ~size:(bytes + t.costs.Costs.bus_descriptor_bytes) k
  | None -> k ()

and send_to_controller ?xid ?fresh t msg =
  if t.dead then ()
    (* In-flight work completing while the process is down emits
       nothing; the message evaporates with the process. *)
  else
  match t.controller_link with
  | Some link ->
      (* Replies echo the request's transaction id, per the OpenFlow
         specification; switch-initiated messages get fresh ids. *)
      let fresh =
        match fresh with Some f -> f | None -> Option.is_none xid
      in
      let xid = match xid with Some x -> x | None -> fresh_xid t in
      let encoded = Of_codec.encode ~xid msg in
      (match t.check with
      | Some check ->
          Sdn_check.Check.note_emit check ~time:(Engine.now t.engine)
            ~session:t.name ~fresh ~xid ~msg ~encoded
      | None -> ());
      Link.send link ~size:(Bytes.length encoded) encoded
  | None -> ()

(* Generate a PACKET_IN: bus crossing (carrying [truncate] bytes of the
   frame, or all of it), then userspace processing, then the control
   link. *)
and send_pkt_in t ~buffer_id ~frame ~in_port ~truncate ~extra_cost =
  let carried =
    match truncate with
    | None -> Bytes.length frame
    | Some n -> min n (Bytes.length frame)
  in
  bus_transfer t ~bytes:carried (fun () ->
      let work =
        t.costs.Costs.upcall_base_cost
        +. (t.costs.Costs.upcall_per_byte *. float_of_int carried)
        +. extra_cost
      in
      Cpu.submit t.userspace ~work_s:work (fun () ->
          let pkt_in =
            Of_packet_in.make ~buffer_id ~in_port
              ~reason:Of_packet_in.No_match ~frame
              ~miss_send_len:truncate
          in
          t.pkt_ins_sent <- t.pkt_ins_sent + 1;
          send_to_controller t (Of_codec.Packet_in pkt_in)))

let forward_frame t ~port ~queue_id frame =
  if t.dead then begin
    t.frames_dropped <- t.frames_dropped + 1;
    t.crash_lost_frames <- t.crash_lost_frames + 1
  end
  else if Hashtbl.mem t.down_ports port then
    t.frames_dropped <- t.frames_dropped + 1
  else
  match Hashtbl.find_opt t.port_schedulers port with
  | Some scheduler ->
      t.frames_forwarded <- t.frames_forwarded + 1;
      Egress_queue.send scheduler ~queue_id frame
  | None -> (
      match Hashtbl.find_opt t.ports port with
      | Some link ->
          t.frames_forwarded <- t.frames_forwarded + 1;
          Link.send link ~size:(Bytes.length frame) frame
      | None -> t.frames_dropped <- t.frames_dropped + 1)

let resolve_outputs t ~in_port outputs =
  let all_but_ingress queue_id =
    (* Flood replication order must not depend on hash-table iteration:
       ascending port number. *)
    Hashtbl.fold
      (fun p _ acc ->
        if p = in_port || Hashtbl.mem t.down_ports p then acc
        else { Of_action.out_port = p; queue_id } :: acc)
      t.ports []
    |> List.sort (fun (a : Of_action.output_spec) b ->
           Int.compare a.Of_action.out_port b.Of_action.out_port)
  in
  List.concat_map
    (fun (o : Of_action.output_spec) ->
      let p = o.Of_action.out_port in
      if p = Of_wire.Port.flood || p = Of_wire.Port.all then
        all_but_ingress o.Of_action.queue_id
      else if p = Of_wire.Port.in_port then
        [ { o with Of_action.out_port = in_port } ]
      else if p = Of_wire.Port.controller || p = Of_wire.Port.none then []
      else [ o ])
    outputs

(* Egress of a data-plane frame: one kernel forwarding job, then the
   port link. *)
let egress t ~in_port ~actions pkt frame =
  let rewritten, outputs = Of_action.apply_full actions pkt in
  let frame =
    (* Re-encode only if an action rewrote a header. *)
    if rewritten == pkt then frame else Packet.encode rewritten
  in
  let outputs = resolve_outputs t ~in_port outputs in
  if outputs = [] then t.frames_dropped <- t.frames_dropped + 1
  else
    Cpu.submit t.kernel ~work_s:t.costs.Costs.kernel_fwd_cost (fun () ->
        List.iter
          (fun (o : Of_action.output_spec) ->
            forward_frame t ~port:o.Of_action.out_port
              ~queue_id:o.Of_action.queue_id frame)
          outputs)

(* ---- Miss handling, per mechanism ---- *)

let miss_no_buffer t ~in_port frame =
  t.full_packet_fallbacks <- t.full_packet_fallbacks + 1;
  send_pkt_in t ~buffer_id:Of_wire.no_buffer ~frame ~in_port ~truncate:None
    ~extra_cost:0.0

(* Admission control: past the high watermark the switch sheds {e new}
   work instead of letting it crowd the pool — in-flight chains keep
   their units and their controller round-trips; fresh arrivals are
   dropped with a typed reason. Watermark 1.0 (the default) disables
   the guard entirely. *)
let overload_guard_active t ~in_use ~capacity =
  t.config.overload_watermark < 1.0
  && float_of_int in_use
     >= t.config.overload_watermark *. float_of_int capacity

let shed_overload t =
  t.overload_sheds <- t.overload_sheds + 1;
  t.frames_dropped <- t.frames_dropped + 1

let miss_packet_granularity t ~in_port frame =
  let pool = ensure_pkt_pool t in
  if
    overload_guard_active t ~in_use:(Packet_buffer.in_use pool)
      ~capacity:(Packet_buffer.capacity pool)
  then shed_overload t
  else
  match Packet_buffer.alloc pool ~frame with
  | None -> miss_no_buffer t ~in_port frame
  | Some buffer_id ->
      note_pkt_in t ~pool:(pkt_pool_name t) ~id:buffer_id ~resend:false;
      send_pkt_in t ~buffer_id ~frame ~in_port
        ~truncate:(Some t.miss_send_len)
        ~extra_cost:t.costs.Costs.buffer_alloc_cost

let miss_flow_granularity t ~in_port pkt frame =
  match Packet.flow_key pkt with
  | None ->
      (* Non-flow traffic (e.g. ARP) cannot share a buffer unit; it is
         handled like an unbuffered miss. *)
      miss_no_buffer t ~in_port frame
  | Some key -> (
      let pool = ensure_flow_pool t in
      if
        overload_guard_active t ~in_use:(Flow_buffer.units_in_use pool)
          ~capacity:(Flow_buffer.capacity pool)
        (* Appends ride an existing unit: admitting them favours
           completing in-flight chains over starting new ones. *)
        && not (Flow_buffer.has_chain pool ~key)
      then shed_overload t
      else
      match Flow_buffer.add pool ~key ~frame with
      | Flow_buffer.No_space -> miss_no_buffer t ~in_port frame
      | Flow_buffer.First buffer_id ->
          note_pkt_in t ~pool:(flow_pool_name t) ~id:buffer_id ~resend:false;
          send_pkt_in t ~buffer_id ~frame ~in_port
            ~truncate:(Some t.miss_send_len)
            ~extra_cost:t.costs.Costs.flow_buffer_first_cost
      | Flow_buffer.Appended _ ->
          (* Algorithm 1 line 11: buffered silently, but the chaining
             work still occupies the datapath CPU, which is what delays
             PACKET_IN generation in the paper's Fig. 12(a). *)
          Cpu.submit t.kernel ~work_s:t.costs.Costs.flow_buffer_append_cost
            (fun () -> ()))

(* ---- Degraded miss handling while the controller session is down ---- *)

(* Fail-standalone (OpenFlow 1.0 §6.4): the switch keeps the data plane
   alive on its own with an internal L2 learning path — learn the source
   location, forward to the learned destination port or flood. Installed
   rules keep matching in the fast path; only misses come through here. *)
let miss_standalone t ~in_port pkt frame =
  t.standalone_frames <- t.standalone_frames + 1;
  let eth = pkt.Packet.eth in
  Hashtbl.replace t.standalone_table eth.Ethernet.src in_port;
  let outputs =
    if Mac.is_broadcast eth.Ethernet.dst then
      [ { Of_action.out_port = Of_wire.Port.flood; queue_id = None } ]
    else begin
      match Hashtbl.find_opt t.standalone_table eth.Ethernet.dst with
      | Some p when p <> in_port ->
          [ { Of_action.out_port = p; queue_id = None } ]
      | Some _ -> []
      | None -> [ { Of_action.out_port = Of_wire.Port.flood; queue_id = None } ]
    end
  in
  let outputs = resolve_outputs t ~in_port outputs in
  if outputs = [] then t.frames_dropped <- t.frames_dropped + 1
  else
    Cpu.submit t.kernel ~work_s:t.costs.Costs.kernel_fwd_cost (fun () ->
        List.iter
          (fun (o : Of_action.output_spec) ->
            forward_frame t ~port:o.Of_action.out_port
              ~queue_id:o.Of_action.queue_id frame)
          outputs)

(* Fail-secure (OpenFlow 1.0 §6.4): never forward without controller
   authorization. Flow-granularity chains keep absorbing miss-match
   packets into the (frozen) pool so nothing already accepted is lost;
   everything else is dropped until the session recovers. *)
let miss_fail_secure t ~in_port:_ pkt frame =
  let drop () =
    t.fail_secure_drops <- t.fail_secure_drops + 1;
    t.frames_dropped <- t.frames_dropped + 1
  in
  match t.mechanism with
  | Flow_granularity -> (
      match Packet.flow_key pkt with
      | None -> drop ()
      | Some key -> (
          let pool = ensure_flow_pool t in
          if not (Flow_buffer.is_frozen pool) then Flow_buffer.freeze pool;
          match Flow_buffer.add pool ~key ~frame with
          | Flow_buffer.No_space -> drop ()
          | Flow_buffer.First _ | Flow_buffer.Appended _ -> ()))
  | Packet_granularity | No_buffer -> drop ()

let handle_miss t ~in_port pkt frame =
  t.table_misses <- t.table_misses + 1;
  if Session.is_down (the_session t) then
    (* Controller unreachable: degrade per the configured fail mode
       instead of emitting PACKET_INs into a dead channel. *)
    Cpu.submit t.kernel ~work_s:t.costs.Costs.kernel_upcall_cost (fun () ->
        match t.config.fail_mode with
        | Session.Fail_standalone -> miss_standalone t ~in_port pkt frame
        | Session.Fail_secure -> miss_fail_secure t ~in_port pkt frame)
  else
    (* The kernel side of the upcall (packet copy out of the datapath)
       runs before the transfer crosses the bus. *)
    Cpu.submit t.kernel ~work_s:t.costs.Costs.kernel_upcall_cost (fun () ->
        match t.mechanism with
        | No_buffer -> miss_no_buffer t ~in_port frame
        | Packet_granularity -> miss_packet_granularity t ~in_port frame
        | Flow_granularity -> miss_flow_granularity t ~in_port pkt frame)

let handle_frame t ~in_port frame =
  t.frames_received <- t.frames_received + 1;
  if t.dead then begin
    (* A crashed datapath is a black hole: the frame is counted in and
       immediately lost, with no CPU work burned. *)
    t.frames_dropped <- t.frames_dropped + 1;
    t.crash_lost_frames <- t.crash_lost_frames + 1
  end
  else
  Cpu.submit t.kernel ~work_s:t.costs.Costs.kernel_rx_cost (fun () ->
      match Packet.decode frame with
      | Error _ ->
          t.decode_failures <- t.decode_failures + 1;
          t.frames_dropped <- t.frames_dropped + 1
      | Ok pkt -> (
          match Flow_table.lookup t.table ~in_port pkt with
          | Some entry ->
              Flow_entry.touch entry ~now:(Engine.now t.engine)
                ~bytes:(Bytes.length frame);
              egress t ~in_port ~actions:entry.Flow_entry.actions pkt frame
          | None -> handle_miss t ~in_port pkt frame))

(* ---- Controller-to-switch message handling ---- *)

let send_error ?xid t ~error_type ~code ~offending =
  t.errors_sent <- t.errors_sent + 1;
  let data = Bytes.sub offending 0 (min 64 (Bytes.length offending)) in
  send_to_controller ?xid t
    (Of_codec.Error_msg (Of_error.make ~error_type ~code ~data ()))

(* Release one buffered frame to the datapath: descriptor-sized bus
   crossing, buffer bookkeeping, then kernel forwarding. *)
let release_buffered t ~actions frame =
  bus_transfer t ~bytes:0 (fun () ->
      Cpu.submit t.kernel ~work_s:t.costs.Costs.release_per_packet_cost
        (fun () ->
          match Packet.decode frame with
          | Error _ -> t.decode_failures <- t.decode_failures + 1
          | Ok pkt -> egress t ~in_port:0 ~actions pkt frame))

(* Release a whole flow-granularity chain (Algorithm 2 lines 4-10). *)
let release_chain t ~actions frames =
  bus_transfer t ~bytes:0 (fun () ->
      let rec forward_next = function
        | [] -> ()
        | frame :: rest ->
            Cpu.submit t.kernel
              ~work_s:t.costs.Costs.release_per_packet_cost (fun () ->
                (match Packet.decode frame with
                | Error _ -> t.decode_failures <- t.decode_failures + 1
                | Ok pkt -> egress t ~in_port:0 ~actions pkt frame);
                forward_next rest)
      in
      forward_next frames)

let apply_buffer_release t ~buffer_id ~actions ~offending =
  if Int32.equal buffer_id Of_wire.no_buffer then ()
  else begin
    match t.mechanism with
    | Packet_granularity | No_buffer -> (
        match t.pkt_pool with
        | None ->
            send_error t ~error_type:Of_error.Bad_request
              ~code:Of_error.Bad_request_code.buffer_empty ~offending
        | Some pool -> (
            match Packet_buffer.take pool buffer_id with
            | Packet_buffer.Taken frame -> release_buffered t ~actions frame
            | Packet_buffer.Unknown_id ->
                send_error t ~error_type:Of_error.Bad_request
                  ~code:Of_error.Bad_request_code.buffer_unknown ~offending))
    | Flow_granularity -> (
        match t.flow_pool with
        | None ->
            send_error t ~error_type:Of_error.Bad_request
              ~code:Of_error.Bad_request_code.buffer_empty ~offending
        | Some pool -> (
            match Flow_buffer.take_all pool buffer_id with
            | Flow_buffer.Taken frames -> release_chain t ~actions frames
            | Flow_buffer.Unknown_id ->
                send_error t ~error_type:Of_error.Bad_request
                  ~code:Of_error.Bad_request_code.buffer_unknown ~offending))
  end

let handle_flow_mod t (fm : Of_flow_mod.t) ~offending =
  t.flow_mods_handled <- t.flow_mods_handled + 1;
  let work = t.costs.Costs.flow_mod_install_cost in
  Cpu.submit t.userspace ~work_s:work (fun () ->
      match fm.Of_flow_mod.command with
      | Of_flow_mod.Add | Of_flow_mod.Modify | Of_flow_mod.Modify_strict ->
          (* The rule takes effect only after the datapath programming
             latency; packets arriving in between still miss. The
             buffered packet (if the FLOW_MOD names one) is released
             immediately, as OVS does. *)
          ignore
            (Engine.schedule t.engine
               ~delay:t.costs.Costs.flow_mod_apply_latency (fun () ->
                 let entry =
                   Flow_entry.of_flow_mod fm ~now:(Engine.now t.engine)
                 in
                 match Flow_table.insert t.table entry with
                 | Flow_table.Installed | Flow_table.Replaced
                 | Flow_table.Evicted _ ->
                     ()
                 | Flow_table.Table_full ->
                     send_error t ~error_type:Of_error.Flow_mod_failed
                       ~code:Of_error.Flow_mod_failed_code.all_tables_full
                       ~offending));
          apply_buffer_release t ~buffer_id:fm.Of_flow_mod.buffer_id
            ~actions:fm.Of_flow_mod.actions ~offending
      | Of_flow_mod.Delete ->
          ignore
            (Flow_table.delete t.table ~strict:false
               ~out_port:fm.Of_flow_mod.out_port ~match_:fm.Of_flow_mod.match_
               ~priority:fm.Of_flow_mod.priority ())
      | Of_flow_mod.Delete_strict ->
          ignore
            (Flow_table.delete t.table ~strict:true
               ~out_port:fm.Of_flow_mod.out_port ~match_:fm.Of_flow_mod.match_
               ~priority:fm.Of_flow_mod.priority ()))

let handle_packet_out t (po : Of_packet_out.t) ~offending =
  t.pkt_outs_handled <- t.pkt_outs_handled + 1;
  let data_len = Bytes.length po.Of_packet_out.data in
  let work =
    t.costs.Costs.pkt_out_base_cost
    +. (t.costs.Costs.pkt_out_per_byte *. float_of_int data_len)
  in
  Cpu.submit t.userspace ~work_s:work (fun () ->
      if Int32.equal po.Of_packet_out.buffer_id Of_wire.no_buffer then begin
        if data_len = 0 then
          send_error t ~error_type:Of_error.Bad_request
            ~code:Of_error.Bad_request_code.bad_len ~offending
        else begin
          (* The full frame must cross the bus back to the datapath. *)
          let frame = po.Of_packet_out.data in
          bus_transfer t ~bytes:data_len (fun () ->
              match Packet.decode frame with
              | Error _ -> t.decode_failures <- t.decode_failures + 1
              | Ok pkt ->
                  egress t ~in_port:po.Of_packet_out.in_port
                    ~actions:po.Of_packet_out.actions pkt frame)
        end
      end
      else
        apply_buffer_release t ~buffer_id:po.Of_packet_out.buffer_id
          ~actions:po.Of_packet_out.actions ~offending)

let buffer_stats t =
  match (t.mechanism, t.pkt_pool, t.flow_pool) with
  | Flow_granularity, _, Some pool ->
      {
        Of_ext.units_in_use = Flow_buffer.units_in_use pool;
        units_total = Flow_buffer.capacity pool;
        flows_buffered = Flow_buffer.flows_buffered pool;
        packets_buffered = Flow_buffer.packets_buffered pool;
        resends = Flow_buffer.resends pool;
      }
  | (Packet_granularity | No_buffer), Some pool, _ ->
      {
        Of_ext.units_in_use = Packet_buffer.in_use pool;
        units_total = Packet_buffer.capacity pool;
        flows_buffered = 0;
        packets_buffered = Packet_buffer.in_use pool;
        resends = 0;
      }
  | Flow_granularity, _, None | (Packet_granularity | No_buffer), None, _ ->
      {
        Of_ext.units_in_use = 0;
        units_total = t.config.buffer_capacity;
        flows_buffered = 0;
        packets_buffered = 0;
        resends = 0;
      }

let handle_vendor t ~xid (v : Of_ext.t) =
  match v with
  | Of_ext.Flow_buffer_enable b ->
      t.mechanism <- Flow_granularity;
      (* The controller dictates the re-request policy; it applies to
         the live pool from the next timer arming. *)
      Flow_buffer.set_backoff (ensure_flow_pool t)
        ~resend_timeout:b.Of_ext.timeout
        ~resend_multiplier:b.Of_ext.multiplier ~resend_cap:b.Of_ext.cap
        ~max_resends:b.Of_ext.max_resends
  | Of_ext.Flow_buffer_disable -> t.mechanism <- Packet_granularity
  | Of_ext.Flow_buffer_stats_request ->
      send_to_controller ~xid t
        (Of_codec.Vendor (Of_ext.Flow_buffer_stats_reply (buffer_stats t)))
  | Of_ext.Flow_buffer_stats_reply _ -> ()

let features_reply t =
  let ports =
    (* Port list goes on the wire: ascending port number, not
       hash-table iteration order. *)
    Hashtbl.fold
      (fun port _ acc ->
        {
          Of_features.port_no = port;
          hw_addr = Mac.of_octets 0x02 0 0 0 0 port;
          name = Printf.sprintf "eth%d" port;
        }
        :: acc)
      t.ports []
    |> List.sort (fun (a : Of_features.phy_port) b ->
           Int.compare a.Of_features.port_no b.Of_features.port_no)
  in
  Of_features.make ~datapath_id:t.config.datapath_id
    ~n_buffers:
      (match t.mechanism with No_buffer -> 0 | _ -> t.config.buffer_capacity)
    ~n_tables:1 ~ports

let handle_stats_request t ~xid (req : Of_stats.request) =
  let now = Engine.now t.engine in
  let reply =
    match req with
    | Of_stats.Desc_request ->
        Of_stats.Desc_reply
          {
            Of_stats.mfr_desc = "sdn-buffer reproduction";
            hw_desc = "simulated datapath";
            sw_desc = "sdn_switch (OCaml)";
            serial_num = "0";
            dp_desc = mechanism_to_string t.mechanism;
          }
    | Of_stats.Flow_request _ ->
        (* A big table cannot be reported in one frame (16-bit wire
           length, no multipart continuation in this codec): answer
           with the prefix that fits rather than framing garbage. *)
        Of_stats.Flow_reply
          (Of_stats.truncate_flow_entries (Flow_table.to_stats t.table ~now))
    | Of_stats.Aggregate_request _ ->
        let entries = Flow_table.entries t.table in
        let packets, bytes =
          List.fold_left
            (fun (p, b) (e : Flow_entry.t) ->
              (Int64.add p e.Flow_entry.packets, Int64.add b e.Flow_entry.bytes))
            (0L, 0L) entries
        in
        Of_stats.Aggregate_reply
          {
            packet_count = packets;
            byte_count = bytes;
            flow_count = Int32.of_int (List.length entries);
          }
    | Of_stats.Port_request { port_no } ->
        let one port (link : Bytes.t Link.t) =
          {
            Of_stats.port_no = port;
            rx_packets = 0L;
            tx_packets = Int64.of_int (Link.messages_sent link);
            rx_bytes = 0L;
            tx_bytes = Int64.of_int (Link.bytes_sent link);
            rx_dropped = 0L;
            tx_dropped = 0L;
            rx_errors = 0L;
            tx_errors = 0L;
          }
        in
        let entries =
          if port_no = Of_wire.Port.none || port_no = Of_wire.Port.all then
            (* Stats reply goes on the wire: ascending port number. *)
            Hashtbl.fold (fun p l acc -> one p l :: acc) t.ports []
            |> List.sort (fun (a : Of_stats.port_stats) b ->
                   Int.compare a.Of_stats.port_no b.Of_stats.port_no)
          else begin
            match Hashtbl.find_opt t.ports port_no with
            | Some l -> [ one port_no l ]
            | None -> []
          end
        in
        Of_stats.Port_reply entries
  in
  send_to_controller ~xid t (Of_codec.Stats_reply reply)

let handle_of_message t buf =
  if t.dead then
    (* The OpenFlow agent is down with the rest of the process. *)
    t.crash_lost_messages <- t.crash_lost_messages + 1
  else
  match Of_codec.decode buf with
  | Error _ ->
      t.decode_failures <- t.decode_failures + 1;
      (* Per the 1.0 spec, the reply code depends on what exactly was
         wrong with the frame (satellite of the wire-format story):
         truncation is a length problem, an unknown type byte a type
         problem, and a foreign version a failed version negotiation. *)
      let error_type, code =
        match Of_codec.error_kind buf with
        | Of_codec.Truncated | Of_codec.Bad_body ->
            t.decode_truncated <- t.decode_truncated + 1;
            (Of_error.Bad_request, Of_error.Bad_request_code.bad_len)
        | Of_codec.Bad_version _ ->
            t.decode_bad_version <- t.decode_bad_version + 1;
            (Of_error.Hello_failed, Of_error.Hello_failed_code.incompatible)
        | Of_codec.Bad_type _ ->
            t.decode_bad_type <- t.decode_bad_type + 1;
            (Of_error.Bad_request, Of_error.Bad_request_code.bad_type)
      in
      send_error ~xid:(Of_codec.peek_xid buf) t ~error_type ~code
        ~offending:buf
  | Ok (xid, msg) -> (
      (* Any well-formed message is proof of liveness; echo replies
         additionally settle an outstanding keepalive or reconnect
         probe by xid. A message arriving while Down restores the
         session (and resumes frozen chains) before being handled. *)
      (match msg with
      | Of_codec.Echo_reply _ -> Session.note_echo_reply (the_session t) ~xid
      | _ -> Session.note_activity (the_session t));
      match msg with
      | Of_codec.Flow_mod fm -> handle_flow_mod t fm ~offending:buf
      | Of_codec.Packet_out po -> handle_packet_out t po ~offending:buf
      | Of_codec.Hello -> send_to_controller t Of_codec.Hello
      | Of_codec.Echo_request payload ->
          send_to_controller ~xid t (Of_codec.Echo_reply payload)
      | Of_codec.Features_request ->
          send_to_controller ~xid t (Of_codec.Features_reply (features_reply t))
      | Of_codec.Barrier_request ->
          send_to_controller ~xid t Of_codec.Barrier_reply
      | Of_codec.Vendor v -> handle_vendor t ~xid v
      | Of_codec.Stats_request req -> handle_stats_request t ~xid req
      | Of_codec.Get_config_request ->
          send_to_controller ~xid t
            (Of_codec.Get_config_reply
               { Of_config.flags = 0; miss_send_len = t.miss_send_len })
      | Of_codec.Set_config c ->
          (* The controller configures how much of a buffered packet
             rides in the PACKET_IN (paper, Section IV). *)
          t.miss_send_len <- max 0 (min 0xFFFF c.Of_config.miss_send_len)
      | Of_codec.Error_msg _ -> t.errors_received <- t.errors_received + 1
      | Of_codec.Echo_reply _ | Of_codec.Features_reply _
      | Of_codec.Get_config_reply _ | Of_codec.Packet_in _
      | Of_codec.Flow_removed _ | Of_codec.Port_status _
      | Of_codec.Stats_reply _ | Of_codec.Barrier_reply ->
          (* Controller-bound messages are ignored if echoed back;
             echo replies were consumed by the session above. *)
          ())

(* Session-down: stop burning re-request budgets into a dead link (the
   frozen chains survive for the post-reconnect resync), and start
   standalone forwarding from an empty learning table. *)
let on_session_down t =
  (match t.mechanism with
  | Flow_granularity -> Flow_buffer.freeze (ensure_flow_pool t)
  | Packet_granularity | No_buffer -> ());
  Hashtbl.reset t.standalone_table

(* Session restored: thaw the pool — chains that still fit their resend
   budget re-enter the backoff machinery and re-request; the rest
   expire. *)
let on_session_restore t =
  match t.flow_pool with
  | Some pool when Flow_buffer.is_frozen pool -> Flow_buffer.resume pool
  | Some _ | None -> ()

(* ---- Crash–restart fault injection ---- *)

let crash t ~mode =
  if not t.dead then begin
    t.dead <- true;
    t.crashes <- t.crashes + 1;
    (* The process dies with all its timers; Session.force_down fires
       on_down from live states, which freezes a flow-granularity pool
       and resets the standalone table. *)
    Session.force_down (the_session t);
    Hashtbl.reset t.standalone_table;
    match mode with
    | Faults.Warm -> (
        (* Soft state survives the reboot: buffered chains freeze (if
           the session was already down they may not be yet) and replay
           through the normal resume path on reconnection. *)
        match t.flow_pool with
        | Some pool when not (Flow_buffer.is_frozen pool) ->
            Flow_buffer.freeze pool
        | Some _ | None -> ())
    | Faults.Cold ->
        (* Full state loss. The pools report every held chain as
           expired to the conservation ledger, then the wipe invariant
           confirms nothing survived. Flow table, learned MACs and the
           vendor-negotiated configuration all reset to power-on
           defaults; the controller's resync handshake re-pushes them. *)
        let wiped = ref 0 in
        (match t.pkt_pool with
        | Some pool -> wiped := !wiped + Packet_buffer.wipe pool
        | None -> ());
        (match t.flow_pool with
        | Some pool ->
            let _chains, packets = Flow_buffer.wipe pool in
            wiped := !wiped + packets
        | None -> ());
        t.crash_wiped_packets <- t.crash_wiped_packets + !wiped;
        ignore (Flow_table.clear t.table);
        t.mechanism <-
          (if t.config.buffer_capacity = 0 then No_buffer
           else t.config.mechanism);
        t.miss_send_len <- t.config.miss_send_len;
        (match t.check with
        | Some check ->
            let now = Engine.now t.engine in
            (match t.pkt_pool with
            | Some _ ->
                Sdn_check.Check.note_crash_wipe check ~time:now
                  ~pool:(pkt_pool_name t)
            | None -> ());
            (match t.flow_pool with
            | Some _ ->
                Sdn_check.Check.note_crash_wipe check ~time:now
                  ~pool:(flow_pool_name t)
            | None -> ())
        | None -> ())
  end

let restart t =
  if t.dead then begin
    t.dead <- false;
    (* Rejoin the controller through the ordinary reconnect machinery:
       the first answered probe restores the session, resumes any
       frozen chains and triggers the controller's resync (and, after
       a crash, its reconciliation pass). *)
    Session.revive (the_session t)
  end

let is_dead t = t.dead

let create engine ?check ~config ~costs ~rng () =
  let noise = Costs.noise costs rng in
  let amortize ~queue_len = Costs.amortization costs ~queue_len in
  let mechanism =
    if config.buffer_capacity = 0 then No_buffer else config.mechanism
  in
  let name = Printf.sprintf "sw-%Lx" config.datapath_id in
  let t =
    {
      engine;
      config;
      costs;
      check;
      name;
      (* A dedicated stream for re-request jitter, so backoff draws do
         not perturb the service-noise sequence. *)
      resend_rng = Rng.split rng;
      mechanism;
      miss_send_len = config.miss_send_len;
      kernel =
        Cpu.create engine ~name:"switch-kernel" ~cores:costs.Costs.kernel_cores
          ~noise ();
      userspace =
        Cpu.create engine ~name:"switch-userspace"
          ~cores:costs.Costs.userspace_cores ~service_scale:amortize ~noise ();
      bus = ref None;
      table =
        Flow_table.create ~eviction:config.flow_table_eviction ?check
          ~name:(name ^ "/table")
          ~clock:(fun () -> Engine.now engine)
          ~capacity:config.flow_table_capacity ();
      pkt_pool = None;
      flow_pool = None;
      shared_pool = None;
      ports = Hashtbl.create 8;
      port_schedulers = Hashtbl.create 8;
      down_ports = Hashtbl.create 4;
      controller_link = None;
      (* Each datapath gets its own xid block so transaction ids stay
         unique controller-wide in multi-switch topologies (the delay
         tracker pairs responses by xid). *)
      next_xid =
        Int32.add 1l
          (Int32.shift_left
             (Int32.of_int (Int64.to_int (Int64.rem config.datapath_id 1024L)))
             20);
      frames_received = 0;
      frames_forwarded = 0;
      frames_dropped = 0;
      table_misses = 0;
      pkt_ins_sent = 0;
      pkt_in_resends = 0;
      full_packet_fallbacks = 0;
      pkt_outs_handled = 0;
      flow_mods_handled = 0;
      errors_sent = 0;
      errors_received = 0;
      decode_failures = 0;
      decode_truncated = 0;
      decode_bad_version = 0;
      decode_bad_type = 0;
      standalone_frames = 0;
      fail_secure_drops = 0;
      dead = false;
      crashes = 0;
      crash_lost_frames = 0;
      crash_lost_messages = 0;
      crash_wiped_packets = 0;
      overload_sheds = 0;
      session = None;
      standalone_table = Hashtbl.create 16;
    }
  in
  (* The reconnect probe schedule reuses the re-request backoff knobs:
     both are "retry into a possibly-dead control channel" timers. *)
  t.session <-
    Some
      (Session.create engine ?check ~name:t.name
         ~config:
           {
             Session.echo_interval = config.echo_interval;
             echo_misses = config.echo_misses;
             reconnect_delay = config.resend_timeout;
             reconnect_multiplier = Float.max 1.0 config.resend_multiplier;
             reconnect_cap = config.resend_cap;
           }
         ~fresh_xid:(fun () -> fresh_xid t)
         ~send_echo:(fun ~xid ->
           (* The session allocated this xid itself: it counts as fresh
              for the uniqueness invariant. *)
           send_to_controller ~xid ~fresh:true t
             (Of_codec.Echo_request Bytes.empty))
         ~on_down:(fun () -> on_session_down t)
         ~on_restore:(fun ~downtime:_ -> on_session_restore t)
         ());
  (* The internal bus delivers transfer-completion thunks. *)
  t.bus :=
    Some
      (Link.create engine ~name:"asic-cpu-bus"
         ~bandwidth_bps:costs.Costs.bus_bandwidth_bps ~propagation_s:0.0
         ~receiver:(fun k -> k ())
         ());
  (* Pre-create the pool matching the configured mechanism so occupancy
     statistics start at time zero. *)
  (match t.mechanism with
  | Packet_granularity -> ignore (ensure_pkt_pool t)
  | Flow_granularity -> ignore (ensure_flow_pool t)
  | No_buffer -> ());
  t

let start t =
  let rec sweep () =
    let now = Engine.now t.engine in
    let expired = Flow_table.expire t.table ~now in
    (* Rules installed with the send_flow_rem flag notify the
       controller of their demise. *)
    List.iter
      (fun (entry : Flow_entry.t) ->
        if entry.Flow_entry.send_flow_rem then begin
          let reason =
            Option.value
              (Flow_entry.expiry_reason entry ~now)
              ~default:Of_flow_removed.Idle_timeout
          in
          send_to_controller t
            (Of_codec.Flow_removed (Flow_entry.to_flow_removed entry ~now ~reason))
        end)
      expired;
    ignore (Engine.schedule t.engine ~delay:t.config.table_sweep_interval sweep)
  in
  ignore (Engine.schedule t.engine ~delay:t.config.table_sweep_interval sweep);
  Session.start (the_session t)

let config t = t.config
let mechanism t = t.mechanism
let miss_send_len t = t.miss_send_len
let set_port t ~port link = Hashtbl.replace t.ports port link

let set_port_state t ~port ~up =
  let was_down = Hashtbl.mem t.down_ports port in
  if up then Hashtbl.remove t.down_ports port
  else Hashtbl.replace t.down_ports port ();
  if was_down <> not up then begin
    (* Notify the controller asynchronously, as a real switch does. *)
    let port_desc =
      {
        Of_features.port_no = port;
        hw_addr = Mac.of_octets 0x02 0 0 0 0 port;
        name = Printf.sprintf "eth%d" port;
      }
    in
    send_to_controller t
      (Of_codec.Port_status
         {
           Of_port_status.reason = Of_port_status.Modify;
           port = port_desc;
           link_down = not up;
         })
  end

let port_is_up t ~port = not (Hashtbl.mem t.down_ports port)

let set_port_scheduler t ~port ~policy ~queues =
  match Hashtbl.find_opt t.ports port with
  | None -> invalid_arg "Switch.set_port_scheduler: no such port"
  | Some link ->
      let shared =
        match ensure_shared_pool t with
        | None -> None
        | Some pool -> Some (pool, Printf.sprintf "port%d" port)
      in
      Hashtbl.replace t.port_schedulers port
        (Egress_queue.create ?shared t.engine ~link ~policy ~queues)

let port_scheduler t ~port = Hashtbl.find_opt t.port_schedulers port
let shared_pool t = t.shared_pool

let egress_misrouted t =
  (* Sum is order-independent, but fold-to-list + sort keeps the
     traversal deterministic (the sort discharges the hashtbl-order
     rule). *)
  Hashtbl.fold
    (fun port q acc -> (port, Egress_queue.misrouted q) :: acc)
    t.port_schedulers []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.fold_left (fun acc (_, m) -> acc + m) 0
let set_controller_link t link = t.controller_link <- Some link
let kernel_cpu t = t.kernel
let userspace_cpu t = t.userspace
let flow_table t = t.table

let counters t =
  {
    frames_received = t.frames_received;
    frames_forwarded = t.frames_forwarded;
    frames_dropped = t.frames_dropped;
    table_misses = t.table_misses;
    pkt_ins_sent = t.pkt_ins_sent;
    pkt_in_resends = t.pkt_in_resends;
    full_packet_fallbacks = t.full_packet_fallbacks;
    pkt_outs_handled = t.pkt_outs_handled;
    flow_mods_handled = t.flow_mods_handled;
    errors_sent = t.errors_sent;
    errors_received = t.errors_received;
    decode_failures = t.decode_failures;
    decode_truncated = t.decode_truncated;
    decode_bad_version = t.decode_bad_version;
    decode_bad_type = t.decode_bad_type;
    standalone_frames = t.standalone_frames;
    fail_secure_drops = t.fail_secure_drops;
    crashes = t.crashes;
    crash_lost_frames = t.crash_lost_frames;
    crash_lost_messages = t.crash_lost_messages;
    crash_wiped_packets = t.crash_wiped_packets;
    overload_sheds = t.overload_sheds;
  }

let session t = the_session t

let buffer_units_in_use t =
  match (t.mechanism, t.pkt_pool, t.flow_pool) with
  | Flow_granularity, _, Some pool -> Flow_buffer.units_in_use pool
  | (Packet_granularity | No_buffer), Some pool, _ -> Packet_buffer.in_use pool
  | _, _, _ -> 0

let buffer_mean_in_use t ~until =
  match (t.mechanism, t.pkt_pool, t.flow_pool) with
  | Flow_granularity, _, Some pool -> Flow_buffer.mean_units_in_use pool ~until
  | (Packet_granularity | No_buffer), Some pool, _ ->
      Packet_buffer.mean_in_use pool ~until
  | _, _, _ -> 0.0

let buffer_max_in_use t =
  match (t.mechanism, t.pkt_pool, t.flow_pool) with
  | Flow_granularity, _, Some pool -> Flow_buffer.max_units_in_use pool
  | (Packet_granularity | No_buffer), Some pool, _ -> Packet_buffer.max_in_use pool
  | _, _, _ -> 0

let flows_abandoned t =
  match t.flow_pool with
  | Some pool -> Flow_buffer.abandoned_flows pool
  | None -> 0

let flows_recovered t =
  match t.flow_pool with
  | Some pool -> Flow_buffer.recovered_flows pool
  | None -> 0

let recovery_delays t =
  match t.flow_pool with
  | Some pool -> Flow_buffer.recovery_delays pool
  | None -> Stats.create ()

let chains_frozen t =
  match t.flow_pool with
  | Some pool -> Flow_buffer.chains_frozen pool
  | None -> 0

let chains_resumed t =
  match t.flow_pool with
  | Some pool -> Flow_buffer.chains_resumed pool
  | None -> 0

let chains_expired_on_resume t =
  match t.flow_pool with
  | Some pool -> Flow_buffer.expired_on_resume pool
  | None -> 0

let cpu_busy_core_seconds t =
  Cpu.busy_core_seconds t.kernel +. Cpu.busy_core_seconds t.userspace
