lib/measure/report.ml: Array Fun List Printf String
