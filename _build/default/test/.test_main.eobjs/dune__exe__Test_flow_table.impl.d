test/test_flow_table.ml: Alcotest Bytes Flow_entry Flow_table Ip List Mac Of_action Of_flow_mod Of_match Of_stats Option Packet QCheck QCheck_alcotest Sdn_net Sdn_openflow Sdn_switch
